(* End-to-end tests: the Fig-13 estimator against the full transistor-level
   solver on real benchmark circuits, and circuit-level reproductions of the
   paper's qualitative claims (§6). *)

module Params = Leakage_device.Params
module Logic = Leakage_circuit.Logic
module Netlist = Leakage_circuit.Netlist
module Simulate = Leakage_circuit.Simulate
module Report = Leakage_spice.Leakage_report
module Library = Leakage_core.Library
module Estimator = Leakage_core.Estimator
module Suite = Leakage_benchmarks.Suite
module Rng = Leakage_numeric.Rng

let device = Params.d25
let temp = 300.0
let lib = Library.create ~device ~temp ()

let estimate_and_solve nl pattern =
  let est = Estimator.estimate lib nl pattern in
  let spice, result, _ = Report.analyze ~device ~temp nl pattern in
  Alcotest.(check bool) "solver converged" true
    result.Leakage_spice.Dc_solver.converged;
  (est, spice)

let relative a b = abs_float (a -. b) /. b

let test_estimator_accuracy_per_circuit label tolerance () =
  let nl = (Suite.find label).Suite.build () in
  let rng = Rng.create 2025 in
  List.iter
    (fun pattern ->
      let est, spice = estimate_and_solve nl pattern in
      let err =
        relative
          (Report.total est.Estimator.totals)
          (Report.total spice.Report.totals)
      in
      if err > tolerance then
        Alcotest.failf "%s: estimator off by %.2f%% (> %.1f%%)" label
          (err *. 100.0) (tolerance *. 100.0))
    (Simulate.random_patterns rng nl 3)

let test_estimator_component_accuracy () =
  let nl = (Suite.find "s838").Suite.build () in
  let rng = Rng.create 7 in
  let pattern = List.hd (Simulate.random_patterns rng nl 1) in
  let est, spice = estimate_and_solve nl pattern in
  let e = est.Estimator.totals and s = spice.Report.totals in
  Alcotest.(check bool) "sub within 2%" true
    (relative e.Report.isub s.Report.isub < 0.02);
  Alcotest.(check bool) "gate within 2%" true
    (relative e.Report.igate s.Report.igate < 0.02);
  Alcotest.(check bool) "btbt within 2%" true
    (relative e.Report.ibtbt s.Report.ibtbt < 0.02)

let test_loading_shift_positive_and_modest () =
  (* §6: loading raises subthreshold, trims gate/BTBT; cancellation keeps the
     net total shift positive but small. *)
  let nl = (Suite.find "s1196").Suite.build () in
  let rng = Rng.create 3 in
  let loaded, base =
    Estimator.average_over_vectors lib nl (Simulate.random_patterns rng nl 5)
  in
  let pct part whole = (part -. whole) /. whole *. 100.0 in
  let sub_shift = pct loaded.Report.isub base.Report.isub in
  let gate_shift = pct loaded.Report.igate base.Report.igate in
  let total_shift = pct (Report.total loaded) (Report.total base) in
  Alcotest.(check bool) "sub shift positive" true (sub_shift > 0.5);
  Alcotest.(check bool) "gate shift negative" true (gate_shift < 0.0);
  Alcotest.(check bool) "total positive but below sub (cancellation)" true
    (total_shift > 0.0 && total_shift < sub_shift)

let test_loading_shift_direction_varies_per_gate () =
  (* §6: in a large circuit some gates gain leakage under loading and some
     lose it, depending on their input vector. *)
  let nl = (Suite.find "s838").Suite.build () in
  let rng = Rng.create 11 in
  let pattern = List.hd (Simulate.random_patterns rng nl 1) in
  let est = Estimator.estimate lib nl pattern in
  let ups = ref 0 and downs = ref 0 in
  Array.iter
    (fun (g : Estimator.gate_estimate) ->
      let w = Report.total g.Estimator.with_loading in
      let n = Report.total g.Estimator.no_loading in
      if w > n *. 1.0005 then incr ups
      else if w < n *. 0.9995 then incr downs)
    est.Estimator.per_gate;
  Alcotest.(check bool) "some gates increase" true (!ups > 10);
  Alcotest.(check bool) "some gates decrease" true (!downs > 10)

let test_estimator_faster_than_solver () =
  let nl = (Suite.find "s1423").Suite.build () in
  let rng = Rng.create 1 in
  let pattern = List.hd (Simulate.random_patterns rng nl 1) in
  (* warm the characterization cache before timing *)
  ignore (Estimator.estimate lib nl pattern);
  let time f =
    let t0 = Sys.time () in
    f ();
    Sys.time () -. t0
  in
  let t_est = time (fun () -> ignore (Estimator.estimate lib nl pattern)) in
  let t_spice = time (fun () -> ignore (Report.analyze ~device ~temp nl pattern)) in
  Alcotest.(check bool)
    (Printf.sprintf "estimator >= 10x faster (est %.4fs, spice %.4fs)" t_est
       t_spice)
    true
    (t_spice > 10.0 *. t_est)

let test_bench_file_roundtrip_through_estimator () =
  let nl = (Suite.find "s838").Suite.build () in
  let text = Leakage_circuit.Bench_format.to_string nl in
  let nl' = Leakage_circuit.Bench_format.parse_string ~name:"s838rt" text in
  let rng = Rng.create 4 in
  let pattern = List.hd (Simulate.random_patterns rng nl 1) in
  (* logic must be identical; leakage only close, because AOI/OAI cells are
     decomposed into AND/OR + NOR/NAND composites on the way out (a
     different cell binding of the same function) *)
  Alcotest.(check string) "same logic function"
    (Logic.vector_to_string (Simulate.outputs nl (Simulate.run nl pattern)))
    (Logic.vector_to_string (Simulate.outputs nl' (Simulate.run nl' pattern)));
  let a = Estimator.estimate lib nl pattern in
  let b = Estimator.estimate lib nl' pattern in
  Alcotest.(check bool) "estimate within 10% across rebinding" true
    (relative
       (Report.total b.Estimator.totals)
       (Report.total a.Estimator.totals)
     < 0.10)

let test_temperature_consistency_estimator_vs_solver () =
  let hot_temp = 360.0 in
  let hot_lib = Library.create ~device ~temp:hot_temp () in
  let nl = (Suite.find "alu88").Suite.build () in
  let rng = Rng.create 9 in
  let pattern = List.hd (Simulate.random_patterns rng nl 1) in
  let est = Estimator.estimate hot_lib nl pattern in
  let spice, _, _ = Report.analyze ~device ~temp:hot_temp nl pattern in
  Alcotest.(check bool) "hot estimate within 3%" true
    (relative
       (Report.total est.Estimator.totals)
       (Report.total spice.Report.totals)
     < 0.03)

(* Property: on arbitrary random circuits the one-pass estimator stays
   within 1.5% of the transistor-level solution. This is the strongest
   statement of Fig 12a and exercises every cell kind the generator emits. *)
let prop_estimator_matches_solver_on_random_circuits =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:12
       ~name:"estimator within 1.5% of solver on random circuits"
       QCheck2.Gen.(tup2 (int_bound 100_000) (int_range 30 120))
       (fun (seed, n_gates) ->
         let profile =
           { Leakage_benchmarks.Iscas.profile_name = "prop"; n_pi = 6;
             n_po = 4; n_ff = 4; n_gates }
         in
         let nl = Leakage_benchmarks.Iscas.generate ~seed profile in
         let rng = Rng.create seed in
         let pattern = List.hd (Simulate.random_patterns rng nl 1) in
         let est = Estimator.estimate lib nl pattern in
         let spice, result, _ = Report.analyze ~device ~temp nl pattern in
         result.Leakage_spice.Dc_solver.converged
         && relative
              (Report.total est.Estimator.totals)
              (Report.total spice.Report.totals)
            < 0.015))

(* Property: the .bench parser never raises anything but Parse_error on
   arbitrary junk, and accepts what it printed. *)
let prop_parser_total_on_junk =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:300 ~name:"bench parser is total on junk"
       QCheck2.Gen.(string_size ~gen:printable (int_bound 200))
       (fun text ->
         match
           Leakage_circuit.Bench_format.parse_string ~name:"fuzz" text
         with
         | _ -> true
         | exception Leakage_circuit.Bench_format.Parse_error _ -> true
         | exception Failure _ -> true (* validation of a parsed-but-bad net *)
         | exception _ -> false))

let test_vector_dependence_of_totals () =
  (* §6: the applied input pattern changes circuit leakage materially *)
  let nl = (Suite.find "mult88").Suite.build () in
  let rng = Rng.create 6 in
  let totals =
    List.map
      (fun p -> Report.total (Estimator.estimate lib nl p).Estimator.totals)
      (Simulate.random_patterns rng nl 8)
  in
  let lo = List.fold_left Float.min infinity totals in
  let hi = List.fold_left Float.max neg_infinity totals in
  Alcotest.(check bool) "spread > 5%" true ((hi -. lo) /. lo > 0.05)

let () =
  Alcotest.run "integration"
    [
      ( "estimator-vs-solver",
        [
          Alcotest.test_case "s838" `Slow (test_estimator_accuracy_per_circuit "s838" 0.01);
          Alcotest.test_case "s1196" `Slow (test_estimator_accuracy_per_circuit "s1196" 0.01);
          Alcotest.test_case "alu88" `Slow (test_estimator_accuracy_per_circuit "alu88" 0.02);
          Alcotest.test_case "mult88" `Slow (test_estimator_accuracy_per_circuit "mult88" 0.01);
          Alcotest.test_case "components" `Slow test_estimator_component_accuracy;
          Alcotest.test_case "hot library" `Slow test_temperature_consistency_estimator_vs_solver;
        ] );
      ( "paper-claims",
        [
          Alcotest.test_case "net shift sign" `Slow test_loading_shift_positive_and_modest;
          Alcotest.test_case "per-gate direction" `Slow test_loading_shift_direction_varies_per_gate;
          Alcotest.test_case "speedup" `Slow test_estimator_faster_than_solver;
          Alcotest.test_case "vector dependence" `Slow test_vector_dependence_of_totals;
        ] );
      ( "interchange",
        [
          Alcotest.test_case "bench roundtrip" `Slow test_bench_file_roundtrip_through_estimator;
          prop_parser_total_on_junk;
        ] );
      ( "properties",
        [ prop_estimator_matches_solver_on_random_circuits ] );
    ]
