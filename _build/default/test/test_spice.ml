(* Tests of the transistor-level DC solver and leakage attribution: circuit
   flattening, Gauss-Seidel vs dense Newton agreement, KCL closure, the
   loading-effect signs of §4 and the stacking effect. *)

module Params = Leakage_device.Params
module Logic = Leakage_circuit.Logic
module Gate = Leakage_circuit.Gate
module Netlist = Leakage_circuit.Netlist
module Simulate = Leakage_circuit.Simulate
module Flatten = Leakage_spice.Flatten
module Dc = Leakage_spice.Dc_solver
module Report = Leakage_spice.Leakage_report
module Rng = Leakage_numeric.Rng

let device = Params.d25
let vdd = device.Params.vdd
let temp = 300.0

let qtest ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let single_gate kind =
  let b = Netlist.Builder.create ("tb_" ^ Gate.name kind) in
  let pins =
    Array.init (Gate.arity kind) (fun i ->
        Netlist.Builder.input ~name:(Printf.sprintf "i%d" i) b)
  in
  let out = Netlist.Builder.gate ~name:"out" b kind pins in
  Netlist.Builder.mark_output b out;
  (Netlist.Builder.finish b, out)

let solve_gate ?(device = device) kind vector =
  let nl, out = single_gate kind in
  let assignment = Simulate.run nl vector in
  let flat = Flatten.flatten ~device ~temp nl assignment in
  let result = Dc.solve flat in
  (flat, result, out)

let inverter_chain ~loads_in ~loads_out =
  (* pi -> D -> vin -> G -> vout, with sibling loads on vin and fanout loads
     on vout; G has gate id 1 *)
  let b = Netlist.Builder.create "chain" in
  let pi = Netlist.Builder.input ~name:"pi" b in
  let vin = Netlist.Builder.gate ~name:"vin" b Gate.Inv [| pi |] in
  let vout = Netlist.Builder.gate ~name:"vout" b Gate.Inv [| vin |] in
  for i = 1 to loads_in do
    ignore (Netlist.Builder.gate ~name:(Printf.sprintf "li%d" i) b Gate.Inv [| vin |])
  done;
  for i = 1 to loads_out do
    ignore (Netlist.Builder.gate ~name:(Printf.sprintf "lo%d" i) b Gate.Inv [| vout |])
  done;
  Netlist.Builder.mark_output b vout;
  (Netlist.Builder.finish b, vin, vout)

let observed_components ~loads_in ~loads_out pattern =
  let nl, _, _ = inverter_chain ~loads_in ~loads_out in
  let report, _, _ = Report.analyze ~device ~temp nl (Logic.vector_of_string pattern) in
  report.Report.per_gate.(1)

(* -------------------------------------------------------------- Flatten *)

let test_flatten_counts_inverter () =
  let nl, _ = single_gate Gate.Inv in
  let assignment = Simulate.run nl [| Logic.Zero |] in
  let flat = Flatten.flatten ~device ~temp nl assignment in
  Alcotest.(check int) "2 transistors" 2 (Array.length flat.Flatten.transistors);
  Alcotest.(check int) "1 unknown (output)" 1 flat.Flatten.n_unknowns

let test_flatten_counts_nand3 () =
  let nl, _ = single_gate (Gate.Nand 3) in
  let assignment = Simulate.run nl (Logic.vector_of_string "000") in
  let flat = Flatten.flatten ~device ~temp nl assignment in
  Alcotest.(check int) "6 transistors" 6 (Array.length flat.Flatten.transistors);
  (* output + 2 stack nodes *)
  Alcotest.(check int) "3 unknowns" 3 flat.Flatten.n_unknowns

let test_flatten_counts_aoi21 () =
  let nl, _ = single_gate Gate.Aoi21 in
  let assignment = Simulate.run nl (Logic.vector_of_string "000") in
  let flat = Flatten.flatten ~device ~temp nl assignment in
  Alcotest.(check int) "6 transistors" 6 (Array.length flat.Flatten.transistors);
  (* output + 1 pull-down stack node + 1 pull-up stack node *)
  Alcotest.(check int) "3 unknowns" 3 flat.Flatten.n_unknowns;
  (* AOI21 = NOR2(AND2) logically, but one stage: check leakage is sane and
     the solved output sits at the rail implied by the vector *)
  let result = Dc.solve flat in
  Alcotest.(check bool) "converged" true result.Dc.converged

let test_aoi_matches_composite_logic () =
  (* the complex cell and its AND+NOR composite must agree logically at the
     solved operating point (output within the same rail band) *)
  List.iter
    (fun vector ->
      let v = Logic.vector_of_string vector in
      let flat, result, out = solve_gate Gate.Aoi21 v in
      let volt =
        Flatten.node_voltage flat result.Dc.voltages flat.Flatten.net_node.(out)
      in
      let expect = Gate.eval Gate.Aoi21 (Array.map Logic.to_bool v) in
      if expect then
        Alcotest.(check bool) (vector ^ " high") true (volt > 0.8 *. vdd)
      else Alcotest.(check bool) (vector ^ " low") true (volt < 0.2 *. vdd))
    [ "000"; "001"; "010"; "011"; "100"; "101"; "110"; "111" ]

let test_flatten_counts_xor () =
  let nl, _ = single_gate Gate.Xor in
  let assignment = Simulate.run nl (Logic.vector_of_string "00") in
  let flat = Flatten.flatten ~device ~temp nl assignment in
  Alcotest.(check int) "16 transistors" 16 (Array.length flat.Flatten.transistors);
  (* 4 stage outputs (3 internal + cell output) + 4 stack nodes *)
  Alcotest.(check int) "8 unknowns" 8 flat.Flatten.n_unknowns

let test_flatten_initial_follows_logic () =
  let nl, _ = single_gate Gate.Inv in
  let assignment = Simulate.run nl [| Logic.Zero |] in
  let flat = Flatten.flatten ~device ~temp nl assignment in
  Alcotest.(check (float 1e-9)) "output init at rail" vdd flat.Flatten.initial.(0)

let test_flatten_blocks_cover_unknowns () =
  let nl, _, _ = inverter_chain ~loads_in:2 ~loads_out:2 in
  let assignment = Simulate.run nl [| Logic.One |] in
  let flat = Flatten.flatten ~device ~temp nl assignment in
  let seen = Array.make flat.Flatten.n_unknowns 0 in
  Array.iter
    (fun block -> Array.iter (fun i -> seen.(i) <- seen.(i) + 1) block)
    flat.Flatten.blocks;
  Alcotest.(check bool) "each unknown in exactly one block" true
    (Array.for_all (fun c -> c = 1) seen)

let test_flatten_rejects_bad_assignment () =
  let nl, _ = single_gate Gate.Inv in
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Flatten.flatten: assignment size mismatch") (fun () ->
      ignore (Flatten.flatten ~device ~temp nl [| Logic.Zero |]))

(* ------------------------------------------------------------ Dc_solver *)

let test_solve_inverter_output_near_rail () =
  let flat, result, out = solve_gate Gate.Inv [| Logic.Zero |] in
  let v = Flatten.node_voltage flat result.Dc.voltages flat.Flatten.net_node.(out) in
  Alcotest.(check bool) "converged" true result.Dc.converged;
  Alcotest.(check bool) "output within 10 mV of VDD" true
    (abs_float (v -. vdd) < 0.01)

let test_solve_inverter_output_low () =
  let flat, result, out = solve_gate Gate.Inv [| Logic.One |] in
  ignore flat;
  let v = Flatten.node_voltage flat result.Dc.voltages flat.Flatten.net_node.(out) in
  Alcotest.(check bool) "output within 10 mV of 0" true (abs_float v < 0.01)

let test_solve_residuals_small () =
  let _flat, result, _ = solve_gate (Gate.Nand 2) (Logic.vector_of_string "01") in
  Alcotest.(check bool) "max residual < 1e-15 A" true
    (result.Dc.max_residual < 1e-15)

let test_solve_injection_shifts_node () =
  let nl, out = single_gate Gate.Inv in
  let assignment = Simulate.run nl [| Logic.One |] in
  let flat = Flatten.flatten ~device ~temp nl assignment in
  let u = Option.get (Flatten.unknown_of_net flat out) in
  let base = (Dc.solve flat).Dc.voltages.(u) in
  let pushed = (Dc.solve ~injections:[ (u, 1e-6) ] flat).Dc.voltages.(u) in
  Alcotest.(check bool) "positive injection raises the node" true
    (pushed > base +. 1e-4)

let test_solve_injection_guard () =
  let nl, _ = single_gate Gate.Inv in
  let assignment = Simulate.run nl [| Logic.One |] in
  let flat = Flatten.flatten ~device ~temp nl assignment in
  Alcotest.check_raises "bad injection index"
    (Invalid_argument "Dc_solver: injection at unknown node index") (fun () ->
      ignore (Dc.solve ~injections:[ (99, 1e-6) ] flat))

let test_dense_matches_gauss_seidel () =
  let nl, _, _ = inverter_chain ~loads_in:2 ~loads_out:2 in
  List.iter
    (fun pattern ->
      let assignment = Simulate.run nl (Logic.vector_of_string pattern) in
      let flat = Flatten.flatten ~device ~temp nl assignment in
      let gs = Dc.solve flat in
      let dense = Dc.solve_dense flat in
      Alcotest.(check bool) "both converged" true
        (gs.Dc.converged && dense.Dc.converged);
      Array.iteri
        (fun i v ->
          if abs_float (v -. dense.Dc.voltages.(i)) > 1e-9 then
            Alcotest.failf "node %d: gs %.12f dense %.12f" i v
              dense.Dc.voltages.(i))
        gs.Dc.voltages)
    [ "0"; "1" ]

let prop_dense_matches_gs_on_random_cells =
  qtest ~count:20 "GS equals dense Newton on random cells and vectors"
    QCheck2.Gen.(tup2 (int_bound (List.length Gate.all_kinds - 1)) (int_bound 15))
    (fun (kind_idx, vec_bits) ->
      let kind = List.nth Gate.all_kinds kind_idx in
      let width = Gate.arity kind in
      let vector = Logic.vector_of_int ~width (vec_bits land ((1 lsl width) - 1)) in
      let nl, _ = single_gate kind in
      let assignment = Simulate.run nl vector in
      let flat = Flatten.flatten ~device ~temp nl assignment in
      let gs = Dc.solve flat in
      let dense = Dc.solve_dense flat in
      Array.for_all2
        (fun a b -> abs_float (a -. b) < 1e-8)
        gs.Dc.voltages dense.Dc.voltages)

let test_stack_node_settles_between_rails () =
  let _flat, result, _ = solve_gate (Gate.Nand 2) (Logic.vector_of_string "00") in
  Array.iter
    (fun v ->
      Alcotest.(check bool) "within rails" true (v >= -0.01 && v <= vdd +. 0.01))
    result.Dc.voltages

(* ------------------------------------------------------ Leakage report *)

let test_report_components_positive () =
  let flat, result, _ = solve_gate (Gate.Nand 2) (Logic.vector_of_string "10") in
  let report = Report.of_solution flat result.Dc.voltages in
  let c = report.Report.per_gate.(0) in
  Alcotest.(check bool) "all positive" true
    (c.Report.isub > 0.0 && c.Report.igate > 0.0 && c.Report.ibtbt > 0.0)

let test_report_totals_sum_per_gate () =
  let nl, _, _ = inverter_chain ~loads_in:1 ~loads_out:1 in
  let report, _, _ = Report.analyze ~device ~temp nl [| Logic.One |] in
  let summed =
    Array.fold_left Report.add Report.zero report.Report.per_gate
  in
  Alcotest.(check (float 1e-18)) "totals = sum"
    (Report.total report.Report.totals) (Report.total summed)

let test_report_rail_currents_positive () =
  let nl, _, _ = inverter_chain ~loads_in:0 ~loads_out:0 in
  let report, _, _ = Report.analyze ~device ~temp nl [| Logic.One |] in
  Alcotest.(check bool) "vdd sources current" true (report.Report.vdd_current > 0.0);
  Alcotest.(check bool) "ground sinks current" true (report.Report.gnd_current > 0.0)

let test_report_components_helpers () =
  let a = { Report.isub = 1.0; igate = 2.0; ibtbt = 3.0 } in
  Alcotest.(check (float 0.0)) "total" 6.0 (Report.total a);
  let b = Report.add a (Report.scale 2.0 a) in
  Alcotest.(check (float 0.0)) "add+scale" 18.0 (Report.total b);
  Alcotest.(check (float 0.0)) "zero" 0.0 (Report.total Report.zero)

let test_stacking_effect () =
  (* §4 / [9]: both-off stack leaks much less subthreshold than one-off *)
  let sub vector =
    let flat, result, _ = solve_gate (Gate.Nand 2) (Logic.vector_of_string vector) in
    (Report.of_solution flat result.Dc.voltages).Report.per_gate.(0).Report.isub
  in
  Alcotest.(check bool) "00 << 01" true (sub "00" < 0.35 *. sub "01");
  Alcotest.(check bool) "00 << 10" true (sub "00" < 0.35 *. sub "10")

let test_input_loading_raises_subthreshold () =
  (* §4: input loading raises the off transistor's |Vgs| -> more sub *)
  let base = observed_components ~loads_in:0 ~loads_out:0 "1" in
  let loaded = observed_components ~loads_in:6 ~loads_out:0 "1" in
  Alcotest.(check bool) "sub up" true (loaded.Report.isub > base.Report.isub);
  Alcotest.(check bool) "gate slightly down" true
    (loaded.Report.igate < base.Report.igate);
  Alcotest.(check bool) "btbt about flat" true
    (abs_float (loaded.Report.ibtbt -. base.Report.ibtbt)
     /. base.Report.ibtbt < 0.01)

let test_output_loading_reduces_all () =
  let base = observed_components ~loads_in:0 ~loads_out:0 "1" in
  let loaded = observed_components ~loads_in:0 ~loads_out:6 "1" in
  Alcotest.(check bool) "sub down" true (loaded.Report.isub < base.Report.isub);
  Alcotest.(check bool) "gate down" true (loaded.Report.igate < base.Report.igate);
  Alcotest.(check bool) "btbt down" true (loaded.Report.ibtbt < base.Report.ibtbt)

let test_input_loading_effect_both_states () =
  List.iter
    (fun pattern ->
      let base = observed_components ~loads_in:0 ~loads_out:0 pattern in
      let loaded = observed_components ~loads_in:6 ~loads_out:0 pattern in
      Alcotest.(check bool)
        ("sub rises, input " ^ pattern)
        true
        (loaded.Report.isub > base.Report.isub))
    [ "0"; "1" ]

let test_pin_current_signs () =
  (* a cell pin at '1' draws current from its net; a pin at '0' injects *)
  let nl, _, _ = inverter_chain ~loads_in:0 ~loads_out:0 in
  let check_pattern pattern expect_sign =
    let assignment = Simulate.run nl (Logic.vector_of_string pattern) in
    let flat = Flatten.flatten ~device ~temp nl assignment in
    let result = Dc.solve flat in
    (* gate 1 = observed inverter, pin 0 *)
    let i = Report.input_pin_current flat result.Dc.voltages ~gate_id:1 ~pin:0 in
    Alcotest.(check bool)
      (Printf.sprintf "pin current sign at %s" pattern)
      true (expect_sign i > 0.0)
  in
  (* pattern "0": driver inverts -> vin = '1' -> current flows into pin *)
  check_pattern "0" (fun i -> i);
  check_pattern "1" (fun i -> -.i)

let test_analyze_pipeline () =
  let nl, _, _ = inverter_chain ~loads_in:3 ~loads_out:3 in
  let report, result, flat = Report.analyze ~device ~temp nl [| Logic.Zero |] in
  Alcotest.(check bool) "converged" true result.Dc.converged;
  Alcotest.(check int) "per-gate size" (Netlist.gate_count nl)
    (Array.length report.Report.per_gate);
  Alcotest.(check int) "transistor count" (Netlist.transistor_count nl)
    (Array.length flat.Flatten.transistors)

let test_per_gate_vth_override () =
  (* raising one gate's threshold must lower its subthreshold leakage *)
  let nl, _, _ = inverter_chain ~loads_in:0 ~loads_out:0 in
  let base, _, _ = Report.analyze ~device ~temp nl [| Logic.One |] in
  let device_of_gate id =
    if id = 1 then Params.with_vth_shift device 0.05 else device
  in
  let shifted, _, _ =
    Report.analyze ~device_of_gate ~device ~temp nl [| Logic.One |]
  in
  Alcotest.(check bool) "gate 1 sub falls" true
    (shifted.Report.per_gate.(1).Report.isub
     < 0.6 *. base.Report.per_gate.(1).Report.isub);
  Alcotest.(check bool) "gate 0 unaffected (1% tolerance)" true
    (abs_float (shifted.Report.per_gate.(0).Report.isub
                -. base.Report.per_gate.(0).Report.isub)
     /. base.Report.per_gate.(0).Report.isub < 0.01)

let test_temperature_raises_leakage () =
  let nl, _, _ = inverter_chain ~loads_in:0 ~loads_out:0 in
  let cold, _, _ = Report.analyze ~device ~temp:300.0 nl [| Logic.One |] in
  let hot, _, _ = Report.analyze ~device ~temp:380.0 nl [| Logic.One |] in
  (* the temperature-flat gate component is a large share of this device's
     total, so the overall growth is milder than the subthreshold's *)
  Alcotest.(check bool) "hotter leaks more" true
    (Report.total hot.Report.totals > 1.4 *. Report.total cold.Report.totals);
  Alcotest.(check bool) "subthreshold grows strongly" true
    (hot.Report.totals.Report.isub > 1.7 *. cold.Report.totals.Report.isub)

let () =
  Alcotest.run "spice"
    [
      ( "flatten",
        [
          Alcotest.test_case "inverter counts" `Quick test_flatten_counts_inverter;
          Alcotest.test_case "nand3 counts" `Quick test_flatten_counts_nand3;
          Alcotest.test_case "aoi21 counts" `Quick test_flatten_counts_aoi21;
          Alcotest.test_case "aoi vs logic" `Quick test_aoi_matches_composite_logic;
          Alcotest.test_case "xor counts" `Quick test_flatten_counts_xor;
          Alcotest.test_case "initial voltages" `Quick test_flatten_initial_follows_logic;
          Alcotest.test_case "block partition" `Quick test_flatten_blocks_cover_unknowns;
          Alcotest.test_case "assignment guard" `Quick test_flatten_rejects_bad_assignment;
        ] );
      ( "dc-solver",
        [
          Alcotest.test_case "inverter high" `Quick test_solve_inverter_output_near_rail;
          Alcotest.test_case "inverter low" `Quick test_solve_inverter_output_low;
          Alcotest.test_case "residuals" `Quick test_solve_residuals_small;
          Alcotest.test_case "injection shifts" `Quick test_solve_injection_shifts_node;
          Alcotest.test_case "injection guard" `Quick test_solve_injection_guard;
          Alcotest.test_case "dense vs GS" `Quick test_dense_matches_gauss_seidel;
          prop_dense_matches_gs_on_random_cells;
          Alcotest.test_case "stack node range" `Quick test_stack_node_settles_between_rails;
        ] );
      ( "report",
        [
          Alcotest.test_case "components positive" `Quick test_report_components_positive;
          Alcotest.test_case "totals sum" `Quick test_report_totals_sum_per_gate;
          Alcotest.test_case "rail currents" `Quick test_report_rail_currents_positive;
          Alcotest.test_case "component helpers" `Quick test_report_components_helpers;
          Alcotest.test_case "stacking effect" `Quick test_stacking_effect;
          Alcotest.test_case "input loading" `Quick test_input_loading_raises_subthreshold;
          Alcotest.test_case "output loading" `Quick test_output_loading_reduces_all;
          Alcotest.test_case "input loading both states" `Quick test_input_loading_effect_both_states;
          Alcotest.test_case "pin current signs" `Quick test_pin_current_signs;
          Alcotest.test_case "analyze pipeline" `Quick test_analyze_pipeline;
          Alcotest.test_case "per-gate vth" `Quick test_per_gate_vth_override;
          Alcotest.test_case "temperature" `Quick test_temperature_raises_leakage;
        ] );
    ]
