test/test_numeric.ml: Alcotest Array Fun Leakage_numeric List QCheck2 QCheck_alcotest
