test/test_device.ml: Alcotest Array Leakage_device Leakage_numeric List QCheck2 QCheck_alcotest
