test/test_spice.ml: Alcotest Array Leakage_circuit Leakage_device Leakage_numeric Leakage_spice List Option Printf QCheck2 QCheck_alcotest
