test/test_benchmarks.ml: Alcotest Array Leakage_benchmarks Leakage_circuit Leakage_numeric List Printf QCheck2 QCheck_alcotest
