test/test_circuit.ml: Alcotest Array Fun Leakage_benchmarks Leakage_circuit Leakage_numeric List Printf QCheck2 QCheck_alcotest Stdlib String
