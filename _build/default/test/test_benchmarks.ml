(* Tests of the benchmark circuits: functional equivalence of the structural
   ALU and multiplier against software references, and profile conformance of
   the synthetic ISCAS generator. *)

module Logic = Leakage_circuit.Logic
module Netlist = Leakage_circuit.Netlist
module Simulate = Leakage_circuit.Simulate
module Topo = Leakage_circuit.Topo
module Adders = Leakage_benchmarks.Adders
module Alu8 = Leakage_benchmarks.Alu8
module Mult8 = Leakage_benchmarks.Mult8
module Iscas = Leakage_benchmarks.Iscas
module Suite = Leakage_benchmarks.Suite
module Rng = Leakage_numeric.Rng

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* little-endian helper: bit i of [n] *)
let bits ~width n = Array.init width (fun i -> Logic.of_bool (n lsr i land 1 = 1))

let int_of_bits v =
  let acc = ref 0 in
  Array.iteri (fun i b -> if Logic.to_bool b then acc := !acc lor (1 lsl i)) v;
  !acc

(* --------------------------------------------------------------- Adders *)

let run_cell build n_inputs pattern =
  let b = Netlist.Builder.create "cell" in
  let ins = Array.init n_inputs (fun _ -> Netlist.Builder.input b) in
  let outs = build b ins in
  List.iter (fun o -> Netlist.Builder.mark_output b o) outs;
  let nl = Netlist.Builder.finish b in
  Simulate.outputs nl (Simulate.run nl pattern)

let test_half_adder () =
  for a = 0 to 1 do
    for bb = 0 to 1 do
      let out =
        run_cell
          (fun b ins ->
            let s, c = Adders.half_adder b ins.(0) ins.(1) in
            [ s; c ])
          2
          [| Logic.of_bool (a = 1); Logic.of_bool (bb = 1) |]
      in
      Alcotest.(check int) (Printf.sprintf "ha %d+%d" a bb) (a + bb)
        (int_of_bits out)
    done
  done

let test_full_adder () =
  for n = 0 to 7 do
    let a = n land 1 and bb = (n lsr 1) land 1 and c = (n lsr 2) land 1 in
    let out =
      run_cell
        (fun b ins ->
          let s, co = Adders.full_adder b ins.(0) ins.(1) ins.(2) in
          [ s; co ])
        3
        [| Logic.of_bool (a = 1); Logic.of_bool (bb = 1); Logic.of_bool (c = 1) |]
    in
    Alcotest.(check int) (Printf.sprintf "fa %d" n) (a + bb + c) (int_of_bits out)
  done

let test_ripple_adder () =
  let width = 4 in
  for a = 0 to 15 do
    for bb = 0 to 15 do
      let out =
        run_cell
          (fun b ins ->
            let xs = Array.sub ins 0 width and ys = Array.sub ins width width in
            let sums, carry = Adders.ripple_adder b xs ys ins.(2 * width) in
            Array.to_list sums @ [ carry ])
          (2 * width + 1)
          (Array.concat [ bits ~width a; bits ~width bb; [| Logic.Zero |] ])
      in
      Alcotest.(check int) (Printf.sprintf "%d+%d" a bb) (a + bb) (int_of_bits out)
    done
  done

let test_mux2 () =
  List.iter
    (fun (sel, a, bb, expect) ->
      let out =
        run_cell
          (fun b ins -> [ Adders.mux2 b ~sel:ins.(0) ins.(1) ins.(2) ])
          3
          [| Logic.of_bool sel; Logic.of_bool a; Logic.of_bool bb |]
      in
      Alcotest.(check bool) "mux" expect (Logic.to_bool out.(0)))
    [ (false, true, false, true); (false, false, true, false);
      (true, true, false, false); (true, false, true, true) ]

(* ------------------------------------------------------------------ ALU *)

let alu_pattern ~width ~a ~b ~op ~cin =
  Array.concat
    [ bits ~width a; bits ~width b;
      [| Logic.of_bool (op land 1 = 1); Logic.of_bool (op lsr 1 land 1 = 1);
         Logic.of_bool cin |] ]

let test_alu4_exhaustive () =
  let width = 4 in
  let nl = Alu8.build ~width () in
  for op = 0 to 3 do
    for a = 0 to 15 do
      for b = 0 to 15 do
        let pattern = alu_pattern ~width ~a ~b ~op ~cin:false in
        let out = Simulate.outputs nl (Simulate.run nl pattern) in
        let expect_r, expect_c = Alu8.reference ~width ~a ~b ~op ~cin:false in
        let got = int_of_bits out in
        let expect = expect_r lor (if expect_c then 1 lsl width else 0) in
        if got <> expect then
          Alcotest.failf "alu4 op=%d a=%d b=%d: got %d want %d" op a b got expect
      done
    done
  done

let test_alu8_carry_in () =
  let width = 8 in
  let nl = Alu8.build ~width () in
  List.iter
    (fun (a, b) ->
      let pattern = alu_pattern ~width ~a ~b ~op:3 ~cin:true in
      let out = Simulate.outputs nl (Simulate.run nl pattern) in
      let expect_r, expect_c = Alu8.reference ~width ~a ~b ~op:3 ~cin:true in
      Alcotest.(check int) "sum+cin"
        (expect_r lor (if expect_c then 1 lsl width else 0))
        (int_of_bits out))
    [ (0, 0); (255, 255); (170, 85); (200, 100) ]

let prop_alu8_random =
  qtest "alu8 agrees with the reference on random operands"
    QCheck2.Gen.(tup3 (int_bound 255) (int_bound 255) (int_bound 7))
    (fun (a, b, opc) ->
      let op = opc land 3 and cin = opc lsr 2 = 1 in
      let nl = Alu8.build () in
      let out = Simulate.outputs nl (Simulate.run nl (alu_pattern ~width:8 ~a ~b ~op ~cin)) in
      let expect_r, expect_c = Alu8.reference ~width:8 ~a ~b ~op ~cin in
      int_of_bits out = (expect_r lor (if expect_c then 1 lsl 8 else 0)))

let test_alu_reference_guard () =
  Alcotest.check_raises "op range"
    (Invalid_argument "Alu8.reference: op outside 0-3") (fun () ->
      ignore (Alu8.reference ~width:8 ~a:0 ~b:0 ~op:4 ~cin:false))

(* ----------------------------------------------------------- Multiplier *)

let test_mult3_exhaustive () =
  let width = 3 in
  let nl = Mult8.build ~width () in
  for a = 0 to 7 do
    for b = 0 to 7 do
      let pattern = Array.append (bits ~width a) (bits ~width b) in
      let out = Simulate.outputs nl (Simulate.run nl pattern) in
      Alcotest.(check int) (Printf.sprintf "%d*%d" a b) (a * b) (int_of_bits out)
    done
  done

let test_mult4_exhaustive () =
  let width = 4 in
  let nl = Mult8.build ~width () in
  for a = 0 to 15 do
    for b = 0 to 15 do
      let pattern = Array.append (bits ~width a) (bits ~width b) in
      let out = Simulate.outputs nl (Simulate.run nl pattern) in
      Alcotest.(check int) (Printf.sprintf "%d*%d" a b) (a * b) (int_of_bits out)
    done
  done

let prop_mult8_random =
  qtest "mult8 agrees with integer multiplication"
    QCheck2.Gen.(tup2 (int_bound 255) (int_bound 255))
    (fun (a, b) ->
      let nl = Mult8.build () in
      let pattern = Array.append (bits ~width:8 a) (bits ~width:8 b) in
      let out = Simulate.outputs nl (Simulate.run nl pattern) in
      int_of_bits out = a * b)

let test_mult_output_width () =
  let nl = Mult8.build ~width:8 () in
  Alcotest.(check int) "16 product bits" 16 (Array.length (Netlist.outputs nl))

let test_mult_width_guard () =
  Alcotest.check_raises "width 1"
    (Invalid_argument "Mult8.build: width must be at least 2") (fun () ->
      ignore (Mult8.build ~width:1 ()))

(* ---------------------------------------------------------------- Iscas *)

let test_iscas_profiles_table () =
  Alcotest.(check int) "six profiles" 6 (List.length Iscas.profiles);
  let p = Iscas.profile "s838" in
  Alcotest.(check int) "s838 PIs" 34 p.Iscas.n_pi;
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Iscas.profile "s9999"))

let test_iscas_generation_matches_profile () =
  List.iter
    (fun (p : Iscas.profile) ->
      if p.Iscas.n_gates <= 1000 then begin
        let nl = Iscas.generate p in
        Alcotest.(check int)
          (p.Iscas.profile_name ^ " gates")
          p.Iscas.n_gates (Netlist.gate_count nl);
        Alcotest.(check int)
          (p.Iscas.profile_name ^ " inputs")
          (p.Iscas.n_pi + p.Iscas.n_ff)
          (Array.length (Netlist.inputs nl));
        Alcotest.(check bool)
          (p.Iscas.profile_name ^ " valid")
          true
          (Netlist.validate nl = Ok ())
      end)
    Iscas.profiles

let test_iscas_deterministic () =
  let a = Iscas.generate_by_name "s838" in
  let b = Iscas.generate_by_name "s838" in
  let rng = Rng.create 5 in
  List.iter
    (fun pattern ->
      let oa = Simulate.outputs a (Simulate.run a pattern) in
      let ob = Simulate.outputs b (Simulate.run b pattern) in
      Alcotest.(check string) "same function" (Logic.vector_to_string oa)
        (Logic.vector_to_string ob))
    (Simulate.random_patterns rng a 5)

let test_iscas_seed_changes_structure () =
  let p = Iscas.profile "s838" in
  let a = Iscas.generate ~seed:1 p in
  let b = Iscas.generate ~seed:2 p in
  let sig_of nl =
    List.map
      (fun (g : Netlist.gate) -> Leakage_circuit.Gate.name g.Netlist.kind)
      (Array.to_list (Netlist.gates nl))
  in
  Alcotest.(check bool) "different seeds differ" false (sig_of a = sig_of b)

let test_iscas_has_depth () =
  let nl = Iscas.generate_by_name "s1196" in
  let s = Netlist.stats nl in
  Alcotest.(check bool) "at least 5 logic levels" true (s.Netlist.levels >= 5);
  Alcotest.(check bool) "has multi-fanout nets" true (s.Netlist.max_fanout >= 3)

let prop_iscas_random_profiles_valid =
  qtest ~count:25 "generator output always validates"
    QCheck2.Gen.(tup2 (int_bound 9999) (int_range 10 120))
    (fun (seed, n_gates) ->
      let p = { Iscas.profile_name = "rand"; n_pi = 6; n_po = 3; n_ff = 4;
                n_gates } in
      let nl = Iscas.generate ~seed p in
      Netlist.validate nl = Ok () && Array.length (Topo.order nl) = n_gates)

(* ---------------------------------------------------------------- Trees *)

module Trees = Leakage_benchmarks.Trees

let test_parity_exhaustive () =
  let width = 6 in
  let nl = Trees.parity ~width () in
  for n = 0 to (1 lsl width) - 1 do
    let pattern = bits ~width n in
    let out = Simulate.outputs nl (Simulate.run nl pattern) in
    let expect = Trees.parity_reference (Array.map Logic.to_bool pattern) in
    Alcotest.(check bool) (Printf.sprintf "parity %d" n) expect
      (Logic.to_bool out.(0))
  done

let test_parity_structure () =
  let nl = Trees.parity ~width:16 () in
  Alcotest.(check int) "15 xor gates" 15 (Netlist.gate_count nl);
  let s = Netlist.stats nl in
  Alcotest.(check int) "log depth" 4 s.Netlist.levels

let test_decoder_exhaustive () =
  let select_bits = 4 in
  let nl = Trees.decoder ~select_bits () in
  Alcotest.(check int) "16 outputs" 16 (Array.length (Netlist.outputs nl));
  for code = 0 to 15 do
    let pattern = bits ~width:select_bits code in
    let out = Simulate.outputs nl (Simulate.run nl pattern) in
    Array.iteri
      (fun i v ->
        Alcotest.(check bool)
          (Printf.sprintf "code %d output %d" code i)
          (i = Trees.decoder_reference ~select_bits code)
          (Logic.to_bool v))
      out
  done

let test_decoder_fanout_heavy () =
  let nl = Trees.decoder ~select_bits:4 () in
  let s = Netlist.stats nl in
  Alcotest.(check bool) "select literals fan out widely" true
    (s.Netlist.max_fanout >= 8)

let test_mux_tree_exhaustive () =
  let select_bits = 2 in
  let nl = Trees.mux_tree ~select_bits () in
  let n_data = 1 lsl select_bits in
  for data = 0 to (1 lsl n_data) - 1 do
    for select = 0 to n_data - 1 do
      let pattern =
        Array.append (bits ~width:n_data data) (bits ~width:select_bits select)
      in
      let out = Simulate.outputs nl (Simulate.run nl pattern) in
      Alcotest.(check bool)
        (Printf.sprintf "data %d select %d" data select)
        (Trees.mux_reference ~select_bits ~data ~select)
        (Logic.to_bool out.(0))
    done
  done

let test_tree_guards () =
  Alcotest.check_raises "parity width"
    (Invalid_argument "Trees.parity: width must be at least 2") (fun () ->
      ignore (Trees.parity ~width:1 ()));
  Alcotest.check_raises "decoder bits"
    (Invalid_argument "Trees.decoder: select_bits outside [2,6]") (fun () ->
      ignore (Trees.decoder ~select_bits:9 ()))

let test_c_profiles () =
  Alcotest.(check int) "nine profiles" 9 (List.length Iscas.c_profiles);
  let p = Iscas.profile "c432" in
  Alcotest.(check int) "combinational" 0 p.Iscas.n_ff;
  let nl = Iscas.generate p in
  Alcotest.(check int) "gates" 160 (Netlist.gate_count nl);
  Alcotest.(check bool) "valid" true (Netlist.validate nl = Ok ())

(* ---------------------------------------------------------------- Suite *)

let test_suite_names () =
  Alcotest.(check (list string)) "paper order"
    [ "s838"; "s1196"; "s1423"; "s5378"; "s9234"; "s13207"; "alu88"; "mult88" ]
    Suite.names

let test_suite_find () =
  let e = Suite.find "alu88" in
  let nl = e.Suite.build () in
  Alcotest.(check bool) "alu has gates" true (Netlist.gate_count nl > 100);
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Suite.find "nope"))

let test_suite_small_members_build () =
  List.iter
    (fun label ->
      let e = Suite.find label in
      let nl = e.Suite.build () in
      Alcotest.(check bool) (label ^ " validates") true
        (Netlist.validate nl = Ok ()))
    [ "s838"; "s1196"; "s1423"; "alu88"; "mult88" ]

let () =
  Alcotest.run "benchmarks"
    [
      ( "adders",
        [
          Alcotest.test_case "half adder" `Quick test_half_adder;
          Alcotest.test_case "full adder" `Quick test_full_adder;
          Alcotest.test_case "ripple adder" `Quick test_ripple_adder;
          Alcotest.test_case "mux2" `Quick test_mux2;
        ] );
      ( "alu",
        [
          Alcotest.test_case "alu4 exhaustive" `Slow test_alu4_exhaustive;
          Alcotest.test_case "alu8 carry in" `Quick test_alu8_carry_in;
          prop_alu8_random;
          Alcotest.test_case "reference guard" `Quick test_alu_reference_guard;
        ] );
      ( "multiplier",
        [
          Alcotest.test_case "mult3 exhaustive" `Quick test_mult3_exhaustive;
          Alcotest.test_case "mult4 exhaustive" `Slow test_mult4_exhaustive;
          prop_mult8_random;
          Alcotest.test_case "output width" `Quick test_mult_output_width;
          Alcotest.test_case "width guard" `Quick test_mult_width_guard;
        ] );
      ( "iscas",
        [
          Alcotest.test_case "profiles" `Quick test_iscas_profiles_table;
          Alcotest.test_case "profile conformance" `Quick test_iscas_generation_matches_profile;
          Alcotest.test_case "deterministic" `Quick test_iscas_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_iscas_seed_changes_structure;
          Alcotest.test_case "depth" `Quick test_iscas_has_depth;
          prop_iscas_random_profiles_valid;
        ] );
      ( "trees",
        [
          Alcotest.test_case "parity exhaustive" `Quick test_parity_exhaustive;
          Alcotest.test_case "parity structure" `Quick test_parity_structure;
          Alcotest.test_case "decoder exhaustive" `Quick test_decoder_exhaustive;
          Alcotest.test_case "decoder fanout" `Quick test_decoder_fanout_heavy;
          Alcotest.test_case "mux exhaustive" `Quick test_mux_tree_exhaustive;
          Alcotest.test_case "guards" `Quick test_tree_guards;
          Alcotest.test_case "iscas85 profiles" `Quick test_c_profiles;
        ] );
      ( "suite",
        [
          Alcotest.test_case "names" `Quick test_suite_names;
          Alcotest.test_case "find" `Quick test_suite_find;
          Alcotest.test_case "members build" `Quick test_suite_small_members_build;
        ] );
    ]
