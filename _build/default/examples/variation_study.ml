(* Process-variation study (§5.3 / Figs 10-11): Monte-Carlo leakage
   distributions of an inverter with and without its 6+6 loading inverters,
   and the growth of the loading-induced spread with inter-die threshold
   sigma.

   Run with: dune exec examples/variation_study.exe *)

module Params = Leakage_device.Params
module Variation = Leakage_device.Variation
module Logic = Leakage_circuit.Logic
module Report = Leakage_spice.Leakage_report
module Monte_carlo = Leakage_core.Monte_carlo
module Stats = Leakage_numeric.Stats

let na = Leakage_device.Physics.amps_to_nanoamps

let ascii_histogram ~label ~bins values =
  let h = Stats.histogram ~bins values in
  let peak = Array.fold_left Stdlib.max 1 h.Stats.counts in
  Format.printf "%s@." label;
  let centers = Stats.bin_centers h in
  Array.iteri
    (fun i c ->
      let width = c * 48 / peak in
      Format.printf "  %8.0f | %s %d@." (na centers.(i)) (String.make width '#') c)
    h.Stats.counts

let () =
  let device = Params.d25 in
  let temp = 300.0 in
  let sigmas = Variation.paper_sigmas in
  let config = { Monte_carlo.paper_config with Monte_carlo.n_samples = 1500 } in
  Format.printf "Monte Carlo: %d samples, 6+6 loading inverters, input '0'@.@."
    config.Monte_carlo.n_samples;
  let samples = Monte_carlo.run ~config ~device ~temp ~sigmas () in

  let show_component name pick =
    let loaded, unloaded = Monte_carlo.component_arrays samples ~pick in
    let sl = Stats.summarize loaded and su = Stats.summarize unloaded in
    Format.printf
      "%-14s no-loading: mean %8.1f nA  std %8.1f | with loading: mean %8.1f nA  std %8.1f (mean %+5.2f%%, std %+5.2f%%)@."
      name (na su.Stats.mean) (na su.Stats.std) (na sl.Stats.mean)
      (na sl.Stats.std)
      ((sl.Stats.mean -. su.Stats.mean) /. su.Stats.mean *. 100.0)
      ((sl.Stats.std -. su.Stats.std) /. su.Stats.std *. 100.0)
  in
  show_component "subthreshold" (fun c -> c.Report.isub);
  show_component "gate" (fun c -> c.Report.igate);
  show_component "junction" (fun c -> c.Report.ibtbt);
  show_component "total" Report.total;

  Format.printf "@.";
  let loaded_total, unloaded_total =
    Monte_carlo.component_arrays samples ~pick:Report.total
  in
  ascii_histogram ~label:"Total leakage, no loading [nA]:" ~bins:14
    unloaded_total;
  Format.printf "@.";
  ascii_histogram ~label:"Total leakage, with loading [nA]:" ~bins:14
    loaded_total;

  (* Fig 11: spread growth with inter-die threshold sigma. *)
  Format.printf "@.Loading shift of mean / sigma vs inter-die sigma(Vth):@.";
  Format.printf "%12s %14s %14s@." "sigma[mV]" "mean shift[%]" "std shift[%]";
  let shifts =
    Monte_carlo.spread_vs_sigma
      ~config:{ config with Monte_carlo.n_samples = 600 }
      ~device ~temp ~base_sigmas:sigmas
      ~sigma_vth_inter_values:[| 0.030; 0.040; 0.050 |] ()
  in
  Array.iter
    (fun (s : Monte_carlo.spread_shift) ->
      Format.printf "%12.0f %+14.2f %+14.2f@."
        (s.Monte_carlo.sigma_vth_inter *. 1000.0)
        s.Monte_carlo.mean_shift_percent s.Monte_carlo.std_shift_percent)
    shifts
