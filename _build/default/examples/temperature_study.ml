(* Temperature study (§5.2): how the loading effect and the component
   balance move between room temperature and burn-in conditions, for a
   single inverter and for a full circuit.

   Run with: dune exec examples/temperature_study.exe *)

module Params = Leakage_device.Params
module Physics = Leakage_device.Physics
module Logic = Leakage_circuit.Logic
module Gate = Leakage_circuit.Gate
module Report = Leakage_spice.Leakage_report
module Library = Leakage_core.Library
module Estimator = Leakage_core.Estimator
module Loading = Leakage_core.Loading
module Suite = Leakage_benchmarks.Suite
module Simulate = Leakage_circuit.Simulate
module Rng = Leakage_numeric.Rng

let na = Physics.amps_to_nanoamps

let () =
  let device = Params.d25 in

  (* 1. Single-inverter loading effect vs temperature (the Fig 9 view). *)
  Format.printf "Inverter LD_ALL vs temperature (input '0', 1 uA in & out):@.";
  Format.printf "%8s %10s %10s %10s %10s@." "T[C]" "LD_sub%" "LD_gate%"
    "LD_btbt%" "LD_total%";
  let pts =
    Loading.temperature_sweep ~device
      ~temps_celsius:[| 0.; 25.; 50.; 75.; 100.; 125.; 150. |]
      ~input_current:1.0e-6 ~output_current:1.0e-6 Gate.Inv [| Logic.Zero |]
  in
  Array.iter
    (fun (c, (p : Loading.ld_point)) ->
      Format.printf "%8.0f %+10.2f %+10.2f %+10.2f %+10.2f@." c p.Loading.ld_sub
        p.Loading.ld_gate p.Loading.ld_btbt p.Loading.ld_total)
    pts;

  (* 2. Circuit components vs temperature: the subthreshold take-over. *)
  let circuit = (Suite.find "s838").Suite.build () in
  let rng = Rng.create 42 in
  let pattern = List.hd (Simulate.random_patterns rng circuit 1) in
  Format.printf "@.s838 totals vs temperature (one random vector):@.";
  Format.printf "%8s %12s %12s %12s %12s %10s@." "T[C]" "Isub[nA]" "Igate[nA]"
    "Ibtbt[nA]" "total[nA]" "load-shift";
  List.iter
    (fun celsius ->
      let temp = Physics.celsius_to_kelvin celsius in
      let lib = Library.create ~device ~temp () in
      let est = Estimator.estimate lib circuit pattern in
      let t = est.Estimator.totals in
      let base = Report.total est.Estimator.baseline_totals in
      Format.printf "%8.0f %12.0f %12.0f %12.0f %12.0f %+9.2f%%@." celsius
        (na t.Report.isub) (na t.Report.igate) (na t.Report.ibtbt)
        (na (Report.total t))
        ((Report.total t -. base) /. base *. 100.0))
    [ 25.0; 75.0; 125.0 ]
