(* Device-flavour study (§4): the relative strength of the leakage
   mechanisms decides which input vector leaks least.

   The paper notes that a subthreshold-dominated device has its NAND2
   minimum-leakage vector at "00" (stacking kills the dominant component)
   while a gate-tunneling-dominated device moves the minimum to "10" (the
   on-transistor near the output sees a degenerated |Vgs| through the stack
   node, throttling the dominant tunneling). This example solves a NAND2 at
   its transistor-level operating point for every vector across the three
   D25 flavours, and adds the 3-sigma process corners of the baseline.

   Run with: dune exec examples/device_flavours.exe *)

module Params = Leakage_device.Params
module Variation = Leakage_device.Variation
module Logic = Leakage_circuit.Logic
module Gate = Leakage_circuit.Gate
module Report = Leakage_spice.Leakage_report
module Testbench = Leakage_core.Testbench

let na = Leakage_device.Physics.amps_to_nanoamps

let nand2_row device vector =
  Testbench.isolated_components ~device ~temp:300.0 (Gate.Nand 2)
    (Logic.vector_of_string vector)

let vectors = [ "00"; "01"; "10"; "11" ]

let study name device =
  Format.printf "-- %s --@." name;
  Format.printf "%8s %12s %12s %12s %12s@." "vector" "Isub[nA]" "Igate[nA]"
    "Ibtbt[nA]" "total[nA]";
  let best = ref ("", infinity) in
  List.iter
    (fun vector ->
      let c = nand2_row device vector in
      let total = Report.total c in
      if total < snd !best then best := (vector, total);
      Format.printf "%8s %12.1f %12.1f %12.1f %12.1f@." vector
        (na c.Report.isub) (na c.Report.igate) (na c.Report.ibtbt) (na total))
    vectors;
  Format.printf "   minimum-leakage vector: %s@.@." (fst !best);
  fst !best

let () =
  Format.printf
    "NAND2 leakage by input vector across device flavours (isolated cell):@.@.";
  let min_s = study "D25-S (subthreshold-dominated)" Params.d25_s in
  let min_g = study "D25-G (gate-tunneling-dominated)" Params.d25_g in
  let _ = study "D25-JN (junction-dominated)" Params.d25_jn in
  Format.printf
    "Paper's §4 claim — the minimum vector depends on the dominant \
     mechanism: sub-dominated -> %s, gate-dominated -> %s (%s)@.@." min_s
    min_g
    (if min_s <> min_g then "reproduced: they differ"
     else "not separated under this calibration");

  (* Process corners of the baseline: the same table at Fast/Typical/Slow. *)
  Format.printf "D25 NAND2 total leakage across 3-sigma corners [nA]:@.";
  Format.printf "%8s %12s %12s %12s@." "vector" "slow" "typical" "fast";
  let sigmas = Variation.paper_sigmas in
  let corner c = Variation.corner_device Params.d25 sigmas c in
  List.iter
    (fun vector ->
      let total c = na (Report.total (nand2_row c vector)) in
      Format.printf "%8s %12.1f %12.1f %12.1f@." vector
        (total (corner Variation.Slow))
        (total (corner Variation.Typical))
        (total (corner Variation.Fast)))
    vectors
