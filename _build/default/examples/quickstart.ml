(* Quickstart: build a small circuit, estimate its leakage with the
   loading-aware Fig-13 estimator, and check the estimate against the full
   transistor-level DC solve.

   Run with: dune exec examples/quickstart.exe *)

module Params = Leakage_device.Params
module Logic = Leakage_circuit.Logic
module Gate = Leakage_circuit.Gate
module Netlist = Leakage_circuit.Netlist
module Report = Leakage_spice.Leakage_report
module Library = Leakage_core.Library
module Estimator = Leakage_core.Estimator

let na = Leakage_device.Physics.amps_to_nanoamps

(* A one-bit full adder out of library cells. *)
let full_adder () =
  let module B = Netlist.Builder in
  let b = B.create "full_adder" in
  let x = B.input ~name:"x" b in
  let y = B.input ~name:"y" b in
  let cin = B.input ~name:"cin" b in
  let t = B.gate ~name:"t" b Gate.Xor [| x; y |] in
  let sum = B.gate ~name:"sum" b Gate.Xor [| t; cin |] in
  let c1 = B.gate ~name:"c1" b (Gate.And 2) [| x; y |] in
  let c2 = B.gate ~name:"c2" b (Gate.And 2) [| t; cin |] in
  let cout = B.gate ~name:"cout" b (Gate.Or 2) [| c1; c2 |] in
  B.mark_output b sum;
  B.mark_output b cout;
  B.finish b

let () =
  let device = Params.d25 in
  let temp = 300.0 in
  let circuit = full_adder () in
  Format.printf "Circuit: %s@." (Netlist.name circuit);
  Format.printf "  %a@.@." Netlist.pp_stats (Netlist.stats circuit);

  (* A library bundles the loading-aware characterization tables for one
     (device, temperature) corner; entries are characterized on demand. *)
  let lib = Library.create ~device ~temp () in

  Format.printf "%-8s %12s %12s %12s %12s | %12s@." "vector" "Isub[nA]"
    "Igate[nA]" "Ibtbt[nA]" "total[nA]" "SPICE total";
  List.iter
    (fun pattern ->
      let v = Logic.vector_of_string pattern in
      let est = Estimator.estimate lib circuit v in
      let spice, _, _ = Report.analyze ~device ~temp circuit v in
      let t = est.Estimator.totals in
      Format.printf "%-8s %12.1f %12.1f %12.1f %12.1f | %12.1f@." pattern
        (na t.Report.isub) (na t.Report.igate) (na t.Report.ibtbt)
        (na (Report.total t))
        (na (Report.total spice.Report.totals)))
    [ "000"; "001"; "010"; "011"; "100"; "101"; "110"; "111" ];

  (* Loading effect: what the traditional sum-of-nominal-leakages model
     misses. *)
  let v = Logic.vector_of_string "101" in
  let est = Estimator.estimate lib circuit v in
  let with_loading = Report.total est.Estimator.totals in
  let without = Report.total est.Estimator.baseline_totals in
  Format.printf "@.Loading effect at vector 101: %+.2f%%@."
    ((with_loading -. without) /. without *. 100.0);
  Format.printf "  traditional (no loading): %.1f nA@." (na without);
  Format.printf "  loading-aware estimate:   %.1f nA@." (na with_loading);

  (* Per-gate view: which cells feel their neighbours the most. *)
  Format.printf "@.Per-gate loading shift at vector 101:@.";
  Array.iter
    (fun (g : Estimator.gate_estimate) ->
      let w = Report.total g.Estimator.with_loading in
      let n = Report.total g.Estimator.no_loading in
      Format.printf "  gate %d (%-5s) vector %s: %+6.2f%%  (%.1f nA)@."
        g.Estimator.gate.Netlist.id
        (Gate.name g.Estimator.gate.Netlist.kind)
        (Logic.vector_to_string g.Estimator.vector)
        ((w -. n) /. n *. 100.0)
        (na w))
    est.Estimator.per_gate
