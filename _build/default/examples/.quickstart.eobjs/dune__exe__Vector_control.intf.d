examples/vector_control.mli:
