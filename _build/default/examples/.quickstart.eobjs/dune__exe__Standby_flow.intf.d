examples/standby_flow.mli:
