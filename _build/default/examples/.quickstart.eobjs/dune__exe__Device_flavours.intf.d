examples/device_flavours.mli:
