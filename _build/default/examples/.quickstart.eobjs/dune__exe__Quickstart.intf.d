examples/quickstart.mli:
