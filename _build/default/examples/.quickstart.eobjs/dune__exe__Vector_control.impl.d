examples/vector_control.ml: Array Format Leakage_benchmarks Leakage_circuit Leakage_core Leakage_device Leakage_spice List Printf String
