examples/quickstart.ml: Array Format Leakage_circuit Leakage_core Leakage_device Leakage_spice List
