bench/main.mli:
