bench/figures.ml: Array Float Format Leakage_benchmarks Leakage_circuit Leakage_core Leakage_device Leakage_numeric Leakage_spice List Printf Sys Unix
