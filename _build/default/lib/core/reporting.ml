module Netlist = Leakage_circuit.Netlist
module Gate = Leakage_circuit.Gate
module Logic = Leakage_circuit.Logic
module Report = Leakage_spice.Leakage_report
module Physics = Leakage_device.Physics

let na = Physics.amps_to_nanoamps

let buffer_csv header rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (String.concat "," row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let f v = Printf.sprintf "%.4f" v

let per_gate_csv netlist (result : Estimator.result) =
  let rows =
    Array.to_list result.Estimator.per_gate
    |> List.map (fun (ge : Estimator.gate_estimate) ->
           let c = ge.Estimator.with_loading in
           let base = Report.total ge.Estimator.no_loading in
           let shift =
             if base = 0.0 then 0.0
             else (Report.total c -. base) /. base *. 100.0
           in
           [
             string_of_int ge.Estimator.gate.Netlist.id;
             Gate.name ge.Estimator.gate.Netlist.kind;
             Netlist.net_name netlist ge.Estimator.gate.Netlist.out;
             Logic.vector_to_string ge.Estimator.vector;
             f (na c.Report.isub);
             f (na c.Report.igate);
             f (na c.Report.ibtbt);
             f (na (Report.total c));
             f (na base);
             f shift;
           ])
  in
  buffer_csv
    "gate_id,cell,output_net,vector,isub_nA,igate_nA,ibtbt_nA,total_nA,no_loading_total_nA,loading_shift_percent"
    rows

let totals_csv labeled =
  let rows =
    List.map
      (fun (label, (c : Report.components)) ->
        [
          label;
          f (na c.Report.isub);
          f (na c.Report.igate);
          f (na c.Report.ibtbt);
          f (na (Report.total c));
        ])
      labeled
  in
  buffer_csv "label,isub_nA,igate_nA,ibtbt_nA,total_nA" rows

let ld_sweep_csv points =
  let rows =
    Array.to_list points
    |> List.map (fun (p : Loading.ld_point) ->
           [
             f (na p.Loading.current);
             f p.Loading.ld_sub;
             f p.Loading.ld_gate;
             f p.Loading.ld_btbt;
             f p.Loading.ld_total;
           ])
  in
  buffer_csv "current_nA,ld_sub_percent,ld_gate_percent,ld_btbt_percent,ld_total_percent"
    rows

let mc_csv samples =
  let component_row (c : Report.components) =
    [ f (na c.Report.isub); f (na c.Report.igate); f (na c.Report.ibtbt);
      f (na (Report.total c)) ]
  in
  let rows =
    Array.to_list samples
    |> List.map (fun (s : Monte_carlo.sample) ->
           component_row s.Monte_carlo.loaded
           @ component_row s.Monte_carlo.unloaded)
  in
  buffer_csv
    "loaded_sub_nA,loaded_gate_nA,loaded_btbt_nA,loaded_total_nA,unloaded_sub_nA,unloaded_gate_nA,unloaded_btbt_nA,unloaded_total_nA"
    rows

let pp_per_gate ?(limit = 20) ppf netlist (result : Estimator.result) =
  let ranked = Array.copy result.Estimator.per_gate in
  Array.sort
    (fun (a : Estimator.gate_estimate) b ->
      compare
        (Report.total b.Estimator.with_loading)
        (Report.total a.Estimator.with_loading))
    ranked;
  Format.fprintf ppf "%6s %-7s %-12s %-6s %12s %10s@." "gate" "cell" "net"
    "vector" "total[nA]" "shift[%]";
  Array.iteri
    (fun i (ge : Estimator.gate_estimate) ->
      if i < limit then begin
        let total = Report.total ge.Estimator.with_loading in
        let base = Report.total ge.Estimator.no_loading in
        Format.fprintf ppf "%6d %-7s %-12s %-6s %12.1f %+10.2f@."
          ge.Estimator.gate.Netlist.id
          (Gate.name ge.Estimator.gate.Netlist.kind)
          (Netlist.net_name netlist ge.Estimator.gate.Netlist.out)
          (Logic.vector_to_string ge.Estimator.vector)
          (na total)
          (if base = 0.0 then 0.0 else (total -. base) /. base *. 100.0)
      end)
    ranked

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc
