module Gate = Leakage_circuit.Gate
module Logic = Leakage_circuit.Logic

type t = {
  grid : Characterize.grid_spec;
  device : Leakage_device.Params.t;
  temp : float;
  vdd : float;
  cache : (int, Characterize.entry) Hashtbl.t;
}

let create ?(grid = Characterize.default_grid) ~device ~temp ?vdd () =
  {
    grid;
    device;
    temp;
    vdd = Option.value vdd ~default:device.Leakage_device.Params.vdd;
    cache = Hashtbl.create 64;
  }

let device t = t.device
let temp t = t.temp
let vdd t = t.vdd

(* kinds code below 64, strength buckets below 2^10, vectors below 2^16 *)
let strength_bucket strength =
  let q = int_of_float (Float.round (strength *. 4.0)) in
  Stdlib.max 1 (Stdlib.min 1023 q)

let key kind strength vector =
  (Gate.code kind lsl 26)
  lor (strength_bucket strength lsl 16)
  lor Logic.int_of_vector vector

let entry ?(strength = 1.0) t kind vector =
  let k = key kind strength vector in
  match Hashtbl.find_opt t.cache k with
  | Some e -> e
  | None ->
    let quantized = float_of_int (strength_bucket strength) /. 4.0 in
    let e =
      Characterize.characterize ~grid:t.grid ~strength:quantized
        ~device:t.device ~temp:t.temp ~vdd:t.vdd kind vector
    in
    Hashtbl.replace t.cache k e;
    e

let precharacterize ?(kinds = Gate.all_kinds) t =
  List.iter
    (fun kind ->
      List.iter
        (fun vector -> ignore (entry t kind vector))
        (Logic.all_vectors (Gate.arity kind)))
    kinds

let entry_count t = Hashtbl.length t.cache
