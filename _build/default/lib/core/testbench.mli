(** Single-cell characterization testbench.

    The cell under test has each input pin driven by a reference inverter
    (minimum size, ideal input), so the pin nets have the finite driving
    impedance through which injected loading current becomes a voltage
    shift — the mechanism of §4. The output net is left unloaded; loading on
    any net is emulated by ideal current-source injection. *)

type t = {
  netlist : Leakage_circuit.Netlist.t;
  dut_gate : int;  (** gate id of the cell under test *)
  pin_nets : Leakage_circuit.Netlist.net array; (** DUT input nets *)
  out_net : Leakage_circuit.Netlist.net;
  pattern : Leakage_circuit.Logic.vector;
      (** primary-input pattern that applies the requested vector at the
          DUT pins (drivers invert) *)
}

val make :
  ?strength:float ->
  Leakage_circuit.Gate.kind -> Leakage_circuit.Logic.vector -> t
(** Raises [Invalid_argument] on vector/arity mismatch. [strength] sizes the
    cell under test (reference drivers stay minimum size). *)

type solved = {
  tb : t;
  flat : Leakage_spice.Flatten.t;
  solution : Leakage_spice.Dc_solver.result;
  report : Leakage_spice.Leakage_report.t;
}

val solve :
  ?injections:
    (Leakage_circuit.Netlist.net * float) list ->
  device:Leakage_device.Params.t ->
  temp:float ->
  ?vdd:float ->
  t ->
  solved
(** DC-solve the bench with loading currents injected into the given nets
    (amps, positive into the net). *)

val dut_components : solved -> Leakage_spice.Leakage_report.components
(** Leakage of the cell under test only (drivers excluded). *)

val dut_pin_injection : solved -> int -> float
(** Current the DUT injects into its input net through pin [i] (positive
    raises the net) — the per-pin "gate leakage contribution" the Fig-13
    algorithm sums over fanout gates. *)

val isolated_components :
  ?strength:float ->
  device:Leakage_device.Params.t ->
  temp:float ->
  ?vdd:float ->
  Leakage_circuit.Gate.kind ->
  Leakage_circuit.Logic.vector ->
  Leakage_spice.Leakage_report.components
(** Leakage of the cell alone with ideal rail-connected inputs and an
    unloaded output: the paper's L_NOM. *)
