module Netlist = Leakage_circuit.Netlist
module Gate = Leakage_circuit.Gate
module Logic = Leakage_circuit.Logic
module Topo = Leakage_circuit.Topo
module Report = Leakage_spice.Leakage_report

let gate_state_distribution kind pin_probs =
  let arity = Gate.arity kind in
  if Array.length pin_probs <> arity then
    invalid_arg "Probabilistic.gate_state_distribution: arity mismatch";
  List.map
    (fun vector ->
      let p = ref 1.0 in
      Array.iteri
        (fun i v ->
          p := !p *. (match v with
                      | Logic.One -> pin_probs.(i)
                      | Logic.Zero -> 1.0 -. pin_probs.(i)))
        vector;
      (vector, !p))
    (Logic.all_vectors arity)

let propagate ?input_probability netlist =
  let pis = Netlist.inputs netlist in
  let input_probability =
    match input_probability with
    | Some p ->
      if Array.length p <> Array.length pis then
        invalid_arg "Probabilistic.propagate: input probability size mismatch";
      Array.iter
        (fun v ->
          if v < 0.0 || v > 1.0 then
            invalid_arg "Probabilistic.propagate: probability outside [0,1]")
        p;
      p
    | None -> Array.make (Array.length pis) 0.5
  in
  let prob = Array.make (Netlist.net_count netlist) 0.0 in
  Array.iteri (fun i net -> prob.(net) <- input_probability.(i)) pis;
  Array.iter
    (fun (g : Netlist.gate) ->
      let pin_probs = Array.map (fun net -> prob.(net)) g.fan_in in
      let p_one =
        List.fold_left
          (fun acc (vector, p) ->
            if Logic.to_bool (Gate.eval_logic g.kind vector) then acc +. p
            else acc)
          0.0
          (gate_state_distribution g.kind pin_probs)
      in
      prob.(g.out) <- p_one)
    (Topo.order netlist);
  prob

type expectation = {
  totals : Report.components;
  baseline_totals : Report.components;
  net_probability : float array;
  net_injection : float array;
}

let expected_leakage ?input_probability lib netlist =
  let prob = propagate ?input_probability netlist in
  let gates = Netlist.gates netlist in
  (* per gate: the state distribution and its characterization entries *)
  let distributions =
    Array.map
      (fun (g : Netlist.gate) ->
        let pin_probs = Array.map (fun net -> prob.(net)) g.fan_in in
        gate_state_distribution g.kind pin_probs
        |> List.filter (fun (_, p) -> p > 1e-12)
        |> List.map (fun (vector, p) ->
               ( p,
                 Library.entry ~strength:g.Netlist.strength lib g.Netlist.kind
                   vector )))
      gates
  in
  (* expected injection per net from the state-weighted pin currents *)
  let net_injection = Array.make (Netlist.net_count netlist) 0.0 in
  let expected_pin g_id pin =
    List.fold_left
      (fun acc (p, (e : Characterize.entry)) ->
        acc +. (p *. e.Characterize.pin_injection.(pin)))
      0.0 distributions.(g_id)
  in
  Array.iter
    (fun (g : Netlist.gate) ->
      Array.iteri
        (fun pin net ->
          net_injection.(net) <- net_injection.(net) +. expected_pin g.id pin)
        g.fan_in)
    gates;
  let is_pi_net =
    let flags = Array.make (Netlist.net_count netlist) true in
    Array.iter (fun (g : Netlist.gate) -> flags.(g.out) <- false) gates;
    flags
  in
  let totals = ref Report.zero and baseline = ref Report.zero in
  Array.iter
    (fun (g : Netlist.gate) ->
      List.iter
        (fun (p, (e : Characterize.entry)) ->
          let loading_in =
            Array.mapi
              (fun pin net ->
                if is_pi_net.(net) then -.e.Characterize.pin_injection.(pin)
                else net_injection.(net) -. e.Characterize.pin_injection.(pin))
              g.fan_in
          in
          let loading_out = net_injection.(g.out) in
          let with_loading = Characterize.apply e ~loading_in ~loading_out in
          totals := Report.add !totals (Report.scale p with_loading);
          baseline :=
            Report.add !baseline
              (Report.scale p e.Characterize.nominal_isolated))
        distributions.(g.id))
    gates;
  {
    totals = !totals;
    baseline_totals = !baseline;
    net_probability = prob;
    net_injection;
  }
