(** Result export: CSV and aligned-table rendering of estimation results.

    Downstream flows (spreadsheets, plotting scripts) consume the CSV forms;
    the pretty printers back the CLI. Currents are exported in nano-amperes,
    percentages as plain numbers. *)

val per_gate_csv : Leakage_circuit.Netlist.t -> Estimator.result -> string
(** One row per gate:
    [gate_id,cell,output_net,vector,isub_nA,igate_nA,ibtbt_nA,total_nA,
    no_loading_total_nA,loading_shift_percent]. *)

val totals_csv :
  (string * Leakage_spice.Leakage_report.components) list -> string
(** Labeled component rows: [label,isub_nA,igate_nA,ibtbt_nA,total_nA]. *)

val ld_sweep_csv : Loading.ld_point array -> string
(** [current_nA,ld_sub,ld_gate,ld_btbt,ld_total] rows for a loading sweep. *)

val mc_csv : Monte_carlo.sample array -> string
(** One row per Monte-Carlo sample:
    [loaded_sub,loaded_gate,loaded_btbt,loaded_total,unloaded_...] in nA. *)

val pp_per_gate :
  ?limit:int ->
  Format.formatter -> Leakage_circuit.Netlist.t -> Estimator.result -> unit
(** Human-readable per-gate table, heaviest leakers first ([limit] rows,
    default 20). *)

val write_file : string -> string -> unit
(** [write_file path contents]. *)
