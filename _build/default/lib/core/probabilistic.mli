(** Average leakage from signal probabilities.

    The paper evaluates averages over 100 random vectors; this module
    computes the expectation in closed form instead: primary-input '1'
    probabilities are propagated through the logic (independence
    assumption), each gate's state distribution follows from its pin
    probabilities, and expected leakage sums state-weighted characterization
    entries, with loading taken at the expected per-net injection (the
    loading tables are nearly linear over the realistic range, so the Jensen
    error is negligible — checked by tests against empirical vector
    averages).

    Reconvergent fanout correlates signals and the independence assumption
    then biases probabilities, as in all classic static probability
    propagation; on tree-like circuits the expectation is exact. *)

val propagate :
  ?input_probability:float array ->
  Leakage_circuit.Netlist.t ->
  float array
(** Per-net probability of logic '1' (default: 0.5 on every primary input).
    Raises [Invalid_argument] on a size mismatch or probabilities outside
    [0, 1]. *)

val gate_state_distribution :
  Leakage_circuit.Gate.kind -> float array -> (Leakage_circuit.Logic.vector * float) list
(** Probability of each input vector of a cell given independent pin
    '1'-probabilities (exposed for tests; sums to 1). *)

type expectation = {
  totals : Leakage_spice.Leakage_report.components;
  (** expected loading-aware leakage *)
  baseline_totals : Leakage_spice.Leakage_report.components;
  (** expected no-loading leakage *)
  net_probability : float array;
  net_injection : float array;  (** expected signed loading current per net *)
}

val expected_leakage :
  ?input_probability:float array ->
  Library.t ->
  Leakage_circuit.Netlist.t ->
  expectation
(** Closed-form average leakage over the input distribution — the analytic
    counterpart of averaging the estimator over random vectors. *)
