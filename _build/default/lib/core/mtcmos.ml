module Netlist = Leakage_circuit.Netlist
module Simulate = Leakage_circuit.Simulate
module Flatten = Leakage_spice.Flatten
module Dc_solver = Leakage_spice.Dc_solver
module Report = Leakage_spice.Leakage_report

type mode_result = {
  leakage : Report.components;
  footer_leakage : Report.components;
  virtual_ground : float;
  converged : bool;
}

type result = {
  ungated : Report.components;
  active : mode_result;
  standby : mode_result;
  standby_reduction_percent : float;
  active_overhead_percent : float;
}

let solve_mode ~device ~temp ~sleep netlist assignment =
  let flat = Flatten.flatten ?sleep ~device ~temp netlist assignment in
  (* In standby nothing is strongly driven — every node's equilibrium hangs
     on its neighbours through leakage-level conductances — so Gauss-Seidel
     loses its diagonal dominance. Small circuits go to the dense Newton;
     large ones get generous sweep headroom (their sheer node count restores
     enough local stiffness in practice). *)
  let solution =
    if flat.Flatten.n_unknowns <= 150 then Dc_solver.solve_dense flat
    else
      Dc_solver.solve
        ~options:{ Dc_solver.default_options with Dc_solver.max_sweeps = 400 }
        flat
  in
  let report = Report.of_solution flat solution.Dc_solver.voltages in
  let virtual_ground =
    match Flatten.virtual_ground flat with
    | Some i -> solution.Dc_solver.voltages.(i)
    | None -> 0.0
  in
  ( {
      leakage = report.Report.totals;
      footer_leakage = report.Report.footer;
      virtual_ground;
      converged = solution.Dc_solver.converged;
    },
    report )

let analyze ?sleep_width ~device ~temp netlist pattern =
  let sleep_width =
    match sleep_width with
    | Some w ->
      if w <= 0.0 then invalid_arg "Mtcmos.analyze: non-positive sleep width";
      w
    | None -> float_of_int (Netlist.gate_count netlist)
  in
  let assignment = Simulate.run netlist pattern in
  let ungated_mode, ungated_report =
    solve_mode ~device ~temp ~sleep:None netlist assignment
  in
  ignore ungated_mode;
  let active, _ =
    solve_mode ~device ~temp
      ~sleep:(Some { Flatten.sleep_width; sleep_on = true })
      netlist assignment
  in
  let standby, _ =
    solve_mode ~device ~temp
      ~sleep:(Some { Flatten.sleep_width; sleep_on = false })
      netlist assignment
  in
  let ungated = ungated_report.Report.totals in
  let pct v reference = (v -. reference) /. reference *. 100.0 in
  {
    ungated;
    active;
    standby;
    standby_reduction_percent =
      -.pct (Report.total standby.leakage) (Report.total ungated);
    active_overhead_percent =
      pct (Report.total active.leakage) (Report.total ungated);
  }

let width_sweep ~device ~temp ~widths netlist pattern =
  Array.map
    (fun w -> (w, analyze ~sleep_width:w ~device ~temp netlist pattern))
    widths
