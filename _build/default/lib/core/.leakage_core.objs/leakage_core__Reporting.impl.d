lib/core/reporting.ml: Array Buffer Estimator Format Leakage_circuit Leakage_device Leakage_spice List Loading Monte_carlo Printf String
