lib/core/testbench.mli: Leakage_circuit Leakage_device Leakage_spice
