lib/core/dual_vth.ml: Array Estimator Leakage_circuit Leakage_device Leakage_spice List Stdlib
