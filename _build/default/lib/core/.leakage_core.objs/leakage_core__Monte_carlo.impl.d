lib/core/monte_carlo.ml: Array Leakage_circuit Leakage_device Leakage_numeric Leakage_spice Printf
