lib/core/characterize.mli: Leakage_circuit Leakage_device Leakage_numeric Leakage_spice
