lib/core/statistical.ml: Array Characterize Estimator Leakage_circuit Leakage_device Leakage_numeric Leakage_spice Library Testbench
