lib/core/testbench.ml: Array Leakage_circuit Leakage_spice List Printf
