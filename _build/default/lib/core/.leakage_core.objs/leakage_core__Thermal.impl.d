lib/core/thermal.ml: Array Estimator Float Hashtbl Leakage_device Leakage_spice Library
