lib/core/mtcmos.ml: Array Leakage_circuit Leakage_spice
