lib/core/vector_control.mli: Leakage_circuit Leakage_numeric Library
