lib/core/estimator.ml: Array Characterize Leakage_circuit Leakage_numeric Leakage_spice Library List
