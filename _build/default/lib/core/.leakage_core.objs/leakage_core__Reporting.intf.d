lib/core/reporting.mli: Estimator Format Leakage_circuit Leakage_spice Loading Monte_carlo
