lib/core/dual_vth.mli: Leakage_circuit Leakage_device Leakage_spice Library
