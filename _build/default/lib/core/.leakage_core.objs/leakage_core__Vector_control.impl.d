lib/core/vector_control.ml: Array Estimator Leakage_circuit Leakage_numeric Leakage_spice
