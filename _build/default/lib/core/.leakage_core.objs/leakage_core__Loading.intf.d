lib/core/loading.mli: Leakage_circuit Leakage_device
