lib/core/estimator.mli: Leakage_circuit Leakage_spice Library
