lib/core/mtcmos.mli: Leakage_circuit Leakage_device Leakage_spice
