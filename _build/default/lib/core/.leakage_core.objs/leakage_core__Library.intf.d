lib/core/library.mli: Characterize Leakage_circuit Leakage_device
