lib/core/characterize.ml: Array Float Leakage_circuit Leakage_device Leakage_numeric Leakage_spice Testbench
