lib/core/monte_carlo.mli: Leakage_circuit Leakage_device Leakage_spice
