lib/core/probabilistic.ml: Array Characterize Leakage_circuit Leakage_spice Library List
