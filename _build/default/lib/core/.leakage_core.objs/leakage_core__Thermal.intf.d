lib/core/thermal.mli: Leakage_circuit Leakage_device Leakage_spice
