lib/core/probabilistic.mli: Leakage_circuit Leakage_spice Library
