lib/core/library.ml: Characterize Float Hashtbl Leakage_circuit Leakage_device List Option Stdlib
