lib/core/loading.ml: Array Leakage_circuit Leakage_device Leakage_spice Testbench
