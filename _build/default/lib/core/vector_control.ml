module Rng = Leakage_numeric.Rng
module Logic = Leakage_circuit.Logic
module Netlist = Leakage_circuit.Netlist
module Report = Leakage_spice.Leakage_report

type search_result = {
  vector : Logic.vector;
  total : float;
}

let objective ~use_loading lib netlist vector =
  let r = Estimator.estimate lib netlist vector in
  if use_loading then Report.total r.Estimator.totals
  else Report.total r.Estimator.baseline_totals

let better a b = if b.total < a.total then b else a

let exhaustive ?(use_loading = true) lib netlist =
  let width = Array.length (Netlist.inputs netlist) in
  if width > 20 then
    invalid_arg "Vector_control.exhaustive: too many inputs (> 20)";
  let eval v = { vector = v; total = objective ~use_loading lib netlist v } in
  let best = ref (eval (Logic.vector_of_int ~width 0)) in
  for n = 1 to (1 lsl width) - 1 do
    best := better !best (eval (Logic.vector_of_int ~width n))
  done;
  !best

let random_search ?(use_loading = true) ~rng ~samples lib netlist =
  if samples <= 0 then invalid_arg "Vector_control.random_search: samples";
  let width = Array.length (Netlist.inputs netlist) in
  let eval v = { vector = v; total = objective ~use_loading lib netlist v } in
  let best = ref (eval (Logic.random_vector rng width)) in
  for _ = 2 to samples do
    best := better !best (eval (Logic.random_vector rng width))
  done;
  !best

let greedy_descent ?(use_loading = true) ?(max_rounds = 64) lib netlist ~start =
  let eval v = { vector = v; total = objective ~use_loading lib netlist v } in
  let flip v i =
    let v' = Array.copy v in
    v'.(i) <- Logic.lnot v'.(i);
    v'
  in
  let current = ref (eval (Array.copy start)) in
  let improved = ref true in
  let rounds = ref 0 in
  while !improved && !rounds < max_rounds do
    incr rounds;
    improved := false;
    let best_here = ref !current in
    for i = 0 to Array.length start - 1 do
      best_here := better !best_here (eval (flip !current.vector i))
    done;
    if !best_here.total < !current.total then begin
      current := !best_here;
      improved := true
    end
  done;
  !current

type comparison = {
  with_loading : search_result;
  without_loading : search_result;
  without_under_loading : float;
  changed : bool;
}

let compare_objectives ?(samples = 256) ?(seed = 7) lib netlist =
  let width = Array.length (Netlist.inputs netlist) in
  let search ~use_loading =
    if width <= 14 then exhaustive ~use_loading lib netlist
    else begin
      let rng = Rng.create seed in
      let r = random_search ~use_loading ~rng ~samples lib netlist in
      greedy_descent ~use_loading lib netlist ~start:r.vector
    end
  in
  let with_loading = search ~use_loading:true in
  let without_loading = search ~use_loading:false in
  let without_under_loading =
    objective ~use_loading:true lib netlist without_loading.vector
  in
  {
    with_loading;
    without_loading;
    without_under_loading;
    changed = with_loading.vector <> without_loading.vector;
  }
