module Report = Leakage_spice.Leakage_report

type config = {
  r_theta : float;
  ambient : float;
  other_power : float;
  tol : float;
  max_iter : int;
}

let default_config = {
  r_theta = 40.0;
  ambient = 300.0;
  other_power = 0.0;
  tol = 0.01;
  max_iter = 60;
}

type outcome =
  | Converged of operating_point
  | Runaway of { last_temp : float; iterations : int }

and operating_point = {
  temperature : float;
  leakage : Report.components;
  leakage_power : float;
  iterations : int;
}

let runaway_ceiling = 500.0

(* Each distinct temperature costs a fresh characterization pass, so
   evaluate leakage on a 0.25 K quantized axis and memoize per solve: near
   the fixed point successive iterates collapse onto the same bucket. *)
let make_leakage_cache ~device netlist pattern =
  let cache : (int, Report.components) Hashtbl.t = Hashtbl.create 16 in
  fun temp ->
    let bucket = int_of_float (Float.round (temp *. 4.0)) in
    match Hashtbl.find_opt cache bucket with
    | Some c -> c
    | None ->
      let quantized = float_of_int bucket /. 4.0 in
      let lib = Library.create ~device ~temp:quantized () in
      let c = (Estimator.estimate lib netlist pattern).Estimator.totals in
      Hashtbl.replace cache bucket c;
      c

let solve ?(config = default_config) ~device netlist pattern =
  if config.r_theta < 0.0 then invalid_arg "Thermal.solve: negative r_theta";
  let leakage_at = make_leakage_cache ~device netlist pattern in
  let vdd = device.Leakage_device.Params.vdd in
  (* Damped fixed-point: T' = T + alpha (f(T) - T). The map's slope is
     R·dP/dT, which the subthreshold exponential makes large near runaway;
     damping keeps the iteration stable on the convergent side. *)
  let alpha = 0.5 in
  let rec iterate temp iterations =
    let leakage = leakage_at temp in
    let leakage_power = vdd *. Report.total leakage in
    let target =
      config.ambient +. (config.r_theta *. (config.other_power +. leakage_power))
    in
    let next = temp +. (alpha *. (target -. temp)) in
    if next > runaway_ceiling then Runaway { last_temp = next; iterations }
    else if abs_float (next -. temp) < config.tol then
      Converged { temperature = next; leakage; leakage_power; iterations }
    else if iterations >= config.max_iter then
      (* still drifting after the budget: treat as runaway-like failure if
         the drift is upward and significant, otherwise accept the iterate *)
      if next -. temp > 1.0 then Runaway { last_temp = next; iterations }
      else Converged { temperature = next; leakage; leakage_power; iterations }
    else iterate next (iterations + 1)
  in
  iterate config.ambient 0

let temperature_profile ?(config = default_config) ~device ~r_theta_values
    netlist pattern =
  Array.map
    (fun r_theta ->
      (r_theta, solve ~config:{ config with r_theta } ~device netlist pattern))
    r_theta_values
