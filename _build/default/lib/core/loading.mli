(** Loading-effect analysis of a single cell (Figs 5–9).

    LD values follow eq. (3)–(5): the percentage change of each leakage
    component relative to the nominal (zero-injection) operating point, as a
    function of the loading-current magnitude. Loading current is given as a
    magnitude (the paper's x-axes); its sign at the node follows the node's
    logic state — positive into nets at '0', negative at '1' — matching what
    real fanout/sibling gates do. *)

type ld_point = {
  current : float;   (** loading-current magnitude, A *)
  ld_sub : float;    (** percent *)
  ld_gate : float;
  ld_btbt : float;
  ld_total : float;
}

val input_sweep :
  device:Leakage_device.Params.t ->
  temp:float ->
  ?vdd:float ->
  ?pin:int ->
  ?currents:float array ->
  Leakage_circuit.Gate.kind ->
  Leakage_circuit.Logic.vector ->
  ld_point array
(** LD_IN of eq. (3): sweep loading on one input pin (default pin 0;
    default currents 0–3000 nA in 250 nA steps). *)

val output_sweep :
  device:Leakage_device.Params.t ->
  temp:float ->
  ?vdd:float ->
  ?currents:float array ->
  Leakage_circuit.Gate.kind ->
  Leakage_circuit.Logic.vector ->
  ld_point array
(** LD_OUT of eq. (3). *)

val combined :
  device:Leakage_device.Params.t ->
  temp:float ->
  ?vdd:float ->
  input_current:float ->
  output_current:float ->
  Leakage_circuit.Gate.kind ->
  Leakage_circuit.Logic.vector ->
  ld_point
(** LD_ALL of eq. (4): simultaneous loading on every input pin (the same
    magnitude on each) and on the output. [current] in the result reports
    the input magnitude. *)

val default_currents : float array
(** 0 to 3 µA in 250 nA steps. *)

val temperature_sweep :
  device:Leakage_device.Params.t ->
  ?vdd:float ->
  temps_celsius:float array ->
  input_current:float ->
  output_current:float ->
  Leakage_circuit.Gate.kind ->
  Leakage_circuit.Logic.vector ->
  (float * ld_point) array
(** Fig 9: LD_ALL vs temperature (°C); each point is evaluated against the
    nominal at the same temperature. *)
