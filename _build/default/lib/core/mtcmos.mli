(** MTCMOS (sleep-transistor / power-gating) standby analysis.

    The strongest of the leakage-control techniques the paper's introduction
    motivates: a wide footer NMOS between the logic's virtual ground and the
    true ground rail. Active, it costs a small voltage drop; in standby its
    off-state stack with the whole circuit lets the virtual ground float up
    a few hundred millivolts, collapsing subthreshold leakage — the
    circuit-level form of the stacking effect of §4/[8].

    This analysis is transistor-level only (the Fig-13 tables assume hard
    rails); it drives the full DC solver with the shared virtual-ground
    unknown of [Leakage_spice.Flatten]. *)

type mode_result = {
  leakage : Leakage_spice.Leakage_report.components;
  (** whole-circuit leakage including the footer's own *)
  footer_leakage : Leakage_spice.Leakage_report.components;
  virtual_ground : float;  (** solved virtual-ground voltage, V *)
  converged : bool;
}

type result = {
  ungated : Leakage_spice.Leakage_report.components;
  (** the same circuit without power gating *)
  active : mode_result;    (** footer conducting *)
  standby : mode_result;   (** footer off *)
  standby_reduction_percent : float;
  (** standby vs ungated total *)
  active_overhead_percent : float;
  (** active-mode leakage change caused by the footer (can be negative:
      the small virtual-ground rise adds circuit-level stacking) *)
}

val analyze :
  ?sleep_width:float ->
  device:Leakage_device.Params.t ->
  temp:float ->
  Leakage_circuit.Netlist.t ->
  Leakage_circuit.Logic.vector ->
  result
(** Solve the three operating modes. [sleep_width] defaults to one µm of
    footer width per gate (a typical 1x-area budget). *)

val width_sweep :
  device:Leakage_device.Params.t ->
  temp:float ->
  widths:float array ->
  Leakage_circuit.Netlist.t ->
  Leakage_circuit.Logic.vector ->
  (float * result) array
(** The classic sizing trade-off: wider footers cost silicon and standby
    leakage, narrower ones raise the active virtual ground. *)
