module Netlist = Leakage_circuit.Netlist
module Topo = Leakage_circuit.Topo
module Report = Leakage_spice.Leakage_report

type assignment = bool array

(* Longest unit-delay path through each gate = its depth from the inputs
   plus the longest tail from its output to any primary output; a gate is
   timing-noncritical when that through-path sits well below the circuit
   depth, so slowing it cannot create a new critical path. *)
let slack_assignment ~critical_margin netlist =
  if critical_margin < 0 then
    invalid_arg "Dual_vth.slack_assignment: negative margin";
  let levels = Topo.levels netlist in
  let order = Topo.order netlist in
  let n_gates = Netlist.gate_count netlist in
  let tail = Array.make n_gates 0 in
  (* reverse topological pass over gates *)
  for i = Array.length order - 1 downto 0 do
    let g = order.(i) in
    let downstream =
      List.fold_left
        (fun acc (consumer : Netlist.gate) ->
          Stdlib.max acc (tail.(consumer.id) + 1))
        0
        (Netlist.fanout netlist g.Netlist.out)
    in
    tail.(g.Netlist.id) <- downstream
  done;
  let depth = Array.fold_left Stdlib.max 0 levels in
  Array.init n_gates (fun id ->
      levels.(id) + tail.(id) < depth - critical_margin)

type evaluation = {
  assignment : assignment;
  n_high : int;
  totals : Report.components;
  baseline : Report.components;
  reduction_percent : float;
}

let evaluate ~low_lib ~high_lib assignment netlist pattern =
  if Array.length assignment <> Netlist.gate_count netlist then
    invalid_arg "Dual_vth.evaluate: assignment size mismatch";
  let library_of_gate id = if assignment.(id) then high_lib else low_lib in
  let mixed = Estimator.estimate ~library_of_gate low_lib netlist pattern in
  let all_low = Estimator.estimate low_lib netlist pattern in
  let totals = mixed.Estimator.totals in
  let baseline = all_low.Estimator.totals in
  {
    assignment;
    n_high = Array.fold_left (fun acc h -> if h then acc + 1 else acc) 0 assignment;
    totals;
    baseline;
    reduction_percent =
      (Report.total baseline -. Report.total totals)
      /. Report.total baseline *. 100.0;
  }

let high_vth_device ?(shift = 0.08) device =
  let d = Leakage_device.Params.with_vth_shift device shift in
  { d with Leakage_device.Params.name = d.Leakage_device.Params.name ^ "-HVT" }
