module Netlist = Leakage_circuit.Netlist
module Gate = Leakage_circuit.Gate
module Logic = Leakage_circuit.Logic
module Simulate = Leakage_circuit.Simulate
module Flatten = Leakage_spice.Flatten
module Dc_solver = Leakage_spice.Dc_solver
module Report = Leakage_spice.Leakage_report

type t = {
  netlist : Netlist.t;
  dut_gate : int;
  pin_nets : Netlist.net array;
  out_net : Netlist.net;
  pattern : Logic.vector;
}

let make ?strength kind vector =
  let arity = Gate.arity kind in
  if Array.length vector <> arity then
    invalid_arg
      (Printf.sprintf "Testbench.make: %s expects a %d-bit vector"
         (Gate.name kind) arity);
  let b = Netlist.Builder.create ("tb_" ^ Gate.name kind) in
  let pin_nets =
    Array.init arity (fun i ->
        let pi = Netlist.Builder.input ~name:(Printf.sprintf "pi%d" i) b in
        Netlist.Builder.gate ~name:(Printf.sprintf "pin%d" i) b Gate.Inv [| pi |])
  in
  let out_net = Netlist.Builder.gate ~name:"out" ?strength b kind pin_nets in
  Netlist.Builder.mark_output b out_net;
  let netlist = Netlist.Builder.finish b in
  (* Drivers are gates 0..arity-1, the DUT is gate [arity]; drivers invert,
     so the primary pattern is the complement of the requested pin vector. *)
  { netlist;
    dut_gate = arity;
    pin_nets;
    out_net;
    pattern = Array.map Logic.lnot vector }

type solved = {
  tb : t;
  flat : Flatten.t;
  solution : Dc_solver.result;
  report : Report.t;
}

let solve ?(injections = []) ~device ~temp ?vdd tb =
  let assignment = Simulate.run tb.netlist tb.pattern in
  let flat = Flatten.flatten ~device ~temp ?vdd tb.netlist assignment in
  let unknown_injections =
    List.map
      (fun (net, amps) ->
        match Flatten.unknown_of_net flat net with
        | Some u -> (u, amps)
        | None ->
          invalid_arg "Testbench.solve: injection into a primary input net")
      injections
  in
  let solution = Dc_solver.solve ~injections:unknown_injections flat in
  let report = Report.of_solution flat solution.Dc_solver.voltages in
  { tb; flat; solution; report }

let dut_components s = s.report.Report.per_gate.(s.tb.dut_gate)

let dut_pin_injection s pin =
  -. Report.input_pin_current s.flat s.solution.Dc_solver.voltages
       ~gate_id:s.tb.dut_gate ~pin

let isolated_components ?strength ~device ~temp ?vdd kind vector =
  let arity = Gate.arity kind in
  if Array.length vector <> arity then
    invalid_arg "Testbench.isolated_components: vector/arity mismatch";
  let b = Netlist.Builder.create ("iso_" ^ Gate.name kind) in
  let pins = Array.init arity (fun i ->
      Netlist.Builder.input ~name:(Printf.sprintf "pi%d" i) b) in
  let out = Netlist.Builder.gate ~name:"out" ?strength b kind pins in
  Netlist.Builder.mark_output b out;
  let netlist = Netlist.Builder.finish b in
  let assignment = Simulate.run netlist vector in
  let flat = Flatten.flatten ~device ~temp ?vdd netlist assignment in
  let solution = Dc_solver.solve flat in
  let report = Report.of_solution flat solution.Dc_solver.voltages in
  report.Report.per_gate.(0)
