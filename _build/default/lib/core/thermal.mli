(** Leakage–temperature self-consistency.

    §5.2 shows leakage (and the loading effect) growing steeply with
    temperature; in a real package the chip heats itself: junction
    temperature is ambient plus thermal resistance times dissipated power,
    and leakage power feeds back into temperature. This module finds the
    self-consistent operating point

      T = T_ambient + R_theta · (P_other + VDD · I_leak(T))

    by damped fixed-point iteration, characterizing a fresh library at each
    temperature iterate. Because the subthreshold component grows
    exponentially in T, the loop can fail to converge — genuine thermal
    runaway — which is reported rather than hidden. *)

type config = {
  r_theta : float;        (** junction-to-ambient thermal resistance, K/W *)
  ambient : float;        (** ambient temperature, K *)
  other_power : float;    (** non-leakage (switching) power, W *)
  tol : float;            (** temperature convergence tolerance, K *)
  max_iter : int;
}

val default_config : config
(** 40 K/W, 300 K ambient, no switching power, 0.01 K tolerance. *)

type outcome =
  | Converged of operating_point
  | Runaway of { last_temp : float; iterations : int }
      (** iterates exceeded 500 K while still climbing *)

and operating_point = {
  temperature : float;          (** junction temperature, K *)
  leakage : Leakage_spice.Leakage_report.components;
  leakage_power : float;        (** W *)
  iterations : int;
}

val solve :
  ?config:config ->
  device:Leakage_device.Params.t ->
  Leakage_circuit.Netlist.t ->
  Leakage_circuit.Logic.vector ->
  outcome
(** Self-consistent junction temperature and leakage for one input pattern,
    using the loading-aware estimator at each temperature iterate. *)

val temperature_profile :
  ?config:config ->
  device:Leakage_device.Params.t ->
  r_theta_values:float array ->
  Leakage_circuit.Netlist.t ->
  Leakage_circuit.Logic.vector ->
  (float * outcome) array
(** [solve] across packaging options (thermal resistances): the knee where
    convergence turns into runaway is the thermally sustainable limit. *)
