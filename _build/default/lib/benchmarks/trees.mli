(** Regular structural circuits with exactly known functions: parity trees,
    decoders and multiplexer trees. Useful as verifiable workloads (the test
    suite checks them exhaustively) and as extreme-topology stress cases for
    the loading estimator — parity trees are XOR-dense, decoders are
    fanout-heavy. *)

val parity : ?width:int -> unit -> Leakage_circuit.Netlist.t
(** Balanced XOR tree computing odd parity of [width] inputs (default 16).
    One output. *)

val parity_reference : bool array -> bool

val decoder : ?select_bits:int -> unit -> Leakage_circuit.Netlist.t
(** [select_bits]-to-2^[select_bits] one-hot decoder (default 4): every
    output is the AND of the select literals; the select nets fan out to
    half the outputs each — a worst-case loading pattern. *)

val decoder_reference : select_bits:int -> int -> int
(** One-hot output index for a select value (identity; for test symmetry). *)

val mux_tree : ?select_bits:int -> unit -> Leakage_circuit.Netlist.t
(** 2^[select_bits]-to-1 multiplexer built from 2:1 mux cells (default 3).
    Inputs: data d0..d{2^k-1} then selects s0..s{k-1} (s0 is the least
    significant select). *)

val mux_reference : select_bits:int -> data:int -> select:int -> bool
(** Bit [select] of the [data] word. *)
