(** Structural 8-bit ALU (the paper's "alu88" benchmark).

    Inputs: two 8-bit operands, a carry-in, and a 2-bit opcode selecting
    AND / OR / XOR / ADD per bit through a gate-level 4:1 mux. Outputs: the
    8-bit result and the adder carry-out. *)

val build : ?width:int -> unit -> Leakage_circuit.Netlist.t
(** Default width 8. Input order: a0..a{w-1}, b0..b{w-1}, op0, op1, cin. *)

val reference :
  width:int -> a:int -> b:int -> op:int -> cin:bool -> int * bool
(** Software model used by the tests: [(result, carry_out)]; ops 0=AND, 1=OR,
    2=XOR, 3=ADD. *)
