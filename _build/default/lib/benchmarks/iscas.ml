module Rng = Leakage_numeric.Rng
module B = Leakage_circuit.Netlist.Builder
module Gate = Leakage_circuit.Gate

type profile = {
  profile_name : string;
  n_pi : int;
  n_po : int;
  n_ff : int;
  n_gates : int;
}

let profiles = [
  { profile_name = "s838"; n_pi = 34; n_po = 1; n_ff = 32; n_gates = 390 };
  { profile_name = "s1196"; n_pi = 14; n_po = 14; n_ff = 18; n_gates = 530 };
  { profile_name = "s1423"; n_pi = 17; n_po = 5; n_ff = 74; n_gates = 660 };
  { profile_name = "s5378"; n_pi = 35; n_po = 49; n_ff = 179; n_gates = 2780 };
  { profile_name = "s9234"; n_pi = 36; n_po = 39; n_ff = 211; n_gates = 5600 };
  { profile_name = "s13207"; n_pi = 62; n_po = 152; n_ff = 638; n_gates = 7950 };
]

let c_profiles = [
  { profile_name = "c432"; n_pi = 36; n_po = 7; n_ff = 0; n_gates = 160 };
  { profile_name = "c880"; n_pi = 60; n_po = 26; n_ff = 0; n_gates = 383 };
  { profile_name = "c1355"; n_pi = 41; n_po = 32; n_ff = 0; n_gates = 546 };
  { profile_name = "c1908"; n_pi = 33; n_po = 25; n_ff = 0; n_gates = 880 };
  { profile_name = "c2670"; n_pi = 233; n_po = 140; n_ff = 0; n_gates = 1193 };
  { profile_name = "c3540"; n_pi = 50; n_po = 22; n_ff = 0; n_gates = 1669 };
  { profile_name = "c5315"; n_pi = 178; n_po = 123; n_ff = 0; n_gates = 2307 };
  { profile_name = "c6288"; n_pi = 32; n_po = 32; n_ff = 0; n_gates = 2416 };
  { profile_name = "c7552"; n_pi = 207; n_po = 108; n_ff = 0; n_gates = 3512 };
]

let profile name =
  match
    List.find_opt (fun p -> p.profile_name = name) (profiles @ c_profiles)
  with
  | Some p -> p
  | None -> raise Not_found

(* Cell mix loosely following technology-mapped ISCAS89 statistics: NAND/NOR
   heavy, a sprinkle of wide gates, inverters and a little XOR. Weights are
   per-mille. *)
let cell_mix = [
  (200, Gate.Inv);
  (260, Gate.Nand 2);
  (150, Gate.Nor 2);
  (80, Gate.Nand 3);
  (50, Gate.Nor 3);
  (30, Gate.Nand 4);
  (60, Gate.And 2);
  (60, Gate.Or 2);
  (30, Gate.Xor);
  (20, Gate.Buf);
  (10, Gate.Xnor);
  (30, Gate.Aoi21);
  (20, Gate.Oai21);
]

let mix_total = List.fold_left (fun acc (w, _) -> acc + w) 0 cell_mix

let pick_kind rng =
  let roll = Rng.int rng mix_total in
  let rec go acc = function
    | [] -> Gate.Inv
    | (w, k) :: rest -> if roll < acc + w then k else go (acc + w) rest
  in
  go 0 cell_mix

let default_seed name =
  (* Stable small hash of the name so each profile gets its own stream. *)
  let h = ref 5381 in
  String.iter (fun c -> h := ((!h * 33) + Char.code c) land 0x3FFFFFFF) name;
  !h

let generate ?seed p =
  let seed = Option.value seed ~default:(default_seed p.profile_name) in
  let rng = Rng.create seed in
  let b = B.create p.profile_name in
  let capacity = p.n_pi + p.n_ff + p.n_gates in
  let nets = Array.make capacity 0 in
  let count = ref 0 in
  let push n =
    nets.(!count) <- n;
    incr count
  in
  for i = 0 to p.n_pi - 1 do
    push (B.input ~name:(Printf.sprintf "pi%d" i) b)
  done;
  for i = 0 to p.n_ff - 1 do
    push (B.input ~name:(Printf.sprintf "ff%d" i) b)
  done;
  (* Fan-in selection biased toward recent nets, so depth grows and the
     fanout distribution comes out long-tailed like mapped logic; a 15%
     uniform tail creates reconvergence and high-fanout nets. *)
  let pick_fanin () =
    let n = !count in
    if Rng.uniform rng < 0.15 then nets.(Rng.int rng n)
    else begin
      let u = Rng.uniform rng in
      let back = int_of_float (u *. u *. float_of_int n) in
      nets.(n - 1 - Stdlib.min back (n - 1))
    end
  in
  (* Mapped netlists carry a spread of drive strengths; mirror a typical
     60/30/10 split of X1/X2/X4 cells. *)
  let pick_strength () =
    let roll = Rng.int rng 10 in
    if roll < 6 then 1.0 else if roll < 9 then 2.0 else 4.0
  in
  for _ = 1 to p.n_gates do
    let kind = pick_kind rng in
    let arity = Gate.arity kind in
    let seen = Hashtbl.create 4 in
    let fan_in =
      Array.init arity (fun _ ->
          let n = ref (pick_fanin ()) in
          let tries = ref 0 in
          while Hashtbl.mem seen !n && !tries < 8 do
            n := pick_fanin ();
            incr tries
          done;
          Hashtbl.replace seen !n ();
          !n)
    in
    push (B.gate ~strength:(pick_strength ()) b kind fan_in)
  done;
  (* Sinks (true POs plus flip-flop D pins): the most recent nets are the
     least likely to have been consumed, so take half from the top of the
     creation order and half at random. *)
  let n_sinks = p.n_po + p.n_ff in
  for i = 0 to n_sinks - 1 do
    let net =
      if i < n_sinks / 2 && i < !count then nets.(!count - 1 - i)
      else nets.(Rng.int rng !count)
    in
    B.mark_output b net
  done;
  B.finish b

let generate_by_name ?seed name = generate ?seed (profile name)
