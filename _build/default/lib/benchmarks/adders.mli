(** Gate-level adder building blocks shared by the ALU and the multiplier. *)

type net := Leakage_circuit.Netlist.net
type builder := Leakage_circuit.Netlist.Builder.t

val half_adder : builder -> net -> net -> net * net
(** [(sum, carry)]. *)

val full_adder : builder -> net -> net -> net -> net * net
(** [full_adder b a b' cin] is [(sum, carry)] from the classic two-XOR /
    two-AND / OR decomposition. *)

val ripple_adder : builder -> net array -> net array -> net -> net array * net
(** [(sums, carry_out)] of two equal-width little-endian operands. *)

val mux2 : builder -> sel:net -> net -> net -> net
(** [mux2 ~sel a b] is [a] when [sel] is 0, [b] when 1. *)
