module B = Leakage_circuit.Netlist.Builder
module Gate = Leakage_circuit.Gate

(* One adder cell with optional second operand / carry-in (constant-zero
   inputs are elided rather than modeled as nets). Returns (sum, carry). *)
let add3 b x y_opt c_opt =
  match y_opt, c_opt with
  | Some y, Some c ->
    let sum, carry = Adders.full_adder b x y c in
    (sum, Some carry)
  | Some y, None ->
    let sum, carry = Adders.half_adder b x y in
    (sum, Some carry)
  | None, Some c ->
    let sum, carry = Adders.half_adder b x c in
    (sum, Some carry)
  | None, None -> (x, None)

(* Shift-add array: S_0 = pp_0, S_j = (S_{j-1} >> 1) + pp_j, emitting the
   low bit of each S_j as product bit j. *)
let build ?(width = 8) () =
  if width < 2 then invalid_arg "Mult8.build: width must be at least 2";
  let b = B.create (Printf.sprintf "mult%d%d" width width) in
  let a = Array.init width (fun i -> B.input ~name:(Printf.sprintf "a%d" i) b) in
  let y = Array.init width (fun j -> B.input ~name:(Printf.sprintf "b%d" j) b) in
  let pp i j = B.gate b (Gate.And 2) [| a.(i); y.(j) |] in
  let running = ref (Array.init width (fun i -> pp i 0)) in
  let top = ref None in
  let product = ref [ !running.(0) ] (* p0, collected in reverse *) in
  for j = 1 to width - 1 do
    let carry = ref None in
    let next =
      Array.init width (fun i ->
          let shifted =
            if i < width - 1 then Some !running.(i + 1) else !top
          in
          let sum, carry' = add3 b (pp i j) shifted !carry in
          carry := carry';
          sum)
    in
    top := !carry;
    running := next;
    product := next.(0) :: !product
  done;
  (* Remaining high bits: S_{w-1} shifted out, then the final carry. *)
  for i = 1 to width - 1 do
    product := !running.(i) :: !product
  done;
  (match !top with
   | Some t -> product := t :: !product
   | None -> assert false (* width >= 2 always produces a top carry net *));
  List.iter (fun n -> B.mark_output b n) (List.rev !product);
  B.finish b

let reference ~width ~a ~b =
  let mask = (1 lsl width) - 1 in
  (a land mask) * (b land mask)
