type entry = {
  label : string;
  build : unit -> Leakage_circuit.Netlist.t;
}

let iscas name = { label = name; build = (fun () -> Iscas.generate_by_name name) }

let all =
  [
    iscas "s838";
    iscas "s1196";
    iscas "s1423";
    iscas "s5378";
    iscas "s9234";
    iscas "s13207";
    { label = "alu88"; build = (fun () -> Alu8.build ()) };
    { label = "mult88"; build = (fun () -> Mult8.build ()) };
  ]

let find label = List.find (fun e -> e.label = label) all

let names = List.map (fun e -> e.label) all
