module B = Leakage_circuit.Netlist.Builder
module Gate = Leakage_circuit.Gate

let half_adder b x y =
  let sum = B.gate b Gate.Xor [| x; y |] in
  let carry = B.gate b (Gate.And 2) [| x; y |] in
  (sum, carry)

let full_adder b x y cin =
  let t = B.gate b Gate.Xor [| x; y |] in
  let sum = B.gate b Gate.Xor [| t; cin |] in
  let c1 = B.gate b (Gate.And 2) [| x; y |] in
  let c2 = B.gate b (Gate.And 2) [| t; cin |] in
  let carry = B.gate b (Gate.Or 2) [| c1; c2 |] in
  (sum, carry)

let ripple_adder b xs ys cin =
  let width = Array.length xs in
  if Array.length ys <> width then
    invalid_arg "Adders.ripple_adder: operand width mismatch";
  let carry = ref cin in
  let sums =
    Array.init width (fun i ->
        let sum, carry' = full_adder b xs.(i) ys.(i) !carry in
        carry := carry';
        sum)
  in
  (sums, !carry)

let mux2 b ~sel x y =
  let nsel = B.gate b Gate.Inv [| sel |] in
  let ax = B.gate b (Gate.And 2) [| x; nsel |] in
  let ay = B.gate b (Gate.And 2) [| y; sel |] in
  B.gate b (Gate.Or 2) [| ax; ay |]
