lib/benchmarks/alu8.mli: Leakage_circuit
