lib/benchmarks/trees.mli: Leakage_circuit
