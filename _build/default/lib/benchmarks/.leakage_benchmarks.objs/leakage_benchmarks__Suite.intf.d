lib/benchmarks/suite.mli: Leakage_circuit
