lib/benchmarks/mult8.ml: Adders Array Leakage_circuit List Printf
