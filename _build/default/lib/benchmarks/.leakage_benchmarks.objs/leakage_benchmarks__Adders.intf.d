lib/benchmarks/adders.mli: Leakage_circuit
