lib/benchmarks/adders.ml: Array Leakage_circuit
