lib/benchmarks/trees.ml: Adders Array Leakage_circuit List Printf
