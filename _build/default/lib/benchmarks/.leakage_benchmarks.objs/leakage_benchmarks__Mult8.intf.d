lib/benchmarks/mult8.mli: Leakage_circuit
