lib/benchmarks/iscas.ml: Array Char Hashtbl Leakage_circuit Leakage_numeric List Option Printf Stdlib String
