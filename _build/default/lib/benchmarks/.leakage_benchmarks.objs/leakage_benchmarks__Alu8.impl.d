lib/benchmarks/alu8.ml: Adders Array Leakage_circuit Printf
