lib/benchmarks/suite.ml: Alu8 Iscas Leakage_circuit List Mult8
