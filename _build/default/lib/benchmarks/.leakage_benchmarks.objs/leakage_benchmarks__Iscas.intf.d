lib/benchmarks/iscas.mli: Leakage_circuit
