module B = Leakage_circuit.Netlist.Builder
module Gate = Leakage_circuit.Gate

let build ?(width = 8) () =
  if width < 1 then invalid_arg "Alu8.build: width must be positive";
  let b = B.create (Printf.sprintf "alu%d%d" width width) in
  let a = Array.init width (fun i -> B.input ~name:(Printf.sprintf "a%d" i) b) in
  let ops = Array.init width (fun i -> B.input ~name:(Printf.sprintf "b%d" i) b) in
  let op0 = B.input ~name:"op0" b in
  let op1 = B.input ~name:"op1" b in
  let cin = B.input ~name:"cin" b in
  let and_bits = Array.init width (fun i -> B.gate b (Gate.And 2) [| a.(i); ops.(i) |]) in
  let or_bits = Array.init width (fun i -> B.gate b (Gate.Or 2) [| a.(i); ops.(i) |]) in
  let xor_bits = Array.init width (fun i -> B.gate b Gate.Xor [| a.(i); ops.(i) |]) in
  let sums, carry_out = Adders.ripple_adder b a ops cin in
  let result =
    Array.init width (fun i ->
        (* op1 selects between the logic pair and the arithmetic pair;
           op0 picks within each pair: 00 AND, 01 OR, 10 XOR, 11 ADD. *)
        let logic = Adders.mux2 b ~sel:op0 and_bits.(i) or_bits.(i) in
        let arith = Adders.mux2 b ~sel:op0 xor_bits.(i) sums.(i) in
        Adders.mux2 b ~sel:op1 logic arith)
  in
  Array.iter (fun n -> B.mark_output b n) result;
  (* The carry flag is only meaningful for ADD (op = 11); gate it so the
     output bus matches the architectural reference for every opcode. *)
  let gated_carry = B.gate b (Gate.And 3) [| carry_out; op0; op1 |] in
  B.mark_output b gated_carry;
  B.finish b

let reference ~width ~a ~b ~op ~cin =
  let mask = (1 lsl width) - 1 in
  let a = a land mask and b = b land mask in
  match op with
  | 0 -> (a land b, false)
  | 1 -> (a lor b, false)
  | 2 -> (a lxor b, false)
  | 3 ->
    let s = a + b + if cin then 1 else 0 in
    (s land mask, s > mask)
  | _ -> invalid_arg "Alu8.reference: op outside 0-3"
