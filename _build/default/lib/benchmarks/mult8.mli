(** Structural 8×8 array multiplier (the paper's "mult88" benchmark).

    Classic carry-save array: an AND partial-product matrix reduced row by
    row with half/full adders, with a final ripple chain for the top bits.
    Inputs a0..a7, b0..b7 (little-endian); outputs p0..p15. *)

val build : ?width:int -> unit -> Leakage_circuit.Netlist.t

val reference : width:int -> a:int -> b:int -> int
(** Software product model used by the tests. *)
