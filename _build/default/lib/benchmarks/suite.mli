(** The paper's benchmark suite (§6 / Fig 12): six ISCAS89-profile circuits,
    the 8-bit ALU and the 8×8 multiplier. *)

type entry = {
  label : string;        (** name used in Fig 12's x-axis *)
  build : unit -> Leakage_circuit.Netlist.t;
}

val all : entry list
(** s838, s1196, s1423, s5378, s9234, s13207, alu88, mult88 — in the
    paper's plotting order. *)

val find : string -> entry
(** Raises [Not_found]. *)

val names : string list
