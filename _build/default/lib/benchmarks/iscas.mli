(** Synthetic ISCAS89-profile benchmark circuits.

    The paper evaluates on six ISCAS89 circuits whose netlists are not
    available in this environment; per the substitution policy (DESIGN.md
    §2) we generate seeded random combinational circuits matched to each
    circuit's published interface and size profile (primary I/O count,
    flip-flop count — cut into pseudo-I/O — and gate count), with a
    realistic cell mix and depth-biased fan-in selection. The circuit-level
    loading statistics the paper reports depend on these aggregates, not on
    the specific ISCAS logic functions. Real [.bench] files can be used
    instead via [Leakage_circuit.Bench_format.parse_file]. *)

type profile = {
  profile_name : string;
  n_pi : int;        (** true primary inputs *)
  n_po : int;        (** true primary outputs *)
  n_ff : int;        (** flip-flops, cut into pseudo PI/PO pairs *)
  n_gates : int;     (** combinational gate target *)
}

val profiles : profile list
(** s838, s1196, s1423, s5378, s9234, s13207 (the paper's table lists
    "s5372"/"s9378", which we read as typos for the standard s5378/s9234). *)

val c_profiles : profile list
(** ISCAS85 combinational profiles (c432 … c7552, [n_ff = 0]) — not in the
    paper's table, provided for wider benchmarking. *)

val profile : string -> profile
(** Lookup by name across both profile lists; raises [Not_found]. *)

val generate : ?seed:int -> profile -> Leakage_circuit.Netlist.t
(** Deterministic for a given (profile, seed); default seed derived from the
    profile name. *)

val generate_by_name : ?seed:int -> string -> Leakage_circuit.Netlist.t
