module Params = Leakage_device.Params
module Model = Leakage_device.Model
module Physics = Leakage_device.Physics
module Netlist = Leakage_circuit.Netlist
module Simulate = Leakage_circuit.Simulate

type components = {
  isub : float;
  igate : float;
  ibtbt : float;
}

let zero = { isub = 0.0; igate = 0.0; ibtbt = 0.0 }
let total c = c.isub +. c.igate +. c.ibtbt

let add a b = {
  isub = a.isub +. b.isub;
  igate = a.igate +. b.igate;
  ibtbt = a.ibtbt +. b.ibtbt;
}

let scale k c = { isub = k *. c.isub; igate = k *. c.igate; ibtbt = k *. c.ibtbt }

let pp_components ppf c =
  Format.fprintf ppf "sub=%.2fnA gate=%.2fnA btbt=%.2fnA total=%.2fnA"
    (Physics.amps_to_nanoamps c.isub)
    (Physics.amps_to_nanoamps c.igate)
    (Physics.amps_to_nanoamps c.ibtbt)
    (Physics.amps_to_nanoamps (total c))

type t = {
  per_gate : components array;
  footer : components;
  totals : components;
  vdd_current : float;
  gnd_current : float;
}

let transistor_components (flat : Flatten.t) x (tr : Flatten.transistor) =
  let v n = Flatten.node_voltage flat x n in
  let bias = { Model.vg = v tr.g; vd = v tr.d; vs = v tr.s; vb = v tr.b } in
  Model.components (flat.device_of_gate tr.owner) tr.pol ~w:tr.w
    ~temp:flat.temp bias

(* The pull network that should be non-conducting under the stage's logic
   state: output high means the pull-down is off, and vice versa. *)
let in_off_network (tr : Flatten.transistor) =
  match tr.net_kind with
  | Flatten.Pull_down -> tr.stage_out_logic
  | Flatten.Pull_up -> not tr.stage_out_logic

let of_solution (flat : Flatten.t) x =
  let n_gates = Netlist.gate_count flat.netlist in
  let per_gate = Array.make n_gates zero in
  let footer = ref zero in
  let vdd_current = ref 0.0 and gnd_current = ref 0.0 in
  Array.iter
    (fun (tr : Flatten.transistor) ->
      let c = transistor_components flat x tr in
      let isub =
        if in_off_network tr && tr.at_output then Model.channel_leakage c
        else 0.0
      in
      let contribution = {
        isub;
        igate = Model.gate_leakage c;
        ibtbt = Model.junction_leakage c;
      } in
      if tr.owner >= 0 then
        per_gate.(tr.owner) <- add per_gate.(tr.owner) contribution
      else footer := add !footer contribution;
      (* Rail currents for conservation checks. *)
      let t = Model.terminals_of_components c in
      let rail_contribution node current =
        match node with
        | Flatten.Rail -> vdd_current := !vdd_current +. current
        | Flatten.Ground -> gnd_current := !gnd_current +. current
        | Flatten.Fixed _ | Flatten.Unknown _ -> ()
      in
      rail_contribution tr.g t.Model.into_gate;
      rail_contribution tr.d t.Model.into_drain;
      rail_contribution tr.s t.Model.into_source;
      rail_contribution tr.b t.Model.into_bulk)
    flat.transistors;
  let totals = add (Array.fold_left add zero per_gate) !footer in
  (* "into terminal" currents at a rail node are exactly what that rail
     supplies; the ground return is their negation on the ground side. *)
  { per_gate; footer = !footer; totals; vdd_current = !vdd_current;
    gnd_current = -. !gnd_current }

let input_pin_current (flat : Flatten.t) x ~gate_id ~pin =
  let acc = ref 0.0 in
  Array.iter
    (fun (tr : Flatten.transistor) ->
      if tr.owner = gate_id && tr.gate_pin = pin then begin
        let c = transistor_components flat x tr in
        acc := !acc +. (Model.terminals_of_components c).Model.into_gate
      end)
    flat.transistors;
  !acc

let analyze ?device_of_gate ?options ~device ~temp ?vdd netlist pattern =
  let assignment = Simulate.run netlist pattern in
  let flat = Flatten.flatten ?device_of_gate ~device ~temp ?vdd netlist assignment in
  let result = Dc_solver.solve ?options flat in
  (of_solution flat result.Dc_solver.voltages, result, flat)
