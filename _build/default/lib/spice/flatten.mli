(** Gate-level → transistor-level expansion for DC solving.

    Every gate instance is expanded through [Gate.decompose] into static-CMOS
    stages; stage internal nets and series-stack nodes become solver
    unknowns. Primary-input nets are ideal voltage sources fixed at the rail
    matching their logic value. The result is the network of
    voltage-controlled current sources that the paper's eq. (1)/(2) writes
    KCL over. *)

type node =
  | Ground
  | Rail
  | Fixed of float    (** ideal source (primary input net) *)
  | Unknown of int    (** solver unknown, densely numbered *)

type network = Pull_up | Pull_down

type sleep_spec = {
  sleep_width : float;  (** footer NMOS width, µm *)
  sleep_on : bool;      (** true = active mode (sleep device conducting) *)
}
(** MTCMOS power gating: every cell's pull-down network returns to a shared
    virtual-ground node instead of the ground rail, and a single wide footer
    NMOS ties that node to ground. In standby ([sleep_on = false]) the
    virtual ground floats up a few hundred millivolts and the circuit-level
    stack effect collapses subthreshold leakage. *)

type transistor = {
  pol : Leakage_device.Params.polarity;
  w : float;
  g : node;
  d : node;
  s : node;
  b : node;
  owner : int;          (** netlist gate id *)
  stage : int;          (** stage index within the owner cell *)
  net_kind : network;
  at_output : bool;     (** has a S/D terminal on the stage output node *)
  gate_pin : int;       (** cell input pin of the gate terminal, -1 if the
                            gate connects to a cell-internal net *)
  gate_logic : bool;    (** logic value at the gate terminal *)
  stage_out_logic : bool; (** logic value of the stage output *)
}

type t = {
  netlist : Leakage_circuit.Netlist.t;
  device_of_gate : int -> Leakage_device.Params.t;
  temp : float;
  vdd : float;
  transistors : transistor array;
  n_unknowns : int;
  net_node : node array;       (** netlist net -> node *)
  initial : float array;       (** logic-derived starting voltages *)
  sweep_order : int array;     (** unknowns in topological update order *)
  blocks : int array array;
      (** per netlist gate in topological order: the unknowns that gate owns
          (its output net, cell-internal nets, stack nodes). Unknowns within
          a block are strongly coupled (series stacks); the solver relaxes
          them jointly. *)
  touching : (int * [ `G | `D | `S | `B ]) list array;
      (** per unknown: transistor terminals attached to it *)
  vgnd : int option;
      (** unknown index of the MTCMOS virtual-ground node, when present *)
}

val flatten :
  ?device_of_gate:(int -> Leakage_device.Params.t) ->
  ?sleep:sleep_spec ->
  device:Leakage_device.Params.t ->
  temp:float ->
  ?vdd:float ->
  Leakage_circuit.Netlist.t ->
  Leakage_circuit.Simulate.assignment ->
  t
(** [flatten ~device ~temp netlist assignment] expands the circuit under the
    given logic assignment. [device_of_gate] overrides the device per gate id
    (Monte-Carlo intra-die variation); [vdd] defaults to [device.vdd];
    [sleep] inserts an MTCMOS footer (see {!sleep_spec}). *)

val virtual_ground : t -> int option
(** The unknown index of the virtual-ground node when the circuit was
    flattened with a [sleep] footer. *)

val node_voltage : t -> float array -> node -> float
(** Resolve a node's voltage given the unknown vector. *)

val unknown_of_net : t -> Leakage_circuit.Netlist.net -> int option
(** The unknown index backing a netlist net ([None] for primary inputs). *)
