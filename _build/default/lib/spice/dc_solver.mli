(** DC operating-point solver.

    Solves the KCL system of eq. (1)/(2): at every internal node, transistor
    terminal currents (plus any injected test current) must balance. Two
    backends:

    - {!solve}: nonlinear Gauss–Seidel — nodes are relaxed one at a time with
      a damped scalar Newton step, sweeping in topological order. Because the
      node coupling is dominated by each net's driver conductance (gate
      tunneling from fanout is orders of magnitude weaker), the sweeps
      converge in a handful of iterations even on multi-thousand-gate
      circuits. This is the production path.

    - {!solve_dense}: damped full-Newton on the complete system with a dense
      finite-difference Jacobian. O(n³) — only for small circuits; used in
      tests to validate the Gauss–Seidel fixed point. *)

type options = {
  tol_voltage : float;  (** sweep convergence: max node update, V *)
  max_sweeps : int;
  v_margin : float;     (** nodes are confined to [-margin, vdd+margin] *)
  max_step : float;     (** per-update voltage step clamp, V *)
}

val default_options : options

type result = {
  voltages : float array;  (** one per unknown *)
  sweeps : int;
  converged : bool;
  max_residual : float;    (** worst KCL violation, A *)
}

val solve :
  ?options:options ->
  ?injections:(int * float) list ->
  Flatten.t ->
  result
(** [injections] adds ideal current sources pushing the given current INTO
    the listed unknowns (the characterization harness models loading gates
    this way). *)

val solve_dense :
  ?injections:(int * float) list ->
  Flatten.t ->
  result
(** Full-Newton reference solution. Intended for circuits with at most a few
    hundred unknowns. *)

val net_voltage :
  Flatten.t -> result -> Leakage_circuit.Netlist.net -> float
(** Solved voltage of a netlist net (rail value for primary inputs). *)

val residual : Flatten.t -> ?injections:(int * float) list ->
  float array -> int -> float
(** KCL residual (A) at one unknown for a voltage vector — exposed for
    tests. *)
