lib/spice/dc_solver.mli: Flatten Leakage_circuit
