lib/spice/flatten.mli: Leakage_circuit Leakage_device
