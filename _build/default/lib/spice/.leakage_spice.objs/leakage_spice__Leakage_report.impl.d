lib/spice/leakage_report.ml: Array Dc_solver Flatten Format Leakage_circuit Leakage_device
