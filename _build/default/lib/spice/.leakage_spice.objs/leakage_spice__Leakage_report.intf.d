lib/spice/leakage_report.mli: Dc_solver Flatten Format Leakage_circuit Leakage_device
