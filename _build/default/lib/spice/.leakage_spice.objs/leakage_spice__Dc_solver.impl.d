lib/spice/dc_solver.ml: Array Flatten Float Leakage_device Leakage_numeric List Stdlib
