lib/spice/flatten.ml: Array Leakage_circuit Leakage_device List Option Stdlib
