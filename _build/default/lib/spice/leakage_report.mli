(** Per-gate leakage attribution from a solved operating point.

    Components follow the paper's eq. (6) bookkeeping:
    - subthreshold: channel current drawn through each stage's logically-off
      pull network, measured at the transistors adjacent to the stage output
      (so a series stack counts its through-current once);
    - gate: sum of all gate-tunneling magnitudes of the cell's devices (on
      and off);
    - junction BTBT: sum of all junction current magnitudes. *)

type components = {
  isub : float;   (** A *)
  igate : float;  (** A *)
  ibtbt : float;  (** A *)
}

val zero : components
val total : components -> float
val add : components -> components -> components
val scale : float -> components -> components
val pp_components : Format.formatter -> components -> unit
(** Prints in nA. *)

type t = {
  per_gate : components array;  (** indexed by netlist gate id *)
  footer : components;
  (** the MTCMOS sleep transistor's own leakage (zero without power gating);
      in standby its subthreshold current is the surviving leakage path *)
  totals : components;          (** gates plus footer *)
  vdd_current : float;          (** current drawn from the VDD rail, A *)
  gnd_current : float;          (** current into the ground rail, A *)
}

val of_solution : Flatten.t -> float array -> t
(** Attribute leakage at a solved voltage vector. *)

val input_pin_current : Flatten.t -> float array -> gate_id:int -> pin:int -> float
(** Signed current flowing from the pin's net into the cell through every
    gate terminal tied to that input pin, in amperes. This is the cell's
    contribution to its input net's loading (negated, it is the current the
    cell injects into the net). *)

val analyze :
  ?device_of_gate:(int -> Leakage_device.Params.t) ->
  ?options:Dc_solver.options ->
  device:Leakage_device.Params.t ->
  temp:float ->
  ?vdd:float ->
  Leakage_circuit.Netlist.t ->
  Leakage_circuit.Logic.vector ->
  t * Dc_solver.result * Flatten.t
(** One-call pipeline: logic-simulate the pattern, flatten, solve
    (Gauss–Seidel), attribute. *)
