type value = Zero | One

let of_bool b = if b then One else Zero
let to_bool = function Zero -> false | One -> true
let lnot = function Zero -> One | One -> Zero
let to_char = function Zero -> '0' | One -> '1'

let of_char = function
  | '0' -> Zero
  | '1' -> One
  | c -> invalid_arg (Printf.sprintf "Logic.of_char: %c" c)

type vector = value array

let vector_of_string s =
  Array.init (String.length s) (fun i -> of_char s.[i])

let vector_to_string v =
  String.init (Array.length v) (fun i -> to_char v.(i))

let vector_of_int ~width n =
  if width < 0 then invalid_arg "Logic.vector_of_int: negative width";
  Array.init width (fun i ->
      of_bool (n land (1 lsl (width - 1 - i)) <> 0))

let int_of_vector v =
  Array.fold_left (fun acc b -> (acc lsl 1) lor (if to_bool b then 1 else 0)) 0 v

let all_vectors arity =
  if arity < 0 || arity > 16 then invalid_arg "Logic.all_vectors: arity outside [0,16]";
  List.init (1 lsl arity) (fun n -> vector_of_int ~width:arity n)

let random_vector rng n =
  Array.init n (fun _ -> of_bool (Leakage_numeric.Rng.bool rng))
