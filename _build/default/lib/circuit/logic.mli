(** Two-valued logic for DC leakage analysis.

    Leakage estimation always applies a fully specified input vector, so a
    two-valued domain is sufficient (the paper's method propagates logic
    values the same way). *)

type value = Zero | One

val of_bool : bool -> value
val to_bool : value -> bool
val lnot : value -> value
val to_char : value -> char
val of_char : char -> value
(** ['0'|'1']; raises [Invalid_argument] otherwise. *)

type vector = value array

val vector_of_string : string -> vector
(** ["010"] → [|Zero; One; Zero|]. *)

val vector_to_string : vector -> string

val all_vectors : int -> vector list
(** Every vector of the given arity, in counting order ("00","01","10","11").
    Arity must be at most 16. *)

val random_vector : Leakage_numeric.Rng.t -> int -> vector

val int_of_vector : vector -> int
(** Big-endian: first element is the most significant bit. *)

val vector_of_int : width:int -> int -> vector
