(** Structural Verilog netlist writer.

    Emits one module built from Verilog gate primitives ([nand], [nor],
    [and], [or], [xor], [xnor], [not], [buf]); AOI/OAI cells are decomposed
    into an AND/OR pair feeding a NOR/NAND through a helper wire, mirroring
    {!Bench_format}. Net names are sanitized into Verilog identifiers
    (collisions resolved with numeric suffixes), so any circuit this library
    can represent exports cleanly. *)

val to_string : ?module_name:string -> Netlist.t -> string
(** Render the circuit. [module_name] defaults to a sanitized form of the
    netlist name. *)

val write_file : ?module_name:string -> string -> Netlist.t -> unit

val sanitize_identifier : string -> string
(** The name-mangling rule used for ports and wires (exposed for tests):
    non-alphanumeric characters become ['_'], an identifier starting with a
    digit gains an ['n'] prefix, and Verilog keywords gain a ['_'] suffix. *)
