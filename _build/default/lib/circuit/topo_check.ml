(* Kahn's algorithm (CLRS topological sort, the paper's reference [11]). *)

let prepare ~net_count ~source_nets ~gate_inputs ~gate_outputs =
  let n_gates = Array.length gate_inputs in
  let net_driver = Array.make net_count (-2) in
  Array.iter (fun n -> net_driver.(n) <- -1) source_nets;
  Array.iteri (fun g out -> net_driver.(out) <- g) gate_outputs;
  (* consumers.(g) = gates reading g's output; indegree counts gate-feeding
     pins only. *)
  let consumers = Array.make n_gates [] in
  let indegree = Array.make n_gates 0 in
  let ok = ref true in
  Array.iteri
    (fun g ins ->
      Array.iter
        (fun net ->
          if net < 0 || net >= net_count then ok := false
          else
            match net_driver.(net) with
            | -2 -> ok := false (* undriven *)
            | -1 -> ()          (* source *)
            | d ->
              consumers.(d) <- g :: consumers.(d);
              indegree.(g) <- indegree.(g) + 1)
        ins)
    gate_inputs;
  if !ok then Some (consumers, indegree) else None

let sort ~net_count ~source_nets ~gate_inputs ~gate_outputs =
  match prepare ~net_count ~source_nets ~gate_inputs ~gate_outputs with
  | None -> None
  | Some (consumers, indegree) ->
    let n_gates = Array.length gate_inputs in
    let queue = Queue.create () in
    Array.iteri (fun g d -> if d = 0 then Queue.add g queue) indegree;
    let order = Array.make n_gates 0 in
    let filled = ref 0 in
    while not (Queue.is_empty queue) do
      let g = Queue.take queue in
      order.(!filled) <- g;
      incr filled;
      List.iter
        (fun c ->
          indegree.(c) <- indegree.(c) - 1;
          if indegree.(c) = 0 then Queue.add c queue)
        consumers.(g)
    done;
    if !filled = n_gates then Some order else None

let levelize ~net_count ~source_nets ~gate_inputs ~gate_outputs =
  match sort ~net_count ~source_nets ~gate_inputs ~gate_outputs with
  | None -> None
  | Some order ->
    let net_level = Array.make net_count 0 in
    let gate_level = Array.make (Array.length gate_inputs) 0 in
    Array.iter
      (fun g ->
        let lvl =
          1 + Array.fold_left
                (fun acc net -> Stdlib.max acc net_level.(net))
                0 gate_inputs.(g)
        in
        gate_level.(g) <- lvl;
        net_level.(gate_outputs.(g)) <- lvl)
      order;
    Some gate_level
