lib/circuit/topo_check.mli:
