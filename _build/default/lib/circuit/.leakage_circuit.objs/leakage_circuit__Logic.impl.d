lib/circuit/logic.ml: Array Leakage_numeric List Printf String
