lib/circuit/topo.mli: Netlist
