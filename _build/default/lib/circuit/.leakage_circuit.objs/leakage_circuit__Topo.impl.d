lib/circuit/topo.ml: Array Netlist Topo_check
