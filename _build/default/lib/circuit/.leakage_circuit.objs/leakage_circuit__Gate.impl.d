lib/circuit/gate.ml: Array Fun List Logic Option Printf Stdlib String
