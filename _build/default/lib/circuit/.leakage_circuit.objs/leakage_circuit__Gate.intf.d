lib/circuit/gate.mli: Logic
