lib/circuit/simulate.mli: Leakage_numeric Logic Netlist
