lib/circuit/topo_check.ml: Array List Queue Stdlib
