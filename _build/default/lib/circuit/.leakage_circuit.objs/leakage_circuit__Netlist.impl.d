lib/circuit/netlist.ml: Array Format Gate Hashtbl List Option Printf Stdlib Topo_check
