lib/circuit/simulate.ml: Array Gate List Logic Netlist Printf Topo
