lib/circuit/logic.mli: Leakage_numeric
