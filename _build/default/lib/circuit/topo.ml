let raw_args t =
  ( Netlist.net_count t,
    Netlist.inputs t,
    Array.map (fun (g : Netlist.gate) -> g.fan_in) (Netlist.gates t),
    Array.map (fun (g : Netlist.gate) -> g.out) (Netlist.gates t) )

let order t =
  let net_count, source_nets, gate_inputs, gate_outputs = raw_args t in
  match Topo_check.sort ~net_count ~source_nets ~gate_inputs ~gate_outputs with
  | Some idx -> Array.map (fun i -> (Netlist.gates t).(i)) idx
  | None -> failwith ("Topo.order: cycle in " ^ Netlist.name t)

let levels t =
  let net_count, source_nets, gate_inputs, gate_outputs = raw_args t in
  match
    Topo_check.levelize ~net_count ~source_nets ~gate_inputs ~gate_outputs
  with
  | Some l -> l
  | None -> failwith ("Topo.levels: cycle in " ^ Netlist.name t)

let net_levels t =
  let gate_levels = levels t in
  let nl = Array.make (Netlist.net_count t) 0 in
  Array.iter
    (fun (g : Netlist.gate) -> nl.(g.out) <- gate_levels.(g.id))
    (Netlist.gates t);
  nl
