lib/device/model.mli: Params
