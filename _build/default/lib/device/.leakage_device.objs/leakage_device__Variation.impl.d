lib/device/variation.ml: Leakage_numeric Params
