lib/device/physics.ml:
