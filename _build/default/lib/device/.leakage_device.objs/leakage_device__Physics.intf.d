lib/device/physics.mli:
