lib/device/model.ml: Float Params Physics
