lib/device/variation.mli: Leakage_numeric Params
