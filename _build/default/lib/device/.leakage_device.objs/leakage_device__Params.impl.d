lib/device/params.ml: Format
