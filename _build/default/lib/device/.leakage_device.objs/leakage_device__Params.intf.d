lib/device/params.mli: Format
