(** Device parameter sets.

    These records play the role the paper's MEDICI-designed 50 nm devices and
    their extracted BSIM4 decks play: a named bundle of compact-model
    parameters from which every leakage component follows. Parameters are
    analytic-model coefficients calibrated so the *relative* behaviour of the
    three leakage mechanisms matches the regime the paper describes (see
    DESIGN.md §2); they are not foundry data. *)

type polarity = Nmos | Pmos

type fet = {
  vth0 : float;       (** zero-bias threshold magnitude at 300 K, V *)
  slope_n : float;    (** subthreshold slope factor n *)
  dibl : float;       (** threshold reduction per volt of |Vds|, V/V *)
  i_spec : float;     (** EKV specific current per µm of width at 300 K, A *)
  vth_tc : float;     (** dVth/dT, V/K (negative for leakier-when-hot) *)
  jg_scale : float;   (** gate-to-channel tunneling density at Vox = Vdd, A/µm² *)
  jg_ov_mult : float; (** overlap-region density multiplier vs channel *)
  jg_reverse : float; (** density multiplier when the oxide field reverses *)
  jb_scale : float;   (** junction BTBT per µm of width at Vrev = Vdd, A/µm *)
}
(** Per-polarity compact-model coefficients. *)

type t = {
  name : string;
  vdd : float;            (** nominal rail, V *)
  vref : float;           (** tunneling-density normalization voltage: the
                              bias at which [jg_scale]/[jb_scale] are quoted.
                              A calibration constant — unlike [vdd] it does
                              not move under supply variation. *)
  length : float;         (** drawn channel length, µm *)
  length_nom : float;     (** nominal length the model was calibrated at, µm *)
  tox : float;            (** oxide thickness, nm *)
  tox_nom : float;        (** calibration oxide thickness, nm *)
  lov : float;            (** gate/S-D overlap length, µm *)
  halo : float;           (** halo (super-halo) dose relative to nominal *)
  alpha_g : float;        (** gate-tunneling exponential slope, 1/V *)
  beta_tox : float;       (** gate-tunneling sensitivity to Tox, 1/nm *)
  alpha_b : float;        (** BTBT exponential slope vs reverse bias, 1/V *)
  k_halo_btbt : float;    (** BTBT dose sensitivity: exp(k*(halo-1)) *)
  k_halo_vth : float;     (** threshold shift per unit relative dose, V *)
  beta_btbt_temp : float; (** BTBT bandgap-narrowing sensitivity, 1/eV *)
  tc_gate : float;        (** linear gate-current temperature slope, 1/K *)
  nmos : fet;
  pmos : fet;
}

val fet : t -> polarity -> fet
(** Select the coefficients for one polarity. *)

val d50 : t
(** 50 nm-class baseline corresponding to the paper's MEDICI device: at 300 K
    the gate and BTBT components are comparable to and slightly above the
    subthreshold component; subthreshold dominates when hot. *)

val d25 : t
(** 25 nm-class device used for the loading-effect figures (Figs 5–9). *)

val d25_s : t
(** Subthreshold-dominated variant (paper's D25-S): same total off-state
    leakage as {!d25} but with the subthreshold share boosted. *)

val d25_g : t
(** Gate-tunneling-dominated variant (D25-G). *)

val d25_jn : t
(** Junction-BTBT-dominated variant (D25-JN). *)

val with_halo : t -> float -> t
(** [with_halo d h] re-targets the halo dose ([h] relative to nominal);
    raises BTBT, lowers DIBL-driven subthreshold, leaves gate current alone
    (Fig 4a). *)

val with_tox : t -> float -> t
(** [with_tox d tox_nm] changes the oxide thickness: thinner oxide raises
    gate tunneling exponentially and (slightly) improves short-channel
    control (Fig 4b). *)

val with_length : t -> float -> t
(** Change the drawn channel length (Vth roll-off / DIBL worsen as it
    shrinks). *)

val with_vth_shift : t -> float -> t
(** Add a rigid threshold shift to both polarities (process variation). *)

val with_vdd : t -> float -> t

val pp : Format.formatter -> t -> unit
