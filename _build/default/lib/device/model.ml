type bias = {
  vg : float;
  vd : float;
  vs : float;
  vb : float;
}

type components = {
  ids : float;
  igso : float;
  igdo : float;
  igcs : float;
  igcd : float;
  igb : float;
  ibtbt_d : float;
  ibtbt_s : float;
}

type terminals = {
  into_gate : float;
  into_drain : float;
  into_source : float;
  into_bulk : float;
}

(* Vth roll-off strength vs drawn length: ΔVth = -k_roll*(Lnom/L - 1). *)
let k_roll = 0.12

(* EKV interpolation function F(u) = ln²(1 + exp(u/2)), with the large-u
   branch taken analytically to avoid overflow when the solver probes far
   into strong inversion. *)
let ekv_f u =
  let half = u /. 2.0 in
  let l = if half > 40.0 then half else log1p (exp half) in
  l *. l

let logistic x =
  if x > 40.0 then 1.0
  else if x < -40.0 then 0.0
  else 1.0 /. (1.0 +. exp (-.x))

(* All equations in the NMOS frame; PMOS is handled by reflecting terminal
   voltages about 0 and negating the resulting currents. *)
let nmos_components (d : Params.t) (f : Params.fet) ~w ~temp { vg; vd; vs; vb } =
  let vt = Physics.thermal_voltage temp in
  (* Short-channel severity grows with Tox and shrinking L; halo suppresses
     it (§3 of the paper / Fig 4a-b). *)
  let sce =
    d.tox /. d.tox_nom *. ((d.length_nom /. d.length) ** 2.0) /. d.halo
  in
  let dibl_eff = f.dibl *. sce in
  let vds = vd -. vs in
  let vth =
    f.vth0
    +. (d.k_halo_vth *. (d.halo -. 1.0))
    -. (k_roll *. ((d.length_nom /. d.length) -. 1.0))
    +. (f.vth_tc *. (temp -. 300.0))
    -. (dibl_eff *. abs_float vds)
  in
  (* Channel current: bulk-referenced EKV (body effect comes in through the
     bulk reference and slope factor). *)
  let vp = (vg -. vb -. vth) /. f.slope_n in
  let i_f = ekv_f ((vp -. (vs -. vb)) /. vt) in
  let i_r = ekv_f ((vp -. (vd -. vb)) /. vt) in
  let ispec_w =
    f.i_spec *. w *. (d.length_nom /. d.length) *. ((temp /. 300.0) ** 0.5)
  in
  let ids = ispec_w *. (i_f -. i_r) in
  (* Gate tunneling density, signed with the oxide voltage; reverse-field
     tunneling (gate low) is weaker by jg_reverse. *)
  let jg_unit = f.jg_scale
                *. exp (-.d.beta_tox *. (d.tox -. d.tox_nom))
                *. (1.0 +. (d.tc_gate *. (temp -. 300.0)))
  in
  let jg v =
    let mag x = jg_unit *. (x /. d.vref) *. exp (d.alpha_g *. (x -. d.vref)) in
    if v >= 0.0 then mag v else -.(f.jg_reverse *. mag (-.v))
  in
  let a_ov = w *. d.lov and a_ch = w *. d.length in
  let igso = a_ov *. f.jg_ov_mult *. jg (vg -. vs) in
  let igdo = a_ov *. f.jg_ov_mult *. jg (vg -. vd) in
  (* Channel tunneling needs an inverted channel; partition drifts toward the
     source as Vds pinches the drain end. *)
  let inv_frac = logistic ((vg -. vs -. vth) /. (3.0 *. vt)) in
  let igc_total = a_ch *. jg (vg -. vs) *. inv_frac in
  let pd = 0.5 /. (1.0 +. (abs_float vds /. 0.3)) in
  let igcd = igc_total *. pd in
  let igcs = igc_total -. igcd in
  let igb = 0.02 *. a_ch *. jg (vg -. vb) in
  (* Junction BTBT, exponential in reverse bias and halo dose; mild increase
     with temperature through bandgap narrowing. A tiny forward-diode branch
     keeps nodes from drifting below the body rail during solving. *)
  let jb_unit =
    f.jb_scale
    *. exp (d.k_halo_btbt *. (d.halo -. 1.0))
    *. exp (d.beta_btbt_temp
            *. (Physics.bandgap 300.0 -. Physics.bandgap temp))
  in
  let jb v =
    if v >= 0.0 then
      w *. jb_unit *. (v /. d.vref) *. exp (d.alpha_b *. (v -. d.vref))
    else begin
      let u = Float.min 40.0 (-.v /. vt) in
      -.(w *. 1e-12 *. (exp u -. 1.0))
    end
  in
  let ibtbt_d = jb (vd -. vb) in
  let ibtbt_s = jb (vs -. vb) in
  { ids; igso; igdo; igcs; igcd; igb; ibtbt_d; ibtbt_s }

let negate c = {
  ids = -.c.ids;
  igso = -.c.igso;
  igdo = -.c.igdo;
  igcs = -.c.igcs;
  igcd = -.c.igcd;
  igb = -.c.igb;
  ibtbt_d = -.c.ibtbt_d;
  ibtbt_s = -.c.ibtbt_s;
}

let components d pol ~w ~temp bias =
  if w <= 0.0 then invalid_arg "Model.components: width must be positive";
  let f = Params.fet d pol in
  match pol with
  | Params.Nmos -> nmos_components d f ~w ~temp bias
  | Params.Pmos ->
    let reflected = {
      vg = -.bias.vg;
      vd = -.bias.vd;
      vs = -.bias.vs;
      vb = -.bias.vb;
    } in
    negate (nmos_components d f ~w ~temp reflected)

let terminals_of_components c = {
  into_gate = c.igso +. c.igdo +. c.igcs +. c.igcd +. c.igb;
  into_drain = c.ids -. c.igdo -. c.igcd +. c.ibtbt_d;
  into_source = -.c.ids -. c.igso -. c.igcs +. c.ibtbt_s;
  into_bulk = -.(c.igb +. c.ibtbt_d +. c.ibtbt_s);
}

let terminals d pol ~w ~temp bias =
  terminals_of_components (components d pol ~w ~temp bias)

let gate_leakage c =
  abs_float c.igso +. abs_float c.igdo +. abs_float c.igcs
  +. abs_float c.igcd +. abs_float c.igb

let junction_leakage c = abs_float c.ibtbt_d +. abs_float c.ibtbt_s

let channel_leakage c = abs_float c.ids

let off_state_leakage d pol ~w ~temp ~vdd =
  let bias =
    match pol with
    | Params.Nmos -> { vg = 0.0; vd = vdd; vs = 0.0; vb = 0.0 }
    | Params.Pmos -> { vg = vdd; vd = 0.0; vs = vdd; vb = vdd }
  in
  let c = components d pol ~w ~temp bias in
  (channel_leakage c, gate_leakage c, junction_leakage c)
