module Rng = Leakage_numeric.Rng

type sigmas = {
  sigma_l : float;
  sigma_tox : float;
  sigma_vdd : float;
  sigma_vth_inter : float;
  sigma_vth_intra : float;
}

let paper_sigmas = {
  sigma_l = 0.002;
  sigma_tox = 0.067;
  sigma_vdd = 0.0333;
  sigma_vth_inter = 0.030;
  sigma_vth_intra = 0.030;
}

let with_vth_inter s sigma_vth_inter = { s with sigma_vth_inter }

type die = {
  dl : float;
  dtox : float;
  dvth : float;
  dvdd : float;
}

let nominal_die = { dl = 0.0; dtox = 0.0; dvth = 0.0; dvdd = 0.0 }

let sample_die rng s = {
  dl = Rng.normal rng ~mean:0.0 ~sigma:s.sigma_l;
  dtox = Rng.normal rng ~mean:0.0 ~sigma:s.sigma_tox;
  dvth = Rng.normal rng ~mean:0.0 ~sigma:s.sigma_vth_inter;
  dvdd = Rng.normal rng ~mean:0.0 ~sigma:s.sigma_vdd;
}

let sample_gate_vth rng s = Rng.normal rng ~mean:0.0 ~sigma:s.sigma_vth_intra

let clamp_min lo v = if v < lo then lo else v

let apply_die (d : Params.t) die =
  let d = Params.with_length d (clamp_min (0.5 *. d.length) (d.length +. die.dl)) in
  let d = Params.with_tox d (clamp_min (0.5 *. d.tox) (d.tox +. die.dtox)) in
  let d = Params.with_vth_shift d die.dvth in
  Params.with_vdd d (clamp_min (0.5 *. d.vdd) (d.vdd +. die.dvdd))

let apply_gate d dvth = Params.with_vth_shift d dvth

type corner = Fast | Typical | Slow

let corner_die s = function
  | Typical -> nominal_die
  | Fast ->
    {
      dl = -3.0 *. s.sigma_l;
      dtox = -3.0 *. s.sigma_tox;
      dvth = -3.0 *. s.sigma_vth_inter;
      dvdd = 3.0 *. s.sigma_vdd;
    }
  | Slow ->
    {
      dl = 3.0 *. s.sigma_l;
      dtox = 3.0 *. s.sigma_tox;
      dvth = 3.0 *. s.sigma_vth_inter;
      dvdd = -3.0 *. s.sigma_vdd;
    }

let corner_device d s c = apply_die d (corner_die s c)
