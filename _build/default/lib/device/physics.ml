let q = 1.602176634e-19
let boltzmann = 1.380649e-23
let room_temperature = 300.0

let thermal_voltage t =
  if t <= 0.0 then invalid_arg "Physics.thermal_voltage: non-positive T";
  boltzmann *. t /. q

(* Varshni parameters for silicon: Eg(0) = 1.17 eV, a = 4.73e-4, b = 636. *)
let bandgap t =
  1.17 -. (4.73e-4 *. t *. t /. (t +. 636.0))

let celsius_to_kelvin c = c +. 273.15
let kelvin_to_celsius k = k -. 273.15

let nano = 1e-9
let amps_to_nanoamps a = a /. nano
let nanoamps_to_amps n = n *. nano
