type polarity = Nmos | Pmos

type fet = {
  vth0 : float;
  slope_n : float;
  dibl : float;
  i_spec : float;
  vth_tc : float;
  jg_scale : float;
  jg_ov_mult : float;
  jg_reverse : float;
  jb_scale : float;
}

type t = {
  name : string;
  vdd : float;
  vref : float;
  length : float;
  length_nom : float;
  tox : float;
  tox_nom : float;
  lov : float;
  halo : float;
  alpha_g : float;
  beta_tox : float;
  alpha_b : float;
  k_halo_btbt : float;
  k_halo_vth : float;
  beta_btbt_temp : float;
  tc_gate : float;
  nmos : fet;
  pmos : fet;
}

let fet t = function Nmos -> t.nmos | Pmos -> t.pmos

(* Calibration rationale (numbers asserted by test/test_device.ml).

   D25 (Figs 5-12): an aggressively scaled, subthreshold-dominated device in
   the spirit of 2005-era 25 nm projections. For a minimum inverter
   (Wn = 1 µm, Wp = 2 µm) at 300 K, input '0': Isub ~0.33 µA against
   ~0.23 µA of gate tunneling and ~45 nA of junction BTBT, with on-state
   gate tunneling near 0.5 µA/µm so that half a dozen fanout pins produce
   the ~3 µA loading-current scale of Figs 5/10 and the total-leakage
   loading shift tracks the subthreshold shift as in Fig 5.

   D50 (§2 / Fig 4): the tamer MEDICI-like 50 nm device where gate and BTBT
   leakage sit at or above subthreshold at room temperature and subthreshold
   takes over when hot (Fig 4c).

   In both, PMOS has worse short-channel control (higher n, higher DIBL),
   ~10x weaker tunneling per area (p+ poly barrier), and a stronger
   junction, matching the asymmetries §4 relies on. *)

let nmos_25 = {
  vth0 = 0.11;
  slope_n = 1.40;
  dibl = 0.100;
  i_spec = 1.05e-6;
  vth_tc = -0.4e-3;
  jg_scale = 8.00e-6;
  jg_ov_mult = 3.0;
  jg_reverse = 0.45;
  jb_scale = 45.0e-9;
}

let pmos_25 = {
  vth0 = 0.14;
  slope_n = 1.90;
  dibl = 0.150;
  i_spec = 0.70e-6;
  vth_tc = -0.4e-3;
  jg_scale = 0.80e-6;
  jg_ov_mult = 3.0;
  jg_reverse = 0.45;
  jb_scale = 40.0e-9;
}

let d25 = {
  name = "D25";
  vdd = 0.9;
  vref = 0.9;
  length = 0.025;
  length_nom = 0.025;
  tox = 1.0;
  tox_nom = 1.0;
  lov = 0.005;
  halo = 1.0;
  alpha_g = 3.5;
  beta_tox = 9.0;
  alpha_b = 5.0;
  k_halo_btbt = 2.5;
  k_halo_vth = 0.04;
  beta_btbt_temp = 10.0;
  tc_gate = 3.0e-4;
  nmos = nmos_25;
  pmos = pmos_25;
}

(* The 50 nm device of §2: longer channel, thicker oxide, higher rail; the
   same qualitative component balance with everything a little tamer. *)
let d50 = {
  d25 with
  name = "D50";
  vdd = 1.0;
  vref = 1.0;
  length = 0.05;
  length_nom = 0.05;
  tox = 1.2;
  tox_nom = 1.2;
  lov = 0.008;
  nmos = { nmos_25 with vth0 = 0.24; dibl = 0.08; jg_scale = 4.50e-6;
           jb_scale = 30.0e-9 };
  pmos = { pmos_25 with vth0 = 0.34; dibl = 0.12; jg_scale = 0.45e-6;
           jb_scale = 28.0e-9 };
}

let scale_fet f ~dvth ~jg ~jb =
  { f with
    vth0 = f.vth0 +. dvth;
    jg_scale = f.jg_scale *. jg;
    jb_scale = f.jb_scale *. jb }

let variant name ~dvth ~jg ~jb =
  { d25 with
    name;
    nmos = scale_fet d25.nmos ~dvth ~jg ~jb;
    pmos = scale_fet d25.pmos ~dvth ~jg ~jb }

(* Single-component-dominated variants: one mechanism boosted, the other two
   suppressed, keeping the overall off-state current within a small factor
   of the base device. *)
let d25_s = variant "D25-S" ~dvth:(-0.027) ~jg:0.40 ~jb:0.45
let d25_g = variant "D25-G" ~dvth:0.065 ~jg:2.20 ~jb:0.45
let d25_jn = variant "D25-JN" ~dvth:0.065 ~jg:0.35 ~jb:2.60

let with_halo d halo =
  if halo <= 0.0 then invalid_arg "Params.with_halo: dose must be positive";
  { d with halo }

let with_tox d tox =
  if tox <= 0.0 then invalid_arg "Params.with_tox: thickness must be positive";
  { d with tox }

let with_length d length =
  if length <= 0.0 then invalid_arg "Params.with_length: length must be positive";
  { d with length }

let with_vth_shift d dvth =
  { d with
    nmos = { d.nmos with vth0 = d.nmos.vth0 +. dvth };
    pmos = { d.pmos with vth0 = d.pmos.vth0 +. dvth } }

let with_vdd d vdd =
  if vdd <= 0.0 then invalid_arg "Params.with_vdd: vdd must be positive";
  { d with vdd }

let pp ppf d =
  Format.fprintf ppf
    "%s: Vdd=%.2fV L=%.3fum Tox=%.2fnm halo=%.2fx (Vthn=%.3f Vthp=%.3f)"
    d.name d.vdd d.length d.tox d.halo d.nmos.vth0 d.pmos.vth0
