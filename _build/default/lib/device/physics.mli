(** Physical constants and temperature-dependent silicon quantities. *)

val q : float
(** Elementary charge, C. *)

val boltzmann : float
(** Boltzmann constant, J/K. *)

val room_temperature : float
(** 300 K. *)

val thermal_voltage : float -> float
(** [thermal_voltage t] is kT/q in volts for temperature [t] in Kelvin. *)

val bandgap : float -> float
(** Silicon bandgap in eV at temperature [t] (Varshni fit). *)

val celsius_to_kelvin : float -> float
val kelvin_to_celsius : float -> float

val nano : float
(** 1e-9: converts amperes to nano-amperes when dividing. *)

val amps_to_nanoamps : float -> float
val nanoamps_to_amps : float -> float
