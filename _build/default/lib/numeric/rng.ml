(* SplitMix64 (Steele, Lea, Flood; JDK8 SplittableRandom). Chosen because it
   is trivially correct to implement, passes BigCrush, and supports cheap
   stream splitting for per-sample reproducibility. *)

type t = {
  mutable state : int64;
  mutable cached_gaussian : float option;
}

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed =
  { state = Int64.of_int seed; cached_gaussian = None }

let copy t = { state = t.state; cached_gaussian = t.cached_gaussian }

let next_seed t =
  t.state <- Int64.add t.state golden_gamma;
  t.state

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t = mix64 (next_seed t)

let split t =
  let s = bits64 t in
  { state = mix64 s; cached_gaussian = None }

(* 53 uniformly distributed mantissa bits in [0,1). *)
let uniform t =
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let float t bound = uniform t *. bound

let range t lo hi = lo +. uniform t *. (hi -. lo)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is < 2^-40 for any bound
     that fits an OCaml int, far below Monte-Carlo noise. Keep 62 bits so the
     value stays non-negative in OCaml's 63-bit native int. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let gaussian t =
  match t.cached_gaussian with
  | Some g ->
    t.cached_gaussian <- None;
    g
  | None ->
    (* Box-Muller on two fresh uniforms; guard against log 0. *)
    let rec draw () =
      let u1 = uniform t in
      if u1 <= 1e-300 then draw () else u1
    in
    let u1 = draw () and u2 = uniform t in
    let r = sqrt (-2.0 *. log u1) in
    let theta = 2.0 *. Float.pi *. u2 in
    t.cached_gaussian <- Some (r *. sin theta);
    r *. cos theta

let normal t ~mean ~sigma = mean +. sigma *. gaussian t

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))
