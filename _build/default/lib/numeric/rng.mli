(** Deterministic pseudo-random number generation.

    A small, fast, splittable PRNG (SplitMix64) so every experiment in the
    repository is reproducible from a single integer seed, independent of the
    OCaml stdlib [Random] state. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. Equal seeds
    produce equal streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. Used to give
    each Monte-Carlo sample / circuit instance its own stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val uniform : t -> float
(** Uniform in [\[0, 1)]. *)

val range : t -> float -> float -> float
(** [range t lo hi] is uniform in [\[lo, hi)]. *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller; one value per call, cached pair). *)

val normal : t -> mean:float -> sigma:float -> float
(** Normal deviate with given mean and standard deviation. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
