type matrix = float array array

exception Singular

let make n m v = Array.init n (fun _ -> Array.make m v)

let identity n =
  Array.init n (fun i -> Array.init n (fun j -> if i = j then 1.0 else 0.0))

let dims a =
  let n = Array.length a in
  if n = 0 then (0, 0) else (n, Array.length a.(0))

let copy_matrix a = Array.map Array.copy a

let mat_vec a x =
  Array.map
    (fun row ->
      let acc = ref 0.0 in
      Array.iteri (fun j v -> acc := !acc +. (v *. x.(j))) row;
      !acc)
    a

let mat_mul a b =
  let n, k = dims a in
  let k', m = dims b in
  if k <> k' then invalid_arg "Linalg.mat_mul: inner dimension mismatch";
  Array.init n (fun i ->
      Array.init m (fun j ->
          let acc = ref 0.0 in
          for l = 0 to k - 1 do
            acc := !acc +. (a.(i).(l) *. b.(l).(j))
          done;
          !acc))

(* LU factorization with partial pivoting, in place on a copy.
   Returns (lu, perm) where perm.(i) is the source row of row i. *)
let lu_factor a =
  let n, m = dims a in
  if n <> m then invalid_arg "Linalg.lu_factor: square matrix required";
  let lu = copy_matrix a in
  let perm = Array.init n (fun i -> i) in
  for col = 0 to n - 1 do
    (* pivot search *)
    let pivot = ref col in
    for r = col + 1 to n - 1 do
      if abs_float lu.(r).(col) > abs_float lu.(!pivot).(col) then pivot := r
    done;
    if abs_float lu.(!pivot).(col) < 1e-300 then raise Singular;
    if !pivot <> col then begin
      let tmp = lu.(col) in
      lu.(col) <- lu.(!pivot);
      lu.(!pivot) <- tmp;
      let tp = perm.(col) in
      perm.(col) <- perm.(!pivot);
      perm.(!pivot) <- tp
    end;
    let inv_pivot = 1.0 /. lu.(col).(col) in
    for r = col + 1 to n - 1 do
      let factor = lu.(r).(col) *. inv_pivot in
      lu.(r).(col) <- factor;
      if factor <> 0.0 then
        for c = col + 1 to n - 1 do
          lu.(r).(c) <- lu.(r).(c) -. (factor *. lu.(col).(c))
        done
    done
  done;
  (lu, perm)

let lu_apply (lu, perm) b =
  let n = Array.length perm in
  let x = Array.init n (fun i -> b.(perm.(i))) in
  (* forward substitution (unit lower triangle) *)
  for i = 1 to n - 1 do
    for j = 0 to i - 1 do
      x.(i) <- x.(i) -. (lu.(i).(j) *. x.(j))
    done
  done;
  (* back substitution *)
  for i = n - 1 downto 0 do
    for j = i + 1 to n - 1 do
      x.(i) <- x.(i) -. (lu.(i).(j) *. x.(j))
    done;
    x.(i) <- x.(i) /. lu.(i).(i)
  done;
  x

let lu_solve a b =
  let n, _ = dims a in
  if Array.length b <> n then invalid_arg "Linalg.lu_solve: size mismatch";
  lu_apply (lu_factor a) b

let solve_many a bs =
  let fact = lu_factor a in
  Array.map (lu_apply fact) bs

let norm_inf x = Array.fold_left (fun acc v -> Float.max acc (abs_float v)) 0.0 x

let norm2 x = sqrt (Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 x)

let axpy a x y =
  if Array.length x <> Array.length y then
    invalid_arg "Linalg.axpy: size mismatch";
  Array.mapi (fun i xi -> (a *. xi) +. y.(i)) x
