(** Scalar root finding.

    The per-node KCL equations solved during DC analysis are smooth,
    monotone-dominated scalar functions of one node voltage; we solve them
    with a safeguarded Newton iteration that falls back to bisection when the
    Newton step leaves the bracket. *)

exception No_convergence of string
(** Raised when an iteration budget is exhausted without meeting tolerance. *)

val brent :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> float -> float -> float
(** [brent ~f a b] finds a root of [f] in the bracket [\[a, b\]].
    Requires [f a] and [f b] to have opposite signs (or one of them to be
    zero). Default [tol] 1e-12 on the argument, [max_iter] 200. *)

val newton_bracketed :
  ?tol:float ->
  ?max_iter:int ->
  f:(float -> float) ->
  df:(float -> float) ->
  lo:float ->
  hi:float ->
  float ->
  float
(** Safeguarded Newton on a bracket known to contain a root: Newton steps are
    taken from the current iterate and clipped into the shrinking bracket;
    bisection is used whenever Newton stalls. [f lo] and [f hi] must have
    opposite signs. The last argument is the initial guess. *)

val newton_numeric :
  ?tol:float ->
  ?max_iter:int ->
  ?h:float ->
  f:(float -> float) ->
  lo:float ->
  hi:float ->
  float ->
  float
(** [newton_bracketed] with a central finite-difference derivative
    (step [h], default 1e-6). *)

val expand_bracket :
  ?factor:float -> ?max_expand:int -> f:(float -> float) ->
  float -> float -> float * float
(** Grow an initial interval geometrically until it brackets a sign change.
    Raises [No_convergence] if none is found. *)
