(** Small dense linear algebra for multi-node Newton solves.

    The full-Newton DC solver needs to factor Jacobians of modest size (tens
    to a few hundred nodes — it is only used as a cross-check and for gate
    characterization cells; large circuits use the Gauss–Seidel path). Dense
    LU with partial pivoting is sufficient and dependency-free. *)

type matrix = float array array
(** Row-major [n x m] matrix; rows must share one length. *)

val make : int -> int -> float -> matrix
val identity : int -> matrix
val dims : matrix -> int * int
val copy_matrix : matrix -> matrix

val mat_vec : matrix -> float array -> float array
(** Matrix-vector product. *)

val mat_mul : matrix -> matrix -> matrix

exception Singular
(** Raised when elimination hits a (numerically) zero pivot. *)

val lu_solve : matrix -> float array -> float array
(** [lu_solve a b] solves [a x = b] by LU with partial pivoting. [a] and [b]
    are not modified. Raises [Singular] on rank deficiency. *)

val solve_many : matrix -> float array array -> float array array
(** Solve with several right-hand sides sharing one factorization. *)

val norm_inf : float array -> float
val norm2 : float array -> float

val axpy : float -> float array -> float array -> float array
(** [axpy a x y] is [a*x + y] elementwise. *)
