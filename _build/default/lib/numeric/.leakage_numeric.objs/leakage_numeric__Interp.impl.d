lib/numeric/interp.ml: Array
