lib/numeric/rng.mli:
