lib/numeric/solver.ml: Array Float Linalg
