lib/numeric/interp.mli:
