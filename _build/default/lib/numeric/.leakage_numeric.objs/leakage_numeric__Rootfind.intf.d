lib/numeric/rootfind.mli:
