lib/numeric/solver.mli:
