lib/numeric/linalg.mli:
