(** Damped Newton iteration for small nonlinear systems F(x) = 0.

    Used by the dense DC operating-point path (single gates, characterization
    cells, cross-checks of the Gauss–Seidel solver). The Jacobian is formed by
    forward differences; steps are damped by halving until the residual norm
    decreases (Armijo-style), and the iterate can be clamped into a box, which
    keeps node voltages inside the rails where the device models are
    well-behaved. *)

type options = {
  tol_residual : float;  (** stop when ||F||_inf falls below this *)
  tol_step : float;      (** stop when ||dx||_inf falls below this *)
  max_iter : int;
  fd_step : float;       (** forward-difference step for the Jacobian *)
  max_damping : int;     (** halvings per iteration before giving up *)
}

val default_options : options

type result = {
  x : float array;
  residual_norm : float;
  iterations : int;
  converged : bool;
}

val solve :
  ?options:options ->
  ?lower:float array ->
  ?upper:float array ->
  f:(float array -> float array) ->
  float array ->
  result
(** [solve ~f x0] iterates from [x0]. [lower]/[upper], when given, clamp every
    iterate componentwise. The input array is not modified. *)
