(* Input-vector control (IVC) under loading.

   Standby leakage reduction picks the primary-input vector minimizing a
   circuit's leakage. §6 of the paper observes that the minimum-leakage
   vector can change once loading is modeled — an IVC flow that ignores
   loading can park the circuit in a vector that is not actually optimal.
   This example quantifies that on the 8-bit ALU and a synthetic ISCAS
   circuit.

   Run with: dune exec examples/vector_control.exe *)

module Params = Leakage_device.Params
module Logic = Leakage_circuit.Logic
module Netlist = Leakage_circuit.Netlist
module Report = Leakage_spice.Leakage_report
module Library = Leakage_core.Library
module Vector_control = Leakage_incremental.Vector_control
module Suite = Leakage_benchmarks.Suite

let na = Leakage_device.Physics.amps_to_nanoamps

let study lib label =
  let circuit = (Suite.find label).Suite.build () in
  let n_inputs = Array.length (Netlist.inputs circuit) in
  Format.printf "=== %s (%d gates, %d inputs) ===@." label
    (Netlist.gate_count circuit) n_inputs;
  let c = Vector_control.compare_objectives ~samples:128 ~seed:17 lib circuit in
  let show tag (r : Vector_control.search_result) =
    let v = Logic.vector_to_string r.Vector_control.vector in
    let v =
      if String.length v > 40 then String.sub v 0 40 ^ "..." else v
    in
    Format.printf "  %-28s %s  -> %.1f nA@." tag v (na r.Vector_control.total)
  in
  show "min vector (loading-aware):" c.Vector_control.with_loading;
  show "min vector (traditional):" c.Vector_control.without_loading;
  Format.printf "  traditional optimum re-costed with loading: %.1f nA@."
    (na c.Vector_control.without_under_loading);
  let penalty =
    (c.Vector_control.without_under_loading
     -. c.Vector_control.with_loading.Vector_control.total)
    /. c.Vector_control.with_loading.Vector_control.total *. 100.0
  in
  if c.Vector_control.changed then
    Format.printf
      "  -> loading CHANGES the minimum-leakage vector (IVC penalty %+.2f%%)@.@."
      penalty
  else
    Format.printf "  -> same optimum under both objectives@.@."

let () =
  let device = Params.d25 in
  let lib = Library.create ~device ~temp:300.0 () in
  (* A small hand-made circuit first: exhaustive search is exact here. *)
  let module B = Netlist.Builder in
  let b = B.create "nand_tree" in
  let pins = Array.init 8 (fun i -> B.input ~name:(Printf.sprintf "i%d" i) b) in
  let pair i = B.gate b (Leakage_circuit.Gate.Nand 2) [| pins.(2 * i); pins.(2 * i + 1) |] in
  let l1 = Array.init 4 pair in
  let l2a = B.gate b (Leakage_circuit.Gate.Nor 2) [| l1.(0); l1.(1) |] in
  let l2b = B.gate b (Leakage_circuit.Gate.Nor 2) [| l1.(2); l1.(3) |] in
  let out = B.gate b (Leakage_circuit.Gate.Nand 2) [| l2a; l2b |] in
  B.mark_output b out;
  let tree = B.finish b in
  Format.printf "=== nand_tree (exhaustive over %d vectors) ===@." (1 lsl 8);
  let c = Vector_control.compare_objectives lib tree in
  Format.printf "  loading-aware minimum:  %s (%.1f nA)@."
    (Logic.vector_to_string c.Vector_control.with_loading.Vector_control.vector)
    (na c.Vector_control.with_loading.Vector_control.total);
  Format.printf "  traditional minimum:    %s (%.1f nA under loading)@."
    (Logic.vector_to_string c.Vector_control.without_loading.Vector_control.vector)
    (na c.Vector_control.without_under_loading);
  Format.printf "  changed by loading: %b@.@." c.Vector_control.changed;
  List.iter (study lib) [ "alu88"; "s838" ]
