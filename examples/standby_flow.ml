(* A complete standby-leakage optimization flow on the 8-bit ALU:

   1. pick the minimum-leakage parking vector (input-vector control, §6 —
      with the loading effect in the objective);
   2. move timing-noncritical gates to a high threshold (dual-Vth);
   3. gate the whole block with an MTCMOS sleep transistor and compare;
   4. check the thermal operating point of the optimized design.

   Every step uses the paper's loading-aware estimator.

   Run with: dune exec examples/standby_flow.exe *)

module Params = Leakage_device.Params
module Physics = Leakage_device.Physics
module Logic = Leakage_circuit.Logic
module Netlist = Leakage_circuit.Netlist
module Report = Leakage_spice.Leakage_report
module Library = Leakage_core.Library
module Estimator = Leakage_core.Estimator
module Vector_control = Leakage_incremental.Vector_control
module Dual_vth = Leakage_incremental.Dual_vth
module Thermal = Leakage_core.Thermal
module Suite = Leakage_benchmarks.Suite

let na = Physics.amps_to_nanoamps

let () =
  let device = Params.d25 in
  let temp = 300.0 in
  let circuit = (Suite.find "alu88").Suite.build () in
  let lib = Library.create ~device ~temp () in
  Format.printf "Standby optimization of %s (%d gates)@.@."
    (Netlist.name circuit) (Netlist.gate_count circuit);

  (* Step 0: the design as it stands, at a random parking vector. *)
  let rng = Leakage_numeric.Rng.create 13 in
  let arbitrary =
    Logic.random_vector rng (Array.length (Netlist.inputs circuit))
  in
  let before = Estimator.estimate lib circuit arbitrary in
  Format.printf "arbitrary parking vector:        %10.1f nA@."
    (na (Report.total before.Estimator.totals));

  (* Step 1: input-vector control with the loading-aware objective. *)
  let ivc = Vector_control.compare_objectives ~samples:128 ~seed:3 lib circuit in
  let parked = ivc.Vector_control.with_loading in
  Format.printf "optimized parking vector:        %10.1f nA  (IVC, -%.1f%%)@."
    (na parked.Vector_control.total)
    ((Report.total before.Estimator.totals -. parked.Vector_control.total)
     /. Report.total before.Estimator.totals *. 100.0);

  (* Step 2: dual-Vth on the slack gates, evaluated at the parking vector. *)
  let high_device = Dual_vth.high_vth_device device in
  let high_lib =
    Library.create ~device:high_device ~temp ~vdd:device.Params.vdd ()
  in
  let assignment = Dual_vth.slack_assignment ~critical_margin:1 circuit in
  let dual =
    Dual_vth.evaluate ~low_lib:lib ~high_lib assignment circuit
      parked.Vector_control.vector
  in
  Format.printf
    "dual-Vth (%3d of %3d gates high):  %10.1f nA  (-%.1f%% on top)@."
    dual.Dual_vth.n_high (Netlist.gate_count circuit)
    (na (Report.total dual.Dual_vth.totals))
    dual.Dual_vth.reduction_percent;

  (* Step 3: power gating — the heavyweight option, analyzed at the
     transistor level (virtual ground floats, circuit-wide stack effect). *)
  let mt =
    Leakage_core.Mtcmos.analyze ~device ~temp circuit
      parked.Vector_control.vector
  in
  Format.printf
    "MTCMOS standby (vgnd %.2f V):      %10.1f nA  (-%.1f%% vs ungated; active-mode cost %+.1f%%)@."
    mt.Leakage_core.Mtcmos.standby.Leakage_core.Mtcmos.virtual_ground
    (na (Report.total mt.Leakage_core.Mtcmos.standby.Leakage_core.Mtcmos.leakage))
    mt.Leakage_core.Mtcmos.standby_reduction_percent
    mt.Leakage_core.Mtcmos.active_overhead_percent;

  (* Step 4: thermal sanity of the optimized standby state across packages.
     (The thermal loop re-estimates with the low-Vth library; the dual-Vth
     reduction makes the true point cooler still.) *)
  Format.printf "@.thermal operating point vs package (standby, leakage only):@.";
  Array.iter
    (fun (r_theta, outcome) ->
      match outcome with
      | Thermal.Converged op ->
        Format.printf "  R = %6.0f K/W -> T = %6.2f C, %8.2f uW@." r_theta
          (Physics.kelvin_to_celsius op.Thermal.temperature)
          (op.Thermal.leakage_power *. 1e6)
      | Thermal.Runaway { last_temp; _ } ->
        Format.printf "  R = %6.0f K/W -> THERMAL RUNAWAY (passed %.0f C)@."
          r_theta
          (Physics.kelvin_to_celsius last_temp))
    (Thermal.temperature_profile ~device
       ~r_theta_values:[| 50.0; 2_000.0; 50_000.0 |]
       circuit parked.Vector_control.vector)
