(* leakctl: command-line front end for the loading-aware leakage estimator.

   Subcommands: list, stats, generate, estimate, characterize, sweep, mc,
   vectors, incr, serve, client, ... Run `leakctl --help` or
   `leakctl CMD --help`. *)

open Cmdliner

module Params = Leakage_device.Params
module Physics = Leakage_device.Physics
module Variation = Leakage_device.Variation
module Logic = Leakage_circuit.Logic
module Gate = Leakage_circuit.Gate
module Netlist = Leakage_circuit.Netlist
module Simulate = Leakage_circuit.Simulate
module Bench_format = Leakage_circuit.Bench_format
module Spice_format = Leakage_circuit.Spice_format
module Snapshot = Leakage_circuit.Snapshot
module Report = Leakage_spice.Leakage_report
module Library = Leakage_core.Library
module Estimator = Leakage_core.Estimator
module Loading = Leakage_core.Loading
module Monte_carlo = Leakage_core.Monte_carlo
module Vector_control = Leakage_incremental.Vector_control
module Incremental = Leakage_incremental.Incremental
module Edit = Leakage_incremental.Edit
module Characterize = Leakage_core.Characterize
module Sensitivity = Leakage_core.Sensitivity
module Suite = Leakage_benchmarks.Suite
module Iscas = Leakage_benchmarks.Iscas
module Reporting = Leakage_core.Reporting
module Verilog = Leakage_circuit.Verilog
module Rng = Leakage_numeric.Rng
module Stats = Leakage_numeric.Stats
module Pool = Leakage_parallel.Pool
module Telemetry = Leakage_telemetry.Telemetry
module Trace = Leakage_telemetry.Trace
module Tlog = Leakage_telemetry.Log
module Top_view = Leakage_server.Top_view

let na = Physics.amps_to_nanoamps

(* ------------------------------------------------------- shared options *)

let device_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "d25" -> Ok Params.d25
    | "d50" -> Ok Params.d50
    | "d25-s" | "d25s" -> Ok Params.d25_s
    | "d25-g" | "d25g" -> Ok Params.d25_g
    | "d25-jn" | "d25jn" -> Ok Params.d25_jn
    | other -> Error (`Msg ("unknown device " ^ other))
  in
  let print ppf (d : Params.t) = Format.fprintf ppf "%s" d.Params.name in
  Arg.conv (parse, print)

let device_arg =
  Arg.(value & opt device_conv Params.d25
       & info [ "device" ] ~docv:"DEV"
           ~doc:"Device corner: d25, d50, d25-s, d25-g, d25-jn.")

let temp_arg =
  Arg.(value & opt float 27.0
       & info [ "temp" ] ~docv:"CELSIUS" ~doc:"Temperature in Celsius.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let circuit_arg =
  Arg.(value & opt (some string) None
       & info [ "circuit" ] ~docv:"NAME"
           ~doc:"Benchmark circuit name (see `leakctl list`).")

let bench_file_arg =
  Arg.(value & opt (some file) None
       & info [ "bench" ] ~docv:"FILE"
           ~doc:"Netlist file, dispatched on extension: .bench (ISCAS89), \
                 .sp/.cir/.spice (structural SPICE subset), or .lkn (binary \
                 snapshot, see $(b,leakctl snapshot)).")

(* One ingestion point for every front-end: the extension picks the
   parser. *)
let parse_netlist_file path =
  match String.lowercase_ascii (Filename.extension path) with
  | ".lkn" -> Snapshot.load path
  | ".sp" | ".cir" | ".spice" -> Spice_format.parse_file path
  | _ -> Bench_format.parse_file path

let jobs_arg =
  Arg.(value & opt int 0
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains for the parallel sections. 0 (the default) \
                 means the $(b,LEAKCTL_JOBS) environment variable, or the \
                 machine's recommended domain count.")

(* Results are bit-identical at any job count, so -j only changes speed. *)
let with_jobs jobs f =
  let jobs = if jobs <= 0 then Pool.default_jobs () else jobs in
  if jobs <= 1 then f None
  else Pool.with_pool ~jobs (fun pool -> f (Some pool))

let load_circuit circuit bench_file =
  match circuit, bench_file with
  | Some name, None -> (Suite.find name).Suite.build ()
  | None, Some path -> parse_netlist_file path
  | Some _, Some _ -> failwith "give either --circuit or --bench, not both"
  | None, None -> failwith "a circuit is required: --circuit NAME or --bench FILE"

let kelvin celsius = Physics.celsius_to_kelvin celsius

let pp_components tag c =
  Format.printf "  %-24s sub %10.1f  gate %10.1f  btbt %10.1f  total %10.1f nA@."
    tag (na c.Report.isub) (na c.Report.igate) (na c.Report.ibtbt)
    (na (Report.total c))

(* mean ± σ block from the analytic variance propagation (--sigma) *)
let pp_sigma_stats tag (st : Sensitivity.stats) =
  Format.printf "  %s@." tag;
  let row name ?extra (s : Sensitivity.component_stat) =
    Format.printf "    %-6s %12.1f +/- %10.1f nA%s%s@." name
      (na s.Sensitivity.mean) (na s.Sensitivity.sigma)
      (match extra with Some e -> e | None -> "")
      (if s.Sensitivity.from_mc then "  [mc fallback]" else "")
  in
  row "sub" st.Sensitivity.s_isub;
  row "gate" st.Sensitivity.s_igate;
  row "btbt" st.Sensitivity.s_ibtbt;
  let t = st.Sensitivity.s_total in
  row "total" t
    ~extra:
      (Format.asprintf "  (inter %.1f, intra %.1f)" (na t.Sensitivity.sigma_inter)
         (na t.Sensitivity.sigma_intra))

let sigma_arg =
  Arg.(value & flag
       & info [ "sigma" ]
           ~doc:"Also report the analytic mean +/- sigma of every leakage \
                 component under the paper's process-variation sigmas \
                 (closed-form variance propagation on the first vector, with \
                 the inter-die / intra-die split of the total; components \
                 whose linearization-error bound trips fall back to Monte \
                 Carlo and are marked).")

(* ----------------------------------------------------------------- list *)

let list_cmd =
  let run () =
    Format.printf "%-10s %8s %8s %8s %8s %8s@." "name" "gates" "nets" "PIs"
      "POs" "xtors";
    List.iter
      (fun (e : Suite.entry) ->
        let nl = e.Suite.build () in
        let s = Netlist.stats nl in
        Format.printf "%-10s %8d %8d %8d %8d %8d@." e.Suite.label
          s.Netlist.n_gates s.Netlist.n_nets s.Netlist.n_inputs
          s.Netlist.n_outputs s.Netlist.n_transistors)
      Suite.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the built-in benchmark circuits.")
    Term.(const run $ const ())

(* ---------------------------------------------------------------- stats *)

let stats_cmd =
  let run circuit bench_file =
    let nl = load_circuit circuit bench_file in
    Format.printf "%s:@.  %a@." (Netlist.name nl) Netlist.pp_stats
      (Netlist.stats nl)
  in
  Cmd.v (Cmd.info "stats" ~doc:"Print structural statistics of a circuit.")
    Term.(const run $ circuit_arg $ bench_file_arg)

(* ------------------------------------------------------------- generate *)

let generate_cmd =
  let output_arg =
    Arg.(required & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Output path (.bench, or .v with $(b,--verilog)).")
  in
  let verilog_arg =
    Arg.(value & flag
         & info [ "verilog" ] ~doc:"Emit structural Verilog instead of .bench.")
  in
  let run circuit seed output verilog =
    let name =
      match circuit with
      | Some n -> n
      | None -> failwith "--circuit required"
    in
    let nl =
      match Iscas.profile name with
      | profile -> Iscas.generate ~seed profile
      | exception Not_found -> (Suite.find name).Suite.build ()
    in
    if verilog then Verilog.write_file output nl
    else Bench_format.write_file output nl;
    Format.printf "wrote %s (%d gates) to %s@." name (Netlist.gate_count nl)
      output
  in
  Cmd.v
    (Cmd.info "generate"
       ~doc:"Write a benchmark circuit to an ISCAS89 .bench or Verilog file.")
    Term.(const run $ circuit_arg $ seed_arg $ output_arg $ verilog_arg)

(* ------------------------------------------------------------- snapshot *)

let snapshot_cmd =
  let output_arg =
    Arg.(required & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Snapshot output path (conventionally .lkn).")
  in
  let run circuit bench_file output =
    let nl = load_circuit circuit bench_file in
    Snapshot.save output nl;
    Format.printf "wrote %s (%d gates, digest %s) to %s@." (Netlist.name nl)
      (Netlist.gate_count nl) (Netlist.digest nl) output
  in
  Cmd.v
    (Cmd.info "snapshot"
       ~doc:"Compile a circuit into an mmap-able LKN1 binary snapshot. Any \
             command taking $(b,--bench) accepts the resulting .lkn file and \
             loads it without re-parsing.")
    Term.(const run $ circuit_arg $ bench_file_arg $ output_arg)

(* ------------------------------------------------------------------ sim *)

let sim_cmd =
  let vector_arg =
    Arg.(value & opt (some string) None
         & info [ "input" ] ~docv:"BITS"
             ~doc:"Input pattern (defaults to a random one).")
  in
  let run circuit bench_file vector seed =
    let nl = load_circuit circuit bench_file in
    let width = Array.length (Netlist.inputs nl) in
    let pattern =
      match vector with
      | Some bits ->
        if String.length bits <> width then
          failwith (Printf.sprintf "pattern needs %d bits" width);
        Logic.vector_of_string bits
      | None ->
        let rng = Rng.create seed in
        Logic.random_vector rng width
    in
    let values = Simulate.run nl pattern in
    Format.printf "inputs:  %s@." (Logic.vector_to_string pattern);
    Format.printf "outputs: %s@."
      (Logic.vector_to_string (Simulate.outputs nl values));
    let ones =
      Array.fold_left
        (fun acc v -> if Logic.to_bool v then acc + 1 else acc)
        0 values
    in
    Format.printf "net activity: %d of %d nets at '1'@." ones
      (Netlist.net_count nl)
  in
  Cmd.v (Cmd.info "sim" ~doc:"Logic-simulate one input pattern.")
    Term.(const run $ circuit_arg $ bench_file_arg $ vector_arg $ seed_arg)

(* ------------------------------------------------------------- estimate *)

let estimate_cmd =
  let vectors_arg =
    Arg.(value & opt int 10
         & info [ "vectors" ] ~docv:"N" ~doc:"Number of random input vectors.")
  in
  let spice_arg =
    Arg.(value & flag
         & info [ "spice" ]
             ~doc:"Also run the full transistor-level solve for comparison.")
  in
  let passes_arg =
    Arg.(value & opt int 1
         & info [ "passes" ] ~docv:"N"
             ~doc:"Loading-propagation passes (1 = the paper's one-level model).")
  in
  let csv_arg =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"FILE"
             ~doc:"Write a per-gate CSV for the first vector.")
  in
  let top_arg =
    Arg.(value & opt int 0
         & info [ "top" ] ~docv:"N"
             ~doc:"Print the N heaviest-leaking gates of the first vector.")
  in
  let run device celsius circuit bench_file vectors seed spice passes csv top
      jobs sigma =
    let nl = load_circuit circuit bench_file in
    let temp = kelvin celsius in
    let lib = Library.create ~device ~temp () in
    let rng = Rng.create seed in
    let patterns = Simulate.random_patterns rng nl vectors in
    Format.printf "%s on %s at %.0f C, %d random vectors@." (Netlist.name nl)
      device.Params.name celsius vectors;
    (match patterns with
     | first :: _ ->
       let detailed = Estimator.estimate ~passes lib nl first in
       (match csv with
        | Some path ->
          Reporting.write_file path (Reporting.per_gate_csv nl detailed);
          Format.printf "  per-gate CSV written to %s@." path
        | None -> ());
       if top > 0 then
         Reporting.pp_per_gate ~limit:top Format.std_formatter nl detailed
     | [] -> ());
    let loaded, base =
      with_jobs jobs (fun pool ->
          Estimator.average_over_vectors ?pool lib nl patterns)
    in
    pp_components "mean (loading-aware):" loaded;
    pp_components "mean (no loading):" base;
    Format.printf "  loading shift: %+.2f%% total, %+.2f%% subthreshold@."
      ((Report.total loaded -. Report.total base) /. Report.total base *. 100.0)
      ((loaded.Report.isub -. base.Report.isub) /. base.Report.isub *. 100.0);
    (if sigma then
       match patterns with
       | first :: _ ->
         let _, _, res =
           with_jobs jobs (fun pool ->
               Sensitivity.estimate_totals ~passes ?pool
                 ~sigmas:Variation.paper_sigmas lib nl first)
         in
         Format.printf
           "variance under paper sigmas (first vector, %d response classes):@."
           res.Sensitivity.groups;
         pp_sigma_stats "sigma (loading-aware):" res.Sensitivity.loaded;
         pp_sigma_stats "sigma (no loading):" res.Sensitivity.baseline;
         if Sensitivity.flagged res then
           Format.printf
             "  linearization flags: sub %b, gate %b, btbt %b@."
             res.Sensitivity.flagged_isub res.Sensitivity.flagged_igate
             res.Sensitivity.flagged_ibtbt
       | [] -> ());
    if spice then begin
      let sum =
        List.fold_left
          (fun acc p ->
            let r, _, _ = Report.analyze ~device ~temp nl p in
            Report.add acc r.Report.totals)
          Report.zero patterns
      in
      let mean = Report.scale (1.0 /. float_of_int vectors) sum in
      pp_components "mean (full solve):" mean;
      Format.printf "  estimator vs solver: %+.3f%%@."
        ((Report.total loaded -. Report.total mean)
         /. Report.total mean *. 100.0)
    end
  in
  Cmd.v
    (Cmd.info "estimate"
       ~doc:"Estimate circuit leakage with the loading-aware Fig-13 algorithm.")
    Term.(const run $ device_arg $ temp_arg $ circuit_arg $ bench_file_arg
          $ vectors_arg $ seed_arg $ spice_arg $ passes_arg $ csv_arg
          $ top_arg $ jobs_arg $ sigma_arg)

(* --------------------------------------------------------- characterize *)

let kind_conv =
  let parse s =
    match Gate.of_name s with
    | k -> Ok k
    | exception Invalid_argument m -> Error (`Msg m)
  in
  Arg.conv (parse, fun ppf k -> Format.fprintf ppf "%s" (Gate.name k))

let kind_arg =
  Arg.(value & opt kind_conv Gate.Inv
       & info [ "kind" ] ~docv:"CELL" ~doc:"Cell kind, e.g. INV, NAND2, XOR2.")

let vector_arg =
  Arg.(value & opt (some string) None
       & info [ "vector" ] ~docv:"BITS" ~doc:"Input vector, e.g. 01.")

let parse_vector kind = function
  | Some s -> Logic.vector_of_string s
  | None -> Array.make (Gate.arity kind) Logic.Zero

let characterize_cmd =
  let run device celsius kind vector =
    let v = parse_vector kind vector in
    let temp = kelvin celsius in
    let e = Characterize.characterize ~device ~temp kind v in
    Format.printf "%s @ %s, vector %s, %.0f C@." (Gate.name kind)
      device.Params.name (Logic.vector_to_string v) celsius;
    pp_components "nominal (isolated):" e.Characterize.nominal_isolated;
    pp_components "nominal (driven):" e.Characterize.nominal_driven;
    Array.iteri
      (fun pin inj ->
        Format.printf "  pin %d injects %+.1f nA into its net@." pin (na inj))
      e.Characterize.pin_injection;
    Format.printf "  delta tables at +1 uA input / -1 uA output:@.";
    pp_components "    d_in(pin 0):"
      (Characterize.eval_table e.Characterize.delta_in.(0) 1.0e-6);
    pp_components "    d_out:"
      (Characterize.eval_table e.Characterize.delta_out (-1.0e-6))
  in
  Cmd.v
    (Cmd.info "characterize"
       ~doc:"Characterize one cell/vector: nominal leakage, pin currents, \
             loading-response tables.")
    Term.(const run $ device_arg $ temp_arg $ kind_arg $ vector_arg)

(* ---------------------------------------------------------------- sweep *)

let sweep_cmd =
  let output_arg =
    Arg.(value & flag
         & info [ "output" ] ~doc:"Sweep output loading instead of input.")
  in
  let pin_arg =
    Arg.(value & opt int 0 & info [ "pin" ] ~docv:"PIN" ~doc:"Input pin index.")
  in
  let run device celsius kind vector output pin =
    let v = parse_vector kind vector in
    let temp = kelvin celsius in
    let pts =
      if output then Loading.output_sweep ~device ~temp kind v
      else Loading.input_sweep ~device ~temp ~pin kind v
    in
    Format.printf "%s loading sweep, %s vector %s (%s):@."
      (if output then "output" else "input")
      (Gate.name kind) (Logic.vector_to_string v) device.Params.name;
    Format.printf "%12s %10s %10s %10s %10s@." "I_L[nA]" "LD_sub%" "LD_gate%"
      "LD_btbt%" "LD_tot%";
    Array.iter
      (fun (p : Loading.ld_point) ->
        Format.printf "%12.0f %+10.3f %+10.3f %+10.3f %+10.3f@."
          (na p.Loading.current) p.Loading.ld_sub p.Loading.ld_gate
          p.Loading.ld_btbt p.Loading.ld_total)
      pts
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Sweep loading current on one cell and print LD percentages \
             (the Fig 5/7 experiment).")
    Term.(const run $ device_arg $ temp_arg $ kind_arg $ vector_arg
          $ output_arg $ pin_arg)

(* ------------------------------------------------------------------- mc *)

let mc_cmd =
  let samples_arg =
    Arg.(value & opt int 2000
         & info [ "samples" ] ~docv:"N" ~doc:"Monte-Carlo sample count.")
  in
  let run device celsius samples seed jobs =
    let temp = kelvin celsius in
    let config = { Monte_carlo.paper_config with Monte_carlo.n_samples = samples; seed } in
    let samples_arr =
      with_jobs jobs (fun pool ->
          Monte_carlo.run ?pool ~config ~device ~temp
            ~sigmas:Variation.paper_sigmas ())
    in
    Format.printf "%d samples, 6+6 loading inverters, %s at %.0f C@."
      config.Monte_carlo.n_samples device.Params.name celsius;
    let show name pick =
      let loaded, unloaded = Monte_carlo.component_arrays samples_arr ~pick in
      Format.printf
        "  %-13s mean %9.1f -> %9.1f nA (%+6.2f%%)   std %9.1f -> %9.1f nA (%+6.2f%%)@."
        name
        (na (Stats.mean unloaded)) (na (Stats.mean loaded))
        ((Stats.mean loaded -. Stats.mean unloaded) /. Stats.mean unloaded *. 100.0)
        (na (Stats.std unloaded)) (na (Stats.std loaded))
        ((Stats.std loaded -. Stats.std unloaded) /. Stats.std unloaded *. 100.0)
    in
    show "subthreshold" (fun c -> c.Report.isub);
    show "gate" (fun c -> c.Report.igate);
    show "junction" (fun c -> c.Report.ibtbt);
    show "total" Report.total
  in
  Cmd.v
    (Cmd.info "mc"
       ~doc:"Monte-Carlo variation analysis of an inverter with and without \
             loading (the Fig 10/11 experiment).")
    Term.(const run $ device_arg $ temp_arg $ samples_arg $ seed_arg
          $ jobs_arg)

(* ---------------------------------------------------------------- suite *)

let suite_cmd =
  let vectors_arg =
    Arg.(value & opt int 10
         & info [ "vectors" ] ~docv:"N"
             ~doc:"Random input vectors per circuit.")
  in
  let run device celsius vectors seed jobs =
    let temp = kelvin celsius in
    let lib = Library.create ~device ~temp () in
    let runs =
      with_jobs jobs (fun pool ->
          Suite.estimate_all ?pool ~vectors ~seed lib)
    in
    Format.printf "%s at %.0f C, %d random vectors per circuit@."
      device.Params.name celsius vectors;
    Format.printf "%-10s %8s %14s %14s %9s@." "name" "gates" "loaded[nA]"
      "base[nA]" "shift%";
    Array.iter
      (fun (r : Suite.run) ->
        Format.printf "%-10s %8d %14.1f %14.1f %+9.2f@." r.Suite.label
          r.Suite.gates
          (na (Report.total r.Suite.loaded))
          (na (Report.total r.Suite.baseline))
          r.Suite.shift_percent)
      runs
  in
  Cmd.v
    (Cmd.info "suite"
       ~doc:"Estimate every built-in benchmark circuit (the Fig-12 sweep), \
             fanning circuits out over -j worker domains.")
    Term.(const run $ device_arg $ temp_arg $ vectors_arg $ seed_arg
          $ jobs_arg)

(* ----------------------------------------------------------------- stat *)

let stat_cmd =
  let samples_arg =
    Arg.(value & opt int 1000
         & info [ "samples" ] ~docv:"N" ~doc:"Monte-Carlo sample count.")
  in
  let run device celsius circuit bench_file samples seed sigma =
    let nl = load_circuit circuit bench_file in
    let temp = kelvin celsius in
    let lib = Library.create ~device ~temp () in
    let rng = Rng.create seed in
    let pattern = List.hd (Simulate.random_patterns rng nl 1) in
    let r =
      Leakage_core.Statistical.run ~n_samples:samples ~seed
        ~sigmas:Variation.paper_sigmas lib nl pattern
    in
    let loaded, unloaded = Leakage_core.Statistical.summary r in
    Format.printf
      "%s: %d samples, one random vector, paper sigmas, %s at %.0f C@."
      (Netlist.name nl) samples device.Params.name celsius;
    let show tag (s : Stats.summary) =
      Format.printf
        "  %-14s mean %10.1f  std %10.1f  p05 %10.1f  p95 %10.1f nA@." tag
        (na s.Stats.mean) (na s.Stats.std) (na s.Stats.p05) (na s.Stats.p95)
    in
    show "with loading" loaded;
    show "no loading" unloaded;
    Format.printf "  loading shift: mean %+.2f%%, std %+.2f%%@."
      ((loaded.Stats.mean -. unloaded.Stats.mean) /. unloaded.Stats.mean *. 100.0)
      ((loaded.Stats.std -. unloaded.Stats.std) /. unloaded.Stats.std *. 100.0);
    if sigma then begin
      (* same pattern, zero samples: the closed form next to the sampler *)
      let _, _, res =
        Sensitivity.estimate_totals ~sigmas:Variation.paper_sigmas lib nl
          pattern
      in
      let row tag (t : Sensitivity.component_stat) =
        Format.printf
          "  %-14s mean %10.1f  std %10.1f  (inter %.1f, intra %.1f) nA%s@."
          tag (na t.Sensitivity.mean) (na t.Sensitivity.sigma)
          (na t.Sensitivity.sigma_inter) (na t.Sensitivity.sigma_intra)
          (if t.Sensitivity.from_mc then "  [mc fallback]" else "")
      in
      Format.printf "analytic variance propagation (no sampling):@.";
      row "with loading" res.Sensitivity.loaded.Sensitivity.s_total;
      row "no loading" res.Sensitivity.baseline.Sensitivity.s_total
    end
  in
  Cmd.v
    (Cmd.info "stat"
       ~doc:"Statistical circuit leakage under process variation (fast              sensitivity-based Monte Carlo, no per-sample DC solves).")
    Term.(const run $ device_arg $ temp_arg $ circuit_arg $ bench_file_arg
          $ samples_arg $ seed_arg $ sigma_arg)

(* --------------------------------------------------------------- mtcmos *)

let mtcmos_cmd =
  let width_arg =
    Arg.(value & opt (some float) None
         & info [ "width" ] ~docv:"UM"
             ~doc:"Footer width in um (default: 1 um per gate).")
  in
  let run device celsius circuit bench_file seed width =
    let nl = load_circuit circuit bench_file in
    let temp = kelvin celsius in
    let rng = Rng.create seed in
    let pattern = List.hd (Simulate.random_patterns rng nl 1) in
    let r = Leakage_core.Mtcmos.analyze ?sleep_width:width ~device ~temp nl pattern in
    Format.printf "%s with an MTCMOS footer:@." (Netlist.name nl);
    pp_components "ungated:" r.Leakage_core.Mtcmos.ungated;
    pp_components "active:" r.Leakage_core.Mtcmos.active.Leakage_core.Mtcmos.leakage;
    Format.printf "  active virtual ground %.4f V, leakage overhead %+.2f%%                    (the footer's own gate tunneling)@."
      r.Leakage_core.Mtcmos.active.Leakage_core.Mtcmos.virtual_ground
      r.Leakage_core.Mtcmos.active_overhead_percent;
    pp_components "standby:" r.Leakage_core.Mtcmos.standby.Leakage_core.Mtcmos.leakage;
    Format.printf
      "  standby virtual ground %.4f V, reduction %.1f%% vs ungated@."
      r.Leakage_core.Mtcmos.standby.Leakage_core.Mtcmos.virtual_ground
      r.Leakage_core.Mtcmos.standby_reduction_percent
  in
  Cmd.v
    (Cmd.info "mtcmos"
       ~doc:"Analyze sleep-transistor power gating: active overhead, standby              collapse, virtual-ground levels.")
    Term.(const run $ device_arg $ temp_arg $ circuit_arg $ bench_file_arg
          $ seed_arg $ width_arg)

(* -------------------------------------------------------------- thermal *)

let thermal_cmd =
  let r_theta_arg =
    Arg.(value & opt float 40.0
         & info [ "r-theta" ] ~docv:"K_PER_W"
             ~doc:"Junction-to-ambient thermal resistance.")
  in
  let power_arg =
    Arg.(value & opt float 0.0
         & info [ "power" ] ~docv:"WATTS" ~doc:"Non-leakage power dissipated.")
  in
  let run device celsius circuit bench_file seed r_theta power =
    let nl = load_circuit circuit bench_file in
    let rng = Rng.create seed in
    let pattern = List.hd (Simulate.random_patterns rng nl 1) in
    let config =
      { Leakage_core.Thermal.default_config with
        r_theta; other_power = power; ambient = kelvin celsius }
    in
    match Leakage_core.Thermal.solve ~config ~device nl pattern with
    | Leakage_core.Thermal.Converged op ->
      Format.printf
        "self-consistent point: T = %.2f C (ambient %.0f C), leakage power %.3f uW (%d iterations)@."
        (Physics.kelvin_to_celsius op.Leakage_core.Thermal.temperature)
        celsius
        (op.Leakage_core.Thermal.leakage_power *. 1e6)
        op.Leakage_core.Thermal.iterations;
      pp_components "leakage at that point:" op.Leakage_core.Thermal.leakage
    | Leakage_core.Thermal.Runaway { last_temp; iterations } ->
      Format.printf
        "THERMAL RUNAWAY: temperature passed %.0f C after %d iterations —          this package cannot sustain the circuit's leakage@."
        (Physics.kelvin_to_celsius last_temp)
        iterations
  in
  Cmd.v
    (Cmd.info "thermal"
       ~doc:"Find the self-consistent junction temperature including              leakage-power feedback (detects thermal runaway).")
    Term.(const run $ device_arg $ temp_arg $ circuit_arg $ bench_file_arg
          $ seed_arg $ r_theta_arg $ power_arg)

(* -------------------------------------------------------------- dualvth *)

let dualvth_cmd =
  let margin_arg =
    Arg.(value & opt int 1
         & info [ "margin" ] ~docv:"LEVELS"
             ~doc:"Keep low threshold within this many levels of the                    critical path.")
  in
  let shift_arg =
    Arg.(value & opt float 0.08
         & info [ "shift" ] ~docv:"VOLTS" ~doc:"High-Vth threshold increase.")
  in
  let run device celsius circuit bench_file seed margin shift =
    let nl = load_circuit circuit bench_file in
    let temp = kelvin celsius in
    let low_lib = Library.create ~device ~temp () in
    let high_device = Leakage_incremental.Dual_vth.high_vth_device ~shift device in
    let high_lib =
      Library.create ~device:high_device ~temp ~vdd:device.Params.vdd ()
    in
    let assignment =
      Leakage_incremental.Dual_vth.slack_assignment ~critical_margin:margin nl
    in
    let rng = Rng.create seed in
    let pattern = List.hd (Simulate.random_patterns rng nl 1) in
    let e =
      Leakage_incremental.Dual_vth.evaluate ~low_lib ~high_lib assignment nl pattern
    in
    Format.printf "%s: %d of %d gates assigned high-Vth (+%.0f mV, margin %d)@."
      (Netlist.name nl) e.Leakage_incremental.Dual_vth.n_high (Netlist.gate_count nl)
      (shift *. 1000.0) margin;
    pp_components "all low-Vth:" e.Leakage_incremental.Dual_vth.baseline;
    pp_components "dual-Vth:" e.Leakage_incremental.Dual_vth.totals;
    Format.printf "  leakage reduction: %.2f%%@."
      e.Leakage_incremental.Dual_vth.reduction_percent
  in
  Cmd.v
    (Cmd.info "dualvth"
       ~doc:"Evaluate a slack-based dual-threshold assignment with the              loading-aware estimator.")
    Term.(const run $ device_arg $ temp_arg $ circuit_arg $ bench_file_arg
          $ seed_arg $ margin_arg $ shift_arg)

(* ----------------------------------------------------------------- prob *)

let prob_cmd =
  let p_one_arg =
    Arg.(value & opt float 0.5
         & info [ "p1" ] ~docv:"PROB"
             ~doc:"Probability of '1' on every primary input.")
  in
  let run device celsius circuit bench_file p_one =
    let nl = load_circuit circuit bench_file in
    let temp = kelvin celsius in
    let lib = Library.create ~device ~temp () in
    let input_probability =
      Array.make (Array.length (Netlist.inputs nl)) p_one
    in
    let e = Leakage_core.Probabilistic.expected_leakage ~input_probability lib nl in
    Format.printf "%s, expected leakage over the input distribution (p1 = %.2f):@."
      (Netlist.name nl) p_one;
    pp_components "E[leakage] (loading):" e.Leakage_core.Probabilistic.totals;
    pp_components "E[leakage] (no loading):"
      e.Leakage_core.Probabilistic.baseline_totals
  in
  Cmd.v
    (Cmd.info "prob"
       ~doc:"Closed-form average leakage from signal probabilities (instead              of sampling random vectors).")
    Term.(const run $ device_arg $ temp_arg $ circuit_arg $ bench_file_arg
          $ p_one_arg)

(* -------------------------------------------------------------- corners *)

let corners_cmd =
  let run device celsius circuit bench_file =
    let nl = load_circuit circuit bench_file in
    let temp = kelvin celsius in
    let sigmas = Variation.paper_sigmas in
    let rng = Rng.create 7 in
    let pattern = List.hd (Simulate.random_patterns rng nl 1) in
    Format.printf "%s across 3-sigma corners (one random vector):@."
      (Netlist.name nl);
    List.iter
      (fun (tag, corner) ->
        let d = Variation.corner_device device sigmas corner in
        let lib = Library.create ~device:d ~temp () in
        let est = Estimator.estimate lib nl pattern in
        pp_components (tag ^ ":") est.Estimator.totals)
      [ ("slow", Variation.Slow); ("typical", Variation.Typical);
        ("fast", Variation.Fast) ]
  in
  Cmd.v
    (Cmd.info "corners"
       ~doc:"Estimate leakage at the slow / typical / fast process corners.")
    Term.(const run $ device_arg $ temp_arg $ circuit_arg $ bench_file_arg)

(* -------------------------------------------------------------- vectors *)

let vectors_cmd =
  let run device celsius circuit bench_file seed =
    let nl = load_circuit circuit bench_file in
    let temp = kelvin celsius in
    let lib = Library.create ~device ~temp () in
    let c = Vector_control.compare_objectives ~seed lib nl in
    let show tag (r : Vector_control.search_result) =
      Format.printf "  %-26s %s (%.1f nA)@." tag
        (Logic.vector_to_string r.Vector_control.vector)
        (na r.Vector_control.total)
    in
    show "minimum (loading-aware):" c.Vector_control.with_loading;
    show "minimum (traditional):" c.Vector_control.without_loading;
    Format.printf "  traditional optimum under loading: %.1f nA@."
      (na c.Vector_control.without_under_loading);
    Format.printf "  minimum vector changed by loading: %b@."
      c.Vector_control.changed
  in
  Cmd.v
    (Cmd.info "vectors"
       ~doc:"Search the minimum-leakage input vector with and without the \
             loading effect (input-vector control, §6).")
    Term.(const run $ device_arg $ temp_arg $ circuit_arg $ bench_file_arg
          $ seed_arg)

(* ----------------------------------------------------------------- incr *)

let incr_cmd =
  let edits_arg =
    Arg.(value & opt int 1000
         & info [ "edits" ] ~docv:"N" ~doc:"Number of random edits to apply.")
  in
  let refresh_arg =
    Arg.(value & opt int 64
         & info [ "refresh" ] ~docv:"N"
             ~doc:"Full-refresh period of the session (0 disables).")
  in
  let flip_arg =
    Arg.(value & flag
         & info [ "flip-inputs" ]
             ~doc:"Mix random primary-input flips into the edit stream \
                   (default: gate resizes only).")
  in
  let batch_arg =
    Arg.(value & opt int 1
         & info [ "batch" ] ~docv:"N"
             ~doc:"Apply the edit stream in batches of N edits through the \
                   grouped-batch path; cone-disjoint groups inside a batch \
                   run on the $(b,-j) pool, with results bit-identical to \
                   the sequential walk. 1 (the default) applies edits one \
                   at a time.")
  in
  let run device celsius circuit bench_file seed edits refresh flip_inputs
      batch jobs =
    if edits <= 0 then failwith "--edits must be positive";
    if batch < 1 then failwith "--batch must be >= 1";
    let nl = load_circuit circuit bench_file in
    let temp = kelvin celsius in
    let lib = Library.create ~device ~temp () in
    let rng = Rng.create seed in
    let pattern = List.hd (Simulate.random_patterns rng nl 1) in
    let edit_stream =
      Array.init edits (fun _ ->
          if flip_inputs && Rng.bool rng then Edit.random_set_input rng nl
          else Edit.random_resize rng nl)
    in
    let slices =
      Array.init ((edits + batch - 1) / batch) (fun i ->
          let lo = i * batch in
          Array.to_list
            (Array.sub edit_stream lo (Stdlib.min edits (lo + batch) - lo)))
    in
    (* a pool only helps the grouped-batch path; don't spawn one otherwise *)
    with_jobs (if batch = 1 then 1 else jobs) @@ fun pool ->
    let apply_stream session =
      if batch = 1 then
        Array.map
          (fun e ->
            let s = Sys.time () in
            Incremental.apply session e;
            Sys.time () -. s)
          edit_stream
      else
        Array.map
          (fun slice ->
            let s = Sys.time () in
            Incremental.apply_batch ?pool session slice;
            Sys.time () -. s)
          slices
    in
    (* Warm-up pass: first-touch cell characterizations land in the shared
       library cache, which both the session and the full estimator use. The
       timed passes below then compare estimation work, not SPICE solves. *)
    let warm = Incremental.create ~refresh_every:refresh lib nl pattern in
    ignore (apply_stream warm);
    let session = Incremental.create ~refresh_every:refresh lib nl pattern in
    let t0 = Sys.time () in
    let per_step = apply_stream session in
    let incr_total = Sys.time () -. t0 in
    (* reference: full Fig-13 estimates of the same final state *)
    let nl' = Incremental.current_netlist session in
    let library_of_gate = Incremental.library_of_gate session in
    let p' = Incremental.pattern session in
    let reps = Stdlib.min edits 20 in
    let tf = Sys.time () in
    for _ = 1 to reps do
      ignore (Estimator.estimate ~library_of_gate lib nl' p')
    done;
    let full_mean = (Sys.time () -. tf) /. float_of_int reps in
    let fresh = Estimator.estimate ~library_of_gate lib nl' p' in
    let rel_err =
      let a = Report.total (Incremental.totals session)
      and b = Report.total fresh.Estimator.totals in
      Float.abs (a -. b) /. Float.abs b
    in
    let st = Incremental.stats session in
    let us t = t *. 1e6 in
    let s = Stats.summarize per_step in
    Format.printf "%s: %d gates, %d random %s edits (refresh every %d%s)@."
      (Netlist.name nl) (Netlist.gate_count nl) edits
      (if flip_inputs then "resize/input" else "resize")
      refresh
      (if batch = 1 then ""
       else
         Printf.sprintf ", batches of %d on %d lane%s" batch
           (match pool with Some p -> Pool.jobs p | None -> 1)
           (match pool with Some p when Pool.jobs p > 1 -> "s" | _ -> ""));
    pp_components "session totals:" (Incremental.totals session);
    Format.printf "  vs fresh estimate: %.2e relative error@." rel_err;
    Format.printf
      "  %s time: mean %.1f us, p50 %.1f, p95 %.1f, max %.1f us@."
      (if batch = 1 then "per-edit" else "per-batch")
      (us s.Stats.mean) (us s.Stats.p50) (us s.Stats.p95) (us s.Stats.max);
    if batch > 1 then
      Format.printf
        "  batches: %d applied, mean %.1f cone-disjoint group%s each@."
        st.Incremental.batches
        (float_of_int st.Incremental.batch_groups
         /. float_of_int (Stdlib.max 1 st.Incremental.batches))
        (if st.Incremental.batch_groups > st.Incremental.batches then "s"
         else "");
    Format.printf "  full estimate: %.1f us -> speedup %.1fx per edit@."
      (us full_mean)
      (full_mean /. (incr_total /. float_of_int edits));
    Format.printf
      "  mean cone: %.1f logic evals, %.1f entry updates, %.1f net updates, \
       %.1f leakage lookups per edit (%d refreshes)@."
      (float_of_int st.Incremental.logic_evals /. float_of_int edits)
      (float_of_int st.Incremental.entry_updates /. float_of_int edits)
      (float_of_int st.Incremental.net_updates /. float_of_int edits)
      (float_of_int st.Incremental.leakage_lookups /. float_of_int edits)
      st.Incremental.refreshes
  in
  Cmd.v
    (Cmd.info "incr"
       ~doc:"Apply a stream of random netlist edits through the incremental \
             re-estimation session and report per-edit timing, cone sizes, \
             and the speedup over full re-estimation. With $(b,--batch) the \
             stream goes through the grouped-batch path, whose cone-disjoint \
             edit groups run on the $(b,-j) worker pool.")
    Term.(const run $ device_arg $ temp_arg $ circuit_arg $ bench_file_arg
          $ seed_arg $ edits_arg $ refresh_arg $ flip_arg $ batch_arg
          $ jobs_arg)

(* ---------------------------------------------------------------- serve *)

module Server = Leakage_server.Server
module Sproto = Leakage_server.Protocol
module Sclient = Leakage_server.Client

let socket_arg =
  Arg.(value & opt (some string) None
       & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let port_arg =
  Arg.(value & opt (some int) None
       & info [ "port" ] ~docv:"N" ~doc:"Loopback TCP port.")

let serve_cmd =
  let run socket port http_port executors quota max_sessions state_dir
      peer_dir tenant_rate jobs log_file log_level slow_ms =
    let socket =
      match socket with
      | Some s -> s
      | None -> failwith "--socket PATH is required"
    in
    (* the metrics op answers from the live telemetry registry *)
    Telemetry.set_enabled true;
    (match log_file with
     | None -> ()
     | Some path ->
       let level =
         match Tlog.level_of_string log_level with
         | Some l -> l
         | None -> failwith ("unknown log level " ^ log_level)
       in
       if path = "-" then Tlog.enable ~level stderr
       else Tlog.enable_file ~level path);
    (* a client hanging up mid-reply must not kill the daemon *)
    ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
    let slow_us =
      match slow_ms with Some ms -> ms *. 1000.0 | None -> infinity
    in
    (* --tenant-rate R[:B]: sustained rate, optional burst *)
    let tenant_rate, tenant_burst =
      match tenant_rate with
      | None -> (None, None)
      | Some s ->
        let parse what v =
          match float_of_string_opt v with
          | Some f when f > 0.0 -> f
          | _ -> failwith ("--tenant-rate: " ^ what ^ " must be positive, got " ^ v)
        in
        (match String.index_opt s ':' with
         | None -> (Some (parse "rate" s), None)
         | Some i ->
           ( Some (parse "rate" (String.sub s 0 i)),
             Some
               (parse "burst"
                  (String.sub s (i + 1) (String.length s - i - 1))) ))
    in
    let server =
      Server.create ?port ?http_port ~executors
        ?jobs:(if jobs <= 0 then None else Some jobs)
        ~quota ~max_sessions ?state_dir ?peer_dir ?tenant_rate ?tenant_burst
        ~version:"1.0.0" ~slow_us ~socket ()
    in
    let stop _ = Server.request_stop server in
    ignore (Sys.signal Sys.sigint (Sys.Signal_handle stop));
    ignore (Sys.signal Sys.sigterm (Sys.Signal_handle stop));
    Format.printf "leakctl serve: listening on %s%s%s@." socket
      (match port with
       | Some p -> Printf.sprintf " and 127.0.0.1:%d" p
       | None -> "")
      (match Server.http_port server with
       | Some p -> Printf.sprintf ", metrics on http://127.0.0.1:%d/metrics" p
       | None -> "");
    Format.print_flush ();
    Server.run server;
    Tlog.disable ();
    Format.printf "leakctl serve: drained, checkpoints flushed, stopped@."
  in
  let executors =
    Arg.(value & opt int 2
         & info [ "executors" ] ~docv:"N"
             ~doc:"Executor domains; sessions stick to one by digest hash.")
  in
  let quota =
    Arg.(value & opt int 8
         & info [ "quota" ] ~docv:"N"
             ~doc:"Per-tenant in-flight request cap (over it, requests are \
                   rejected with a retriable over_quota error).")
  in
  let max_sessions =
    Arg.(value & opt int 8
         & info [ "max-sessions" ] ~docv:"N"
             ~doc:"Live warm sessions before idle LRU eviction.")
  in
  let state_dir =
    Arg.(value & opt (some string) None
         & info [ "state-dir" ] ~docv:"DIR"
             ~doc:"Checkpoint directory: evicted or killed sessions restore \
                   from here on the next open. Without it nothing survives \
                   eviction or a restart.")
  in
  let peer_dir =
    Arg.(value & opt (some string) None
         & info [ "peer-dir" ] ~docv:"DIR"
             ~doc:"Checkpoint directory shared with peer daemons: every \
                   post-batch checkpoint is mirrored here atomically, and \
                   an open that misses the local state adopts the newest \
                   matching peer checkpoint — so a client retrying against \
                   a peer after a crash lands warm, losing at most the \
                   in-flight batch.")
  in
  let tenant_rate =
    Arg.(value & opt (some string) None
         & info [ "tenant-rate" ] ~docv:"R[:B]"
             ~doc:"Per-tenant token-bucket admission: sustain $(i,R) \
                   requests/second with bursts up to $(i,B) (default \
                   max 1 R). Over the bucket, requests get a retriable \
                   over_quota error with a retry-after hint.")
  in
  let http_port =
    Arg.(value & opt (some int) None
         & info [ "http-port" ] ~docv:"N"
             ~doc:"Loopback HTTP sidecar for observability: GET /metrics \
                   (Prometheus exposition), GET /healthz (drain state). 0 \
                   picks an ephemeral port, printed at startup.")
  in
  let log_file =
    Arg.(value & opt (some string) None
         & info [ "log" ] ~docv:"FILE"
             ~doc:"Structured JSONL event log (one JSON object per line, \
                   request ids included); $(b,-) logs to stderr.")
  in
  let log_level =
    Arg.(value & opt string "info"
         & info [ "log-level" ] ~docv:"LEVEL"
             ~doc:"Minimum level for --log: debug, info, warn, error.")
  in
  let slow_ms =
    Arg.(value & opt (some float) None
         & info [ "slow-ms" ] ~docv:"MS"
             ~doc:"Log a request.slow event for requests slower than \
                   $(i,MS) milliseconds.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the estimation daemon: warm incremental sessions keyed by \
             netlist digest behind a binary protocol on a Unix-domain socket \
             (and optionally a loopback TCP port), with an optional HTTP \
             observability sidecar. SIGINT/SIGTERM shut down gracefully: \
             drain queued work, flush checkpoints, close sockets.")
    Term.(const run $ socket_arg $ port_arg $ http_port $ executors $ quota
          $ max_sessions $ state_dir $ peer_dir $ tenant_rate $ jobs_arg
          $ log_file $ log_level $ slow_ms)

(* --------------------------------------------------------------- client *)

let client_cmd =
  let parse_pair what conv s =
    match String.index_opt s ':' with
    | None -> failwith (what ^ " expects ID:VALUE, got " ^ s)
    | Some i ->
      ( int_of_string (String.sub s 0 i),
        conv (String.sub s (i + 1) (String.length s - i - 1)) )
  in
  let run socket port host op session tenant device temp pattern circuit
      bench resizes retypes sets refresh ckpt text retries timeout_ms =
    if retries < 0 then failwith "--retries must be >= 0";
    (match timeout_ms with
     | Some ms when ms <= 0.0 -> failwith "--timeout-ms must be positive"
     | _ -> ());
    let policy = { Sclient.default_policy with retries; timeout_ms } in
    let exhausted () =
      if retries > 0 then Printf.sprintf " (%d retries exhausted)" retries
      else ""
    in
    let client =
      try
        match socket, port with
        | Some path, _ -> Sclient.connect_unix ~policy path
        | None, Some p -> Sclient.connect_tcp ~policy ~host p
        | None, None -> failwith "--socket PATH or --port N is required"
      with Unix.Unix_error (e, _, _) ->
        failwith
          (Printf.sprintf "cannot connect to the daemon%s: %s" (exhausted ())
             (Unix.error_message e))
    in
    Fun.protect ~finally:(fun () -> Sclient.close client) @@ fun () ->
    let sid () =
      match session with
      | Some s -> s
      | None -> failwith ("--session is required for " ^ op)
    in
    try
      match op with
      | "ping" ->
        Sclient.ping client;
        Format.printf "pong@."
      | "open" ->
        let circuit =
          match circuit, bench with
          | Some name, None -> Sproto.Builtin name
          | None, Some path ->
            (* the wire protocol ships the bench text itself, so this one
               read is necessarily whole-file; the channel must still not
               leak when the read raises *)
            let ic = open_in_bin path in
            let text =
              Fun.protect
                ~finally:(fun () -> close_in_noerr ic)
                (fun () -> really_input_string ic (in_channel_length ic))
            in
            Sproto.Bench
              { name = Filename.remove_extension (Filename.basename path);
                text }
          | Some _, Some _ -> failwith "give either --circuit or --bench, not both"
          | None, None -> failwith "open needs --circuit NAME or --bench FILE"
        in
        let o =
          Sclient.open_session client ~tenant ~device ~temp_c:temp ~pattern
            ~circuit ()
        in
        Format.printf "session %d: %s, digest %s, %d gates@."
          o.Sclient.session
          (Sproto.session_status_name o.Sclient.status)
          o.Sclient.digest o.Sclient.gates
      | "apply" ->
        (* flags of one kind keep their order; kinds apply in the order
           resize, retype, set-input *)
        let edits =
          List.map
            (fun s ->
              let g, f = parse_pair "--resize" float_of_string s in
              Sproto.Resize (g, f))
            resizes
          @ List.map
              (fun s ->
                let g, k = parse_pair "--retype" Fun.id s in
                Sproto.Retype (g, k))
              retypes
          @ List.map
              (fun s ->
                let n, b =
                  parse_pair "--set-input"
                    (function
                      | "0" -> false
                      | "1" -> true
                      | v -> failwith ("bit must be 0 or 1, got " ^ v))
                    s
                in
                Sproto.Set_input (n, b))
              sets
        in
        if edits = [] then
          failwith "apply needs at least one --resize/--retype/--set-input";
        let groups = Sclient.apply_batch client ~session:(sid ()) edits in
        Format.printf "applied %d edits in %d cone groups@."
          (List.length edits) groups
      | "query" ->
        let loaded, baseline =
          Sclient.query client ~session:(sid ()) ~refresh ()
        in
        pp_components "loaded (with fan-out)" loaded;
        pp_components "baseline (unloaded)" baseline;
        Format.printf "  loading penalty: %+.2f%%@."
          ((Report.total loaded /. Report.total baseline -. 1.) *. 100.)
      | "checkpoint" ->
        Format.printf "checkpoint %d@."
          (Sclient.checkpoint client ~session:(sid ()))
      | "rollback" ->
        let ck =
          match ckpt with
          | Some c -> c
          | None -> failwith "--ckpt N is required for rollback"
        in
        Sclient.rollback client ~session:(sid ()) ~checkpoint:ck;
        Format.printf "rolled back to checkpoint %d@." ck
      | "close" ->
        Sclient.close_session client ~session:(sid ());
        Format.printf "closed@."
      | "metrics" ->
        if text then begin
          let r = Sclient.metrics_snapshot client in
          Format.printf "daemon %s, up %.1fs@." r.Sclient.version
            r.Sclient.uptime_s;
          Format.printf "%a@?" Telemetry.Snapshot.pp r.Sclient.snapshot
        end
        else begin
          (* raw snapshot JSON; keep the stream newline-terminated so
             shell pipelines and JSONL consumers see one full line *)
          print_string (Sclient.metrics client);
          print_newline ()
        end
      | "shutdown" ->
        Sclient.shutdown_server client;
        Format.printf "server draining@."
      | other -> failwith ("unknown op " ^ other)
    with
    | Sclient.Server_error (code, msg) ->
      failwith
        (Printf.sprintf "server error (%s%s): %s"
           (Sproto.error_code_name code)
           (if Sproto.retriable code then ", retriable" else "")
           msg)
    | Leakage_server.Wire.Timeout ->
      failwith
        (Printf.sprintf "rpc timed out after %.0fms%s"
           (Option.value ~default:0.0 timeout_ms)
           (exhausted ()))
    | Sclient.Poisoned msg -> failwith msg
    | Unix.Unix_error (e, _, _) ->
      failwith
        (Printf.sprintf "connection to the daemon failed%s: %s"
           (exhausted ()) (Unix.error_message e))
    | End_of_file | Leakage_server.Wire.Truncated ->
      failwith
        (Printf.sprintf "daemon closed the connection mid-reply%s"
           (exhausted ()))
    | Leakage_server.Wire.Bad_frame msg ->
      failwith (Printf.sprintf "malformed reply frame: %s" msg)
  in
  let op =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"OP"
             ~doc:"One of: ping, open, apply, query, checkpoint, rollback, \
                   close, metrics, shutdown.")
  in
  let session =
    Arg.(value & opt (some int) None
         & info [ "session" ] ~docv:"ID" ~doc:"Session id from open.")
  in
  let tenant =
    Arg.(value & opt string "anon"
         & info [ "tenant" ] ~docv:"NAME"
             ~doc:"Tenant name for admission control.")
  in
  let device =
    Arg.(value & opt string "d25"
         & info [ "device" ] ~docv:"DEV"
             ~doc:"Device corner name: d25, d50, d25-s, d25-g, d25-jn.")
  in
  let pattern =
    Arg.(value & opt string ""
         & info [ "pattern" ] ~docv:"BITS"
             ~doc:"Primary-input vector; empty keeps/zeroes the vector.")
  in
  let resize =
    Arg.(value & opt_all string []
         & info [ "resize" ] ~docv:"GATE:FACTOR"
             ~doc:"Resize gate $(i,GATE) by $(i,FACTOR) (repeatable).")
  in
  let retype =
    Arg.(value & opt_all string []
         & info [ "retype" ] ~docv:"GATE:KIND"
             ~doc:"Retype gate $(i,GATE) to cell $(i,KIND) (repeatable).")
  in
  let set_input =
    Arg.(value & opt_all string []
         & info [ "set-input" ] ~docv:"INPUT:BIT"
             ~doc:"Drive primary input $(i,INPUT) to $(i,BIT) (repeatable).")
  in
  let refresh =
    Arg.(value & flag
         & info [ "refresh" ]
             ~doc:"Re-sum totals from state before answering the query.")
  in
  let ckpt =
    Arg.(value & opt (some int) None
         & info [ "ckpt" ] ~docv:"N" ~doc:"Checkpoint id for rollback.")
  in
  let text =
    Arg.(value & flag
         & info [ "text" ]
             ~doc:"Render $(b,metrics) as the human-readable report \
                   (counters, gauges, histogram summaries) instead of raw \
                   JSON.")
  in
  let host =
    Arg.(value & opt string "127.0.0.1"
         & info [ "host" ] ~docv:"HOST"
             ~doc:"Host for --port connections; names resolve via \
                   getaddrinfo, so $(b,localhost) works.")
  in
  let retries =
    Arg.(value & opt int 0
         & info [ "retries" ] ~docv:"N"
             ~doc:"Retry budget: transport failures reconnect, retriable \
                   server errors (over_quota, shutting_down) back off \
                   exponentially with jitter — honoring the server's \
                   retry-after hint — and resend, up to $(i,N) times.")
  in
  let timeout_ms =
    Arg.(value & opt (some float) None
         & info [ "timeout-ms" ] ~docv:"MS"
             ~doc:"Per-RPC reply deadline in milliseconds; hitting it \
                   poisons the connection (retries reconnect).")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Talk to a running $(b,leakctl serve) daemon: open a warm \
             session, apply edit batches, query loaded/baseline totals, \
             checkpoint/rollback, fetch metrics, or shut the daemon down.")
    Term.(const run $ socket_arg $ port_arg $ host $ op $ session $ tenant
          $ device $ temp_arg $ pattern $ circuit_arg $ bench_file_arg
          $ resize $ retype $ set_input $ refresh $ ckpt $ text $ retries
          $ timeout_ms)

(* ------------------------------------------------------------------ top *)

let top_cmd =
  let run socket port interval frames no_clear =
    if interval <= 0.0 then failwith "--interval must be positive";
    let connect () =
      match socket, port with
      | Some path, _ -> Sclient.connect_unix path
      | None, Some p -> Sclient.connect_tcp p
      | None, None -> failwith "--socket PATH or --port N is required"
    in
    let client = connect () in
    Fun.protect ~finally:(fun () -> Sclient.close client) @@ fun () ->
    let poll () = Sclient.metrics_snapshot client in
    let older = ref (poll ()).Sclient.snapshot in
    let shown = ref 0 in
    (try
       while frames = 0 || !shown < frames do
         Unix.sleepf interval;
         let r = poll () in
         let view =
           Top_view.make ~uptime_s:r.Sclient.uptime_s
             ~version:r.Sclient.version ~newer:r.Sclient.snapshot
             ~older:!older
         in
         older := r.Sclient.snapshot;
         if not no_clear then print_string "\027[2J\027[H";
         Format.printf "%a@?" Top_view.pp view;
         incr shown
       done
     with Sclient.Server_error (code, msg) ->
       failwith
         (Printf.sprintf "server error (%s): %s"
            (Sproto.error_code_name code) msg))
  in
  let interval =
    Arg.(value & opt float 2.0
         & info [ "interval" ] ~docv:"S"
             ~doc:"Seconds between polls (the rate window).")
  in
  let frames =
    Arg.(value & opt int 0
         & info [ "frames" ] ~docv:"N"
             ~doc:"Render N frames and exit; 0 runs until interrupted.")
  in
  let no_clear =
    Arg.(value & flag
         & info [ "no-clear" ]
             ~doc:"Append frames instead of clearing the screen (for \
                   logging or piping).")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Live daemon view: poll a running $(b,leakctl serve) and render \
             request rates, per-op p50/p99 latency, per-tenant quota \
             pressure, session churn, and runtime gauges from snapshot \
             deltas.")
    Term.(const run $ socket_arg $ port_arg $ interval $ frames $ no_clear)

(* ------------------------------------------------------------ telemetry *)

type telemetry_opts = {
  trace_path : string option;
  metrics_text : bool;
  metrics_json : string option;
}

(* --trace / --metrics / --metrics-json apply to every subcommand, but a
   cmdliner group only parses options after the subcommand name. Pull them
   out of argv (any position, --opt VALUE or --opt=VALUE) and hand cmdliner
   the rest, so `leakctl --trace out.json suite` and
   `leakctl suite --trace out.json` both work. *)
let extract_telemetry_args argv =
  let trace = ref (Sys.getenv_opt "LEAKCTL_TRACE") in
  let metrics = ref false in
  let metrics_json = ref None in
  let rest = ref [] in
  let n = Array.length argv in
  let i = ref 0 in
  (* A malformed global option must not escape as an exception (these are
     parsed before cmdliner ever runs): print a usage line and exit 124,
     the same status cmdliner uses for its own CLI parse errors. *)
  let usage_error key =
    Printf.eprintf
      "leakctl: option '%s' needs a FILE argument\n\
       usage: leakctl [--trace FILE] [--metrics] [--metrics-json FILE] \
       COMMAND ...\n"
      key;
    exit 124
  in
  while !i < n do
    let arg = argv.(!i) in
    let key, inline =
      match String.index_opt arg '=' with
      | Some j ->
        ( String.sub arg 0 j,
          Some (String.sub arg (j + 1) (String.length arg - j - 1)) )
      | None -> (arg, None)
    in
    let value_of () =
      match inline with
      | Some "" -> usage_error key
      | Some v -> v
      | None ->
        if !i + 1 >= n then usage_error key
        else begin
          incr i;
          argv.(!i)
        end
    in
    (match key with
     | "--trace" -> trace := Some (value_of ())
     | "--metrics" -> metrics := true
     | "--metrics-json" -> metrics_json := Some (value_of ())
     | _ -> rest := arg :: !rest);
    incr i
  done;
  ( { trace_path = !trace; metrics_text = !metrics;
      metrics_json = !metrics_json },
    Array.of_list (List.rev !rest) )

let () =
  let opts, argv = extract_telemetry_args Sys.argv in
  let observing =
    opts.trace_path <> None || opts.metrics_text || opts.metrics_json <> None
  in
  if observing then Telemetry.set_enabled true;
  if opts.trace_path <> None then Trace.start ();
  let doc =
    "loading-aware leakage analysis for nano-scaled bulk-CMOS logic \
     (Mukhopadhyay, Bhunia, Roy; DATE 2005)"
  in
  let man =
    [ `S Manpage.s_common_options;
      `P "Every subcommand also accepts (in any argv position):";
      `P "$(b,--trace) $(i,FILE) — record Chrome trace-event spans (one \
          track per worker domain) and write them to $(i,FILE); load in \
          Perfetto or chrome://tracing. $(b,LEAKCTL_TRACE)=$(i,FILE) does \
          the same.";
      `P "$(b,--metrics) — print the merged counter/histogram report to \
          stderr on exit.";
      `P "$(b,--metrics-json) $(i,FILE) — write the metrics report as JSON \
          to $(i,FILE).";
      `P "Telemetry never changes results: runs with and without it are \
          bit-identical." ]
  in
  let info = Cmd.info "leakctl" ~version:"1.0.0" ~doc ~man in
  let group =
    Cmd.group info
      [ list_cmd; stats_cmd; generate_cmd; snapshot_cmd; sim_cmd;
        estimate_cmd; characterize_cmd;
        sweep_cmd; mc_cmd; suite_cmd; stat_cmd; mtcmos_cmd; thermal_cmd;
        dualvth_cmd; prob_cmd; corners_cmd; vectors_cmd; incr_cmd;
        serve_cmd; client_cmd; top_cmd ]
  in
  (* Expected failures (bad netlist file, bad usage, missing path) get one
     clean stderr line and a distinct exit status, not a backtrace;
     anything else still escapes loudly as the bug it is. *)
  let code =
    try Cmd.eval ~catch:false ~argv group with
    | Bench_format.Parse_error (line, msg) ->
      Format.eprintf "leakctl: parse error at line %d: %s@." line msg;
      123
    | Spice_format.Parse_error (line, msg) ->
      Format.eprintf "leakctl: SPICE parse error at line %d: %s@." line msg;
      123
    | Snapshot.Snapshot_error msg | Failure msg ->
      Format.eprintf "leakctl: %s@." msg;
      123
    | Sys_error msg ->
      Format.eprintf "leakctl: %s@." msg;
      123
  in
  (match opts.trace_path with
   | Some path ->
     Trace.write path;
     Format.eprintf "trace: %d events written to %s@."
       (Trace.event_count ()) path
   | None -> ());
  if opts.metrics_text || opts.metrics_json <> None then begin
    let snap = Telemetry.Snapshot.take () in
    if opts.metrics_text then
      Format.eprintf "%a@?" Telemetry.Snapshot.pp snap;
    match opts.metrics_json with
    | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc (Telemetry.Snapshot.to_json snap);
          output_char oc '\n');
      Format.eprintf "metrics: JSON report written to %s@." path
    | None -> ()
  end;
  exit code
