type entry = {
  label : string;
  build : unit -> Leakage_circuit.Netlist.t;
}

let iscas name = { label = name; build = (fun () -> Iscas.generate_by_name name) }

let all =
  [
    iscas "s838";
    iscas "s1196";
    iscas "s1423";
    iscas "s5378";
    iscas "s9234";
    iscas "s13207";
    { label = "alu88"; build = (fun () -> Alu8.build ()) };
    { label = "mult88"; build = (fun () -> Mult8.build ()) };
  ]

let find label = List.find (fun e -> e.label = label) all

let names = List.map (fun e -> e.label) all

module Logic = Leakage_circuit.Logic
module Netlist = Leakage_circuit.Netlist
module Rng = Leakage_numeric.Rng
module Report = Leakage_spice.Leakage_report
module Pool = Leakage_parallel.Pool

type run = {
  label : string;
  gates : int;
  loaded : Report.components;
  baseline : Report.components;
  shift_percent : float;
}

let estimate_all ?pool ?(entries = all) ?(vectors = 10) ?(seed = 7) lib =
  if vectors <= 0 then invalid_arg "Suite.estimate_all: vectors must be positive";
  let entries = Array.of_list entries in
  (* One independent stream per circuit, split in suite order, so each
     circuit draws the same vectors regardless of scheduling. *)
  let rng = Rng.create seed in
  let streams = Array.map (fun _ -> Rng.split rng) entries in
  Pool.map ?pool (Array.length entries) (fun i ->
      let e = entries.(i) in
      let netlist = e.build () in
      let width = Array.length (Netlist.inputs netlist) in
      let rng = streams.(i) in
      let vs =
        List.init vectors (fun _ -> Logic.random_vector rng width)
      in
      (* Inner averaging stays sequential: the suite fans out per circuit. *)
      let loaded, baseline =
        Leakage_core.Estimator.average_over_vectors lib netlist vs
      in
      let lt = Report.total loaded and bt = Report.total baseline in
      {
        label = e.label;
        gates = Netlist.gate_count netlist;
        loaded;
        baseline;
        shift_percent = (lt -. bt) /. bt *. 100.0;
      })
