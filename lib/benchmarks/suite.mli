(** The paper's benchmark suite (§6 / Fig 12): six ISCAS89-profile circuits,
    the 8-bit ALU and the 8×8 multiplier. *)

type entry = {
  label : string;        (** name used in Fig 12's x-axis *)
  build : unit -> Leakage_circuit.Netlist.t;
}

val all : entry list
(** s838, s1196, s1423, s5378, s9234, s13207, alu88, mult88 — in the
    paper's plotting order. *)

val find : string -> entry
(** Raises [Not_found]. *)

val names : string list

type run = {
  label : string;
  gates : int;
  loaded : Leakage_spice.Leakage_report.components;
  (** mean loading-aware totals over the sampled vectors *)
  baseline : Leakage_spice.Leakage_report.components;
  (** mean sum-of-isolated totals *)
  shift_percent : float;
  (** loading shift of the mean total, % *)
}

val estimate_all :
  ?pool:Leakage_parallel.Pool.t ->
  ?entries:entry list ->
  ?vectors:int ->
  ?seed:int ->
  Leakage_core.Library.t ->
  run array
(** Estimate every suite circuit (default {!all}) under [vectors] random
    input vectors (default 10, [seed] default 7), one result per entry in
    order. Circuits fan out across [pool] when given; each circuit draws its
    vectors from its own pre-split RNG stream, so the results are
    bit-identical at any pool size. Raises [Invalid_argument] when
    [vectors] is not positive. *)
