(** Regular structural circuits with exactly known functions: parity trees,
    decoders and multiplexer trees. Useful as verifiable workloads (the test
    suite checks them exhaustively) and as extreme-topology stress cases for
    the loading estimator — parity trees are XOR-dense, decoders are
    fanout-heavy. *)

val parity : ?width:int -> unit -> Leakage_circuit.Netlist.t
(** Balanced XOR tree computing odd parity of [width] inputs (default 16).
    One output. *)

val parity_reference : bool array -> bool

val chain : ?stages:int -> ?tap_every:int -> unit -> Leakage_circuit.Netlist.t
(** Inverter chain [stages] deep (default 1024) — the depth stress case for
    anything that walks fanout cones: a recursive walk overflows the stack
    on chains a few tens of thousands of gates deep. With [tap_every > 0]
    (default 0 = pure INV chain), every [tap_every]-th stage is instead a
    NAND2 "gateway" whose second pin is a dedicated primary input
    [tap{i}]; holding a tap at 0 (a controlling value) pins that gateway's
    output, so an all-zero pattern cuts the chain into independent
    [tap_every]-stage segments — the canonical workload for value-aware
    cone pruning. Inputs: [head], then the taps in stage order. One
    output (the last stage). *)

val chain_reference : ?tap_every:int -> stages:int -> bool array -> bool
(** Boolean function of {!chain}'s output for an input assignment ([head]
    first, then taps). *)

val decoder : ?select_bits:int -> unit -> Leakage_circuit.Netlist.t
(** [select_bits]-to-2^[select_bits] one-hot decoder (default 4): every
    output is the AND of the select literals; the select nets fan out to
    half the outputs each — a worst-case loading pattern. *)

val decoder_reference : select_bits:int -> int -> int
(** One-hot output index for a select value (identity; for test symmetry). *)

val mux_tree : ?select_bits:int -> unit -> Leakage_circuit.Netlist.t
(** 2^[select_bits]-to-1 multiplexer built from 2:1 mux cells (default 3).
    Inputs: data d0..d{2^k-1} then selects s0..s{k-1} (s0 is the least
    significant select). *)

val mux_reference : select_bits:int -> data:int -> select:int -> bool
(** Bit [select] of the [data] word. *)
