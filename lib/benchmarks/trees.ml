module B = Leakage_circuit.Netlist.Builder
module Gate = Leakage_circuit.Gate

let parity ?(width = 16) () =
  if width < 2 then invalid_arg "Trees.parity: width must be at least 2";
  let b = B.create (Printf.sprintf "parity%d" width) in
  let inputs =
    Array.init width (fun i -> B.input ~name:(Printf.sprintf "i%d" i) b)
  in
  (* balanced reduction: pair adjacent nets until one remains *)
  let rec reduce nets =
    match nets with
    | [ single ] -> single
    | _ ->
      let rec pair = function
        | x :: y :: rest -> B.gate b Gate.Xor [| x; y |] :: pair rest
        | leftovers -> leftovers
      in
      reduce (pair nets)
  in
  let out = reduce (Array.to_list inputs) in
  B.mark_output b out;
  B.finish b

let parity_reference bits = Array.fold_left ( <> ) false bits

let chain ?(stages = 1024) ?(tap_every = 0) () =
  if stages < 1 then invalid_arg "Trees.chain: stages must be positive";
  if tap_every < 0 then invalid_arg "Trees.chain: tap_every must be >= 0";
  let b = B.create (Printf.sprintf "chain%d" stages) in
  let head = B.input ~name:"head" b in
  let prev = ref head in
  for i = 0 to stages - 1 do
    let out =
      if tap_every > 0 && i mod tap_every = 0 then begin
        (* gateway stage: its dedicated tap input at 0 is a controlling
           value into the NAND, pinning the segment boundary *)
        let tap = B.input ~name:(Printf.sprintf "tap%d" (i / tap_every)) b in
        B.gate b (Gate.Nand 2) [| !prev; tap |]
      end
      else B.gate b Gate.Inv [| !prev |]
    in
    prev := out
  done;
  B.mark_output b !prev;
  B.finish b

let chain_reference ?(tap_every = 0) ~stages bits =
  if Array.length bits <> 1 + (if tap_every > 0 then (stages + tap_every - 1) / tap_every else 0)
  then invalid_arg "Trees.chain_reference: wrong input width";
  let v = ref bits.(0) in
  for i = 0 to stages - 1 do
    v :=
      if tap_every > 0 && i mod tap_every = 0 then
        not (!v && bits.(1 + (i / tap_every)))
      else not !v
  done;
  !v

let decoder ?(select_bits = 4) () =
  if select_bits < 2 || select_bits > 6 then
    invalid_arg "Trees.decoder: select_bits outside [2,6]";
  let b = B.create (Printf.sprintf "decoder%d" select_bits) in
  let selects =
    Array.init select_bits (fun i -> B.input ~name:(Printf.sprintf "s%d" i) b)
  in
  let inverted = Array.map (fun s -> B.gate b Gate.Inv [| s |]) selects in
  (* AND tree over the literals of each output (4-wide chunks) *)
  let rec and_tree nets =
    match nets with
    | [ single ] -> single
    | _ ->
      let rec chunk = function
        | a :: b' :: c :: d :: rest ->
          B.gate b (Gate.And 4) [| a; b'; c; d |] :: chunk rest
        | a :: b' :: c :: rest -> B.gate b (Gate.And 3) [| a; b'; c |] :: chunk rest
        | a :: b' :: rest -> B.gate b (Gate.And 2) [| a; b' |] :: chunk rest
        | leftovers -> leftovers
      in
      and_tree (chunk nets)
  in
  for code = 0 to (1 lsl select_bits) - 1 do
    let literals =
      List.init select_bits (fun bit ->
          if code lsr bit land 1 = 1 then selects.(bit) else inverted.(bit))
    in
    B.mark_output b (and_tree literals)
  done;
  B.finish b

let decoder_reference ~select_bits:_ code = code

let mux_tree ?(select_bits = 3) () =
  if select_bits < 1 || select_bits > 6 then
    invalid_arg "Trees.mux_tree: select_bits outside [1,6]";
  let b = B.create (Printf.sprintf "mux%d" (1 lsl select_bits)) in
  let n_data = 1 lsl select_bits in
  let data =
    Array.init n_data (fun i -> B.input ~name:(Printf.sprintf "d%d" i) b)
  in
  let selects =
    Array.init select_bits (fun i -> B.input ~name:(Printf.sprintf "s%d" i) b)
  in
  (* level l halves the candidates using select bit l *)
  let current = ref (Array.to_list data) in
  for level = 0 to select_bits - 1 do
    let rec pair = function
      | x :: y :: rest -> Adders.mux2 b ~sel:selects.(level) x y :: pair rest
      | [] -> []
      | [ _ ] -> invalid_arg "Trees.mux_tree: odd level width"
    in
    current := pair !current
  done;
  (match !current with
   | [ out ] -> B.mark_output b out
   | _ -> assert false);
  B.finish b

let mux_reference ~select_bits ~data ~select =
  let mask = (1 lsl (1 lsl select_bits)) - 1 in
  (data land mask) lsr select land 1 = 1
