(** Domain-based worker pool with deterministic, ordered fan-out.

    A pool owns a fixed set of worker domains (OCaml 5 [Domain]s) that sleep
    between parallel regions. A parallel region hands every worker — plus the
    calling domain, which always participates — a shared atomic work queue of
    item indices; items are claimed dynamically, so uneven per-item cost
    balances itself.

    Determinism is a contract of this module, not an accident: every
    combinator assigns work by {e index}, writes results into {e index-order
    slots}, and leaves any reduction to the caller (who folds the ordered
    result array). As long as the task function depends only on its index
    (give each index its own pre-split {!Leakage_numeric.Rng} stream, never a
    shared one), results are bit-identical for every pool size — including
    the implicit sequential pool when [?pool] is omitted.

    Nested parallel regions are safe: a region submitted while the pool is
    already busy (e.g. from inside a task) simply runs inline on the calling
    domain. *)

type t
(** A fixed pool of worker domains. *)

val parse_jobs : string -> int option
(** Parse a job count as [LEAKCTL_JOBS] is parsed: surrounding whitespace
    ignored, [Some n] for a positive integer, [None] for anything else
    (garbage, empty, zero, negative). *)

val clamp_jobs : int -> int
(** Clamp a job count into the supported [\[1, 128\]] range. *)

val default_jobs : unit -> int
(** Number of domains to use when the caller does not say:
    {!parse_jobs}[ LEAKCTL_JOBS] if it yields a value, otherwise
    [Domain.recommended_domain_count ()]; the result runs through
    {!clamp_jobs}. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains (the caller is the
    remaining lane). [jobs] defaults to {!default_jobs}; [jobs = 1] spawns
    nothing and every region runs inline. Raises [Invalid_argument] when
    [jobs < 1]. *)

val jobs : t -> int
(** Total parallel lanes (workers + the calling domain). *)

val busy : t -> bool
(** [true] while a parallel region is in flight. A racy, unsynchronized
    read — meant for occupancy gauges and diagnostics, never for control
    flow (the region may end the instant after the read). *)

val shutdown : t -> unit
(** Stop and join the worker domains. Idempotent. A shut-down pool is still
    safe to pass to {!run}/{!map}: with no workers left to wake, every
    region takes the inline path and runs sequentially on the caller —
    never an error. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and shuts it down afterwards,
    also on exception. *)

val run : ?pool:t -> int -> (int -> unit) -> unit
(** [run ?pool n body] evaluates [body i] once for every [i] in [\[0, n)],
    in parallel across the pool's lanes ([?pool] omitted: sequentially, in
    index order). Single-item regions ([n = 1]) run inline on the calling
    domain without waking workers. Returns when all items are done. If any
    item raises, the exception of the lowest-indexed failing item is
    re-raised after the region drains. *)

val map : ?pool:t -> int -> (int -> 'a) -> 'a array
(** [map ?pool n f] is [| f 0; f 1; ...; f (n-1) |] with the same execution
    contract as {!run}; slot [i] always holds [f i], whatever the schedule. *)

val map_array : ?pool:t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array ?pool f a] is [map ?pool (length a) (fun i -> f a.(i))]. *)

val map_chunked :
  ?pool:t -> chunk:int -> int -> (lo:int -> hi:int -> 'a) -> 'a array
(** [map_chunked ?pool ~chunk n f] splits [\[0, n)] into contiguous ranges of
    [chunk] items (the last may be short) and evaluates [f ~lo ~hi] on each,
    returning per-chunk results in range order. Chunk boundaries depend only
    on [chunk] and [n] — never on the pool size — so a caller that folds the
    result array gets one fixed reduction tree at every domain count: the
    foundation of the bit-identical parallel/sequential guarantee. Raises
    [Invalid_argument] when [chunk < 1]. *)
