(* A small fixed pool of worker domains. No external dependencies: OCaml 5's
   stdlib Domain/Mutex/Condition/Atomic are enough for the fork-join shapes
   this project needs (fan out N independent items, reduce in index order).

   Work distribution is a single shared counter claimed with fetch_and_add;
   the mutex/condition pair is only used to park idle workers between
   regions, never on the per-item path. *)

type job = {
  total : int;
  body : int -> unit;
  next : int Atomic.t; (* next unclaimed item index *)
  left : int Atomic.t; (* items not yet finished *)
  mutable error : (int * exn * Printexc.raw_backtrace) option;
      (* lowest-indexed failure, kept under the pool mutex *)
}

type t = {
  n_lanes : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable job : job option;
  mutable epoch : int; (* bumped per submitted job, wakes workers *)
  mutable stop : bool;
  mutable busy : bool; (* a region is in flight: nested runs go inline *)
  mutable domains : unit Domain.t array;
}

module Tm = Leakage_telemetry.Telemetry
module Trace = Leakage_telemetry.Trace

let m_regions = Tm.counter "pool.regions"
let m_inline = Tm.counter "pool.inline_regions"
let m_items = Tm.counter "pool.items"
let m_parks = Tm.counter "pool.parks"
let m_wakes = Tm.counter "pool.wakes"

let parse_jobs s =
  match int_of_string_opt (String.trim s) with
  | Some n when n > 0 -> Some n
  | _ -> None

let clamp_jobs n = max 1 (min 128 n)

let default_jobs () =
  let n =
    match Option.bind (Sys.getenv_opt "LEAKCTL_JOBS") parse_jobs with
    | Some n -> n
    | None -> Domain.recommended_domain_count ()
  in
  clamp_jobs n

let record_failure t job index exn bt =
  Mutex.lock t.mutex;
  (match job.error with
  | Some (i, _, _) when i <= index -> ()
  | _ -> job.error <- Some (index, exn, bt));
  Mutex.unlock t.mutex

(* Claim and run items until the job's counter is exhausted. Called from
   worker domains and from the submitting domain alike. *)
let drain t job =
  let continue = ref true in
  while !continue do
    let i = Atomic.fetch_and_add job.next 1 in
    if i >= job.total then continue := false
    else begin
      Tm.incr m_items;
      (try job.body i
       with exn ->
         let bt = Printexc.get_raw_backtrace () in
         record_failure t job i exn bt);
      if Atomic.fetch_and_add job.left (-1) = 1 then begin
        (* last item: wake the submitter *)
        Mutex.lock t.mutex;
        Condition.broadcast t.work_done;
        Mutex.unlock t.mutex
      end
    end
  done

let worker t () =
  let seen_epoch = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.mutex;
    while (not t.stop) && t.epoch = !seen_epoch do
      Tm.incr m_parks;
      Condition.wait t.work_ready t.mutex
    done;
    if t.stop then begin
      Mutex.unlock t.mutex;
      running := false
    end
    else begin
      seen_epoch := t.epoch;
      let job = t.job in
      Mutex.unlock t.mutex;
      Tm.incr m_wakes;
      match job with
      | None -> ()
      | Some job -> Trace.with_span ~cat:"pool" "drain" (fun () -> drain t job)
    end
  done

let create ?jobs () =
  let n = match jobs with Some n -> n | None -> default_jobs () in
  if n < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      n_lanes = n;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      job = None;
      epoch = 0;
      stop = false;
      busy = false;
      domains = [||];
    }
  in
  t.domains <- Array.init (n - 1) (fun _ -> Domain.spawn (worker t));
  t

let jobs t = t.n_lanes

let busy t = t.busy

let shutdown t =
  Mutex.lock t.mutex;
  let was_stopped = t.stop in
  t.stop <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  if not was_stopped then begin
    Array.iter Domain.join t.domains;
    t.domains <- [||]
  end

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let run_seq n body =
  for i = 0 to n - 1 do
    body i
  done

let run ?pool n body =
  if n <= 0 then ()
  else
    match pool with
    | None -> run_seq n body
    | Some t ->
        let inline =
          (* Single-element regions gain nothing from waking workers. A
             stopped pool has no workers left to wake: regions after
             [shutdown] always take this inline path, so running on a
             shut-down pool is raise-free by construction, not by luck. *)
          n = 1 || t.n_lanes = 1
          ||
          (Mutex.lock t.mutex;
           let taken = t.busy || t.stop in
           if not taken then t.busy <- true;
           Mutex.unlock t.mutex;
           taken)
        in
        if inline then begin
          Tm.incr m_inline;
          run_seq n body
        end
        else begin
          Tm.incr m_regions;
          Trace.with_span ~cat:"pool" "region"
            ~args:[ ("items", string_of_int n) ]
          @@ fun () ->
          let job =
            {
              total = n;
              body;
              next = Atomic.make 0;
              left = Atomic.make n;
              error = None;
            }
          in
          Mutex.lock t.mutex;
          t.job <- Some job;
          t.epoch <- t.epoch + 1;
          Condition.broadcast t.work_ready;
          Mutex.unlock t.mutex;
          (* The submitting domain is a lane too. *)
          drain t job;
          Mutex.lock t.mutex;
          while Atomic.get job.left > 0 do
            Condition.wait t.work_done t.mutex
          done;
          t.job <- None;
          t.busy <- false;
          let error = job.error in
          Mutex.unlock t.mutex;
          match error with
          | None -> ()
          | Some (_, exn, bt) -> Printexc.raise_with_backtrace exn bt
        end

let map ?pool n f =
  if n <= 0 then [||]
  else begin
    let slots = Array.make n None in
    run ?pool n (fun i -> slots.(i) <- Some (f i));
    Array.map
      (function Some v -> v | None -> assert false (* run completed all *))
      slots
  end

let map_array ?pool f a = map ?pool (Array.length a) (fun i -> f a.(i))

let map_chunked ?pool ~chunk n f =
  if chunk < 1 then invalid_arg "Pool.map_chunked: chunk must be >= 1";
  let n_chunks = (n + chunk - 1) / chunk in
  map ?pool n_chunks (fun c ->
      let lo = c * chunk in
      let hi = min n (lo + chunk) in
      f ~lo ~hi)
