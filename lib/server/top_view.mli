(** The model behind [leakctl top]: two successive telemetry snapshots in,
    rate / percentile / pressure rows out.

    Pure functions of the snapshots — the interactive renderer, the unit
    tests, and the [@obs-check] gate all share this arithmetic. Rates come
    from {!Leakage_telemetry.Telemetry.Snapshot.diff} over the snapshots'
    [taken_at] spread; per-op and per-tenant latency comes from the
    [serve.request_us{op,tenant}] family (merged across the other label
    axis), falling back to the unlabeled [serve.open_us]/[apply_us]/
    [query_us] histograms against daemons that predate labeled metrics. *)

type op_row = {
  op : string;
  count : int;  (** requests in the window *)
  rate : float;  (** requests / second *)
  p50_us : float;
  p99_us : float;
}

type tenant_row = {
  tenant : string;
  inflight : float;  (** from the [serve.tenant_inflight{tenant}] gauge *)
  quota : float;  (** [serve.quota] gauge; [0.] when unpublished *)
  window_requests : int;
}

type t = {
  interval_s : float;
  uptime_s : float;
  version : string;
  request_rate : float;
  rejected_rate : float;
  ops : op_row list;  (** busiest first *)
  tenants : tenant_row list;  (** sorted by tenant *)
  sessions_live : float;
  session_churn : (string * int) list;
      (** non-zero opened/attached/restored/evicted/closed in the window *)
  runtime : (string * float) list;  (** the [runtime.*] gauges *)
}

val make :
  uptime_s:float ->
  version:string ->
  newer:Leakage_telemetry.Telemetry.Snapshot.t ->
  older:Leakage_telemetry.Telemetry.Snapshot.t ->
  t
(** The window is [newer.taken_at - older.taken_at], floored at 1ms. *)

val pp : Format.formatter -> t -> unit
(** One full terminal frame (header, op table, tenant table, runtime
    line). *)

val fmt_rate : float -> string
val fmt_us : float -> string
val fmt_bytes : float -> string
