module Report = Leakage_spice.Leakage_report
module Tm = Leakage_telemetry.Telemetry
module Gate = Leakage_circuit.Gate
module Edit = Leakage_incremental.Edit
module Params = Leakage_device.Params

type circuit_spec =
  | Builtin of string
  | Bench of { name : string; text : string }

type edit =
  | Resize of int * float
  | Retype of int * string
  | Set_input of int * bool

type error_code =
  | Bad_request
  | Unknown_session
  | Unknown_checkpoint
  | Over_quota
  | Shutting_down
  | Internal

let retriable = function
  | Over_quota | Shutting_down -> true
  | Bad_request | Unknown_session | Unknown_checkpoint | Internal -> false

let error_code_name = function
  | Bad_request -> "bad-request"
  | Unknown_session -> "unknown-session"
  | Unknown_checkpoint -> "unknown-checkpoint"
  | Over_quota -> "over-quota"
  | Shutting_down -> "shutting-down"
  | Internal -> "internal"

type session_status = Cold | Warm | Restored

let session_status_name = function
  | Cold -> "cold"
  | Warm -> "warm"
  | Restored -> "restored"

type request =
  | Ping
  | Open_session of {
      tenant : string;
      circuit : circuit_spec;
      device : string;
      temp_c : float;
      pattern : string;
    }
  | Apply_batch of { session : int; edits : edit list }
  | Query of { session : int; refresh : bool }
  | Checkpoint of { session : int }
  | Rollback of { session : int; checkpoint : int }
  | Close of { session : int }
  | Metrics
  | Metrics_snapshot
  | Shutdown

type response =
  | Pong
  | Session_opened of {
      session : int;
      digest : string;
      status : session_status;
      gates : int;
    }
  | Applied of { session : int; edits : int; groups : int }
  | Queried of {
      session : int;
      loaded : Report.components;
      baseline : Report.components;
    }
  | Checkpointed of { session : int; checkpoint : int }
  | Rolled_back of { session : int }
  | Closed of { session : int }
  | Metrics_report of string
  | Metrics_snapshot_report of {
      uptime_s : float;
      version : string;
      snapshot : Tm.Snapshot.t;
    }
  | Shutdown_ack
  | Error of { code : error_code; message : string; retry_after_ms : float }

(* ------------------------------------------------------------- opcodes *)

(* Requests occupy [0x01, 0x7f], responses [0x80, 0xff]; the split means a
   frame's opcode alone says which direction it belongs to. *)
let op_ping = 0x01
let op_open = 0x02
let op_apply = 0x03
let op_query = 0x04
let op_checkpoint = 0x05
let op_rollback = 0x06
let op_close = 0x07
let op_metrics = 0x08
let op_shutdown = 0x09
let op_metrics_snapshot = 0x0a

let op_pong = 0x81
let op_session_opened = 0x82
let op_applied = 0x83
let op_queried = 0x84
let op_checkpointed = 0x85
let op_rolled_back = 0x86
let op_closed = 0x87
let op_metrics_report = 0x88
let op_shutdown_ack = 0x89
let op_metrics_snapshot_report = 0x8a
let op_error = 0xff

(* -------------------------------------------------------- field codecs *)

let put_circuit_spec b = function
  | Builtin label ->
    Wire.put_u8 b 0;
    Wire.put_string b label
  | Bench { name; text } ->
    Wire.put_u8 b 1;
    Wire.put_string b name;
    Wire.put_string b text

let get_circuit_spec r =
  match Wire.get_u8 r with
  | 0 -> Builtin (Wire.get_string r)
  | 1 ->
    let name = Wire.get_string r in
    let text = Wire.get_string r in
    Bench { name; text }
  | t -> raise (Wire.Bad_frame (Printf.sprintf "circuit-spec tag %d" t))

let put_edit b = function
  | Resize (gate, strength) ->
    Wire.put_u8 b 0;
    Wire.put_u32 b gate;
    Wire.put_f64 b strength
  | Retype (gate, kind) ->
    Wire.put_u8 b 1;
    Wire.put_u32 b gate;
    Wire.put_string b kind
  | Set_input (net, value) ->
    Wire.put_u8 b 2;
    Wire.put_u32 b net;
    Wire.put_bool b value

let get_edit r =
  match Wire.get_u8 r with
  | 0 ->
    let gate = Wire.get_u32 r in
    Resize (gate, Wire.get_f64 r)
  | 1 ->
    let gate = Wire.get_u32 r in
    Retype (gate, Wire.get_string r)
  | 2 ->
    let net = Wire.get_u32 r in
    Set_input (net, Wire.get_bool r)
  | t -> raise (Wire.Bad_frame (Printf.sprintf "edit tag %d" t))

let error_code_byte = function
  | Bad_request -> 0
  | Unknown_session -> 1
  | Unknown_checkpoint -> 2
  | Over_quota -> 3
  | Shutting_down -> 4
  | Internal -> 5

let error_code_of_byte = function
  | 0 -> Bad_request
  | 1 -> Unknown_session
  | 2 -> Unknown_checkpoint
  | 3 -> Over_quota
  | 4 -> Shutting_down
  | 5 -> Internal
  | b -> raise (Wire.Bad_frame (Printf.sprintf "error code %d" b))

let status_byte = function Cold -> 0 | Warm -> 1 | Restored -> 2

let status_of_byte = function
  | 0 -> Cold
  | 1 -> Warm
  | 2 -> Restored
  | b -> raise (Wire.Bad_frame (Printf.sprintf "session status %d" b))

let put_components b (c : Report.components) =
  Wire.put_f64 b c.Report.isub;
  Wire.put_f64 b c.Report.igate;
  Wire.put_f64 b c.Report.ibtbt

let get_components r =
  let isub = Wire.get_f64 r in
  let igate = Wire.get_f64 r in
  let ibtbt = Wire.get_f64 r in
  { Report.isub; igate; ibtbt }

(* Telemetry snapshots travel in full so clients (leakctl top) can diff
   and quantile them without a JSON parser. Counts ride as u64 — a
   long-lived daemon outgrows u32 counters. Buckets are sparse-encoded:
   most of the 64 power-of-two buckets of any real latency histogram are
   empty. *)

let put_list b xs put =
  Wire.put_u32 b (List.length xs);
  List.iter (put b) xs

let get_list r get = List.init (Wire.get_u32 r) (fun _ -> get r)

let put_snapshot b snap =
  Wire.put_f64 b (Tm.Snapshot.taken_at snap);
  put_list b (Tm.Snapshot.counter_entries snap) (fun b (name, total, per) ->
      Wire.put_string b name;
      Wire.put_u64 b (Int64.of_int total);
      put_list b per (fun b (d, v) ->
          Wire.put_u32 b d;
          Wire.put_u64 b (Int64.of_int v)));
  put_list b (Tm.Snapshot.gauge_entries snap) (fun b (name, v) ->
      Wire.put_string b name;
      Wire.put_f64 b v);
  put_list b (Tm.Snapshot.histogram_entries snap)
    (fun b (name, (h : Tm.Snapshot.hist)) ->
      Wire.put_string b name;
      Wire.put_u64 b (Int64.of_int h.count);
      Wire.put_f64 b h.sum;
      Wire.put_f64 b h.min;
      Wire.put_f64 b h.max;
      let nz = ref [] in
      Array.iteri (fun i n -> if n > 0 then nz := (i, n) :: !nz) h.buckets;
      put_list b (List.rev !nz) (fun b (i, n) ->
          Wire.put_u8 b i;
          Wire.put_u64 b (Int64.of_int n)));
  put_list b (Tm.Snapshot.meta_entries snap) (fun b (full, (base, labels)) ->
      Wire.put_string b full;
      Wire.put_string b base;
      put_list b labels (fun b (k, v) ->
          Wire.put_string b k;
          Wire.put_string b v))

let get_snapshot r =
  let taken_at = Wire.get_f64 r in
  let counters =
    get_list r (fun r ->
        let name = Wire.get_string r in
        let total = Int64.to_int (Wire.get_u64 r) in
        let per =
          get_list r (fun r ->
              let d = Wire.get_u32 r in
              (d, Int64.to_int (Wire.get_u64 r)))
        in
        (name, total, per))
  in
  let gauges =
    get_list r (fun r ->
        let name = Wire.get_string r in
        (name, Wire.get_f64 r))
  in
  let histograms =
    get_list r (fun r ->
        let name = Wire.get_string r in
        let count = Int64.to_int (Wire.get_u64 r) in
        let sum = Wire.get_f64 r in
        let min = Wire.get_f64 r in
        let max = Wire.get_f64 r in
        let buckets = Array.make Tm.Snapshot.n_buckets 0 in
        let nz =
          get_list r (fun r ->
              let i = Wire.get_u8 r in
              (i, Int64.to_int (Wire.get_u64 r)))
        in
        List.iter
          (fun (i, n) ->
            if i >= Tm.Snapshot.n_buckets then
              raise (Wire.Bad_frame (Printf.sprintf "bucket index %d" i));
            buckets.(i) <- n)
          nz;
        (name, { Tm.Snapshot.count; sum; min; max; buckets }))
  in
  let meta =
    get_list r (fun r ->
        let full = Wire.get_string r in
        let base = Wire.get_string r in
        let labels =
          get_list r (fun r ->
              let k = Wire.get_string r in
              (k, Wire.get_string r))
        in
        (full, (base, labels)))
  in
  Tm.Snapshot.make ~taken_at ~counters ~gauges ~histograms ~meta

(* ------------------------------------------------------------ requests *)

let frame op fill =
  let b = Buffer.create 64 in
  fill b;
  { Wire.op; payload = Buffer.contents b }

let encode_request = function
  | Ping -> frame op_ping (fun _ -> ())
  | Open_session { tenant; circuit; device; temp_c; pattern } ->
    frame op_open (fun b ->
        Wire.put_string b tenant;
        put_circuit_spec b circuit;
        Wire.put_string b device;
        Wire.put_f64 b temp_c;
        Wire.put_string b pattern)
  | Apply_batch { session; edits } ->
    frame op_apply (fun b ->
        Wire.put_u32 b session;
        Wire.put_u32 b (List.length edits);
        List.iter (put_edit b) edits)
  | Query { session; refresh } ->
    frame op_query (fun b ->
        Wire.put_u32 b session;
        Wire.put_bool b refresh)
  | Checkpoint { session } ->
    frame op_checkpoint (fun b -> Wire.put_u32 b session)
  | Rollback { session; checkpoint } ->
    frame op_rollback (fun b ->
        Wire.put_u32 b session;
        Wire.put_u32 b checkpoint)
  | Close { session } -> frame op_close (fun b -> Wire.put_u32 b session)
  | Metrics -> frame op_metrics (fun _ -> ())
  | Metrics_snapshot -> frame op_metrics_snapshot (fun _ -> ())
  | Shutdown -> frame op_shutdown (fun _ -> ())

let decode_request { Wire.op; payload } =
  let r = Wire.reader payload in
  let req =
    if op = op_ping then Ping
    else if op = op_open then begin
      let tenant = Wire.get_string r in
      let circuit = get_circuit_spec r in
      let device = Wire.get_string r in
      let temp_c = Wire.get_f64 r in
      let pattern = Wire.get_string r in
      Open_session { tenant; circuit; device; temp_c; pattern }
    end
    else if op = op_apply then begin
      let session = Wire.get_u32 r in
      let n = Wire.get_u32 r in
      let edits = List.init n (fun _ -> get_edit r) in
      Apply_batch { session; edits }
    end
    else if op = op_query then begin
      let session = Wire.get_u32 r in
      Query { session; refresh = Wire.get_bool r }
    end
    else if op = op_checkpoint then Checkpoint { session = Wire.get_u32 r }
    else if op = op_rollback then begin
      let session = Wire.get_u32 r in
      Rollback { session; checkpoint = Wire.get_u32 r }
    end
    else if op = op_close then Close { session = Wire.get_u32 r }
    else if op = op_metrics then Metrics
    else if op = op_metrics_snapshot then Metrics_snapshot
    else if op = op_shutdown then Shutdown
    else raise (Wire.Bad_frame (Printf.sprintf "request opcode 0x%02x" op))
  in
  Wire.expect_end r;
  req

(* ----------------------------------------------------------- responses *)

let encode_response = function
  | Pong -> frame op_pong (fun _ -> ())
  | Session_opened { session; digest; status; gates } ->
    frame op_session_opened (fun b ->
        Wire.put_u32 b session;
        Wire.put_string b digest;
        Wire.put_u8 b (status_byte status);
        Wire.put_u32 b gates)
  | Applied { session; edits; groups } ->
    frame op_applied (fun b ->
        Wire.put_u32 b session;
        Wire.put_u32 b edits;
        Wire.put_u32 b groups)
  | Queried { session; loaded; baseline } ->
    frame op_queried (fun b ->
        Wire.put_u32 b session;
        put_components b loaded;
        put_components b baseline)
  | Checkpointed { session; checkpoint } ->
    frame op_checkpointed (fun b ->
        Wire.put_u32 b session;
        Wire.put_u32 b checkpoint)
  | Rolled_back { session } ->
    frame op_rolled_back (fun b -> Wire.put_u32 b session)
  | Closed { session } -> frame op_closed (fun b -> Wire.put_u32 b session)
  | Metrics_report json -> frame op_metrics_report (fun b -> Wire.put_string b json)
  | Metrics_snapshot_report { uptime_s; version; snapshot } ->
    frame op_metrics_snapshot_report (fun b ->
        Wire.put_f64 b uptime_s;
        Wire.put_string b version;
        put_snapshot b snapshot)
  | Shutdown_ack -> frame op_shutdown_ack (fun _ -> ())
  | Error { code; message; retry_after_ms } ->
    frame op_error (fun b ->
        Wire.put_u8 b (error_code_byte code);
        Wire.put_bool b (retriable code);
        Wire.put_string b message;
        (* retry-after hint (milliseconds, 0 = none): admission control
           tells a backing-off client when its token bucket refills *)
        Wire.put_f64 b retry_after_ms)

let decode_response { Wire.op; payload } =
  let r = Wire.reader payload in
  let resp =
    if op = op_pong then Pong
    else if op = op_session_opened then begin
      let session = Wire.get_u32 r in
      let digest = Wire.get_string r in
      let status = status_of_byte (Wire.get_u8 r) in
      let gates = Wire.get_u32 r in
      Session_opened { session; digest; status; gates }
    end
    else if op = op_applied then begin
      let session = Wire.get_u32 r in
      let edits = Wire.get_u32 r in
      let groups = Wire.get_u32 r in
      Applied { session; edits; groups }
    end
    else if op = op_queried then begin
      let session = Wire.get_u32 r in
      let loaded = get_components r in
      let baseline = get_components r in
      Queried { session; loaded; baseline }
    end
    else if op = op_checkpointed then begin
      let session = Wire.get_u32 r in
      Checkpointed { session; checkpoint = Wire.get_u32 r }
    end
    else if op = op_rolled_back then Rolled_back { session = Wire.get_u32 r }
    else if op = op_closed then Closed { session = Wire.get_u32 r }
    else if op = op_metrics_report then Metrics_report (Wire.get_string r)
    else if op = op_metrics_snapshot_report then begin
      let uptime_s = Wire.get_f64 r in
      let version = Wire.get_string r in
      let snapshot = get_snapshot r in
      Metrics_snapshot_report { uptime_s; version; snapshot }
    end
    else if op = op_shutdown_ack then Shutdown_ack
    else if op = op_error then begin
      let code = error_code_of_byte (Wire.get_u8 r) in
      (* the explicit retriable bit lets clients on older code classify
         codes they do not know; decoders here re-derive it from the code *)
      let (_ : bool) = Wire.get_bool r in
      let message = Wire.get_string r in
      (* the retry-after field is absent in frames from older servers *)
      let retry_after_ms = if Wire.at_end r then 0.0 else Wire.get_f64 r in
      Error { code; message; retry_after_ms }
    end
    else raise (Wire.Bad_frame (Printf.sprintf "response opcode 0x%02x" op))
  in
  Wire.expect_end r;
  resp

(* -------------------------------------------------------------- bridge *)

let edit_to_incremental = function
  | Resize (gate, strength) -> Edit.Resize (gate, strength)
  | Retype (gate, kind) -> Edit.Retype (gate, Gate.of_name kind)
  | Set_input (net, value) -> Edit.Set_input (net, value)

let device_of_name name =
  match String.lowercase_ascii name with
  | "d25" -> Some Params.d25
  | "d50" -> Some Params.d50
  | "d25-s" | "d25s" -> Some Params.d25_s
  | "d25-g" | "d25g" -> Some Params.d25_g
  | "d25-jn" | "d25jn" -> Some Params.d25_jn
  | _ -> None

let request_name = function
  | Ping -> "ping"
  | Open_session _ -> "open"
  | Apply_batch _ -> "apply"
  | Query _ -> "query"
  | Checkpoint _ -> "checkpoint"
  | Rollback _ -> "rollback"
  | Close _ -> "close"
  | Metrics -> "metrics"
  | Metrics_snapshot -> "metrics-snapshot"
  | Shutdown -> "shutdown"

let pp_request ppf = function
  | Ping -> Format.fprintf ppf "ping"
  | Open_session { tenant; circuit; device; temp_c; _ } ->
    let label =
      match circuit with Builtin l -> l | Bench { name; _ } -> name ^ ".bench"
    in
    Format.fprintf ppf "open %s %s@@%gC tenant=%s" label device temp_c tenant
  | Apply_batch { session; edits } ->
    Format.fprintf ppf "apply session=%d edits=%d" session (List.length edits)
  | Query { session; refresh } ->
    Format.fprintf ppf "query session=%d refresh=%b" session refresh
  | Checkpoint { session } -> Format.fprintf ppf "checkpoint session=%d" session
  | Rollback { session; checkpoint } ->
    Format.fprintf ppf "rollback session=%d to=%d" session checkpoint
  | Close { session } -> Format.fprintf ppf "close session=%d" session
  | Metrics -> Format.fprintf ppf "metrics"
  | Metrics_snapshot -> Format.fprintf ppf "metrics-snapshot"
  | Shutdown -> Format.fprintf ppf "shutdown"
