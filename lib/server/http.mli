(** Minimal read-only HTTP/1.1 responder — the daemon's observability
    sidecar speaks it on the [--http-port] listener so Prometheus (or
    plain [curl]) can scrape [/metrics] and probe [/healthz] without the
    binary protocol.

    Scope is deliberately small: GET only (anything else answers [405]),
    one request per connection ([Connection: close]), no bodies read, no
    TLS, stdlib+unix only. Header blocks are capped at 16 KiB. *)

type response = {
  status : int;
  content_type : string;
  body : string;
}

val response : ?content_type:string -> int -> string -> response
(** [content_type] defaults to [text/plain; charset=utf-8]. *)

val write_all : Unix.file_descr -> string -> unit
(** Write the whole string: loops over short writes, retries [EINTR], and
    waits for writability on a zero-length return — a response body either
    goes out in full or the call raises. Exposed for the truncation
    regression tests. *)

val handle : Unix.file_descr -> (string -> response option) -> unit
(** [handle fd route] serves one request on a connected socket and closes
    it: parse the request line, answer [route path] (query strings are
    stripped; [None] answers [404]), [405] for non-GET, [400] for
    garbage. Never raises — network errors just drop the connection. *)
