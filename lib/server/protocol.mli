(** Typed requests and responses of the [leakctl serve] protocol, and their
    binary codecs over {!Wire} frames.

    The protocol is strictly request/response: a client writes one request
    frame and reads exactly one response frame. Every request either
    succeeds with its typed response or fails with an {!constructor-Error}
    frame carrying a structured {!error_code}; {!retriable} tells a client
    whether backing off and retrying can help (admission-control rejections,
    a draining server) or whether the request itself is at fault.

    Netlists travel as a {!circuit_spec} — a built-in benchmark name or
    inline ISCAS89 [.bench] text; the server derives the session key from
    {!Leakage_circuit.Netlist.digest}, never from the spec, so two clients
    sending the same circuit through different routes share one warm
    session. Edits travel as plain {!edit}s (gate kinds by cell name);
    [Relib] edits are not expressible on the wire — corners are fixed per
    session at [open]. *)

type circuit_spec =
  | Builtin of string  (** a [Leakage_benchmarks.Suite] circuit label *)
  | Bench of { name : string; text : string }  (** inline [.bench] source *)

type edit =
  | Resize of int * float
  | Retype of int * string  (** cell name as {!Leakage_circuit.Gate.of_name} *)
  | Set_input of int * bool

type error_code =
  | Bad_request      (** malformed frame/payload, unknown circuit or edit *)
  | Unknown_session  (** no live session with that id *)
  | Unknown_checkpoint
  | Over_quota       (** tenant's in-flight budget exhausted — retry later *)
  | Shutting_down    (** server is draining — retry against a new server *)
  | Internal

val retriable : error_code -> bool
val error_code_name : error_code -> string

type session_status =
  | Cold      (** built and estimated from scratch *)
  | Warm      (** attached to a live session with the same digest/corner *)
  | Restored  (** rebuilt from the registry's on-disk checkpoint *)

val session_status_name : session_status -> string

type request =
  | Ping
  | Open_session of {
      tenant : string;
      circuit : circuit_spec;
      device : string;   (** corner name: d25, d50, d25-s, d25-g, d25-jn *)
      temp_c : float;
      pattern : string;
          (** primary-input bits, [""] = all zeros on a cold open / keep the
              current vector on a warm attach *)
    }
  | Apply_batch of { session : int; edits : edit list }
  | Query of {
      session : int;
      refresh : bool;
          (** re-sum everything from current state first; makes the reply a
              function of session {e state} alone, independent of the edit
              history's float associations *)
    }
  | Checkpoint of { session : int }
  | Rollback of { session : int; checkpoint : int }
  | Close of { session : int }
  | Metrics
  | Metrics_snapshot
      (** the full typed snapshot plus uptime/version — what [leakctl top]
          polls; [Metrics] stays the JSON form *)
  | Shutdown

type response =
  | Pong
  | Session_opened of {
      session : int;
      digest : string;
      status : session_status;
      gates : int;
    }
  | Applied of { session : int; edits : int; groups : int }
  | Queried of {
      session : int;
      loaded : Leakage_spice.Leakage_report.components;
      baseline : Leakage_spice.Leakage_report.components;
    }
  | Checkpointed of { session : int; checkpoint : int }
  | Rolled_back of { session : int }
  | Closed of { session : int }
  | Metrics_report of string  (** {!Leakage_telemetry.Telemetry.Snapshot} JSON *)
  | Metrics_snapshot_report of {
      uptime_s : float;
      version : string;
      snapshot : Leakage_telemetry.Telemetry.Snapshot.t;
    }
  | Shutdown_ack
  | Error of {
      code : error_code;
      message : string;
      retry_after_ms : float;
          (** backoff hint for retriable errors — how long until the
              tenant's token bucket holds a token again ([0] = no hint).
              Advisory: a client may retry sooner and be rejected again. *)
    }

val encode_request : request -> Wire.frame
val decode_request : Wire.frame -> request
(** Raises {!Wire.Bad_frame} / {!Wire.Truncated} on malformed input,
    including unknown opcodes and undecoded trailing payload bytes. *)

val encode_response : response -> Wire.frame
val decode_response : Wire.frame -> response

val edit_to_incremental : edit -> Leakage_incremental.Edit.t
(** Raises [Invalid_argument] on an unknown cell name. *)

val device_of_name : string -> Leakage_device.Params.t option
(** The corner names [Open_session.device] accepts. *)

val request_name : request -> string
(** Short op label ([ping], [open], [apply], ...) — the [op] label of the
    per-request metric families and log lines. *)

val pp_request : Format.formatter -> request -> unit
(** One-line summary (op name and key fields), for logs. *)
