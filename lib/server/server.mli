(** The [leakctl serve] daemon: estimation-as-a-service on a Unix-domain
    socket (and optionally a loopback TCP port).

    One daemon owns one {!Registry} of warm sessions, one {!Scheduler} of
    executor domains, and one shared {!Leakage_parallel.Pool} for intra-batch
    cone groups. Connections are handled by lightweight reader threads: each
    reads one {!Wire} frame, decodes the {!Protocol} request, and either
    answers inline (ping, metrics) or routes the job through the scheduler
    and waits for its reply. Per-request latency lands in the
    [serve.open_us] / [serve.apply_us] / [serve.query_us] histograms and the
    labeled [serve.request_us{op,tenant}] family; the [metrics] op returns
    the JSON snapshot [leakctl --metrics-json] writes plus an uptime/version
    [meta] block, and [metrics-snapshot] the full typed snapshot.

    Every request gets a daemon-unique request id ([c<conn>-<seq>]) that
    tags its structured log lines ({!Leakage_telemetry.Log}), its executor
    spans, and — above [slow_us] — a [request.slow] event. The optional
    HTTP sidecar serves [GET /metrics] (Prometheus exposition) and
    [GET /healthz] (drain state); a runtime sampler publishes GC / RSS /
    fd / pool / session gauges while the daemon runs. All of it observes
    and never steers: with telemetry on or off, wire replies are
    bit-identical ([@obs-check] enforces this).

    Shutdown is graceful by construction: {!request_stop} (safe to call from
    a signal handler — it only flips an atomic and writes one byte to a
    self-pipe) makes {!run} stop accepting, answer new work with a retriable
    [Shutting_down] error, drain every queued job, flush all session
    checkpoints to disk, close the sockets and shut the pool down before
    returning. *)

type t

val create :
  ?port:int ->
  ?http_port:int ->
  ?executors:int ->
  ?jobs:int ->
  ?quota:int ->
  ?max_sessions:int ->
  ?state_dir:string ->
  ?peer_dir:string ->
  ?tenant_rate:float ->
  ?tenant_burst:float ->
  ?version:string ->
  ?slow_us:float ->
  ?sample_interval:float ->
  socket:string ->
  unit ->
  t
(** Bind the listeners and spin up the scheduler and pool — but accept
    nothing until {!run}. [jobs] sizes the shared pool
    ({!Leakage_parallel.Pool.default_jobs} when omitted; [1] means no
    worker domains), [executors] the scheduler (default 2), [quota] the
    per-tenant in-flight cap (default 8), [max_sessions] the registry's
    live-session cap (default 8). Raises [Unix.Unix_error] when the socket
    cannot be bound.

    [peer_dir] is a directory shared with other daemons: checkpoints are
    mirrored into it after every applied batch, and an open that misses the
    local state adopts the newest matching peer checkpoint — see
    {!Registry.create} for the failover semantics.

    [tenant_rate] turns per-tenant token-bucket admission on: each tenant
    sustains [tenant_rate] requests/second with bursts up to [tenant_burst]
    (default [max 1 rate]). Rejections answer with a retriable [Over_quota]
    error carrying a retry-after hint in milliseconds, and the select loop
    ticks every 250ms to refill buckets and publish per-tenant
    [serve.tenant_tokens{tenant}] gauges. Without [tenant_rate], only the
    in-flight [quota] gates admission and the loop blocks until work
    arrives, exactly as before.

    [http_port] additionally binds the read-only observability sidecar on
    loopback ([0] picks an ephemeral port — read it back with
    {!http_port}): [GET /metrics] answers the Prometheus exposition of a
    live snapshot, [GET /healthz] a JSON health probe that turns [503
    draining] the moment shutdown starts. [version] is echoed in metrics
    replies and [/healthz] (default ["dev"]). Requests slower than
    [slow_us] microseconds log a [request.slow] event (default [infinity]
    — off). [sample_interval] paces the runtime-vitals sampler started by
    {!run} when telemetry is enabled (default 1s). *)

val http_port : t -> int option
(** The sidecar's bound port ([None] without [http_port]); resolves an
    ephemeral bind. *)

val uptime_s : t -> float
(** Seconds since {!create}. *)

val run : t -> unit
(** Accept and serve until {!request_stop}; performs the graceful shutdown
    sequence before returning. Call at most once. *)

val request_stop : t -> unit
(** Ask {!run} to shut down gracefully. Async-signal-safe and idempotent. *)

val running : t -> bool
(** [true] between {!run} starting to accept and the shutdown completing —
    what a test harness polls instead of sleeping. *)
