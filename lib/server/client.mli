(** Blocking client for the [leakctl serve] protocol, with a
    fault-tolerance policy layer.

    One {!t} wraps one connected socket (plus the endpoint list to fall
    back on) and performs strict request/response round-trips; it is not
    thread-safe — use one client per thread.

    {2 Poisoning}

    The protocol is a strict request/reply stream with no framing
    recovery: once a reply is half-read (timeout, truncation, undecodable
    frame) the stream position is unknown, and a second request could read
    the first request's late reply as its own answer. So any wire-level
    failure {e poisons} the connection — with no retry budget every later
    call raises {!Poisoned} instead of silently desynchronizing; with
    retries configured the client reconnects on a fresh socket instead of
    reusing the broken one.

    {2 Retry policy}

    A {!policy} gives the client a retry budget. Transport failures
    (connect refused, timeout, server gone mid-reply) back off
    exponentially with jitter and reconnect — cycling through the endpoint
    list, so a client pointed at two daemons sharing a [--peer-dir] rides
    over a kill of either. Retriable error replies ([Over_quota],
    [Shutting_down]) sleep for [max backoff hint] using the server's
    retry-after hint, then resend. Non-retriable errors raise immediately.

    The default policy has [retries = 0]: plain strict behavior, every
    failure surfaces (plus poisoning). *)

exception Server_error of Protocol.error_code * string
(** The server answered with an [Error] frame.
    [Protocol.retriable] classifies the code. The connection is fine. *)

exception Poisoned of string
(** Raised by {!rpc} when the connection was poisoned by an earlier wire
    failure and there is no retry budget to reconnect with. The message
    says what broke the stream. *)

type endpoint = Unix_path of string | Tcp of string * int

val endpoint_name : endpoint -> string

type policy = {
  retries : int;  (** extra attempts after the first (0 = strict) *)
  backoff_ms : float;  (** first backoff; doubles per attempt *)
  max_backoff_ms : float;  (** backoff cap *)
  timeout_ms : float option;  (** per-RPC reply deadline; [None] = wait *)
  jitter : float;  (** +/- fraction of the backoff, e.g. 0.25 *)
}

val default_policy : policy
(** [{ retries = 0; backoff_ms = 25.0; max_backoff_ms = 1000.0;
      timeout_ms = None; jitter = 0.25 }] *)

type stats = {
  retries : int;  (** attempts beyond the first, all causes *)
  reconnects : int;  (** successful re-connects after the first connect *)
  over_quota_waits : int;  (** backoffs honoring an [Over_quota] reply *)
  timeouts : int;  (** RPCs that hit the reply deadline *)
}

type t

val connect : ?policy:policy -> ?seed:int -> endpoint list -> t
(** Connect to the first endpoint (of one or more) that answers, retrying
    per [policy]. [seed] makes the backoff jitter deterministic (for
    reproducible benches); reconnects start from the endpoint that last
    worked. Raises the last connect error ([Unix.Unix_error], or [Failure]
    for an unresolvable host) when every endpoint refuses through the
    whole retry budget. *)

val connect_unix : ?policy:policy -> string -> t
(** Connect to a Unix-domain socket path. Raises [Unix.Unix_error]. *)

val connect_tcp : ?policy:policy -> ?host:string -> int -> t
(** Connect to a TCP port ([host] defaults to ["127.0.0.1"]). The host is
    resolved with [getaddrinfo], so names like ["localhost"] work; an
    unresolvable host raises [Failure], not a raw socket error. *)

val close : t -> unit
(** Close the connection (idempotent). Live server sessions survive — they
    belong to the registry, not the connection. *)

val policy : t -> policy
val stats : t -> stats

val current_endpoint : t -> endpoint option
(** The endpoint of the live connection ([None] when disconnected or
    poisoned) — what a fault-injection harness kills to force a failover. *)

val rpc : t -> Protocol.request -> Protocol.response
(** One request/reply exchange under the policy (see the module preamble).
    Raises {!Poisoned} on a poisoned zero-retry client;
    {!Wire.Timeout} / {!Wire.Truncated} / {!Wire.Bad_frame} /
    [End_of_file] / [Unix.Unix_error] when the transport fails beyond the
    retry budget. Does NOT turn [Error] frames into exceptions (beyond
    retrying retriable ones) — the typed helpers below do. *)

type opened = {
  session : int;
  digest : string;
  status : Protocol.session_status;
  gates : int;
}

val ping : t -> unit

val open_session :
  t ->
  ?tenant:string ->
  ?device:string ->
  ?temp_c:float ->
  ?pattern:string ->
  circuit:Protocol.circuit_spec ->
  unit ->
  opened
(** Defaults: [tenant "anon"], [device "d25"], [temp_c 25.0],
    [pattern ""]. *)

val apply_batch : t -> session:int -> Protocol.edit list -> int
(** Returns the number of cone groups the batch partitioned into. *)

val query :
  t ->
  session:int ->
  ?refresh:bool ->
  unit ->
  Leakage_spice.Leakage_report.components
  * Leakage_spice.Leakage_report.components
(** [(loaded, baseline)] totals; [refresh] defaults to [false]. *)

val checkpoint : t -> session:int -> int
(** Returns the new checkpoint id. *)

val rollback : t -> session:int -> checkpoint:int -> unit
val close_session : t -> session:int -> unit

val metrics : t -> string
(** The server's {!Leakage_telemetry.Telemetry.Snapshot} as JSON (with an
    uptime/version [meta] block). *)

type snapshot_report = {
  uptime_s : float;
  version : string;
  snapshot : Leakage_telemetry.Telemetry.Snapshot.t;
}

val metrics_snapshot : t -> snapshot_report
(** The full typed snapshot — what [leakctl top] diffs between polls. *)

val shutdown_server : t -> unit
(** Ask the server to drain and exit; returns once it acknowledges. *)

(** {2 Failover sessions}

    A {!Failover.session} remembers how it was opened (tenant, circuit
    spec, corner), so a dead daemon is survivable: when a session-scoped
    op fails with [Unknown_session] — the id died with the daemon — or
    with a transport error that outlived the rpc layer's own retries, the
    wrapper re-opens the same digest (landing on whichever endpoint
    answers, warm from a shipped checkpoint when the daemons share a
    [--peer-dir]) and replays the op against the new id.

    Replay is safe because every protocol edit {e sets} absolute state
    (resize to [s], retype to [k], set input [i] to [v]) — re-applying a
    batch the dead daemon already checkpointed converges to the same
    state. *)

module Failover : sig
  type session

  val open_session :
    t ->
    ?tenant:string ->
    ?device:string ->
    ?temp_c:float ->
    ?pattern:string ->
    circuit:Protocol.circuit_spec ->
    unit ->
    session

  val session_id : session -> int
  (** The current wire session id (changes across re-opens). *)

  val status : session -> Protocol.session_status
  (** Status of the most recent (re-)open. *)

  val reopens : session -> int
  (** Times the wrapper had to re-open — failovers survived. *)

  val client : session -> t

  val apply : session -> Protocol.edit list -> int

  val query :
    session ->
    ?refresh:bool ->
    unit ->
    Leakage_spice.Leakage_report.components
    * Leakage_spice.Leakage_report.components

  val close_session : session -> unit
end
