(** Blocking client for the [leakctl serve] protocol.

    One {!t} wraps one connected socket and performs strict
    request/response round-trips; it is not thread-safe — use one client
    per thread (the server is happy to hold many connections).

    The typed helpers unwrap their expected response and raise
    {!Server_error} on an [Error] frame, so calling code reads like the
    straight-line session it is:

    {[
      let c = Client.connect_unix "/tmp/leak.sock" in
      let s = Client.open_session c ~circuit:(Builtin "s838") () in
      Client.apply_batch c ~session:s.session [ Resize (0, 2.0) ];
      let q = Client.query c ~session:s.session () in
      ...
    ]} *)

exception Server_error of Protocol.error_code * string
(** The server answered with an [Error] frame.
    [Protocol.retriable] classifies the code. *)

type t

val connect_unix : string -> t
(** Connect to a Unix-domain socket path. Raises [Unix.Unix_error]. *)

val connect_tcp : ?host:string -> int -> t
(** Connect to a TCP port ([host] defaults to ["127.0.0.1"]). *)

val close : t -> unit
(** Close the connection (idempotent). Live server sessions survive — they
    belong to the registry, not the connection. *)

val rpc : t -> Protocol.request -> Protocol.response
(** One raw round-trip. Raises {!Wire.Truncated} / [End_of_file] when the
    server hangs up mid-reply. Does NOT turn [Error] frames into
    exceptions — the typed helpers below do. *)

type opened = {
  session : int;
  digest : string;
  status : Protocol.session_status;
  gates : int;
}

val ping : t -> unit

val open_session :
  t ->
  ?tenant:string ->
  ?device:string ->
  ?temp_c:float ->
  ?pattern:string ->
  circuit:Protocol.circuit_spec ->
  unit ->
  opened
(** Defaults: [tenant "anon"], [device "d25"], [temp_c 25.0],
    [pattern ""]. *)

val apply_batch : t -> session:int -> Protocol.edit list -> int
(** Returns the number of cone groups the batch partitioned into. *)

val query :
  t ->
  session:int ->
  ?refresh:bool ->
  unit ->
  Leakage_spice.Leakage_report.components
  * Leakage_spice.Leakage_report.components
(** [(loaded, baseline)] totals; [refresh] defaults to [false]. *)

val checkpoint : t -> session:int -> int
(** Returns the new checkpoint id. *)

val rollback : t -> session:int -> checkpoint:int -> unit
val close_session : t -> session:int -> unit

val metrics : t -> string
(** The server's {!Leakage_telemetry.Telemetry.Snapshot} as JSON (with an
    uptime/version [meta] block). *)

type snapshot_report = {
  uptime_s : float;
  version : string;
  snapshot : Leakage_telemetry.Telemetry.Snapshot.t;
}

val metrics_snapshot : t -> snapshot_report
(** The full typed snapshot — what [leakctl top] diffs between polls. *)

val shutdown_server : t -> unit
(** Ask the server to drain and exit; returns once it acknowledges. *)
