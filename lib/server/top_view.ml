(* The model behind [leakctl top]: turn two successive telemetry snapshots
   into rate / percentile / pressure rows. Pure — no sockets, no clocks —
   so the renderer, the tests, and the obs CI gate all exercise the same
   arithmetic. *)

module Tm = Leakage_telemetry.Telemetry

type op_row = {
  op : string;
  count : int; (* requests in the window *)
  rate : float; (* requests / second *)
  p50_us : float;
  p99_us : float;
}

type tenant_row = {
  tenant : string;
  inflight : float;
  quota : float; (* 0 when the daemon did not publish one *)
  window_requests : int;
}

type t = {
  interval_s : float;
  uptime_s : float;
  version : string;
  request_rate : float;
  rejected_rate : float;
  ops : op_row list;
  tenants : tenant_row list;
  sessions_live : float;
  session_churn : (string * int) list; (* opened/attached/... in window *)
  runtime : (string * float) list; (* runtime.* gauges *)
}

(* merge the hist deltas of every serve.request_us{op=...} member with the
   given op label, whatever other labels ride along *)
let merged_hists diff ~base ~group_label =
  let groups = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (name, (h : Tm.Snapshot.hist)) ->
      let b, labels = Tm.Snapshot.base_and_labels diff name in
      if b = base then
        match List.assoc_opt group_label labels with
        | None -> ()
        | Some key ->
          let acc =
            match Hashtbl.find_opt groups key with
            | Some acc -> acc
            | None ->
              order := key :: !order;
              let acc =
                {
                  Tm.Snapshot.count = 0;
                  sum = 0.0;
                  min = infinity;
                  max = neg_infinity;
                  buckets = Array.make Tm.Snapshot.n_buckets 0;
                }
              in
              Hashtbl.replace groups key acc;
              acc
          in
          let merged =
            {
              Tm.Snapshot.count = acc.count + h.count;
              sum = acc.sum +. h.sum;
              min = Float.min acc.min h.min;
              max = Float.max acc.max h.max;
              buckets = Array.mapi (fun i n -> n + h.buckets.(i)) acc.buckets;
            }
          in
          Hashtbl.replace groups key merged)
    (Tm.Snapshot.histogram_entries diff);
  List.rev_map (fun key -> (key, Hashtbl.find groups key)) !order

let op_rows diff interval =
  let labeled = merged_hists diff ~base:"serve.request_us" ~group_label:"op" in
  let source =
    if labeled <> [] then labeled
    else
      (* daemon predates labeled families: fall back to the unlabeled
         per-op histograms *)
      List.filter_map
        (fun (name, op) ->
          Option.map (fun h -> (op, h)) (Tm.Snapshot.histogram_stats diff name))
        [
          ("serve.open_us", "open");
          ("serve.apply_us", "apply");
          ("serve.query_us", "query");
        ]
  in
  List.filter_map
    (fun (op, (h : Tm.Snapshot.hist)) ->
      if h.count = 0 then None
      else
        Some
          {
            op;
            count = h.count;
            rate = float_of_int h.count /. interval;
            p50_us = Tm.Snapshot.quantile h 0.5;
            p99_us = Tm.Snapshot.quantile h 0.99;
          })
    source
  |> List.sort (fun a b -> compare (b.count, a.op) (a.count, b.op))

let tenant_rows snap diff =
  let quota = Tm.Snapshot.gauge_value snap "serve.quota" in
  let inflight =
    List.filter_map
      (fun (name, v) ->
        let base, labels = Tm.Snapshot.base_and_labels snap name in
        if base = "serve.tenant_inflight" then
          Option.map (fun t -> (t, v)) (List.assoc_opt "tenant" labels)
        else None)
      (Tm.Snapshot.gauge_entries snap)
  in
  let window =
    merged_hists diff ~base:"serve.request_us" ~group_label:"tenant"
  in
  let tenants =
    List.sort_uniq compare
      (List.map fst inflight @ List.map fst window)
  in
  List.map
    (fun tenant ->
      {
        tenant;
        inflight = Option.value ~default:0.0 (List.assoc_opt tenant inflight);
        quota;
        window_requests =
          (match List.assoc_opt tenant window with
           | Some (h : Tm.Snapshot.hist) -> h.count
           | None -> 0);
      })
    tenants

let churn_counters =
  [
    ("opened", "serve.sessions_opened");
    ("attached", "serve.sessions_attached");
    ("restored", "serve.sessions_restored");
    ("evicted", "serve.sessions_evicted");
    ("closed", "serve.sessions_closed");
  ]

let make ~uptime_s ~version ~newer ~older =
  let interval =
    Float.max 1e-3 (Tm.Snapshot.taken_at newer -. Tm.Snapshot.taken_at older)
  in
  let diff = Tm.Snapshot.diff ~newer ~older in
  let rate name = float_of_int (Tm.Snapshot.counter_total diff name) /. interval in
  {
    interval_s = interval;
    uptime_s;
    version;
    request_rate = rate "serve.requests";
    rejected_rate = rate "serve.rejected";
    ops = op_rows diff interval;
    tenants = tenant_rows newer diff;
    sessions_live = Tm.Snapshot.gauge_value newer "serve.sessions_live";
    session_churn =
      List.filter_map
        (fun (label, name) ->
          match Tm.Snapshot.counter_total diff name with
          | 0 -> None
          | n -> Some (label, n))
        churn_counters;
    runtime =
      List.filter
        (fun (name, _) ->
          String.length name >= 8 && String.sub name 0 8 = "runtime.")
        (Tm.Snapshot.gauge_entries newer);
  }

(* ------------------------------------------------------------ rendering *)

let fmt_rate r =
  if r >= 100.0 then Printf.sprintf "%.0f/s" r
  else if r >= 1.0 then Printf.sprintf "%.1f/s" r
  else Printf.sprintf "%.2f/s" r

let fmt_us us =
  if us >= 1e6 then Printf.sprintf "%.2fs" (us /. 1e6)
  else if us >= 1e3 then Printf.sprintf "%.1fms" (us /. 1e3)
  else Printf.sprintf "%.0fus" us

let fmt_bytes b =
  if b >= 1073741824.0 then Printf.sprintf "%.2fGiB" (b /. 1073741824.0)
  else if b >= 1048576.0 then Printf.sprintf "%.1fMiB" (b /. 1048576.0)
  else if b >= 1024.0 then Printf.sprintf "%.0fKiB" (b /. 1024.0)
  else Printf.sprintf "%.0fB" b

let pp ppf t =
  Format.fprintf ppf "leakctl top — daemon %s, up %.0fs, window %.1fs@."
    t.version t.uptime_s t.interval_s;
  Format.fprintf ppf "requests %s  rejected %s  sessions live %.0f"
    (fmt_rate t.request_rate) (fmt_rate t.rejected_rate) t.sessions_live;
  if t.session_churn <> [] then
    Format.fprintf ppf "  churn [%s]"
      (String.concat ", "
         (List.map (fun (l, n) -> Printf.sprintf "%s %d" l n) t.session_churn));
  Format.fprintf ppf "@.@.";
  (match t.ops with
   | [] -> Format.fprintf ppf "  (no requests in this window)@."
   | ops ->
     Format.fprintf ppf "  %-18s %8s %10s %10s %10s@." "OP" "COUNT" "RATE"
       "P50" "P99";
     List.iter
       (fun r ->
         Format.fprintf ppf "  %-18s %8d %10s %10s %10s@." r.op r.count
           (fmt_rate r.rate) (fmt_us r.p50_us) (fmt_us r.p99_us))
       ops);
  (match t.tenants with
   | [] -> ()
   | tenants ->
     Format.fprintf ppf "@.  %-18s %10s %10s %10s@." "TENANT" "INFLIGHT"
       "QUOTA" "REQS";
     List.iter
       (fun r ->
         Format.fprintf ppf "  %-18s %10.0f %10s %10d@." r.tenant r.inflight
           (if r.quota > 0.0 then Printf.sprintf "%.0f" r.quota else "-")
           r.window_requests)
       tenants);
  if t.runtime <> [] then begin
    Format.fprintf ppf "@.  runtime:";
    List.iter
      (fun (name, v) ->
        let short =
          String.sub name 8 (String.length name - 8)
        in
        let shown =
          if short = "rss_bytes" then fmt_bytes v
          else if Float.is_integer v && Float.abs v < 1e15 then
            Printf.sprintf "%.0f" v
          else Printf.sprintf "%.3g" v
        in
        Format.fprintf ppf " %s=%s" short shown)
      t.runtime;
    Format.fprintf ppf "@."
  end
