exception Server_error of Protocol.error_code * string

type t = { fd : Unix.file_descr; mutable connected : bool }

let connect sockaddr domain =
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd sockaddr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; connected = true }

let connect_unix path = connect (Unix.ADDR_UNIX path) Unix.PF_UNIX

let connect_tcp ?(host = "127.0.0.1") port =
  connect
    (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
    Unix.PF_INET

let close t =
  if t.connected then begin
    t.connected <- false;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let rpc t req =
  if not t.connected then invalid_arg "Client.rpc: closed";
  Wire.write_frame t.fd (Protocol.encode_request req);
  Protocol.decode_response (Wire.read_frame t.fd)

(* unwrap an Error frame into an exception; anything else falls through *)
let ok t req k =
  match rpc t req with
  | Protocol.Error { code; message } -> raise (Server_error (code, message))
  | resp -> k resp

let unexpected what = failwith ("Client: unexpected response to " ^ what)

type opened = {
  session : int;
  digest : string;
  status : Protocol.session_status;
  gates : int;
}

let ping t =
  ok t Protocol.Ping (function
    | Protocol.Pong -> ()
    | _ -> unexpected "ping")

let open_session t ?(tenant = "anon") ?(device = "d25") ?(temp_c = 25.0)
    ?(pattern = "") ~circuit () =
  ok t (Protocol.Open_session { tenant; circuit; device; temp_c; pattern })
    (function
    | Protocol.Session_opened { session; digest; status; gates } ->
      { session; digest; status; gates }
    | _ -> unexpected "open_session")

let apply_batch t ~session edits =
  ok t (Protocol.Apply_batch { session; edits }) (function
    | Protocol.Applied { groups; _ } -> groups
    | _ -> unexpected "apply_batch")

let query t ~session ?(refresh = false) () =
  ok t (Protocol.Query { session; refresh }) (function
    | Protocol.Queried { loaded; baseline; _ } -> (loaded, baseline)
    | _ -> unexpected "query")

let checkpoint t ~session =
  ok t (Protocol.Checkpoint { session }) (function
    | Protocol.Checkpointed { checkpoint; _ } -> checkpoint
    | _ -> unexpected "checkpoint")

let rollback t ~session ~checkpoint =
  ok t (Protocol.Rollback { session; checkpoint }) (function
    | Protocol.Rolled_back _ -> ()
    | _ -> unexpected "rollback")

let close_session t ~session =
  ok t (Protocol.Close { session }) (function
    | Protocol.Closed _ -> ()
    | _ -> unexpected "close_session")

let metrics t =
  ok t Protocol.Metrics (function
    | Protocol.Metrics_report json -> json
    | _ -> unexpected "metrics")

type snapshot_report = {
  uptime_s : float;
  version : string;
  snapshot : Leakage_telemetry.Telemetry.Snapshot.t;
}

let metrics_snapshot t =
  ok t Protocol.Metrics_snapshot (function
    | Protocol.Metrics_snapshot_report { uptime_s; version; snapshot } ->
      { uptime_s; version; snapshot }
    | _ -> unexpected "metrics_snapshot")

let shutdown_server t =
  ok t Protocol.Shutdown (function
    | Protocol.Shutdown_ack -> ()
    | _ -> unexpected "shutdown")
