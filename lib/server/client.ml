exception Server_error of Protocol.error_code * string
exception Poisoned of string

type endpoint = Unix_path of string | Tcp of string * int

let endpoint_name = function
  | Unix_path p -> p
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p

type policy = {
  retries : int;
  backoff_ms : float;
  max_backoff_ms : float;
  timeout_ms : float option;
  jitter : float;
}

let default_policy =
  { retries = 0; backoff_ms = 25.0; max_backoff_ms = 1000.0;
    timeout_ms = None; jitter = 0.25 }

type stats = {
  retries : int;
  reconnects : int;
  over_quota_waits : int;
  timeouts : int;
}

type t = {
  endpoints : endpoint array;
  policy : policy;
  rng : Random.State.t;
  mutable fd : Unix.file_descr option;
  mutable endpoint_ix : int;
  mutable poisoned : string option;
  mutable closed : bool;
  mutable ever_connected : bool;
  mutable n_retries : int;
  mutable n_reconnects : int;
  mutable n_over_quota : int;
  mutable n_timeouts : int;
}

let stats t =
  {
    retries = t.n_retries;
    reconnects = t.n_reconnects;
    over_quota_waits = t.n_over_quota;
    timeouts = t.n_timeouts;
  }

let policy t = t.policy

let current_endpoint t =
  match t.fd with None -> None | Some _ -> Some t.endpoints.(t.endpoint_ix)

(* -------------------------------------------------------------- connect *)

(* [Unix.inet_addr_of_string] only takes literal addresses; resolving via
   getaddrinfo lets --port clients say "localhost" (or any name) and turns
   an unresolvable host into a clean [Failure] instead of a backtrace. *)
let resolve_tcp host port =
  match
    Unix.getaddrinfo host (string_of_int port)
      [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
  with
  | [] -> failwith (Printf.sprintf "cannot resolve host %s" host)
  | ais -> List.map (fun ai -> (ai.Unix.ai_addr, ai.Unix.ai_family)) ais

let connect_fd policy endpoint =
  let addrs =
    match endpoint with
    | Unix_path path -> [ (Unix.ADDR_UNIX path, Unix.PF_UNIX) ]
    | Tcp (host, port) -> resolve_tcp host port
  in
  let connect_one (sockaddr, family) =
    let fd = Unix.socket family Unix.SOCK_STREAM 0 in
    (try
       Unix.connect fd sockaddr;
       (* belt-and-braces under the select deadline: a read that blocks
          anyway gets kicked out by the kernel too *)
       Option.iter
         (fun ms -> Unix.setsockopt_float fd Unix.SO_RCVTIMEO (ms /. 1000.0))
         policy.timeout_ms
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd
  in
  (* a name may resolve to several addresses (v6 then v4, say); take the
     first that accepts, keep the last error when none does *)
  let rec try_addrs = function
    | [] -> assert false
    | [ a ] -> connect_one a
    | a :: rest -> (
      match connect_one a with
      | fd -> fd
      | exception Unix.Unix_error _ -> try_addrs rest)
  in
  try_addrs addrs

(* One pass over the endpoint list, starting at the current index so a
   client sticks to the endpoint that last worked; first success wins. *)
let connect_round t =
  let n = Array.length t.endpoints in
  let rec try_at k last_exn =
    if k >= n then raise last_exn
    else begin
      let ix = (t.endpoint_ix + k) mod n in
      match connect_fd t.policy t.endpoints.(ix) with
      | fd ->
        t.fd <- Some fd;
        t.endpoint_ix <- ix;
        t.poisoned <- None;
        if t.ever_connected then t.n_reconnects <- t.n_reconnects + 1;
        t.ever_connected <- true
      | exception ((Unix.Unix_error _ | Failure _) as e) -> try_at (k + 1) e
    end
  in
  try_at 0 (Failure "Client.connect: no endpoints")

let drop_fd t =
  (match t.fd with
   | Some fd -> (try Unix.close fd with Unix.Unix_error _ -> ())
   | None -> ());
  t.fd <- None

let poison t reason =
  t.poisoned <- Some reason;
  drop_fd t

(* capped exponential backoff with jitter; a server-supplied retry-after
   hint extends the sleep when it is longer than the backoff would be *)
let retry_wait t ~attempt ~hint_ms =
  let base = t.policy.backoff_ms *. (2.0 ** float_of_int attempt) in
  let capped = Float.min t.policy.max_backoff_ms base in
  let jittered =
    capped
    *. (1.0 +. (t.policy.jitter *. ((2.0 *. Random.State.float t.rng 1.0) -. 1.0)))
  in
  let ms = Float.max 0.0 (Float.max jittered hint_ms) in
  if ms > 0.0 then Unix.sleepf (ms /. 1000.0)

let connect ?(policy = default_policy) ?(seed = 0) endpoints =
  if endpoints = [] then invalid_arg "Client.connect: no endpoints";
  let t =
    {
      endpoints = Array.of_list endpoints;
      policy;
      rng = Random.State.make [| seed; 0x1eacc7 |];
      fd = None;
      endpoint_ix = 0;
      poisoned = None;
      closed = false;
      ever_connected = false;
      n_retries = 0;
      n_reconnects = 0;
      n_over_quota = 0;
      n_timeouts = 0;
    }
  in
  let rec go attempt =
    match connect_round t with
    | () -> ()
    | exception e ->
      if attempt >= policy.retries then raise e
      else begin
        retry_wait t ~attempt ~hint_ms:0.0;
        go (attempt + 1)
      end
  in
  go 0;
  t

let connect_unix ?policy path = connect ?policy [ Unix_path path ]

let connect_tcp ?policy ?(host = "127.0.0.1") port =
  connect ?policy [ Tcp (host, port) ]

let close t =
  if not t.closed then begin
    t.closed <- true;
    drop_fd t
  end

(* ------------------------------------------------------------------ rpc *)

let deadline_of t =
  Option.map (fun ms -> Unix.gettimeofday () +. (ms /. 1000.0)) t.policy.timeout_ms

(* One strict round trip on the live socket. Any wire-level failure poisons
   the client: after a timeout or a desync the reply we never read could
   still arrive, and a second request would read it as its own answer. *)
let once t req =
  let fd =
    match t.fd with
    | Some fd -> fd
    | None ->
      raise (Poisoned (Option.value ~default:"not connected" t.poisoned))
  in
  match
    Wire.write_frame fd (Protocol.encode_request req);
    Protocol.decode_response (Wire.read_frame ?deadline:(deadline_of t) fd)
  with
  | resp -> resp
  | exception Wire.Timeout ->
    t.n_timeouts <- t.n_timeouts + 1;
    poison t "rpc timed out; a late reply would desynchronize the stream";
    raise Wire.Timeout
  | exception Wire.Truncated ->
    poison t "server hung up mid-frame";
    raise Wire.Truncated
  | exception (Wire.Bad_frame m as e) ->
    poison t ("undecodable frame from server: " ^ m);
    raise e
  | exception End_of_file ->
    poison t "server closed the connection";
    raise End_of_file
  | exception (Unix.Unix_error (err, _, _) as e) ->
    poison t ("socket error: " ^ Unix.error_message err);
    raise e

let rpc t req =
  if t.closed then invalid_arg "Client.rpc: closed";
  (match (t.poisoned, t.policy.retries) with
   | Some m, 0 ->
     (* no retry budget: a poisoned client stays poisoned — every call
        fails loudly instead of writing onto a desynced stream *)
     raise (Poisoned ("connection poisoned: " ^ m))
   | _ -> ());
  let rec go attempt =
    match
      if t.fd = None then connect_round t;
      once t req
    with
    | Protocol.Error { code; retry_after_ms; _ }
      when Protocol.retriable code && attempt < t.policy.retries ->
      if code = Protocol.Over_quota then t.n_over_quota <- t.n_over_quota + 1;
      t.n_retries <- t.n_retries + 1;
      retry_wait t ~attempt ~hint_ms:retry_after_ms;
      go (attempt + 1)
    | resp -> resp
    | exception
        ((Poisoned _ | Wire.Timeout | Wire.Truncated | Wire.Bad_frame _
         | End_of_file
         | Unix.Unix_error _
         | Failure _) as e) ->
      if attempt >= t.policy.retries then raise e
      else begin
        (* transport-level failure: back off, then the next round's
           [connect_round] moves to the next endpoint that answers *)
        t.n_retries <- t.n_retries + 1;
        retry_wait t ~attempt ~hint_ms:0.0;
        go (attempt + 1)
      end
  in
  go 0

(* unwrap an Error frame into an exception; anything else falls through *)
let ok t req k =
  match rpc t req with
  | Protocol.Error { code; message; _ } -> raise (Server_error (code, message))
  | resp -> k resp

let unexpected what = failwith ("Client: unexpected response to " ^ what)

type opened = {
  session : int;
  digest : string;
  status : Protocol.session_status;
  gates : int;
}

let ping t =
  ok t Protocol.Ping (function
    | Protocol.Pong -> ()
    | _ -> unexpected "ping")

let open_session t ?(tenant = "anon") ?(device = "d25") ?(temp_c = 25.0)
    ?(pattern = "") ~circuit () =
  ok t (Protocol.Open_session { tenant; circuit; device; temp_c; pattern })
    (function
    | Protocol.Session_opened { session; digest; status; gates } ->
      { session; digest; status; gates }
    | _ -> unexpected "open_session")

let apply_batch t ~session edits =
  ok t (Protocol.Apply_batch { session; edits }) (function
    | Protocol.Applied { groups; _ } -> groups
    | _ -> unexpected "apply_batch")

let query t ~session ?(refresh = false) () =
  ok t (Protocol.Query { session; refresh }) (function
    | Protocol.Queried { loaded; baseline; _ } -> (loaded, baseline)
    | _ -> unexpected "query")

let checkpoint t ~session =
  ok t (Protocol.Checkpoint { session }) (function
    | Protocol.Checkpointed { checkpoint; _ } -> checkpoint
    | _ -> unexpected "checkpoint")

let rollback t ~session ~checkpoint =
  ok t (Protocol.Rollback { session; checkpoint }) (function
    | Protocol.Rolled_back _ -> ()
    | _ -> unexpected "rollback")

let close_session t ~session =
  ok t (Protocol.Close { session }) (function
    | Protocol.Closed _ -> ()
    | _ -> unexpected "close_session")

let metrics t =
  ok t Protocol.Metrics (function
    | Protocol.Metrics_report json -> json
    | _ -> unexpected "metrics")

type snapshot_report = {
  uptime_s : float;
  version : string;
  snapshot : Leakage_telemetry.Telemetry.Snapshot.t;
}

let metrics_snapshot t =
  ok t Protocol.Metrics_snapshot (function
    | Protocol.Metrics_snapshot_report { uptime_s; version; snapshot } ->
      { uptime_s; version; snapshot }
    | _ -> unexpected "metrics_snapshot")

let shutdown_server t =
  ok t Protocol.Shutdown (function
    | Protocol.Shutdown_ack -> ()
    | _ -> unexpected "shutdown")

(* ------------------------------------------------------------- failover *)

module Failover = struct
  type session = {
    client : t;
    tenant : string;
    device : string;
    temp_c : float;
    circuit : Protocol.circuit_spec;
    mutable sid : int;
    mutable last_status : Protocol.session_status;
    mutable reopens : int;
  }

  let session_id s = s.sid
  let status s = s.last_status
  let reopens s = s.reopens
  let client s = s.client

  let open_session client ?(tenant = "anon") ?(device = "d25")
      ?(temp_c = 25.0) ?(pattern = "") ~circuit () =
    let o = open_session client ~tenant ~device ~temp_c ~pattern ~circuit () in
    {
      client;
      tenant;
      device;
      temp_c;
      circuit;
      sid = o.session;
      last_status = o.status;
      reopens = 0;
    }

  (* Re-open the same digest/corner with an empty pattern: a live session
     keeps its vector, a restored one takes it from the checkpoint — so the
     re-opened session is exactly the last durable state. *)
  let reopen s =
    let o =
      open_session s.client ~tenant:s.tenant ~device:s.device
        ~temp_c:s.temp_c ~pattern:"" ~circuit:s.circuit ()
    in
    s.sid <- o.sid;
    s.last_status <- o.last_status;
    s.reopens <- s.reopens + (1 + o.reopens)

  (* Run a session-scoped op; when the daemon holding the session died (the
     id is gone, or the transport failed beyond the rpc layer's retries),
     re-open — landing on whichever endpoint answers, warm from the shipped
     checkpoint — and replay the op against the new id. Callers must send
     idempotent ops (the protocol's edits all set absolute state). *)
  let with_session s f =
    let limit = Int.max 1 (s.client.policy.retries + 1) in
    let rec go n =
      match f s.sid with
      | v -> v
      | exception
          ( Server_error (Protocol.Unknown_session, _)
          | Poisoned _ | Wire.Timeout | Wire.Truncated | Wire.Bad_frame _
          | End_of_file
          | Unix.Unix_error _ )
        when n < limit ->
        reopen s;
        go (n + 1)
    in
    go 0

  let apply s edits =
    with_session s (fun sid -> apply_batch s.client ~session:sid edits)

  let query s ?(refresh = false) () =
    with_session s (fun sid -> query s.client ~session:sid ~refresh ())

  let close_session s =
    with_session s (fun sid -> close_session s.client ~session:sid)
end
