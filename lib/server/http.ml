(* Minimal read-only HTTP/1.1 responder for the daemon's observability
   sidecar. Deliberately tiny: GET only, no keep-alive, no chunking, no
   TLS — just enough for a Prometheus scraper or curl against /metrics
   and /healthz. Anything beyond that 405s or 404s. *)

type response = {
  status : int;
  content_type : string;
  body : string;
}

let response ?(content_type = "text/plain; charset=utf-8") status body =
  { status; content_type; body }

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 503 -> "Service Unavailable"
  | _ -> "Error"

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | 0 ->
        (* no progress: wait for writability rather than dropping the tail
           of the response (a zero return is not an error, but treating it
           as "done" silently truncates bodies larger than the socket
           buffer) *)
        (try ignore (Unix.select [] [ fd ] [] 0.05)
         with Unix.Unix_error (Unix.EINTR, _, _) -> ());
        go off
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let write_response fd { status; content_type; body } =
  let head =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
       Connection: close\r\n\r\n"
      status (status_text status) content_type (String.length body)
  in
  write_all fd (head ^ body)

(* Read until the blank line ending the header block (requests here have
   no bodies — GETs from scrapers), bounded so a hostile peer cannot make
   us buffer forever. *)
let max_head = 16 * 1024

let read_head fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 512 in
  let rec go () =
    if Buffer.length buf > max_head then None
    else begin
      let seen = Buffer.contents buf in
      let have_terminator =
        let rec find i =
          i + 3 < String.length seen
          && (String.sub seen i 4 = "\r\n\r\n" || find (i + 1))
        in
        String.length seen >= 4 && find 0
      in
      if have_terminator then Some seen
      else
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    end
  in
  go ()

let parse_request_line head =
  match String.index_opt head '\r' with
  | None -> None
  | Some eol -> (
    let line = String.sub head 0 eol in
    match String.split_on_char ' ' line with
    | [ meth; target; _version ] ->
      (* strip any query string: routes here take no parameters *)
      let path =
        match String.index_opt target '?' with
        | Some q -> String.sub target 0 q
        | None -> target
      in
      Some (meth, path)
    | _ -> None)

let handle fd route =
  (try
     match read_head fd with
     | None -> ()
     | Some head -> (
       match parse_request_line head with
       | None -> write_response fd (response 400 "malformed request\n")
       | Some (meth, path) ->
         if meth <> "GET" then
           write_response fd (response 405 "only GET is served here\n")
         else
           let resp =
             match route path with
             | Some r -> r
             | None -> response 404 "unknown path\n"
           in
           write_response fd resp)
   with Unix.Unix_error _ | Sys_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()
