exception Truncated
exception Bad_frame of string
exception Timeout

let magic = "LKS1"
let version = 1
let max_payload = 1 lsl 26
let header_size = String.length magic + 1 + 1 + 4

type frame = { op : int; payload : string }

(* ------------------------------------------------------------- writers *)

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let put_u32 b v =
  if v < 0 || v > 0xffff_ffff then invalid_arg "Wire.put_u32: out of range";
  put_u8 b (v lsr 24);
  put_u8 b (v lsr 16);
  put_u8 b (v lsr 8);
  put_u8 b v

let put_u64 b v =
  for shift = 7 downto 0 do
    put_u8 b (Int64.to_int (Int64.shift_right_logical v (shift * 8)))
  done

let put_f64 b f = put_u64 b (Int64.bits_of_float f)
let put_bool b v = put_u8 b (if v then 1 else 0)

let put_string b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

(* ------------------------------------------------------------- readers *)

type reader = { data : string; mutable pos : int }

let reader data = { data; pos = 0 }

let need r n = if r.pos + n > String.length r.data then raise Truncated

let get_u8 r =
  need r 1;
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let get_u32 r =
  need r 4;
  let b i = Char.code r.data.[r.pos + i] in
  let v = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  r.pos <- r.pos + 4;
  v

let get_u64 r =
  need r 8;
  let v = ref 0L in
  for i = 0 to 7 do
    v :=
      Int64.logor
        (Int64.shift_left !v 8)
        (Int64.of_int (Char.code r.data.[r.pos + i]))
  done;
  r.pos <- r.pos + 8;
  !v

let get_f64 r = Int64.float_of_bits (get_u64 r)

let get_bool r =
  match get_u8 r with
  | 0 -> false
  | 1 -> true
  | b -> raise (Bad_frame (Printf.sprintf "bool byte %d" b))

let get_string r =
  let n = get_u32 r in
  need r n;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let at_end r = r.pos = String.length r.data

let expect_end r =
  if not (at_end r) then
    raise
      (Bad_frame
         (Printf.sprintf "%d trailing payload bytes"
            (String.length r.data - r.pos)))

(* -------------------------------------------------------------- frames *)

let frame_to_string { op; payload } =
  let b = Buffer.create (header_size + String.length payload) in
  Buffer.add_string b magic;
  put_u8 b version;
  put_u8 b op;
  put_u32 b (String.length payload);
  Buffer.add_string b payload;
  Buffer.contents b

let check_header ~m ~v ~len =
  if m <> magic then raise (Bad_frame "bad magic");
  if v <> version then raise (Bad_frame (Printf.sprintf "version %d" v));
  if len > max_payload then
    raise (Bad_frame (Printf.sprintf "payload length %d exceeds cap" len))

let decode_frame s ~pos =
  if pos + header_size > String.length s then raise Truncated;
  let r = { data = s; pos } in
  let m = String.sub s r.pos 4 in
  r.pos <- r.pos + 4;
  let v = get_u8 r in
  let op = get_u8 r in
  let len = get_u32 r in
  check_header ~m ~v ~len;
  need r len;
  let payload = String.sub s r.pos len in
  ({ op; payload }, r.pos + len)

let frame_of_string s =
  let f, next = decode_frame s ~pos:0 in
  if next <> String.length s then
    raise (Bad_frame (Printf.sprintf "%d trailing bytes" (String.length s - next)));
  f

(* ----------------------------------------------------------- transport *)

(* Block until [fd] is readable or [deadline] (absolute, from
   [Unix.gettimeofday]) passes. EINTR only restarts the wait — the deadline
   is re-derived each time, so a signal storm cannot extend it. *)
let wait_readable fd ~deadline =
  let rec go () =
    let remaining = deadline -. Unix.gettimeofday () in
    if remaining <= 0.0 then raise Timeout;
    match Unix.select [ fd ] [] [] remaining with
    | [], _, _ -> raise Timeout
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let really_read ?deadline fd buf ofs len ~at_boundary =
  let got = ref 0 in
  while !got < len do
    Option.iter (fun d -> wait_readable fd ~deadline:d) deadline;
    match Unix.read fd buf (ofs + !got) (len - !got) with
    | 0 ->
      if !got = 0 && at_boundary then raise End_of_file else raise Truncated
    | n -> got := !got + n
    (* a signal mid-read must not desync the stream: retry the same slice *)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    (* SO_RCVTIMEO expiry surfaces as EAGAIN/EWOULDBLOCK *)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      raise Timeout
  done

let read_frame ?deadline fd =
  let header = Bytes.create header_size in
  really_read ?deadline fd header 0 header_size ~at_boundary:true;
  let s = Bytes.to_string header in
  let r = { data = s; pos = 4 } in
  let m = String.sub s 0 4 in
  let v = get_u8 r in
  let op = get_u8 r in
  let len = get_u32 r in
  check_header ~m ~v ~len;
  let payload = Bytes.create len in
  if len > 0 then really_read ?deadline fd payload 0 len ~at_boundary:false;
  { op; payload = Bytes.unsafe_to_string payload }

let write_frame fd frame =
  let s = frame_to_string frame in
  let len = String.length s in
  let sent = ref 0 in
  while !sent < len do
    match Unix.write_substring fd s !sent (len - !sent) with
    | 0 ->
      (* a zero-length write makes no progress; wait for writability
         instead of spinning (or, worse, declaring the frame sent) *)
      (try ignore (Unix.select [] [ fd ] [] 0.05)
       with Unix.Unix_error (Unix.EINTR, _, _) -> ())
    | n -> sent := !sent + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done
