module Incremental = Leakage_incremental.Incremental
module Pool = Leakage_parallel.Pool
module Tm = Leakage_telemetry.Telemetry
module Log = Leakage_telemetry.Log
module Trace = Leakage_telemetry.Trace
module Prometheus = Leakage_telemetry.Prometheus
module Sampler = Leakage_telemetry.Sampler

let m_requests = Tm.counter "serve.requests"
let m_rejected = Tm.counter "serve.rejected"
let m_bad_frames = Tm.counter "serve.bad_frames"
let m_connections = Tm.counter "serve.connections"
let m_scrapes = Tm.counter "serve.http_scrapes"
let h_open_us = Tm.histogram "serve.open_us"
let h_apply_us = Tm.histogram "serve.apply_us"
let h_query_us = Tm.histogram "serve.query_us"
let g_sessions_live = Tm.gauge "serve.sessions_live"
let g_queue_depth = Tm.gauge "serve.queue_depth"
let g_quota = Tm.gauge "serve.quota"
let g_pool_lanes = Tm.gauge "serve.pool_lanes"
let g_pool_busy = Tm.gauge "serve.pool_busy"

type t = {
  socket_path : string;
  port : int option;
  registry : Registry.t;
  scheduler : Scheduler.t;
  pool : Pool.t option;
  mutable listeners : Unix.file_descr list;
  mutable http_listener : Unix.file_descr option;
  stop_requested : bool Atomic.t;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  is_running : bool Atomic.t;
  started_at : float;
  version : string;
  slow_us : float;
  sample_interval : float;
  conn_seq : int Atomic.t;
  mutable sampler : Sampler.t option;
  (* tenants whose in-flight gauge we have published, so one that goes
     idle is set back to 0 instead of freezing at its last level *)
  tenant_gauges : (string, Tm.gauge) Hashtbl.t;
  (* same idea for the token-bucket level gauges the select loop ticks *)
  token_gauges : (string, Tm.gauge) Hashtbl.t;
}

let create ?port ?http_port ?(executors = 2) ?jobs ?(quota = 8)
    ?(max_sessions = 8) ?state_dir ?peer_dir ?tenant_rate ?tenant_burst
    ?(version = "dev") ?(slow_us = infinity) ?(sample_interval = 1.0)
    ~socket () =
  let jobs =
    match jobs with Some j -> Pool.clamp_jobs j | None -> Pool.default_jobs ()
  in
  let pool = if jobs > 1 then Some (Pool.create ~jobs ()) else None in
  let registry = Registry.create ?state_dir ?peer_dir ~max_sessions () in
  let scheduler =
    Scheduler.create ~executors ~quota ?rate:tenant_rate ?burst:tenant_burst ()
  in
  if Sys.file_exists socket then Unix.unlink socket;
  let unix_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind unix_fd (Unix.ADDR_UNIX socket);
  Unix.listen unix_fd 64;
  let tcp_listener p =
    let tcp = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt tcp Unix.SO_REUSEADDR true;
    Unix.bind tcp (Unix.ADDR_INET (Unix.inet_addr_loopback, p));
    Unix.listen tcp 64;
    tcp
  in
  let listeners =
    match port with
    | None -> [ unix_fd ]
    | Some p -> [ unix_fd; tcp_listener p ]
  in
  let http_listener = Option.map tcp_listener http_port in
  let stop_r, stop_w = Unix.pipe () in
  {
    socket_path = socket;
    port;
    registry;
    scheduler;
    pool;
    listeners;
    http_listener;
    stop_requested = Atomic.make false;
    stop_r;
    stop_w;
    is_running = Atomic.make false;
    started_at = Unix.gettimeofday ();
    version;
    slow_us;
    sample_interval;
    conn_seq = Atomic.make 0;
    sampler = None;
    tenant_gauges = Hashtbl.create 8;
    token_gauges = Hashtbl.create 8;
  }

let uptime_s t = Unix.gettimeofday () -. t.started_at

let http_port t =
  match t.http_listener with
  | None -> None
  | Some fd -> (
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> Some p
    | Unix.ADDR_UNIX _ | (exception Unix.Unix_error _) -> None)

let request_stop t =
  if not (Atomic.exchange t.stop_requested true) then
    (* one byte on the self-pipe wakes the select loop; both operations are
       async-signal-safe, so SIGINT/SIGTERM handlers may call this *)
    ignore (Unix.write t.stop_w (Bytes.make 1 '!') 0 1)

let running t = Atomic.get t.is_running

let stopping t = Atomic.get t.stop_requested

(* ------------------------------------------------------------ mailbox *)

type mailbox = {
  m : Mutex.t;
  c : Condition.t;
  mutable value : Protocol.response option;
}

let mailbox () = { m = Mutex.create (); c = Condition.create (); value = None }

let mailbox_put mb v =
  Mutex.lock mb.m;
  mb.value <- Some v;
  Condition.signal mb.c;
  Mutex.unlock mb.m

let mailbox_wait mb =
  Mutex.lock mb.m;
  while mb.value = None do
    Condition.wait mb.c mb.m
  done;
  let v = Option.get mb.value in
  Mutex.unlock mb.m;
  v

(* ------------------------------------------------------------ handlers *)

let err code fmt =
  Printf.ksprintf
    (fun message -> Protocol.Error { code; message; retry_after_ms = 0.0 })
    fmt

(* Run [f] on the session's executor, serialized with every other request
   for that session, and hand the result back through a mailbox. The
   latency histogram sees queue wait plus execution — what a client feels. *)
let on_session t ?rid ~op (session : Registry.session) histo f =
  let mb = mailbox () in
  Registry.begin_request t.registry session;
  let t0 = Tm.now_us () in
  let span_args =
    match rid with Some rid -> [ ("rid", rid) ] | None -> []
  in
  (try
     Scheduler.submit t.scheduler ?rid ~key:session.Registry.key (fun () ->
         let resp =
           try Trace.with_span ~cat:"serve" ~args:span_args op f
           with
           | Invalid_argument m -> err Protocol.Bad_request "%s" m
           | Failure m -> err Protocol.Internal "%s" m
         in
         Tm.observe histo (Tm.now_us () -. t0);
         Registry.end_request t.registry session;
         mailbox_put mb resp)
   with Invalid_argument _ ->
     Registry.end_request t.registry session;
     mailbox_put mb (err Protocol.Shutting_down "server is draining"));
  mailbox_wait mb

let with_admission t tenant k =
  if stopping t then err Protocol.Shutting_down "server is draining"
  else
    match Scheduler.try_admit t.scheduler tenant with
    | Scheduler.Rejected { retry_after_s; reason } ->
      Tm.incr m_rejected;
      Protocol.Error
        {
          code = Protocol.Over_quota;
          message = Printf.sprintf "tenant %s %s" tenant reason;
          retry_after_ms = retry_after_s *. 1000.0;
        }
    | Scheduler.Admitted ->
      Fun.protect ~finally:(fun () -> Scheduler.release t.scheduler tenant) k

let find_session t id k =
  match Registry.find t.registry id with
  | None -> err Protocol.Unknown_session "no live session %d" id
  | Some session -> k session

let handle_open t ?rid ~tenant ~circuit ~device ~temp_c ~pattern () =
  match Protocol.device_of_name device with
  | None -> err Protocol.Bad_request "unknown device corner %s" device
  | Some dev ->
    let spec =
      {
        Registry.circuit;
        device_name = String.lowercase_ascii device;
        device = dev;
        temp_c;
      }
    in
    (match Registry.resolve t.registry spec with
     | exception Not_found ->
       err Protocol.Bad_request "unknown built-in circuit"
     | exception Leakage_circuit.Bench_format.Parse_error (line, msg) ->
       err Protocol.Bad_request "bench parse error, line %d: %s" line msg
     | exception Failure m -> err Protocol.Bad_request "%s" m
     | exception Invalid_argument m -> err Protocol.Bad_request "%s" m
     | resolved ->
       let mb = mailbox () in
       let t0 = Tm.now_us () in
       let span_args =
         match rid with Some rid -> [ ("rid", rid) ] | None -> []
       in
       (try
          Scheduler.submit t.scheduler ?rid ~key:resolved.Registry.rkey
            (fun () ->
              let resp =
                try
                  Trace.with_span ~cat:"serve" ~args:span_args "open"
                    (fun () ->
                      let session, status =
                        Registry.open_session ?pool:t.pool t.registry resolved
                          ~pattern
                      in
                      ignore tenant;
                      Protocol.Session_opened
                        {
                          session = session.Registry.id;
                          digest = session.Registry.digest;
                          status;
                          gates =
                            Leakage_circuit.Netlist.gate_count
                              resolved.Registry.netlist;
                        })
                with
                | Invalid_argument m -> err Protocol.Bad_request "%s" m
                | Failure m -> err Protocol.Internal "%s" m
              in
              Tm.observe h_open_us (Tm.now_us () -. t0);
              mailbox_put mb resp)
        with Invalid_argument _ ->
          mailbox_put mb (err Protocol.Shutting_down "server is draining"));
       mailbox_wait mb)

let handle_apply t ?rid ~session_id ~edits () =
  match
    List.map Protocol.edit_to_incremental edits
  with
  | exception Invalid_argument m -> err Protocol.Bad_request "%s" m
  | incr_edits ->
    find_session t session_id @@ fun session ->
    on_session t ?rid ~op:"apply" session h_apply_us (fun () ->
        let before = (Incremental.stats session.Registry.incr).Incremental.batch_groups in
        Incremental.apply_batch ?pool:t.pool session.Registry.incr incr_edits;
        let after = (Incremental.stats session.Registry.incr).Incremental.batch_groups in
        Registry.checkpoint_to_disk t.registry session;
        Protocol.Applied
          {
            session = session_id;
            edits = List.length edits;
            groups = after - before;
          })

let handle_query t ?rid ~session_id ~refresh () =
  find_session t session_id @@ fun session ->
  on_session t ?rid ~op:"query" session h_query_us (fun () ->
      if refresh then Incremental.refresh session.Registry.incr;
      Protocol.Queried
        {
          session = session_id;
          loaded = Incremental.totals session.Registry.incr;
          baseline = Incremental.baseline_totals session.Registry.incr;
        })

let handle_checkpoint t ?rid ~session_id () =
  find_session t session_id @@ fun session ->
  on_session t ?rid ~op:"checkpoint" session h_query_us (fun () ->
      let id = session.Registry.next_checkpoint in
      session.Registry.next_checkpoint <- id + 1;
      Hashtbl.replace session.Registry.checkpoints id
        (Incremental.checkpoint session.Registry.incr);
      Protocol.Checkpointed { session = session_id; checkpoint = id })

let handle_rollback t ?rid ~session_id ~checkpoint () =
  find_session t session_id @@ fun session ->
  on_session t ?rid ~op:"rollback" session h_query_us (fun () ->
      match Hashtbl.find_opt session.Registry.checkpoints checkpoint with
      | None ->
        err Protocol.Unknown_checkpoint "no checkpoint %d in session %d"
          checkpoint session_id
      | Some c ->
        (match Incremental.rollback session.Registry.incr c with
         | () -> Protocol.Rolled_back { session = session_id }
         | exception Invalid_argument _ ->
           Hashtbl.remove session.Registry.checkpoints checkpoint;
           err Protocol.Unknown_checkpoint
             "checkpoint %d was invalidated by an earlier rollback" checkpoint))

let handle_close t ?rid ~session_id () =
  find_session t session_id @@ fun session ->
  on_session t ?rid ~op:"close" session h_query_us (fun () ->
      Registry.close_session t.registry session;
      Protocol.Closed { session = session_id })

let metrics_meta t =
  [
    ("uptime_s", Printf.sprintf "%.3f" (uptime_s t));
    ("version", "\"" ^ t.version ^ "\"");
  ]

let handle_request t ~tenant ~rid req =
  Tm.incr m_requests;
  match (req : Protocol.request) with
  | Protocol.Ping -> Protocol.Pong
  | Protocol.Metrics ->
    Protocol.Metrics_report
      (Tm.Snapshot.to_json ~meta:(metrics_meta t) (Tm.Snapshot.take ()))
  | Protocol.Metrics_snapshot ->
    Protocol.Metrics_snapshot_report
      {
        uptime_s = uptime_s t;
        version = t.version;
        snapshot = Tm.Snapshot.take ();
      }
  | Protocol.Shutdown ->
    request_stop t;
    Protocol.Shutdown_ack
  | Protocol.Open_session { tenant = tn; circuit; device; temp_c; pattern } ->
    tenant := tn;
    with_admission t !tenant (fun () ->
        handle_open t ~rid ~tenant:tn ~circuit ~device ~temp_c ~pattern ())
  | Protocol.Apply_batch { session; edits } ->
    with_admission t !tenant (fun () ->
        handle_apply t ~rid ~session_id:session ~edits ())
  | Protocol.Query { session; refresh } ->
    with_admission t !tenant (fun () ->
        handle_query t ~rid ~session_id:session ~refresh ())
  | Protocol.Checkpoint { session } ->
    with_admission t !tenant (fun () ->
        handle_checkpoint t ~rid ~session_id:session ())
  | Protocol.Rollback { session; checkpoint } ->
    with_admission t !tenant (fun () ->
        handle_rollback t ~rid ~session_id:session ~checkpoint ())
  | Protocol.Close { session } ->
    with_admission t !tenant (fun () ->
        handle_close t ~rid ~session_id:session ())

(* --------------------------------------------------------- connections *)

let response_status = function
  | Protocol.Error { code; _ } -> Protocol.error_code_name code
  | _ -> "ok"

let handle_connection t fd =
  Tm.incr m_connections;
  let conn = Atomic.fetch_and_add t.conn_seq 1 in
  let seq = ref 0 in
  let tenant = ref "anon" in
  let continue = ref true in
  (try
     while !continue do
       match Wire.read_frame fd with
       | exception End_of_file -> continue := false
       | exception Wire.Truncated -> continue := false
       | frame ->
         (* request ids are daemon-unique: connection ordinal + per-
            connection sequence; they tag log lines, spans, and replies'
            slow-request reports, never the numeric results *)
         let rid = Printf.sprintf "c%d-%d" conn !seq in
         incr seq;
         let t0 = Tm.now_us () in
         let op = ref "malformed" in
         let resp =
           match Protocol.decode_request frame with
           | req ->
             op := Protocol.request_name req;
             handle_request t ~tenant ~rid req
           | exception Wire.Bad_frame m ->
             Tm.incr m_bad_frames;
             err Protocol.Bad_request "malformed request: %s" m
           | exception Wire.Truncated ->
             Tm.incr m_bad_frames;
             err Protocol.Bad_request "truncated request payload"
         in
         let dur_us = Tm.now_us () -. t0 in
         Tm.observe
           (Tm.histogram_with "serve.request_us"
              [ ("op", !op); ("tenant", !tenant) ])
           dur_us;
         let fields () =
           [
             ("rid", Log.str rid);
             ("op", Log.str !op);
             ("tenant", Log.str !tenant);
             ("status", Log.str (response_status resp));
             ("dur_us", Log.float dur_us);
           ]
         in
         if Log.enabled Log.Info then Log.info "request" (fields ());
         if dur_us >= t.slow_us then
           Log.warn "request.slow"
             (fields () @ [ ("threshold_us", Log.float t.slow_us) ]);
         Wire.write_frame fd (Protocol.encode_response resp)
     done
   with
  | Wire.Bad_frame _ ->
    (* garbage at the framing layer: answer if possible, then hang up *)
    Tm.incr m_bad_frames;
    (try
       Wire.write_frame fd
         (Protocol.encode_response (err Protocol.Bad_request "bad frame"))
     with _ -> ())
  | Unix.Unix_error _ | Sys_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------- sampler + http sidecar *)

(* runs on the sampler's ticker domain after each GC/RSS sweep *)
let publish_server_gauges t () =
  Tm.set_gauge g_sessions_live (float_of_int (Registry.live_count t.registry));
  Tm.set_gauge g_queue_depth (float_of_int (Scheduler.queue_depth t.scheduler));
  Tm.set_gauge g_quota (float_of_int (Scheduler.quota t.scheduler));
  (match t.pool with
   | None ->
     Tm.set_gauge g_pool_lanes 1.0;
     Tm.set_gauge g_pool_busy 0.0
   | Some pool ->
     Tm.set_gauge g_pool_lanes (float_of_int (Pool.jobs pool));
     Tm.set_gauge g_pool_busy (if Pool.busy pool then 1.0 else 0.0));
  let inflight = Scheduler.tenant_inflight t.scheduler in
  List.iter
    (fun (tenant, _) ->
      if not (Hashtbl.mem t.tenant_gauges tenant) then
        Hashtbl.replace t.tenant_gauges tenant
          (Tm.gauge_with "serve.tenant_inflight" [ ("tenant", tenant) ]))
    inflight;
  Hashtbl.iter
    (fun tenant g ->
      let v =
        Option.value ~default:0 (List.assoc_opt tenant inflight)
      in
      Tm.set_gauge g (float_of_int v))
    t.tenant_gauges

(* Runs on the select loop's tick (only when a --tenant-rate is set): refill
   every bucket against the wall clock and publish the levels, so an idle
   tenant's gauge climbs back toward burst instead of freezing at the level
   of its last admit. *)
let publish_token_gauges t =
  let levels = Scheduler.tenant_tokens t.scheduler in
  List.iter
    (fun (tenant, _) ->
      if not (Hashtbl.mem t.token_gauges tenant) then
        Hashtbl.replace t.token_gauges tenant
          (Tm.gauge_with "serve.tenant_tokens" [ ("tenant", tenant) ]))
    levels;
  Hashtbl.iter
    (fun tenant g ->
      match List.assoc_opt tenant levels with
      | Some v -> Tm.set_gauge g v
      | None -> ())
    t.token_gauges

let http_routes t path =
  match path with
  | "/metrics" ->
    Tm.incr m_scrapes;
    Some
      (Http.response
         ~content_type:"text/plain; version=0.0.4; charset=utf-8" 200
         (Prometheus.render (Tm.Snapshot.take ())))
  | "/healthz" ->
    let draining = stopping t in
    let body =
      Printf.sprintf
        "{\"status\":%S,\"uptime_s\":%.3f,\"version\":%S,\"sessions\":%d}\n"
        (if draining then "draining" else "ok")
        (uptime_s t) t.version
        (Registry.live_count t.registry)
    in
    Some
      (Http.response ~content_type:"application/json"
         (if draining then 503 else 200)
         body)
  | _ -> None

let graceful_stop t =
  Log.info "server.stop" [ ("uptime_s", Log.float (uptime_s t)) ];
  (* 1. stop accepting and tear the endpoints down *)
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.listeners;
  t.listeners <- [];
  (* the http listener survives into the drain so /healthz can answer 503;
     it closes with the sampler below *)
  if Sys.file_exists t.socket_path then (try Unix.unlink t.socket_path with _ -> ());
  (* 2. drain: every queued job still answers its client *)
  Scheduler.shutdown t.scheduler;
  (* 3. flush session state so a restart resumes warm *)
  Registry.flush_all t.registry;
  (* 4. park the worker domains and observers *)
  Option.iter Pool.shutdown t.pool;
  (match t.sampler with
   | Some s ->
     t.sampler <- None;
     Sampler.stop s
   | None -> ());
  (match t.http_listener with
   | Some fd ->
     t.http_listener <- None;
     (try Unix.close fd with Unix.Unix_error _ -> ())
   | None -> ());
  Atomic.set t.is_running false

let run t =
  Atomic.set t.is_running true;
  if Tm.enabled () then
    t.sampler <-
      Some
        (Sampler.start ~interval:t.sample_interval
           ~extra:(publish_server_gauges t) ());
  Log.info "server.start"
    [
      ("socket", Log.str t.socket_path);
      ("port", Log.int (Option.value ~default:(-1) t.port));
      ("http_port", Log.int (Option.value ~default:(-1) (http_port t)));
      ("version", Log.str t.version);
    ];
  (try
     (* with token buckets on, the loop wakes on a short tick to drive
        refills and the serve.tenant_tokens gauges off the wall clock even
        when no request arrives; otherwise it blocks until a connection *)
     let tick =
       if Scheduler.rate_limited t.scheduler then 0.25 else -1.0
     in
     while not (stopping t) do
       let http_fds = Option.to_list t.http_listener in
       match
         Unix.select ((t.stop_r :: t.listeners) @ http_fds) [] [] tick
       with
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
       | readable, _, _ ->
         if Scheduler.rate_limited t.scheduler then publish_token_gauges t;
         List.iter
           (fun fd ->
             if fd <> t.stop_r && not (stopping t) then begin
               match Unix.accept fd with
               | conn, _ ->
                 if Some fd = t.http_listener then
                   ignore
                     (Thread.create
                        (fun () -> Http.handle conn (http_routes t))
                        ())
                 else
                   ignore
                     (Thread.create (fun () -> handle_connection t conn) ())
               | exception Unix.Unix_error _ -> ()
             end)
           readable
     done
   with e ->
     graceful_stop t;
     raise e);
  graceful_stop t
