module Incremental = Leakage_incremental.Incremental
module Pool = Leakage_parallel.Pool
module Tm = Leakage_telemetry.Telemetry

let m_requests = Tm.counter "serve.requests"
let m_rejected = Tm.counter "serve.rejected"
let m_bad_frames = Tm.counter "serve.bad_frames"
let m_connections = Tm.counter "serve.connections"
let h_open_us = Tm.histogram "serve.open_us"
let h_apply_us = Tm.histogram "serve.apply_us"
let h_query_us = Tm.histogram "serve.query_us"

type t = {
  socket_path : string;
  port : int option;
  registry : Registry.t;
  scheduler : Scheduler.t;
  pool : Pool.t option;
  mutable listeners : Unix.file_descr list;
  stop_requested : bool Atomic.t;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  is_running : bool Atomic.t;
}

let create ?port ?(executors = 2) ?jobs ?(quota = 8) ?(max_sessions = 8)
    ?state_dir ~socket () =
  let jobs =
    match jobs with Some j -> Pool.clamp_jobs j | None -> Pool.default_jobs ()
  in
  let pool = if jobs > 1 then Some (Pool.create ~jobs ()) else None in
  let registry = Registry.create ?state_dir ~max_sessions () in
  let scheduler = Scheduler.create ~executors ~quota () in
  if Sys.file_exists socket then Unix.unlink socket;
  let unix_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind unix_fd (Unix.ADDR_UNIX socket);
  Unix.listen unix_fd 64;
  let listeners =
    match port with
    | None -> [ unix_fd ]
    | Some p ->
      let tcp = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt tcp Unix.SO_REUSEADDR true;
      Unix.bind tcp (Unix.ADDR_INET (Unix.inet_addr_loopback, p));
      Unix.listen tcp 64;
      [ unix_fd; tcp ]
  in
  let stop_r, stop_w = Unix.pipe () in
  {
    socket_path = socket;
    port;
    registry;
    scheduler;
    pool;
    listeners;
    stop_requested = Atomic.make false;
    stop_r;
    stop_w;
    is_running = Atomic.make false;
  }

let request_stop t =
  if not (Atomic.exchange t.stop_requested true) then
    (* one byte on the self-pipe wakes the select loop; both operations are
       async-signal-safe, so SIGINT/SIGTERM handlers may call this *)
    ignore (Unix.write t.stop_w (Bytes.make 1 '!') 0 1)

let running t = Atomic.get t.is_running

let stopping t = Atomic.get t.stop_requested

(* ------------------------------------------------------------ mailbox *)

type mailbox = {
  m : Mutex.t;
  c : Condition.t;
  mutable value : Protocol.response option;
}

let mailbox () = { m = Mutex.create (); c = Condition.create (); value = None }

let mailbox_put mb v =
  Mutex.lock mb.m;
  mb.value <- Some v;
  Condition.signal mb.c;
  Mutex.unlock mb.m

let mailbox_wait mb =
  Mutex.lock mb.m;
  while mb.value = None do
    Condition.wait mb.c mb.m
  done;
  let v = Option.get mb.value in
  Mutex.unlock mb.m;
  v

(* ------------------------------------------------------------ handlers *)

let err code fmt =
  Printf.ksprintf
    (fun message -> Protocol.Error { code; message })
    fmt

(* Run [f] on the session's executor, serialized with every other request
   for that session, and hand the result back through a mailbox. The
   latency histogram sees queue wait plus execution — what a client feels. *)
let on_session t (session : Registry.session) histo f =
  let mb = mailbox () in
  Registry.begin_request t.registry session;
  let t0 = Tm.now_us () in
  (try
     Scheduler.submit t.scheduler ~key:session.Registry.key (fun () ->
         let resp =
           try f ()
           with
           | Invalid_argument m -> err Protocol.Bad_request "%s" m
           | Failure m -> err Protocol.Internal "%s" m
         in
         Tm.observe histo (Tm.now_us () -. t0);
         Registry.end_request t.registry session;
         mailbox_put mb resp)
   with Invalid_argument _ ->
     Registry.end_request t.registry session;
     mailbox_put mb (err Protocol.Shutting_down "server is draining"));
  mailbox_wait mb

let with_admission t tenant k =
  if stopping t then err Protocol.Shutting_down "server is draining"
  else if not (Scheduler.try_admit t.scheduler tenant) then begin
    Tm.incr m_rejected;
    err Protocol.Over_quota "tenant %s is at its in-flight quota" tenant
  end
  else
    Fun.protect ~finally:(fun () -> Scheduler.release t.scheduler tenant) k

let find_session t id k =
  match Registry.find t.registry id with
  | None -> err Protocol.Unknown_session "no live session %d" id
  | Some session -> k session

let handle_open t ~tenant ~circuit ~device ~temp_c ~pattern =
  match Protocol.device_of_name device with
  | None -> err Protocol.Bad_request "unknown device corner %s" device
  | Some dev ->
    let spec =
      {
        Registry.circuit;
        device_name = String.lowercase_ascii device;
        device = dev;
        temp_c;
      }
    in
    (match Registry.resolve t.registry spec with
     | exception Not_found ->
       err Protocol.Bad_request "unknown built-in circuit"
     | exception Leakage_circuit.Bench_format.Parse_error (line, msg) ->
       err Protocol.Bad_request "bench parse error, line %d: %s" line msg
     | exception Failure m -> err Protocol.Bad_request "%s" m
     | exception Invalid_argument m -> err Protocol.Bad_request "%s" m
     | resolved ->
       let mb = mailbox () in
       let t0 = Tm.now_us () in
       (try
          Scheduler.submit t.scheduler ~key:resolved.Registry.rkey (fun () ->
              let resp =
                try
                  let session, status =
                    Registry.open_session ?pool:t.pool t.registry resolved
                      ~pattern
                  in
                  ignore tenant;
                  Protocol.Session_opened
                    {
                      session = session.Registry.id;
                      digest = session.Registry.digest;
                      status;
                      gates =
                        Leakage_circuit.Netlist.gate_count
                          resolved.Registry.netlist;
                    }
                with
                | Invalid_argument m -> err Protocol.Bad_request "%s" m
                | Failure m -> err Protocol.Internal "%s" m
              in
              Tm.observe h_open_us (Tm.now_us () -. t0);
              mailbox_put mb resp)
        with Invalid_argument _ ->
          mailbox_put mb (err Protocol.Shutting_down "server is draining"));
       mailbox_wait mb)

let handle_apply t ~session_id ~edits =
  match
    List.map Protocol.edit_to_incremental edits
  with
  | exception Invalid_argument m -> err Protocol.Bad_request "%s" m
  | incr_edits ->
    find_session t session_id @@ fun session ->
    on_session t session h_apply_us (fun () ->
        let before = (Incremental.stats session.Registry.incr).Incremental.batch_groups in
        Incremental.apply_batch ?pool:t.pool session.Registry.incr incr_edits;
        let after = (Incremental.stats session.Registry.incr).Incremental.batch_groups in
        Registry.checkpoint_to_disk t.registry session;
        Protocol.Applied
          {
            session = session_id;
            edits = List.length edits;
            groups = after - before;
          })

let handle_query t ~session_id ~refresh =
  find_session t session_id @@ fun session ->
  on_session t session h_query_us (fun () ->
      if refresh then Incremental.refresh session.Registry.incr;
      Protocol.Queried
        {
          session = session_id;
          loaded = Incremental.totals session.Registry.incr;
          baseline = Incremental.baseline_totals session.Registry.incr;
        })

let handle_checkpoint t ~session_id =
  find_session t session_id @@ fun session ->
  on_session t session h_query_us (fun () ->
      let id = session.Registry.next_checkpoint in
      session.Registry.next_checkpoint <- id + 1;
      Hashtbl.replace session.Registry.checkpoints id
        (Incremental.checkpoint session.Registry.incr);
      Protocol.Checkpointed { session = session_id; checkpoint = id })

let handle_rollback t ~session_id ~checkpoint =
  find_session t session_id @@ fun session ->
  on_session t session h_query_us (fun () ->
      match Hashtbl.find_opt session.Registry.checkpoints checkpoint with
      | None ->
        err Protocol.Unknown_checkpoint "no checkpoint %d in session %d"
          checkpoint session_id
      | Some c ->
        (match Incremental.rollback session.Registry.incr c with
         | () -> Protocol.Rolled_back { session = session_id }
         | exception Invalid_argument _ ->
           Hashtbl.remove session.Registry.checkpoints checkpoint;
           err Protocol.Unknown_checkpoint
             "checkpoint %d was invalidated by an earlier rollback" checkpoint))

let handle_close t ~session_id =
  find_session t session_id @@ fun session ->
  on_session t session h_query_us (fun () ->
      Registry.close_session t.registry session;
      Protocol.Closed { session = session_id })

let handle_request t ~tenant req =
  Tm.incr m_requests;
  match (req : Protocol.request) with
  | Protocol.Ping -> Protocol.Pong
  | Protocol.Metrics ->
    Protocol.Metrics_report (Tm.Snapshot.to_json (Tm.Snapshot.take ()))
  | Protocol.Shutdown ->
    request_stop t;
    Protocol.Shutdown_ack
  | Protocol.Open_session { tenant = tn; circuit; device; temp_c; pattern } ->
    tenant := tn;
    with_admission t !tenant (fun () ->
        handle_open t ~tenant:tn ~circuit ~device ~temp_c ~pattern)
  | Protocol.Apply_batch { session; edits } ->
    with_admission t !tenant (fun () -> handle_apply t ~session_id:session ~edits)
  | Protocol.Query { session; refresh } ->
    with_admission t !tenant (fun () -> handle_query t ~session_id:session ~refresh)
  | Protocol.Checkpoint { session } ->
    with_admission t !tenant (fun () -> handle_checkpoint t ~session_id:session)
  | Protocol.Rollback { session; checkpoint } ->
    with_admission t !tenant (fun () ->
        handle_rollback t ~session_id:session ~checkpoint)
  | Protocol.Close { session } ->
    with_admission t !tenant (fun () -> handle_close t ~session_id:session)

(* --------------------------------------------------------- connections *)

let handle_connection t fd =
  Tm.incr m_connections;
  let tenant = ref "anon" in
  let continue = ref true in
  (try
     while !continue do
       match Wire.read_frame fd with
       | exception End_of_file -> continue := false
       | exception Wire.Truncated -> continue := false
       | frame ->
         let resp =
           match Protocol.decode_request frame with
           | req -> handle_request t ~tenant req
           | exception Wire.Bad_frame m ->
             Tm.incr m_bad_frames;
             err Protocol.Bad_request "malformed request: %s" m
           | exception Wire.Truncated ->
             Tm.incr m_bad_frames;
             err Protocol.Bad_request "truncated request payload"
         in
         Wire.write_frame fd (Protocol.encode_response resp)
     done
   with
  | Wire.Bad_frame _ ->
    (* garbage at the framing layer: answer if possible, then hang up *)
    Tm.incr m_bad_frames;
    (try
       Wire.write_frame fd
         (Protocol.encode_response (err Protocol.Bad_request "bad frame"))
     with _ -> ())
  | Unix.Unix_error _ | Sys_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let graceful_stop t =
  (* 1. stop accepting and tear the endpoints down *)
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.listeners;
  t.listeners <- [];
  if Sys.file_exists t.socket_path then (try Unix.unlink t.socket_path with _ -> ());
  (* 2. drain: every queued job still answers its client *)
  Scheduler.shutdown t.scheduler;
  (* 3. flush session state so a restart resumes warm *)
  Registry.flush_all t.registry;
  (* 4. park the worker domains *)
  Option.iter Pool.shutdown t.pool;
  Atomic.set t.is_running false

let run t =
  Atomic.set t.is_running true;
  (try
     while not (stopping t) do
       match Unix.select (t.stop_r :: t.listeners) [] [] (-1.0) with
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
       | readable, _, _ ->
         List.iter
           (fun fd ->
             if fd <> t.stop_r && not (stopping t) then begin
               match Unix.accept fd with
               | conn, _ ->
                 ignore (Thread.create (fun () -> handle_connection t conn) ())
               | exception Unix.Unix_error _ -> ()
             end)
           readable
     done
   with e ->
     graceful_stop t;
     raise e);
  graceful_stop t
