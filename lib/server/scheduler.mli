(** Multi-tenant request scheduler: per-session serialization, cross-session
    parallelism, per-tenant admission control.

    The scheduler owns a fixed set of {e executor domains}, each with its own
    FIFO queue. A job is routed by a stable hash of its session key, so every
    request for one session lands on one queue — that alone serializes a
    session without any per-session lock, while sessions hashed to different
    executors run concurrently. Executors submit their sessions' cone groups
    to the one shared {!Leakage_parallel.Pool} passed by the server; the
    pool's busy-flag contract makes concurrent submissions safe (the loser
    runs its region inline), so distinct sessions' disjoint cone groups
    multiplex onto one set of worker domains.

    Digest-affinity is also what keeps characterization caches warm: a
    session always re-estimates on the same executor domain, whose
    {!Leakage_core.Library} DLS cache it already filled (the publish-once
    snapshot covers the cross-executor case).

    Admission control is per tenant and two-layered. A {e token bucket}
    ([rate] tokens per second, capacity [burst], starting full) charges one
    token per request: a tenant may burst up to [burst] requests
    back-to-back, then sustain [rate] requests per second. Buckets refill
    lazily against the caller-supplied clock (every {!try_admit} and the
    server loop's {!tenant_tokens} tick). On top of that, the in-flight cap
    [quota] bounds {e concurrency}: at most [quota] requests queued or
    running per tenant, whatever the bucket holds. A rejection carries a
    [retry_after_s] hint — for a rate rejection, exactly how long until the
    bucket holds a whole token again — which the server forwards in the
    retriable [Over_quota] error frame so a well-behaved client sleeps just
    long enough instead of hammering. *)

type t

type admission =
  | Admitted  (** one token charged, one in-flight slot reserved *)
  | Rejected of { retry_after_s : float; reason : string }

val create :
  ?executors:int -> ?quota:int -> ?rate:float -> ?burst:float -> unit -> t
(** [executors] defaults to 2, [quota] (per-tenant in-flight cap) to 8.
    [rate] is the per-tenant sustained admission rate in requests/second
    (default [infinity] — token buckets off); [burst] the bucket capacity
    (default [max 1 rate] when the rate is finite). Raises
    [Invalid_argument] when executors/quota are below 1, [rate <= 0], or
    [burst < 1]. *)

val executors : t -> int

val quota : t -> int
(** The per-tenant in-flight cap this scheduler admits against. *)

val rate : t -> float
(** Sustained per-tenant admission rate (tokens/second; [infinity] = off). *)

val burst : t -> float
(** Token-bucket capacity. *)

val rate_limited : t -> bool
(** [true] iff a finite [rate] was configured. *)

val queue_depth : t -> int
(** Jobs queued (not yet running) across all executors, at this instant —
    an occupancy gauge, racy by nature. *)

val tenant_inflight : t -> (string * int) list
(** Tenants with at least one request in flight and their counts, sorted
    by tenant. *)

val tenant_tokens : ?now:float -> t -> (string * float) list
(** Refill every known tenant's bucket against [now] (default
    [Unix.gettimeofday ()]) and report the levels, sorted by tenant — what
    the server publishes as [serve.tenant_tokens] gauges on each select-loop
    tick. Empty before any tenant has been seen. *)

val try_admit : ?now:float -> t -> string -> admission
(** [try_admit t tenant] refills the tenant's bucket against [now], then
    charges one token and reserves one in-flight slot — or rejects with a
    retry-after hint when the tenant is out of tokens or at its in-flight
    quota (nothing is charged or reserved). Always pair an [Admitted] with
    {!release}. *)

val release : t -> string -> unit
(** Release the in-flight slot of one admitted request (tokens are spent,
    not returned — the bucket meters arrival rate, not completion). *)

val submit : t -> ?rid:string -> key:string -> (unit -> unit) -> unit
(** Enqueue a job on the executor owning [key] (stable hash). Jobs on one
    key run in submission order, one at a time. [rid] sets the executor
    domain's ambient request id ({!Leakage_telemetry.Log.with_rid}) around
    the job, so its log lines and spans carry the id. Raises
    [Invalid_argument] after {!shutdown}. A job must not raise; exceptions
    escaping it are caught and dropped after counting
    [serve.executor_job_errors]. *)

val shutdown : t -> unit
(** Drain: executors finish every queued job, then stop and join. Idempotent. *)
