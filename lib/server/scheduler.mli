(** Multi-tenant request scheduler: per-session serialization, cross-session
    parallelism, per-tenant admission control.

    The scheduler owns a fixed set of {e executor domains}, each with its own
    FIFO queue. A job is routed by a stable hash of its session key, so every
    request for one session lands on one queue — that alone serializes a
    session without any per-session lock, while sessions hashed to different
    executors run concurrently. Executors submit their sessions' cone groups
    to the one shared {!Leakage_parallel.Pool} passed by the server; the
    pool's busy-flag contract makes concurrent submissions safe (the loser
    runs its region inline), so distinct sessions' disjoint cone groups
    multiplex onto one set of worker domains.

    Digest-affinity is also what keeps characterization caches warm: a
    session always re-estimates on the same executor domain, whose
    {!Leakage_core.Library} DLS cache it already filled (the publish-once
    snapshot covers the cross-executor case).

    Admission control is per tenant: each tenant may have at most [quota]
    requests in flight (queued or running) across all sessions. {!try_admit}
    beyond the quota fails, and the server answers with a retriable
    [Over_quota] error frame instead of queueing unboundedly. *)

type t

val create : ?executors:int -> ?quota:int -> unit -> t
(** [executors] defaults to 2, [quota] (per-tenant in-flight cap) to 8.
    Raises [Invalid_argument] when either is below 1. *)

val executors : t -> int

val quota : t -> int
(** The per-tenant in-flight cap this scheduler admits against. *)

val queue_depth : t -> int
(** Jobs queued (not yet running) across all executors, at this instant —
    an occupancy gauge, racy by nature. *)

val tenant_inflight : t -> (string * int) list
(** Tenants with at least one request in flight and their counts, sorted
    by tenant. *)

val try_admit : t -> string -> bool
(** [try_admit t tenant] reserves one in-flight slot for [tenant]; [false]
    when the tenant is at quota (nothing is reserved). Always pair a [true]
    with {!release}. *)

val release : t -> string -> unit

val submit : t -> ?rid:string -> key:string -> (unit -> unit) -> unit
(** Enqueue a job on the executor owning [key] (stable hash). Jobs on one
    key run in submission order, one at a time. [rid] sets the executor
    domain's ambient request id ({!Leakage_telemetry.Log.with_rid}) around
    the job, so its log lines and spans carry the id. Raises
    [Invalid_argument] after {!shutdown}. A job must not raise; exceptions
    escaping it are caught and dropped after counting
    [serve.executor_job_errors]. *)

val shutdown : t -> unit
(** Drain: executors finish every queued job, then stop and join. Idempotent. *)
