module Tm = Leakage_telemetry.Telemetry
module Log = Leakage_telemetry.Log

let m_submitted = Tm.counter "serve.jobs_submitted"
let m_run = Tm.counter "serve.jobs_run"
let m_errors = Tm.counter "serve.executor_job_errors"

type executor = {
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  ready : Condition.t;
  mutable stopping : bool;
}

(* One tenant's admission state: a token bucket (refilled lazily against
   the clock the caller passes in) plus the in-flight count the bucket
   rides alongside. Buckets start full — a quiet tenant gets its whole
   burst at first contact. *)
type tenant_state = {
  mutable tokens : float;
  mutable refilled_at : float;
  mutable inflight : int;
}

type admission =
  | Admitted
  | Rejected of { retry_after_s : float; reason : string }

type t = {
  execs : executor array;
  domains : unit Domain.t array;
  quota : int;
  rate : float;  (* tokens per second; infinity = rate limiting off *)
  burst : float; (* bucket capacity *)
  tenants : (string, tenant_state) Hashtbl.t;
  tenants_mutex : Mutex.t;
  mutable stopped : bool;
}

let executor_loop e () =
  let running = ref true in
  while !running do
    Mutex.lock e.mutex;
    while Queue.is_empty e.queue && not e.stopping do
      Condition.wait e.ready e.mutex
    done;
    if Queue.is_empty e.queue then begin
      (* stopping and drained *)
      Mutex.unlock e.mutex;
      running := false
    end
    else begin
      let job = Queue.pop e.queue in
      Mutex.unlock e.mutex;
      Tm.incr m_run;
      (* Jobs carry their own error handling (they answer the client); a
         leak here must never kill the executor. *)
      try job () with _ -> Tm.incr m_errors
    end
  done

let create ?(executors = 2) ?(quota = 8) ?(rate = infinity) ?burst () =
  if executors < 1 then invalid_arg "Scheduler.create: executors >= 1";
  if quota < 1 then invalid_arg "Scheduler.create: quota >= 1";
  if rate <= 0.0 then invalid_arg "Scheduler.create: rate > 0";
  let burst =
    match burst with
    | Some b ->
      if b < 1.0 then invalid_arg "Scheduler.create: burst >= 1";
      b
    | None -> if Float.is_finite rate then Float.max 1.0 rate else infinity
  in
  let execs =
    Array.init executors (fun _ ->
        {
          queue = Queue.create ();
          mutex = Mutex.create ();
          ready = Condition.create ();
          stopping = false;
        })
  in
  {
    execs;
    domains = Array.map (fun e -> Domain.spawn (executor_loop e)) execs;
    quota;
    rate;
    burst;
    tenants = Hashtbl.create 16;
    tenants_mutex = Mutex.create ();
    stopped = false;
  }

let executors t = Array.length t.execs

let quota t = t.quota

let rate t = t.rate

let burst t = t.burst

let rate_limited t = Float.is_finite t.rate

let queue_depth t =
  Array.fold_left
    (fun acc e ->
      Mutex.lock e.mutex;
      let n = Queue.length e.queue in
      Mutex.unlock e.mutex;
      acc + n)
    0 t.execs

let tenant_inflight t =
  Mutex.lock t.tenants_mutex;
  let pairs =
    Hashtbl.fold
      (fun k s acc -> if s.inflight > 0 then (k, s.inflight) :: acc else acc)
      t.tenants []
  in
  Mutex.unlock t.tenants_mutex;
  List.sort compare pairs

(* FNV-1a over the key: stable across runs, so a session sticks to one
   executor (and that executor's warm library cache) for its whole life. *)
let route t key =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code c)))
          0x100000001b3L)
    key;
  t.execs.(Int64.to_int (Int64.logand !h 0x3fffffffL) mod Array.length t.execs)

let state_for t tenant ~now =
  match Hashtbl.find_opt t.tenants tenant with
  | Some s -> s
  | None ->
    let s = { tokens = t.burst; refilled_at = now; inflight = 0 } in
    Hashtbl.replace t.tenants tenant s;
    s

let refill t s ~now =
  if Float.is_finite t.rate then begin
    let dt = Float.max 0.0 (now -. s.refilled_at) in
    s.tokens <- Float.min t.burst (s.tokens +. (dt *. t.rate))
  end;
  s.refilled_at <- now

(* How long until the bucket holds one whole token again — the retry-after
   hint an Over_quota reply carries. *)
let refill_eta t s =
  if Float.is_finite t.rate then
    Float.max 0.0 ((1.0 -. s.tokens) /. t.rate)
  else 0.0

let try_admit ?now t tenant =
  let now = match now with Some n -> n | None -> Unix.gettimeofday () in
  Mutex.lock t.tenants_mutex;
  let s = state_for t tenant ~now in
  refill t s ~now;
  let verdict =
    if s.inflight >= t.quota then
      (* no clock-based ETA for a concurrency rejection: a slot frees when
         some request finishes, so suggest one scheduling quantum *)
      Rejected
        {
          retry_after_s = 0.005;
          reason =
            Printf.sprintf "is at its in-flight quota (%d)" t.quota;
        }
    else if Float.is_finite t.rate && s.tokens < 1.0 then
      Rejected
        {
          retry_after_s = refill_eta t s;
          reason =
            Printf.sprintf
              "exhausted its token bucket (rate %g/s, burst %g)" t.rate
              t.burst;
        }
    else begin
      if Float.is_finite t.rate then s.tokens <- s.tokens -. 1.0;
      s.inflight <- s.inflight + 1;
      Admitted
    end
  in
  Mutex.unlock t.tenants_mutex;
  verdict

let release t tenant =
  Mutex.lock t.tenants_mutex;
  (match Hashtbl.find_opt t.tenants tenant with
  | Some s -> s.inflight <- Int.max 0 (s.inflight - 1)
  | None -> ());
  Mutex.unlock t.tenants_mutex

(* Refill every bucket against [now] and report levels — the select loop
   calls this on its tick so idle tenants' buckets keep filling and the
   serve.tenant_tokens gauges track the truth, not the last admit. *)
let tenant_tokens ?now t =
  let now = match now with Some n -> n | None -> Unix.gettimeofday () in
  Mutex.lock t.tenants_mutex;
  let pairs =
    Hashtbl.fold
      (fun k s acc ->
        refill t s ~now;
        (k, s.tokens) :: acc)
      t.tenants []
  in
  Mutex.unlock t.tenants_mutex;
  List.sort compare pairs

let submit t ?rid ~key job =
  if t.stopped then invalid_arg "Scheduler.submit: shut down";
  (* the executor domain runs one job at a time, so setting the ambient
     request id around the job tags every log line and span inside it *)
  let job =
    match rid with
    | None -> job
    | Some rid -> fun () -> Log.with_rid rid job
  in
  let e = route t key in
  Mutex.lock e.mutex;
  if e.stopping then begin
    Mutex.unlock e.mutex;
    invalid_arg "Scheduler.submit: shut down"
  end;
  Queue.push job e.queue;
  Tm.incr m_submitted;
  Condition.signal e.ready;
  Mutex.unlock e.mutex

let shutdown t =
  if not t.stopped then begin
    t.stopped <- true;
    Array.iter
      (fun e ->
        Mutex.lock e.mutex;
        e.stopping <- true;
        Condition.broadcast e.ready;
        Mutex.unlock e.mutex)
      t.execs;
    Array.iter Domain.join t.domains
  end
