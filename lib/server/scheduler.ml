module Tm = Leakage_telemetry.Telemetry
module Log = Leakage_telemetry.Log

let m_submitted = Tm.counter "serve.jobs_submitted"
let m_run = Tm.counter "serve.jobs_run"
let m_errors = Tm.counter "serve.executor_job_errors"

type executor = {
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  ready : Condition.t;
  mutable stopping : bool;
}

type t = {
  execs : executor array;
  domains : unit Domain.t array;
  quota : int;
  tenants : (string, int) Hashtbl.t;
  tenants_mutex : Mutex.t;
  mutable stopped : bool;
}

let executor_loop e () =
  let running = ref true in
  while !running do
    Mutex.lock e.mutex;
    while Queue.is_empty e.queue && not e.stopping do
      Condition.wait e.ready e.mutex
    done;
    if Queue.is_empty e.queue then begin
      (* stopping and drained *)
      Mutex.unlock e.mutex;
      running := false
    end
    else begin
      let job = Queue.pop e.queue in
      Mutex.unlock e.mutex;
      Tm.incr m_run;
      (* Jobs carry their own error handling (they answer the client); a
         leak here must never kill the executor. *)
      try job () with _ -> Tm.incr m_errors
    end
  done

let create ?(executors = 2) ?(quota = 8) () =
  if executors < 1 then invalid_arg "Scheduler.create: executors >= 1";
  if quota < 1 then invalid_arg "Scheduler.create: quota >= 1";
  let execs =
    Array.init executors (fun _ ->
        {
          queue = Queue.create ();
          mutex = Mutex.create ();
          ready = Condition.create ();
          stopping = false;
        })
  in
  {
    execs;
    domains = Array.map (fun e -> Domain.spawn (executor_loop e)) execs;
    quota;
    tenants = Hashtbl.create 16;
    tenants_mutex = Mutex.create ();
    stopped = false;
  }

let executors t = Array.length t.execs

let quota t = t.quota

let queue_depth t =
  Array.fold_left
    (fun acc e ->
      Mutex.lock e.mutex;
      let n = Queue.length e.queue in
      Mutex.unlock e.mutex;
      acc + n)
    0 t.execs

let tenant_inflight t =
  Mutex.lock t.tenants_mutex;
  let pairs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tenants [] in
  Mutex.unlock t.tenants_mutex;
  List.sort compare pairs

(* FNV-1a over the key: stable across runs, so a session sticks to one
   executor (and that executor's warm library cache) for its whole life. *)
let route t key =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code c)))
          0x100000001b3L)
    key;
  t.execs.(Int64.to_int (Int64.logand !h 0x3fffffffL) mod Array.length t.execs)

let try_admit t tenant =
  Mutex.lock t.tenants_mutex;
  let current = Option.value ~default:0 (Hashtbl.find_opt t.tenants tenant) in
  let admitted = current < t.quota in
  if admitted then Hashtbl.replace t.tenants tenant (current + 1);
  Mutex.unlock t.tenants_mutex;
  admitted

let release t tenant =
  Mutex.lock t.tenants_mutex;
  (match Hashtbl.find_opt t.tenants tenant with
  | Some n when n > 1 -> Hashtbl.replace t.tenants tenant (n - 1)
  | Some _ -> Hashtbl.remove t.tenants tenant
  | None -> ());
  Mutex.unlock t.tenants_mutex

let submit t ?rid ~key job =
  if t.stopped then invalid_arg "Scheduler.submit: shut down";
  (* the executor domain runs one job at a time, so setting the ambient
     request id around the job tags every log line and span inside it *)
  let job =
    match rid with
    | None -> job
    | Some rid -> fun () -> Log.with_rid rid job
  in
  let e = route t key in
  Mutex.lock e.mutex;
  if e.stopping then begin
    Mutex.unlock e.mutex;
    invalid_arg "Scheduler.submit: shut down"
  end;
  Queue.push job e.queue;
  Tm.incr m_submitted;
  Condition.signal e.ready;
  Mutex.unlock e.mutex

let shutdown t =
  if not t.stopped then begin
    t.stopped <- true;
    Array.iter
      (fun e ->
        Mutex.lock e.mutex;
        e.stopping <- true;
        Condition.broadcast e.ready;
        Mutex.unlock e.mutex)
      t.execs;
    Array.iter Domain.join t.domains
  end
