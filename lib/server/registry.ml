module Netlist = Leakage_circuit.Netlist
module Logic = Leakage_circuit.Logic
module Gate = Leakage_circuit.Gate
module Bench_format = Leakage_circuit.Bench_format
module Library = Leakage_core.Library
module Incremental = Leakage_incremental.Incremental
module Suite = Leakage_benchmarks.Suite
module Tm = Leakage_telemetry.Telemetry

let m_opened = Tm.counter "serve.sessions_opened"
let m_attached = Tm.counter "serve.sessions_attached"
let m_restored = Tm.counter "serve.sessions_restored"
let m_adopted = Tm.counter "serve.sessions_adopted"
let m_shipped = Tm.counter "serve.checkpoints_shipped"
let m_evicted = Tm.counter "serve.sessions_evicted"
let m_closed = Tm.counter "serve.sessions_closed"
let m_checkpoints = Tm.counter "serve.checkpoints_written"

type spec = {
  circuit : Protocol.circuit_spec;
  device_name : string;
  device : Leakage_device.Params.t;
  temp_c : float;
}

type session = {
  id : int;
  key : string;
  digest : string;
  spec : spec;
  lib : Library.t;
  incr : Incremental.t;
  checkpoints : (int, Incremental.checkpoint) Hashtbl.t;
  mutable next_checkpoint : int;
  mutable last_used : float;
  mutable in_flight : int;
  mutable closed : bool;
}

type t = {
  state_dir : string option;
  peer_dir : string option;
  max_sessions : int;
  by_key : (string, session) Hashtbl.t;
  by_id : (int, session) Hashtbl.t;
  libs : (string, Library.t) Hashtbl.t;  (* one library per corner *)
  mutex : Mutex.t;
  mutable next_id : int;
}

let ensure_dir = function
  | Some dir when not (Sys.file_exists dir) -> Unix.mkdir dir 0o755
  | _ -> ()

let create ?state_dir ?peer_dir ?(max_sessions = 8) () =
  if max_sessions < 1 then invalid_arg "Registry.create: max_sessions >= 1";
  ensure_dir state_dir;
  ensure_dir peer_dir;
  {
    state_dir;
    peer_dir;
    max_sessions;
    by_key = Hashtbl.create 16;
    by_id = Hashtbl.create 16;
    libs = Hashtbl.create 4;
    mutex = Mutex.create ();
    next_id = 1;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* ----------------------------------------------------------- resolving *)

type resolved = {
  rspec : spec;
  netlist : Netlist.t;
  rdigest : string;
  rkey : string;
}

let corner_key spec = Printf.sprintf "%s@%.6g" spec.device_name spec.temp_c

let resolve t spec =
  let netlist =
    match spec.circuit with
    | Protocol.Builtin label -> (Suite.find label).Suite.build ()
    | Protocol.Bench { name; text } -> Bench_format.parse_string ~name text
  in
  Netlist.warm netlist;
  let rdigest = Netlist.digest netlist in
  let rkey = rdigest ^ "@" ^ corner_key spec in
  ignore t;
  { rspec = spec; netlist; rdigest; rkey }

let library_for t spec =
  locked t (fun () ->
      let ck = corner_key spec in
      match Hashtbl.find_opt t.libs ck with
      | Some lib -> lib
      | None ->
        let lib =
          Library.create ~device:spec.device
            ~temp:(Leakage_device.Physics.celsius_to_kelvin spec.temp_c) ()
        in
        Hashtbl.replace t.libs ck lib;
        lib)

(* ----------------------------------------------------- disk checkpoints *)

let ckpt_magic = "LKC1"
let ckpt_version = 1

let sanitize key =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '-' | '_' -> c
      | _ -> '-')
    key

let ckpt_file dir key = Filename.concat dir (sanitize key ^ ".ckpt")

let ckpt_path t key = Option.map (fun dir -> ckpt_file dir key) t.state_dir

let encode_checkpoint session =
  let b = Buffer.create 4096 in
  Buffer.add_string b ckpt_magic;
  Wire.put_u8 b ckpt_version;
  Wire.put_string b session.digest;
  Wire.put_string b session.spec.device_name;
  Wire.put_f64 b session.spec.temp_c;
  (match session.spec.circuit with
   | Protocol.Builtin label ->
     Wire.put_u8 b 0;
     Wire.put_string b label
   | Protocol.Bench { name; text } ->
     Wire.put_u8 b 1;
     Wire.put_string b name;
     Wire.put_string b text);
  Wire.put_string b (Logic.vector_to_string (Incremental.pattern session.incr));
  let nl = Incremental.current_netlist session.incr in
  let n = Netlist.gate_count nl in
  Wire.put_u32 b n;
  for g = 0 to n - 1 do
    Wire.put_string b (Gate.name (Netlist.gate_kind nl g));
    Wire.put_f64 b (Netlist.gate_strength nl g)
  done;
  Buffer.contents b

(* A checkpoint restores state, not history: stored are the spec, the
   current kinds/strengths and the input vector — enough to rebuild the
   session's exact estimate, nothing of the undo log. *)
let decode_checkpoint text =
  let r = Wire.reader text in
  let b0 = Wire.get_u8 r in
  let b1 = Wire.get_u8 r in
  let b2 = Wire.get_u8 r in
  let b3 = Wire.get_u8 r in
  let m =
    let s = Bytes.create 4 in
    List.iteri (fun i c -> Bytes.set s i (Char.chr c)) [ b0; b1; b2; b3 ];
    Bytes.to_string s
  in
  if m <> ckpt_magic then raise (Wire.Bad_frame "checkpoint magic");
  let v = Wire.get_u8 r in
  if v <> ckpt_version then
    raise (Wire.Bad_frame (Printf.sprintf "checkpoint version %d" v));
  let digest = Wire.get_string r in
  let device_name = Wire.get_string r in
  let temp_c = Wire.get_f64 r in
  let circuit =
    match Wire.get_u8 r with
    | 0 -> Protocol.Builtin (Wire.get_string r)
    | 1 ->
      let name = Wire.get_string r in
      let text = Wire.get_string r in
      Protocol.Bench { name; text }
    | t -> raise (Wire.Bad_frame (Printf.sprintf "checkpoint circuit tag %d" t))
  in
  let pattern = Wire.get_string r in
  let n = Wire.get_u32 r in
  let gates =
    Array.init n (fun _ ->
        let kind = Gate.of_name (Wire.get_string r) in
        let strength = Wire.get_f64 r in
        (kind, strength))
  in
  Wire.expect_end r;
  (digest, device_name, temp_c, circuit, pattern, gates)

(* tmp-in-same-dir + rename: readers (this daemon or a peer adopting the
   session) only ever see a complete checkpoint, never a partial write *)
let write_atomic path text =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc text);
  Sys.rename tmp path

let checkpoint_to_disk t session =
  if t.state_dir <> None || t.peer_dir <> None then begin
    let text = encode_checkpoint session in
    (match ckpt_path t session.key with
     | None -> ()
     | Some path ->
       write_atomic path text;
       Tm.incr m_checkpoints);
    (* ship the same bytes into the shared peer directory so a second
       daemon can adopt the session the moment this one dies *)
    match t.peer_dir with
    | None -> ()
    | Some dir ->
      (match write_atomic (ckpt_file dir session.key) text with
       | () -> Tm.incr m_shipped
       | exception (Sys_error _ | Unix.Unix_error _) ->
         (* a full or vanished peer volume must not fail the request — the
            local checkpoint already landed *)
         ())
  end

type ckpt_source = Local | Peer

let read_checkpoint_file path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match decode_checkpoint text with
    | ckpt -> Some ckpt
    | exception (Wire.Bad_frame _ | Wire.Truncated | Invalid_argument _) ->
      (* a corrupt checkpoint never blocks an open — fall back to cold *)
      None
  end

(* Newest decodable checkpoint wins across the local state dir and the
   shared peer dir: a daemon restarted onto a stale local state dir must
   still adopt the fresher checkpoint its peer shipped, and vice versa. *)
let read_checkpoint t key =
  let candidate source = function
    | None -> None
    | Some dir ->
      let path = ckpt_file dir key in
      (match Unix.stat path with
       | st -> Some (st.Unix.st_mtime, source, path)
       | exception Unix.Unix_error _ -> None)
  in
  let candidates =
    List.filter_map Fun.id
      [ candidate Local t.state_dir; candidate Peer t.peer_dir ]
    |> List.sort (fun (a, _, _) (b, _, _) -> Float.compare b a)
  in
  List.find_map
    (fun (_, source, path) ->
      match read_checkpoint_file path with
      | Some ckpt -> Some (source, ckpt)
      | None | (exception (Sys_error _ | Unix.Unix_error _)) -> None)
    candidates

(* ------------------------------------------------------------- opening *)

let parse_pattern netlist = function
  | "" -> Array.make (Array.length (Netlist.inputs netlist)) Logic.Zero
  | bits ->
    let width = Array.length (Netlist.inputs netlist) in
    if String.length bits <> width then
      invalid_arg
        (Printf.sprintf "pattern needs %d bits, got %d" width
           (String.length bits));
    Logic.vector_of_string bits

let evict_idle_locked t ~keep =
  while
    Hashtbl.length t.by_key > t.max_sessions
    &&
    (* LRU among idle sessions, never the one just opened *)
    match
      Hashtbl.fold
        (fun _ s best ->
          if s.id = keep || s.in_flight > 0 then best
          else
            match best with
            | Some b when b.last_used <= s.last_used -> best
            | _ -> Some s)
        t.by_key None
    with
    | None -> false
    | Some victim ->
      checkpoint_to_disk t victim;
      victim.closed <- true;
      Hashtbl.remove t.by_key victim.key;
      Hashtbl.remove t.by_id victim.id;
      Tm.incr m_evicted;
      true
  do
    ()
  done

let install t session =
  locked t (fun () ->
      Hashtbl.replace t.by_key session.key session;
      Hashtbl.replace t.by_id session.id session;
      evict_idle_locked t ~keep:session.id)

let fresh_id t = locked t (fun () ->
    let id = t.next_id in
    t.next_id <- id + 1;
    id)

let make_session t resolved ~lib ~incr =
  {
    id = fresh_id t;
    key = resolved.rkey;
    digest = resolved.rdigest;
    spec = resolved.rspec;
    lib;
    incr;
    checkpoints = Hashtbl.create 8;
    next_checkpoint = 1;
    last_used = Unix.gettimeofday ();
    in_flight = 0;
    closed = false;
  }

let open_session ?pool t resolved ~pattern =
  match locked t (fun () -> Hashtbl.find_opt t.by_key resolved.rkey) with
  | Some session ->
    session.last_used <- Unix.gettimeofday ();
    if pattern <> "" then
      Incremental.set_vector ?pool session.incr
        (parse_pattern resolved.netlist pattern);
    Tm.incr m_attached;
    (session, Protocol.Warm)
  | None ->
    let lib = library_for t resolved.rspec in
    (match read_checkpoint t resolved.rkey with
     | Some (source, (digest, _, _, _, ckpt_pattern, kinds))
       when digest = resolved.rdigest
            && Array.length kinds = Netlist.gate_count resolved.netlist ->
       (* restore: replay the stored kinds/strengths onto the freshly built
          base netlist and open the session in that state *)
       let nl' =
         Netlist.with_kinds_strengths resolved.netlist
           ~kinds:(Array.map fst kinds)
           ~strengths:(Array.map snd kinds)
       in
       Netlist.warm nl';
       let vec =
         if pattern <> "" then parse_pattern resolved.netlist pattern
         else Logic.vector_of_string ckpt_pattern
       in
       let incr = Incremental.create lib nl' vec in
       let session = make_session t resolved ~lib ~incr in
       install t session;
       (* a restored session is durable again under the new daemon's own
          dirs right away, not only after its first applied batch *)
       checkpoint_to_disk t session;
       Tm.incr m_restored;
       if source = Peer then Tm.incr m_adopted;
       (session, Protocol.Restored)
     | _ ->
       let vec = parse_pattern resolved.netlist pattern in
       let incr = Incremental.create lib resolved.netlist vec in
       let session = make_session t resolved ~lib ~incr in
       install t session;
       checkpoint_to_disk t session;
       Tm.incr m_opened;
       (session, Protocol.Cold))

let find t id =
  locked t (fun () ->
      match Hashtbl.find_opt t.by_id id with
      | Some s when not s.closed -> Some s
      | _ -> None)

let begin_request t session =
  locked t (fun () ->
      session.in_flight <- session.in_flight + 1;
      session.last_used <- Unix.gettimeofday ())

let end_request t session =
  locked t (fun () ->
      session.in_flight <- max 0 (session.in_flight - 1);
      session.last_used <- Unix.gettimeofday ())

let close_session t session =
  checkpoint_to_disk t session;
  locked t (fun () ->
      session.closed <- true;
      Hashtbl.remove t.by_key session.key;
      Hashtbl.remove t.by_id session.id);
  Tm.incr m_closed

let live_sessions t =
  locked t (fun () -> Hashtbl.fold (fun _ s acc -> s :: acc) t.by_key [])

let live_count t = locked t (fun () -> Hashtbl.length t.by_key)

let flush_all t = List.iter (checkpoint_to_disk t) (live_sessions t)
