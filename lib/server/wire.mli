(** Length-prefixed binary framing for the [leakctl serve] protocol.

    Every message on the wire is one frame:

    {v
      +-------+---------+--------+-------------+-----------------+
      | magic | version | opcode | payload len | payload         |
      | 4 B   | 1 B     | 1 B    | 4 B (BE)    | payload-len B   |
      +-------+---------+--------+-------------+-----------------+
    v}

    The magic ["LKS1"] and the version byte make accidental cross-protocol
    connections fail fast with {!Bad_frame} instead of hanging half-parsed;
    the length prefix (big-endian, capped at {!max_payload}) lets a reader
    consume exactly one frame without lookahead. Payload contents are opaque
    here — {!Protocol} gives them meaning.

    Primitive codecs write into a [Buffer.t] and read through a {!reader}
    cursor; integers are big-endian, floats are IEEE-754 bit patterns
    ([Int64.bits_of_float]), strings are [u32]-length-prefixed bytes. *)

exception Truncated
(** The input ended inside a field or frame. *)

exception Bad_frame of string
(** Structurally invalid input: wrong magic, unsupported version, oversized
    payload declaration, unknown opcode, or trailing bytes. *)

exception Timeout
(** A [deadline] passed while waiting for bytes (or [SO_RCVTIMEO] expired
    under a blocked read). The stream may now be desynchronized — the frame
    could still arrive later — so a transport that sees this must not reuse
    the connection (see {!Client} poisoning). *)

val magic : string
val version : int

val max_payload : int
(** Upper bound on a declared payload length (64 MiB). A length beyond it is
    rejected as {!Bad_frame} before any allocation. *)

val header_size : int
(** Bytes before the payload: magic + version + opcode + length. *)

type frame = { op : int; payload : string }

(** {2 Primitive codecs} *)

val put_u8 : Buffer.t -> int -> unit
val put_u32 : Buffer.t -> int -> unit
(** Raises [Invalid_argument] outside [\[0, 2^32)]. *)

val put_u64 : Buffer.t -> int64 -> unit
val put_f64 : Buffer.t -> float -> unit
val put_bool : Buffer.t -> bool -> unit
val put_string : Buffer.t -> string -> unit

type reader
(** A read cursor over an immutable string. All [get_*] raise {!Truncated}
    when fewer bytes remain than the field needs. *)

val reader : string -> reader
val get_u8 : reader -> int
val get_u32 : reader -> int
val get_u64 : reader -> int64
val get_f64 : reader -> float
val get_bool : reader -> bool
(** Raises {!Bad_frame} on a byte other than 0 or 1. *)

val get_string : reader -> string
val at_end : reader -> bool

val expect_end : reader -> unit
(** Raises {!Bad_frame} unless the cursor consumed its whole input — a
    decoded message must account for every payload byte. *)

(** {2 Frames} *)

val frame_to_string : frame -> string

val frame_of_string : string -> frame
(** Decode exactly one frame spanning the whole string. Raises {!Bad_frame}
    / {!Truncated} as appropriate. *)

val decode_frame : string -> pos:int -> frame * int
(** Decode one frame starting at [pos]; returns it with the offset just past
    it (streaming decode). *)

(** {2 Blocking socket transport} *)

val read_frame : ?deadline:float -> Unix.file_descr -> frame
(** Read exactly one frame. Raises [End_of_file] on a clean EOF at a frame
    boundary, {!Truncated} on EOF inside a frame, {!Bad_frame} on garbage.
    Interrupted reads ([EINTR]) are retried, never surfaced — a signal must
    not desync a half-read stream. [deadline] is an absolute
    [Unix.gettimeofday] time; past it, waiting raises {!Timeout}. *)

val write_frame : Unix.file_descr -> frame -> unit
(** Write the whole frame. Loops over short writes, retries [EINTR], and
    waits for writability on a zero-length write — a frame is either fully
    sent or the call raises; it is never silently truncated. *)
