(** Warm-session registry: the daemon's map from netlist digest to a live
    {!Leakage_incremental.Incremental} session.

    Sessions are keyed by [(Netlist.digest, device corner, temperature)] —
    never by how the client described the circuit — so a second client
    opening the same netlist (by built-in name, or byte-different [.bench]
    text describing the same structure) attaches to the already-warm session
    instead of paying for characterization and a cold estimate again.

    The registry holds at most [max_sessions] live sessions; opening one
    more evicts the least-recently-used {e idle} session (no queued or
    running request), writing its state to [state_dir] first. An evicted —
    or killed — session restores from that checkpoint on the next open:
    the base netlist is rebuilt from the stored spec, the current gate
    kinds/strengths and input vector are replayed onto it, and a fresh
    session opens in that exact state. What does {e not} survive eviction
    is the undo log: protocol checkpoints taken before an eviction are
    gone, and rolling back to one fails with [Unknown_checkpoint].

    Thread safety: the registry's maps are mutex-protected and may be used
    from any thread or domain. Sessions themselves are {e not} internally
    synchronized — the scheduler guarantees at most one request runs per
    session at a time (see {!Scheduler}). *)

module Incremental = Leakage_incremental.Incremental

type spec = {
  circuit : Protocol.circuit_spec;
  device_name : string;
  device : Leakage_device.Params.t;
  temp_c : float;
}

type session = {
  id : int;
  key : string;
  digest : string;
  spec : spec;
  lib : Leakage_core.Library.t;
  incr : Incremental.t;
  checkpoints : (int, Incremental.checkpoint) Hashtbl.t;
  mutable next_checkpoint : int;
  mutable last_used : float;
  mutable in_flight : int;  (** requests queued or running on this session *)
  mutable closed : bool;
}

type t

val create :
  ?state_dir:string -> ?peer_dir:string -> ?max_sessions:int -> unit -> t
(** [max_sessions] defaults to 8. [state_dir] (created if missing) enables
    checkpoint-to-disk; without it eviction simply drops sessions and
    nothing survives a restart.

    [peer_dir] (created if missing) is a directory {e shared between
    daemons}: every checkpoint written to [state_dir] is also shipped there
    atomically (tmp + rename, so a reader never sees a partial file), and
    an open that misses both the live table and the local [state_dir]
    {e adopts} the newest matching checkpoint found in [peer_dir]. Between
    checkpoints the newest by mtime wins, wherever it lives — a daemon
    restarted over a stale [state_dir] picks up the fresher peer copy.
    This is the failover path: SIGKILL daemon A, and a client retrying
    against daemon B re-opens the same digest warm from A's last shipped
    checkpoint, losing at most the batch that was in flight.
    [serve.sessions_adopted] counts peer adoptions,
    [serve.checkpoints_shipped] the mirrored writes; a failed peer write
    (full or vanished volume) is ignored — the local checkpoint already
    landed. *)

type resolved = {
  rspec : spec;
  netlist : Leakage_circuit.Netlist.t;
  rdigest : string;
  rkey : string;
}

val resolve : t -> spec -> resolved
(** Build the netlist a spec describes and derive its registry key. Raises
    [Not_found] for an unknown built-in label, [Parse_error]/[Failure] for
    bad [.bench] text. Cheap relative to opening: no estimation happens
    here, so connection threads can afford it for request routing. *)

val open_session :
  ?pool:Leakage_parallel.Pool.t ->
  t -> resolved -> pattern:string ->
  session * Protocol.session_status
(** Attach to the live session under the resolved key, restore it from disk,
    or create it cold (one full estimate) — in that order of preference.
    [pattern] is a bit string over the primary inputs; [""] means all-zeros
    on a cold/restored open and "keep the current vector" on a warm attach.
    A non-empty pattern moves a warm session with [Incremental.set_vector].
    Raises [Invalid_argument] on a malformed pattern. *)

val find : t -> int -> session option
(** Look a live session up by id ([None] after close or eviction). *)

val begin_request : t -> session -> unit
val end_request : t -> session -> unit
(** Bracket a queued-or-running request: while [in_flight > 0] the session
    is never an eviction victim. Both touch [last_used]. *)

val checkpoint_to_disk : t -> session -> unit
(** Persist the session's current state (spec, gate kinds/strengths, input
    vector) atomically into [state_dir], and ship the same bytes into
    [peer_dir] when one is configured; a no-op without either. The daemon
    calls this after every applied batch, so a kill mid-batch loses at most
    the in-flight batch. *)

val close_session : t -> session -> unit
(** Remove from the registry (final state is checkpointed first). *)

val flush_all : t -> unit
(** Checkpoint every live session — the graceful-shutdown path. *)

val live_count : t -> int
val live_sessions : t -> session list
