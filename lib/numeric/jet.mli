(** Order-2 univariate jets (forward-mode automatic differentiation).

    A jet carries a value together with its first and second derivative with
    respect to one scalar seed. Running a closed-form model on jets produces
    the model's exact analytic derivatives — no finite-difference step-size
    noise — which is what the variance-propagation layer differentiates the
    compact device models with. The finite-difference oracle in the test
    suite cross-checks every derivative produced this way. *)

type t = {
  v : float;   (** value *)
  d : float;   (** first derivative w.r.t. the seed *)
  dd : float;  (** second derivative w.r.t. the seed *)
}

val const : float -> t
(** A constant: zero first and second derivative. *)

val var : float -> t
(** The seed variable itself: derivative 1, curvature 0. *)

val make : v:float -> d:float -> dd:float -> t

val value : t -> float
val deriv : t -> float
val second : t -> float

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val div : t -> t -> t
val inv : t -> t
(** Multiplicative inverse. *)

val scale : float -> t -> t
val add_const : float -> t -> t

val exp : t -> t
val log1p : t -> t
val sqrt : t -> t

val pow_const : t -> float -> t
(** [pow_const x p] is [x ** p] for a constant exponent. *)

val abs : t -> t
(** Branches on the value's sign (kink at 0, like [abs_float]). *)

val min_const : float -> t -> t
(** [min_const k x] is [x] where [x.v <= k], else the constant [k] —
    mirrors saturation branches in the device model. *)

val logistic : t -> t
(** Mirrors the device model's saturating logistic (exactly constant beyond
    ±40, so derivatives vanish there). *)

val lift : f:float -> f':float -> f'':float -> t -> t
(** Chain rule for a custom scalar function: [lift ~f ~f' ~f'' x] composes a
    function with value [f] and derivatives [f'], [f''] at [x.v]. *)
