(** Table interpolation used by the gate characterization layer.

    Characterization produces leakage samples on regular grids of loading
    current; estimation interpolates those tables. Queries outside the grid
    are clamped to the boundary (loading currents beyond the characterized
    range saturate rather than extrapolate, which is the conservative choice
    for leakage). *)

type grid1d
(** Piecewise-linear function of one variable sampled on a strictly
    increasing axis. *)

val grid1d : xs:float array -> ys:float array -> grid1d
(** Build a 1-D table. Raises [Invalid_argument] if the axes mismatch in
    length, have fewer than 2 points, or [xs] is not strictly increasing. *)

val eval1d : grid1d -> float -> float
(** Linear interpolation with boundary clamping. Raises [Invalid_argument]
    on a NaN coordinate. *)

val grid1d_xs : grid1d -> float array
val grid1d_ys : grid1d -> float array

type grid2d
(** Bilinear function of two variables on a rectangular grid. *)

val grid2d : xs:float array -> ys:float array -> values:float array array -> grid2d
(** [values.(i).(j)] is the sample at [(xs.(i), ys.(j))]. Raises
    [Invalid_argument] on ragged or mismatched inputs. *)

val eval2d : grid2d -> float -> float -> float
(** Bilinear interpolation with boundary clamping on both axes. Raises
    [Invalid_argument] if either coordinate is NaN. *)

val linspace : float -> float -> int -> float array
(** [linspace lo hi n] is [n >= 2] equally spaced points from [lo] to [hi]
    inclusive. *)

val tabulate1d : xs:float array -> f:(float -> float) -> grid1d
(** Sample [f] on [xs]. *)

val tabulate2d :
  xs:float array -> ys:float array -> f:(float -> float -> float) -> grid2d
