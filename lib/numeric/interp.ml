type grid1d = { xs : float array; ys : float array }

let check_axis name xs =
  if Array.length xs < 2 then invalid_arg (name ^ ": need at least 2 points");
  for i = 0 to Array.length xs - 2 do
    if xs.(i + 1) <= xs.(i) then
      invalid_arg (name ^ ": axis must be strictly increasing")
  done

let grid1d ~xs ~ys =
  check_axis "Interp.grid1d" xs;
  if Array.length xs <> Array.length ys then
    invalid_arg "Interp.grid1d: xs/ys length mismatch";
  { xs = Array.copy xs; ys = Array.copy ys }

let grid1d_xs g = Array.copy g.xs
let grid1d_ys g = Array.copy g.ys

(* Index i such that xs.(i) <= x < xs.(i+1), clamped to valid segments. *)
let segment xs x =
  let n = Array.length xs in
  if x <= xs.(0) then 0
  else if x >= xs.(n - 1) then n - 2
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if xs.(mid) <= x then lo := mid else hi := mid
    done;
    !lo
  end

let eval1d g x =
  (* A NaN coordinate fails every segment comparison and would silently
     interpolate garbage. *)
  if Float.is_nan x then invalid_arg "Interp.eval1d: NaN coordinate";
  let n = Array.length g.xs in
  if x <= g.xs.(0) then g.ys.(0)
  else if x >= g.xs.(n - 1) then g.ys.(n - 1)
  else begin
    let i = segment g.xs x in
    let t = (x -. g.xs.(i)) /. (g.xs.(i + 1) -. g.xs.(i)) in
    (g.ys.(i) *. (1.0 -. t)) +. (g.ys.(i + 1) *. t)
  end

type grid2d = { gx : float array; gy : float array; v : float array array }

let grid2d ~xs ~ys ~values =
  check_axis "Interp.grid2d (xs)" xs;
  check_axis "Interp.grid2d (ys)" ys;
  if Array.length values <> Array.length xs then
    invalid_arg "Interp.grid2d: values row count mismatch";
  Array.iter
    (fun row ->
      if Array.length row <> Array.length ys then
        invalid_arg "Interp.grid2d: values column count mismatch")
    values;
  { gx = Array.copy xs; gy = Array.copy ys; v = Array.map Array.copy values }

let clamp lo hi x = if x < lo then lo else if x > hi then hi else x

let eval2d g x y =
  if Float.is_nan x || Float.is_nan y then
    invalid_arg "Interp.eval2d: NaN coordinate";
  let nx = Array.length g.gx and ny = Array.length g.gy in
  let x = clamp g.gx.(0) g.gx.(nx - 1) x in
  let y = clamp g.gy.(0) g.gy.(ny - 1) y in
  let i = segment g.gx x and j = segment g.gy y in
  let tx = (x -. g.gx.(i)) /. (g.gx.(i + 1) -. g.gx.(i)) in
  let ty = (y -. g.gy.(j)) /. (g.gy.(j + 1) -. g.gy.(j)) in
  let v00 = g.v.(i).(j)
  and v10 = g.v.(i + 1).(j)
  and v01 = g.v.(i).(j + 1)
  and v11 = g.v.(i + 1).(j + 1) in
  (v00 *. (1.0 -. tx) *. (1.0 -. ty))
  +. (v10 *. tx *. (1.0 -. ty))
  +. (v01 *. (1.0 -. tx) *. ty)
  +. (v11 *. tx *. ty)

let linspace lo hi n =
  if n < 2 then invalid_arg "Interp.linspace: need n >= 2";
  let step = (hi -. lo) /. float_of_int (n - 1) in
  Array.init n (fun i ->
      if i = n - 1 then hi else lo +. (float_of_int i *. step))

let tabulate1d ~xs ~f = grid1d ~xs ~ys:(Array.map f xs)

let tabulate2d ~xs ~ys ~f =
  let values =
    Array.map (fun x -> Array.map (fun y -> f x y) ys) xs
  in
  grid2d ~xs ~ys ~values
