(** Descriptive statistics and histograms for Monte-Carlo leakage analysis. *)

val mean : float array -> float
(** Arithmetic mean. Raises [Invalid_argument] on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); 0 for arrays of length < 2. *)

val std : float array -> float
(** Sample standard deviation, [sqrt (variance a)]. *)

val erf : float -> float
(** Gauss error function (Abramowitz & Stegun 7.1.26 rational
    approximation; absolute error below 1.5e-7). *)

val norm_cdf : float -> float
(** Standard normal CDF — the building block of the analytic variance
    propagation's exact Gaussian segment integrals. Mid-range via [erf]
    (absolute error below 1.5e-7); below z = -2.5 via a Mills-ratio
    continued fraction, so the deep lower tail keeps {e relative} accuracy
    arbitrarily far out instead of drowning in the polynomial's absolute
    error bound. *)

val log_norm_cdf : float -> float
(** [log (norm_cdf z)], never overflowing to [-infinity] for finite [z]:
    the deep tail evaluates [-z²/2 - log √(2π) + log R(|z|)] directly.
    Lets callers carry Gaussian masses with huge exponential prefactors
    (steep-table moment segments) entirely in log space. *)

val min_max : float array -> float * float
(** Smallest and largest element. Raises [Invalid_argument] on empty input. *)

val percentile : float array -> float -> float
(** [percentile a p] for [p] in [\[0,100\]], linear interpolation between
    order statistics. Does not modify [a]. *)

val median : float array -> float
(** [percentile a 50.]. *)

type summary = {
  n : int;
  mean : float;
  std : float;
  min : float;
  max : float;
  p05 : float;
  p50 : float;
  p95 : float;
}
(** One-look summary of a sample. *)

val summarize : float array -> summary

val pp_summary : Format.formatter -> summary -> unit

type histogram = {
  lo : float;           (** left edge of first bin *)
  hi : float;           (** right edge of last bin *)
  counts : int array;   (** occupancy per bin *)
}

val histogram : ?bins:int -> float array -> histogram
(** Equal-width histogram over the sample range (default 40 bins). Values
    exactly at [hi] land in the last bin. *)

val histogram_in : lo:float -> hi:float -> bins:int -> float array -> histogram
(** Histogram over a fixed range; out-of-range values are clamped into the
    first/last bin so two samples can share comparable axes. *)

val bin_centers : histogram -> float array

val correlation : float array -> float array -> float
(** Pearson correlation of two equal-length samples. *)

val relative_error : reference:float -> float -> float
(** [(v - reference) /. reference]; raises if [reference = 0]. *)
