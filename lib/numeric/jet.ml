(* Order-2 univariate jets: forward-mode automatic differentiation carrying
   a value, a first and a second derivative with respect to one scalar
   seed. Evaluating a model on jets yields the exact analytic derivatives
   of the implemented formulas — the closed forms the variance-propagation
   layer needs, machine-precision instead of finite-difference noise. *)

type t = {
  v : float;   (* value *)
  d : float;   (* first derivative *)
  dd : float;  (* second derivative *)
}

let const v = { v; d = 0.0; dd = 0.0 }
let var v = { v; d = 1.0; dd = 0.0 }
let make ~v ~d ~dd = { v; d; dd }

let value j = j.v
let deriv j = j.d
let second j = j.dd

let add a b = { v = a.v +. b.v; d = a.d +. b.d; dd = a.dd +. b.dd }
let sub a b = { v = a.v -. b.v; d = a.d -. b.d; dd = a.dd -. b.dd }
let neg a = { v = -.a.v; d = -.a.d; dd = -.a.dd }

let mul a b =
  {
    v = a.v *. b.v;
    d = (a.d *. b.v) +. (a.v *. b.d);
    dd = (a.dd *. b.v) +. (2.0 *. a.d *. b.d) +. (a.v *. b.dd);
  }

let inv b =
  let iv = 1.0 /. b.v in
  let iv2 = iv *. iv in
  {
    v = iv;
    d = -.b.d *. iv2;
    dd = ((2.0 *. b.d *. b.d /. b.v) -. b.dd) *. iv2;
  }

let div a b = mul a (inv b)

let scale k a = { v = k *. a.v; d = k *. a.d; dd = k *. a.dd }
let add_const k a = { a with v = a.v +. k }

(* Chain rule for a scalar function f with derivatives f', f'':
   (f∘x)'' = f''(x) x'^2 + f'(x) x''. *)
let lift ~f ~f' ~f'' x =
  { v = f; d = f' *. x.d; dd = (f'' *. x.d *. x.d) +. (f' *. x.dd) }

let exp x =
  let e = Stdlib.exp x.v in
  lift ~f:e ~f':e ~f'':e x

let log1p x =
  let u = 1.0 +. x.v in
  lift ~f:(Stdlib.log1p x.v) ~f':(1.0 /. u) ~f'':(-1.0 /. (u *. u)) x

(* x ** p for a constant exponent (mirrors [( ** )] on positive bases). *)
let pow_const x p =
  let f = x.v ** p in
  let f' = p *. (x.v ** (p -. 1.0)) in
  let f'' = p *. (p -. 1.0) *. (x.v ** (p -. 2.0)) in
  lift ~f ~f' ~f'' x

let sqrt x = pow_const x 0.5

let abs x = if x.v >= 0.0 then x else neg x

let min_const k x = if x.v <= k then x else const k

(* Mirrors [Model.logistic], including its saturation branches (which are
   exactly constant, hence zero derivatives). *)
let logistic x =
  if x.v > 40.0 then const 1.0
  else if x.v < -40.0 then const 0.0
  else begin
    let s = 1.0 /. (1.0 +. Stdlib.exp (-.x.v)) in
    let s' = s *. (1.0 -. s) in
    lift ~f:s ~f':s' ~f'':(s' *. (1.0 -. (2.0 *. s))) x
  end
