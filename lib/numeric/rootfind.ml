exception No_convergence of string

module Tm = Leakage_telemetry.Telemetry

let m_calls = Tm.counter "rootfind.calls"
let m_iterations = Tm.counter "rootfind.iterations"
let m_nonconverged = Tm.counter "rootfind.nonconverged"

(* No_convergence is an exception, but several callers catch it and fall
   back (wider bracket, bisection, a default); the counter records the
   failure whether or not the exception survives. *)
let give_up msg =
  Tm.incr m_nonconverged;
  raise (No_convergence msg)

let finish iters result =
  if Tm.enabled () then begin
    Tm.incr m_calls;
    Tm.add m_iterations iters
  end;
  result

let same_sign a b = (a >= 0.0 && b >= 0.0) || (a <= 0.0 && b <= 0.0)

let brent ?(tol = 1e-12) ?(max_iter = 200) ~f a b =
  let fa = f a and fb = f b in
  if fa = 0.0 then finish 0 a
  else if fb = 0.0 then finish 0 b
  else begin
    if same_sign fa fb then
      invalid_arg "Rootfind.brent: root not bracketed";
    (* Classic Brent: inverse quadratic / secant / bisection. *)
    let a = ref a and b = ref b and fa = ref fa and fb = ref fb in
    if abs_float !fa < abs_float !fb then begin
      let t = !a in a := !b; b := t;
      let t = !fa in fa := !fb; fb := t
    end;
    let c = ref !a and fc = ref !fa in
    let d = ref (!b -. !a) and mflag = ref true in
    let iter = ref 0 in
    let result = ref None in
    while !result = None do
      if !fb = 0.0 || abs_float (!b -. !a) < tol then result := Some !b
      else if !iter >= max_iter then
        give_up "brent: iteration budget exhausted"
      else begin
        incr iter;
        let s =
          if !fa <> !fc && !fb <> !fc then
            (* inverse quadratic interpolation *)
            (!a *. !fb *. !fc /. ((!fa -. !fb) *. (!fa -. !fc)))
            +. (!b *. !fa *. !fc /. ((!fb -. !fa) *. (!fb -. !fc)))
            +. (!c *. !fa *. !fb /. ((!fc -. !fa) *. (!fc -. !fb)))
          else
            (* secant *)
            !b -. (!fb *. (!b -. !a) /. (!fb -. !fa))
        in
        let lo = ((3.0 *. !a) +. !b) /. 4.0 in
        let use_bisect =
          let between = (s > Float.min lo !b) && (s < Float.max lo !b) in
          (not between)
          || (!mflag && abs_float (s -. !b) >= abs_float (!b -. !c) /. 2.0)
          || ((not !mflag) && abs_float (s -. !b) >= abs_float !d /. 2.0)
        in
        let s = if use_bisect then (!a +. !b) /. 2.0 else s in
        mflag := use_bisect;
        let fs = f s in
        d := !c -. !b;
        c := !b;
        fc := !fb;
        if same_sign !fa fs then begin
          a := s; fa := fs
        end else begin
          b := s; fb := fs
        end;
        if abs_float !fa < abs_float !fb then begin
          let t = !a in a := !b; b := t;
          let t = !fa in fa := !fb; fb := t
        end
      end
    done;
    finish !iter (match !result with Some r -> r | None -> assert false)
  end

let newton_bracketed ?(tol = 1e-12) ?(max_iter = 100) ~f ~df ~lo ~hi x0 =
  let flo = f lo and fhi = f hi in
  if flo = 0.0 then finish 0 lo
  else if fhi = 0.0 then finish 0 hi
  else begin
    if same_sign flo fhi then
      invalid_arg "Rootfind.newton_bracketed: root not bracketed";
    let lo = ref lo and hi = ref hi and flo = ref flo in
    let x = ref (Float.max !lo (Float.min !hi x0)) in
    let result = ref None in
    let iter = ref 0 in
    while !result = None do
      if !iter >= max_iter then
        give_up "newton_bracketed: iteration budget exhausted";
      incr iter;
      let fx = f !x in
      if fx = 0.0 || (!hi -. !lo) < tol then result := Some !x
      else begin
        (* Shrink the bracket around the sign change. *)
        if same_sign !flo fx then begin lo := !x; flo := fx end
        else hi := !x;
        let dfx = df !x in
        let x_newton = if dfx = 0.0 then infinity else !x -. (fx /. dfx) in
        let next =
          if x_newton > !lo && x_newton < !hi then x_newton
          else (!lo +. !hi) /. 2.0
        in
        if abs_float (next -. !x) < tol then result := Some next
        else x := next
      end
    done;
    finish !iter (match !result with Some r -> r | None -> assert false)
  end

let newton_numeric ?tol ?max_iter ?(h = 1e-6) ~f ~lo ~hi x0 =
  let df x = (f (x +. h) -. f (x -. h)) /. (2.0 *. h) in
  newton_bracketed ?tol ?max_iter ~f ~df ~lo ~hi x0

let expand_bracket ?(factor = 1.6) ?(max_expand = 60) ~f a b =
  if a >= b then invalid_arg "Rootfind.expand_bracket: need a < b";
  let a = ref a and b = ref b in
  let fa = ref (f !a) and fb = ref (f !b) in
  let tries = ref 0 in
  while same_sign !fa !fb && !fa <> 0.0 && !fb <> 0.0 do
    if !tries >= max_expand then
      give_up "expand_bracket: no sign change found";
    incr tries;
    let width = !b -. !a in
    if abs_float !fa < abs_float !fb then begin
      a := !a -. (factor *. width);
      fa := f !a
    end else begin
      b := !b +. (factor *. width);
      fb := f !b
    end
  done;
  (!a, !b)
