module Tm = Leakage_telemetry.Telemetry

let m_calls = Tm.counter "solver.calls"
let m_iterations = Tm.counter "solver.iterations"
let m_nonconverged = Tm.counter "solver.nonconverged"
let h_iterations = Tm.histogram "solver.iterations_per_solve"

type options = {
  tol_residual : float;
  tol_step : float;
  max_iter : int;
  fd_step : float;
  max_damping : int;
}

let default_options = {
  tol_residual = 1e-13;
  tol_step = 1e-12;
  max_iter = 80;
  fd_step = 1e-7;
  max_damping = 24;
}

type result = {
  x : float array;
  residual_norm : float;
  iterations : int;
  converged : bool;
}

let clamp_into ?lower ?upper x =
  (match lower with
   | None -> ()
   | Some lo ->
     Array.iteri (fun i v -> if x.(i) < v then x.(i) <- v) lo);
  match upper with
  | None -> ()
  | Some hi -> Array.iteri (fun i v -> if x.(i) > v then x.(i) <- v) hi

let jacobian ~fd_step ~f x fx =
  let n = Array.length x in
  let jac = Array.init n (fun _ -> Array.make n 0.0) in
  for j = 0 to n - 1 do
    let saved = x.(j) in
    (* Scale the step with the variable magnitude to keep relative accuracy. *)
    let h = fd_step *. Float.max 1.0 (abs_float saved) in
    x.(j) <- saved +. h;
    let fph = f x in
    x.(j) <- saved;
    for i = 0 to n - 1 do
      jac.(i).(j) <- (fph.(i) -. fx.(i)) /. h
    done
  done;
  jac

let solve ?(options = default_options) ?lower ?upper ~f x0 =
  let x = Array.copy x0 in
  clamp_into ?lower ?upper x;
  let fx = ref (f x) in
  let res_norm = ref (Linalg.norm_inf !fx) in
  let iterations = ref 0 in
  let converged = ref (!res_norm <= options.tol_residual) in
  let stalled = ref false in
  while (not !converged) && (not !stalled) && !iterations < options.max_iter do
    incr iterations;
    let jac = jacobian ~fd_step:options.fd_step ~f x !fx in
    let step =
      match Linalg.lu_solve jac (Array.map (fun v -> -.v) !fx) with
      | s -> Some s
      | exception Linalg.Singular -> None
    in
    match step with
    | None -> stalled := true
    | Some dx ->
      (* Damped line search: halve the step until the residual improves. *)
      let rec try_step alpha attempts =
        let candidate = Array.mapi (fun i xi -> xi +. (alpha *. dx.(i))) x in
        clamp_into ?lower ?upper candidate;
        let fc = f candidate in
        let norm_c = Linalg.norm_inf fc in
        if norm_c < !res_norm || attempts >= options.max_damping then
          (candidate, fc, norm_c, alpha)
        else try_step (alpha /. 2.0) (attempts + 1)
      in
      let candidate, fc, norm_c, alpha = try_step 1.0 0 in
      let step_size = alpha *. Linalg.norm_inf dx in
      if norm_c >= !res_norm && step_size < options.tol_step then
        stalled := true
      else begin
        Array.blit candidate 0 x 0 (Array.length x);
        fx := fc;
        res_norm := norm_c;
        if !res_norm <= options.tol_residual || step_size < options.tol_step
        then converged := true
      end
  done;
  let result =
    {
      x;
      residual_norm = !res_norm;
      iterations = !iterations;
      converged = !converged || !res_norm <= options.tol_residual *. 100.0;
    }
  in
  (* Callers historically read [x] and dropped [converged]; the registry
     keeps a visible record of every solve that ran out of budget. *)
  if Tm.enabled () then begin
    Tm.incr m_calls;
    Tm.add m_iterations result.iterations;
    Tm.observe h_iterations (float_of_int result.iterations);
    if not result.converged then Tm.incr m_nonconverged
  end;
  result
