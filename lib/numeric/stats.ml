let check_nonempty name a =
  if Array.length a = 0 then invalid_arg (name ^ ": empty array")

let mean a =
  check_nonempty "Stats.mean" a;
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let variance a =
  let n = Array.length a in
  if n < 2 then 0.0
  else begin
    let m = mean a in
    let acc = Array.fold_left (fun s x -> s +. ((x -. m) ** 2.0)) 0.0 a in
    acc /. float_of_int (n - 1)
  end

let std a = sqrt (variance a)

(* Chebyshev-fitted erfc (Numerical Recipes "erfcc"): fractional error below
   1.2e-7 on all of [0, inf). Written as t·e^{-ax² + P(t)}, so the error in
   the fitted exponent stays a *relative* error on the value arbitrarily
   deep into the tail — exactly what the analytic moment engine needs when
   differencing Gaussian segment masses — at the cost of a single exp and
   division, which keeps it viable on that engine's hot quadrature path.
   [erfc_parts ax] exposes (t, exponent) so log-space callers skip the exp
   and never underflow. *)
let erfc_parts ax =
  let t = 1.0 /. (1.0 +. (0.5 *. ax)) in
  let p = 0.17087277 in
  let p = -0.82215223 +. (t *. p) in
  let p = 1.48851587 +. (t *. p) in
  let p = -1.13520398 +. (t *. p) in
  let p = 0.27886807 +. (t *. p) in
  let p = -0.18628806 +. (t *. p) in
  let p = 0.09678418 +. (t *. p) in
  let p = 0.37409196 +. (t *. p) in
  let p = 1.00002368 +. (t *. p) in
  (t, -.(ax *. ax) -. 1.26551223 +. (t *. p))

let erfc_core ax =
  let t, e = erfc_parts ax in
  t *. exp e

let erf x =
  let e = 1.0 -. erfc_core (Float.abs x) in
  if x < 0.0 then -.e else e

let inv_sqrt2 = 1.0 /. sqrt 2.0

(* Phi(z) for z <= 0, relatively accurate all the way down (the erfc fit
   carries fractional accuracy into the tail). *)
let lower_cdf z = 0.5 *. erfc_core (-.z *. inv_sqrt2)

let norm_cdf z = if z > 0.0 then 1.0 -. lower_cdf (-.z) else lower_cdf z

let log_norm_cdf z =
  if z > 0.0 then log1p (-.lower_cdf (-.z))
  else
    let t, e = erfc_parts (-.z *. inv_sqrt2) in
    e +. log (0.5 *. t)

let min_max a =
  check_nonempty "Stats.min_max" a;
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (a.(0), a.(0)) a

let percentile a p =
  check_nonempty "Stats.percentile" a;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p outside [0,100]";
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = Stdlib.min (int_of_float rank) (n - 2) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(lo + 1) *. frac)
  end

let median a = percentile a 50.0

type summary = {
  n : int;
  mean : float;
  std : float;
  min : float;
  max : float;
  p05 : float;
  p50 : float;
  p95 : float;
}

let summarize a =
  check_nonempty "Stats.summarize" a;
  let lo, hi = min_max a in
  {
    n = Array.length a;
    mean = mean a;
    std = std a;
    min = lo;
    max = hi;
    p05 = percentile a 5.0;
    p50 = median a;
    p95 = percentile a 95.0;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.4g std=%.4g min=%.4g p05=%.4g p50=%.4g p95=%.4g max=%.4g"
    s.n s.mean s.std s.min s.p05 s.p50 s.p95 s.max

type histogram = {
  lo : float;
  hi : float;
  counts : int array;
}

let histogram_in ~lo ~hi ~bins a =
  if bins <= 0 then invalid_arg "Stats.histogram_in: bins must be positive";
  if not (hi > lo) then invalid_arg "Stats.histogram_in: hi must exceed lo";
  let counts = Array.make bins 0 in
  let width = (hi -. lo) /. float_of_int bins in
  let clamp_bin i = if i < 0 then 0 else if i >= bins then bins - 1 else i in
  Array.iter
    (fun x ->
      let i = clamp_bin (int_of_float ((x -. lo) /. width)) in
      counts.(i) <- counts.(i) + 1)
    a;
  { lo; hi; counts }

let histogram ?(bins = 40) a =
  check_nonempty "Stats.histogram" a;
  let lo, hi = min_max a in
  (* Degenerate samples still get a well-formed (single-spike) histogram. *)
  let hi = if hi > lo then hi else lo +. 1.0 in
  histogram_in ~lo ~hi ~bins a

let bin_centers h =
  let bins = Array.length h.counts in
  let width = (h.hi -. h.lo) /. float_of_int bins in
  Array.init bins (fun i -> h.lo +. ((float_of_int i +. 0.5) *. width))

let correlation a b =
  if Array.length a <> Array.length b then
    invalid_arg "Stats.correlation: length mismatch";
  check_nonempty "Stats.correlation" a;
  let ma = mean a and mb = mean b in
  let num = ref 0.0 and da = ref 0.0 and db = ref 0.0 in
  Array.iteri
    (fun i x ->
      let xa = x -. ma and xb = b.(i) -. mb in
      num := !num +. (xa *. xb);
      da := !da +. (xa *. xa);
      db := !db +. (xb *. xb))
    a;
  if !da = 0.0 || !db = 0.0 then 0.0 else !num /. sqrt (!da *. !db)

let relative_error ~reference v =
  if reference = 0.0 then invalid_arg "Stats.relative_error: zero reference";
  (v -. reference) /. reference
