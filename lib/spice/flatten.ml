module Params = Leakage_device.Params
module Netlist = Leakage_circuit.Netlist
module Gate = Leakage_circuit.Gate
module Logic = Leakage_circuit.Logic
module Topo = Leakage_circuit.Topo

type node =
  | Ground
  | Rail
  | Fixed of float
  | Unknown of int

type network = Pull_up | Pull_down

type sleep_spec = {
  sleep_width : float;
  sleep_on : bool;
}

type transistor = {
  pol : Params.polarity;
  w : float;
  g : node;
  d : node;
  s : node;
  b : node;
  owner : int;
  stage : int;
  net_kind : network;
  at_output : bool;
  gate_pin : int;
  gate_logic : bool;
  stage_out_logic : bool;
}

type t = {
  netlist : Netlist.t;
  device_of_gate : int -> Params.t;
  temp : float;
  vdd : float;
  transistors : transistor array;
  n_unknowns : int;
  net_node : node array;
  initial : float array;
  sweep_order : int array;
  blocks : int array array;
  touching : (int * [ `G | `D | `S | `B ]) list array;
  vgnd : int option;
}

let node_voltage t x = function
  | Ground -> 0.0
  | Rail -> t.vdd
  | Fixed v -> v
  | Unknown i -> x.(i)

let virtual_ground t = t.vgnd

let unknown_of_net t net =
  match t.net_node.(net) with
  | Unknown i -> Some i
  | Ground | Rail | Fixed _ -> None

(* Mutable accumulation used only during flattening. *)
type building = {
  mutable count : int;
  mutable inits : float list;       (* reversed *)
  mutable order : int list;         (* reversed topological order *)
  mutable trans : transistor list;  (* reversed *)
}

let fresh_unknown bld init =
  let id = bld.count in
  bld.count <- id + 1;
  bld.inits <- init :: bld.inits;
  bld.order <- id :: bld.order;
  id

let flatten ?device_of_gate ?sleep ~device ~temp ?vdd netlist assignment =
  let vdd = Option.value vdd ~default:device.Params.vdd in
  let device_of_gate =
    let base = Option.value device_of_gate ~default:(fun (_ : int) -> device) in
    (* the MTCMOS footer (owner -1) always uses the die device *)
    fun id -> if id < 0 then device else base id
  in
  if Array.length assignment <> Netlist.net_count netlist then
    invalid_arg "Flatten.flatten: assignment size mismatch";
  let bld = { count = 0; inits = []; order = []; trans = [] } in
  (* MTCMOS: allocate the shared virtual-ground node before anything else.
     Cell pull-down networks return to it; bodies stay on the true ground
     rail, as in a standard footer-switch implementation. *)
  let vgnd =
    Option.map
      (fun spec ->
        ignore spec.sleep_width;
        fresh_unknown bld (if spec.sleep_on then 0.0 else 0.05))
      sleep
  in
  let pdn_rail =
    match vgnd with Some i -> Unknown i | None -> Ground
  in
  let net_node = Array.make (Netlist.net_count netlist) Ground in
  let rail_of_logic v = if Logic.to_bool v then vdd else 0.0 in
  (* Primary-input nets are ideal sources; all driven nets are unknowns,
     allocated in topological order so Gauss-Seidel sweeps run with the
     signal flow. *)
  Array.iter
    (fun n -> net_node.(n) <- Fixed (rail_of_logic assignment.(n)))
    (Netlist.inputs netlist);
  let topo_gates = Topo.order_ids netlist in
  (* Pre-create output-net unknowns in topo order, then walk gates again to
     expand cells (cell internals sit next to their gate's output). *)
  Array.iter
    (fun g_id ->
      let out = Netlist.gate_out netlist g_id in
      let init = rail_of_logic assignment.(out) in
      net_node.(out) <- Unknown (fresh_unknown bld init))
    topo_gates;
  let expand_gate g_id =
    let g_out = Netlist.gate_out netlist g_id in
    let g_strength = Netlist.gate_strength netlist g_id in
    let block = ref [] in
    let record_unknown = function
      | Unknown i -> block := i :: !block
      | Ground | Rail | Fixed _ -> ()
    in
    record_unknown net_node.(g_out);
    let fresh_block_unknown init =
      let i = fresh_unknown bld init in
      block := i :: !block;
      i
    in
    let cell = Gate.decompose (Netlist.gate_kind netlist g_id) in
    let pin_logic =
      Array.init (Netlist.gate_arity netlist g_id) (fun p ->
          Logic.to_bool assignment.(Netlist.gate_pin netlist g_id p))
    in
    (* Logic value per internal cell net, in stage order (stages are listed
       so that a stage's inputs are produced by earlier stages). *)
    let internal_logic = Array.make cell.internal_count false in
    let internal_node = Array.make cell.internal_count Ground in
    let pin_value = function
      | Gate.Cell_input i -> pin_logic.(i)
      | Gate.Internal i -> internal_logic.(i)
    in
    let pin_node = function
      | Gate.Cell_input i -> net_node.(Netlist.gate_pin netlist g_id i)
      | Gate.Internal i -> internal_node.(i)
    in
    let pin_index = function
      | Gate.Cell_input i -> i
      | Gate.Internal _ -> -1
    in
    Array.iteri
      (fun stage_idx (st : Gate.stage) ->
        let ins = Array.map pin_value st.stage_inputs in
        let out_logic = Gate.stage_eval st.stage_kind ins in
        let out_node =
          match st.stage_output with
          | Gate.Cell_output -> net_node.(g_out)
          | Gate.Internal_out i ->
            internal_logic.(i) <- out_logic;
            let init = if out_logic then vdd else 0.0 in
            let u = Unknown (fresh_block_unknown init) in
            internal_node.(i) <- u;
            u
        in
        let k = Array.length st.stage_inputs in
        let wn = Gate.nmos_width st.stage_kind k *. g_strength in
        let wp = Gate.pmos_width st.stage_kind k *. g_strength in
        let add pol ~w ~dn ~sn ~bn ~pin ~net_kind ~at_output =
          bld.trans <-
            {
              pol;
              w;
              g = pin_node pin;
              d = dn;
              s = sn;
              b = bn;
              owner = g_id;
              stage = stage_idx;
              net_kind;
              at_output;
              gate_pin = pin_index pin;
              gate_logic = pin_value pin;
              stage_out_logic = out_logic;
            }
            :: bld.trans
        in
        (match st.stage_kind with
         | Gate.Stage_inv ->
           let pin = st.stage_inputs.(0) in
           add Params.Nmos ~w:wn ~dn:out_node ~sn:pdn_rail ~bn:Ground
             ~pin ~net_kind:Pull_down ~at_output:true;
           add Params.Pmos ~w:wp ~dn:out_node ~sn:Rail ~bn:Rail ~pin
             ~net_kind:Pull_up ~at_output:true
         | Gate.Stage_nand ->
           (* Series NMOS chain from the output down to ground (pin 0 at the
              top), parallel PMOS. Stack nodes start at the ground rail. *)
           let chain =
             Array.init (k + 1) (fun i ->
                 if i = 0 then out_node
                 else if i = k then pdn_rail
                 else Unknown (fresh_block_unknown 0.0))
           in
           Array.iteri
             (fun i pin ->
               add Params.Nmos ~w:wn ~dn:chain.(i) ~sn:chain.(i + 1)
                 ~bn:Ground ~pin ~net_kind:Pull_down ~at_output:(i = 0);
               add Params.Pmos ~w:wp ~dn:out_node ~sn:Rail ~bn:Rail
                 ~pin ~net_kind:Pull_up ~at_output:true)
             st.stage_inputs
         | Gate.Stage_nor ->
           (* Parallel NMOS, series PMOS chain from the output up to the rail
              (pin 0 nearest the output). *)
           let chain =
             Array.init (k + 1) (fun i ->
                 if i = 0 then out_node
                 else if i = k then Rail
                 else Unknown (fresh_block_unknown vdd))
           in
           Array.iteri
             (fun i pin ->
               add Params.Nmos ~w:wn ~dn:out_node ~sn:pdn_rail
                 ~bn:Ground ~pin ~net_kind:Pull_down ~at_output:true;
               add Params.Pmos ~w:wp ~dn:chain.(i) ~sn:chain.(i + 1)
                 ~bn:Rail ~pin ~net_kind:Pull_up ~at_output:(i = 0))
             st.stage_inputs
         | Gate.Stage_complex tree ->
           (* Generic static-CMOS stage: expand the series/parallel
              pull-down between the output and ground, and its dual
              pull-up between the output and the rail. Transistors whose
              drain side sits on the stage output are the attribution
              points for off-network subthreshold current. *)
           let rec expand pol ~w ~bn ~net_kind ~init tree top bottom =
             match tree with
             | Gate.Leaf i ->
               add pol ~w ~dn:top ~sn:bottom ~bn
                 ~pin:st.stage_inputs.(i) ~net_kind
                 ~at_output:(top = out_node)
             | Gate.Parallel parts ->
               List.iter
                 (fun p -> expand pol ~w ~bn ~net_kind ~init p top bottom)
                 parts
             | Gate.Series parts ->
               let count = List.length parts in
               let mids =
                 Array.init (Stdlib.max 0 (count - 1)) (fun _ ->
                     Unknown (fresh_block_unknown init))
               in
               List.iteri
                 (fun idx part ->
                   let hi = if idx = 0 then top else mids.(idx - 1) in
                   let lo = if idx = count - 1 then bottom else mids.(idx) in
                   expand pol ~w ~bn ~net_kind ~init part hi lo)
                 parts
           in
           expand Params.Nmos ~w:wn ~bn:Ground ~net_kind:Pull_down ~init:0.0
             tree out_node pdn_rail;
           expand Params.Pmos ~w:wp ~bn:Rail ~net_kind:Pull_up ~init:vdd
             (Gate.dual tree) out_node Rail))
      cell.stages;
    Array.of_list (List.rev !block)
  in
  let blocks = Array.map expand_gate topo_gates in
  (* The footer switch itself, plus a trailing relaxation block for the
     virtual-ground node (it couples to every gated cell, so it is revisited
     once per sweep after the cells). *)
  let blocks =
    match sleep, vgnd with
    | Some spec, Some vgnd_id ->
      bld.trans <-
        {
          pol = Params.Nmos;
          w = spec.sleep_width;
          g = Fixed (if spec.sleep_on then vdd else 0.0);
          d = Unknown vgnd_id;
          s = Ground;
          b = Ground;
          owner = -1;
          stage = 0;
          net_kind = Pull_down;
          at_output = true;
          gate_pin = -1;
          gate_logic = spec.sleep_on;
          stage_out_logic = not spec.sleep_on;
        }
        :: bld.trans;
      (* The virtual ground couples to every gated cell; relaxing it only
         once per sweep makes the global equilibrium crawl. Interleave its
         singleton block through the gate sweep so each pass moves the node
         together with the cells it feeds. *)
      let interleaved = ref [ [| vgnd_id |] ] in
      Array.iteri
        (fun i block ->
          interleaved := block :: !interleaved;
          if i mod 16 = 15 then interleaved := [| vgnd_id |] :: !interleaved)
        blocks;
      interleaved := [| vgnd_id |] :: !interleaved;
      Array.of_list (List.rev !interleaved)
    | _ -> blocks
  in
  let transistors = Array.of_list (List.rev bld.trans) in
  let n_unknowns = bld.count in
  let touching = Array.make (Stdlib.max 1 n_unknowns) [] in
  let touch node entry =
    match node with
    | Unknown i -> touching.(i) <- entry :: touching.(i)
    | Ground | Rail | Fixed _ -> ()
  in
  Array.iteri
    (fun idx tr ->
      touch tr.g (idx, `G);
      touch tr.d (idx, `D);
      touch tr.s (idx, `S);
      touch tr.b (idx, `B))
    transistors;
  {
    netlist;
    device_of_gate;
    temp;
    vdd;
    transistors;
    n_unknowns;
    net_node;
    initial = Array.of_list (List.rev bld.inits);
    sweep_order = Array.of_list (List.rev bld.order);
    blocks;
    touching;
    vgnd;
  }
