module Params = Leakage_device.Params
module Model = Leakage_device.Model

type options = {
  tol_voltage : float;
  max_sweeps : int;
  v_margin : float;
  max_step : float;
}

let default_options = {
  tol_voltage = 1e-9;
  max_sweeps = 200;
  v_margin = 0.3;
  max_step = 0.25;
}

type result = {
  voltages : float array;
  sweeps : int;
  converged : bool;
  max_residual : float;
}

let devices_per_transistor (flat : Flatten.t) =
  Array.map
    (fun (tr : Flatten.transistor) -> flat.device_of_gate tr.owner)
    flat.transistors

let terminal_current flat devices x tr_idx term =
  let tr = flat.Flatten.transistors.(tr_idx) in
  let v n = Flatten.node_voltage flat x n in
  let bias =
    { Model.vg = v tr.g; vd = v tr.d; vs = v tr.s; vb = v tr.b }
  in
  let t =
    Model.terminals devices.(tr_idx) tr.pol ~w:tr.w ~temp:flat.temp bias
  in
  match term with
  | `G -> t.Model.into_gate
  | `D -> t.Model.into_drain
  | `S -> t.Model.into_source
  | `B -> t.Model.into_bulk

let injection_array flat injections =
  let inj = Array.make (Stdlib.max 1 flat.Flatten.n_unknowns) 0.0 in
  List.iter
    (fun (i, amps) ->
      if i < 0 || i >= flat.Flatten.n_unknowns then
        invalid_arg "Dc_solver: injection at unknown node index";
      inj.(i) <- inj.(i) +. amps)
    injections;
  inj

let residual_at flat devices inj x i =
  let acc = ref (-.inj.(i)) in
  List.iter
    (fun (tr_idx, term) -> acc := !acc +. terminal_current flat devices x tr_idx term)
    flat.Flatten.touching.(i);
  !acc

let residual flat ?(injections = []) x i =
  let devices = devices_per_transistor flat in
  let inj = injection_array flat injections in
  residual_at flat devices inj x i

let max_residual_of flat devices inj x =
  let worst = ref 0.0 in
  for i = 0 to flat.Flatten.n_unknowns - 1 do
    worst := Float.max !worst (abs_float (residual_at flat devices inj x i))
  done;
  !worst

let clamp lo hi v = if v < lo then lo else if v > hi then hi else v

module Tm = Leakage_telemetry.Telemetry

let m_solves = Tm.counter "dc.solves"
let m_sweeps = Tm.counter "dc.sweeps"
let m_nonconverged = Tm.counter "dc.nonconverged"
let h_sweeps = Tm.histogram "dc.sweeps_per_solve"

(* Gauss–Seidel over per-gate blocks. A series stack's nodes are tied
   together by on-transistor conductances that dwarf their coupling to the
   rest of the circuit, so node-at-a-time relaxation crawls on them; solving
   the handful of unknowns a gate owns as one small Newton system restores
   fast convergence while keeping the sweep linear in circuit size. *)
let solve ?(options = default_options) ?(injections = []) (flat : Flatten.t) =
  let devices = devices_per_transistor flat in
  let inj = injection_array flat injections in
  let x = Array.copy flat.Flatten.initial in
  let lo = -.options.v_margin and hi = flat.Flatten.vdd +. options.v_margin in
  let fd_h = 1e-7 in
  let sweeps = ref 0 in
  let converged = ref (flat.Flatten.n_unknowns = 0) in
  (* Scalar Newton update for single-unknown blocks (the common case). *)
  let update_scalar i =
    let v0 = x.(i) in
    let f0 = residual_at flat devices inj x i in
    x.(i) <- v0 +. fd_h;
    let f1 = residual_at flat devices inj x i in
    x.(i) <- v0;
    let g = (f1 -. f0) /. fd_h in
    if g > 0.0 && Float.is_finite g then begin
      let dv = clamp (-.options.max_step) options.max_step (-.f0 /. g) in
      let v' = clamp lo hi (v0 +. dv) in
      x.(i) <- v';
      abs_float (v' -. v0)
    end
    else 0.0
  in
  let update_block block =
    let n = Array.length block in
    let f () = Array.map (residual_at flat devices inj x) block in
    let f0 = f () in
    let jac = Array.init n (fun _ -> Array.make n 0.0) in
    Array.iteri
      (fun j i ->
        let saved = x.(i) in
        x.(i) <- saved +. fd_h;
        let fj = f () in
        x.(i) <- saved;
        for r = 0 to n - 1 do
          jac.(r).(j) <- (fj.(r) -. f0.(r)) /. fd_h
        done)
      block;
    match Leakage_numeric.Linalg.lu_solve jac (Array.map (fun v -> -.v) f0) with
    | dx ->
      let biggest = ref 0.0 in
      Array.iteri
        (fun j i ->
          let dv = clamp (-.options.max_step) options.max_step dx.(j) in
          let v' = clamp lo hi (x.(i) +. dv) in
          biggest := Float.max !biggest (abs_float (v' -. x.(i)));
          x.(i) <- v')
        block;
      !biggest
    | exception Leakage_numeric.Linalg.Singular ->
      (* Fall back to node-at-a-time relaxation for this block. *)
      Array.fold_left
        (fun acc i -> Float.max acc (update_scalar i))
        0.0 block
  in
  while (not !converged) && !sweeps < options.max_sweeps do
    incr sweeps;
    let max_update = ref 0.0 in
    Array.iter
      (fun block ->
        let delta =
          match Array.length block with
          | 0 -> 0.0
          | 1 -> update_scalar block.(0)
          | _ -> update_block block
        in
        max_update := Float.max !max_update delta)
      flat.Flatten.blocks;
    if !max_update < options.tol_voltage then converged := true
  done;
  (* Most callers keep only [voltages]; the registry records every solve
     that hit the sweep budget without settling. *)
  if Tm.enabled () then begin
    Tm.incr m_solves;
    Tm.add m_sweeps !sweeps;
    Tm.observe h_sweeps (float_of_int !sweeps);
    if not !converged then Tm.incr m_nonconverged
  end;
  {
    voltages = x;
    sweeps = !sweeps;
    converged = !converged;
    max_residual = max_residual_of flat devices inj x;
  }

let solve_dense ?(injections = []) (flat : Flatten.t) =
  let module Solver = Leakage_numeric.Solver in
  let devices = devices_per_transistor flat in
  let inj = injection_array flat injections in
  let n = flat.Flatten.n_unknowns in
  let f x = Array.init n (residual_at flat devices inj x) in
  let margin = default_options.v_margin in
  let lower = Array.make n (-.margin) in
  let upper = Array.make n (flat.Flatten.vdd +. margin) in
  (* Residuals live at the nano-amp scale; tolerances must match. *)
  let options =
    { Solver.default_options with
      tol_residual = 1e-18;
      tol_step = 1e-13;
      max_iter = 200 }
  in
  let r = Solver.solve ~options ~lower ~upper ~f flat.Flatten.initial in
  {
    voltages = r.Solver.x;
    sweeps = r.Solver.iterations;
    converged = r.Solver.converged;
    max_residual = max_residual_of flat devices inj r.Solver.x;
  }

let net_voltage flat result net =
  Flatten.node_voltage flat result.voltages flat.Flatten.net_node.(net)
