let order_ids = Netlist.topo_ids

let order t =
  let gates = Netlist.gates t in
  Array.map (fun i -> gates.(i)) (order_ids t)

let levels t =
  match
    Topo_check.levelize_flat ~net_count:(Netlist.net_count t)
      ~n_gates:(Netlist.gate_count t) ~source_nets:(Netlist.inputs t)
      ~fanin_count:(Netlist.gate_arity t)
      ~fanin:(Netlist.gate_pin t)
      ~gate_out:(Netlist.gate_out t)
  with
  | Some l -> l
  | None -> failwith ("Topo.levels: cycle in " ^ Netlist.name t)

let net_levels t =
  let gate_levels = levels t in
  let nl = Array.make (Netlist.net_count t) 0 in
  for g = 0 to Netlist.gate_count t - 1 do
    nl.(Netlist.gate_out t g) <- gate_levels.(g)
  done;
  nl
