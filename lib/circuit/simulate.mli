(** Zero-delay logic simulation (step 2 of the Fig-13 algorithm: "propagate
    logic value from primary inputs to primary outputs"). *)

type assignment = Logic.value array
(** One logic value per net. *)

val run : Netlist.t -> Logic.vector -> assignment
(** [run t pattern] assigns [pattern] to the primary inputs (in the order of
    [Netlist.inputs]) and propagates through the circuit. Raises
    [Invalid_argument] on a pattern length mismatch. *)

val run_into : Netlist.t -> Logic.vector -> assignment -> unit
(** [run_into t pattern values] is [run] writing into a caller-provided
    buffer of length [Netlist.net_count t] — callers evaluating many
    patterns (vector averaging, incremental sessions) reuse one scratch
    buffer instead of allocating per pattern. Every slot is overwritten. *)

val outputs : Netlist.t -> assignment -> Logic.vector
(** Read back the primary-output values of an assignment. *)

val gate_input_vector : Netlist.t -> assignment -> Netlist.gate -> Logic.vector
(** The logic vector seen at one gate's input pins. *)

val random_patterns :
  Leakage_numeric.Rng.t -> Netlist.t -> int -> Logic.vector list
(** [random_patterns rng t n] draws [n] uniform input patterns. *)
