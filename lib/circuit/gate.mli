(** Logic-gate cells: boolean function, CMOS stage decomposition, sizing.

    Every cell decomposes into a list of primitive static-CMOS stages
    (inverter / NAND-k / NOR-k). Composite cells (AND, OR, XOR, XNOR, BUF)
    expand into several stages connected by cell-internal nets, so the DC
    solver and the characterizer see real transistor topologies — including
    stacked devices, whose "stacking effect" §4 leans on — without the
    netlist layer having to know about transistors. *)

type kind =
  | Inv
  | Buf
  | Nand of int
  | Nor of int
  | And of int
  | Or of int
  | Xor
  | Xnor
  | Aoi21  (** y = (a·b + c)'  — single-stage complex gate *)
  | Aoi22  (** y = (a·b + c·d)' *)
  | Oai21  (** y = ((a + b)·c)' *)
  | Oai22  (** y = ((a + b)·(c + d))' *)

val arity : kind -> int
(** Number of cell input pins. NAND/NOR/AND/OR support 2–4 inputs;
    constructors outside that range raise on use. *)

val name : kind -> string
(** Short cell name, e.g. "NAND2". *)

val of_name : string -> kind
(** Inverse of {!name}; raises [Invalid_argument] on unknown names. *)

val all_kinds : kind list
(** Every kind this library ships (used to precharacterize a full library). *)

val code : kind -> int
(** Small dense integer stable across a run — an allocation-free cache key
    (used by the characterization library on the estimator's hot path). *)

val max_code : int
(** Largest value {!code} produces; codes live in [\[0, max_code\]]. *)

val of_code : int -> kind
(** Inverse of {!code}. Returns a preallocated value (no boxing per call),
    so struct-of-arrays netlist storage can decode kinds on hot paths.
    Raises [Invalid_argument] on codes no kind maps to. *)

val eval : kind -> bool array -> bool
(** Boolean function of the cell. Raises on arity mismatch. *)

val eval_prefix : kind -> bool array -> bool
(** Like {!eval} but reads only the first [arity kind] entries of the
    buffer, which may be longer — lets a simulation sweep reuse one
    max-arity scratch buffer with zero per-gate allocation. The extra
    entries are ignored; no arity check is performed. *)

val eval_logic : kind -> Logic.vector -> Logic.value

val controlling_value : kind -> Logic.value option
(** The input value that pins the cell's output regardless of every other
    pin: [Some Zero] for AND/NAND, [Some One] for OR/NOR, [None] for cells
    with no single controlling value (INV, BUF, XOR, XNOR and the AOI/OAI
    complex cells — though the latter can still be pinned by value
    {e combinations}, which {!pinned_output} detects exactly). *)

val pinned_output : kind -> free:bool array -> bool array -> bool option
(** [pinned_output kind ~free inputs] is [Some o] when the cell's output is
    [o] under {e every} assignment of the pins marked [free], with the
    remaining pins held at their [inputs] values — i.e. the stable pins pin
    the output. [None] when some free-pin assignment flips it. Exact (not a
    controlling-value approximation) via at most [2^free] calls to {!eval};
    arity is at most 4, so at most 16. With no free pins this is simply
    [Some (eval kind inputs)]. Raises on arity mismatch like {!eval}. *)

(** {2 Stage decomposition} *)

type network_tree =
  | Leaf of int                  (** stage input index *)
  | Series of network_tree list
  | Parallel of network_tree list
(** Series/parallel description of a pull-down network; the pull-up is its
    dual. *)

val dual : network_tree -> network_tree
(** Swap series and parallel (the complementary pull-up network). *)

val tree_depth : network_tree -> int
(** Longest series stack through the network (drives transistor sizing). *)

val tree_conducts : network_tree -> bool array -> bool
(** Whether the NMOS network conducts for the given input values. *)

type stage_kind =
  | Stage_inv
  | Stage_nand
  | Stage_nor
  | Stage_complex of network_tree
      (** arbitrary static-CMOS stage: the tree is the pull-down network
          over the stage inputs, the pull-up is its dual *)

type pin =
  | Cell_input of int   (** i-th input pin of the cell *)
  | Internal of int     (** cell-internal net *)

type stage_out =
  | Cell_output         (** this stage drives the cell's output pin *)
  | Internal_out of int (** this stage drives a cell-internal net *)

type stage = {
  stage_kind : stage_kind;
  stage_inputs : pin array;
  (** For NAND stages, index 0 is the transistor closest to the output node
      of the NMOS stack; for NOR stages, index 0 is the PMOS closest to the
      output. *)
  stage_output : stage_out;
}

type cell = {
  kind : kind;
  stages : stage array;
  internal_count : int;  (** number of cell-internal nets *)
}

val decompose : kind -> cell
(** Stage network of the cell. Raises [Invalid_argument] for unsupported
    arities. *)

val stage_eval : stage_kind -> bool array -> bool

val nmos_width : stage_kind -> int -> float
(** [nmos_width sk fan_in] is the width (µm) of each NMOS in a stage with
    [fan_in] inputs: series stacks are upsized by their depth to preserve
    drive (complex stages by the longest pull-down path). *)

val pmos_width : stage_kind -> int -> float

val transistor_count : kind -> int
(** Total transistors after decomposition (2 per stage input). *)
