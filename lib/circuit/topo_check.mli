(** Low-level topological ordering over raw gate arrays.

    Works on plain integer arrays so it can be used by [Netlist.validate]
    without a dependency cycle; user code should prefer {!Topo}. *)

val sort :
  net_count:int ->
  source_nets:int array ->
  gate_inputs:int array array ->
  gate_outputs:int array ->
  int array option
(** [sort ~net_count ~source_nets ~gate_inputs ~gate_outputs] returns gate
    indices in topological order (every gate after all gates feeding it), or
    [None] if the graph has a cycle or a gate input that is neither a source
    net nor another gate's output. *)

val levelize :
  net_count:int ->
  source_nets:int array ->
  gate_inputs:int array array ->
  gate_outputs:int array ->
  int array option
(** Logic depth per gate (sources at depth 0; a gate is 1 + max of its
    fan-in depths). [None] on cycles. *)

(** {2 Accessor-based variants}

    The same algorithms over pin accessors instead of materialized per-gate
    arrays, so struct-of-arrays storage can be sorted without allocating one
    [net array] per gate. [sort] and [levelize] are thin wrappers over
    these; the emitted order is identical. *)

val sort_flat :
  net_count:int ->
  n_gates:int ->
  source_nets:int array ->
  fanin_count:(int -> int) ->
  fanin:(int -> int -> int) ->
  gate_out:(int -> int) ->
  int array option

val levelize_flat :
  net_count:int ->
  n_gates:int ->
  source_nets:int array ->
  fanin_count:(int -> int) ->
  fanin:(int -> int -> int) ->
  gate_out:(int -> int) ->
  int array option
