exception Snapshot_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Snapshot_error s)) fmt

let page = 4096
let align n = (n + page - 1) / page * page
let magic = "LKN1"
let version = 1

(* header field offsets (all fixed; header occupies the first page) *)
let off_counts = 8
let off_digest = 72
let off_checksum = 104
let header_hashed = off_checksum (* bytes 0..103 are covered by the checksum *)

let fnv1a bytes len =
  let h = ref 0xcbf29ce484222325L in
  for i = 0 to len - 1 do
    h :=
      Int64.mul
        (Int64.logxor !h (Int64.of_int (Char.code (Bytes.get bytes i))))
        0x100000001b3L
  done;
  !h

type layout = {
  n_gates : int;
  net_count : int;
  n_pins : int;
  blob_len : int;
  n_inputs : int;
  n_outputs : int;
  name_len : int;
  meta_off : int;
  kind_off : int;
  strength_off : int;
  pin_off_off : int;
  pins_off : int;
  out_off : int;
  name_off_off : int;
  blob_off : int;
  total : int;
}

let layout ~n_gates ~net_count ~n_pins ~blob_len ~n_inputs ~n_outputs
    ~name_len =
  let meta_off = page in
  let meta_len = name_len + (8 * (n_inputs + n_outputs)) in
  let kind_off = align (meta_off + meta_len) in
  let strength_off = align (kind_off + n_gates) in
  let pin_off_off = align (strength_off + (8 * n_gates)) in
  let pins_off = align (pin_off_off + (8 * (n_gates + 1))) in
  let out_off = align (pins_off + (8 * n_pins)) in
  let name_off_off = align (out_off + (8 * n_gates)) in
  let blob_off = align (name_off_off + (8 * (net_count + 1))) in
  let total = align (blob_off + blob_len) in
  { n_gates; net_count; n_pins; blob_len; n_inputs; n_outputs; name_len;
    meta_off; kind_off; strength_off; pin_off_off; pins_off; out_off;
    name_off_off; blob_off; total }

(* ------------------------------------------------------------- save *)

let zeros = Bytes.make page '\000'

let pad_to oc target =
  let here = pos_out oc in
  assert (here <= target);
  let rec go n =
    if n > 0 then begin
      let k = Stdlib.min n page in
      output oc zeros 0 k;
      go (n - k)
    end
  in
  go (target - here)

let chunk_elems = 8192
let chunk = Bytes.create (8 * chunk_elems)

let write_ints oc (a : Netlist.Repr.int_arr) =
  let n = Bigarray.Array1.dim a in
  let i = ref 0 in
  while !i < n do
    let k = Stdlib.min chunk_elems (n - !i) in
    for j = 0 to k - 1 do
      Bytes.set_int64_le chunk (8 * j) (Int64.of_int a.{!i + j})
    done;
    output oc chunk 0 (8 * k);
    i := !i + k
  done

let write_floats oc (a : Netlist.Repr.f64_arr) =
  let n = Bigarray.Array1.dim a in
  let i = ref 0 in
  while !i < n do
    let k = Stdlib.min chunk_elems (n - !i) in
    for j = 0 to k - 1 do
      Bytes.set_int64_le chunk (8 * j) (Int64.bits_of_float a.{!i + j})
    done;
    output oc chunk 0 (8 * k);
    i := !i + k
  done

let write_bytes8 oc (a : Netlist.Repr.byte_arr) =
  let n = Bigarray.Array1.dim a in
  let i = ref 0 in
  while !i < n do
    let k = Stdlib.min (8 * chunk_elems) (n - !i) in
    for j = 0 to k - 1 do
      Bytes.set chunk j (Char.chr a.{!i + j})
    done;
    output oc chunk 0 k;
    i := !i + k
  done

let write_chars oc (a : Netlist.Repr.char_arr) =
  let n = Bigarray.Array1.dim a in
  let i = ref 0 in
  while !i < n do
    let k = Stdlib.min (8 * chunk_elems) (n - !i) in
    for j = 0 to k - 1 do
      Bytes.set chunk j a.{!i + j}
    done;
    output oc chunk 0 k;
    i := !i + k
  done

let save path t =
  let r = Netlist.Repr.to_raw t in
  let open Netlist.Repr in
  let l =
    layout
      ~n_gates:(Bigarray.Array1.dim r.r_kind_code)
      ~net_count:r.r_net_count
      ~n_pins:(Bigarray.Array1.dim r.r_pins)
      ~blob_len:(Bigarray.Array1.dim r.r_name_blob)
      ~n_inputs:(Array.length r.r_inputs)
      ~n_outputs:(Array.length r.r_outputs)
      ~name_len:(String.length r.r_name)
  in
  let digest = Netlist.digest t in
  assert (String.length digest = 32);
  let hdr = Bytes.make page '\000' in
  Bytes.blit_string magic 0 hdr 0 4;
  Bytes.set hdr 4 (Char.chr version);
  Bytes.set hdr 5 (Char.chr 8);
  Bytes.set hdr 6 (if Sys.big_endian then '\002' else '\001');
  List.iteri
    (fun i v -> Bytes.set_int64_le hdr (off_counts + (8 * i)) (Int64.of_int v))
    [ l.n_gates; l.net_count; l.n_pins; l.blob_len; l.n_inputs; l.n_outputs;
      l.name_len; l.total ];
  Bytes.blit_string digest 0 hdr off_digest 32;
  Bytes.set_int64_le hdr off_checksum (fnv1a hdr header_hashed);
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_bytes oc hdr;
      (* meta: netlist name, then PI / PO net ids *)
      output_string oc r.r_name;
      let b8 = Bytes.create 8 in
      let put_i v =
        Bytes.set_int64_le b8 0 (Int64.of_int v);
        output_bytes oc b8
      in
      Array.iter put_i r.r_inputs;
      Array.iter put_i r.r_outputs;
      pad_to oc l.kind_off;
      write_bytes8 oc r.r_kind_code;
      pad_to oc l.strength_off;
      write_floats oc r.r_strength;
      pad_to oc l.pin_off_off;
      write_ints oc r.r_pin_off;
      pad_to oc l.pins_off;
      write_ints oc r.r_pins;
      pad_to oc l.out_off;
      write_ints oc r.r_out_net;
      pad_to oc l.name_off_off;
      write_ints oc r.r_name_off;
      pad_to oc l.blob_off;
      write_chars oc r.r_name_blob;
      pad_to oc l.total)

(* ------------------------------------------------------------- load *)

let read_exactly fd buf len what =
  let got = ref 0 in
  (try
     while !got < len do
       let k = Unix.read fd buf !got (len - !got) in
       if k = 0 then raise Exit;
       got := !got + k
     done
   with Exit -> ());
  if !got <> len then err "snapshot: truncated %s (%d of %d bytes)" what !got len

let count_field hdr i what =
  let v = Bytes.get_int64_le hdr (off_counts + (8 * i)) in
  (* Reject anything that could overflow the layout arithmetic long before
     it could become a bad mmap length. *)
  if Int64.compare v 0L < 0 || Int64.compare v 0x0000_4000_0000_0000L > 0 then
    err "snapshot: implausible %s (%Ld)" what v;
  Int64.to_int v

let map_section (type a b) fd ~pos ~len (kind : (a, b) Bigarray.kind) :
    (a, b, Bigarray.c_layout) Bigarray.Array1.t =
  if len = 0 then Bigarray.Array1.create kind Bigarray.c_layout 0
  else
    Bigarray.array1_of_genarray
      (Unix.map_file fd ~pos:(Int64.of_int pos) kind Bigarray.c_layout false
         [| len |])

let load ?(verify = true) path =
  let fd =
    try Unix.openfile path [ Unix.O_RDONLY ] 0
    with Unix.Unix_error (e, _, _) ->
      err "snapshot: cannot open %s: %s" path (Unix.error_message e)
  in
  Fun.protect
    (* The mappings survive the close: mmap keeps the pages alive. *)
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let actual_size = (Unix.fstat fd).Unix.st_size in
      if actual_size < page then
        err "snapshot: %s is too small to hold an LKN1 header" path;
      let hdr = Bytes.create page in
      read_exactly fd hdr page "header";
      if Bytes.sub_string hdr 0 4 <> magic then
        err "snapshot: %s is not an LKN1 file (bad magic)" path;
      if Char.code (Bytes.get hdr 4) <> version then
        err "snapshot: unsupported LKN1 version %d" (Char.code (Bytes.get hdr 4));
      if Char.code (Bytes.get hdr 5) <> 8 then
        err "snapshot: word size %d, need 8" (Char.code (Bytes.get hdr 5));
      let endian_tag = if Sys.big_endian then '\002' else '\001' in
      if Bytes.get hdr 6 <> endian_tag then
        err "snapshot: endianness mismatch (snapshot written on a %s-endian host)"
          (if Bytes.get hdr 6 = '\002' then "big" else "little");
      let stored_sum = Bytes.get_int64_le hdr off_checksum in
      Bytes.set_int64_le hdr off_checksum 0L;
      let computed_sum = fnv1a hdr header_hashed in
      if not (Int64.equal stored_sum computed_sum) then
        err "snapshot: header checksum mismatch (corrupt file)";
      let n_gates = count_field hdr 0 "gate count" in
      let net_count = count_field hdr 1 "net count" in
      let n_pins = count_field hdr 2 "pin count" in
      let blob_len = count_field hdr 3 "name-blob length" in
      let n_inputs = count_field hdr 4 "input count" in
      let n_outputs = count_field hdr 5 "output count" in
      let name_len = count_field hdr 6 "name length" in
      let declared_total = count_field hdr 7 "file size" in
      let l =
        layout ~n_gates ~net_count ~n_pins ~blob_len ~n_inputs ~n_outputs
          ~name_len
      in
      (* Fail closed on size before any mapping is dereferenced: a short
         file must raise here, never SIGBUS through a too-long mapping. *)
      if declared_total <> l.total then
        err "snapshot: header size field (%d) disagrees with section layout (%d)"
          declared_total l.total;
      if actual_size <> l.total then
        err "snapshot: %s is %d bytes, layout requires %d (truncated or padded)"
          path actual_size l.total;
      let digest_hdr = Bytes.sub_string hdr off_digest 32 in
      String.iter
        (fun c ->
          match c with
          | '0' .. '9' | 'a' .. 'f' -> ()
          | _ -> err "snapshot: malformed digest in header")
        digest_hdr;
      (* meta section: read (not mapped — it is small and unaligned) *)
      let meta_len = name_len + (8 * (n_inputs + n_outputs)) in
      let meta = Bytes.create meta_len in
      ignore (Unix.lseek fd l.meta_off Unix.SEEK_SET);
      read_exactly fd meta meta_len "metadata section";
      let r_name = Bytes.sub_string meta 0 name_len in
      let net_id i =
        let v = Bytes.get_int64_le meta (name_len + (8 * i)) in
        if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int net_count) >= 0
        then err "snapshot: interface net id %Ld out of range" v;
        Int64.to_int v
      in
      let r_inputs = Array.init n_inputs net_id in
      let r_outputs = Array.init n_outputs (fun i -> net_id (n_inputs + i)) in
      let open Netlist.Repr in
      let raw =
        {
          r_name;
          r_net_count = net_count;
          r_kind_code =
            map_section fd ~pos:l.kind_off ~len:n_gates Bigarray.int8_unsigned;
          r_strength =
            map_section fd ~pos:l.strength_off ~len:n_gates Bigarray.float64;
          r_pin_off =
            map_section fd ~pos:l.pin_off_off ~len:(n_gates + 1) Bigarray.int;
          r_pins = map_section fd ~pos:l.pins_off ~len:n_pins Bigarray.int;
          r_out_net = map_section fd ~pos:l.out_off ~len:n_gates Bigarray.int;
          r_inputs;
          r_outputs;
          r_name_off =
            map_section fd ~pos:l.name_off_off ~len:(net_count + 1) Bigarray.int;
          r_name_blob =
            map_section fd ~pos:l.blob_off ~len:blob_len Bigarray.char;
        }
      in
      let t =
        try Netlist.Repr.of_raw ~validate:verify raw
        with Failure msg -> err "snapshot: %s: %s" path msg
      in
      if verify && not (String.equal (Netlist.digest t) digest_hdr) then
        err "snapshot: digest mismatch in %s (file corrupt or tampered)" path;
      t)

let digest_of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let hdr = Bytes.create page in
      (try really_input ic hdr 0 page
       with End_of_file -> err "snapshot: %s is too small to hold an LKN1 header" path);
      if Bytes.sub_string hdr 0 4 <> magic then
        err "snapshot: %s is not an LKN1 file (bad magic)" path;
      let stored_sum = Bytes.get_int64_le hdr off_checksum in
      Bytes.set_int64_le hdr off_checksum 0L;
      if not (Int64.equal stored_sum (fnv1a hdr header_hashed)) then
        err "snapshot: header checksum mismatch (corrupt file)";
      Bytes.sub_string hdr off_digest 32)
