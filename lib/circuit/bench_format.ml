exception Parse_error of int * string

type op =
  | Op_and
  | Op_or
  | Op_nand
  | Op_nor
  | Op_not
  | Op_buf
  | Op_xor
  | Op_xnor
  | Op_dff

let op_of_string line_no s =
  match String.uppercase_ascii s with
  | "AND" -> Op_and
  | "OR" -> Op_or
  | "NAND" -> Op_nand
  | "NOR" -> Op_nor
  | "NOT" | "INV" -> Op_not
  | "BUF" | "BUFF" -> Op_buf
  | "XOR" -> Op_xor
  | "XNOR" -> Op_xnor
  | "DFF" -> Op_dff
  | other -> raise (Parse_error (line_no, "unknown operator " ^ other))

type decl = {
  line : int;
  target : string;
  op : op;
  args : string list;
  strength : float;
}

type parsed = {
  p_inputs : (int * string) list;  (* (line, name), in file order *)
  p_outputs : string list;
  p_decls : decl list;
}

let strip s = String.trim s

let split_args s =
  String.split_on_char ',' s
  |> List.map strip
  |> List.filter (fun a -> a <> "")

(* Strength annotations ride in comments ("# strength=2") so sized netlists
   round-trip while plain ISCAS89 files stay untouched. *)
let strength_of_comment comment =
  let marker = "strength=" in
  let mlen = String.length marker in
  let clen = String.length comment in
  let rec find i =
    if i + mlen > clen then None
    else if String.sub comment i mlen = marker then begin
      let j = ref (i + mlen) in
      while
        !j < clen
        && (match comment.[!j] with '0' .. '9' | '.' | 'e' | '-' | '+' -> true | _ -> false)
      do
        incr j
      done;
      float_of_string_opt (String.sub comment (i + mlen) (!j - i - mlen))
    end
    else find (i + 1)
  in
  find 0

(* Recognize "NAME = OP(arg, ...)" / "INPUT(x)" / "OUTPUT(x)". *)
let parse_line line_no raw acc =
  let line, strength =
    match String.index_opt raw '#' with
    | Some i ->
      let comment = String.sub raw i (String.length raw - i) in
      ( String.sub raw 0 i,
        Option.value ~default:1.0 (strength_of_comment comment) )
    | None -> (raw, 1.0)
  in
  let line = strip line in
  if line = "" then acc
  else begin
    let paren_body prefix =
      let plen = String.length prefix in
      if String.length line > plen
         && String.uppercase_ascii (String.sub line 0 plen) = prefix
      then begin
        let rest = strip (String.sub line plen (String.length line - plen)) in
        if String.length rest >= 2 && rest.[0] = '(' && rest.[String.length rest - 1] = ')'
        then Some (strip (String.sub rest 1 (String.length rest - 2)))
        else raise (Parse_error (line_no, "malformed " ^ prefix ^ " line"))
      end
      else None
    in
    match paren_body "INPUT" with
    | Some name -> { acc with p_inputs = (line_no, name) :: acc.p_inputs }
    | None ->
      match paren_body "OUTPUT" with
      | Some name -> { acc with p_outputs = name :: acc.p_outputs }
      | None ->
        match String.index_opt line '=' with
        | None -> raise (Parse_error (line_no, "expected assignment: " ^ line))
        | Some eq ->
          let target = strip (String.sub line 0 eq) in
          let rhs = strip (String.sub line (eq + 1) (String.length line - eq - 1)) in
          (match String.index_opt rhs '(' with
           | None -> raise (Parse_error (line_no, "expected OP(...): " ^ rhs))
           | Some lp ->
             if rhs.[String.length rhs - 1] <> ')' then
               raise (Parse_error (line_no, "missing ')': " ^ rhs));
             let opname = strip (String.sub rhs 0 lp) in
             let body = String.sub rhs (lp + 1) (String.length rhs - lp - 2) in
             let args = split_args body in
             if target = "" then raise (Parse_error (line_no, "empty target"));
             if args = [] then raise (Parse_error (line_no, "no arguments"));
             let d =
               { line = line_no; target; op = op_of_string line_no opname;
                 args; strength }
             in
             { acc with p_decls = d :: acc.p_decls })
  end

let parse_text text =
  let lines = String.split_on_char '\n' text in
  let acc = { p_inputs = []; p_outputs = []; p_decls = [] } in
  let parsed, _ =
    List.fold_left
      (fun (acc, no) l -> (parse_line no l acc, no + 1))
      (acc, 1) lines
  in
  {
    p_inputs = List.rev parsed.p_inputs;
    p_outputs = List.rev parsed.p_outputs;
    p_decls = List.rev parsed.p_decls;
  }

(* Reduce a wide associative gate to a tree of <=4-input cells. The final
   cell carries the output polarity; inner levels use the plain AND/OR. *)
let rec reduce_tree b mk_inner (nets : Netlist.net list) =
  if List.length nets <= 4 then Array.of_list nets
  else begin
    let rec chunk acc current = function
      | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
      | x :: rest ->
        if List.length current = 4 then chunk (List.rev current :: acc) [ x ] rest
        else chunk acc (x :: current) rest
    in
    let groups = chunk [] [] nets in
    let reduced =
      List.map
        (fun group ->
          match group with
          | [ single ] -> single
          | group -> Netlist.Builder.gate b (mk_inner (List.length group)) (Array.of_list group))
        groups
    in
    reduce_tree b mk_inner reduced
  end

let build_gate b op ~strength (args : Netlist.net list) =
  let module B = Netlist.Builder in
  let gate kind arr = B.gate ~strength b kind arr in
  let n = List.length args in
  let arr = Array.of_list args in
  match op, n with
  | Op_not, 1 -> gate Gate.Inv arr
  | Op_buf, 1 -> gate Gate.Buf arr
  | (Op_not | Op_buf), _ ->
    invalid_arg "bench: NOT/BUFF takes exactly one argument"
  | Op_and, 1 -> gate Gate.Buf arr
  | Op_or, 1 -> gate Gate.Buf arr
  | Op_nand, 1 -> gate Gate.Inv arr
  | Op_nor, 1 -> gate Gate.Inv arr
  | Op_and, n when n <= 4 -> gate (Gate.And n) arr
  | Op_or, n when n <= 4 -> gate (Gate.Or n) arr
  | Op_nand, n when n <= 4 -> gate (Gate.Nand n) arr
  | Op_nor, n when n <= 4 -> gate (Gate.Nor n) arr
  | Op_and, _ ->
    let leaves = reduce_tree b (fun k -> Gate.And k) args in
    gate (Gate.And (Array.length leaves)) leaves
  | Op_or, _ ->
    let leaves = reduce_tree b (fun k -> Gate.Or k) args in
    gate (Gate.Or (Array.length leaves)) leaves
  | Op_nand, _ ->
    let leaves = reduce_tree b (fun k -> Gate.And k) args in
    gate (Gate.Nand (Array.length leaves)) leaves
  | Op_nor, _ ->
    let leaves = reduce_tree b (fun k -> Gate.Or k) args in
    gate (Gate.Nor (Array.length leaves)) leaves
  | Op_xor, 2 -> gate Gate.Xor arr
  | Op_xnor, 2 -> gate Gate.Xnor arr
  | Op_xor, _ ->
    (* left-fold XOR chain *)
    (match args with
     | [] | [ _ ] -> invalid_arg "bench: XOR needs >= 2 arguments"
     | first :: rest ->
       List.fold_left (fun acc a -> gate Gate.Xor [| acc; a |]) first rest)
  | Op_xnor, _ ->
    (match args with
     | [] | [ _ ] -> invalid_arg "bench: XNOR needs >= 2 arguments"
     | first :: rest ->
       let x = List.fold_left (fun acc a -> gate Gate.Xor [| acc; a |]) first rest in
       gate Gate.Inv [| x |])
  | Op_dff, _ -> invalid_arg "bench: DFF handled separately"

let parse_string ~name text =
  let parsed = parse_text text in
  let module B = Netlist.Builder in
  let b = B.create name in
  let net_of_name : (string, Netlist.net) Hashtbl.t = Hashtbl.create 256 in
  let decl_of_target : (string, decl) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun d ->
      if Hashtbl.mem decl_of_target d.target then
        raise (Parse_error (d.line, "redefinition of " ^ d.target));
      Hashtbl.replace decl_of_target d.target d)
    parsed.p_decls;
  (* Primary inputs, then flip-flop Q nets as pseudo-inputs (file order).
     A name may be declared as an input at most once, and never also appear
     as a combinational gate target — Hashtbl.replace would otherwise drop
     one of the two declarations silently. *)
  List.iter
    (fun (line_no, n) ->
      if Hashtbl.mem net_of_name n then
        raise (Parse_error (line_no, "duplicate INPUT declaration of " ^ n));
      (match Hashtbl.find_opt decl_of_target n with
       | Some d when d.op <> Op_dff ->
         raise
           (Parse_error
              (d.line, "gate output " ^ n ^ " shadows an INPUT of the same name"))
       | _ -> ());
      Hashtbl.replace net_of_name n (B.input ~name:n b))
    parsed.p_inputs;
  List.iter
    (fun d ->
      if d.op = Op_dff then begin
        if Hashtbl.mem net_of_name d.target then
          raise (Parse_error (d.line, "DFF output clashes with input " ^ d.target));
        Hashtbl.replace net_of_name d.target (B.input ~name:d.target b)
      end)
    parsed.p_decls;
  (* Recursive elaboration in dependency order. *)
  let in_progress = Hashtbl.create 16 in
  let rec net_of line_no target =
    match Hashtbl.find_opt net_of_name target with
    | Some n -> n
    | None ->
      if Hashtbl.mem in_progress target then
        raise (Parse_error (line_no, "combinational cycle through " ^ target));
      (match Hashtbl.find_opt decl_of_target target with
       | None -> raise (Parse_error (line_no, "undefined signal " ^ target))
       | Some d ->
         Hashtbl.replace in_progress target ();
         let args = List.map (net_of d.line) d.args in
         let net =
           try build_gate b d.op ~strength:d.strength args
           with Invalid_argument msg -> raise (Parse_error (d.line, msg))
         in
         Hashtbl.remove in_progress target;
         Hashtbl.replace net_of_name target net;
         net)
  in
  (* Elaborate everything reachable from outputs and DFF data pins, then any
     remaining dangling definitions so validation sees a closed circuit. *)
  List.iter (fun o -> ignore (net_of 0 o)) parsed.p_outputs;
  List.iter
    (fun d -> if d.op = Op_dff then
        List.iter (fun a -> ignore (net_of d.line a)) d.args)
    parsed.p_decls;
  List.iter
    (fun d -> if d.op <> Op_dff then ignore (net_of d.line d.target))
    parsed.p_decls;
  (* POs, plus DFF D pins as pseudo-outputs. *)
  List.iter (fun o -> B.mark_output b (net_of 0 o)) parsed.p_outputs;
  List.iter
    (fun d ->
      if d.op = Op_dff then
        List.iter (fun a -> B.mark_output b (net_of d.line a)) d.args)
    parsed.p_decls;
  B.finish b

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  let name = Filename.remove_extension (Filename.basename path) in
  parse_string ~name text

let op_name_of_kind = function
  | Gate.Inv -> "NOT"
  | Gate.Buf -> "BUFF"
  | Gate.Nand _ -> "NAND"
  | Gate.Nor _ -> "NOR"
  | Gate.And _ -> "AND"
  | Gate.Or _ -> "OR"
  | Gate.Xor -> "XOR"
  | Gate.Xnor -> "XNOR"
  | Gate.Aoi21 | Gate.Aoi22 | Gate.Oai21 | Gate.Oai22 ->
    invalid_arg "bench: complex cells are decomposed when written"

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "# %s\n" (Netlist.name t));
  Array.iter
    (fun n -> Buffer.add_string buf (Printf.sprintf "INPUT(%s)\n" (Netlist.net_name t n)))
    (Netlist.inputs t);
  Array.iter
    (fun n -> Buffer.add_string buf (Printf.sprintf "OUTPUT(%s)\n" (Netlist.net_name t n)))
    (Netlist.outputs t);
  Buffer.add_char buf '\n';
  let line ?(strength = 1.0) target op args =
    let annotation =
      if strength = 1.0 then ""
      else Printf.sprintf "  # strength=%g" strength
    in
    Buffer.add_string buf
      (Printf.sprintf "%s = %s(%s)%s\n" target op (String.concat ", " args)
         annotation)
  in
  Array.iter
    (fun (g : Netlist.gate) ->
      let pin i = Netlist.net_name t g.fan_in.(i) in
      let args = List.init (Array.length g.fan_in) pin in
      let out = Netlist.net_name t g.out in
      (* .bench has no complex-gate ops: AOI/OAI are emitted as their
         AND/OR + NOR/NAND decomposition through fresh helper nets. The
         round trip preserves the logic function (not the cell count). *)
      let tmp i = Printf.sprintf "__%s_t%d" out i in
      let strength = g.strength in
      match g.kind with
      | Gate.Aoi21 ->
        line ~strength (tmp 0) "AND" [ pin 0; pin 1 ];
        line ~strength out "NOR" [ tmp 0; pin 2 ]
      | Gate.Aoi22 ->
        line ~strength (tmp 0) "AND" [ pin 0; pin 1 ];
        line ~strength (tmp 1) "AND" [ pin 2; pin 3 ];
        line ~strength out "NOR" [ tmp 0; tmp 1 ]
      | Gate.Oai21 ->
        line ~strength (tmp 0) "OR" [ pin 0; pin 1 ];
        line ~strength out "NAND" [ tmp 0; pin 2 ]
      | Gate.Oai22 ->
        line ~strength (tmp 0) "OR" [ pin 0; pin 1 ];
        line ~strength (tmp 1) "OR" [ pin 2; pin 3 ];
        line ~strength out "NAND" [ tmp 0; tmp 1 ]
      | Gate.Inv | Gate.Buf | Gate.Nand _ | Gate.Nor _ | Gate.And _
      | Gate.Or _ | Gate.Xor | Gate.Xnor ->
        line ~strength out (op_name_of_kind g.kind) args)
    (Netlist.gates t);
  Buffer.contents buf

let write_file path t =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc
