exception Parse_error of int * string

type op =
  | Op_and
  | Op_or
  | Op_nand
  | Op_nor
  | Op_not
  | Op_buf
  | Op_xor
  | Op_xnor
  | Op_dff

let op_of_string line_no s =
  match String.uppercase_ascii s with
  | "AND" -> Op_and
  | "OR" -> Op_or
  | "NAND" -> Op_nand
  | "NOR" -> Op_nor
  | "NOT" | "INV" -> Op_not
  | "BUF" | "BUFF" -> Op_buf
  | "XOR" -> Op_xor
  | "XNOR" -> Op_xnor
  | "DFF" -> Op_dff
  | other -> raise (Parse_error (line_no, "unknown operator " ^ other))

let op_code = function
  | Op_and -> 0 | Op_or -> 1 | Op_nand -> 2 | Op_nor -> 3 | Op_not -> 4
  | Op_buf -> 5 | Op_xor -> 6 | Op_xnor -> 7 | Op_dff -> 8

let op_of_code = [| Op_and; Op_or; Op_nand; Op_nor; Op_not; Op_buf; Op_xor;
                    Op_xnor; Op_dff |]

let strip s = String.trim s

(* Strength annotations ride in comments ("# strength=2") so sized netlists
   round-trip while plain ISCAS89 files stay untouched. *)
let strength_of_comment comment =
  let marker = "strength=" in
  let mlen = String.length marker in
  let clen = String.length comment in
  let rec find i =
    if i + mlen > clen then None
    else if String.sub comment i mlen = marker then begin
      let j = ref (i + mlen) in
      while
        !j < clen
        && (match comment.[!j] with '0' .. '9' | '.' | 'e' | '-' | '+' -> true | _ -> false)
      do
        incr j
      done;
      float_of_string_opt (String.sub comment (i + mlen) (!j - i - mlen))
    end
    else find (i + 1)
  in
  find 0

(* ------------------------------------------------- streaming front-end *)

(* The parser consumes the input one line at a time and never holds the
   file — or a list of its lines — in memory. Every signal name is interned
   into a dense id the moment it is first seen; declarations are stored as
   flat int/float buffers (target id, op code, argument ids in a CSR
   layout), so a million-gate file costs a few flat arrays plus one string
   per distinct signal name, not a heap record per line. *)

module Vec = struct
  type t = { mutable a : int array; mutable len : int }

  let create () = { a = Array.make 16 0; len = 0 }

  let push v x =
    if v.len = Array.length v.a then begin
      let a = Array.make (2 * v.len) 0 in
      Array.blit v.a 0 a 0 v.len;
      v.a <- a
    end;
    v.a.(v.len) <- x;
    v.len <- v.len + 1

  let get v i = v.a.(i)
  let set v i x = v.a.(i) <- x
end

module Fvec = struct
  type t = { mutable a : float array; mutable len : int }

  let create () = { a = Array.make 16 0.0; len = 0 }

  let push v x =
    if v.len = Array.length v.a then begin
      let a = Array.make (2 * v.len) 0.0 in
      Array.blit v.a 0 a 0 v.len;
      v.a <- a
    end;
    v.a.(v.len) <- x;
    v.len <- v.len + 1

  let get v i = v.a.(i)
end

type stream = {
  sig_id : (string, int) Hashtbl.t;
  mutable sig_names : string array;     (* grows with the intern table *)
  mutable sig_count : int;
  sig_decl : Vec.t;     (* per signal: decl index or -1 *)
  sig_out : Vec.t;      (* per signal: 1 if already OUTPUT-declared *)
  (* declarations, flat *)
  d_tgt : Vec.t;
  d_op : Vec.t;
  d_line : Vec.t;
  d_strength : Fvec.t;
  d_arg_off : Vec.t;    (* length d_count + 1 *)
  d_args : Vec.t;
  (* file-order interface declarations *)
  in_lines : Vec.t;
  in_sigs : Vec.t;
  out_sigs : Vec.t;
}

let stream_create () =
  let st = {
    sig_id = Hashtbl.create 1024;
    sig_names = Array.make 16 "";
    sig_count = 0;
    sig_decl = Vec.create ();
    sig_out = Vec.create ();
    d_tgt = Vec.create ();
    d_op = Vec.create ();
    d_line = Vec.create ();
    d_strength = Fvec.create ();
    d_arg_off = Vec.create ();
    d_args = Vec.create ();
    in_lines = Vec.create ();
    in_sigs = Vec.create ();
    out_sigs = Vec.create ();
  } in
  Vec.push st.d_arg_off 0;
  st

let intern st name =
  match Hashtbl.find_opt st.sig_id name with
  | Some id -> id
  | None ->
    let id = st.sig_count in
    Hashtbl.add st.sig_id name id;
    if id = Array.length st.sig_names then begin
      let a = Array.make (2 * id) "" in
      Array.blit st.sig_names 0 a 0 id;
      st.sig_names <- a
    end;
    st.sig_names.(id) <- name;
    st.sig_count <- id + 1;
    Vec.push st.sig_decl (-1);
    Vec.push st.sig_out 0;
    id

(* Recognize "NAME = OP(arg, ...)" / "INPUT(x)" / "OUTPUT(x)". *)
let process_line st line_no raw =
  (* Windows-authored files end lines with \r\n: input_line keeps the \r,
     so strip it explicitly before anything else looks at the line. *)
  let raw =
    let n = String.length raw in
    if n > 0 && raw.[n - 1] = '\r' then String.sub raw 0 (n - 1) else raw
  in
  let line, strength =
    match String.index_opt raw '#' with
    | Some i ->
      let comment = String.sub raw i (String.length raw - i) in
      ( String.sub raw 0 i,
        Option.value ~default:1.0 (strength_of_comment comment) )
    | None -> (raw, 1.0)
  in
  let line = strip line in
  if line = "" then ()
  else begin
    let paren_body prefix =
      let plen = String.length prefix in
      if String.length line > plen
         && String.uppercase_ascii (String.sub line 0 plen) = prefix
      then begin
        let rest = strip (String.sub line plen (String.length line - plen)) in
        if String.length rest >= 2 && rest.[0] = '(' && rest.[String.length rest - 1] = ')'
        then Some (strip (String.sub rest 1 (String.length rest - 2)))
        else raise (Parse_error (line_no, "malformed " ^ prefix ^ " line"))
      end
      else None
    in
    match paren_body "INPUT" with
    | Some name ->
      Vec.push st.in_lines line_no;
      Vec.push st.in_sigs (intern st name)
    | None ->
      match paren_body "OUTPUT" with
      | Some name ->
        let sid = intern st name in
        if Vec.get st.sig_out sid <> 0 then
          raise
            (Parse_error (line_no, "duplicate OUTPUT declaration of " ^ name));
        Vec.set st.sig_out sid 1;
        Vec.push st.out_sigs sid
      | None ->
        match String.index_opt line '=' with
        | None -> raise (Parse_error (line_no, "expected assignment: " ^ line))
        | Some eq ->
          let target = strip (String.sub line 0 eq) in
          let rhs = strip (String.sub line (eq + 1) (String.length line - eq - 1)) in
          (match String.index_opt rhs '(' with
           | None -> raise (Parse_error (line_no, "expected OP(...): " ^ rhs))
           | Some lp ->
             if rhs.[String.length rhs - 1] <> ')' then
               raise (Parse_error (line_no, "missing ')': " ^ rhs));
             let opname = strip (String.sub rhs 0 lp) in
             let body = String.sub rhs (lp + 1) (String.length rhs - lp - 2) in
             if target = "" then raise (Parse_error (line_no, "empty target"));
             let tgt = intern st target in
             if Vec.get st.sig_decl tgt >= 0 then
               raise (Parse_error (line_no, "redefinition of " ^ target));
             let op = op_of_string line_no opname in
             let d = st.d_tgt.Vec.len in
             let argc = ref 0 in
             String.split_on_char ',' body
             |> List.iter (fun a ->
                    let a = strip a in
                    if a <> "" then begin
                      Vec.push st.d_args (intern st a);
                      incr argc
                    end);
             if !argc = 0 then raise (Parse_error (line_no, "no arguments"));
             Vec.push st.d_arg_off st.d_args.Vec.len;
             Vec.push st.d_tgt tgt;
             Vec.push st.d_op (op_code op);
             Vec.push st.d_line line_no;
             Fvec.push st.d_strength strength;
             Vec.set st.sig_decl tgt d)
  end

(* Reduce a wide associative gate to a tree of <=4-input cells. The final
   cell carries the output polarity; inner levels use the plain AND/OR. *)
let rec reduce_tree b mk_inner (nets : Netlist.net list) =
  if List.length nets <= 4 then Array.of_list nets
  else begin
    let rec chunk acc current = function
      | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
      | x :: rest ->
        if List.length current = 4 then chunk (List.rev current :: acc) [ x ] rest
        else chunk acc (x :: current) rest
    in
    let groups = chunk [] [] nets in
    let reduced =
      List.map
        (fun group ->
          match group with
          | [ single ] -> single
          | group -> Netlist.Builder.gate b (mk_inner (List.length group)) (Array.of_list group))
        groups
    in
    reduce_tree b mk_inner reduced
  end

let build_gate b op ~strength (args : Netlist.net list) =
  let module B = Netlist.Builder in
  let gate kind arr = B.gate ~strength b kind arr in
  let n = List.length args in
  let arr = Array.of_list args in
  match op, n with
  | Op_not, 1 -> gate Gate.Inv arr
  | Op_buf, 1 -> gate Gate.Buf arr
  | (Op_not | Op_buf), _ ->
    invalid_arg "bench: NOT/BUFF takes exactly one argument"
  | Op_and, 1 -> gate Gate.Buf arr
  | Op_or, 1 -> gate Gate.Buf arr
  | Op_nand, 1 -> gate Gate.Inv arr
  | Op_nor, 1 -> gate Gate.Inv arr
  | Op_and, n when n <= 4 -> gate (Gate.And n) arr
  | Op_or, n when n <= 4 -> gate (Gate.Or n) arr
  | Op_nand, n when n <= 4 -> gate (Gate.Nand n) arr
  | Op_nor, n when n <= 4 -> gate (Gate.Nor n) arr
  | Op_and, _ ->
    let leaves = reduce_tree b (fun k -> Gate.And k) args in
    gate (Gate.And (Array.length leaves)) leaves
  | Op_or, _ ->
    let leaves = reduce_tree b (fun k -> Gate.Or k) args in
    gate (Gate.Or (Array.length leaves)) leaves
  | Op_nand, _ ->
    let leaves = reduce_tree b (fun k -> Gate.And k) args in
    gate (Gate.Nand (Array.length leaves)) leaves
  | Op_nor, _ ->
    let leaves = reduce_tree b (fun k -> Gate.Or k) args in
    gate (Gate.Nor (Array.length leaves)) leaves
  | Op_xor, 2 -> gate Gate.Xor arr
  | Op_xnor, 2 -> gate Gate.Xnor arr
  | Op_xor, _ ->
    (* left-fold XOR chain *)
    (match args with
     | [] | [ _ ] -> invalid_arg "bench: XOR needs >= 2 arguments"
     | first :: rest ->
       List.fold_left (fun acc a -> gate Gate.Xor [| acc; a |]) first rest)
  | Op_xnor, _ ->
    (match args with
     | [] | [ _ ] -> invalid_arg "bench: XNOR needs >= 2 arguments"
     | first :: rest ->
       let x = List.fold_left (fun acc a -> gate Gate.Xor [| acc; a |]) first rest in
       gate Gate.Inv [| x |])
  | Op_dff, _ -> invalid_arg "bench: DFF handled separately"

(* Elaborate the streamed declarations into a netlist. Same semantics as
   the historical recursive elaboration — dependency-ordered, with cycle
   and undefined-signal diagnostics carrying the referring line — but
   iterative with an explicit frame stack, so a million-gate chain does not
   overflow the OCaml stack. *)
let elaborate ~name st =
  if st.in_sigs.Vec.len = 0 && st.out_sigs.Vec.len = 0
     && st.d_tgt.Vec.len = 0
  then raise (Parse_error (0, "empty .bench: no INPUT, OUTPUT or gate lines"));
  let module B = Netlist.Builder in
  let b = B.create name in
  let sig_net = Array.make (Stdlib.max 1 st.sig_count) (-1) in
  let in_progress = Bytes.make (Stdlib.max 1 st.sig_count) '\000' in
  let sname sid = st.sig_names.(sid) in
  let decl_of sid = Vec.get st.sig_decl sid in
  let d_op d = op_of_code.(Vec.get st.d_op d) in
  let d_argc d = Vec.get st.d_arg_off (d + 1) - Vec.get st.d_arg_off d in
  let d_arg d i = Vec.get st.d_args (Vec.get st.d_arg_off d + i) in
  (* Primary inputs, then flip-flop Q nets as pseudo-inputs (file order).
     A name may be declared as an input at most once, and never also appear
     as a combinational gate target. *)
  for i = 0 to st.in_sigs.Vec.len - 1 do
    let sid = Vec.get st.in_sigs i in
    let line_no = Vec.get st.in_lines i in
    if sig_net.(sid) >= 0 then
      raise
        (Parse_error (line_no, "duplicate INPUT declaration of " ^ sname sid));
    (match decl_of sid with
     | d when d >= 0 && d_op d <> Op_dff ->
       raise
         (Parse_error
            ( Vec.get st.d_line d,
              "gate output " ^ sname sid
              ^ " shadows an INPUT of the same name" ))
     | _ -> ());
    sig_net.(sid) <- B.input ~name:(sname sid) b
  done;
  for d = 0 to st.d_tgt.Vec.len - 1 do
    if d_op d = Op_dff then begin
      let sid = Vec.get st.d_tgt d in
      if sig_net.(sid) >= 0 then
        raise
          (Parse_error
             (Vec.get st.d_line d, "DFF output clashes with input " ^ sname sid));
      sig_net.(sid) <- B.input ~name:(sname sid) b
    end
  done;
  (* Iterative dependency-ordered elaboration. A frame is a declaration
     plus the index of the next argument to resolve; a signal is
     in-progress while its frame is on the stack. *)
  let fr_decl = Vec.create () and fr_pos = Vec.create () in
  let emit d =
    let args = List.init (d_argc d) (fun i -> sig_net.(d_arg d i)) in
    let strength = Fvec.get st.d_strength d in
    match build_gate b (d_op d) ~strength args with
    | net ->
      let tgt = Vec.get st.d_tgt d in
      Bytes.set in_progress tgt '\000';
      sig_net.(tgt) <- net
    | exception Invalid_argument msg ->
      raise (Parse_error (Vec.get st.d_line d, msg))
  in
  let resolve line_no sid =
    if sig_net.(sid) < 0 then begin
      (match decl_of sid with
       | -1 -> raise (Parse_error (line_no, "undefined signal " ^ sname sid))
       | d ->
         Bytes.set in_progress sid '\001';
         Vec.push fr_decl d;
         Vec.push fr_pos 0);
      while fr_decl.Vec.len > 0 do
        let top = fr_decl.Vec.len - 1 in
        let d = Vec.get fr_decl top in
        let pos = Vec.get fr_pos top in
        if pos < d_argc d then begin
          Vec.set fr_pos top (pos + 1);
          let a = d_arg d pos in
          if sig_net.(a) < 0 then begin
            if Bytes.get in_progress a <> '\000' then
              raise
                (Parse_error
                   (Vec.get st.d_line d, "combinational cycle through " ^ sname a));
            match decl_of a with
            | -1 ->
              raise
                (Parse_error
                   (Vec.get st.d_line d, "undefined signal " ^ sname a))
            | da ->
              Bytes.set in_progress a '\001';
              Vec.push fr_decl da;
              Vec.push fr_pos 0
          end
        end
        else begin
          emit d;
          fr_decl.Vec.len <- top;
          fr_pos.Vec.len <- top
        end
      done
    end
  in
  (* Elaborate everything reachable from outputs and DFF data pins, then any
     remaining dangling definitions so validation sees a closed circuit. *)
  for i = 0 to st.out_sigs.Vec.len - 1 do
    resolve 0 (Vec.get st.out_sigs i)
  done;
  for d = 0 to st.d_tgt.Vec.len - 1 do
    if d_op d = Op_dff then
      for i = 0 to d_argc d - 1 do
        resolve (Vec.get st.d_line d) (d_arg d i)
      done
  done;
  for d = 0 to st.d_tgt.Vec.len - 1 do
    if d_op d <> Op_dff then resolve (Vec.get st.d_line d) (Vec.get st.d_tgt d)
  done;
  (* POs, plus DFF D pins as pseudo-outputs. *)
  for i = 0 to st.out_sigs.Vec.len - 1 do
    B.mark_output b sig_net.(Vec.get st.out_sigs i)
  done;
  for d = 0 to st.d_tgt.Vec.len - 1 do
    if d_op d = Op_dff then
      for i = 0 to d_argc d - 1 do
        B.mark_output b sig_net.(d_arg d i)
      done
  done;
  B.finish b

let parse_lines ~name next =
  let st = stream_create () in
  let line_no = ref 0 in
  let rec loop () =
    match next () with
    | None -> ()
    | Some raw ->
      incr line_no;
      process_line st !line_no raw;
      loop ()
  in
  loop ();
  elaborate ~name st

let parse_string ~name text =
  (* Walk the text segment by segment instead of materializing a line
     list; semantics match [String.split_on_char '\n']. *)
  let len = String.length text in
  let pos = ref 0 in
  let next () =
    if !pos > len then None
    else
      match String.index_from_opt text !pos '\n' with
      | Some i ->
        let s = String.sub text !pos (i - !pos) in
        pos := i + 1;
        Some s
      | None ->
        let s = String.sub text !pos (len - !pos) in
        pos := len + 1;
        Some s
  in
  parse_lines ~name next

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let next () =
        match input_line ic with
        | line -> Some line
        | exception End_of_file -> None
      in
      let name = Filename.remove_extension (Filename.basename path) in
      parse_lines ~name next)

(* ----------------------------------------------------------- writer *)

let op_name_of_kind = function
  | Gate.Inv -> "NOT"
  | Gate.Buf -> "BUFF"
  | Gate.Nand _ -> "NAND"
  | Gate.Nor _ -> "NOR"
  | Gate.And _ -> "AND"
  | Gate.Or _ -> "OR"
  | Gate.Xor -> "XOR"
  | Gate.Xnor -> "XNOR"
  | Gate.Aoi21 | Gate.Aoi22 | Gate.Oai21 | Gate.Oai22 ->
    invalid_arg "bench: complex cells are decomposed when written"

(* Emit through a callback so [write_file] streams straight to the channel
   (never holding the rendered text in memory) while [to_string] collects
   into a buffer. Iterates flat storage; no gate-record view. *)
let emit t put =
  put (Printf.sprintf "# %s\n" (Netlist.name t));
  Array.iter
    (fun n -> put (Printf.sprintf "INPUT(%s)\n" (Netlist.net_name t n)))
    (Netlist.inputs t);
  Array.iter
    (fun n -> put (Printf.sprintf "OUTPUT(%s)\n" (Netlist.net_name t n)))
    (Netlist.outputs t);
  put "\n";
  let line ?(strength = 1.0) target op args =
    let annotation =
      if strength = 1.0 then ""
      else Printf.sprintf "  # strength=%g" strength
    in
    put
      (Printf.sprintf "%s = %s(%s)%s\n" target op (String.concat ", " args)
         annotation)
  in
  for g = 0 to Netlist.gate_count t - 1 do
    let kind = Netlist.gate_kind t g in
    let pin i = Netlist.net_name t (Netlist.gate_pin t g i) in
    let args = List.init (Netlist.gate_arity t g) pin in
    let out = Netlist.net_name t (Netlist.gate_out t g) in
    (* .bench has no complex-gate ops: AOI/OAI are emitted as their
       AND/OR + NOR/NAND decomposition through fresh helper nets. The
       round trip preserves the logic function (not the cell count). *)
    let tmp i = Printf.sprintf "__%s_t%d" out i in
    let strength = Netlist.gate_strength t g in
    match kind with
    | Gate.Aoi21 ->
      line ~strength (tmp 0) "AND" [ pin 0; pin 1 ];
      line ~strength out "NOR" [ tmp 0; pin 2 ]
    | Gate.Aoi22 ->
      line ~strength (tmp 0) "AND" [ pin 0; pin 1 ];
      line ~strength (tmp 1) "AND" [ pin 2; pin 3 ];
      line ~strength out "NOR" [ tmp 0; tmp 1 ]
    | Gate.Oai21 ->
      line ~strength (tmp 0) "OR" [ pin 0; pin 1 ];
      line ~strength out "NAND" [ tmp 0; pin 2 ]
    | Gate.Oai22 ->
      line ~strength (tmp 0) "OR" [ pin 0; pin 1 ];
      line ~strength (tmp 1) "OR" [ pin 2; pin 3 ];
      line ~strength out "NAND" [ tmp 0; tmp 1 ]
    | Gate.Inv | Gate.Buf | Gate.Nand _ | Gate.Nor _ | Gate.And _
    | Gate.Or _ | Gate.Xor | Gate.Xnor ->
      line ~strength out (op_name_of_kind kind) args
  done

let to_string t =
  let buf = Buffer.create 4096 in
  emit t (Buffer.add_string buf);
  Buffer.contents buf

let write_file path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> emit t (output_string oc))
