let keywords = [
  "module"; "endmodule"; "input"; "output"; "inout"; "wire"; "reg"; "assign";
  "and"; "or"; "nand"; "nor"; "xor"; "xnor"; "not"; "buf"; "always"; "begin";
  "end"; "if"; "else"; "case"; "endcase"; "for"; "while"; "signed"; "integer";
]

let sanitize_identifier s =
  let mangled =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
        | _ -> '_')
      s
  in
  let mangled = if mangled = "" then "n" else mangled in
  let mangled =
    match mangled.[0] with
    | '0' .. '9' -> "n" ^ mangled
    | _ -> mangled
  in
  if List.mem mangled keywords then mangled ^ "_" else mangled

(* Unique sanitized name per net: collisions get _2, _3, ... *)
let name_table t =
  let used = Hashtbl.create 97 in
  let names = Array.make (Netlist.net_count t) "" in
  for net = 0 to Netlist.net_count t - 1 do
    let base = sanitize_identifier (Netlist.net_name t net) in
    let rec unique candidate k =
      if Hashtbl.mem used candidate then
        unique (Printf.sprintf "%s_%d" base k) (k + 1)
      else candidate
    in
    let final = unique base 2 in
    Hashtbl.replace used final ();
    names.(net) <- final
  done;
  names

let to_string ?module_name t =
  let module_name =
    match module_name with
    | Some m -> sanitize_identifier m
    | None -> sanitize_identifier (Netlist.name t)
  in
  let names = name_table t in
  let buf = Buffer.create 4096 in
  let inputs = Array.to_list (Netlist.inputs t) in
  let outputs = Array.to_list (Netlist.outputs t) in
  let ports = List.map (fun n -> names.(n)) (inputs @ outputs) in
  Buffer.add_string buf
    (Printf.sprintf "module %s(%s);\n" module_name (String.concat ", " ports));
  List.iter
    (fun n -> Buffer.add_string buf (Printf.sprintf "  input %s;\n" names.(n)))
    inputs;
  List.iter
    (fun n -> Buffer.add_string buf (Printf.sprintf "  output %s;\n" names.(n)))
    outputs;
  (* wires: every gate-driven net that is not a port *)
  for g = 0 to Netlist.gate_count t - 1 do
    let out = Netlist.gate_out t g in
    if not (Netlist.is_output t out) then
      Buffer.add_string buf (Printf.sprintf "  wire %s;\n" names.(out))
  done;
  Buffer.add_char buf '\n';
  let counter = ref 0 in
  let instance prim out args =
    incr counter;
    Buffer.add_string buf
      (Printf.sprintf "  %s g%d(%s, %s);\n" prim !counter out
         (String.concat ", " args))
  in
  for g = 0 to Netlist.gate_count t - 1 do
    let out = names.(Netlist.gate_out t g) in
    let pin i = names.(Netlist.gate_pin t g i) in
    let args = List.init (Netlist.gate_arity t g) pin in
    let helper i = Printf.sprintf "%s_t%d" out i in
    let declare_helper i =
      Buffer.add_string buf (Printf.sprintf "  wire %s;\n" (helper i))
    in
    (match Netlist.gate_kind t g with
      | Gate.Inv -> instance "not" out args
      | Gate.Buf -> instance "buf" out args
      | Gate.Nand _ -> instance "nand" out args
      | Gate.Nor _ -> instance "nor" out args
      | Gate.And _ -> instance "and" out args
      | Gate.Or _ -> instance "or" out args
      | Gate.Xor -> instance "xor" out args
      | Gate.Xnor -> instance "xnor" out args
      | Gate.Aoi21 ->
        declare_helper 0;
        instance "and" (helper 0) [ pin 0; pin 1 ];
        instance "nor" out [ helper 0; pin 2 ]
      | Gate.Aoi22 ->
        declare_helper 0;
        declare_helper 1;
        instance "and" (helper 0) [ pin 0; pin 1 ];
        instance "and" (helper 1) [ pin 2; pin 3 ];
        instance "nor" out [ helper 0; helper 1 ]
      | Gate.Oai21 ->
        declare_helper 0;
        instance "or" (helper 0) [ pin 0; pin 1 ];
        instance "nand" out [ helper 0; pin 2 ]
      | Gate.Oai22 ->
        declare_helper 0;
        declare_helper 1;
        instance "or" (helper 0) [ pin 0; pin 1 ];
        instance "or" (helper 1) [ pin 2; pin 3 ];
        instance "nand" out [ helper 0; helper 1 ])
  done;
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let write_file ?module_name path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string ?module_name t))
