(** Binary netlist snapshots ([LKN1]).

    A snapshot serializes a netlist's struct-of-arrays storage
    ({!Netlist.Repr}) into a page-aligned binary file so huge netlists skip
    parsing entirely: {!load} [mmap]s each section read-only and wraps the
    mapped arrays directly — a 10M-gate netlist is usable in milliseconds,
    with the pages faulted in lazily by the OS.

    File layout (all sections aligned to 4096 bytes):
    {v
      page 0   header: "LKN1", version, word size, endianness tag,
               section counts, the netlist's structural digest
               (Netlist.digest, 32 hex chars), declared file size, and an
               FNV-1a checksum of the header itself
      meta     netlist name + primary input / output net ids (read, not
               mapped)
      then     kind codes (u8), strengths (f64), pin CSR offsets, flat
               pins, output nets, net-name offsets, packed net-name blob
    v}

    Loading {e fails closed}: magic / version / word-size / endianness /
    checksum are checked first, then the file size is compared against the
    exact size implied by the header counts {e before} any mapping is
    dereferenced (a truncated file raises — it can never SIGBUS through a
    short mapping), and the mapped arrays always pass the cheap structural
    checks of {!Netlist.Repr.of_raw}. Snapshots are word-size and
    endianness specific (the header says so); a mismatching host refuses
    the file rather than misreading it. *)

exception Snapshot_error of string

val save : string -> Netlist.t -> unit
(** Write a snapshot. The output channel is closed even on raise. *)

val load : ?verify:bool -> string -> Netlist.t
(** Map a snapshot back into a netlist. With [verify] (default [true]) the
    full {!Netlist.validate} pass runs and the structural digest is
    recomputed and compared against the header — flipping any gate byte is
    detected. [~verify:false] keeps only the always-on fail-closed checks
    (header integrity, exact file size, index-range / arity / offset
    monotonicity validation) for millisecond loads of trusted files.
    Raises {!Snapshot_error} on any violation. *)

val digest_of_file : string -> string
(** The structural digest stamped in a snapshot's header, without mapping
    the netlist (header checks still apply). Matches [Netlist.digest] of
    the loaded netlist for an intact file. *)
