type assignment = Logic.value array

let run_into t pattern values =
  let pis = Netlist.inputs t in
  if Array.length pattern <> Array.length pis then
    invalid_arg
      (Printf.sprintf "Simulate.run: %d inputs expected, pattern has %d"
         (Array.length pis) (Array.length pattern));
  if Array.length values <> Netlist.net_count t then
    invalid_arg
      (Printf.sprintf "Simulate.run_into: %d nets expected, buffer has %d"
         (Netlist.net_count t) (Array.length values));
  Array.iteri (fun i n -> values.(n) <- pattern.(i)) pis;
  (* One max-arity scratch buffer serves the whole sweep: no per-gate
     allocation, no gate records — just flat int-indexed reads. *)
  let buf = Array.make 4 false in
  Array.iter
    (fun g ->
      let arity = Netlist.gate_arity t g in
      for p = 0 to arity - 1 do
        buf.(p) <- Logic.to_bool values.(Netlist.gate_pin t g p)
      done;
      values.(Netlist.gate_out t g) <-
        Logic.of_bool (Gate.eval_prefix (Netlist.gate_kind t g) buf))
    (Netlist.topo_ids t)

let run t pattern =
  let values = Array.make (Netlist.net_count t) Logic.Zero in
  run_into t pattern values;
  values

let outputs t assignment =
  Array.map (fun n -> assignment.(n)) (Netlist.outputs t)

let gate_input_vector _t assignment (g : Netlist.gate) =
  Array.map (fun n -> assignment.(n)) g.fan_in

let random_patterns rng t n =
  let width = Array.length (Netlist.inputs t) in
  List.init n (fun _ -> Logic.random_vector rng width)
