type assignment = Logic.value array

let run_into t pattern values =
  let pis = Netlist.inputs t in
  if Array.length pattern <> Array.length pis then
    invalid_arg
      (Printf.sprintf "Simulate.run: %d inputs expected, pattern has %d"
         (Array.length pis) (Array.length pattern));
  if Array.length values <> Netlist.net_count t then
    invalid_arg
      (Printf.sprintf "Simulate.run_into: %d nets expected, buffer has %d"
         (Netlist.net_count t) (Array.length values));
  Array.iteri (fun i n -> values.(n) <- pattern.(i)) pis;
  Array.iter
    (fun (g : Netlist.gate) ->
      let ins = Array.map (fun n -> values.(n)) g.fan_in in
      values.(g.out) <- Gate.eval_logic g.kind ins)
    (Topo.order t)

let run t pattern =
  let values = Array.make (Netlist.net_count t) Logic.Zero in
  run_into t pattern values;
  values

let outputs t assignment =
  Array.map (fun n -> assignment.(n)) (Netlist.outputs t)

let gate_input_vector _t assignment (g : Netlist.gate) =
  Array.map (fun n -> assignment.(n)) g.fan_in

let random_patterns rng t n =
  let width = Array.length (Netlist.inputs t) in
  List.init n (fun _ -> Logic.random_vector rng width)
