(* Kahn's algorithm (CLRS topological sort, the paper's reference [11]).

   The core works over accessor functions so struct-of-arrays callers can
   feed pins straight out of flat storage without materializing a per-gate
   [net array]. Consumer edges are kept in a CSR layout; each consumer
   slice is walked in reverse so the queue order — and with it the emitted
   topological order — is bit-identical to the historical list-based
   implementation (which prepended while scanning gates in ascending order
   and then iterated head-first). *)

let prepare_flat ~net_count ~n_gates ~source_nets ~fanin_count ~fanin
    ~gate_out =
  let net_driver = Array.make net_count (-2) in
  Array.iter (fun n -> net_driver.(n) <- -1) source_nets;
  for g = 0 to n_gates - 1 do
    net_driver.(gate_out g) <- g
  done;
  (* consumer edges driver-gate -> reading-gate; indegree counts
     gate-feeding pins only. *)
  let degree = Array.make (n_gates + 1) 0 in
  let indegree = Array.make n_gates 0 in
  let ok = ref true in
  for g = 0 to n_gates - 1 do
    for p = 0 to fanin_count g - 1 do
      let net = fanin g p in
      if net < 0 || net >= net_count then ok := false
      else
        match net_driver.(net) with
        | -2 -> ok := false (* undriven *)
        | -1 -> ()          (* source *)
        | d ->
          degree.(d) <- degree.(d) + 1;
          indegree.(g) <- indegree.(g) + 1
    done
  done;
  if not !ok then None
  else begin
    let off = Array.make (n_gates + 1) 0 in
    for g = 0 to n_gates - 1 do
      off.(g + 1) <- off.(g) + degree.(g)
    done;
    let fill = Array.make n_gates 0 in
    let edges = Array.make (Stdlib.max 1 off.(n_gates)) 0 in
    for g = 0 to n_gates - 1 do
      for p = 0 to fanin_count g - 1 do
        let net = fanin g p in
        match net_driver.(net) with
        | -1 -> ()
        | d ->
          edges.(off.(d) + fill.(d)) <- g;
          fill.(d) <- fill.(d) + 1
      done
    done;
    Some (off, edges, indegree)
  end

let sort_flat ~net_count ~n_gates ~source_nets ~fanin_count ~fanin ~gate_out =
  match
    prepare_flat ~net_count ~n_gates ~source_nets ~fanin_count ~fanin
      ~gate_out
  with
  | None -> None
  | Some (off, edges, indegree) ->
    let queue = Queue.create () in
    Array.iteri (fun g d -> if d = 0 then Queue.add g queue) indegree;
    let order = Array.make n_gates 0 in
    let filled = ref 0 in
    while not (Queue.is_empty queue) do
      let g = Queue.take queue in
      order.(!filled) <- g;
      incr filled;
      (* reverse slice order: see header comment *)
      for k = off.(g + 1) - 1 downto off.(g) do
        let c = edges.(k) in
        indegree.(c) <- indegree.(c) - 1;
        if indegree.(c) = 0 then Queue.add c queue
      done
    done;
    if !filled = n_gates then Some order else None

let levelize_flat ~net_count ~n_gates ~source_nets ~fanin_count ~fanin
    ~gate_out =
  match
    sort_flat ~net_count ~n_gates ~source_nets ~fanin_count ~fanin ~gate_out
  with
  | None -> None
  | Some order ->
    let net_level = Array.make net_count 0 in
    let gate_level = Array.make n_gates 0 in
    Array.iter
      (fun g ->
        let lvl = ref 0 in
        for p = 0 to fanin_count g - 1 do
          let l = net_level.(fanin g p) in
          if l > !lvl then lvl := l
        done;
        let lvl = !lvl + 1 in
        gate_level.(g) <- lvl;
        net_level.(gate_out g) <- lvl)
      order;
    Some gate_level

let sort ~net_count ~source_nets ~gate_inputs ~gate_outputs =
  sort_flat ~net_count
    ~n_gates:(Array.length gate_inputs)
    ~source_nets
    ~fanin_count:(fun g -> Array.length gate_inputs.(g))
    ~fanin:(fun g p -> gate_inputs.(g).(p))
    ~gate_out:(fun g -> gate_outputs.(g))

let levelize ~net_count ~source_nets ~gate_inputs ~gate_outputs =
  levelize_flat ~net_count
    ~n_gates:(Array.length gate_inputs)
    ~source_nets
    ~fanin_count:(fun g -> Array.length gate_inputs.(g))
    ~fanin:(fun g p -> gate_inputs.(g).(p))
    ~gate_out:(fun g -> gate_outputs.(g))
