module Ba = Bigarray.Array1

type net = int

type gate = {
  id : int;
  kind : Gate.kind;
  strength : float;
  fan_in : net array;
  out : net;
}

type int_arr = (int, Bigarray.int_elt, Bigarray.c_layout) Ba.t
type f64_arr = (float, Bigarray.float64_elt, Bigarray.c_layout) Ba.t
type byte_arr = (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Ba.t
type char_arr = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Ba.t

(* Struct-of-arrays storage: no per-gate heap records. Gate [g]'s pins live
   in [pins.(pin_off.(g)) .. pins.(pin_off.(g+1)-1)]; net names are packed
   into one blob addressed by [name_off]. The flat arrays are Bigarrays so
   an on-disk snapshot can alias them straight out of an mmap. All arrays
   are immutable after construction — derived lookups (driver ids, fanout
   CSR, topological order, and the compatibility gate-record view) are
   cached lazily with a benign single-threaded race; see {!warm}. *)
type t = {
  nname : string;
  n_gates : int;
  nnet_count : int;
  kind_code : byte_arr;     (* n_gates; Gate.code *)
  strength_arr : f64_arr;   (* n_gates *)
  pin_off : int_arr;        (* n_gates + 1; CSR offsets into pins *)
  pins : int_arr;           (* pin_off.{n_gates} fan-in nets, pin order *)
  out_net : int_arr;        (* n_gates *)
  ninputs : net array;
  noutputs : net array;
  name_off : int_arr;       (* nnet_count + 1; offsets into name_blob *)
  name_blob : char_arr;
  is_input_flag : Bytes.t;  (* nnet_count; '\001' = primary input *)
  is_output_flag : Bytes.t;
  mutable driver_ids : int_arr option;          (* net -> gate id or -1 *)
  mutable fanout_csr : (int_arr * int_arr) option;
  mutable topo_cache : int array option;
  mutable gates_view : gate array option;
}

let name t = t.nname
let net_count t = t.nnet_count
let inputs t = t.ninputs
let outputs t = t.noutputs
let gate_count t = t.n_gates

let net_name t n =
  if n < 0 || n >= t.nnet_count then invalid_arg "Netlist.net_name";
  let off = Ba.get t.name_off n in
  let stop = Ba.get t.name_off (n + 1) in
  String.init (stop - off) (fun i -> Ba.get t.name_blob (off + i))

(* ------------------------------------------- int-indexed gate accessors *)

let check_gate_id t g =
  if g < 0 || g >= t.n_gates then
    invalid_arg (Printf.sprintf "Netlist: gate id %d out of range" g)

let gate_kind_code t g =
  check_gate_id t g;
  Ba.get t.kind_code g

let gate_kind t g = Gate.of_code (gate_kind_code t g)

let gate_strength t g =
  check_gate_id t g;
  Ba.get t.strength_arr g

let gate_arity t g =
  check_gate_id t g;
  Ba.get t.pin_off (g + 1) - Ba.get t.pin_off g

let gate_pin t g p =
  check_gate_id t g;
  let off = Ba.get t.pin_off g in
  if p < 0 || p >= Ba.get t.pin_off (g + 1) - off then
    invalid_arg (Printf.sprintf "Netlist.gate_pin: pin %d of gate %d" p g);
  Ba.get t.pins (off + p)

let gate_out t g =
  check_gate_id t g;
  Ba.get t.out_net g

let iter_pins t g f =
  check_gate_id t g;
  let off = Ba.get t.pin_off g in
  let stop = Ba.get t.pin_off (g + 1) in
  for k = off to stop - 1 do
    f (k - off) (Ba.get t.pins k)
  done

let gate_fan_in t g =
  let off = Ba.get t.pin_off g in
  Array.init
    (Ba.get t.pin_off (g + 1) - off)
    (fun p -> Ba.get t.pins (off + p))

(* ----------------------------------------------------- derived lookups *)

let int_array1 n =
  Ba.create Bigarray.int Bigarray.c_layout (Stdlib.max 0 n)

let build_driver_ids t =
  match t.driver_ids with
  | Some c -> c
  | None ->
    let c = int_array1 t.nnet_count in
    Ba.fill c (-1);
    for g = 0 to t.n_gates - 1 do
      Ba.set c (Ba.get t.out_net g) g
    done;
    t.driver_ids <- Some c;
    c

(* Fanout as CSR adjacency: the gidss for net [n] occupy
   [gids.(off.(n)) .. gids.(off.(n+1)-1)], one entry per reading pin,
   filled in ascending (gate, pin) order — the same observable order as
   the historical per-net list cache. *)
let build_fanout_csr t =
  match t.fanout_csr with
  | Some c -> c
  | None ->
    let n_pins = Ba.get t.pin_off t.n_gates in
    let off = int_array1 (t.nnet_count + 1) in
    Ba.fill off 0;
    for k = 0 to n_pins - 1 do
      let n = Ba.get t.pins k in
      Ba.set off (n + 1) (Ba.get off (n + 1) + 1)
    done;
    for n = 0 to t.nnet_count - 1 do
      Ba.set off (n + 1) (Ba.get off n + Ba.get off (n + 1))
    done;
    let gids = int_array1 n_pins in
    let fill = Array.make (Stdlib.max 1 t.nnet_count) 0 in
    for g = 0 to t.n_gates - 1 do
      for k = Ba.get t.pin_off g to Ba.get t.pin_off (g + 1) - 1 do
        let n = Ba.get t.pins k in
        Ba.set gids (Ba.get off n + fill.(n)) g;
        fill.(n) <- fill.(n) + 1
      done
    done;
    let c = (off, gids) in
    t.fanout_csr <- Some c;
    c

let driver_id t n =
  if n < 0 || n >= t.nnet_count then invalid_arg "Netlist.driver_id";
  Ba.get (build_driver_ids t) n

let fanout_degree t n =
  if n < 0 || n >= t.nnet_count then invalid_arg "Netlist.fanout_degree";
  let off, _ = build_fanout_csr t in
  Ba.get off (n + 1) - Ba.get off n

let fanout_gate t n i =
  let off, gids = build_fanout_csr t in
  if n < 0 || n >= t.nnet_count then invalid_arg "Netlist.fanout_gate";
  let base = Ba.get off n in
  if i < 0 || i >= Ba.get off (n + 1) - base then
    invalid_arg "Netlist.fanout_gate: index out of range";
  Ba.get gids (base + i)

let iter_fanout t n f =
  if n < 0 || n >= t.nnet_count then invalid_arg "Netlist.iter_fanout";
  let off, gids = build_fanout_csr t in
  for k = Ba.get off n to Ba.get off (n + 1) - 1 do
    f (Ba.get gids k)
  done

let rev_iter_fanout t n f =
  if n < 0 || n >= t.nnet_count then invalid_arg "Netlist.rev_iter_fanout";
  let off, gids = build_fanout_csr t in
  for k = Ba.get off (n + 1) - 1 downto Ba.get off n do
    f (Ba.get gids k)
  done

(* ------------------------------------------------- compatibility views *)

let gates t =
  match t.gates_view with
  | Some v -> v
  | None ->
    let v =
      Array.init t.n_gates (fun g ->
          {
            id = g;
            kind = gate_kind t g;
            strength = Ba.get t.strength_arr g;
            fan_in = gate_fan_in t g;
            out = Ba.get t.out_net g;
          })
    in
    t.gates_view <- Some v;
    v

let driver t n =
  match driver_id t n with -1 -> None | g -> Some (gates t).(g)

let fanout t n =
  let off, gids = build_fanout_csr t in
  if n < 0 || n >= t.nnet_count then invalid_arg "Netlist.fanout";
  let base = Ba.get off n in
  let v = gates t in
  List.init (Ba.get off (n + 1) - base) (fun i -> v.(Ba.get gids (base + i)))

let is_input t n = Bytes.get t.is_input_flag n <> '\000'
let is_output t n = Bytes.get t.is_output_flag n <> '\000'

let transistor_count t =
  let acc = ref 0 in
  for g = 0 to t.n_gates - 1 do
    acc := !acc + Gate.transistor_count (gate_kind t g)
  done;
  !acc

(* ------------------------------------------------- topological order *)

let topo_sort_opt t =
  Topo_check.sort_flat ~net_count:t.nnet_count ~n_gates:t.n_gates
    ~source_nets:t.ninputs
    ~fanin_count:(fun g -> Ba.get t.pin_off (g + 1) - Ba.get t.pin_off g)
    ~fanin:(fun g p -> Ba.get t.pins (Ba.get t.pin_off g + p))
    ~gate_out:(fun g -> Ba.get t.out_net g)

let topo_ids t =
  match t.topo_cache with
  | Some o -> o
  | None ->
    (match topo_sort_opt t with
     | Some o ->
       t.topo_cache <- Some o;
       o
     | None -> failwith ("Netlist.topo_ids: cycle in " ^ t.nname))

let levelize t =
  Topo_check.levelize_flat ~net_count:t.nnet_count ~n_gates:t.n_gates
    ~source_nets:t.ninputs
    ~fanin_count:(fun g -> Ba.get t.pin_off (g + 1) - Ba.get t.pin_off g)
    ~fanin:(fun g p -> Ba.get t.pins (Ba.get t.pin_off g + p))
    ~gate_out:(fun g -> Ba.get t.out_net g)

let warm t =
  ignore (build_driver_ids t);
  ignore (build_fanout_csr t);
  (match topo_sort_opt t with
   | Some o when t.topo_cache = None -> t.topo_cache <- Some o
   | _ -> ());
  ignore (gates t)

(* --------------------------------------------------------- validation *)

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let driver_count = Array.make (Stdlib.max 1 t.nnet_count) 0 in
  for g = 0 to t.n_gates - 1 do
    let o = Ba.get t.out_net g in
    driver_count.(o) <- driver_count.(o) + 1
  done;
  Array.iter (fun n -> driver_count.(n) <- driver_count.(n) + 1) t.ninputs;
  let problem = ref None in
  let record p = if !problem = None then problem := Some p in
  for n = 0 to t.nnet_count - 1 do
    let c = driver_count.(n) in
    if c = 0 then
      record (Printf.sprintf "net %d (%s) has no driver" n (net_name t n))
    else if c > 1 then
      record (Printf.sprintf "net %d (%s) has %d drivers" n (net_name t n) c)
  done;
  for g = 0 to t.n_gates - 1 do
    let pins = gate_arity t g in
    let kind = gate_kind t g in
    if pins <> Gate.arity kind then
      record
        (Printf.sprintf "gate %d (%s) has %d pins, expects %d" g
           (Gate.name kind) pins (Gate.arity kind))
  done;
  match !problem with
  | Some p -> err "%s: %s" t.nname p
  | None ->
    (match topo_sort_opt t with
     | Some _ -> Ok ()
     | None -> err "%s: combinational cycle" t.nname)

(* --------------------------------------------------- raw construction *)

module Repr = struct
  type nonrec int_arr = int_arr
  type nonrec f64_arr = f64_arr
  type nonrec byte_arr = byte_arr
  type nonrec char_arr = char_arr

  type raw = {
    r_name : string;
    r_net_count : int;
    r_kind_code : byte_arr;
    r_strength : f64_arr;
    r_pin_off : int_arr;
    r_pins : int_arr;
    r_out_net : int_arr;
    r_inputs : int array;
    r_outputs : int array;
    r_name_off : int_arr;
    r_name_blob : char_arr;
  }

  let flags net_count which =
    let f = Bytes.make (Stdlib.max 0 net_count) '\000' in
    Array.iter (fun n -> Bytes.set f n '\001') which;
    f

  (* Cheap O(n) structural checks: every index a later access could use is
     proven in range here, so a corrupt snapshot fails with [Failure] —
     never with an out-of-bounds surprise deep inside an estimator. *)
  let check r =
    let fail fmt = Printf.ksprintf failwith fmt in
    let n_gates = Ba.dim r.r_kind_code in
    let nets = r.r_net_count in
    if nets < 0 then fail "Netlist.Repr: negative net count";
    if Ba.dim r.r_strength <> n_gates then
      fail "Netlist.Repr: strength array length mismatch";
    if Ba.dim r.r_out_net <> n_gates then
      fail "Netlist.Repr: out_net array length mismatch";
    if Ba.dim r.r_pin_off <> n_gates + 1 then
      fail "Netlist.Repr: pin_off array length mismatch";
    if Ba.dim r.r_name_off <> nets + 1 then
      fail "Netlist.Repr: name_off array length mismatch";
    if n_gates > 0 || nets > 0 then begin
      if Ba.get r.r_pin_off 0 <> 0 then fail "Netlist.Repr: pin_off.(0) <> 0";
      for g = 0 to n_gates - 1 do
        if Ba.get r.r_pin_off (g + 1) < Ba.get r.r_pin_off g then
          fail "Netlist.Repr: pin_off not monotone at gate %d" g
      done;
      if Ba.get r.r_pin_off n_gates <> Ba.dim r.r_pins then
        fail "Netlist.Repr: pin_off end disagrees with pins length";
      if Ba.get r.r_name_off 0 <> 0 then
        fail "Netlist.Repr: name_off.(0) <> 0";
      for n = 0 to nets - 1 do
        if Ba.get r.r_name_off (n + 1) < Ba.get r.r_name_off n then
          fail "Netlist.Repr: name_off not monotone at net %d" n
      done;
      if Ba.get r.r_name_off nets <> Ba.dim r.r_name_blob then
        fail "Netlist.Repr: name_off end disagrees with blob length"
    end
    else if Ba.dim r.r_pins <> 0 then
      fail "Netlist.Repr: pins without gates";
    for k = 0 to Ba.dim r.r_pins - 1 do
      let n = Ba.get r.r_pins k in
      if n < 0 || n >= nets then fail "Netlist.Repr: pin net %d out of range" n
    done;
    for g = 0 to n_gates - 1 do
      let o = Ba.get r.r_out_net g in
      if o < 0 || o >= nets then
        fail "Netlist.Repr: output net %d out of range" o;
      let code = Ba.get r.r_kind_code g in
      (match Gate.of_code code with
       | exception Invalid_argument _ ->
         fail "Netlist.Repr: gate %d has unknown kind code %d" g code
       | kind ->
         let pins = Ba.get r.r_pin_off (g + 1) - Ba.get r.r_pin_off g in
         if pins <> Gate.arity kind then
           fail "Netlist.Repr: gate %d (%s) has %d pins, expects %d" g
             (Gate.name kind) pins (Gate.arity kind));
      let s = Ba.get r.r_strength g in
      if not (s > 0.0) then
        fail "Netlist.Repr: gate %d has non-positive strength" g
    done;
    Array.iter
      (fun n ->
        if n < 0 || n >= nets then
          fail "Netlist.Repr: input net %d out of range" n)
      r.r_inputs;
    Array.iter
      (fun n ->
        if n < 0 || n >= nets then
          fail "Netlist.Repr: output net %d out of range" n)
      r.r_outputs

  let of_raw ?validate:(do_validate = true) r =
    check r;
    let t =
      {
        nname = r.r_name;
        n_gates = Ba.dim r.r_kind_code;
        nnet_count = r.r_net_count;
        kind_code = r.r_kind_code;
        strength_arr = r.r_strength;
        pin_off = r.r_pin_off;
        pins = r.r_pins;
        out_net = r.r_out_net;
        ninputs = Array.copy r.r_inputs;
        noutputs = Array.copy r.r_outputs;
        name_off = r.r_name_off;
        name_blob = r.r_name_blob;
        is_input_flag = flags r.r_net_count r.r_inputs;
        is_output_flag = flags r.r_net_count r.r_outputs;
        driver_ids = None;
        fanout_csr = None;
        topo_cache = None;
        gates_view = None;
      }
    in
    if do_validate then (
      match validate t with
      | Ok () -> t
      | Error e -> failwith ("Netlist.Repr.of_raw: " ^ e))
    else t

  let to_raw t =
    {
      r_name = t.nname;
      r_net_count = t.nnet_count;
      r_kind_code = t.kind_code;
      r_strength = t.strength_arr;
      r_pin_off = t.pin_off;
      r_pins = t.pins;
      r_out_net = t.out_net;
      r_inputs = Array.copy t.ninputs;
      r_outputs = Array.copy t.noutputs;
      r_name_off = t.name_off;
      r_name_blob = t.name_blob;
    }
end

(* ---------------------------------------------------- attribute edits *)

let with_kinds_strengths t ~kinds ~strengths =
  if Array.length kinds <> t.n_gates || Array.length strengths <> t.n_gates
  then invalid_arg "Netlist.with_kinds_strengths: gate count mismatch";
  let kind_code =
    Ba.create Bigarray.int8_unsigned Bigarray.c_layout t.n_gates
  in
  let strength_arr =
    Ba.create Bigarray.float64 Bigarray.c_layout t.n_gates
  in
  Array.iteri
    (fun g k ->
      if Gate.arity k <> gate_arity t g then
        failwith
          (Printf.sprintf
             "Netlist.with_kinds_strengths: gate %d retype to %s changes \
              arity" g (Gate.name k));
      Ba.set kind_code g (Gate.code k))
    kinds;
  Array.iteri
    (fun g s ->
      if s <= 0.0 then
        invalid_arg "Netlist.with_kinds_strengths: strength must be positive";
      Ba.set strength_arr g s)
    strengths;
  {
    t with
    kind_code;
    strength_arr;
    driver_ids = None;
    fanout_csr = None;
    topo_cache = None;
    gates_view = None;
  }

let with_gates t gates' =
  if Array.length gates' <> t.n_gates then
    invalid_arg "Netlist.with_gates: gate count mismatch";
  Array.iteri
    (fun i (g : gate) ->
      if g.id <> i || g.out <> gate_out t i || g.fan_in <> gate_fan_in t i
      then
        invalid_arg
          (Printf.sprintf
             "Netlist.with_gates: gate %d changes structure (only kind and \
              strength may differ)" i);
      if g.strength <= 0.0 then
        invalid_arg "Netlist.with_gates: strength must be positive")
    gates';
  let t' =
    try
      with_kinds_strengths t
        ~kinds:(Array.map (fun g -> g.kind) gates')
        ~strengths:(Array.map (fun g -> g.strength) gates')
    with Failure e -> failwith ("Netlist.with_gates: " ^ e)
  in
  match validate t' with
  | Ok () -> t'
  | Error e -> failwith ("Netlist.with_gates: " ^ e)

(* ---------------------------------------------------------------- digest *)

(* FNV-1a over 64 bits: not cryptographic, but stable across runs and
   platforms, and two independently seeded passes give 128 bits of
   registry-key space — far beyond what a session registry can collide. *)
let fnv_prime = 0x100000001b3L

let fnv_byte h b =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let fnv_int64 h v =
  let h = ref h in
  for shift = 0 to 7 do
    h := fnv_byte !h (Int64.to_int (Int64.shift_right_logical v (shift * 8)))
  done;
  !h

let fnv_int h v = fnv_int64 h (Int64.of_int v)

let fnv_string h s =
  let h = ref (fnv_int h (String.length s)) in
  String.iter (fun c -> h := fnv_byte !h (Char.code c)) s;
  !h

(* One digest pass: label every net bottom-up — primary inputs by their
   (interface) name, every driven net by the shape of its driver (kind,
   strength, fan-in labels in pin order) — then hash the *sorted* label
   multisets. Sorting is what makes the digest canonical: gate ids, net
   numbering and declaration order all disappear, only structure and the
   interface names survive. *)
let digest_with seed t =
  let labels = Array.make (Stdlib.max 1 t.nnet_count) 0L in
  Array.iter
    (fun n ->
      labels.(n) <- fnv_string (fnv_byte seed (Char.code 'I')) (net_name t n))
    t.ninputs;
  let order =
    match topo_sort_opt t with
    | Some o -> o
    | None -> invalid_arg "Netlist.digest: not a valid DAG"
  in
  let gate_labels = Array.make t.n_gates 0L in
  Array.iter
    (fun gi ->
      let h = fnv_byte seed (Char.code 'G') in
      let h = fnv_int h (Ba.get t.kind_code gi) in
      let h = fnv_int64 h (Int64.bits_of_float (Ba.get t.strength_arr gi)) in
      let h = ref h in
      for k = Ba.get t.pin_off gi to Ba.get t.pin_off (gi + 1) - 1 do
        h := fnv_int64 !h labels.(Ba.get t.pins k)
      done;
      labels.(Ba.get t.out_net gi) <- !h;
      gate_labels.(gi) <- !h)
    order;
  let fold_sorted h arr =
    let c = Array.copy arr in
    Array.sort Int64.compare c;
    Array.fold_left fnv_int64 h c
  in
  let h = fnv_int seed t.n_gates in
  let h = fnv_int h (Array.length t.ninputs) in
  let h = fnv_int h (Array.length t.noutputs) in
  let h = fold_sorted h gate_labels in
  let h = fold_sorted h (Array.map (fun n -> labels.(n)) t.ninputs) in
  let h = fold_sorted h (Array.map (fun n -> labels.(n)) t.noutputs) in
  h

let digest t =
  Printf.sprintf "%016Lx%016Lx"
    (digest_with 0xcbf29ce484222325L t)
    (digest_with 0x6c62272e07bb0142L t)

type stats = {
  n_gates : int;
  n_nets : int;
  n_inputs : int;
  n_outputs : int;
  n_transistors : int;
  max_fanout : int;
  avg_fanout : float;
  levels : int;
  kind_histogram : (string * int) list;
}

let stats t =
  let off, _ = build_fanout_csr t in
  let max_fanout = ref 0 and total_fanout = ref 0 in
  for n = 0 to t.nnet_count - 1 do
    let d = Ba.get off (n + 1) - Ba.get off n in
    if d > !max_fanout then max_fanout := d;
    total_fanout := !total_fanout + d
  done;
  let histogram = Hashtbl.create 16 in
  for g = 0 to t.n_gates - 1 do
    let k = Gate.name (gate_kind t g) in
    Hashtbl.replace histogram k
      (1 + Option.value ~default:0 (Hashtbl.find_opt histogram k))
  done;
  let kind_histogram =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) histogram []
    |> List.sort compare
  in
  let levels =
    match levelize t with
    | Some l -> Array.fold_left Stdlib.max 0 l
    | None -> -1
  in
  {
    n_gates = t.n_gates;
    n_nets = t.nnet_count;
    n_inputs = Array.length t.ninputs;
    n_outputs = Array.length t.noutputs;
    n_transistors = transistor_count t;
    max_fanout = !max_fanout;
    avg_fanout =
      (if t.nnet_count = 0 then 0.0
       else float_of_int !total_fanout /. float_of_int t.nnet_count);
    levels;
    kind_histogram;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "gates=%d nets=%d PI=%d PO=%d transistors=%d levels=%d maxFO=%d avgFO=%.2f@ "
    s.n_gates s.n_nets s.n_inputs s.n_outputs s.n_transistors s.levels
    s.max_fanout s.avg_fanout;
  List.iter (fun (k, c) -> Format.fprintf ppf "%s:%d " k c) s.kind_histogram

module Builder = struct
  (* Growable flat buffers — amortized O(1) append, no per-gate records. *)
  type ivec = { mutable ia : int array; mutable ilen : int }
  type fvec = { mutable fa : float array; mutable flen : int }

  let ivec () = { ia = Array.make 16 0; ilen = 0 }
  let fvec () = { fa = Array.make 16 0.0; flen = 0 }

  let ipush v x =
    if v.ilen = Array.length v.ia then begin
      let a = Array.make (2 * v.ilen) 0 in
      Array.blit v.ia 0 a 0 v.ilen;
      v.ia <- a
    end;
    v.ia.(v.ilen) <- x;
    v.ilen <- v.ilen + 1

  let fpush v x =
    if v.flen = Array.length v.fa then begin
      let a = Array.make (2 * v.flen) 0.0 in
      Array.blit v.fa 0 a 0 v.flen;
      v.fa <- a
    end;
    v.fa.(v.flen) <- x;
    v.flen <- v.flen + 1

  type builder = {
    bname : string;
    names : Buffer.t;          (* packed net-name blob *)
    bname_off : ivec;          (* net_count entries; end implied by blob *)
    mutable bnet_count : int;
    bkinds : ivec;
    bstrengths : fvec;
    bpin_off : ivec;           (* gate_count entries; starts at 0 implied *)
    bpins : ivec;
    bouts : ivec;
    binputs : ivec;
    boutputs : ivec;
    mutable output_flag : Bytes.t;  (* dedup for mark_output *)
  }

  type t = builder

  let create bname =
    {
      bname;
      names = Buffer.create 256;
      bname_off = ivec ();
      bnet_count = 0;
      bkinds = ivec ();
      bstrengths = fvec ();
      bpin_off = ivec ();
      bpins = ivec ();
      bouts = ivec ();
      binputs = ivec ();
      boutputs = ivec ();
      output_flag = Bytes.make 16 '\000';
    }

  let fresh_net b name_opt =
    let id = b.bnet_count in
    ipush b.bname_off (Buffer.length b.names);
    (match name_opt with
     | Some n -> Buffer.add_string b.names n
     | None -> Buffer.add_string b.names (Printf.sprintf "n%d" id));
    b.bnet_count <- id + 1;
    if id >= Bytes.length b.output_flag then begin
      let f = Bytes.make (2 * Bytes.length b.output_flag) '\000' in
      Bytes.blit b.output_flag 0 f 0 (Bytes.length b.output_flag);
      b.output_flag <- f
    end;
    id

  let input ?name b =
    let n = fresh_net b name in
    ipush b.binputs n;
    n

  let gate ?name ?(strength = 1.0) b kind fan_in =
    if strength <= 0.0 then
      invalid_arg "Builder.gate: strength must be positive";
    if Array.length fan_in <> Gate.arity kind then
      invalid_arg
        (Printf.sprintf "Builder.gate: %s expects %d inputs, got %d"
           (Gate.name kind) (Gate.arity kind) (Array.length fan_in));
    Array.iter
      (fun n ->
        if n < 0 || n >= b.bnet_count then
          invalid_arg (Printf.sprintf "Builder.gate: unknown net %d" n))
      fan_in;
    let out = fresh_net b name in
    ipush b.bkinds (Gate.code kind);
    fpush b.bstrengths strength;
    Array.iter (fun n -> ipush b.bpins n) fan_in;
    ipush b.bpin_off b.bpins.ilen;
    ipush b.bouts out;
    out

  let mark_output b n =
    if n < 0 || n >= b.bnet_count then
      invalid_arg "Builder.mark_output: unknown net";
    if Bytes.get b.output_flag n = '\000' then begin
      Bytes.set b.output_flag n '\001';
      ipush b.boutputs n
    end

  let net_count b = b.bnet_count
  let gate_count b = b.bkinds.ilen

  let finish b =
    let n_gates = b.bkinds.ilen in
    let kind_code =
      Ba.create Bigarray.int8_unsigned Bigarray.c_layout n_gates
    in
    let strength_arr = Ba.create Bigarray.float64 Bigarray.c_layout n_gates in
    let pin_off = int_array1 (n_gates + 1) in
    let pins = int_array1 b.bpins.ilen in
    let out_net = int_array1 n_gates in
    Ba.set pin_off 0 0;
    for g = 0 to n_gates - 1 do
      Ba.set kind_code g b.bkinds.ia.(g);
      Ba.set strength_arr g b.bstrengths.fa.(g);
      Ba.set pin_off (g + 1) b.bpin_off.ia.(g);
      Ba.set out_net g b.bouts.ia.(g)
    done;
    for k = 0 to b.bpins.ilen - 1 do
      Ba.set pins k b.bpins.ia.(k)
    done;
    let name_off = int_array1 (b.bnet_count + 1) in
    for n = 0 to b.bnet_count - 1 do
      Ba.set name_off n b.bname_off.ia.(n)
    done;
    Ba.set name_off b.bnet_count (Buffer.length b.names);
    let blob = Buffer.contents b.names in
    let name_blob =
      Ba.create Bigarray.char Bigarray.c_layout (String.length blob)
    in
    String.iteri (fun i c -> Ba.set name_blob i c) blob;
    let ninputs = Array.sub b.binputs.ia 0 b.binputs.ilen in
    let noutputs = Array.sub b.boutputs.ia 0 b.boutputs.ilen in
    let flags which =
      let f = Bytes.make (Stdlib.max 1 b.bnet_count) '\000' in
      Array.iter (fun n -> Bytes.set f n '\001') which;
      f
    in
    let t =
      {
        nname = b.bname;
        n_gates;
        nnet_count = b.bnet_count;
        kind_code;
        strength_arr;
        pin_off;
        pins;
        out_net;
        ninputs;
        noutputs;
        name_off;
        name_blob;
        is_input_flag = flags ninputs;
        is_output_flag = flags noutputs;
        driver_ids = None;
        fanout_csr = None;
        topo_cache = None;
        gates_view = None;
      }
    in
    match validate t with
    | Ok () -> t
    | Error e -> failwith ("Netlist.Builder.finish: " ^ e)
end
