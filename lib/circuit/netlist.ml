type net = int

type gate = {
  id : int;
  kind : Gate.kind;
  strength : float;
  fan_in : net array;
  out : net;
}

type t = {
  nname : string;
  ngates : gate array;
  nnet_count : int;
  ninputs : net array;
  noutputs : net array;
  nnet_names : string array;
  is_input_flag : bool array;
  is_output_flag : bool array;
  mutable driver_cache : gate option array option;
  mutable fanout_cache : gate list array option;
}

let name t = t.nname
let gates t = t.ngates
let net_count t = t.nnet_count
let inputs t = t.ninputs
let outputs t = t.noutputs

let net_name t n =
  if n < 0 || n >= t.nnet_count then invalid_arg "Netlist.net_name";
  t.nnet_names.(n)

let build_driver_cache t =
  match t.driver_cache with
  | Some c -> c
  | None ->
    let c = Array.make t.nnet_count None in
    Array.iter (fun g -> c.(g.out) <- Some g) t.ngates;
    t.driver_cache <- Some c;
    c

let build_fanout_cache t =
  match t.fanout_cache with
  | Some c -> c
  | None ->
    let c = Array.make t.nnet_count [] in
    (* Iterate in reverse so each fanout list comes out in gate-id order;
       a gate using one net on several pins appears once per pin. *)
    for i = Array.length t.ngates - 1 downto 0 do
      let g = t.ngates.(i) in
      Array.iter (fun n -> c.(n) <- g :: c.(n)) g.fan_in
    done;
    t.fanout_cache <- Some c;
    c

let driver t n = (build_driver_cache t).(n)
let fanout t n = (build_fanout_cache t).(n)

let warm t =
  ignore (build_driver_cache t);
  ignore (build_fanout_cache t)

let is_input t n = t.is_input_flag.(n)
let is_output t n = t.is_output_flag.(n)

let gate_count t = Array.length t.ngates

let transistor_count t =
  Array.fold_left (fun acc g -> acc + Gate.transistor_count g.kind) 0 t.ngates

let gate_inputs_arr t = Array.map (fun g -> g.fan_in) t.ngates
let gate_outputs_arr t = Array.map (fun g -> g.out) t.ngates

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let driver_count = Array.make t.nnet_count 0 in
  Array.iter (fun g -> driver_count.(g.out) <- driver_count.(g.out) + 1) t.ngates;
  Array.iter (fun n -> driver_count.(n) <- driver_count.(n) + 1) t.ninputs;
  let problem = ref None in
  let record p = if !problem = None then problem := Some p in
  Array.iteri
    (fun n c ->
      if c = 0 then
        record (Printf.sprintf "net %d (%s) has no driver" n t.nnet_names.(n))
      else if c > 1 then
        record (Printf.sprintf "net %d (%s) has %d drivers" n t.nnet_names.(n) c))
    driver_count;
  Array.iter
    (fun g ->
      if Array.length g.fan_in <> Gate.arity g.kind then
        record
          (Printf.sprintf "gate %d (%s) has %d pins, expects %d" g.id
             (Gate.name g.kind) (Array.length g.fan_in) (Gate.arity g.kind)))
    t.ngates;
  match !problem with
  | Some p -> err "%s: %s" t.nname p
  | None ->
    (match
       Topo_check.sort ~net_count:t.nnet_count ~source_nets:t.ninputs
         ~gate_inputs:(gate_inputs_arr t) ~gate_outputs:(gate_outputs_arr t)
     with
     | Some _ -> Ok ()
     | None -> err "%s: combinational cycle" t.nname)

let with_gates t gates' =
  if Array.length gates' <> Array.length t.ngates then
    invalid_arg "Netlist.with_gates: gate count mismatch";
  Array.iteri
    (fun i (g : gate) ->
      let orig = t.ngates.(i) in
      if g.id <> i || g.out <> orig.out || g.fan_in <> orig.fan_in then
        invalid_arg
          (Printf.sprintf
             "Netlist.with_gates: gate %d changes structure (only kind and \
              strength may differ)" i);
      if g.strength <= 0.0 then
        invalid_arg "Netlist.with_gates: strength must be positive")
    gates';
  let t' =
    { t with
      ngates = Array.map (fun g -> { g with fan_in = Array.copy g.fan_in }) gates';
      driver_cache = None;
      fanout_cache = None }
  in
  match validate t' with
  | Ok () -> t'
  | Error e -> failwith ("Netlist.with_gates: " ^ e)

(* ---------------------------------------------------------------- digest *)

(* FNV-1a over 64 bits: not cryptographic, but stable across runs and
   platforms, and two independently seeded passes give 128 bits of
   registry-key space — far beyond what a session registry can collide. *)
let fnv_prime = 0x100000001b3L

let fnv_byte h b =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let fnv_int64 h v =
  let h = ref h in
  for shift = 0 to 7 do
    h := fnv_byte !h (Int64.to_int (Int64.shift_right_logical v (shift * 8)))
  done;
  !h

let fnv_int h v = fnv_int64 h (Int64.of_int v)

let fnv_string h s =
  let h = ref (fnv_int h (String.length s)) in
  String.iter (fun c -> h := fnv_byte !h (Char.code c)) s;
  !h

(* One digest pass: label every net bottom-up — primary inputs by their
   (interface) name, every driven net by the shape of its driver (kind,
   strength, fan-in labels in pin order) — then hash the *sorted* label
   multisets. Sorting is what makes the digest canonical: gate ids, net
   numbering and declaration order all disappear, only structure and the
   interface names survive. *)
let digest_with seed t =
  let labels = Array.make (Stdlib.max 1 t.nnet_count) 0L in
  Array.iter
    (fun n ->
      labels.(n) <- fnv_string (fnv_byte seed (Char.code 'I')) t.nnet_names.(n))
    t.ninputs;
  let order =
    match
      Topo_check.sort ~net_count:t.nnet_count ~source_nets:t.ninputs
        ~gate_inputs:(gate_inputs_arr t) ~gate_outputs:(gate_outputs_arr t)
    with
    | Some o -> o
    | None -> invalid_arg "Netlist.digest: not a valid DAG"
  in
  let gate_labels = Array.make (Array.length t.ngates) 0L in
  Array.iter
    (fun gi ->
      let g = t.ngates.(gi) in
      let h = fnv_byte seed (Char.code 'G') in
      let h = fnv_int h (Gate.code g.kind) in
      let h = fnv_int64 h (Int64.bits_of_float g.strength) in
      let h = Array.fold_left (fun h n -> fnv_int64 h labels.(n)) h g.fan_in in
      labels.(g.out) <- h;
      gate_labels.(gi) <- h)
    order;
  let fold_sorted h arr =
    let c = Array.copy arr in
    Array.sort Int64.compare c;
    Array.fold_left fnv_int64 h c
  in
  let h = fnv_int seed (Array.length t.ngates) in
  let h = fnv_int h (Array.length t.ninputs) in
  let h = fnv_int h (Array.length t.noutputs) in
  let h = fold_sorted h gate_labels in
  let h = fold_sorted h (Array.map (fun n -> labels.(n)) t.ninputs) in
  let h = fold_sorted h (Array.map (fun n -> labels.(n)) t.noutputs) in
  h

let digest t =
  Printf.sprintf "%016Lx%016Lx"
    (digest_with 0xcbf29ce484222325L t)
    (digest_with 0x6c62272e07bb0142L t)

type stats = {
  n_gates : int;
  n_nets : int;
  n_inputs : int;
  n_outputs : int;
  n_transistors : int;
  max_fanout : int;
  avg_fanout : float;
  levels : int;
  kind_histogram : (string * int) list;
}

let stats t =
  let fanouts = Array.map List.length (build_fanout_cache t) in
  let max_fanout = Array.fold_left Stdlib.max 0 fanouts in
  let total_fanout = Array.fold_left ( + ) 0 fanouts in
  let histogram = Hashtbl.create 16 in
  Array.iter
    (fun g ->
      let k = Gate.name g.kind in
      Hashtbl.replace histogram k
        (1 + Option.value ~default:0 (Hashtbl.find_opt histogram k)))
    t.ngates;
  let kind_histogram =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) histogram []
    |> List.sort compare
  in
  let levels =
    match
      Topo_check.levelize ~net_count:t.nnet_count ~source_nets:t.ninputs
        ~gate_inputs:(gate_inputs_arr t) ~gate_outputs:(gate_outputs_arr t)
    with
    | Some l -> Array.fold_left Stdlib.max 0 l
    | None -> -1
  in
  {
    n_gates = gate_count t;
    n_nets = t.nnet_count;
    n_inputs = Array.length t.ninputs;
    n_outputs = Array.length t.noutputs;
    n_transistors = transistor_count t;
    max_fanout;
    avg_fanout =
      (if t.nnet_count = 0 then 0.0
       else float_of_int total_fanout /. float_of_int t.nnet_count);
    levels;
    kind_histogram;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "gates=%d nets=%d PI=%d PO=%d transistors=%d levels=%d maxFO=%d avgFO=%.2f@ "
    s.n_gates s.n_nets s.n_inputs s.n_outputs s.n_transistors s.levels
    s.max_fanout s.avg_fanout;
  List.iter (fun (k, c) -> Format.fprintf ppf "%s:%d " k c) s.kind_histogram

module Builder = struct
  type builder = {
    bname : string;
    mutable nets : string list; (* reversed names *)
    mutable bnet_count : int;
    mutable bgates : gate list; (* reversed *)
    mutable bgate_count : int;
    mutable binputs : net list; (* reversed *)
    mutable boutputs : net list; (* reversed *)
  }

  type t = builder

  let create bname = {
    bname;
    nets = [];
    bnet_count = 0;
    bgates = [];
    bgate_count = 0;
    binputs = [];
    boutputs = [];
  }

  let fresh_net b name_opt =
    let id = b.bnet_count in
    let net_name =
      match name_opt with Some n -> n | None -> Printf.sprintf "n%d" id
    in
    b.nets <- net_name :: b.nets;
    b.bnet_count <- id + 1;
    id

  let input ?name b =
    let n = fresh_net b name in
    b.binputs <- n :: b.binputs;
    n

  let gate ?name ?(strength = 1.0) b kind fan_in =
    if strength <= 0.0 then
      invalid_arg "Builder.gate: strength must be positive";
    if Array.length fan_in <> Gate.arity kind then
      invalid_arg
        (Printf.sprintf "Builder.gate: %s expects %d inputs, got %d"
           (Gate.name kind) (Gate.arity kind) (Array.length fan_in));
    Array.iter
      (fun n ->
        if n < 0 || n >= b.bnet_count then
          invalid_arg (Printf.sprintf "Builder.gate: unknown net %d" n))
      fan_in;
    let out = fresh_net b name in
    let g =
      { id = b.bgate_count; kind; strength; fan_in = Array.copy fan_in; out }
    in
    b.bgates <- g :: b.bgates;
    b.bgate_count <- b.bgate_count + 1;
    out

  let mark_output b n =
    if n < 0 || n >= b.bnet_count then
      invalid_arg "Builder.mark_output: unknown net";
    if not (List.exists (fun o -> o = n) b.boutputs) then
      b.boutputs <- n :: b.boutputs

  let finish b =
    let flags which =
      let f = Array.make b.bnet_count false in
      List.iter (fun n -> f.(n) <- true) which;
      f
    in
    let t = {
      nname = b.bname;
      ngates = Array.of_list (List.rev b.bgates);
      nnet_count = b.bnet_count;
      ninputs = Array.of_list (List.rev b.binputs);
      noutputs = Array.of_list (List.rev b.boutputs);
      nnet_names = Array.of_list (List.rev b.nets);
      is_input_flag = flags b.binputs;
      is_output_flag = flags b.boutputs;
      driver_cache = None;
      fanout_cache = None;
    } in
    match validate t with
    | Ok () -> t
    | Error e -> failwith ("Netlist.Builder.finish: " ^ e)
end
