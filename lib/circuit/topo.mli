(** Topological ordering of a netlist's gates (step 1 of the paper's Fig-13
    algorithm). *)

val order : Netlist.t -> Netlist.gate array
(** Gates in topological order: every gate appears after all gates driving
    its inputs. Raises [Failure] on a cyclic netlist (builders reject those,
    so this only fires on hand-made structures). Materializes the
    compatibility gate-record view; hot paths should prefer {!order_ids}. *)

val order_ids : Netlist.t -> int array
(** Same order as {!order} but as gate ids, allocation-free after the first
    call (the order is cached inside the netlist). *)

val levels : Netlist.t -> int array
(** Logic depth per gate id (primary inputs at depth 0). *)

val net_levels : Netlist.t -> int array
(** Logic depth per net (depth of its driver; 0 for primary inputs). *)
