(** Structural SPICE-subset netlist reader.

    Reads the cell-level slice of a SPICE deck: [X] subcircuit instances
    whose cell names match the gate library ([NAND2], [INV], [AOI21], … —
    anything {!Gate.of_name} accepts). This is the common interchange shape
    for extracted standard-cell netlists; device-level elements (M, R, C)
    are out of scope and rejected with a clear diagnostic.

    Supported syntax: [*] comment lines, [$] / [;] trailing comments, [+]
    continuation lines, CRLF endings, [.subckt]/[.ends] blocks (skipped —
    cells are matched by name, not elaborated), other dot-cards ignored.
    Instance pin order is [in1 .. inN out]; supply rails ([vdd], [vss],
    [gnd], [0]) are dropped from the pin list. A device multiplier
    ([m=2]) becomes the gate's drive strength.

    The interface is inferred structurally: undriven nets are primary
    inputs, driven-but-unread nets primary outputs.

    Like the [.bench] reader, parsing is streaming (line at a time, flat
    interned storage) and elaboration is iterative, so arbitrarily deep
    netlists cannot overflow the stack. *)

exception Parse_error of int * string
(** Line number (1-based; 0 for whole-file diagnostics) and message. *)

val parse_string : name:string -> string -> Netlist.t

val parse_file : string -> Netlist.t
(** Parse a deck; the netlist is named after the basename. The channel is
    closed even when parsing raises. *)

val parse_lines : name:string -> (unit -> string option) -> Netlist.t
(** Core streaming entry point ([None] = end of input). *)
