type kind =
  | Inv
  | Buf
  | Nand of int
  | Nor of int
  | And of int
  | Or of int
  | Xor
  | Xnor
  | Aoi21
  | Aoi22
  | Oai21
  | Oai22

let check_fanin label n =
  if n < 2 || n > 4 then
    invalid_arg (Printf.sprintf "Gate: %s%d unsupported (fan-in 2-4)" label n)

let arity = function
  | Inv | Buf -> 1
  | Nand n -> check_fanin "NAND" n; n
  | Nor n -> check_fanin "NOR" n; n
  | And n -> check_fanin "AND" n; n
  | Or n -> check_fanin "OR" n; n
  | Xor | Xnor -> 2
  | Aoi21 | Oai21 -> 3
  | Aoi22 | Oai22 -> 4

let name = function
  | Inv -> "INV"
  | Buf -> "BUF"
  | Nand n -> Printf.sprintf "NAND%d" n
  | Nor n -> Printf.sprintf "NOR%d" n
  | And n -> Printf.sprintf "AND%d" n
  | Or n -> Printf.sprintf "OR%d" n
  | Xor -> "XOR2"
  | Xnor -> "XNOR2"
  | Aoi21 -> "AOI21"
  | Aoi22 -> "AOI22"
  | Oai21 -> "OAI21"
  | Oai22 -> "OAI22"

let of_name s =
  match String.uppercase_ascii s with
  | "INV" | "NOT" -> Inv
  | "BUF" | "BUFF" -> Buf
  | "XOR" | "XOR2" -> Xor
  | "XNOR" | "XNOR2" -> Xnor
  | "AOI21" -> Aoi21
  | "AOI22" -> Aoi22
  | "OAI21" -> Oai21
  | "OAI22" -> Oai22
  | u ->
    let sized prefix mk =
      let plen = String.length prefix in
      if String.length u = plen + 1 && String.sub u 0 plen = prefix then
        match int_of_string_opt (String.sub u plen 1) with
        | Some n when n >= 2 && n <= 4 -> Some (mk n)
        | _ -> None
      else None
    in
    let candidates =
      [ sized "NAND" (fun n -> Nand n);
        sized "NOR" (fun n -> Nor n);
        sized "AND" (fun n -> And n);
        sized "OR" (fun n -> Or n) ]
    in
    (match List.find_opt Option.is_some candidates with
     | Some (Some k) -> k
     | _ -> invalid_arg (Printf.sprintf "Gate.of_name: unknown cell %S" s))

let code = function
  | Inv -> 0
  | Buf -> 1
  | Xor -> 2
  | Xnor -> 3
  | Nand n -> 4 + n
  | Nor n -> 12 + n
  | And n -> 20 + n
  | Or n -> 28 + n
  | Aoi21 -> 36
  | Aoi22 -> 37
  | Oai21 -> 38
  | Oai22 -> 39

let all_kinds =
  [ Inv; Buf; Xor; Xnor; Aoi21; Aoi22; Oai21; Oai22 ]
  @ List.concat_map
      (fun n -> [ Nand n; Nor n; And n; Or n ])
      [ 2; 3; 4 ]

let max_code = 39

(* Inverse of [code], memoized so struct-of-arrays consumers can turn a
   stored code back into a kind without allocating (Nand/Nor/... carry an
   argument and would otherwise box on every lookup). *)
let kind_of_code_table =
  let t = Array.make (max_code + 1) None in
  List.iter (fun k -> t.(code k) <- Some k) all_kinds;
  t

let of_code c =
  if c < 0 || c > max_code then
    invalid_arg (Printf.sprintf "Gate.of_code: %d out of range" c)
  else
    match kind_of_code_table.(c) with
    | Some k -> k
    | None -> invalid_arg (Printf.sprintf "Gate.of_code: %d unassigned" c)

let eval kind inputs =
  let n = arity kind in
  if Array.length inputs <> n then
    invalid_arg
      (Printf.sprintf "Gate.eval: %s expects %d inputs, got %d" (name kind) n
         (Array.length inputs));
  let conj () = Array.for_all Fun.id inputs in
  let disj () = Array.exists Fun.id inputs in
  match kind with
  | Inv -> not inputs.(0)
  | Buf -> inputs.(0)
  | Nand _ -> not (conj ())
  | And _ -> conj ()
  | Nor _ -> not (disj ())
  | Or _ -> disj ()
  | Xor -> inputs.(0) <> inputs.(1)
  | Xnor -> inputs.(0) = inputs.(1)
  | Aoi21 -> not ((inputs.(0) && inputs.(1)) || inputs.(2))
  | Aoi22 -> not ((inputs.(0) && inputs.(1)) || (inputs.(2) && inputs.(3)))
  | Oai21 -> not ((inputs.(0) || inputs.(1)) && inputs.(2))
  | Oai22 -> not ((inputs.(0) || inputs.(1)) && (inputs.(2) || inputs.(3)))

let eval_logic kind v =
  Logic.of_bool (eval kind (Array.map Logic.to_bool v))

(* Same boolean function as [eval], but reads only the first [arity kind]
   entries of [buf] — so one max-arity scratch buffer serves every gate of a
   simulation sweep with zero per-gate allocation. *)
let eval_prefix kind (buf : bool array) =
  let conj n =
    let ok = ref true in
    for i = 0 to n - 1 do
      if not buf.(i) then ok := false
    done;
    !ok
  in
  let disj n =
    let any = ref false in
    for i = 0 to n - 1 do
      if buf.(i) then any := true
    done;
    !any
  in
  match kind with
  | Inv -> not buf.(0)
  | Buf -> buf.(0)
  | Nand n -> not (conj n)
  | And n -> conj n
  | Nor n -> not (disj n)
  | Or n -> disj n
  | Xor -> buf.(0) <> buf.(1)
  | Xnor -> buf.(0) = buf.(1)
  | Aoi21 -> not ((buf.(0) && buf.(1)) || buf.(2))
  | Aoi22 -> not ((buf.(0) && buf.(1)) || (buf.(2) && buf.(3)))
  | Oai21 -> not ((buf.(0) || buf.(1)) && buf.(2))
  | Oai22 -> not ((buf.(0) || buf.(1)) && (buf.(2) || buf.(3)))

let controlling_value = function
  | And _ | Nand _ -> Some Logic.Zero
  | Or _ | Nor _ -> Some Logic.One
  | Inv | Buf | Xor | Xnor | Aoi21 | Aoi22 | Oai21 | Oai22 -> None

let pinned_output kind ~free inputs =
  let n = arity kind in
  if Array.length inputs <> n || Array.length free <> n then
    invalid_arg
      (Printf.sprintf "Gate.pinned_output: %s expects %d pins, got %d/%d"
         (name kind) n (Array.length inputs) (Array.length free));
  let free_pins = ref [] in
  for pin = n - 1 downto 0 do
    if free.(pin) then free_pins := pin :: !free_pins
  done;
  let free_pins = Array.of_list !free_pins in
  let k = Array.length free_pins in
  (* exhaustive over the free pins: arity <= 4, so at most 16 evals *)
  let buf = Array.copy inputs in
  let set mask =
    Array.iteri (fun i pin -> buf.(pin) <- (mask lsr i) land 1 = 1) free_pins
  in
  set 0;
  let first = eval kind buf in
  let out = ref (Some first) in
  let mask = ref 1 in
  while !out <> None && !mask < 1 lsl k do
    set !mask;
    if eval kind buf <> first then out := None;
    incr mask
  done;
  !out

type network_tree =
  | Leaf of int
  | Series of network_tree list
  | Parallel of network_tree list

let rec dual = function
  | Leaf i -> Leaf i
  | Series ts -> Parallel (List.map dual ts)
  | Parallel ts -> Series (List.map dual ts)

let rec tree_depth = function
  | Leaf _ -> 1
  | Series ts -> List.fold_left (fun acc t -> acc + tree_depth t) 0 ts
  | Parallel ts -> List.fold_left (fun acc t -> Stdlib.max acc (tree_depth t)) 1 ts

let rec tree_conducts tree values =
  match tree with
  | Leaf i -> values.(i)
  | Series ts -> List.for_all (fun t -> tree_conducts t values) ts
  | Parallel ts -> List.exists (fun t -> tree_conducts t values) ts

type stage_kind =
  | Stage_inv
  | Stage_nand
  | Stage_nor
  | Stage_complex of network_tree

type pin =
  | Cell_input of int
  | Internal of int

type stage_out =
  | Cell_output
  | Internal_out of int

type stage = {
  stage_kind : stage_kind;
  stage_inputs : pin array;
  stage_output : stage_out;
}

type cell = {
  kind : kind;
  stages : stage array;
  internal_count : int;
}

let stage sk ins out = { stage_kind = sk; stage_inputs = ins; stage_output = out }

let cell_inputs n = Array.init n (fun i -> Cell_input i)

let decompose kind =
  let n = arity kind in
  let stages =
    match kind with
    | Inv -> [| stage Stage_inv [| Cell_input 0 |] Cell_output |]
    | Buf ->
      [| stage Stage_inv [| Cell_input 0 |] (Internal_out 0);
         stage Stage_inv [| Internal 0 |] Cell_output |]
    | Nand _ -> [| stage Stage_nand (cell_inputs n) Cell_output |]
    | Nor _ -> [| stage Stage_nor (cell_inputs n) Cell_output |]
    | And _ ->
      [| stage Stage_nand (cell_inputs n) (Internal_out 0);
         stage Stage_inv [| Internal 0 |] Cell_output |]
    | Or _ ->
      [| stage Stage_nor (cell_inputs n) (Internal_out 0);
         stage Stage_inv [| Internal 0 |] Cell_output |]
    | Xor ->
      (* Four-NAND XOR: t = (ab)'; out = ((a t)'(b t)')'. *)
      [| stage Stage_nand [| Cell_input 0; Cell_input 1 |] (Internal_out 0);
         stage Stage_nand [| Cell_input 0; Internal 0 |] (Internal_out 1);
         stage Stage_nand [| Cell_input 1; Internal 0 |] (Internal_out 2);
         stage Stage_nand [| Internal 1; Internal 2 |] Cell_output |]
    | Xnor ->
      [| stage Stage_nand [| Cell_input 0; Cell_input 1 |] (Internal_out 0);
         stage Stage_nand [| Cell_input 0; Internal 0 |] (Internal_out 1);
         stage Stage_nand [| Cell_input 1; Internal 0 |] (Internal_out 2);
         stage Stage_nand [| Internal 1; Internal 2 |] (Internal_out 3);
         stage Stage_inv [| Internal 3 |] Cell_output |]
    | Aoi21 ->
      [| stage
           (Stage_complex (Parallel [ Series [ Leaf 0; Leaf 1 ]; Leaf 2 ]))
           (cell_inputs 3) Cell_output |]
    | Aoi22 ->
      [| stage
           (Stage_complex
              (Parallel [ Series [ Leaf 0; Leaf 1 ]; Series [ Leaf 2; Leaf 3 ] ]))
           (cell_inputs 4) Cell_output |]
    | Oai21 ->
      [| stage
           (Stage_complex (Series [ Parallel [ Leaf 0; Leaf 1 ]; Leaf 2 ]))
           (cell_inputs 3) Cell_output |]
    | Oai22 ->
      [| stage
           (Stage_complex
              (Series [ Parallel [ Leaf 0; Leaf 1 ]; Parallel [ Leaf 2; Leaf 3 ] ]))
           (cell_inputs 4) Cell_output |]
  in
  let internal_count =
    Array.fold_left
      (fun acc s ->
        match s.stage_output with
        | Cell_output -> acc
        | Internal_out i -> Stdlib.max acc (i + 1))
      0 stages
  in
  { kind; stages; internal_count }

let stage_eval sk inputs =
  match sk with
  | Stage_inv -> not inputs.(0)
  | Stage_nand -> not (Array.for_all Fun.id inputs)
  | Stage_nor -> not (Array.exists Fun.id inputs)
  | Stage_complex tree -> not (tree_conducts tree inputs)

(* Minimum inverter: Wn = 1 µm, Wp = 2 µm. Series stacks are upsized by the
   stack depth so each stage has roughly inverter-equivalent drive. *)
let nmos_width sk fan_in =
  match sk with
  | Stage_inv -> 1.0
  | Stage_nand -> float_of_int fan_in
  | Stage_nor -> 1.0
  | Stage_complex tree -> float_of_int (tree_depth tree)

let pmos_width sk fan_in =
  match sk with
  | Stage_inv -> 2.0
  | Stage_nand -> 2.0
  | Stage_nor -> 2.0 *. float_of_int fan_in
  | Stage_complex tree -> 2.0 *. float_of_int (tree_depth (dual tree))

let transistor_count kind =
  let c = decompose kind in
  Array.fold_left
    (fun acc s -> acc + (2 * Array.length s.stage_inputs))
    0 c.stages
