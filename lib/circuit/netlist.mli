(** Gate-level netlists.

    A netlist is a DAG of gate instances over single-driver nets. Primary
    inputs drive nets directly; every other net is driven by exactly one
    gate output. Flip-flops from sequential benchmarks are modeled as a
    pseudo primary output (the D pin) plus a pseudo primary input (the Q
    net) — the standard reduction for DC leakage analysis, which only sees
    a combinational snapshot.

    Storage is int-indexed struct-of-arrays: gate kinds, strengths, pin
    lists (CSR) and output nets live in flat [Bigarray]s, net names in one
    packed blob — no per-gate heap objects, so million-gate netlists fit in
    a few flat allocations and can be snapshotted to (and mmapped from)
    disk. The historical record API ({!gate}, {!gates}, {!driver},
    {!fanout}) is kept as a lazily materialized compatibility view; hot
    paths should use the int-indexed accessors below. *)

type net = int
(** Dense net identifier in [\[0, net_count)]. *)

type gate = {
  id : int;
  kind : Gate.kind;
  strength : float;
  (** drive strength: every transistor width in the cell is scaled by this
      factor (1.0 = minimum size). Leakage scales with it too, which is why
      the paper characterizes per "gate type, size, loading". *)
  fan_in : net array;
  out : net;
}
(** Compatibility record view of one gate; see {!gates}. *)

type t
(** Immutable netlist (internal lookup caches are built lazily). *)

val name : t -> string

val net_count : t -> int
val inputs : t -> net array
val outputs : t -> net array
val net_name : t -> net -> string
val gate_count : t -> int
val transistor_count : t -> int

(** {2 Int-indexed access (the hot-path API)}

    Gates are identified by dense ids in [\[0, gate_count)]. All accessors
    are allocation-free except {!gate_kind} (which returns preallocated
    kind values) and raise [Invalid_argument] on out-of-range ids. *)

val gate_kind : t -> int -> Gate.kind
val gate_kind_code : t -> int -> int
(** [Gate.code] of the gate's kind, straight from flat storage. *)

val gate_strength : t -> int -> float
val gate_arity : t -> int -> int
(** Number of input pins. *)

val gate_pin : t -> int -> int -> net
(** [gate_pin t g p] is the net on pin [p] of gate [g]. *)

val gate_out : t -> int -> net
val gate_fan_in : t -> int -> net array
(** Fresh array of the gate's input nets (allocates; prefer {!iter_pins}
    or {!gate_pin} on hot paths). *)

val iter_pins : t -> int -> (int -> net -> unit) -> unit
(** [iter_pins t g f] calls [f pin net] for every input pin in pin order. *)

val driver_id : t -> net -> int
(** Id of the gate driving a net, or [-1] for a primary input. O(1) after
    the first call. *)

val fanout_degree : t -> net -> int
(** Number of reading pins on a net (a gate with two pins on the net counts
    twice), from the CSR fanout adjacency. *)

val fanout_gate : t -> net -> int -> int
(** [fanout_gate t n i] is the gate id of the [i]-th reading pin
    ([0 <= i < fanout_degree t n]), in ascending (gate, pin) order. *)

val iter_fanout : t -> net -> (int -> unit) -> unit
(** Iterate the reading gates of a net in ascending (gate, pin) order —
    one call per pin, like the historical {!fanout} list. *)

val rev_iter_fanout : t -> net -> (int -> unit) -> unit
(** {!iter_fanout} in reverse order. *)

val topo_ids : t -> int array
(** Gate ids in topological order; computed once and cached (do not
    mutate). Raises [Failure] on a cyclic netlist. *)

(** {2 Record-view access (compatibility)} *)

val gates : t -> gate array
(** Gate instances indexed by [gate.id]. Materialized lazily from the flat
    storage on first use and cached; do not mutate. *)

val driver : t -> net -> gate option
(** The gate driving a net, or [None] for a primary input. O(1) after the
    first call; materializes the record view. *)

val fanout : t -> net -> gate list
(** Gates with an input pin on this net, one entry per pin. Built from the
    CSR adjacency on every call (allocates); hot paths should use
    {!iter_fanout}. *)

val warm : t -> unit
(** Force the lazily built lookup caches ({!driver_id}, the fanout CSR,
    {!topo_ids} and the {!gates} record view) to be built now. The caches
    are initialized lazily by a benign single-threaded race; call this
    before handing the netlist to multiple domains so no concurrent lazy
    initialization can occur. *)

val is_input : t -> net -> bool
val is_output : t -> net -> bool

val validate : t -> (unit, string) result
(** Structural checks: single driver per net, arities match, no dangling
    nets, acyclicity. Builders run this automatically. *)

val with_gates : t -> gate array -> t
(** [with_gates t gates] is [t] with each gate's [kind] and [strength]
    replaced; ids, pins and output nets must be unchanged (net numbering is
    preserved, unlike a rebuild through {!Builder}). Used to materialize the
    current state of an incremental edit session as a plain netlist. Raises
    [Invalid_argument] on structural changes and [Failure] if the result
    fails {!validate} (e.g. a retype to a different arity). *)

val with_kinds_strengths :
  t -> kinds:Gate.kind array -> strengths:float array -> t
(** Record-free {!with_gates}: replace every gate's kind and strength by
    dense-id arrays, sharing the structural arrays with [t]. Raises
    [Invalid_argument] on length mismatch or non-positive strengths and
    [Failure] if a kind change alters arity. *)

val digest : t -> string
(** Stable structural digest: 32 lowercase hex characters, identical across
    process runs and platforms. The digest is {e canonical} — independent of
    construction order (input/gate declaration order, net numbering, the
    internal net names a builder invents, and the netlist's own name).
    Primary inputs are identified by their net names (the circuit's
    interface); every driven net purely by the shape of its fan-in cone:
    gate kind, drive strength, and fan-in labels in pin order. Two netlists
    share a digest iff they describe the same circuit at the same interface
    — which is what keys the warm-session registry of [leakctl serve].
    Cost: one hashing pass per call (topological order is cached); not
    cached itself. *)

type stats = {
  n_gates : int;
  n_nets : int;
  n_inputs : int;
  n_outputs : int;
  n_transistors : int;
  max_fanout : int;
  avg_fanout : float;
  levels : int;
  kind_histogram : (string * int) list;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

(** {2 Construction} *)

module Builder : sig
  type netlist := t

  type t

  val create : string -> t

  val input : ?name:string -> t -> net
  (** Declare a primary input and return its net. *)

  val gate : ?name:string -> ?strength:float -> t -> Gate.kind -> net array -> net
  (** Instantiate a gate; returns its output net. [name] names the output
      net; [strength] (default 1.0, must be positive) scales the cell's
      transistor widths. Raises on arity mismatch or unknown input nets. *)

  val mark_output : t -> net -> unit
  (** Flag an existing net as a primary output. *)

  val net_count : t -> int
  val gate_count : t -> int

  val finish : t -> netlist
  (** Freeze. Raises [Failure] if {!validate} fails. *)
end

(** {2 Raw struct-of-arrays representation}

    Internal exchange format for the binary snapshot layer ({!Snapshot}).
    The arrays are the netlist's actual storage: treat them as immutable.
    Not a stable public API. *)

module Repr : sig
  type int_arr = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
  type f64_arr =
    (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
  type byte_arr =
    (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t
  type char_arr =
    (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

  type raw = {
    r_name : string;
    r_net_count : int;
    r_kind_code : byte_arr;      (* n_gates *)
    r_strength : f64_arr;        (* n_gates *)
    r_pin_off : int_arr;         (* n_gates + 1, CSR offsets into pins *)
    r_pins : int_arr;            (* flat fan-in nets in pin order *)
    r_out_net : int_arr;         (* n_gates *)
    r_inputs : int array;
    r_outputs : int array;
    r_name_off : int_arr;        (* net_count + 1 *)
    r_name_blob : char_arr;      (* packed net names *)
  }

  val to_raw : t -> raw

  val of_raw : ?validate:bool -> raw -> t
  (** Rebuild a netlist around the given arrays (shared, not copied).
      Always performs the cheap O(n) structural checks (lengths, offset
      monotonicity, index ranges, kind codes, arities, strengths) and
      raises [Failure] on any violation — a corrupt snapshot must fail
      closed, never index out of bounds later. With [validate] (default
      [true]) additionally runs the full {!Netlist.validate} pass
      (single-driver and acyclicity). *)
end
