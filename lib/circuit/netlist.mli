(** Gate-level netlists.

    A netlist is a DAG of gate instances over single-driver nets. Primary
    inputs drive nets directly; every other net is driven by exactly one
    gate output. Flip-flops from sequential benchmarks are modeled as a
    pseudo primary output (the D pin) plus a pseudo primary input (the Q
    net) — the standard reduction for DC leakage analysis, which only sees
    a combinational snapshot. *)

type net = int
(** Dense net identifier in [\[0, net_count)]. *)

type gate = {
  id : int;
  kind : Gate.kind;
  strength : float;
  (** drive strength: every transistor width in the cell is scaled by this
      factor (1.0 = minimum size). Leakage scales with it too, which is why
      the paper characterizes per "gate type, size, loading". *)
  fan_in : net array;
  out : net;
}

type t
(** Immutable netlist (internal lookup caches are built lazily). *)

val name : t -> string
val gates : t -> gate array
(** Gate instances indexed by [gate.id]. Do not mutate. *)

val net_count : t -> int
val inputs : t -> net array
val outputs : t -> net array
val net_name : t -> net -> string

val driver : t -> net -> gate option
(** The gate driving a net, or [None] for a primary input. O(1) after the
    first call. *)

val fanout : t -> net -> gate list
(** Gates with an input pin on this net, one entry per pin. O(1) after the
    first call. *)

val warm : t -> unit
(** Force both lookup caches ({!driver} and {!fanout}) to be built now.
    The caches are initialized lazily by a benign single-threaded race;
    call this before handing the netlist to multiple domains so no
    concurrent lazy initialization can occur. *)

val is_input : t -> net -> bool
val is_output : t -> net -> bool

val validate : t -> (unit, string) result
(** Structural checks: single driver per net, arities match, no dangling
    nets, acyclicity. Builders run this automatically. *)

val with_gates : t -> gate array -> t
(** [with_gates t gates] is [t] with each gate's [kind] and [strength]
    replaced; ids, pins and output nets must be unchanged (net numbering is
    preserved, unlike a rebuild through {!Builder}). Used to materialize the
    current state of an incremental edit session as a plain netlist. Raises
    [Invalid_argument] on structural changes and [Failure] if the result
    fails {!validate} (e.g. a retype to a different arity). *)

val gate_count : t -> int
val transistor_count : t -> int

val digest : t -> string
(** Stable structural digest: 32 lowercase hex characters, identical across
    process runs and platforms. The digest is {e canonical} — independent of
    construction order (input/gate declaration order, net numbering, the
    internal net names a builder invents, and the netlist's own name).
    Primary inputs are identified by their net names (the circuit's
    interface); every driven net purely by the shape of its fan-in cone:
    gate kind, drive strength, and fan-in labels in pin order. Two netlists
    share a digest iff they describe the same circuit at the same interface
    — which is what keys the warm-session registry of [leakctl serve].
    Cost: one topological pass per call; not cached. *)

type stats = {
  n_gates : int;
  n_nets : int;
  n_inputs : int;
  n_outputs : int;
  n_transistors : int;
  max_fanout : int;
  avg_fanout : float;
  levels : int;
  kind_histogram : (string * int) list;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

(** {2 Construction} *)

module Builder : sig
  type netlist := t

  type t

  val create : string -> t

  val input : ?name:string -> t -> net
  (** Declare a primary input and return its net. *)

  val gate : ?name:string -> ?strength:float -> t -> Gate.kind -> net array -> net
  (** Instantiate a gate; returns its output net. [name] names the output
      net; [strength] (default 1.0, must be positive) scales the cell's
      transistor widths. Raises on arity mismatch or unknown input nets. *)

  val mark_output : t -> net -> unit
  (** Flag an existing net as a primary output. *)

  val finish : t -> netlist
  (** Freeze. Raises [Failure] if {!validate} fails. *)
end
