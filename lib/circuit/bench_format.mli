(** ISCAS89 [.bench] netlist reader / writer.

    The paper evaluates on ISCAS89 circuits; this module lets real [.bench]
    files drop in when available (the repository itself ships synthetic
    profile-matched circuits — see [Leakage_benchmarks.Iscas]).

    Sequential elements ([DFF]) are cut: the flip-flop output becomes a
    pseudo primary input and its data pin a pseudo primary output, which is
    the standard combinational reduction for static leakage analysis.

    Gates wider than the cell library's 4-input limit are decomposed into
    balanced AND/OR trees feeding a final gate of the requested polarity.

    Drive strengths are serialized as trailing comments
    ("y = NAND(a, b)  # strength=2") — plain ISCAS89 files parse unchanged
    (everything at strength 1), and files written here round-trip their
    sizing.

    The reader is {e streaming}: input is consumed one line at a time and
    interned into flat buffers, never holding the file (or a list of its
    lines) in memory, and elaboration is iterative — deep gate chains
    cannot overflow the stack. CRLF line endings are accepted (a trailing
    [\r] is stripped), as is a final line without a newline. *)

exception Parse_error of int * string
(** Line number (1-based; 0 for whole-file diagnostics) and message. *)

val parse_string : name:string -> string -> Netlist.t
(** Parse [.bench] text. Raises {!Parse_error} on malformed input —
    including conflicting declarations of one net name: a duplicated
    [INPUT] or [OUTPUT], a redefined gate target, or a gate target
    shadowing a declared input — on an empty file (no INPUT, OUTPUT or
    gate line at all), and [Failure] if the described circuit fails
    validation. *)

val parse_file : string -> Netlist.t
(** Parse a file; the netlist is named after the basename. Reads the file
    line-at-a-time; the input channel is closed even when parsing raises. *)

val parse_lines : name:string -> (unit -> string option) -> Netlist.t
(** Core streaming entry point: [parse_lines ~name next] pulls lines from
    [next] ([None] = end of input) — the producer for {!parse_file} and
    {!parse_string}, exposed so other front-ends can feed pre-split
    input. *)

val to_string : Netlist.t -> string
(** Render a netlist as [.bench] text (combinational: no DFF lines; pseudo
    PIs/POs appear as INPUT/OUTPUT). Re-parsing yields an equivalent
    circuit. *)

val write_file : string -> Netlist.t -> unit
