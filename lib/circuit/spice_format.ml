exception Parse_error of int * string

let perr line_no fmt =
  Printf.ksprintf (fun s -> raise (Parse_error (line_no, s))) fmt

(* Supply / ground nets never appear in the logic netlist. *)
let is_rail tok =
  match String.lowercase_ascii tok with
  | "0" | "vdd" | "vss" | "gnd" | "vdd!" | "gnd!" | "vss!" -> true
  | _ -> false

let split_ws s =
  let out = ref [] and buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' -> flush ()
      | c -> Buffer.add_char buf c)
    s;
  flush ();
  List.rev !out

module Vec = struct
  type t = { mutable a : int array; mutable len : int }

  let create () = { a = Array.make 16 0; len = 0 }

  let push v x =
    if v.len = Array.length v.a then begin
      let a = Array.make (2 * v.len) 0 in
      Array.blit v.a 0 a 0 v.len;
      v.a <- a
    end;
    v.a.(v.len) <- x;
    v.len <- v.len + 1

  let get v i = v.a.(i)
  let set v i x = v.a.(i) <- x
end

type stream = {
  net_id : (string, int) Hashtbl.t;
  mutable net_names : string array;
  mutable nets : int;
  net_driver : Vec.t;   (* per net: instance index or -1 *)
  net_read : Vec.t;     (* per net: 1 if some instance reads it *)
  (* instances, flat *)
  i_kind : Vec.t;       (* Gate.code *)
  i_line : Vec.t;
  i_strength : (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t ref;
  mutable i_strength_len : int;
  i_pin_off : Vec.t;    (* length = #instances + 1 *)
  i_pins : Vec.t;
  i_out : Vec.t;
}

let stream_create () =
  let st = {
    net_id = Hashtbl.create 1024;
    net_names = Array.make 16 "";
    nets = 0;
    net_driver = Vec.create ();
    net_read = Vec.create ();
    i_kind = Vec.create ();
    i_line = Vec.create ();
    i_strength =
      ref (Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout 16);
    i_strength_len = 0;
    i_pin_off = Vec.create ();
    i_pins = Vec.create ();
    i_out = Vec.create ();
  } in
  Vec.push st.i_pin_off 0;
  st

let push_strength st x =
  let a = !(st.i_strength) in
  if st.i_strength_len = Bigarray.Array1.dim a then begin
    let b =
      Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout
        (2 * st.i_strength_len)
    in
    Bigarray.Array1.blit a (Bigarray.Array1.sub b 0 st.i_strength_len);
    st.i_strength := b
  end;
  !(st.i_strength).{st.i_strength_len} <- x;
  st.i_strength_len <- st.i_strength_len + 1

let intern st name =
  match Hashtbl.find_opt st.net_id name with
  | Some id -> id
  | None ->
    let id = st.nets in
    Hashtbl.add st.net_id name id;
    if id = Array.length st.net_names then begin
      let a = Array.make (2 * id) "" in
      Array.blit st.net_names 0 a 0 id;
      st.net_names <- a
    end;
    st.net_names.(id) <- name;
    st.nets <- id + 1;
    Vec.push st.net_driver (-1);
    Vec.push st.net_read 0;
    id

(* One logical statement (continuations already joined). *)
let process_statement st skipping line_no stmt =
  match split_ws stmt with
  | [] -> ()
  | first :: _ as toks ->
    let head = String.lowercase_ascii first in
    if !skipping then begin
      (* inside .subckt ... .ends: cell internals are not elaborated —
         cells are matched by name at instantiation sites *)
      if head = ".ends" then skipping := false
    end
    else if head = ".subckt" then skipping := true
    else if String.length head > 0 && head.[0] = '.' then
      (* other dot-cards (.end, .global, .option, .include, ...) are noise
         for a structural read *)
      ()
    else if head.[0] = 'x' then begin
      (* X<name> in1 .. inN out cellname [m=<mult>] [k=v ...] *)
      let params, nodes_and_cell =
        List.partition (fun t -> String.contains t '=') (List.tl toks)
      in
      let strength =
        List.fold_left
          (fun acc p ->
            match String.index_opt p '=' with
            | Some i when String.lowercase_ascii (String.sub p 0 i) = "m" ->
              (match
                 float_of_string_opt
                   (String.sub p (i + 1) (String.length p - i - 1))
               with
               | Some m when m > 0.0 -> m
               | _ -> perr line_no "bad device multiplier %S" p)
            | _ -> acc)
          1.0 params
      in
      let nodes, cell =
        match List.rev nodes_and_cell with
        | cell :: rev_nodes -> (List.rev rev_nodes, cell)
        | [] -> perr line_no "instance %s has no cell name" first
      in
      let kind =
        try Gate.of_name cell
        with Invalid_argument _ -> perr line_no "unknown cell %S" cell
      in
      let logic_nodes = List.filter (fun t -> not (is_rail t)) nodes in
      let arity = Gate.arity kind in
      if List.length logic_nodes <> arity + 1 then
        perr line_no "cell %s expects %d logic pins + output, instance %s has %d"
          cell arity first (List.length logic_nodes);
      let rec split_out acc = function
        | [ out ] -> (List.rev acc, out)
        | x :: rest -> split_out (x :: acc) rest
        | [] -> assert false
      in
      let ins, out = split_out [] logic_nodes in
      let out_id = intern st out in
      if Vec.get st.net_driver out_id >= 0 then
        perr line_no "net %s driven twice (instance %s)" out first;
      let idx = st.i_kind.Vec.len in
      Vec.set st.net_driver out_id idx;
      Vec.push st.i_kind (Gate.code kind);
      Vec.push st.i_line line_no;
      push_strength st strength;
      List.iter
        (fun n ->
          let id = intern st n in
          Vec.set st.net_read id 1;
          Vec.push st.i_pins id)
        ins;
      Vec.push st.i_pin_off st.i_pins.Vec.len;
      Vec.push st.i_out out_id
    end
    else
      perr line_no
        "unsupported element %S (the SPICE subset reads X cell instances only)"
        first

let elaborate ~name st =
  let n_inst = st.i_kind.Vec.len in
  if n_inst = 0 then
    raise (Parse_error (0, "empty SPICE netlist: no cell instances"));
  let module B = Netlist.Builder in
  let b = B.create name in
  let net_of = Array.make st.nets (-1) in
  (* Undriven nets are primary inputs, in first-appearance order. *)
  for id = 0 to st.nets - 1 do
    if Vec.get st.net_driver id < 0 then
      net_of.(id) <- B.input ~name:st.net_names.(id) b
  done;
  (* Kahn-style dependency-ordered emission: an instance fires once every
     input net exists. Iterative — no recursion to overflow. *)
  let argc i = Vec.get st.i_pin_off (i + 1) - Vec.get st.i_pin_off i in
  let arg i k = Vec.get st.i_pins (Vec.get st.i_pin_off i + k) in
  let missing = Array.make n_inst 0 in
  (* per driven net: list of instances waiting on it, CSR *)
  let wait_cnt = Array.make st.nets 0 in
  for i = 0 to n_inst - 1 do
    for k = 0 to argc i - 1 do
      let a = arg i k in
      if net_of.(a) < 0 then begin
        missing.(i) <- missing.(i) + 1;
        wait_cnt.(a) <- wait_cnt.(a) + 1
      end
    done
  done;
  let wait_off = Array.make (st.nets + 1) 0 in
  for id = 0 to st.nets - 1 do
    wait_off.(id + 1) <- wait_off.(id) + wait_cnt.(id)
  done;
  let wait = Array.make wait_off.(st.nets) 0 in
  let fill = Array.copy wait_off in
  for i = 0 to n_inst - 1 do
    for k = 0 to argc i - 1 do
      let a = arg i k in
      if Vec.get st.net_driver a >= 0 then begin
        wait.(fill.(a)) <- i;
        fill.(a) <- fill.(a) + 1
      end
    done
  done;
  let queue = Array.make n_inst 0 in
  let qhead = ref 0 and qtail = ref 0 in
  for i = 0 to n_inst - 1 do
    if missing.(i) = 0 then begin
      queue.(!qtail) <- i;
      incr qtail
    end
  done;
  let emitted = ref 0 in
  while !qhead < !qtail do
    let i = queue.(!qhead) in
    incr qhead;
    let pins = Array.init (argc i) (fun k -> net_of.(arg i k)) in
    let kind = Gate.of_code (Vec.get st.i_kind i) in
    let out_id = Vec.get st.i_out i in
    let strength = !(st.i_strength).{i} in
    net_of.(out_id) <-
      B.gate ~name:st.net_names.(out_id) ~strength b kind pins;
    incr emitted;
    for w = wait_off.(out_id) to wait_off.(out_id + 1) - 1 do
      let j = wait.(w) in
      missing.(j) <- missing.(j) - 1;
      if missing.(j) = 0 then begin
        queue.(!qtail) <- j;
        incr qtail
      end
    done
  done;
  if !emitted < n_inst then begin
    (* some instance never fired: report a cycle at the first culprit *)
    let rec first i =
      if missing.(i) > 0 then i else first (i + 1)
    in
    let i = first 0 in
    perr (Vec.get st.i_line i) "combinational cycle through net %s"
      st.net_names.(Vec.get st.i_out i)
  end;
  (* Driven-but-unread nets are the primary outputs. *)
  for id = 0 to st.nets - 1 do
    if Vec.get st.net_driver id >= 0 && Vec.get st.net_read id = 0 then
      B.mark_output b net_of.(id)
  done;
  B.finish b

let parse_lines ~name next =
  let st = stream_create () in
  let skipping = ref false in
  (* current logical statement: "+" continuation lines append to it *)
  let pending = ref None in
  let flush () =
    match !pending with
    | None -> ()
    | Some (ln, stmt) ->
      pending := None;
      process_statement st skipping ln (Buffer.contents stmt)
  in
  let line_no = ref 0 in
  let rec loop () =
    match next () with
    | None -> ()
    | Some raw ->
      incr line_no;
      let raw =
        let n = String.length raw in
        if n > 0 && raw.[n - 1] = '\r' then String.sub raw 0 (n - 1) else raw
      in
      (* strip trailing comments: "$" and ";" start a comment mid-line *)
      let raw =
        match String.index_opt raw '$' with
        | Some i -> String.sub raw 0 i
        | None -> raw
      in
      let raw =
        match String.index_opt raw ';' with
        | Some i -> String.sub raw 0 i
        | None -> raw
      in
      let t = String.trim raw in
      if t = "" || t.[0] = '*' then ()
      else if t.[0] = '+' then begin
        match !pending with
        | None -> perr !line_no "continuation line with nothing to continue"
        | Some (_, stmt) ->
          Buffer.add_char stmt ' ';
          Buffer.add_string stmt (String.sub t 1 (String.length t - 1))
      end
      else begin
        flush ();
        let stmt = Buffer.create (String.length t) in
        Buffer.add_string stmt t;
        pending := Some (!line_no, stmt)
      end;
      loop ()
  in
  loop ();
  flush ();
  elaborate ~name st

let parse_string ~name text =
  let len = String.length text in
  let pos = ref 0 in
  let next () =
    if !pos > len then None
    else
      match String.index_from_opt text !pos '\n' with
      | Some i ->
        let s = String.sub text !pos (i - !pos) in
        pos := i + 1;
        Some s
      | None ->
        let s = String.sub text !pos (len - !pos) in
        pos := len + 1;
        Some s
  in
  parse_lines ~name next

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let next () =
        match input_line ic with
        | line -> Some line
        | exception End_of_file -> None
      in
      let name = Filename.remove_extension (Filename.basename path) in
      parse_lines ~name next)
