module Rng = Leakage_numeric.Rng

type sigmas = {
  sigma_l : float;
  sigma_tox : float;
  sigma_vdd : float;
  sigma_vth_inter : float;
  sigma_vth_intra : float;
}

let paper_sigmas = {
  sigma_l = 0.002;
  sigma_tox = 0.067;
  sigma_vdd = 0.0333;
  sigma_vth_inter = 0.030;
  sigma_vth_intra = 0.030;
}

let with_vth_inter s sigma_vth_inter = { s with sigma_vth_inter }

(* The inter/intra split the variance-propagation layer reports: inter-die
   axes (geometry, supply, die threshold) are fully correlated across the
   gates of one circuit instance; the intra-die threshold axis is drawn
   independently per gate. *)
let inter_only s = { s with sigma_vth_intra = 0.0 }

let intra_only s =
  {
    sigma_l = 0.0;
    sigma_tox = 0.0;
    sigma_vdd = 0.0;
    sigma_vth_inter = 0.0;
    sigma_vth_intra = s.sigma_vth_intra;
  }

type die = {
  dl : float;
  dtox : float;
  dvth : float;
  dvdd : float;
}

let nominal_die = { dl = 0.0; dtox = 0.0; dvth = 0.0; dvdd = 0.0 }

let sample_die rng s = {
  dl = Rng.normal rng ~mean:0.0 ~sigma:s.sigma_l;
  dtox = Rng.normal rng ~mean:0.0 ~sigma:s.sigma_tox;
  dvth = Rng.normal rng ~mean:0.0 ~sigma:s.sigma_vth_inter;
  dvdd = Rng.normal rng ~mean:0.0 ~sigma:s.sigma_vdd;
}

let sample_gate_vth rng s = Rng.normal rng ~mean:0.0 ~sigma:s.sigma_vth_intra

let clamp_min lo v = if v < lo then lo else v

(* Extreme negative samples (beyond -this fraction of nominal) are clamped
   so geometry and supply stay physical: [Params.with_length] / [with_tox] /
   [with_vdd] reject non-positive values, and the compact model divides by
   both geometry terms. At the paper's sigmas the clamp sits 12+ standard
   deviations out, so it never distorts the statistics — it only keeps
   pathological tails (and deliberately hostile corner sweeps) finite. *)
let min_geometry_scale = 0.5

let apply_die (d : Params.t) die =
  let floor_of nominal = min_geometry_scale *. nominal in
  let d =
    Params.with_length d (clamp_min (floor_of d.length) (d.length +. die.dl))
  in
  let d = Params.with_tox d (clamp_min (floor_of d.tox) (d.tox +. die.dtox)) in
  let d = Params.with_vth_shift d die.dvth in
  Params.with_vdd d (clamp_min (floor_of d.vdd) (d.vdd +. die.dvdd))

let apply_gate d dvth = Params.with_vth_shift d dvth

type corner = Fast | Typical | Slow

let corner_die s = function
  | Typical -> nominal_die
  | Fast ->
    {
      dl = -3.0 *. s.sigma_l;
      dtox = -3.0 *. s.sigma_tox;
      dvth = -3.0 *. s.sigma_vth_inter;
      dvdd = 3.0 *. s.sigma_vdd;
    }
  | Slow ->
    {
      dl = 3.0 *. s.sigma_l;
      dtox = 3.0 *. s.sigma_tox;
      dvth = 3.0 *. s.sigma_vth_inter;
      dvdd = -3.0 *. s.sigma_vdd;
    }

let corner_device d s c = apply_die d (corner_die s c)
