type bias = {
  vg : float;
  vd : float;
  vs : float;
  vb : float;
}

type components = {
  ids : float;
  igso : float;
  igdo : float;
  igcs : float;
  igcd : float;
  igb : float;
  ibtbt_d : float;
  ibtbt_s : float;
}

type terminals = {
  into_gate : float;
  into_drain : float;
  into_source : float;
  into_bulk : float;
}

(* Vth roll-off strength vs drawn length: ΔVth = -k_roll*(Lnom/L - 1). *)
let k_roll = 0.12

(* EKV interpolation function F(u) = ln²(1 + exp(u/2)), with the large-u
   branch taken analytically to avoid overflow when the solver probes far
   into strong inversion. *)
let ekv_f u =
  let half = u /. 2.0 in
  let l = if half > 40.0 then half else log1p (exp half) in
  l *. l

let logistic x =
  if x > 40.0 then 1.0
  else if x < -40.0 then 0.0
  else 1.0 /. (1.0 +. exp (-.x))

(* All equations in the NMOS frame; PMOS is handled by reflecting terminal
   voltages about 0 and negating the resulting currents. *)
let nmos_components (d : Params.t) (f : Params.fet) ~w ~temp { vg; vd; vs; vb } =
  let vt = Physics.thermal_voltage temp in
  (* Short-channel severity grows with Tox and shrinking L; halo suppresses
     it (§3 of the paper / Fig 4a-b). *)
  let sce =
    d.tox /. d.tox_nom *. ((d.length_nom /. d.length) ** 2.0) /. d.halo
  in
  let dibl_eff = f.dibl *. sce in
  let vds = vd -. vs in
  let vth =
    f.vth0
    +. (d.k_halo_vth *. (d.halo -. 1.0))
    -. (k_roll *. ((d.length_nom /. d.length) -. 1.0))
    +. (f.vth_tc *. (temp -. 300.0))
    -. (dibl_eff *. abs_float vds)
  in
  (* Channel current: bulk-referenced EKV (body effect comes in through the
     bulk reference and slope factor). *)
  let vp = (vg -. vb -. vth) /. f.slope_n in
  let i_f = ekv_f ((vp -. (vs -. vb)) /. vt) in
  let i_r = ekv_f ((vp -. (vd -. vb)) /. vt) in
  let ispec_w =
    f.i_spec *. w *. (d.length_nom /. d.length) *. ((temp /. 300.0) ** 0.5)
  in
  let ids = ispec_w *. (i_f -. i_r) in
  (* Gate tunneling density, signed with the oxide voltage; reverse-field
     tunneling (gate low) is weaker by jg_reverse. *)
  let jg_unit = f.jg_scale
                *. exp (-.d.beta_tox *. (d.tox -. d.tox_nom))
                *. (1.0 +. (d.tc_gate *. (temp -. 300.0)))
  in
  let jg v =
    let mag x = jg_unit *. (x /. d.vref) *. exp (d.alpha_g *. (x -. d.vref)) in
    if v >= 0.0 then mag v else -.(f.jg_reverse *. mag (-.v))
  in
  let a_ov = w *. d.lov and a_ch = w *. d.length in
  let igso = a_ov *. f.jg_ov_mult *. jg (vg -. vs) in
  let igdo = a_ov *. f.jg_ov_mult *. jg (vg -. vd) in
  (* Channel tunneling needs an inverted channel; partition drifts toward the
     source as Vds pinches the drain end. *)
  let inv_frac = logistic ((vg -. vs -. vth) /. (3.0 *. vt)) in
  let igc_total = a_ch *. jg (vg -. vs) *. inv_frac in
  let pd = 0.5 /. (1.0 +. (abs_float vds /. 0.3)) in
  let igcd = igc_total *. pd in
  let igcs = igc_total -. igcd in
  let igb = 0.02 *. a_ch *. jg (vg -. vb) in
  (* Junction BTBT, exponential in reverse bias and halo dose; mild increase
     with temperature through bandgap narrowing. A tiny forward-diode branch
     keeps nodes from drifting below the body rail during solving. *)
  let jb_unit =
    f.jb_scale
    *. exp (d.k_halo_btbt *. (d.halo -. 1.0))
    *. exp (d.beta_btbt_temp
            *. (Physics.bandgap 300.0 -. Physics.bandgap temp))
  in
  let jb v =
    if v >= 0.0 then
      w *. jb_unit *. (v /. d.vref) *. exp (d.alpha_b *. (v -. d.vref))
    else begin
      let u = Float.min 40.0 (-.v /. vt) in
      -.(w *. 1e-12 *. (exp u -. 1.0))
    end
  in
  let ibtbt_d = jb (vd -. vb) in
  let ibtbt_s = jb (vs -. vb) in
  { ids; igso; igdo; igcs; igcd; igb; ibtbt_d; ibtbt_s }

let negate c = {
  ids = -.c.ids;
  igso = -.c.igso;
  igdo = -.c.igdo;
  igcs = -.c.igcs;
  igcd = -.c.igcd;
  igb = -.c.igb;
  ibtbt_d = -.c.ibtbt_d;
  ibtbt_s = -.c.ibtbt_s;
}

let components d pol ~w ~temp bias =
  if w <= 0.0 then invalid_arg "Model.components: width must be positive";
  let f = Params.fet d pol in
  match pol with
  | Params.Nmos -> nmos_components d f ~w ~temp bias
  | Params.Pmos ->
    let reflected = {
      vg = -.bias.vg;
      vd = -.bias.vd;
      vs = -.bias.vs;
      vb = -.bias.vb;
    } in
    negate (nmos_components d f ~w ~temp reflected)

let terminals_of_components c = {
  into_gate = c.igso +. c.igdo +. c.igcs +. c.igcd +. c.igb;
  into_drain = c.ids -. c.igdo -. c.igcd +. c.ibtbt_d;
  into_source = -.c.ids -. c.igso -. c.igcs +. c.ibtbt_s;
  into_bulk = -.(c.igb +. c.ibtbt_d +. c.ibtbt_s);
}

let terminals d pol ~w ~temp bias =
  terminals_of_components (components d pol ~w ~temp bias)

let gate_leakage c =
  abs_float c.igso +. abs_float c.igdo +. abs_float c.igcs
  +. abs_float c.igcd +. abs_float c.igb

let junction_leakage c = abs_float c.ibtbt_d +. abs_float c.ibtbt_s

let channel_leakage c = abs_float c.ids

(* ------------------------------------------------------------------ jets *)

(* Jet-valued mirror of [nmos_components]: the same formulas evaluated on
   order-2 jets (lib/numeric/jet.ml), seeded on channel length, oxide
   thickness, a rigid threshold shift, or any terminal voltage. This is the
   closed-form derivative source of the variance-propagation layer
   (Sensitivity): first- and second-order log-sensitivities of every leakage
   component come out exact, with no finite-difference step to tune. The
   test suite's finite-difference oracle cross-checks every branch. *)

module Jet = Leakage_numeric.Jet

type bias_jet = {
  jvg : Jet.t;
  jvd : Jet.t;
  jvs : Jet.t;
  jvb : Jet.t;
}

type components_jet = {
  jids : Jet.t;
  jigso : Jet.t;
  jigdo : Jet.t;
  jigcs : Jet.t;
  jigcd : Jet.t;
  jigb : Jet.t;
  jibtbt_d : Jet.t;
  jibtbt_s : Jet.t;
}

let ekv_f_jet (u : Jet.t) =
  let half = Jet.scale 0.5 u in
  let l = if half.Jet.v > 40.0 then half else Jet.log1p (Jet.exp half) in
  Jet.mul l l

let nmos_components_jet (d : Params.t) (f : Params.fet) ~w ~temp
    ~(length : Jet.t) ~(tox : Jet.t) ~(dvth : Jet.t) { jvg; jvd; jvs; jvb } =
  let vt = Physics.thermal_voltage temp in
  let inv_len = Jet.div (Jet.const d.length_nom) length in
  let sce =
    Jet.scale
      (1.0 /. (d.tox_nom *. d.halo))
      (Jet.mul tox (Jet.pow_const inv_len 2.0))
  in
  let dibl_eff = Jet.scale f.dibl sce in
  let vds = Jet.sub jvd jvs in
  let vth =
    (* [Params.with_vth_shift] adds the die shift to vth0 before anything
       else, so the jet seed rides vth0. *)
    let vth0 = Jet.add_const f.vth0 dvth in
    Jet.sub
      (Jet.add_const
         (f.vth_tc *. (temp -. 300.0))
         (Jet.sub
            (Jet.add_const (d.k_halo_vth *. (d.halo -. 1.0)) vth0)
            (Jet.scale k_roll (Jet.add_const (-1.0) inv_len))))
      (Jet.mul dibl_eff (Jet.abs vds))
  in
  let vp = Jet.scale (1.0 /. f.slope_n) (Jet.sub (Jet.sub jvg jvb) vth) in
  let i_f =
    ekv_f_jet (Jet.scale (1.0 /. vt) (Jet.sub vp (Jet.sub jvs jvb)))
  in
  let i_r =
    ekv_f_jet (Jet.scale (1.0 /. vt) (Jet.sub vp (Jet.sub jvd jvb)))
  in
  let ispec_w =
    Jet.scale (f.i_spec *. w *. ((temp /. 300.0) ** 0.5)) inv_len
  in
  let jids = Jet.mul ispec_w (Jet.sub i_f i_r) in
  let jg_unit =
    Jet.scale
      (f.jg_scale *. (1.0 +. (d.tc_gate *. (temp -. 300.0))))
      (Jet.exp (Jet.scale (-.d.beta_tox) (Jet.add_const (-.d.tox_nom) tox)))
  in
  let jg (v : Jet.t) =
    let mag x =
      Jet.mul jg_unit
        (Jet.mul
           (Jet.scale (1.0 /. d.vref) x)
           (Jet.exp (Jet.scale d.alpha_g (Jet.add_const (-.d.vref) x))))
    in
    if v.Jet.v >= 0.0 then mag v
    else Jet.neg (Jet.scale f.jg_reverse (mag (Jet.neg v)))
  in
  let a_ch = Jet.scale w length in
  let jigso = Jet.scale (w *. d.lov *. f.jg_ov_mult) (jg (Jet.sub jvg jvs)) in
  let jigdo = Jet.scale (w *. d.lov *. f.jg_ov_mult) (jg (Jet.sub jvg jvd)) in
  let inv_frac =
    Jet.logistic
      (Jet.scale (1.0 /. (3.0 *. vt)) (Jet.sub (Jet.sub jvg jvs) vth))
  in
  let igc_total = Jet.mul a_ch (Jet.mul (jg (Jet.sub jvg jvs)) inv_frac) in
  let pd =
    Jet.scale 0.5
      (Jet.inv (Jet.add_const 1.0 (Jet.scale (1.0 /. 0.3) (Jet.abs vds))))
  in
  let jigcd = Jet.mul igc_total pd in
  let jigcs = Jet.sub igc_total jigcd in
  let jigb = Jet.scale 0.02 (Jet.mul a_ch (jg (Jet.sub jvg jvb))) in
  let jb_unit =
    f.jb_scale
    *. exp (d.k_halo_btbt *. (d.halo -. 1.0))
    *. exp (d.beta_btbt_temp
            *. (Physics.bandgap 300.0 -. Physics.bandgap temp))
  in
  let jb (v : Jet.t) =
    if v.Jet.v >= 0.0 then
      Jet.scale (w *. jb_unit)
        (Jet.mul
           (Jet.scale (1.0 /. d.vref) v)
           (Jet.exp (Jet.scale d.alpha_b (Jet.add_const (-.d.vref) v))))
    else begin
      let u = Jet.min_const 40.0 (Jet.scale (-1.0 /. vt) v) in
      Jet.neg (Jet.scale (w *. 1e-12) (Jet.add_const (-1.0) (Jet.exp u)))
    end
  in
  let jibtbt_d = jb (Jet.sub jvd jvb) in
  let jibtbt_s = jb (Jet.sub jvs jvb) in
  { jids; jigso; jigdo; jigcs; jigcd; jigb; jibtbt_d; jibtbt_s }

let negate_jet c = {
  jids = Jet.neg c.jids;
  jigso = Jet.neg c.jigso;
  jigdo = Jet.neg c.jigdo;
  jigcs = Jet.neg c.jigcs;
  jigcd = Jet.neg c.jigcd;
  jigb = Jet.neg c.jigb;
  jibtbt_d = Jet.neg c.jibtbt_d;
  jibtbt_s = Jet.neg c.jibtbt_s;
}

let components_jet d pol ~w ~temp ~length ~tox ~dvth (bias : bias_jet) =
  if w <= 0.0 then invalid_arg "Model.components_jet: width must be positive";
  let f = Params.fet d pol in
  match pol with
  | Params.Nmos -> nmos_components_jet d f ~w ~temp ~length ~tox ~dvth bias
  | Params.Pmos ->
    (* Terminal voltages reflect; the rigid threshold shift does not (it
       rides vth0 of both polarities with the same sign, exactly as
       [Params.with_vth_shift] applies it). *)
    let reflected = {
      jvg = Jet.neg bias.jvg;
      jvd = Jet.neg bias.jvd;
      jvs = Jet.neg bias.jvs;
      jvb = Jet.neg bias.jvb;
    } in
    negate_jet (nmos_components_jet d f ~w ~temp ~length ~tox ~dvth reflected)

let gate_leakage_jet c =
  Jet.add
    (Jet.add
       (Jet.add (Jet.add (Jet.abs c.jigso) (Jet.abs c.jigdo))
          (Jet.abs c.jigcs))
       (Jet.abs c.jigcd))
    (Jet.abs c.jigb)

let junction_leakage_jet c = Jet.add (Jet.abs c.jibtbt_d) (Jet.abs c.jibtbt_s)

let channel_leakage_jet c = Jet.abs c.jids

let off_state_leakage d pol ~w ~temp ~vdd =
  let bias =
    match pol with
    | Params.Nmos -> { vg = 0.0; vd = vdd; vs = 0.0; vb = 0.0 }
    | Params.Pmos -> { vg = vdd; vd = 0.0; vs = vdd; vb = vdd }
  in
  let c = components d pol ~w ~temp bias in
  (channel_leakage c, gate_leakage c, junction_leakage c)
