(** Process-parameter variation sampling (§5.3 / Figs 10–11).

    The paper applies random variation to channel length, oxide thickness and
    threshold voltage of individual transistors (intra-die) plus die-to-die
    (inter-die) threshold and supply variation. We sample a die-level shift
    shared by every gate of a circuit instance, and a per-gate shift applied
    on top (per-gate rather than per-transistor granularity; the loading
    statistics only need gate-to-gate decorrelation). *)

type sigmas = {
  sigma_l : float;         (** channel length, µm *)
  sigma_tox : float;       (** oxide thickness, nm *)
  sigma_vdd : float;       (** supply, V *)
  sigma_vth_inter : float; (** die-to-die threshold, V *)
  sigma_vth_intra : float; (** within-die threshold, V *)
}

val paper_sigmas : sigmas
(** Fig 11 legend values: σL = 2 nm, σTox = 0.67 Å, σVt-inter = 30 mV,
    σVt-intra = 30 mV, σVDD = 33.3 mV (we read the legend's "333 mV" as a
    typo for 1/27 of the rail; a third of the rail would not leave a working
    die). *)

val with_vth_inter : sigmas -> float -> sigmas
(** Re-target the inter-die threshold sigma (the Fig 11 sweep variable). *)

val inter_only : sigmas -> sigmas
(** The inter-die axes alone (within-die threshold sigma zeroed): geometry,
    supply and die threshold, fully correlated across a circuit's gates.
    This is the split the analytic variance propagation reports as σ_inter. *)

val intra_only : sigmas -> sigmas
(** The within-die threshold axis alone (everything else zeroed):
    independent per gate. Reported as σ_intra. *)

type die = {
  dl : float;
  dtox : float;
  dvth : float;
  dvdd : float;
}
(** One die's parameter shift. *)

val sample_die : Leakage_numeric.Rng.t -> sigmas -> die

val nominal_die : die
(** All-zero shift. *)

val sample_gate_vth : Leakage_numeric.Rng.t -> sigmas -> float
(** Within-die threshold shift for one gate. *)

val min_geometry_scale : float
(** Clamp floor for {!apply_die}: length, oxide thickness and supply never
    drop below this fraction of their nominal value (0.5), keeping extreme
    negative samples physical. At {!paper_sigmas} the floor sits more than
    12σ out, so sampling statistics are unaffected. *)

val apply_die : Params.t -> die -> Params.t
(** Shift a device's parameters by a die sample (supply shift included via
    the device record's [vdd]). Geometry and supply are clamped at
    {!min_geometry_scale} × nominal so the result always satisfies the
    [Params.with_*] positivity checks — [apply_die] never raises, whatever
    the sample. *)

val apply_gate : Params.t -> float -> Params.t
(** Apply a per-gate threshold shift on top. *)

type corner = Fast | Typical | Slow
(** 3-sigma process corners: [Fast] is the leaky corner (short channel, thin
    oxide, low threshold, high supply), [Slow] its opposite. *)

val corner_die : sigmas -> corner -> die
(** The die shift of a 3-sigma corner. *)

val corner_device : Params.t -> sigmas -> corner -> Params.t
(** [apply_die] of the corner shift. *)
