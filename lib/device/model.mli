(** Compact transistor model: every leakage component as a voltage-controlled
    current source (the paper's Fig 3).

    The channel current uses an EKV-style interpolation that is valid from
    deep subthreshold through strong inversion, so the same model both (a)
    produces the subthreshold leakage of off devices and (b) gives on devices
    the finite output conductance that turns injected fanout gate current
    into the millivolt node shifts behind the loading effect. Gate tunneling
    is exponential in oxide voltage and thickness and nearly
    temperature-independent; junction BTBT is exponential in reverse bias and
    halo dose with a weak bandgap-narrowing temperature dependence. *)

type bias = {
  vg : float;
  vd : float;
  vs : float;
  vb : float;
}
(** Absolute terminal voltages in volts. *)

type components = {
  ids : float;      (** channel current, positive drain→source (NMOS frame) *)
  igso : float;     (** gate to source-overlap tunneling *)
  igdo : float;     (** gate to drain-overlap tunneling *)
  igcs : float;     (** gate-to-channel, source-collected part *)
  igcd : float;     (** gate-to-channel, drain-collected part *)
  igb : float;      (** gate to substrate *)
  ibtbt_d : float;  (** drain-body junction BTBT *)
  ibtbt_s : float;  (** source-body junction BTBT *)
}
(** Signed current components in amperes. For a PMOS all signs are reflected;
    use {!abs_components} for magnitude reporting. *)

type terminals = {
  into_gate : float;
  into_drain : float;
  into_source : float;
  into_bulk : float;
}
(** Currents flowing from the external nets into each terminal; they sum to
    zero (KCL inside the device), which is asserted by tests. *)

val components :
  Params.t -> Params.polarity -> w:float -> temp:float -> bias -> components
(** Evaluate all current sources. [w] is the transistor width in µm, [temp]
    the temperature in Kelvin. *)

val terminals_of_components : components -> terminals

val terminals :
  Params.t -> Params.polarity -> w:float -> temp:float -> bias -> terminals
(** [terminals p pol ~w ~temp b] = [terminals_of_components (components ...)]. *)

val gate_leakage : components -> float
(** Sum of gate-tunneling magnitudes: |Igso| + |Igdo| + |Igcs| + |Igcd| +
    |Igb| (the paper's Igate for one device). *)

val junction_leakage : components -> float
(** |Ibtbt_d| + |Ibtbt_s|. *)

val channel_leakage : components -> float
(** |Ids|: reported as subthreshold leakage when the caller knows the device
    is logically off. *)

val off_state_leakage :
  Params.t -> Params.polarity -> w:float -> temp:float -> vdd:float ->
  float * float * float
(** [(isub, igate, ibtbt)] of an isolated off transistor with its drain at
    the rail — the standard single-device operating point used in Fig 4. *)

(** {2 Jet-valued evaluation (closed-form derivatives)}

    The same compact model evaluated on order-2 jets
    ({!Leakage_numeric.Jet}): seed channel length, oxide thickness, a rigid
    threshold shift or any terminal voltage, and read the exact first and
    second derivative of every current component. This is what the
    variance-propagation layer differentiates; the test suite validates each
    derivative against central finite differences. *)

type bias_jet = {
  jvg : Leakage_numeric.Jet.t;
  jvd : Leakage_numeric.Jet.t;
  jvs : Leakage_numeric.Jet.t;
  jvb : Leakage_numeric.Jet.t;
}

type components_jet = {
  jids : Leakage_numeric.Jet.t;
  jigso : Leakage_numeric.Jet.t;
  jigdo : Leakage_numeric.Jet.t;
  jigcs : Leakage_numeric.Jet.t;
  jigcd : Leakage_numeric.Jet.t;
  jigb : Leakage_numeric.Jet.t;
  jibtbt_d : Leakage_numeric.Jet.t;
  jibtbt_s : Leakage_numeric.Jet.t;
}

val components_jet :
  Params.t -> Params.polarity -> w:float -> temp:float ->
  length:Leakage_numeric.Jet.t -> tox:Leakage_numeric.Jet.t ->
  dvth:Leakage_numeric.Jet.t -> bias_jet -> components_jet
(** Jet-valued {!components}. [length] and [tox] stand in for the device
    record's [length] / [tox] fields (the [*_nom] references stay fixed, as
    under {!Params.with_length} / {!Params.with_tox}); [dvth] is a rigid
    threshold shift of both polarities, as under {!Params.with_vth_shift}.
    With constant seeds the values agree with {!components}. For a PMOS the
    terminal voltages are reflected but [dvth] is not, matching
    [with_vth_shift]. *)

val gate_leakage_jet : components_jet -> Leakage_numeric.Jet.t
(** Jet-valued {!gate_leakage}. *)

val junction_leakage_jet : components_jet -> Leakage_numeric.Jet.t
(** Jet-valued {!junction_leakage}. *)

val channel_leakage_jet : components_jet -> Leakage_numeric.Jet.t
(** Jet-valued {!channel_leakage}. *)
