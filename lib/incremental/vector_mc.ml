module Rng = Leakage_numeric.Rng
module Stats = Leakage_numeric.Stats
module Logic = Leakage_circuit.Logic
module Netlist = Leakage_circuit.Netlist
module Report = Leakage_spice.Leakage_report
module Pool = Leakage_parallel.Pool

type result = {
  totals : float array;
  baselines : float array;
  summary : Stats.summary;
  baseline_summary : Stats.summary;
  mean_components : Report.components;
  mean_shift_percent : float;
}

(* Fixed resampling chunk width. Each chunk owns a fresh Incremental session
   seeded on its first vector and walks the rest by set_vector, so chunks
   are independent: the work — and the subtract-old/add-new float drift of a
   session — is a function of the chunk boundaries only, which depend on the
   sample count and never on the pool. Parallel and sequential runs are
   therefore bit-identical. *)
let mc_chunk = 32

type chunk_part = {
  p_acc : Report.components;
  p_base : Report.components;
  p_shift : float;
}

(* Walk vectors.(lo..hi-1) on a chunk-local session, writing per-vector
   totals into the shared (disjoint) slices and returning the chunk sums. *)
let run_chunk lib netlist vectors totals baselines ~lo ~hi =
  let session = Incremental.create lib netlist vectors.(lo) in
  let acc = ref Report.zero in
  let acc_base = ref Report.zero in
  let shift = ref 0.0 in
  for i = lo to hi - 1 do
    if i > lo then Incremental.set_vector session vectors.(i);
    let c = Incremental.totals session in
    let base = Incremental.baseline_totals session in
    let b = Report.total base in
    totals.(i) <- Report.total c;
    baselines.(i) <- b;
    acc := Report.add !acc c;
    acc_base := Report.add !acc_base base;
    shift := !shift +. ((totals.(i) -. b) /. b *. 100.0)
  done;
  { p_acc = !acc; p_base = !acc_base; p_shift = !shift }

let fold_parts parts =
  Array.fold_left
    (fun (acc, base, shift) p ->
      (Report.add acc p.p_acc, Report.add base p.p_base, shift +. p.p_shift))
    (Report.zero, Report.zero, 0.0)
    parts

let resample ?pool ?(seed = 1) ~samples lib netlist =
  if samples <= 0 then invalid_arg "Vector_mc.resample: samples must be positive";
  let rng = Rng.create seed in
  let width = Array.length (Netlist.inputs netlist) in
  (* Draw every vector up front from the single stream, in sample order —
     the same draw sequence as a purely sequential walk. *)
  let vectors = Array.make samples [||] in
  for i = 0 to samples - 1 do
    vectors.(i) <- Logic.random_vector rng width
  done;
  Netlist.warm netlist;
  let totals = Array.make samples 0.0 in
  let baselines = Array.make samples 0.0 in
  let parts =
    Pool.map_chunked ?pool ~chunk:mc_chunk samples
      (run_chunk lib netlist vectors totals baselines)
  in
  let acc, _, shift = fold_parts parts in
  {
    totals;
    baselines;
    summary = Stats.summarize totals;
    baseline_summary = Stats.summarize baselines;
    mean_components = Report.scale (1.0 /. float_of_int samples) acc;
    mean_shift_percent = shift /. float_of_int samples;
  }

let over_vectors ?pool lib netlist vectors =
  if vectors = [] then invalid_arg "Vector_mc.over_vectors: empty vector list";
  let vectors = Array.of_list vectors in
  let n = Array.length vectors in
  Netlist.warm netlist;
  let totals = Array.make n 0.0 in
  let baselines = Array.make n 0.0 in
  let parts =
    Pool.map_chunked ?pool ~chunk:mc_chunk n
      (run_chunk lib netlist vectors totals baselines)
  in
  let acc, acc_base, _ = fold_parts parts in
  let k = 1.0 /. float_of_int n in
  (Report.scale k acc, Report.scale k acc_base)
