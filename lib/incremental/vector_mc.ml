module Rng = Leakage_numeric.Rng
module Stats = Leakage_numeric.Stats
module Logic = Leakage_circuit.Logic
module Netlist = Leakage_circuit.Netlist
module Report = Leakage_spice.Leakage_report

type result = {
  totals : float array;
  baselines : float array;
  summary : Stats.summary;
  baseline_summary : Stats.summary;
  mean_components : Report.components;
  mean_shift_percent : float;
}

let resample ?(seed = 1) ~samples lib netlist =
  if samples <= 0 then invalid_arg "Vector_mc.resample: samples must be positive";
  let rng = Rng.create seed in
  let width = Array.length (Netlist.inputs netlist) in
  let totals = Array.make samples 0.0 in
  let baselines = Array.make samples 0.0 in
  let session = Incremental.create lib netlist (Logic.random_vector rng width) in
  let acc = ref Report.zero in
  let shift = ref 0.0 in
  for i = 0 to samples - 1 do
    if i > 0 then Incremental.set_vector session (Logic.random_vector rng width);
    let c = Incremental.totals session in
    let b = Report.total (Incremental.baseline_totals session) in
    totals.(i) <- Report.total c;
    baselines.(i) <- b;
    acc := Report.add !acc c;
    shift := !shift +. ((totals.(i) -. b) /. b *. 100.0)
  done;
  {
    totals;
    baselines;
    summary = Stats.summarize totals;
    baseline_summary = Stats.summarize baselines;
    mean_components = Report.scale (1.0 /. float_of_int samples) !acc;
    mean_shift_percent = !shift /. float_of_int samples;
  }

let over_vectors lib netlist vectors =
  match vectors with
  | [] -> invalid_arg "Vector_mc.over_vectors: empty vector list"
  | first :: rest ->
    let session = Incremental.create lib netlist first in
    let n = List.length vectors in
    let acc = ref (Incremental.totals session) in
    let acc_base = ref (Incremental.baseline_totals session) in
    List.iter
      (fun v ->
        Incremental.set_vector session v;
        acc := Report.add !acc (Incremental.totals session);
        acc_base := Report.add !acc_base (Incremental.baseline_totals session))
      rest;
    let k = 1.0 /. float_of_int n in
    (Report.scale k !acc, Report.scale k !acc_base)
