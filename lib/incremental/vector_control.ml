module Rng = Leakage_numeric.Rng
module Logic = Leakage_circuit.Logic
module Netlist = Leakage_circuit.Netlist
module Report = Leakage_spice.Leakage_report

type search_result = {
  vector : Logic.vector;
  total : float;
}

let session_total ~use_loading session =
  if use_loading then Report.total (Incremental.totals session)
  else Report.total (Incremental.baseline_totals session)

let better a b = if b.total < a.total then b else a

let exhaustive ?pool ?(use_loading = true) lib netlist =
  let width = Array.length (Netlist.inputs netlist) in
  if width > 20 then
    invalid_arg "Vector_control.exhaustive: too many inputs (> 20)";
  let v0 = Logic.vector_of_int ~width 0 in
  let session = Incremental.create lib netlist v0 in
  let best = ref { vector = v0; total = session_total ~use_loading session } in
  for n = 1 to (1 lsl width) - 1 do
    let v = Logic.vector_of_int ~width n in
    Incremental.set_vector ?pool session v;
    best := better !best { vector = v; total = session_total ~use_loading session }
  done;
  !best

let random_search ?pool ?(use_loading = true) ~rng ~samples lib netlist =
  if samples <= 0 then invalid_arg "Vector_control.random_search: samples";
  let width = Array.length (Netlist.inputs netlist) in
  let first = Logic.random_vector rng width in
  let session = Incremental.create lib netlist first in
  let best = ref { vector = first; total = session_total ~use_loading session } in
  for _ = 2 to samples do
    let v = Logic.random_vector rng width in
    Incremental.set_vector ?pool session v;
    best := better !best { vector = v; total = session_total ~use_loading session }
  done;
  !best

let greedy_descent ?pool ?(use_loading = true) ?(max_rounds = 64) lib netlist
    ~start =
  let inputs = Netlist.inputs netlist in
  let session = Incremental.create lib netlist start in
  let flip v i =
    let v' = Array.copy v in
    v'.(i) <- Logic.lnot v'.(i);
    v'
  in
  let current =
    ref { vector = Array.copy start; total = session_total ~use_loading session }
  in
  let improved = ref true in
  let rounds = ref 0 in
  while !improved && !rounds < max_rounds do
    incr rounds;
    improved := false;
    let best_here = ref !current in
    for i = 0 to Array.length start - 1 do
      (* speculate the single-bit flip, read the objective, revert *)
      let cp = Incremental.checkpoint session in
      let bit = Logic.lnot !current.vector.(i) in
      Incremental.apply session (Edit.Set_input (inputs.(i), bit = Logic.One));
      let trial =
        { vector = flip !current.vector i;
          total = session_total ~use_loading session }
      in
      Incremental.rollback session cp;
      best_here := better !best_here trial
    done;
    if !best_here.total < !current.total then begin
      current := !best_here;
      Incremental.set_vector ?pool session !best_here.vector;
      improved := true
    end
  done;
  !current

type comparison = {
  with_loading : search_result;
  without_loading : search_result;
  without_under_loading : float;
  changed : bool;
}

let compare_objectives ?pool ?(samples = 256) ?(seed = 7) lib netlist =
  let width = Array.length (Netlist.inputs netlist) in
  let search ~use_loading =
    if width <= 14 then exhaustive ?pool ~use_loading lib netlist
    else begin
      let rng = Rng.create seed in
      let r = random_search ?pool ~use_loading ~rng ~samples lib netlist in
      greedy_descent ?pool ~use_loading lib netlist ~start:r.vector
    end
  in
  let with_loading = search ~use_loading:true in
  let without_loading = search ~use_loading:false in
  let without_under_loading =
    let session = Incremental.create lib netlist without_loading.vector in
    Report.total (Incremental.totals session)
  in
  {
    with_loading;
    without_loading;
    without_under_loading;
    changed = with_loading.vector <> without_loading.vector;
  }
