module Gate = Leakage_circuit.Gate
module Netlist = Leakage_circuit.Netlist
module Rng = Leakage_numeric.Rng

type t =
  | Resize of int * float
  | Retype of int * Gate.kind
  | Relib of int * Leakage_core.Library.t
  | Set_input of Netlist.net * bool

let gate_id = function
  | Resize (g, _) | Retype (g, _) | Relib (g, _) -> Some g
  | Set_input _ -> None

let pp ppf = function
  | Resize (g, s) -> Format.fprintf ppf "resize g%d -> %.2fx" g s
  | Retype (g, k) -> Format.fprintf ppf "retype g%d -> %s" g (Gate.name k)
  | Relib (g, _) -> Format.fprintf ppf "relib g%d" g
  | Set_input (n, b) ->
    Format.fprintf ppf "set net%d <- %c" n (if b then '1' else '0')

let default_strengths = [| 0.5; 0.75; 1.0; 1.25; 1.5; 2.0 |]

let random_resize ?(strengths = default_strengths) rng netlist =
  if Array.length strengths = 0 then
    invalid_arg "Edit.random_resize: empty strength palette";
  let g = Rng.int rng (Netlist.gate_count netlist) in
  Resize (g, Rng.pick rng strengths)

let random_set_input rng netlist =
  let pi = Rng.pick rng (Netlist.inputs netlist) in
  Set_input (pi, Rng.bool rng)
