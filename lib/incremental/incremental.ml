module Gate = Leakage_circuit.Gate
module Logic = Leakage_circuit.Logic
module Netlist = Leakage_circuit.Netlist
module Topo = Leakage_circuit.Topo
module Report = Leakage_spice.Leakage_report
module Library = Leakage_core.Library
module Characterize = Leakage_core.Characterize
module Pool = Leakage_parallel.Pool
module Tm = Leakage_telemetry.Telemetry
module Trace = Leakage_telemetry.Trace

let m_edits = Tm.counter "incr.edits"
let m_undos = Tm.counter "incr.undos"
let m_refreshes = Tm.counter "incr.refreshes"
let m_batches = Tm.counter "incr.batches"
let h_cone_gates = Tm.histogram "incr.cone_gates"
let h_cone_lookups = Tm.histogram "incr.cone_lookups"
let h_batch_edits = Tm.histogram "incr.batch_edits"
let h_batch_groups = Tm.histogram "incr.batch_groups"
let h_group_edits = Tm.histogram "incr.group_edits"
let h_cone_pruned = Tm.histogram "incr.cone_pruned_gates"
let h_cone_struct = Tm.histogram "incr.cone_struct_gates"

type stats = {
  edits : int;
  undos : int;
  refreshes : int;
  logic_evals : int;
  entry_updates : int;
  net_updates : int;
  leakage_lookups : int;
  batches : int;
  batch_groups : int;
}

(* Per-propagation scratch. One propagation (an edit, an undo, or one
   cone-disjoint group of a batch) drains a worklist and accumulates its
   totals/baseline effect as a *delta* rather than mutating the session
   scalars in place; the session merges deltas afterwards in a fixed order.
   That indirection is what lets apply_batch run disjoint groups on separate
   domains and still produce bit-identical floats at any job count: each
   group's sum only ever sees its own updates, in its own topological order,
   and the cross-group reduction order is fixed by the partition. *)
type scratch = {
  s_work : Cone.Worklist.t;
  s_nets : Cone.Dirty_set.t;
  s_gates : Cone.Dirty_set.t;
  mutable s_totals : Report.components;    (* delta to session totals *)
  mutable s_baseline : Report.components;  (* delta to session baseline *)
  mutable s_logic : int;
  mutable s_entry : int;
  mutable s_net : int;
  mutable s_lookup : int;
}

type t = {
  netlist : Netlist.t;                 (* structural info; kind/strength overridden below *)
  n_gates : int;
  order_ids : int array;               (* gate ids in topological order *)
  base_lib : Library.t;
  refresh_every : int;
  input_index : int array;             (* net -> primary-input position, -1 otherwise *)
  is_pi_net : bool array;
  priority : int array;                (* gate id -> topological position *)
  (* current editable state *)
  kind : Gate.kind array;
  strength : float array;
  libs : Library.t array;
  pattern : Logic.vector;
  (* cached estimate *)
  values : Logic.value array;          (* per net *)
  entries : Characterize.entry array;  (* per gate *)
  entry_libs : Library.t array;        (* library each entry was resolved from *)
  net_injection : float array;         (* per net *)
  loaded : Report.components array;    (* per gate, loading-aware *)
  isolated : Report.components array;  (* per gate, no-loading nominal *)
  mutable totals : Report.components;
  mutable baseline : Report.components;
  (* reusable propagation scratch; a lock-free free list so concurrent batch
     groups each grab their own without allocating O(circuit) per batch *)
  free : scratch list Atomic.t;
  (* undo log *)
  mutable log : Edit.t list;           (* inverse edits, most recent first *)
  mutable depth : int;
  mutable since_refresh : int;
  (* counters *)
  mutable n_edits : int;
  mutable n_undos : int;
  mutable n_refreshes : int;
  mutable n_logic : int;
  mutable n_entry : int;
  mutable n_net : int;
  mutable n_lookup : int;
  mutable n_batches : int;
  mutable n_groups : int;
}

let sub_c (a : Report.components) (b : Report.components) =
  { Report.isub = a.Report.isub -. b.Report.isub;
    igate = a.Report.igate -. b.Report.igate;
    ibtbt = a.Report.ibtbt -. b.Report.ibtbt }

let check_gate t g =
  if g < 0 || g >= t.n_gates then
    invalid_arg (Printf.sprintf "Incremental: unknown gate id %d" g)

let entry_of t g_id vector =
  Library.entry ~strength:t.strength.(g_id) t.libs.(g_id) t.kind.(g_id) vector

let vector_of t g_id =
  Array.init
    (Netlist.gate_arity t.netlist g_id)
    (fun p -> t.values.(Netlist.gate_pin t.netlist g_id p))

(* -------------------------------------------------------------- scratch *)

let fresh_scratch t =
  {
    s_work = Cone.Worklist.create ~priority:t.priority;
    s_nets = Cone.Dirty_set.create (Array.length t.net_injection);
    s_gates = Cone.Dirty_set.create t.n_gates;
    s_totals = Report.zero;
    s_baseline = Report.zero;
    s_logic = 0;
    s_entry = 0;
    s_net = 0;
    s_lookup = 0;
  }

let rec acquire t =
  match Atomic.get t.free with
  | [] -> fresh_scratch t
  | s :: rest as cur ->
    if Atomic.compare_and_set t.free cur rest then s else acquire t

let rec release t s =
  s.s_totals <- Report.zero;
  s.s_baseline <- Report.zero;
  s.s_logic <- 0;
  s.s_entry <- 0;
  s.s_net <- 0;
  s.s_lookup <- 0;
  let cur = Atomic.get t.free in
  if not (Atomic.compare_and_set t.free cur (s :: cur)) then release t s

(* Fold one propagation's effect into the session, on the session's domain.
   Merge order across batch groups is the partition's group order, so it
   never depends on scheduling. *)
let merge t s =
  if Tm.enabled () then begin
    (* cone extents: gates the worklist visited, gates re-looked-up *)
    Tm.observe h_cone_gates (float_of_int s.s_logic);
    Tm.observe h_cone_lookups (float_of_int s.s_lookup)
  end;
  t.totals <- Report.add t.totals s.s_totals;
  t.baseline <- Report.add t.baseline s.s_baseline;
  t.n_logic <- t.n_logic + s.s_logic;
  t.n_entry <- t.n_entry + s.s_entry;
  t.n_net <- t.n_net + s.s_net;
  t.n_lookup <- t.n_lookup + s.s_lookup

(* Loading-aware estimate of one gate at the current injections. *)
let lookup_components t g_id =
  let e = t.entries.(g_id) in
  let loading_in =
    Array.init
      (Netlist.gate_arity t.netlist g_id)
      (fun pin ->
        let net = Netlist.gate_pin t.netlist g_id pin in
        (* same I_L-IN bookkeeping as Estimator.estimate: siblings only on
           driven nets, self-droop cancellation on ideal primary inputs *)
        if t.is_pi_net.(net) then -.e.Characterize.pin_injection.(pin)
        else t.net_injection.(net) -. e.Characterize.pin_injection.(pin))
  in
  let loading_out = t.net_injection.(Netlist.gate_out t.netlist g_id) in
  Characterize.apply e ~loading_in ~loading_out

let relookup t s g_id =
  let c = lookup_components t g_id in
  s.s_totals <- Report.add s.s_totals (sub_c c t.loaded.(g_id));
  t.loaded.(g_id) <- c;
  s.s_lookup <- s.s_lookup + 1

(* Full recomputation of the cached estimate from the current editable
   state. Used at creation and periodically to squash float drift. *)
let refresh t =
  Trace.with_span ~cat:"incr" "refresh" @@ fun () ->
  Tm.incr m_refreshes;
  let inputs = Netlist.inputs t.netlist in
  Array.iteri (fun i n -> t.values.(n) <- t.pattern.(i)) inputs;
  (* logic + entries in topological order so every gate sees settled input
     values (the netlist's gate-id order is not guaranteed topological) *)
  Array.iter
    (fun g_id ->
      let vec = vector_of t g_id in
      t.values.(Netlist.gate_out t.netlist g_id) <-
        Gate.eval_logic t.kind.(g_id) vec;
      t.entries.(g_id) <- entry_of t g_id vec;
      t.entry_libs.(g_id) <- t.libs.(g_id);
      t.isolated.(g_id) <- t.entries.(g_id).Characterize.nominal_isolated)
    t.order_ids;
  Array.fill t.net_injection 0 (Array.length t.net_injection) 0.0;
  for g_id = 0 to t.n_gates - 1 do
    let e = t.entries.(g_id) in
    Netlist.iter_pins t.netlist g_id (fun pin net ->
        t.net_injection.(net) <-
          t.net_injection.(net) +. e.Characterize.pin_injection.(pin))
  done;
  t.totals <- Report.zero;
  t.baseline <- Report.zero;
  for id = 0 to t.n_gates - 1 do
    let c = lookup_components t id in
    t.loaded.(id) <- c;
    t.totals <- Report.add t.totals c;
    t.baseline <- Report.add t.baseline t.isolated.(id);
    t.n_lookup <- t.n_lookup + 1
  done;
  t.n_refreshes <- t.n_refreshes + 1;
  t.since_refresh <- 0

(* Drain the worklist in topological order: refresh each popped gate's
   characterization entry (vector/kind/strength/library key), push loading
   deltas onto its input nets, and propagate logic flips downstream. Then
   re-look-up leakage for every gate touching a dirtied net. Entry changes
   are detected by comparing the stored entry's key against the session
   state — never by physical identity, which would vary with the (per
   domain) characterization cache answering the lookup. *)
let propagate t s =
  let rec drain () =
    match Cone.Worklist.pop s.s_work with
    | None -> ()
    | Some g_id ->
      s.s_logic <- s.s_logic + 1;
      let vec = vector_of t g_id in
      let e = t.entries.(g_id) in
      let changed =
        t.entry_libs.(g_id) != t.libs.(g_id)
        || t.kind.(g_id) <> e.Characterize.kind
        || not (Float.equal t.strength.(g_id) e.Characterize.strength)
        || vec <> e.Characterize.vector
      in
      if changed then begin
        s.s_entry <- s.s_entry + 1;
        let e' = entry_of t g_id vec in
        Netlist.iter_pins t.netlist g_id (fun pin net ->
            let d =
              e'.Characterize.pin_injection.(pin)
              -. e.Characterize.pin_injection.(pin)
            in
            if d <> 0.0 then begin
              t.net_injection.(net) <- t.net_injection.(net) +. d;
              Cone.Dirty_set.add s.s_nets net
            end);
        t.entries.(g_id) <- e';
        t.entry_libs.(g_id) <- t.libs.(g_id);
        s.s_baseline <-
          Report.add (sub_c s.s_baseline t.isolated.(g_id))
            e'.Characterize.nominal_isolated;
        t.isolated.(g_id) <- e'.Characterize.nominal_isolated;
        Cone.Dirty_set.add s.s_gates g_id
      end;
      let out' = Gate.eval_logic t.kind.(g_id) vec in
      let out_net = Netlist.gate_out t.netlist g_id in
      if out' <> t.values.(out_net) then begin
        t.values.(out_net) <- out';
        Netlist.iter_fanout t.netlist out_net (Cone.Worklist.push s.s_work)
      end;
      drain ()
  in
  drain ();
  Cone.Dirty_set.iter
    (fun net ->
      s.s_net <- s.s_net + 1;
      let d = Netlist.driver_id t.netlist net in
      if d >= 0 then Cone.Dirty_set.add s.s_gates d;
      Netlist.iter_fanout t.netlist net (Cone.Dirty_set.add s.s_gates))
    s.s_nets;
  Cone.Dirty_set.iter (fun g_id -> relookup t s g_id) s.s_gates;
  Cone.Dirty_set.clear s.s_nets;
  Cone.Dirty_set.clear s.s_gates

let floats_match a b = Float.equal a b

(* Pure validity checks, shared by [stage] and [apply_batch]'s pre-pass
   (a batch validates every edit before staging any, so a malformed edit
   raises before the session is touched). None of them read float state
   mutated by propagation, so validating up front is equivalent to
   validating edit by edit. *)
let validate t (edit : Edit.t) =
  match edit with
  | Edit.Resize (g, s) ->
    check_gate t g;
    if s <= 0.0 then invalid_arg "Incremental: Resize strength must be positive";
    if not (Library.strength_in_range s) then
      invalid_arg
        (Printf.sprintf
           "Incremental: Resize strength %g exceeds the library's \
            characterizable range (max %g)"
           s Library.max_strength)
  | Edit.Retype (g, k) ->
    check_gate t g;
    if Gate.arity k <> Netlist.gate_arity t.netlist g then
      invalid_arg
        (Printf.sprintf "Incremental: Retype g%d to %s changes arity" g
           (Gate.name k))
  | Edit.Relib (g, l) ->
    check_gate t g;
    if
      not
        (floats_match (Library.temp l) (Library.temp t.base_lib)
         && floats_match (Library.vdd l) (Library.vdd t.base_lib))
    then
      invalid_arg
        "Incremental: Relib library must share temperature and supply with \
         the session"
  | Edit.Set_input (n, _) ->
    if n < 0 || n >= Array.length t.input_index || t.input_index.(n) < 0 then
      invalid_arg
        (Printf.sprintf "Incremental: Set_input on non-input net %d" n)

(* Record the inverse, mutate the editable state, and seed the worklist.
   Propagation happens once per apply / once per batch group. *)
let stage t ~work edit =
  validate t edit;
  match (edit : Edit.t) with
  | Edit.Resize (g, s) ->
    let inverse = Edit.Resize (g, t.strength.(g)) in
    t.strength.(g) <- s;
    Cone.Worklist.push work g;
    inverse
  | Edit.Retype (g, k) ->
    let inverse = Edit.Retype (g, t.kind.(g)) in
    t.kind.(g) <- k;
    Cone.Worklist.push work g;
    inverse
  | Edit.Relib (g, l) ->
    let inverse = Edit.Relib (g, t.libs.(g)) in
    t.libs.(g) <- l;
    Cone.Worklist.push work g;
    inverse
  | Edit.Set_input (n, b) ->
    let old = Logic.to_bool t.values.(n) in
    let inverse = Edit.Set_input (n, old) in
    if old <> b then begin
      let v = Logic.of_bool b in
      t.values.(n) <- v;
      t.pattern.(t.input_index.(n)) <- v;
      Netlist.iter_fanout t.netlist n (Cone.Worklist.push work)
    end;
    inverse

let maybe_refresh t =
  if t.refresh_every > 0 && t.since_refresh >= t.refresh_every then refresh t

let log_inverse t inverse =
  t.log <- inverse :: t.log;
  t.depth <- t.depth + 1

let apply t edit =
  let s = acquire t in
  let inverse = stage t ~work:s.s_work edit in
  propagate t s;
  merge t s;
  release t s;
  log_inverse t inverse;
  Tm.incr m_edits;
  t.n_edits <- t.n_edits + 1;
  t.since_refresh <- t.since_refresh + 1;
  maybe_refresh t

(* placeholder for the inverse slots; every slot is overwritten because the
   groups partition the batch indices *)
let dummy_inverse = Edit.Set_input (0, false)

let partition_state t =
  { Cone.Partition.values = t.values; kinds = t.kind }

let apply_batch ?pool ?(prune = true) t edits =
  match edits with
  | [] -> ()
  | [ edit ] -> apply t edit
  | _ ->
    List.iter (validate t) edits;
    let arr = Array.of_list edits in
    let n = Array.length arr in
    (* The pruning state is read before any edit is staged, so the partition
       is a function of (netlist, batch, settled pre-batch state) — the same
       at any job count and for any edit order within the batch. *)
    let state = if prune then Some (partition_state t) else None in
    let cones = Cone.Partition.cones ?state t.netlist arr in
    let groups = Cone.Partition.groups_of t.netlist cones in
    let inverses = Array.make n dummy_inverse in
    (* Each group stages and propagates only within its own cone, so groups
       touch disjoint slices of the per-net/per-gate arrays and can run on
       separate domains. Scalar effects are accumulated per group and merged
       below in group order, which fixes the floating-point reduction order
       regardless of the pool (or its absence): the sequential walk runs the
       exact same grouped schedule. *)
    if Tm.enabled () then begin
      Tm.incr m_batches;
      Tm.add m_edits n;
      Tm.observe h_batch_edits (float_of_int n);
      Tm.observe h_batch_groups (float_of_int (Array.length groups));
      (* pruned vs structural cone sizes; without pruning the partition
         cones are the structural ones *)
      let observe_sizes h cs =
        Array.iter
          (fun (c : Cone.Partition.cone) ->
            Tm.observe h (float_of_int (List.length c.Cone.Partition.gates)))
          cs
      in
      let structural =
        if prune then Cone.Partition.cones t.netlist arr else cones
      in
      observe_sizes h_cone_struct structural;
      if prune then observe_sizes h_cone_pruned cones
    end;
    let scratches =
      Pool.map ?pool (Array.length groups) (fun gi ->
          Trace.with_span ~cat:"incr" "group"
            ~args:[ ("edits", string_of_int (Array.length groups.(gi))) ]
          @@ fun () ->
          Tm.observe h_group_edits (float_of_int (Array.length groups.(gi)));
          let s = acquire t in
          Array.iter
            (fun ei -> inverses.(ei) <- stage t ~work:s.s_work arr.(ei))
            groups.(gi);
          propagate t s;
          s)
    in
    Array.iter
      (fun s ->
        merge t s;
        release t s)
      scratches;
    (* logged left to right, so the most recent edit's inverse pops first *)
    Array.iter (fun inverse -> log_inverse t inverse) inverses;
    t.n_batches <- t.n_batches + 1;
    t.n_groups <- t.n_groups + Array.length groups;
    t.n_edits <- t.n_edits + n;
    t.since_refresh <- t.since_refresh + n;
    maybe_refresh t

let set_vector ?pool t v =
  let inputs = Netlist.inputs t.netlist in
  if Array.length v <> Array.length inputs then
    invalid_arg
      (Printf.sprintf "Incremental.set_vector: %d inputs expected, got %d"
         (Array.length inputs) (Array.length v));
  let edits = ref [] in
  Array.iteri
    (fun i n ->
      if t.pattern.(i) <> v.(i) then
        edits := Edit.Set_input (n, Logic.to_bool v.(i)) :: !edits)
    inputs;
  apply_batch ?pool t !edits

let preview_groups ?(prune = true) t edits =
  List.iter (validate t) edits;
  let arr = Array.of_list edits in
  let state = if prune then Some (partition_state t) else None in
  Cone.Partition.groups ?state t.netlist arr

let undo t =
  match t.log with
  | [] -> invalid_arg "Incremental.undo: empty undo log"
  | inverse :: rest ->
    t.log <- rest;
    t.depth <- t.depth - 1;
    let s = acquire t in
    ignore (stage t ~work:s.s_work inverse);
    propagate t s;
    merge t s;
    release t s;
    Tm.incr m_undos;
    t.n_undos <- t.n_undos + 1;
    (* undos accumulate the same float drift as edits *)
    t.since_refresh <- t.since_refresh + 1;
    maybe_refresh t

type checkpoint = int

let checkpoint t = t.depth

let rollback t cp =
  if cp < 0 || cp > t.depth then
    invalid_arg "Incremental.rollback: checkpoint already undone past";
  while t.depth > cp do
    undo t
  done

let undo_depth t = t.depth

let totals t = t.totals
let baseline_totals t = t.baseline

(* Variance propagation over the session's cached per-gate state. The cone
   machinery already keeps [entries]/[loaded]/[isolated] current after every
   edit, so assembling σ here costs only the row extraction and the moment
   sums — no estimator pass. Rows carry the same float drift as the session
   totals; [refresh] squashes both, after which the result is bit-identical
   to a fresh [Sensitivity.estimate_totals] analysis. *)
let sigma ?lin_tol ~sigmas t =
  let rows =
    Array.init t.n_gates (fun g ->
        Leakage_core.Sensitivity.row_of_entry ~entry:t.entries.(g)
          ~loaded:t.loaded.(g) ~isolated:t.isolated.(g))
  in
  Leakage_core.Sensitivity.analyze ?lin_tol ~sigmas
    ~device:(Library.device t.base_lib) ~temp:(Library.temp t.base_lib)
    ~vdd:(Library.vdd t.base_lib) rows

let gate_components t g =
  check_gate t g;
  t.loaded.(g)

let pattern t = Array.copy t.pattern
let assignment t = Array.copy t.values
let net_injection t = Array.copy t.net_injection
let netlist t = t.netlist

let current_netlist t =
  (* copies: the session keeps mutating its kind/strength state, the
     returned netlist must not follow along *)
  Netlist.with_kinds_strengths t.netlist ~kinds:(Array.copy t.kind)
    ~strengths:(Array.copy t.strength)

let library_of_gate t g =
  check_gate t g;
  t.libs.(g)

let stats t =
  {
    edits = t.n_edits;
    undos = t.n_undos;
    refreshes = t.n_refreshes;
    logic_evals = t.n_logic;
    entry_updates = t.n_entry;
    net_updates = t.n_net;
    leakage_lookups = t.n_lookup;
    batches = t.n_batches;
    batch_groups = t.n_groups;
  }

let create ?(refresh_every = 64) ?library_of_gate base netlist pattern =
  if refresh_every < 0 then
    invalid_arg "Incremental.create: negative refresh_every";
  let inputs = Netlist.inputs netlist in
  if Array.length pattern <> Array.length inputs then
    invalid_arg
      (Printf.sprintf "Incremental.create: %d inputs expected, pattern has %d"
         (Array.length inputs) (Array.length pattern));
  (* force the lazy driver/fanout caches now: propagation may run on worker
     domains, which must only ever read them *)
  Netlist.warm netlist;
  let n_gates = Netlist.gate_count netlist in
  let n_nets = Netlist.net_count netlist in
  let order_ids = Topo.order_ids netlist in
  let priority = Array.make n_gates 0 in
  Array.iteri (fun pos g_id -> priority.(g_id) <- pos) order_ids;
  let input_index = Array.make n_nets (-1) in
  Array.iteri (fun i n -> input_index.(n) <- i) inputs;
  let is_pi_net = Array.make n_nets true in
  for g = 0 to n_gates - 1 do
    is_pi_net.(Netlist.gate_out netlist g) <- false
  done;
  let libs =
    match library_of_gate with
    | Some f -> Array.init n_gates f
    | None -> Array.make n_gates base
  in
  (* Seed values and entries eagerly (no edits are staged yet, so the
     netlist's own kinds/strengths are current); [refresh] below recomputes
     injections and totals from them. *)
  let values = Array.make n_nets Logic.Zero in
  Leakage_circuit.Simulate.run_into netlist pattern values;
  let entries =
    Array.init n_gates (fun g ->
        Library.entry
          ~strength:(Netlist.gate_strength netlist g)
          libs.(g)
          (Netlist.gate_kind netlist g)
          (Array.init (Netlist.gate_arity netlist g) (fun p ->
               values.(Netlist.gate_pin netlist g p))))
  in
  let t =
    {
      netlist;
      n_gates;
      order_ids;
      base_lib = base;
      refresh_every;
      input_index;
      is_pi_net;
      priority;
      kind = Array.init n_gates (Netlist.gate_kind netlist);
      strength = Array.init n_gates (Netlist.gate_strength netlist);
      libs;
      pattern = Array.copy pattern;
      values;
      entries;
      entry_libs = Array.copy libs;
      net_injection = Array.make n_nets 0.0;
      loaded = Array.make n_gates Report.zero;
      isolated = Array.make n_gates Report.zero;
      totals = Report.zero;
      baseline = Report.zero;
      free = Atomic.make [];
      log = [];
      depth = 0;
      since_refresh = 0;
      n_edits = 0;
      n_undos = 0;
      n_refreshes = 0;
      n_logic = 0;
      n_entry = 0;
      n_net = 0;
      n_lookup = 0;
      n_batches = 0;
      n_groups = 0;
    }
  in
  refresh t;
  (* the construction pass is not a drift refresh *)
  t.n_refreshes <- 0;
  t.n_lookup <- 0;
  t
