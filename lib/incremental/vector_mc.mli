(** Monte-Carlo leakage over random input vectors (vector resampling).

    Standby leakage depends strongly on the input state (§6); when the
    standby vector is unknown, the expected leakage and its spread come from
    resampling random primary-input vectors. Each draw differs from the
    previous one in about half the input bits, so walking the sweep on
    {!Incremental} sessions via {!Incremental.set_vector} costs only the
    changed cones per draw instead of a full estimate per draw.

    The sweep is split into fixed-width chunks, each walked by its own
    session; chunks fan out across a {!Leakage_parallel.Pool} when one is
    given. Chunk boundaries (and hence each session's float-drift history
    and the reduction tree) depend only on the sample count, so results are
    bit-identical with or without a pool, at any pool size. *)

type result = {
  totals : float array;
  (** loading-aware total leakage per sampled vector, A *)
  baselines : float array;
  (** no-loading (sum-of-isolated) total per sampled vector, A *)
  summary : Leakage_numeric.Stats.summary;
  (** of [totals] *)
  baseline_summary : Leakage_numeric.Stats.summary;
  (** of [baselines] *)
  mean_components : Leakage_spice.Leakage_report.components;
  (** mean loading-aware component breakdown over the sample *)
  mean_shift_percent : float;
  (** mean per-vector loading shift, [(total - baseline)/baseline] in % *)
}

val resample :
  ?pool:Leakage_parallel.Pool.t ->
  ?seed:int ->
  samples:int ->
  Leakage_core.Library.t ->
  Leakage_circuit.Netlist.t ->
  result
(** Estimate the leakage distribution over [samples] uniform random input
    vectors (default [seed] 1). Raises [Invalid_argument] when [samples] is
    not positive. Equivalent to mapping {!Leakage_core.Estimator.estimate}
    over the vectors, but incremental between consecutive draws. *)

val over_vectors :
  ?pool:Leakage_parallel.Pool.t ->
  Leakage_core.Library.t ->
  Leakage_circuit.Netlist.t ->
  Leakage_circuit.Logic.vector list ->
  Leakage_spice.Leakage_report.components
  * Leakage_spice.Leakage_report.components
(** [(mean with-loading totals, mean baseline totals)] over an explicit
    vector set — the session-backed counterpart of
    {!Leakage_core.Estimator.average_over_vectors} for workloads that visit
    similar vectors. Raises [Invalid_argument] on an empty list. *)

val mc_chunk : int
(** Fixed chunk width of the resampling sweep (vectors per session). Part of
    the bit-identity contract: results are only reproducible across builds
    that agree on this constant, so benchmark artifacts record it. *)
