(** Incremental re-estimation of circuit leakage under netlist edits.

    The paper's §6 locality result — loading does not propagate meaningfully
    beyond one logic level — means an edit's leakage impact is confined to a
    small cone: the edited gate, the nets its pins touch, and the gates
    sharing those nets (plus, for logic-changing edits, the downstream cone
    whose values flip). A session wraps a netlist and a cached one-pass
    estimate ({!Leakage_core.Estimator} with [passes = 1]) and applies typed
    {!Edit.t}s by

    + re-simulating logic only through the affected output cone,
    + re-resolving characterization entries only for gates whose (kind,
      strength, library, input vector) key changed,
    + re-accumulating loading injections only on nets whose fanout pin
      currents changed, and
    + re-looking-up leakage only for gates touching those nets,

    maintaining circuit totals by subtract-old/add-new. Each edit therefore
    costs O(cone) instead of O(circuit), which is what turns the optimizers'
    candidate loops (dual-Vth, input-vector control, vector resampling) from
    O(gates × candidates) into O(cone × candidates).

    Totals drift by a few ulps per delta update; a periodic full refresh
    (every [refresh_every] edits) re-sums everything to bound the error.
    An undo log records the inverse of every applied edit so optimizers can
    speculate a candidate, read the totals, and revert — also in O(cone). *)

type t

type checkpoint
(** A position in the undo log (see {!checkpoint}/{!rollback}). *)

type stats = {
  edits : int;            (** edits applied (batched edits count each) *)
  undos : int;            (** edits reverted through the undo log *)
  refreshes : int;        (** full refreshes since creation *)
  logic_evals : int;      (** gates re-simulated / re-keyed *)
  entry_updates : int;    (** gates whose characterization entry changed *)
  net_updates : int;      (** nets whose loading injection changed *)
  leakage_lookups : int;  (** per-gate leakage table re-lookups *)
  batches : int;          (** multi-edit {!apply_batch} calls *)
  batch_groups : int;     (** cone-disjoint groups across those batches *)
}
(** Work counters — [logic_evals / edits] is the mean logic-cone size,
    [leakage_lookups / edits] the mean loading-cone size, and
    [batch_groups / batches] the mean parallelism a batch exposes. *)

val create :
  ?refresh_every:int ->
  ?library_of_gate:(int -> Leakage_core.Library.t) ->
  Leakage_core.Library.t ->
  Leakage_circuit.Netlist.t ->
  Leakage_circuit.Logic.vector ->
  t
(** Open a session on a netlist under one input pattern; performs one full
    estimate up front. [refresh_every] (default 64, [0] disables) bounds
    float drift by fully re-summing after that many edits.
    [library_of_gate] seeds per-gate libraries as in
    {!Leakage_core.Estimator.estimate}; all libraries must share temperature
    and supply. *)

(** {2 Edits} *)

val apply : t -> Edit.t -> unit
(** Apply one edit and log its inverse. Raises [Invalid_argument] on a
    malformed edit (unknown gate, non-positive strength, arity-changing
    retype, library at a different corner, [Set_input] on a non-input
    net). *)

val apply_batch :
  ?pool:Leakage_parallel.Pool.t -> ?prune:bool -> t -> Edit.t list -> unit
(** Apply several edits with one cone propagation per cone-disjoint group
    (see {!Cone.Partition.groups}) — cheaper than sequential {!apply} when
    edits overlap (e.g. flipping many input bits at once), and with [?pool]
    the disjoint groups run on separate domains. By default ([prune = true])
    cones are pruned with the pre-batch settled values: the downstream
    descent stops at gates whose output provably cannot flip because a
    stable side input pins it (see {!Cone.Partition.state}), which yields
    more, smaller groups on deep circuits. The grouped schedule is a
    function of the netlist, the batch as a set, and the settled pre-batch
    state — never of edit order or job count — and the cross-group merge
    order is fixed, so the result is bit-identical at any job count
    (including no pool at all) and equivalent to applying the edits left to
    right up to float reassociation. Pruned and unpruned runs agree on every
    per-net and per-gate float bit for bit; only the [totals] / [baseline]
    scalar accumulators may differ in the last ulps, because a different
    partition sums the same per-gate deltas in a different association.
    The whole batch is validated before any edit is staged; each edit is
    still logged individually, so {!undo} reverts them one at a time in
    reverse order. *)

val preview_groups : ?prune:bool -> t -> Edit.t list -> int array array
(** The cone-disjoint groups {!apply_batch} would use for this batch at the
    current session state, without applying anything (group members are
    batch indices). Validates the batch like {!apply_batch}. *)

val set_vector : ?pool:Leakage_parallel.Pool.t -> t -> Leakage_circuit.Logic.vector -> unit
(** Batched [Set_input] edits moving the session to a new primary-input
    vector (only differing bits are touched — consecutive random vectors
    re-estimate in O(changed cones)). [?pool] as in {!apply_batch}. *)

val undo : t -> unit
(** Revert the most recent logged edit. Raises [Invalid_argument] on an
    empty log. *)

val checkpoint : t -> checkpoint
(** Mark the current undo-log position. *)

val rollback : t -> checkpoint -> unit
(** Undo back to a checkpoint — the speculate-and-revert primitive:
    [let c = checkpoint s in apply s edit; ... read totals ...; rollback s c].
    Raises [Invalid_argument] if the checkpoint has already been undone
    past. *)

val undo_depth : t -> int
(** Number of undoable edits in the log. *)

(** {2 Reading the estimate} *)

val totals : t -> Leakage_spice.Leakage_report.components
(** Loading-aware circuit totals under the current state. *)

val baseline_totals : t -> Leakage_spice.Leakage_report.components
(** Sum of isolated nominal leakages (the traditional no-loading model). *)

val sigma :
  ?lin_tol:float ->
  sigmas:Leakage_device.Variation.sigmas ->
  t ->
  Leakage_core.Sensitivity.result
(** Closed-form variance propagation ([Sensitivity.analyze]) over the
    session's cached per-gate state. The cone machinery keeps the per-gate
    entries and component estimates current after every edit, so this costs
    only the σ assembly — O(gates · log gates) plus the moment sums — with
    no estimator pass and no DC solves.

    Like {!totals}, the inputs carry the session's accumulated float drift
    between refreshes; after {!refresh} the result is bit-identical to
    analyzing a fresh {!Leakage_core.Sensitivity.estimate_totals}. Flags are
    reported but never trigger an MC fallback here — check
    [Sensitivity.flagged] and fall back explicitly if needed. Die-level
    geometry sensitivities are taken from the session's base library;
    per-gate library overrides affect the per-gate rows only. *)

val gate_components : t -> int -> Leakage_spice.Leakage_report.components
(** Loading-aware leakage of one gate. *)

val pattern : t -> Leakage_circuit.Logic.vector
(** Current primary-input vector (copy). *)

val assignment : t -> Leakage_circuit.Simulate.assignment
(** Current logic value per net (copy). *)

val net_injection : t -> float array
(** Current signed loading current per net (copy). *)

(** {2 Session state} *)

val netlist : t -> Leakage_circuit.Netlist.t
(** The structural netlist the session was opened on (never mutated). *)

val current_netlist : t -> Leakage_circuit.Netlist.t
(** The netlist with all applied [Resize]/[Retype] edits materialized —
    feed it to a fresh {!Leakage_core.Estimator.estimate} (with
    {!library_of_gate}) to cross-check the session. *)

val library_of_gate : t -> int -> Leakage_core.Library.t
(** Current per-gate library (reflects [Relib] edits). *)

val refresh : t -> unit
(** Force a full recomputation (logic, entries, injections, totals) from the
    current state. Never changes semantics — only squashes accumulated float
    drift. The undo log survives. *)

val stats : t -> stats
