module Worklist = struct
  type t = {
    priority : int array;
    heap : int array;
    mutable size : int;
    queued : bool array;
  }

  let create ~priority =
    let n = Array.length priority in
    {
      priority;
      heap = Array.make (Stdlib.max n 1) 0;
      size = 0;
      queued = Array.make n false;
    }

  let less t a b = t.priority.(t.heap.(a)) < t.priority.(t.heap.(b))

  let swap t i j =
    let x = t.heap.(i) in
    t.heap.(i) <- t.heap.(j);
    t.heap.(j) <- x

  let push t id =
    if id < 0 || id >= Array.length t.queued then
      invalid_arg "Cone.Worklist.push: id out of range";
    if not t.queued.(id) then begin
      t.queued.(id) <- true;
      t.heap.(t.size) <- id;
      t.size <- t.size + 1;
      (* sift up *)
      let i = ref (t.size - 1) in
      while !i > 0 && less t !i ((!i - 1) / 2) do
        swap t !i ((!i - 1) / 2);
        i := (!i - 1) / 2
      done
    end

  let pop t =
    if t.size = 0 then None
    else begin
      let top = t.heap.(0) in
      t.size <- t.size - 1;
      t.heap.(0) <- t.heap.(t.size);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && less t l !smallest then smallest := l;
        if r < t.size && less t r !smallest then smallest := r;
        if !smallest <> !i then begin
          swap t !i !smallest;
          i := !smallest
        end
        else continue := false
      done;
      t.queued.(top) <- false;
      Some top
    end
end

module Partition = struct
  module Gate = Leakage_circuit.Gate
  module Logic = Leakage_circuit.Logic
  module Netlist = Leakage_circuit.Netlist

  type cone = { gates : int list; nets : int list }

  type state = {
    values : Logic.value array;
    kinds : Gate.kind array;
  }

  (* Over-approximation of everything one edit's propagation may read or
     write. Without a [state] it is derived from the netlist structure
     alone; with one it is additionally pruned by the pre-batch settled
     values (see [prune] below). Either way the cone never depends on edit
     order within the batch or on session-internal scratch state, so group
     shapes stay order-independent.

     Attribute edits (Resize/Relib) keep the gate's logic function, so only
     the gate's own characterization entry can change: the write set is the
     gate, its fan-in nets (injection deltas) and, through those nets'
     loading, the sideways neighbours (driver + fanout of each net) that get
     re-looked-up. Logic-changing edits (Retype/Set_input) can flip values
     through the whole structural downstream closure, and every gate in that
     closure can change its entry, so the sideways expansion applies to each
     closure gate.

     The sideways set also covers the read set: a gate's re-lookup reads the
     injections on its own nets, and any gate that could write one of those
     injections is a consumer of the net — which this construction places in
     the same cone. Two edits whose cones share no gate and no net therefore
     touch disjoint session state, which is what makes running their groups
     on separate domains race-free and order-insensitive. *)

  (* Value-aware pruning context, shared by every cone of one batch.

     The descent may stop at a gate whose output provably cannot flip: some
     stable side input pins it — e.g. a controlling 0 into AND/NAND or 1
     into OR/NOR ({!Gate.controlling_value}), generalized exactly by
     {!Gate.pinned_output} to any pinning value combination. "Stable" must
     be a batch-wide notion: a pin is only held at its settled value if NO
     edit in the batch can reach it, i.e. the net is outside [may_flip] —
     the union of the structural downstream closures of every Retype /
     Set_input edit (per-edit stability would let two edits jointly flip
     through a cut that each alone could not, breaking group disjointness).
     Gates the batch retypes are never pruned at: their logic function is
     not the pre-batch one.

     Because [may_flip] is a function of (netlist, batch-as-a-set) and the
     settled values/kinds are read before any edit is staged, the pruned
     cones — hence the groups — are the same for any edit order within the
     batch and any job count, preserving the determinism contract above in
     refined form: a function of (netlist, batch, pre-batch settled
     state). *)
  type prune = {
    st : state;
    may_flip : bool array; (* net -> some batch edit's propagation may flip it *)
    retyped : bool array;  (* gate -> the batch retypes it: never prune there *)
  }

  let check_gate ~n_gates g =
    if g < 0 || g >= n_gates then
      invalid_arg (Printf.sprintf "Cone.Partition: unknown gate id %d" g)

  let check_net ~n_nets m =
    if m < 0 || m >= n_nets then
      invalid_arg (Printf.sprintf "Cone.Partition: unknown net %d" m)

  let make_prune nl st (edits : Edit.t array) =
    let n_gates = Netlist.gate_count nl in
    let n_nets = Netlist.net_count nl in
    if Array.length st.values <> n_nets then
      invalid_arg "Cone.Partition: state.values length differs from net count";
    if Array.length st.kinds <> n_gates then
      invalid_arg "Cone.Partition: state.kinds length differs from gate count";
    let may_flip = Array.make n_nets false in
    let retyped = Array.make n_gates false in
    let visited = Array.make n_gates false in
    let stack = ref [] in
    let push g_id =
      if not visited.(g_id) then begin
        visited.(g_id) <- true;
        stack := g_id :: !stack
      end
    in
    Array.iter
      (fun (edit : Edit.t) ->
        match edit with
        | Edit.Resize _ | Edit.Relib _ -> ()
        | Edit.Retype (g, _) ->
          check_gate ~n_gates g;
          retyped.(g) <- true;
          push g
        | Edit.Set_input (m, _) ->
          check_net ~n_nets m;
          may_flip.(m) <- true;
          Netlist.iter_fanout nl m push)
      edits;
    let rec drain () =
      match !stack with
      | [] -> ()
      | g_id :: rest ->
        stack := rest;
        let out = Netlist.gate_out nl g_id in
        may_flip.(out) <- true;
        Netlist.iter_fanout nl out push;
        drain ()
    in
    drain ();
    { st; may_flip; retyped }

  (* Can this gate's output change under the batch? Exact within the
     may-flip abstraction: enumerate the may-flip pins, hold the stable
     pins at their settled values. *)
  let output_can_flip p nl g_id =
    p.retyped.(g_id)
    ||
    let arity = Netlist.gate_arity nl g_id in
    let inputs =
      Array.init arity (fun i ->
          Logic.to_bool p.st.values.(Netlist.gate_pin nl g_id i))
    in
    let free =
      Array.init arity (fun i -> p.may_flip.(Netlist.gate_pin nl g_id i))
    in
    Gate.pinned_output p.st.kinds.(g_id) ~free inputs = None

  let cone_into ?prune nl ~gate_seen ~net_seen edit =
    let n_gates = Netlist.gate_count nl in
    let gates = ref [] and nets = ref [] in
    let add_gate g =
      if not gate_seen.(g) then begin
        gate_seen.(g) <- true;
        gates := g :: !gates
      end
    in
    let add_net m =
      if not net_seen.(m) then begin
        net_seen.(m) <- true;
        nets := m :: !nets
      end
    in
    (* Downstream closure, recorded so sideways expansion can walk it
       afterwards (gate_seen doubles as the visited marker). Iterative with
       an explicit stack — the old recursive walk overflowed on chains a few
       tens of thousands of gates deep. Children are pushed in reverse
       fanout order so the visit order matches the recursive preorder
       exactly. A pruned gate (output provably cannot flip under the batch)
       still joins the closure — its input vector, and with it its
       characterization entry and injections, may change — but nothing past
       it can, so the descent stops there. *)
    let closure = ref [] in
    let stack = ref [] in
    (* Pushing consumers in reverse pin order leaves the first consumer on
       top of the stack, so the pop order matches the historical recursive
       preorder over the ascending fanout list exactly. *)
    let descend g_id =
      Netlist.rev_iter_fanout nl (Netlist.gate_out nl g_id) (fun c ->
          stack := c :: !stack)
    in
    let visit g_id =
      if not gate_seen.(g_id) then begin
        add_gate g_id;
        closure := g_id :: !closure;
        match prune with
        | None -> descend g_id
        | Some p -> if output_can_flip p nl g_id then descend g_id
      end
    in
    let down g_id =
      stack := g_id :: !stack;
      let rec walk () =
        match !stack with
        | [] -> ()
        | g_id :: rest ->
          stack := rest;
          visit g_id;
          walk ()
      in
      walk ()
    in
    let sideways g_id =
      add_net (Netlist.gate_out nl g_id);
      Netlist.iter_pins nl g_id (fun _pin m ->
          add_net m;
          let d = Netlist.driver_id nl m in
          if d >= 0 then add_gate d;
          Netlist.iter_fanout nl m add_gate)
    in
    (match (edit : Edit.t) with
     | Edit.Resize (g, _) | Edit.Relib (g, _) ->
       check_gate ~n_gates g;
       add_gate g;
       sideways g
     | Edit.Retype (g, _) ->
       check_gate ~n_gates g;
       down g;
       List.iter sideways !closure
     | Edit.Set_input (m, _) ->
       check_net ~n_nets:(Netlist.net_count nl) m;
       add_net m;
       Netlist.iter_fanout nl m down;
       List.iter sideways !closure);
    { gates = List.rev !gates; nets = List.rev !nets }

  let cones ?state nl edits =
    Netlist.warm nl;
    let prune = Option.map (fun st -> make_prune nl st edits) state in
    let gate_seen = Array.make (Netlist.gate_count nl) false in
    let net_seen = Array.make (Netlist.net_count nl) false in
    Array.map
      (fun edit ->
        let c = cone_into ?prune nl ~gate_seen ~net_seen edit in
        List.iter (fun g -> gate_seen.(g) <- false) c.gates;
        List.iter (fun m -> net_seen.(m) <- false) c.nets;
        c)
      edits

  let cone ?state nl edit = (cones ?state nl [| edit |]).(0)

  let groups_of nl cones =
    let n = Array.length cones in
    if n = 0 then [||]
    else begin
      let n_gates = Netlist.gate_count nl in
      let n_nets = Netlist.net_count nl in
      (* union-find over edit indices; union keeps the smaller index as the
         root, so a component's root is its first edit in batch order. Find
         is an iterative path-halving walk — the recursive path-compressing
         one could overflow on adversarial union chains. *)
      let parent = Array.init n (fun i -> i) in
      let find i =
        let i = ref i in
        while parent.(!i) <> !i do
          parent.(!i) <- parent.(parent.(!i));
          i := parent.(!i)
        done;
        !i
      in
      let union a b =
        let ra = find a and rb = find b in
        if ra <> rb then
          if ra < rb then parent.(rb) <- ra else parent.(ra) <- rb
      in
      let claim_gate = Array.make n_gates (-1) in
      let claim_net = Array.make n_nets (-1) in
      for e = 0 to n - 1 do
        List.iter
          (fun g ->
            if claim_gate.(g) >= 0 then union e claim_gate.(g);
            claim_gate.(g) <- e)
          cones.(e).gates;
        List.iter
          (fun m ->
            if claim_net.(m) >= 0 then union e claim_net.(m);
            claim_net.(m) <- e)
          cones.(e).nets
      done;
      (* bucket by root; roots ascend with their first edit, members keep
         batch order within each group *)
      let members = Array.make n [] in
      for e = n - 1 downto 0 do
        let r = find e in
        members.(r) <- e :: members.(r)
      done;
      let out = ref [] in
      for r = n - 1 downto 0 do
        if members.(r) <> [] then out := Array.of_list members.(r) :: !out
      done;
      Array.of_list !out
    end

  let groups ?state nl edits = groups_of nl (cones ?state nl edits)
end

module Dirty_set = struct
  type t = {
    flags : bool array;
    mutable members : int list; (* reversed insertion order *)
    mutable count : int;
  }

  let create n = { flags = Array.make n false; members = []; count = 0 }

  let add t id =
    if id < 0 || id >= Array.length t.flags then
      invalid_arg "Cone.Dirty_set.add: id out of range";
    if not t.flags.(id) then begin
      t.flags.(id) <- true;
      t.members <- id :: t.members;
      t.count <- t.count + 1
    end

  let iter f t =
    (* Walk insertion order; pick up elements added by [f] in further
       rounds until the set stops growing. *)
    let seen = ref 0 in
    let rec go () =
      let fresh = t.count - !seen in
      if fresh > 0 then begin
        let batch = List.filteri (fun i _ -> i < fresh) t.members in
        seen := t.count;
        List.iter f (List.rev batch);
        go ()
      end
    in
    go ()

  let cardinal t = t.count

  let clear t =
    List.iter (fun id -> t.flags.(id) <- false) t.members;
    t.members <- [];
    t.count <- 0
end
