module Worklist = struct
  type t = {
    priority : int array;
    heap : int array;
    mutable size : int;
    queued : bool array;
  }

  let create ~priority =
    let n = Array.length priority in
    {
      priority;
      heap = Array.make (Stdlib.max n 1) 0;
      size = 0;
      queued = Array.make n false;
    }

  let less t a b = t.priority.(t.heap.(a)) < t.priority.(t.heap.(b))

  let swap t i j =
    let x = t.heap.(i) in
    t.heap.(i) <- t.heap.(j);
    t.heap.(j) <- x

  let push t id =
    if id < 0 || id >= Array.length t.queued then
      invalid_arg "Cone.Worklist.push: id out of range";
    if not t.queued.(id) then begin
      t.queued.(id) <- true;
      t.heap.(t.size) <- id;
      t.size <- t.size + 1;
      (* sift up *)
      let i = ref (t.size - 1) in
      while !i > 0 && less t !i ((!i - 1) / 2) do
        swap t !i ((!i - 1) / 2);
        i := (!i - 1) / 2
      done
    end

  let pop t =
    if t.size = 0 then None
    else begin
      let top = t.heap.(0) in
      t.size <- t.size - 1;
      t.heap.(0) <- t.heap.(t.size);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && less t l !smallest then smallest := l;
        if r < t.size && less t r !smallest then smallest := r;
        if !smallest <> !i then begin
          swap t !i !smallest;
          i := !smallest
        end
        else continue := false
      done;
      t.queued.(top) <- false;
      Some top
    end
end

module Dirty_set = struct
  type t = {
    flags : bool array;
    mutable members : int list; (* reversed insertion order *)
    mutable count : int;
  }

  let create n = { flags = Array.make n false; members = []; count = 0 }

  let add t id =
    if id < 0 || id >= Array.length t.flags then
      invalid_arg "Cone.Dirty_set.add: id out of range";
    if not t.flags.(id) then begin
      t.flags.(id) <- true;
      t.members <- id :: t.members;
      t.count <- t.count + 1
    end

  let iter f t =
    (* Walk insertion order; pick up elements added by [f] in further
       rounds until the set stops growing. *)
    let seen = ref 0 in
    let rec go () =
      let fresh = t.count - !seen in
      if fresh > 0 then begin
        let batch = List.filteri (fun i _ -> i < fresh) t.members in
        seen := t.count;
        List.iter f (List.rev batch);
        go ()
      end
    in
    go ()

  let cardinal t = t.count

  let clear t =
    List.iter (fun id -> t.flags.(id) <- false) t.members;
    t.members <- [];
    t.count <- 0
end
