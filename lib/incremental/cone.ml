module Worklist = struct
  type t = {
    priority : int array;
    heap : int array;
    mutable size : int;
    queued : bool array;
  }

  let create ~priority =
    let n = Array.length priority in
    {
      priority;
      heap = Array.make (Stdlib.max n 1) 0;
      size = 0;
      queued = Array.make n false;
    }

  let less t a b = t.priority.(t.heap.(a)) < t.priority.(t.heap.(b))

  let swap t i j =
    let x = t.heap.(i) in
    t.heap.(i) <- t.heap.(j);
    t.heap.(j) <- x

  let push t id =
    if id < 0 || id >= Array.length t.queued then
      invalid_arg "Cone.Worklist.push: id out of range";
    if not t.queued.(id) then begin
      t.queued.(id) <- true;
      t.heap.(t.size) <- id;
      t.size <- t.size + 1;
      (* sift up *)
      let i = ref (t.size - 1) in
      while !i > 0 && less t !i ((!i - 1) / 2) do
        swap t !i ((!i - 1) / 2);
        i := (!i - 1) / 2
      done
    end

  let pop t =
    if t.size = 0 then None
    else begin
      let top = t.heap.(0) in
      t.size <- t.size - 1;
      t.heap.(0) <- t.heap.(t.size);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && less t l !smallest then smallest := l;
        if r < t.size && less t r !smallest then smallest := r;
        if !smallest <> !i then begin
          swap t !i !smallest;
          i := !smallest
        end
        else continue := false
      done;
      t.queued.(top) <- false;
      Some top
    end
end

module Partition = struct
  module Netlist = Leakage_circuit.Netlist

  type cone = { gates : int list; nets : int list }

  (* Static over-approximation of everything one edit's propagation may read
     or write, derived from the netlist structure alone (never from current
     logic values — group shapes must not depend on session state, or the
     partition itself would become order-dependent).

     Attribute edits (Resize/Relib) keep the gate's logic function, so only
     the gate's own characterization entry can change: the write set is the
     gate, its fan-in nets (injection deltas) and, through those nets'
     loading, the sideways neighbours (driver + fanout of each net) that get
     re-looked-up. Logic-changing edits (Retype/Set_input) can flip values
     through the whole structural downstream closure, and every gate in that
     closure can change its entry, so the sideways expansion applies to each
     closure gate.

     The sideways set also covers the read set: a gate's re-lookup reads the
     injections on its own nets, and any gate that could write one of those
     injections is a consumer of the net — which this construction places in
     the same cone. Two edits whose cones share no gate and no net therefore
     touch disjoint session state, which is what makes running their groups
     on separate domains race-free and order-insensitive. *)
  let cone_into nl ~gate_seen ~net_seen edit =
    let gs = Netlist.gates nl in
    let n_gates = Array.length gs in
    let gates = ref [] and nets = ref [] in
    let add_gate g =
      if not gate_seen.(g) then begin
        gate_seen.(g) <- true;
        gates := g :: !gates
      end
    in
    let add_net m =
      if not net_seen.(m) then begin
        net_seen.(m) <- true;
        nets := m :: !nets
      end
    in
    let check_gate g =
      if g < 0 || g >= n_gates then
        invalid_arg (Printf.sprintf "Cone.Partition: unknown gate id %d" g)
    in
    (* downstream structural closure, recorded so sideways expansion can walk
       it afterwards (gate_seen doubles as the visited marker) *)
    let closure = ref [] in
    let rec down g_id =
      if not gate_seen.(g_id) then begin
        add_gate g_id;
        closure := g_id :: !closure;
        List.iter
          (fun (c : Netlist.gate) -> down c.Netlist.id)
          (Netlist.fanout nl gs.(g_id).Netlist.out)
      end
    in
    let sideways g_id =
      let g = gs.(g_id) in
      add_net g.Netlist.out;
      Array.iter
        (fun m ->
          add_net m;
          (match Netlist.driver nl m with
           | Some d -> add_gate d.Netlist.id
           | None -> ());
          List.iter
            (fun (c : Netlist.gate) -> add_gate c.Netlist.id)
            (Netlist.fanout nl m))
        g.Netlist.fan_in
    in
    (match (edit : Edit.t) with
     | Edit.Resize (g, _) | Edit.Relib (g, _) ->
       check_gate g;
       add_gate g;
       sideways g
     | Edit.Retype (g, _) ->
       check_gate g;
       down g;
       List.iter sideways !closure
     | Edit.Set_input (m, _) ->
       if m < 0 || m >= Netlist.net_count nl then
         invalid_arg (Printf.sprintf "Cone.Partition: unknown net %d" m);
       add_net m;
       List.iter (fun (c : Netlist.gate) -> down c.Netlist.id)
         (Netlist.fanout nl m);
       List.iter sideways !closure);
    { gates = List.rev !gates; nets = List.rev !nets }

  let cone nl edit =
    Netlist.warm nl;
    let gate_seen = Array.make (Netlist.gate_count nl) false in
    let net_seen = Array.make (Netlist.net_count nl) false in
    cone_into nl ~gate_seen ~net_seen edit

  let groups nl edits =
    let n = Array.length edits in
    if n = 0 then [||]
    else begin
      Netlist.warm nl;
      let n_gates = Netlist.gate_count nl in
      let n_nets = Netlist.net_count nl in
      (* union-find over edit indices; union keeps the smaller index as the
         root, so a component's root is its first edit in batch order *)
      let parent = Array.init n (fun i -> i) in
      let rec find i =
        if parent.(i) = i then i
        else begin
          let r = find parent.(i) in
          parent.(i) <- r;
          r
        end
      in
      let union a b =
        let ra = find a and rb = find b in
        if ra <> rb then
          if ra < rb then parent.(rb) <- ra else parent.(ra) <- rb
      in
      let gate_seen = Array.make n_gates false in
      let net_seen = Array.make n_nets false in
      let claim_gate = Array.make n_gates (-1) in
      let claim_net = Array.make n_nets (-1) in
      for e = 0 to n - 1 do
        let c = cone_into nl ~gate_seen ~net_seen edits.(e) in
        List.iter
          (fun g ->
            if claim_gate.(g) >= 0 then union e claim_gate.(g);
            claim_gate.(g) <- e;
            gate_seen.(g) <- false)
          c.gates;
        List.iter
          (fun m ->
            if claim_net.(m) >= 0 then union e claim_net.(m);
            claim_net.(m) <- e;
            net_seen.(m) <- false)
          c.nets
      done;
      (* bucket by root; roots ascend with their first edit, members keep
         batch order within each group *)
      let members = Array.make n [] in
      for e = n - 1 downto 0 do
        let r = find e in
        members.(r) <- e :: members.(r)
      done;
      let out = ref [] in
      for r = n - 1 downto 0 do
        if members.(r) <> [] then out := Array.of_list members.(r) :: !out
      done;
      Array.of_list !out
    end
end

module Dirty_set = struct
  type t = {
    flags : bool array;
    mutable members : int list; (* reversed insertion order *)
    mutable count : int;
  }

  let create n = { flags = Array.make n false; members = []; count = 0 }

  let add t id =
    if id < 0 || id >= Array.length t.flags then
      invalid_arg "Cone.Dirty_set.add: id out of range";
    if not t.flags.(id) then begin
      t.flags.(id) <- true;
      t.members <- id :: t.members;
      t.count <- t.count + 1
    end

  let iter f t =
    (* Walk insertion order; pick up elements added by [f] in further
       rounds until the set stops growing. *)
    let seen = ref 0 in
    let rec go () =
      let fresh = t.count - !seen in
      if fresh > 0 then begin
        let batch = List.filteri (fun i _ -> i < fresh) t.members in
        seen := t.count;
        List.iter f (List.rev batch);
        go ()
      end
    in
    go ()

  let cardinal t = t.count

  let clear t =
    List.iter (fun id -> t.flags.(id) <- false) t.members;
    t.members <- [];
    t.count <- 0
end
