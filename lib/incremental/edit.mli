(** Typed netlist edits understood by the incremental session.

    Edits never change the netlist's structure (nets, pins, connectivity) —
    only gate attributes and primary-input values. That is exactly the move
    set of the repo's leakage optimizers: sizing sweeps, dual-Vth
    assignment, per-gate library corners and input-vector control. Every
    edit is self-inverting given the prior state, which is what makes the
    session's undo log possible. *)

type t =
  | Resize of int * float
      (** [Resize (gate_id, strength)] — rescale every transistor width of
          the cell. Strength must be positive. *)
  | Retype of int * Leakage_circuit.Gate.kind
      (** [Retype (gate_id, kind)] — swap the cell function; the new kind
          must have the same arity (the edit may change downstream logic
          values, which the session re-simulates through the output cone). *)
  | Relib of int * Leakage_core.Library.t
      (** [Relib (gate_id, lib)] — characterize this gate from a different
          library (dual-Vth, corner). The library must share temperature and
          supply with the session's. *)
  | Set_input of Leakage_circuit.Netlist.net * bool
      (** [Set_input (net, value)] — drive a primary input. *)

val gate_id : t -> int option
(** The edited gate, or [None] for [Set_input]. *)

val pp : Format.formatter -> t -> unit

val random_resize :
  ?strengths:float array ->
  Leakage_numeric.Rng.t -> Leakage_circuit.Netlist.t -> t
(** A [Resize] of a uniformly chosen gate to a strength drawn from
    [strengths] (default quarter-step palette 0.5–2.0). Drawing from a fixed
    palette keeps the library's characterization cache small, so steady-state
    edit cost measures table lookups, not characterization solves. *)

val random_set_input : Leakage_numeric.Rng.t -> Leakage_circuit.Netlist.t -> t
(** A random value on a uniformly chosen primary input. *)
