(** Scheduling primitives for cone-scoped updates.

    An edit dirties a gate; its consequences flow strictly downstream
    (through [Netlist.fanout]) for logic values and one level sideways
    (driver plus fanout of a net) for loading currents. The session visits
    dirty gates in topological order exactly once per propagation, so each
    update costs O(cone), not O(circuit). *)

module Worklist : sig
  type t
  (** Priority worklist over dense element ids [0, n). Elements pop in
      increasing priority (topological index); pushing a queued element is a
      no-op, so each element is processed at most once per drain. *)

  val create : priority:int array -> t
  (** [priority.(id)] orders element [id]; the array is captured, not
      copied. *)

  val push : t -> int -> unit
  val pop : t -> int option
end

module Partition : sig
  type cone = {
    gates : int list;  (** every gate the edit's propagation may touch *)
    nets : int list;   (** every net whose value or injection it may touch *)
  }
  (** Over-approximation of an edit's reach, in deterministic discovery
      order. Attribute edits ([Resize]/[Relib]) reach one level — the gate,
      its fan-in nets, and each net's driver and fanout; logic-changing
      edits ([Retype]/[Set_input]) reach the structural downstream closure
      plus that same one-level expansion around every closure gate. *)

  type state = {
    values : Leakage_circuit.Logic.value array;
        (** settled logic value per net, before any edit of the batch *)
    kinds : Leakage_circuit.Gate.kind array;
        (** current kind per gate id (reflecting previously applied edits) *)
  }
  (** Pre-batch settled session state enabling value-aware pruning: the
      downstream descent stops at gates whose output provably cannot flip
      because some stable side input pins it (a controlling 0 into AND/NAND
      or 1 into OR/NOR, or any pinning combination —
      {!Leakage_circuit.Gate.pinned_output}). "Stable" is batch-wide: a pin
      only counts as held at its settled value when no edit in the batch can
      reach it, and gates the batch retypes are never pruned at, so the
      pruned cones remain a sound cover of the batch's joint propagation.
      A pruned gate still joins the cone (its entry and injections can
      change); only the descent past it stops. *)

  val cone : ?state:state -> Leakage_circuit.Netlist.t -> Edit.t -> cone
  (** The reach of one edit on its own — with [?state], pruned as if the
      edit were a one-element batch (a cone inside a larger batch can only
      be larger; use {!cones} for batch context). Raises [Invalid_argument]
      on an out-of-range gate or net id, or on [state] arrays whose lengths
      do not match the netlist. *)

  val cones :
    ?state:state -> Leakage_circuit.Netlist.t -> Edit.t array -> cone array
  (** Per-edit cones sharing one batch-wide pruning context (the may-flip
      net set is the union over all edits). Without [?state] each cone
      equals {!cone} of that edit. *)

  val groups :
    ?state:state -> Leakage_circuit.Netlist.t -> Edit.t array ->
    int array array
  (** [groups_of nl (cones ?state nl edits)]. *)

  val groups_of : Leakage_circuit.Netlist.t -> cone array -> int array array
  (** Partition a batch into groups of edit indices whose cones are
      mutually disjoint (no shared gate, no shared net) across groups —
      computed by union-find over cone overlap. Groups are ordered by their
      first edit in batch order and members keep batch order, so the result
      is a deterministic function of the netlist, the batch as a set, and
      (when pruning) the pre-batch settled state — never of edit order, job
      count, or session-internal scratch. Edits in disjoint groups touch
      disjoint session state, which is what lets
      {!Incremental.apply_batch} run groups on separate domains while
      staying bit-identical to a sequential walk. *)
end

module Dirty_set : sig
  type t
  (** Deduplicating set of dense ids with O(1) insertion, cleared between
      propagations. *)

  val create : int -> t
  val add : t -> int -> unit
  val iter : (int -> unit) -> t -> unit
  (** Iterates in insertion order; elements [add]ed during iteration are
      visited too. *)

  val cardinal : t -> int
  val clear : t -> unit
end
