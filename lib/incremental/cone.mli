(** Scheduling primitives for cone-scoped updates.

    An edit dirties a gate; its consequences flow strictly downstream
    (through [Netlist.fanout]) for logic values and one level sideways
    (driver plus fanout of a net) for loading currents. The session visits
    dirty gates in topological order exactly once per propagation, so each
    update costs O(cone), not O(circuit). *)

module Worklist : sig
  type t
  (** Priority worklist over dense element ids [0, n). Elements pop in
      increasing priority (topological index); pushing a queued element is a
      no-op, so each element is processed at most once per drain. *)

  val create : priority:int array -> t
  (** [priority.(id)] orders element [id]; the array is captured, not
      copied. *)

  val push : t -> int -> unit
  val pop : t -> int option
end

module Dirty_set : sig
  type t
  (** Deduplicating set of dense ids with O(1) insertion, cleared between
      propagations. *)

  val create : int -> t
  val add : t -> int -> unit
  val iter : (int -> unit) -> t -> unit
  (** Iterates in insertion order; elements [add]ed during iteration are
      visited too. *)

  val cardinal : t -> int
  val clear : t -> unit
end
