(** Scheduling primitives for cone-scoped updates.

    An edit dirties a gate; its consequences flow strictly downstream
    (through [Netlist.fanout]) for logic values and one level sideways
    (driver plus fanout of a net) for loading currents. The session visits
    dirty gates in topological order exactly once per propagation, so each
    update costs O(cone), not O(circuit). *)

module Worklist : sig
  type t
  (** Priority worklist over dense element ids [0, n). Elements pop in
      increasing priority (topological index); pushing a queued element is a
      no-op, so each element is processed at most once per drain. *)

  val create : priority:int array -> t
  (** [priority.(id)] orders element [id]; the array is captured, not
      copied. *)

  val push : t -> int -> unit
  val pop : t -> int option
end

module Partition : sig
  type cone = {
    gates : int list;  (** every gate the edit's propagation may touch *)
    nets : int list;   (** every net whose value or injection it may touch *)
  }
  (** Static (structure-only) over-approximation of an edit's reach, in
      deterministic discovery order. Attribute edits ([Resize]/[Relib])
      reach one level — the gate, its fan-in nets, and each net's driver and
      fanout; logic-changing edits ([Retype]/[Set_input]) reach the full
      structural downstream closure plus that same one-level expansion
      around every closure gate. *)

  val cone : Leakage_circuit.Netlist.t -> Edit.t -> cone
  (** Raises [Invalid_argument] on an out-of-range gate or net id. *)

  val groups : Leakage_circuit.Netlist.t -> Edit.t array -> int array array
  (** Partition a batch into groups of edit indices whose cones are
      mutually disjoint (no shared gate, no shared net) across groups —
      computed by union-find over cone overlap. Groups are ordered by their
      first edit in batch order and members keep batch order, so the result
      is a deterministic function of the netlist and the batch alone.
      Edits in disjoint groups touch disjoint session state, which is what
      lets {!Incremental.apply_batch} run groups on separate domains while
      staying bit-identical to a sequential walk. *)
end

module Dirty_set : sig
  type t
  (** Deduplicating set of dense ids with O(1) insertion, cleared between
      propagations. *)

  val create : int -> t
  val add : t -> int -> unit
  val iter : (int -> unit) -> t -> unit
  (** Iterates in insertion order; elements [add]ed during iteration are
      visited too. *)

  val cardinal : t -> int
  val clear : t -> unit
end
