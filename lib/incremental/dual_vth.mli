(** Dual-threshold leakage reduction analysis.

    The classic leakage-reduction technique the paper's introduction cites:
    give timing-noncritical gates a high threshold (much less subthreshold
    leakage, slower) and keep the low threshold on critical paths. This
    module evaluates such an assignment with the loading-aware estimator by
    running two characterized libraries side by side, so a high-Vth cell
    also injects less loading current into its neighbours' nets.

    Assignments are evaluated on an {!Incremental} session: the all-low
    state is the baseline, each high-Vth gate is a [Relib] edit, and each
    candidate costs only its cone. Criticality comes from unit-delay slack:
    a gate whose topological level lies within [critical_margin] of the
    longest path keeps the low threshold. *)

type assignment = bool array
(** per gate id: [true] = high threshold. *)

val slack_assignment :
  critical_margin:int -> Leakage_circuit.Netlist.t -> assignment
(** High-Vth wherever the gate's unit-delay depth is more than
    [critical_margin] levels below the circuit's depth along every path
    through it (computed from required times, so a shallow gate feeding the
    critical path stays low-Vth). *)

type evaluation = {
  assignment : assignment;
  n_high : int;
  totals : Leakage_spice.Leakage_report.components;
  (** loading-aware estimate under the assignment *)
  baseline : Leakage_spice.Leakage_report.components;
  (** all-low-Vth estimate *)
  reduction_percent : float;
}

val evaluate :
  ?pool:Leakage_parallel.Pool.t ->
  low_lib:Leakage_core.Library.t ->
  high_lib:Leakage_core.Library.t ->
  assignment ->
  Leakage_circuit.Netlist.t ->
  Leakage_circuit.Logic.vector ->
  evaluation
(** Estimate total leakage with the given per-gate threshold assignment:
    one session, the assignment applied as a batch of [Relib] edits whose
    cone-disjoint groups run on [?pool]'s domains (bit-identical with or
    without a pool). [high_lib] must be characterized for the high-Vth
    device at the same temperature and supply as [low_lib]. *)

val greedy_assignment :
  ?candidates:assignment ->
  ?min_gain_percent:float ->
  low_lib:Leakage_core.Library.t ->
  high_lib:Leakage_core.Library.t ->
  Leakage_circuit.Netlist.t ->
  Leakage_circuit.Logic.vector ->
  evaluation
(** Speculate-and-revert optimization on the session's undo log: walk the
    eligible gates ([candidates], default {!slack_assignment} with margin 1),
    apply a [Relib] to each, keep it only if the loading-aware total drops by
    at least [min_gain_percent] (default 0) of the running total, otherwise
    roll back to the checkpoint. Each trial costs O(cone) instead of a full
    re-estimate. *)

val high_vth_device :
  ?shift:float -> Leakage_device.Params.t -> Leakage_device.Params.t
(** Convenience: the device with its thresholds raised (default +80 mV). *)
