(** Input-vector control under loading (§6's observation that loading changes
    the minimum-leakage vector, which matters for IVC-based standby leakage
    reduction [9]).

    Searches the input space for minimum-total-leakage vectors using the
    loading-aware estimator and the traditional no-loading model, and reports
    whether loading changes the answer. Every search runs on one
    {!Incremental} session: consecutive candidate vectors differ in a few
    bits, so each evaluation costs only the changed input cones instead of a
    full estimate.

    Every search takes an optional [?pool]: candidate moves go through
    {!Incremental.set_vector}, whose cone-disjoint bit groups then run on
    separate domains. Results are bit-identical with and without a pool. *)

type search_result = {
  vector : Leakage_circuit.Logic.vector;
  total : float;  (** estimated total leakage, A *)
}

val exhaustive :
  ?pool:Leakage_parallel.Pool.t ->
  ?use_loading:bool ->
  Leakage_core.Library.t -> Leakage_circuit.Netlist.t ->
  search_result
(** Exact minimum over all input vectors. Raises [Invalid_argument] for
    circuits with more than 20 primary inputs. [use_loading] defaults to
    true. *)

val random_search :
  ?pool:Leakage_parallel.Pool.t ->
  ?use_loading:bool ->
  rng:Leakage_numeric.Rng.t ->
  samples:int ->
  Leakage_core.Library.t -> Leakage_circuit.Netlist.t ->
  search_result
(** Best of [samples] uniform random vectors. *)

val greedy_descent :
  ?pool:Leakage_parallel.Pool.t ->
  ?use_loading:bool ->
  ?max_rounds:int ->
  Leakage_core.Library.t -> Leakage_circuit.Netlist.t ->
  start:Leakage_circuit.Logic.vector ->
  search_result
(** Bit-flip hill descent from [start]: repeatedly applies the single-bit
    flip that most reduces leakage until no flip helps. Each trial flip is a
    speculative [Set_input] edit that is rolled back through the session's
    undo log. *)

type comparison = {
  with_loading : search_result;
  without_loading : search_result;
  (** each evaluated under its own objective *)
  without_under_loading : float;
  (** the no-loading optimum re-evaluated with the loading-aware model: the
      leakage actually obtained when IVC ignores loading, A *)
  changed : bool;  (** do the two argmin vectors differ? *)
}

val compare_objectives :
  ?pool:Leakage_parallel.Pool.t ->
  ?samples:int ->
  ?seed:int ->
  Leakage_core.Library.t -> Leakage_circuit.Netlist.t ->
  comparison
(** Minimum-vector search under both objectives (exhaustive when the input
    count allows, otherwise random + greedy with the given budget). *)
