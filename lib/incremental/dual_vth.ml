module Netlist = Leakage_circuit.Netlist
module Topo = Leakage_circuit.Topo
module Report = Leakage_spice.Leakage_report

type assignment = bool array

(* Longest unit-delay path through each gate = its depth from the inputs
   plus the longest tail from its output to any primary output; a gate is
   timing-noncritical when that through-path sits well below the circuit
   depth, so slowing it cannot create a new critical path. *)
let slack_assignment ~critical_margin netlist =
  if critical_margin < 0 then
    invalid_arg "Dual_vth.slack_assignment: negative margin";
  let levels = Topo.levels netlist in
  let order = Topo.order_ids netlist in
  let n_gates = Netlist.gate_count netlist in
  let tail = Array.make n_gates 0 in
  (* reverse topological pass over gates *)
  for i = Array.length order - 1 downto 0 do
    let g = order.(i) in
    let downstream = ref 0 in
    Netlist.iter_fanout netlist (Netlist.gate_out netlist g) (fun consumer ->
        downstream := Stdlib.max !downstream (tail.(consumer) + 1));
    tail.(g) <- !downstream
  done;
  let depth = Array.fold_left Stdlib.max 0 levels in
  Array.init n_gates (fun id ->
      levels.(id) + tail.(id) < depth - critical_margin)

type evaluation = {
  assignment : assignment;
  n_high : int;
  totals : Report.components;
  baseline : Report.components;
  reduction_percent : float;
}

let relib_edits ~high_lib assignment =
  let edits = ref [] in
  for id = Array.length assignment - 1 downto 0 do
    if assignment.(id) then edits := Edit.Relib (id, high_lib) :: !edits
  done;
  !edits

let evaluation_of assignment ~totals ~baseline =
  {
    assignment;
    n_high = Array.fold_left (fun acc h -> if h then acc + 1 else acc) 0 assignment;
    totals;
    baseline;
    reduction_percent =
      (Report.total baseline -. Report.total totals)
      /. Report.total baseline *. 100.0;
  }

let evaluate ?pool ~low_lib ~high_lib assignment netlist pattern =
  if Array.length assignment <> Netlist.gate_count netlist then
    invalid_arg "Dual_vth.evaluate: assignment size mismatch";
  let session = Incremental.create low_lib netlist pattern in
  let baseline = Incremental.totals session in
  Incremental.apply_batch ?pool session (relib_edits ~high_lib assignment);
  evaluation_of assignment ~totals:(Incremental.totals session) ~baseline

let greedy_assignment ?candidates ?(min_gain_percent = 0.0) ~low_lib ~high_lib
    netlist pattern =
  let n_gates = Netlist.gate_count netlist in
  let candidates =
    match candidates with
    | Some c ->
      if Array.length c <> n_gates then
        invalid_arg "Dual_vth.greedy_assignment: candidates size mismatch";
      c
    | None -> slack_assignment ~critical_margin:1 netlist
  in
  let session = Incremental.create low_lib netlist pattern in
  let baseline = Incremental.totals session in
  let accepted = Array.make n_gates false in
  for id = 0 to n_gates - 1 do
    if candidates.(id) then begin
      let before = Report.total (Incremental.totals session) in
      let cp = Incremental.checkpoint session in
      Incremental.apply session (Edit.Relib (id, high_lib));
      let after = Report.total (Incremental.totals session) in
      if before -. after >= min_gain_percent /. 100.0 *. before then
        accepted.(id) <- true
      else Incremental.rollback session cp
    end
  done;
  evaluation_of accepted ~totals:(Incremental.totals session) ~baseline

let high_vth_device ?(shift = 0.08) device =
  let d = Leakage_device.Params.with_vth_shift device shift in
  { d with Leakage_device.Params.name = d.Leakage_device.Params.name ^ "-HVT" }
