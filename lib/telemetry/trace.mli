(** Span tracing in Chrome trace-event format.

    Spans are nested begin/end scopes recorded per domain into
    domain-local buffers (no locks, no cross-domain traffic on the hot
    path) and flushed into one JSON file loadable by Perfetto
    ({:https://ui.perfetto.dev}) or [chrome://tracing]. Each domain appears
    as its own named track ([tid] = domain id), so a pool region shows one
    lane of work per worker domain.

    Tracing has its own switch, independent of {!Telemetry.enabled}:
    {!start} clears the buffers and begins recording, {!stop} ends it, and
    {!write}/{!to_json} serialize whatever was recorded. Start and stop
    outside parallel regions. While tracing is off, {!with_span} is a
    flag check that calls the thunk directly. *)

val enabled : unit -> bool

val start : unit -> unit
(** Clear all recorded events, reset the trace clock to "now", and begin
    recording. *)

val stop : unit -> unit
(** Stop recording; events already recorded are kept for {!write}. *)

val with_span : ?cat:string -> ?args:(string * string) list ->
  string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a complete ("ph":"X") event on the
    calling domain's track. The span closes even if [f] raises. [cat] is
    the Chrome category (defaults to ["app"]); [args] become the event's
    [args] object, shown when the span is selected. *)

val instant : ?cat:string -> ?args:(string * string) list -> string -> unit
(** A zero-duration ("ph":"i") marker on the calling domain's track. *)

val event_count : unit -> int
(** Events recorded since {!start} (all domains). *)

val to_json : unit -> string
(** The Chrome trace: [{"traceEvents": [...], "displayTimeUnit": "ms"}],
    with a [thread_name] metadata record per domain track. *)

val write : string -> unit
(** [write path] saves {!to_json} to [path]. *)
