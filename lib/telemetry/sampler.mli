(** Runtime vitals sampler: a ticker domain publishing process health as
    gauges every [interval] seconds.

    Published gauges: [runtime.gc.minor_words], [runtime.gc.major_words],
    [runtime.gc.promoted_words], [runtime.gc.heap_words],
    [runtime.gc.minor_collections], [runtime.gc.major_collections],
    [runtime.gc.compactions] (all from [Gc.quick_stat], which never forces
    a heap walk), [runtime.rss_bytes] (VmRSS from [/proc/self/status]) and
    [runtime.open_fds] (entries of [/proc/self/fd]) — the latter two are
    [0] on systems without procfs. The optional [extra] callback runs after
    each sweep on the ticker domain; use it to publish process-specific
    levels (pool occupancy, live sessions, queue depth) with
    {!Telemetry.set_gauge}. *)

type t

val start : ?interval:float -> ?extra:(unit -> unit) -> unit -> t
(** Spawn the ticker ([interval] defaults to 1s, floored at 10ms) after
    taking one immediate sample, so gauges exist before the first tick. *)

val stop : t -> unit
(** Interrupt the current sleep, join the domain, release the pipe. *)

val sample_once : (unit -> unit) option -> unit
(** One synchronous sweep (used by {!start} and tests). *)
