(* Process-global metric registry with per-domain shards.

   Registration (rare, module-init time) takes a mutex; recording (hot)
   touches only the calling domain's shard through Domain.DLS — one bounds
   check and one array store. Shards register themselves in a global list
   the first time a domain records anything, so a snapshot can walk and
   merge them without the domains' cooperation. *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let now_us () = Unix.gettimeofday () *. 1e6

type counter = int
type histogram = int

(* ------------------------------------------------------------- registry *)

let registry_mutex = Mutex.create ()

(* name tables; index = metric id *)
let counter_names : string array ref = ref [||]
let histogram_names : string array ref = ref [||]
let counter_ids : (string, int) Hashtbl.t = Hashtbl.create 32
let histogram_ids : (string, int) Hashtbl.t = Hashtbl.create 32

let register ids names name =
  Mutex.lock registry_mutex;
  let id =
    match Hashtbl.find_opt ids name with
    | Some id -> id
    | None ->
      let id = Array.length !names in
      names := Array.append !names [| name |];
      Hashtbl.replace ids name id;
      id
  in
  Mutex.unlock registry_mutex;
  id

let counter name = register counter_ids counter_names name
let histogram name = register histogram_ids histogram_names name

(* --------------------------------------------------------------- shards *)

let n_buckets = 64

type shard = {
  domain_id : int;
  mutable counts : int array;      (* counter id -> count *)
  mutable h_count : int array;     (* histogram id -> observation count *)
  mutable h_sum : float array;
  mutable h_min : float array;
  mutable h_max : float array;
  mutable h_buckets : int array;   (* histogram id * n_buckets + bucket *)
}

let all_shards : shard list ref = ref []

let fresh_shard () =
  let s =
    {
      domain_id = (Domain.self () :> int);
      counts = [||];
      h_count = [||];
      h_sum = [||];
      h_min = [||];
      h_max = [||];
      h_buckets = [||];
    }
  in
  Mutex.lock registry_mutex;
  all_shards := s :: !all_shards;
  Mutex.unlock registry_mutex;
  s

let shard_key : shard Domain.DLS.key = Domain.DLS.new_key fresh_shard

let grow_int a n = Array.append a (Array.make (n - Array.length a) 0)
let grow_float a n v = Array.append a (Array.make (n - Array.length a) v)

(* Only the owning domain grows its arrays; a concurrent snapshot may read
   the superseded array and miss the newest cells — benign, see the mli. *)
let counter_cells s id =
  if id >= Array.length s.counts then s.counts <- grow_int s.counts (id + 1);
  s.counts

let ensure_hist s id =
  if id >= Array.length s.h_count then begin
    let n = id + 1 in
    s.h_count <- grow_int s.h_count n;
    s.h_sum <- grow_float s.h_sum n 0.0;
    s.h_min <- grow_float s.h_min n infinity;
    s.h_max <- grow_float s.h_max n neg_infinity;
    s.h_buckets <- grow_int s.h_buckets (n * n_buckets)
  end

let incr c =
  if Atomic.get enabled_flag then begin
    let s = Domain.DLS.get shard_key in
    let cells = counter_cells s c in
    cells.(c) <- cells.(c) + 1
  end

let add c n =
  if Atomic.get enabled_flag then begin
    let s = Domain.DLS.get shard_key in
    let cells = counter_cells s c in
    cells.(c) <- cells.(c) + n
  end

(* bucket b holds v in (2^(b-1), 2^b]: frexp exponent, clamped *)
let bucket_of v =
  if v <= 1.0 then 0
  else
    let _, e = Float.frexp v in
    Stdlib.min (n_buckets - 1) e

let observe h v =
  if Atomic.get enabled_flag then begin
    let s = Domain.DLS.get shard_key in
    ensure_hist s h;
    s.h_count.(h) <- s.h_count.(h) + 1;
    s.h_sum.(h) <- s.h_sum.(h) +. v;
    if v < s.h_min.(h) then s.h_min.(h) <- v;
    if v > s.h_max.(h) then s.h_max.(h) <- v;
    let b = (h * n_buckets) + bucket_of v in
    s.h_buckets.(b) <- s.h_buckets.(b) + 1
  end

let time h f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let t0 = now_us () in
    Fun.protect ~finally:(fun () -> observe h (now_us () -. t0)) f
  end

let reset () =
  Mutex.lock registry_mutex;
  let shards = !all_shards in
  Mutex.unlock registry_mutex;
  List.iter
    (fun s ->
      Array.fill s.counts 0 (Array.length s.counts) 0;
      Array.fill s.h_count 0 (Array.length s.h_count) 0;
      Array.fill s.h_sum 0 (Array.length s.h_sum) 0.0;
      Array.fill s.h_min 0 (Array.length s.h_min) infinity;
      Array.fill s.h_max 0 (Array.length s.h_max) neg_infinity;
      Array.fill s.h_buckets 0 (Array.length s.h_buckets) 0)
    shards

(* ------------------------------------------------------------- snapshot *)

module Snapshot = struct
  type hist = {
    count : int;
    sum : float;
    min : float;
    max : float;
    buckets : int array; (* length n_buckets *)
  }

  type t = {
    counters : (string * int * (int * int) list) list;
        (* name, merged total, per-domain non-zero values *)
    histograms : (string * hist) list;
  }

  let take () =
    Mutex.lock registry_mutex;
    let cnames = Array.copy !counter_names in
    let hnames = Array.copy !histogram_names in
    let shards = !all_shards in
    Mutex.unlock registry_mutex;
    let counters =
      Array.to_list
        (Array.mapi
           (fun id name ->
             let per =
               List.filter_map
                 (fun s ->
                   let v =
                     if id < Array.length s.counts then s.counts.(id) else 0
                   in
                   if v = 0 then None else Some (s.domain_id, v))
                 shards
               |> List.sort compare
             in
             (name, List.fold_left (fun acc (_, v) -> acc + v) 0 per, per))
           cnames)
    in
    let histograms =
      Array.to_list
        (Array.mapi
           (fun id name ->
             let h =
               List.fold_left
                 (fun acc s ->
                   if id >= Array.length s.h_count || s.h_count.(id) = 0 then
                     acc
                   else begin
                     for b = 0 to n_buckets - 1 do
                       acc.buckets.(b) <-
                         acc.buckets.(b) + s.h_buckets.((id * n_buckets) + b)
                     done;
                     {
                       acc with
                       count = acc.count + s.h_count.(id);
                       sum = acc.sum +. s.h_sum.(id);
                       min = Float.min acc.min s.h_min.(id);
                       max = Float.max acc.max s.h_max.(id);
                     }
                   end)
                 { count = 0; sum = 0.0; min = infinity; max = neg_infinity;
                   buckets = Array.make n_buckets 0 }
                 shards
             in
             (name, h))
           hnames)
    in
    { counters; histograms }

  let counter_total t name =
    match List.find_opt (fun (n, _, _) -> n = name) t.counters with
    | Some (_, total, _) -> total
    | None -> 0

  let counter_by_domain t name =
    match List.find_opt (fun (n, _, _) -> n = name) t.counters with
    | Some (_, _, per) -> per
    | None -> []

  let find_hist t name = List.find_opt (fun (n, _) -> n = name) t.histograms

  let histogram_count t name =
    match find_hist t name with Some (_, h) -> h.count | None -> 0

  let histogram_sum t name =
    match find_hist t name with Some (_, h) -> h.sum | None -> 0.0

  let is_empty t =
    List.for_all (fun (_, total, _) -> total = 0) t.counters
    && List.for_all (fun (_, h) -> h.count = 0) t.histograms

  let pp ppf t =
    let live_counters = List.filter (fun (_, v, _) -> v <> 0) t.counters in
    let live_hists = List.filter (fun (_, h) -> h.count > 0) t.histograms in
    if live_counters = [] && live_hists = [] then
      Format.fprintf ppf "telemetry: no metrics recorded@."
    else begin
      if live_counters <> [] then begin
        Format.fprintf ppf "counters:@.";
        List.iter
          (fun (name, total, per) ->
            Format.fprintf ppf "  %-32s %12d" name total;
            (match per with
             | [] | [ _ ] -> ()
             | _ ->
               Format.fprintf ppf "   (%s)"
                 (String.concat ", "
                    (List.map
                       (fun (d, v) -> Printf.sprintf "d%d:%d" d v)
                       per)));
            Format.fprintf ppf "@.")
          live_counters
      end;
      if live_hists <> [] then begin
        Format.fprintf ppf "histograms:@.";
        List.iter
          (fun (name, h) ->
            Format.fprintf ppf
              "  %-32s count %8d  mean %12.2f  min %10.1f  max %10.1f@." name
              h.count
              (h.sum /. float_of_int h.count)
              h.min h.max)
          live_hists
      end
    end

  (* JSON floats: min/max of an empty histogram are infinities, which JSON
     has no literal for — emitted histograms always have count > 0. *)
  let json_float f =
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%.6g" f

  let to_json t =
    let buf = Buffer.create 1024 in
    let p fmt = Printf.bprintf buf fmt in
    let live_counters = List.filter (fun (_, v, _) -> v <> 0) t.counters in
    let live_hists = List.filter (fun (_, h) -> h.count > 0) t.histograms in
    let sep first = if !first then first := false else p ", " in
    p "{\"counters\": {";
    let first = ref true in
    List.iter
      (fun (name, total, _) ->
        sep first;
        p "\"%s\": %d" name total)
      live_counters;
    p "}, \"counters_by_domain\": {";
    let first = ref true in
    List.iter
      (fun (name, _, per) ->
        sep first;
        p "\"%s\": {" name;
        let f2 = ref true in
        List.iter
          (fun (d, v) ->
            sep f2;
            p "\"%d\": %d" d v)
          per;
        p "}")
      live_counters;
    p "}, \"histograms\": {";
    let first = ref true in
    List.iter
      (fun (name, h) ->
        sep first;
        p "\"%s\": {\"count\": %d, \"sum\": %s, \"min\": %s, \"max\": %s, \
           \"buckets\": {"
          name h.count (json_float h.sum) (json_float h.min)
          (json_float h.max);
        let f2 = ref true in
        Array.iteri
          (fun b n ->
            if n > 0 then begin
              sep f2;
              p "\"%d\": %d" b n
            end)
          h.buckets;
        p "}}")
      live_hists;
    p "}}";
    Buffer.contents buf
end
