(* Process-global metric registry with per-domain shards.

   Registration (rare, module-init time) takes a mutex; recording (hot)
   touches only the calling domain's shard through Domain.DLS — one bounds
   check and one array store. Shards register themselves in a global list
   the first time a domain records anything, so a snapshot can walk and
   merge them without the domains' cooperation. *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let now_us () = Unix.gettimeofday () *. 1e6

type counter = int
type histogram = int
type gauge = int

(* ------------------------------------------------------------- registry *)

let registry_mutex = Mutex.create ()

(* name tables; index = metric id *)
let counter_names : string array ref = ref [||]
let histogram_names : string array ref = ref [||]
let gauge_names : string array ref = ref [||]
let counter_ids : (string, int) Hashtbl.t = Hashtbl.create 32
let histogram_ids : (string, int) Hashtbl.t = Hashtbl.create 32
let gauge_ids : (string, int) Hashtbl.t = Hashtbl.create 32

(* full encoded name -> (base name, label pairs); labeled metrics only *)
let label_meta : (string, string * (string * string) list) Hashtbl.t =
  Hashtbl.create 32

let register ids names name =
  Mutex.lock registry_mutex;
  let id =
    match Hashtbl.find_opt ids name with
    | Some id -> id
    | None ->
      let id = Array.length !names in
      names := Array.append !names [| name |];
      Hashtbl.replace ids name id;
      id
  in
  Mutex.unlock registry_mutex;
  id

let counter name = register counter_ids counter_names name
let histogram name = register histogram_ids histogram_names name
let gauge name = register gauge_ids gauge_names name

(* Prometheus-style escaping inside the canonical encoded name, so the
   full name both is unique per label set and round-trips to text. *)
let escape_label_value v =
  let b = Buffer.create (String.length v + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let encode_labels base labels =
  match labels with
  | [] -> base
  | _ ->
    let labels =
      List.sort (fun (a, _) (b, _) -> String.compare a b) labels
    in
    let b = Buffer.create 64 in
    Buffer.add_string b base;
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b k;
        Buffer.add_string b "=\"";
        Buffer.add_string b (escape_label_value v);
        Buffer.add_char b '"')
      labels;
    Buffer.add_char b '}';
    Buffer.contents b

let register_labeled ids names base labels =
  let full = encode_labels base labels in
  let id = register ids names full in
  if labels <> [] then begin
    Mutex.lock registry_mutex;
    if not (Hashtbl.mem label_meta full) then
      Hashtbl.replace label_meta full
        (base, List.sort (fun (a, _) (b, _) -> String.compare a b) labels);
    Mutex.unlock registry_mutex
  end;
  id

let counter_with base labels = register_labeled counter_ids counter_names base labels
let histogram_with base labels =
  register_labeled histogram_ids histogram_names base labels
let gauge_with base labels = register_labeled gauge_ids gauge_names base labels

(* --------------------------------------------------------------- shards *)

let n_buckets = 64

type shard = {
  domain_id : int;
  mutable counts : int array;      (* counter id -> count *)
  mutable h_count : int array;     (* histogram id -> observation count *)
  mutable h_sum : float array;
  mutable h_min : float array;
  mutable h_max : float array;
  mutable h_buckets : int array;   (* histogram id * n_buckets + bucket *)
  mutable g_base : float array;    (* gauge id -> last set value *)
  mutable g_stamp : int array;     (* gauge id -> global tick of that set *)
  mutable g_add : float array;     (* gauge id -> accumulated deltas *)
}

let all_shards : shard list ref = ref []

(* orders concurrent gauge sets across shards: the snapshot keeps the
   value with the highest stamp *)
let gauge_clock = Atomic.make 0

let fresh_shard () =
  let s =
    {
      domain_id = (Domain.self () :> int);
      counts = [||];
      h_count = [||];
      h_sum = [||];
      h_min = [||];
      h_max = [||];
      h_buckets = [||];
      g_base = [||];
      g_stamp = [||];
      g_add = [||];
    }
  in
  Mutex.lock registry_mutex;
  all_shards := s :: !all_shards;
  Mutex.unlock registry_mutex;
  s

let shard_key : shard Domain.DLS.key = Domain.DLS.new_key fresh_shard

let grow_int a n = Array.append a (Array.make (n - Array.length a) 0)
let grow_float a n v = Array.append a (Array.make (n - Array.length a) v)

(* Only the owning domain grows its arrays; a concurrent snapshot may read
   the superseded array and miss the newest cells — benign, see the mli. *)
let counter_cells s id =
  if id >= Array.length s.counts then s.counts <- grow_int s.counts (id + 1);
  s.counts

let ensure_hist s id =
  if id >= Array.length s.h_count then begin
    let n = id + 1 in
    s.h_count <- grow_int s.h_count n;
    s.h_sum <- grow_float s.h_sum n 0.0;
    s.h_min <- grow_float s.h_min n infinity;
    s.h_max <- grow_float s.h_max n neg_infinity;
    s.h_buckets <- grow_int s.h_buckets (n * n_buckets)
  end

let ensure_gauge s id =
  if id >= Array.length s.g_base then begin
    let n = id + 1 in
    s.g_base <- grow_float s.g_base n 0.0;
    s.g_stamp <- grow_int s.g_stamp n;
    s.g_add <- grow_float s.g_add n 0.0
  end

let incr c =
  if Atomic.get enabled_flag then begin
    let s = Domain.DLS.get shard_key in
    let cells = counter_cells s c in
    cells.(c) <- cells.(c) + 1
  end

let add c n =
  if Atomic.get enabled_flag then begin
    let s = Domain.DLS.get shard_key in
    let cells = counter_cells s c in
    cells.(c) <- cells.(c) + n
  end

(* Clock steps and broken arithmetic must never corrupt metric state:
   non-finite or negative observations and non-finite gauge values are
   dropped and counted here instead. *)
let m_dropped = counter "telemetry.dropped_observations"

let drop_observation () =
  let s = Domain.DLS.get shard_key in
  let cells = counter_cells s m_dropped in
  cells.(m_dropped) <- cells.(m_dropped) + 1

(* bucket b holds v in (2^(b-1), 2^b]: frexp exponent, clamped *)
let bucket_of v =
  if v <= 1.0 then 0
  else
    let _, e = Float.frexp v in
    Stdlib.min (n_buckets - 1) e

let observe h v =
  if Atomic.get enabled_flag then begin
    (* [not (v >= 0)] also catches NaN *)
    if not (v >= 0.0) || v = infinity then drop_observation ()
    else begin
      let s = Domain.DLS.get shard_key in
      ensure_hist s h;
      s.h_count.(h) <- s.h_count.(h) + 1;
      s.h_sum.(h) <- s.h_sum.(h) +. v;
      if v < s.h_min.(h) then s.h_min.(h) <- v;
      if v > s.h_max.(h) then s.h_max.(h) <- v;
      let b = (h * n_buckets) + bucket_of v in
      s.h_buckets.(b) <- s.h_buckets.(b) + 1
    end
  end

let set_gauge g v =
  if Atomic.get enabled_flag then begin
    if not (Float.is_finite v) then drop_observation ()
    else begin
      let s = Domain.DLS.get shard_key in
      ensure_gauge s g;
      s.g_base.(g) <- v;
      s.g_stamp.(g) <- Atomic.fetch_and_add gauge_clock 1 + 1
    end
  end

let add_gauge g dv =
  if Atomic.get enabled_flag then begin
    if not (Float.is_finite dv) then drop_observation ()
    else begin
      let s = Domain.DLS.get shard_key in
      ensure_gauge s g;
      s.g_add.(g) <- s.g_add.(g) +. dv
    end
  end

let time h f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let t0 = now_us () in
    Fun.protect ~finally:(fun () -> observe h (now_us () -. t0)) f
  end

let reset () =
  Mutex.lock registry_mutex;
  let shards = !all_shards in
  Mutex.unlock registry_mutex;
  List.iter
    (fun s ->
      Array.fill s.counts 0 (Array.length s.counts) 0;
      Array.fill s.h_count 0 (Array.length s.h_count) 0;
      Array.fill s.h_sum 0 (Array.length s.h_sum) 0.0;
      Array.fill s.h_min 0 (Array.length s.h_min) infinity;
      Array.fill s.h_max 0 (Array.length s.h_max) neg_infinity;
      Array.fill s.h_buckets 0 (Array.length s.h_buckets) 0;
      Array.fill s.g_base 0 (Array.length s.g_base) 0.0;
      Array.fill s.g_stamp 0 (Array.length s.g_stamp) 0;
      Array.fill s.g_add 0 (Array.length s.g_add) 0.0)
    shards

(* ------------------------------------------------------------- snapshot *)

module Snapshot = struct
  type hist = {
    count : int;
    sum : float;
    min : float;
    max : float;
    buckets : int array; (* length n_buckets *)
  }

  type t = {
    taken_at : float;
    counters : (string * int * (int * int) list) list;
        (* name, merged total, per-domain non-zero values *)
    gauges : (string * float) list; (* live gauges only *)
    histograms : (string * hist) list;
    meta : (string * (string * (string * string) list)) list;
        (* full name -> base name, sorted label pairs; labeled metrics only *)
  }

  let n_buckets = n_buckets

  let make ~taken_at ~counters ~gauges ~histograms ~meta =
    { taken_at; counters; gauges; histograms; meta }

  let take () =
    Mutex.lock registry_mutex;
    let cnames = Array.copy !counter_names in
    let hnames = Array.copy !histogram_names in
    let gnames = Array.copy !gauge_names in
    let shards = !all_shards in
    let meta =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) label_meta []
      |> List.sort compare
    in
    Mutex.unlock registry_mutex;
    let counters =
      Array.to_list
        (Array.mapi
           (fun id name ->
             let per =
               List.filter_map
                 (fun s ->
                   let v =
                     if id < Array.length s.counts then s.counts.(id) else 0
                   in
                   if v = 0 then None else Some (s.domain_id, v))
                 shards
               |> List.sort compare
             in
             (name, List.fold_left (fun acc (_, v) -> acc + v) 0 per, per))
           cnames)
    in
    let gauges =
      Array.to_list
        (Array.mapi
           (fun id name ->
             let base, stamp, adds =
               List.fold_left
                 (fun (base, stamp, adds) s ->
                   if id >= Array.length s.g_base then (base, stamp, adds)
                   else
                     let base, stamp =
                       if s.g_stamp.(id) > stamp then
                         (s.g_base.(id), s.g_stamp.(id))
                       else (base, stamp)
                     in
                     (base, stamp, adds +. s.g_add.(id)))
                 (0.0, 0, 0.0) shards
             in
             if stamp = 0 && adds = 0.0 then None
             else Some (name, base +. adds))
           gnames)
      |> List.filter_map Fun.id
    in
    let histograms =
      Array.to_list
        (Array.mapi
           (fun id name ->
             let h =
               List.fold_left
                 (fun acc s ->
                   if id >= Array.length s.h_count || s.h_count.(id) = 0 then
                     acc
                   else begin
                     for b = 0 to n_buckets - 1 do
                       acc.buckets.(b) <-
                         acc.buckets.(b) + s.h_buckets.((id * n_buckets) + b)
                     done;
                     {
                       acc with
                       count = acc.count + s.h_count.(id);
                       sum = acc.sum +. s.h_sum.(id);
                       min = Float.min acc.min s.h_min.(id);
                       max = Float.max acc.max s.h_max.(id);
                     }
                   end)
                 { count = 0; sum = 0.0; min = infinity; max = neg_infinity;
                   buckets = Array.make n_buckets 0 }
                 shards
             in
             (name, h))
           hnames)
    in
    { taken_at = Unix.gettimeofday (); counters; gauges; histograms; meta }

  let taken_at t = t.taken_at
  let counter_entries t = t.counters
  let gauge_entries t = t.gauges
  let histogram_entries t = t.histograms
  let meta_entries t = t.meta

  let base_and_labels t name =
    match List.assoc_opt name t.meta with
    | Some (base, labels) -> (base, labels)
    | None -> (name, [])

  let counter_total t name =
    match List.find_opt (fun (n, _, _) -> n = name) t.counters with
    | Some (_, total, _) -> total
    | None -> 0

  let counter_by_domain t name =
    match List.find_opt (fun (n, _, _) -> n = name) t.counters with
    | Some (_, _, per) -> per
    | None -> []

  let gauge_value t name =
    match List.assoc_opt name t.gauges with Some v -> v | None -> 0.0

  let find_hist t name = List.find_opt (fun (n, _) -> n = name) t.histograms

  let histogram_stats t name = Option.map snd (find_hist t name)

  let histogram_count t name =
    match find_hist t name with Some (_, h) -> h.count | None -> 0

  let histogram_sum t name =
    match find_hist t name with Some (_, h) -> h.sum | None -> 0.0

  let is_empty t =
    List.for_all (fun (_, total, _) -> total = 0) t.counters
    && List.for_all (fun (_, h) -> h.count = 0) t.histograms
    && t.gauges = []

  (* upper edge of bucket [b]: 1 for bucket 0, else 2^b *)
  let bucket_upper b = if b <= 0 then 1.0 else Float.ldexp 1.0 b

  let quantile h q =
    if h.count <= 0 then 0.0
    else begin
      let q = Float.max 0.0 (Float.min 1.0 q) in
      let target =
        Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int h.count)))
      in
      let rec walk b cum =
        if b >= n_buckets then h.max
        else
          let cum = cum + h.buckets.(b) in
          if cum >= target then bucket_upper b else walk (b + 1) cum
      in
      let v = walk 0 0 in
      (* the bucket edge can overshoot the true extremes; clamp for display *)
      if Float.is_finite h.min && Float.is_finite h.max then
        Float.max h.min (Float.min h.max v)
      else v
    end

  (* [diff ~newer ~older]: per-metric newer-minus-older with every count
     clamped at zero, so a counter reset (daemon restart between the two
     snapshots) yields zero rates instead of huge negative ones. *)
  let diff ~newer ~older =
    let counters =
      List.map
        (fun (name, total, per) ->
          let o_total = counter_total older name in
          let o_per = counter_by_domain older name in
          let d_per =
            List.filter_map
              (fun (d, v) ->
                let ov =
                  match List.assoc_opt d o_per with Some o -> o | None -> 0
                in
                let dv = Stdlib.max 0 (v - ov) in
                if dv = 0 then None else Some (d, dv))
              per
          in
          (name, Stdlib.max 0 (total - o_total), d_per))
        newer.counters
    in
    let histograms =
      List.map
        (fun (name, h) ->
          match find_hist older name with
          | None -> (name, h)
          | Some (_, o) ->
            let buckets =
              Array.init n_buckets (fun b ->
                  Stdlib.max 0 (h.buckets.(b) - o.buckets.(b)))
            in
            ( name,
              {
                count = Stdlib.max 0 (h.count - o.count);
                sum = Float.max 0.0 (h.sum -. o.sum);
                (* min/max cannot be un-merged; keep the newer envelope *)
                min = h.min;
                max = h.max;
                buckets;
              } ))
        newer.histograms
    in
    {
      taken_at = newer.taken_at;
      counters;
      gauges = newer.gauges; (* gauges are levels, not totals: keep newest *)
      histograms;
      meta = newer.meta;
    }

  let json_escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let pp ppf t =
    let live_counters = List.filter (fun (_, v, _) -> v <> 0) t.counters in
    let live_hists = List.filter (fun (_, h) -> h.count > 0) t.histograms in
    if live_counters = [] && live_hists = [] && t.gauges = [] then
      Format.fprintf ppf "telemetry: no metrics recorded@."
    else begin
      if live_counters <> [] then begin
        Format.fprintf ppf "counters:@.";
        List.iter
          (fun (name, total, per) ->
            Format.fprintf ppf "  %-32s %12d" name total;
            (match per with
             | [] | [ _ ] -> ()
             | _ ->
               Format.fprintf ppf "   (%s)"
                 (String.concat ", "
                    (List.map
                       (fun (d, v) -> Printf.sprintf "d%d:%d" d v)
                       per)));
            Format.fprintf ppf "@.")
          live_counters
      end;
      if t.gauges <> [] then begin
        Format.fprintf ppf "gauges:@.";
        List.iter
          (fun (name, v) -> Format.fprintf ppf "  %-32s %14g@." name v)
          t.gauges
      end;
      if live_hists <> [] then begin
        Format.fprintf ppf "histograms:@.";
        List.iter
          (fun (name, h) ->
            Format.fprintf ppf
              "  %-32s count %8d  mean %12.2f  min %10.1f  max %10.1f@." name
              h.count
              (h.sum /. float_of_int h.count)
              h.min h.max)
          live_hists
      end
    end

  (* JSON floats: min/max of an empty histogram are infinities, which JSON
     has no literal for — emitted histograms always have count > 0. *)
  let json_float f =
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%.6g" f

  let to_json ?(meta = []) t =
    let buf = Buffer.create 1024 in
    let p fmt = Printf.bprintf buf fmt in
    let live_counters = List.filter (fun (_, v, _) -> v <> 0) t.counters in
    let live_hists = List.filter (fun (_, h) -> h.count > 0) t.histograms in
    let sep first = if !first then first := false else p ", " in
    p "{";
    (match meta with
     | [] -> ()
     | meta ->
       p "\"meta\": {";
       let f0 = ref true in
       List.iter
         (fun (k, raw_json) ->
           sep f0;
           p "\"%s\": %s" (json_escape k) raw_json)
         meta;
       p "}, ");
    p "\"counters\": {";
    let first = ref true in
    List.iter
      (fun (name, total, _) ->
        sep first;
        p "\"%s\": %d" (json_escape name) total)
      live_counters;
    p "}, \"counters_by_domain\": {";
    let first = ref true in
    List.iter
      (fun (name, _, per) ->
        sep first;
        p "\"%s\": {" (json_escape name);
        let f2 = ref true in
        List.iter
          (fun (d, v) ->
            sep f2;
            p "\"%d\": %d" d v)
          per;
        p "}")
      live_counters;
    p "}, \"gauges\": {";
    let first = ref true in
    List.iter
      (fun (name, v) ->
        sep first;
        p "\"%s\": %s" (json_escape name) (json_float v))
      t.gauges;
    p "}, \"histograms\": {";
    let first = ref true in
    List.iter
      (fun (name, h) ->
        sep first;
        p "\"%s\": {\"count\": %d, \"sum\": %s, \"min\": %s, \"max\": %s, \
           \"buckets\": {"
          (json_escape name) h.count (json_float h.sum) (json_float h.min)
          (json_float h.max);
        let f2 = ref true in
        Array.iteri
          (fun b n ->
            if n > 0 then begin
              sep f2;
              p "\"%d\": %d" b n
            end)
          h.buckets;
        p "}}")
      live_hists;
    p "}}";
    Buffer.contents buf
end
