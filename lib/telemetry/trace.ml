(* Chrome trace-event recording. Events accumulate in per-domain buffers
   (Domain.DLS, registered in a global list on first use, like Telemetry's
   shards); serialization merges and sorts them. Timestamps are wall-clock
   microseconds relative to the last [start]. *)

type event = {
  name : string;
  cat : string;
  ph : char;     (* 'X' complete span, 'i' instant *)
  ts : float;    (* µs since trace epoch *)
  dur : float;   (* µs; meaningful for 'X' only *)
  tid : int;     (* domain id *)
  args : (string * string) list;
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag

(* epoch is written by [start] while quiescent and only read afterwards *)
let epoch = ref 0.0

type buffer = { b_tid : int; mutable events : event list (* reversed *) }

let buffers_mutex = Mutex.create ()
let all_buffers : buffer list ref = ref []

let fresh_buffer () =
  let b = { b_tid = (Domain.self () :> int); events = [] } in
  Mutex.lock buffers_mutex;
  all_buffers := b :: !all_buffers;
  Mutex.unlock buffers_mutex;
  b

let buffer_key : buffer Domain.DLS.key = Domain.DLS.new_key fresh_buffer

let emit e =
  let b = Domain.DLS.get buffer_key in
  b.events <- e :: b.events

let start () =
  Mutex.lock buffers_mutex;
  List.iter (fun b -> b.events <- []) !all_buffers;
  Mutex.unlock buffers_mutex;
  epoch := Telemetry.now_us ();
  Atomic.set enabled_flag true

let stop () = Atomic.set enabled_flag false

let with_span ?(cat = "app") ?(args = []) name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let t0 = Telemetry.now_us () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = Telemetry.now_us () in
        emit
          {
            name;
            cat;
            ph = 'X';
            ts = t0 -. !epoch;
            dur = t1 -. t0;
            tid = (Domain.self () :> int);
            args;
          })
      f
  end

let instant ?(cat = "app") ?(args = []) name =
  if Atomic.get enabled_flag then
    emit
      {
        name;
        cat;
        ph = 'i';
        ts = Telemetry.now_us () -. !epoch;
        dur = 0.0;
        tid = (Domain.self () :> int);
        args;
      }

let collected () =
  Mutex.lock buffers_mutex;
  let bufs = !all_buffers in
  Mutex.unlock buffers_mutex;
  let events = List.concat_map (fun b -> List.rev b.events) bufs in
  List.stable_sort (fun a b -> Float.compare a.ts b.ts) events

let event_count () = List.length (collected ())

(* ------------------------------------------------------------------ JSON *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let emit_args buf args =
  Printf.bprintf buf "{";
  List.iteri
    (fun i (k, v) ->
      Printf.bprintf buf "%s\"%s\": \"%s\"" (if i > 0 then ", " else "")
        (escape k) (escape v))
    args;
  Printf.bprintf buf "}"

let to_json () =
  let events = collected () in
  let tids =
    List.sort_uniq compare (List.map (fun e -> e.tid) events)
  in
  let buf = Buffer.create 4096 in
  let p fmt = Printf.bprintf buf fmt in
  p "{\"traceEvents\": [\n";
  let first = ref true in
  let sep () = if !first then first := false else p ",\n" in
  (* one named track per domain that recorded anything *)
  List.iter
    (fun tid ->
      sep ();
      p
        "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \
         \"tid\": %d, \"args\": {\"name\": \"domain-%d\"}}"
        tid tid)
    tids;
  List.iter
    (fun e ->
      sep ();
      p
        "  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"%c\", \"ts\": \
         %.3f, "
        (escape e.name) (escape e.cat) e.ph e.ts;
      if e.ph = 'X' then p "\"dur\": %.3f, " e.dur;
      if e.ph = 'i' then p "\"s\": \"t\", ";
      p "\"pid\": 1, \"tid\": %d" e.tid;
      if e.args <> [] then begin
        p ", \"args\": ";
        emit_args buf e.args
      end;
      p "}")
    events;
  p "\n], \"displayTimeUnit\": \"ms\"}\n";
  Buffer.contents buf

let write path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json ()))
