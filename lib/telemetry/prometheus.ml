(* Prometheus / OpenMetrics text exposition of telemetry snapshots, plus a
   strict parser of the same format so tests and CI gates validate scrapes
   with a real grammar instead of substring checks. *)

(* ------------------------------------------------------------ rendering *)

(* metric and label names: [a-zA-Z_:][a-zA-Z0-9_:]* — everything else
   (dots in our metric names, dashes in label keys) becomes '_' *)
let sanitize_name s =
  if s = "" then "_"
  else begin
    let b = Bytes.create (String.length s) in
    String.iteri
      (fun i c ->
        let ok =
          (c >= 'a' && c <= 'z')
          || (c >= 'A' && c <= 'Z')
          || c = '_' || c = ':'
          || (i > 0 && c >= '0' && c <= '9')
        in
        Bytes.set b i (if ok then c else '_'))
      s;
    Bytes.to_string b
  end

let escape_label_value v =
  let b = Buffer.create (String.length v + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let render_labels buf labels =
  match labels with
  | [] -> ()
  | _ ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (sanitize_name k);
        Buffer.add_string buf "=\"";
        Buffer.add_string buf (escape_label_value v);
        Buffer.add_char buf '"')
      labels;
    Buffer.add_char buf '}'

let render_float f =
  if f = infinity then "+Inf"
  else if f = neg_infinity then "-Inf"
  else if Float.is_nan f then "NaN"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let bucket_upper b = if b <= 0 then 1.0 else Float.ldexp 1.0 b

(* group a snapshot section into families: sanitized base name ->
   [(labels, payload)] in first-seen order *)
let group snap entries =
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (name, payload) ->
      let base, labels = Telemetry.Snapshot.base_and_labels snap name in
      let base = sanitize_name base in
      if not (Hashtbl.mem tbl base) then begin
        order := base :: !order;
        Hashtbl.replace tbl base []
      end;
      Hashtbl.replace tbl base ((labels, payload) :: Hashtbl.find tbl base))
    entries;
  List.rev_map (fun base -> (base, List.rev (Hashtbl.find tbl base))) !order

let render snap =
  let buf = Buffer.create 4096 in
  let p fmt = Printf.bprintf buf fmt in
  let counters =
    Telemetry.Snapshot.counter_entries snap
    |> List.filter_map (fun (name, total, _) ->
           if total = 0 then None else Some (name, total))
  in
  List.iter
    (fun (base, members) ->
      (* counters get the _total suffix the format expects *)
      let fam = base ^ "_total" in
      p "# TYPE %s counter\n" fam;
      List.iter
        (fun (labels, total) ->
          Buffer.add_string buf fam;
          render_labels buf labels;
          p " %d\n" total)
        members)
    (group snap counters);
  List.iter
    (fun (base, members) ->
      p "# TYPE %s gauge\n" base;
      List.iter
        (fun (labels, v) ->
          Buffer.add_string buf base;
          render_labels buf labels;
          p " %s\n" (render_float v))
        members)
    (group snap (Telemetry.Snapshot.gauge_entries snap));
  let hists =
    Telemetry.Snapshot.histogram_entries snap
    |> List.filter (fun (_, h) -> h.Telemetry.Snapshot.count > 0)
  in
  List.iter
    (fun (base, members) ->
      p "# TYPE %s histogram\n" base;
      List.iter
        (fun (labels, (h : Telemetry.Snapshot.hist)) ->
          let sample suffix labels value =
            Buffer.add_string buf base;
            Buffer.add_string buf suffix;
            render_labels buf labels;
            p " %s\n" value
          in
          let cum = ref 0 in
          Array.iteri
            (fun b n ->
              cum := !cum + n;
              (* elide empty trailing buckets but keep every boundary that
                 has mass below it, so le stays cumulative and monotone *)
              if n > 0 then
                sample "_bucket"
                  (labels @ [ ("le", render_float (bucket_upper b)) ])
                  (string_of_int !cum))
            h.buckets;
          sample "_bucket"
            (labels @ [ ("le", "+Inf") ])
            (string_of_int h.count);
          sample "_sum" labels (render_float h.sum);
          sample "_count" labels (string_of_int h.count))
        members)
    (group snap hists);
  Buffer.contents buf

(* -------------------------------------------------------------- parsing *)

type sample = {
  name : string;
  labels : (string * string) list;
  value : float;
}

type family = {
  fam_name : string;
  fam_type : string; (* "counter" | "gauge" | "histogram" | "untyped" *)
  samples : sample list;
}

exception Parse_error of int * string

let fail line msg = raise (Parse_error (line, msg))

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

let parse_name ln s pos =
  let n = String.length s in
  let start = !pos in
  while !pos < n && is_name_char s.[!pos] do incr pos done;
  if !pos = start then fail ln "expected a metric/label name";
  let c = s.[start] in
  if c >= '0' && c <= '9' then fail ln "name starts with a digit";
  String.sub s start (!pos - start)

let parse_quoted ln s pos =
  let n = String.length s in
  if !pos >= n || s.[!pos] <> '"' then fail ln "expected '\"'";
  incr pos;
  let b = Buffer.create 16 in
  let rec go () =
    if !pos >= n then fail ln "unterminated label value"
    else
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        if !pos + 1 >= n then fail ln "dangling backslash";
        (match s.[!pos + 1] with
         | '\\' -> Buffer.add_char b '\\'
         | '"' -> Buffer.add_char b '"'
         | 'n' -> Buffer.add_char b '\n'
         | c -> fail ln (Printf.sprintf "bad escape '\\%c'" c));
        pos := !pos + 2;
        go ()
      | '\n' -> fail ln "newline in label value"
      | c ->
        Buffer.add_char b c;
        incr pos;
        go ()
  in
  go ();
  Buffer.contents b

let skip_ws s pos =
  let n = String.length s in
  while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t') do incr pos done

let parse_value ln s pos =
  let n = String.length s in
  skip_ws s pos;
  let start = !pos in
  while !pos < n && s.[!pos] <> ' ' && s.[!pos] <> '\t' do incr pos done;
  if !pos = start then fail ln "missing sample value";
  let tok = String.sub s start (!pos - start) in
  match tok with
  | "+Inf" | "Inf" -> infinity
  | "-Inf" -> neg_infinity
  | "NaN" -> nan
  | tok -> (
    match float_of_string_opt tok with
    | Some v -> v
    | None -> fail ln (Printf.sprintf "bad sample value %S" tok))

let parse_sample ln line =
  let pos = ref 0 in
  let name = parse_name ln line pos in
  let labels =
    if !pos < String.length line && line.[!pos] = '{' then begin
      incr pos;
      let acc = ref [] in
      let rec go () =
        skip_ws line pos;
        if !pos < String.length line && line.[!pos] = '}' then incr pos
        else begin
          let k = parse_name ln line pos in
          if !pos >= String.length line || line.[!pos] <> '=' then
            fail ln "expected '=' after label name";
          incr pos;
          let v = parse_quoted ln line pos in
          acc := (k, v) :: !acc;
          skip_ws line pos;
          if !pos < String.length line && line.[!pos] = ',' then begin
            incr pos;
            go ()
          end
          else if !pos < String.length line && line.[!pos] = '}' then
            incr pos
          else fail ln "expected ',' or '}' in label set"
        end
      in
      go ();
      List.rev !acc
    end
    else []
  in
  let value = parse_value ln line pos in
  skip_ws line pos;
  (* optional timestamp: an integer; anything else is a format error *)
  if !pos < String.length line then begin
    let rest = String.sub line !pos (String.length line - !pos) in
    let rest = String.trim rest in
    if rest <> "" && int_of_string_opt rest = None then
      fail ln (Printf.sprintf "trailing garbage %S" rest)
  end;
  { name; labels; value }

(* base family of a sample name: strip histogram/counter suffixes *)
let strip_suffix name =
  let try_strip suf =
    let ls = String.length suf and ln = String.length name in
    if ln > ls && String.sub name (ln - ls) ls = suf then
      Some (String.sub name 0 (ln - ls))
    else None
  in
  match try_strip "_bucket" with
  | Some b -> b
  | None -> (
    match try_strip "_sum" with
    | Some b -> b
    | None -> (
      match try_strip "_count" with
      | Some b -> b
      | None -> (
        match try_strip "_total" with Some b -> b | None -> name)))

let parse text =
  let lines = String.split_on_char '\n' text in
  let order = ref [] in
  let tbl : (string, string * sample list) Hashtbl.t = Hashtbl.create 16 in
  let add_family name typ =
    if not (Hashtbl.mem tbl name) then begin
      order := name :: !order;
      Hashtbl.replace tbl name (typ, [])
    end
    else begin
      let old_typ, samples = Hashtbl.find tbl name in
      let typ = if old_typ = "untyped" then typ else old_typ in
      Hashtbl.replace tbl name (typ, samples)
    end
  in
  List.iteri
    (fun i line ->
      let ln = i + 1 in
      let line =
        (* tolerate \r\n scrapes *)
        let n = String.length line in
        if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1)
        else line
      in
      if line = "" then ()
      else if String.length line > 0 && line.[0] = '#' then begin
        match String.split_on_char ' ' line with
        | "#" :: "TYPE" :: name :: [ typ ] ->
          if
            not
              (List.mem typ
                 [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ])
          then fail ln (Printf.sprintf "unknown TYPE %S" typ);
          add_family name typ
        | "#" :: "TYPE" :: _ -> fail ln "malformed TYPE line"
        | "#" :: "HELP" :: name :: _ -> add_family name "untyped"
        | _ -> () (* plain comment *)
      end
      else begin
        let s = parse_sample ln line in
        let fam = strip_suffix s.name in
        (* a bare gauge has no suffix to strip; attach to the exact name
           when that family was TYPEd, else to the stripped base *)
        let fam = if Hashtbl.mem tbl s.name then s.name else fam in
        add_family fam "untyped";
        let typ, samples = Hashtbl.find tbl fam in
        Hashtbl.replace tbl fam (typ, s :: samples)
      end)
    lines;
  (match String.length text with
   | 0 -> ()
   | n when text.[n - 1] <> '\n' -> fail (List.length lines) "missing trailing newline"
   | _ -> ());
  List.rev_map
    (fun name ->
      let typ, samples = Hashtbl.find tbl name in
      { fam_name = name; fam_type = typ; samples = List.rev samples })
    !order

(* ----------------------------------------------------------- validation *)

let labels_sans_le labels = List.remove_assoc "le" labels

let validate_histograms families =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  List.iter
    (fun fam ->
      if fam.fam_type = "histogram" then begin
        (* split samples per label set (excluding le) *)
        let series = Hashtbl.create 4 in
        let keys = ref [] in
        List.iter
          (fun s ->
            let key =
              List.sort compare (labels_sans_le s.labels)
              |> List.map (fun (k, v) -> k ^ "=" ^ v)
              |> String.concat ","
            in
            if not (Hashtbl.mem series key) then keys := key :: !keys;
            Hashtbl.replace series key
              (s
              :: (try Hashtbl.find series key with Not_found -> [])))
          fam.samples;
        List.iter
          (fun key ->
            let samples = List.rev (Hashtbl.find series key) in
            let buckets =
              List.filter_map
                (fun s ->
                  if s.name = fam.fam_name ^ "_bucket" then
                    match List.assoc_opt "le" s.labels with
                    | None ->
                      err "%s{%s}: _bucket without le" fam.fam_name key;
                      None
                    | Some le ->
                      let edge =
                        if le = "+Inf" then infinity
                        else Option.value (float_of_string_opt le) ~default:nan
                      in
                      if Float.is_nan edge then
                        err "%s{%s}: bad le %S" fam.fam_name key le;
                      Some (edge, s.value)
                  else None)
                samples
            in
            let count =
              List.find_opt (fun s -> s.name = fam.fam_name ^ "_count") samples
            in
            (match buckets with
             | [] -> err "%s{%s}: histogram with no _bucket samples" fam.fam_name key
             | _ ->
               (* le must be strictly increasing, counts non-decreasing *)
               let rec walk = function
                 | (e1, c1) :: ((e2, c2) :: _ as rest) ->
                   if not (e1 < e2) then
                     err "%s{%s}: le not increasing (%g then %g)" fam.fam_name
                       key e1 e2;
                   if c2 < c1 then
                     err "%s{%s}: bucket counts not cumulative (%g then %g)"
                       fam.fam_name key c1 c2;
                   walk rest
                 | _ -> ()
               in
               walk buckets;
               let last_edge, last_count =
                 List.nth buckets (List.length buckets - 1)
               in
               if last_edge <> infinity then
                 err "%s{%s}: missing le=\"+Inf\" bucket" fam.fam_name key;
               (match count with
                | None -> err "%s{%s}: missing _count" fam.fam_name key
                | Some c ->
                  if c.value <> last_count then
                    err "%s{%s}: _count %g <> +Inf bucket %g" fam.fam_name key
                      c.value last_count);
               if
                 not
                   (List.exists
                      (fun s -> s.name = fam.fam_name ^ "_sum")
                      samples)
               then err "%s{%s}: missing _sum" fam.fam_name key))
          (List.rev !keys)
      end)
    families;
  List.rev !errors

let find families name =
  List.find_opt (fun f -> f.fam_name = name) families
