(* Leveled structured JSONL event log.

   One line per event: {"ts":<unix seconds>,"level":"info","event":"...",
   "rid":"...",<fields>}. The sink is process-global; writes serialize on a
   mutex (events are rare next to metric increments — a request emits a
   handful of lines, not thousands). While no sink is installed, [emit] is
   one atomic load and a branch: zero allocation, matching the telemetry
   contract that observability off costs nothing.

   Request ids travel ambiently through Domain.DLS: an executor domain runs
   one job at a time, so [with_rid] around the job makes every log line and
   span inside it carry the id without threading it through signatures.
   Sys-threads multiplexed on one domain (connection readers) share that
   slot — they must pass ["rid"] explicitly instead. *)

type level = Debug | Info | Warn | Error

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3
let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type field =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool

let str s = Str s
let int i = Int i
let float f = Float f
let bool b = Bool b

(* 0 = off; else 1 + rank of the minimum level *)
let gate = Atomic.make 0

let sink_mutex = Mutex.create ()
let sink : out_channel option ref = ref None
let owns_sink = ref false

let enabled level = Atomic.get gate <> 0 && level_rank level + 1 >= Atomic.get gate

let close_sink_locked () =
  (match !sink with
   | Some oc when !owns_sink -> (try close_out oc with Sys_error _ -> ())
   | Some oc -> ( try flush oc with Sys_error _ -> ())
   | None -> ());
  sink := None;
  owns_sink := false

let enable ?(level = Info) oc =
  Mutex.lock sink_mutex;
  close_sink_locked ();
  sink := Some oc;
  owns_sink := false;
  Mutex.unlock sink_mutex;
  Atomic.set gate (level_rank level + 1)

let enable_file ?(level = Info) path =
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
  in
  Mutex.lock sink_mutex;
  close_sink_locked ();
  sink := Some oc;
  owns_sink := true;
  Mutex.unlock sink_mutex;
  Atomic.set gate (level_rank level + 1)

let disable () =
  Atomic.set gate 0;
  Mutex.lock sink_mutex;
  close_sink_locked ();
  Mutex.unlock sink_mutex

let set_level level = if Atomic.get gate <> 0 then Atomic.set gate (level_rank level + 1)

(* ------------------------------------------------------- ambient rid *)

let rid_key : string option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current_rid () = !(Domain.DLS.get rid_key)

let with_rid rid f =
  let slot = Domain.DLS.get rid_key in
  let saved = !slot in
  slot := Some rid;
  Fun.protect ~finally:(fun () -> slot := saved) f

(* ------------------------------------------------------------ emission *)

let add_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_field b (k, v) =
  Buffer.add_string b ",\"";
  add_escaped b k;
  Buffer.add_string b "\":";
  match v with
  | Str s ->
    Buffer.add_char b '"';
    add_escaped b s;
    Buffer.add_char b '"'
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
    if Float.is_finite f then
      Buffer.add_string b
        (if Float.is_integer f && Float.abs f < 1e15 then
           Printf.sprintf "%.0f" f
         else Printf.sprintf "%.6g" f)
    else Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")

let emit level event fields =
  if enabled level then begin
    let b = Buffer.create 160 in
    Buffer.add_string b "{\"ts\":";
    Buffer.add_string b (Printf.sprintf "%.6f" (Unix.gettimeofday ()));
    Buffer.add_string b ",\"level\":\"";
    Buffer.add_string b (level_name level);
    Buffer.add_string b "\",\"event\":\"";
    add_escaped b event;
    Buffer.add_char b '"';
    let has_rid = List.exists (fun (k, _) -> k = "rid") fields in
    (if not has_rid then
       match current_rid () with
       | Some rid -> add_field b ("rid", Str rid)
       | None -> ());
    List.iter (add_field b) fields;
    Buffer.add_string b "}\n";
    let line = Buffer.contents b in
    Mutex.lock sink_mutex;
    (match !sink with
     | Some oc -> ( try output_string oc line; flush oc with Sys_error _ -> ())
     | None -> ());
    Mutex.unlock sink_mutex
  end

let debug event fields = emit Debug event fields
let info event fields = emit Info event fields
let warn event fields = emit Warn event fields
let error event fields = emit Error event fields
