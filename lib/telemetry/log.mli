(** Leveled structured event log: one JSON object per line.

    Events are [{"ts":<unix seconds>, "level":"info", "event":"...",
    "rid":"...", <fields>}]. The sink is process-global and writes
    serialize on a mutex — events are per-request, not per-operation, so
    contention is negligible. While disabled (the default), every emit
    call is one atomic load and a branch: no allocation, preserving the
    telemetry contract that observability off costs nothing and on
    changes no numeric result.

    Request ids propagate ambiently per domain ({!with_rid}); executor
    domains run one job at a time, so wrapping the job tags everything
    it logs. Sys-threads sharing a domain must pass ["rid"] as an
    explicit field instead. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string
val level_of_string : string -> level option
(** Accepts ["debug"], ["info"], ["warn"]/["warning"], ["error"]. *)

type field =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool

val str : string -> field
val int : int -> field
val float : float -> field
val bool : bool -> field

val enable : ?level:level -> out_channel -> unit
(** Install a sink (not closed by {!disable} — caller owns it) and start
    recording events at [level] (default [Info]) and above. *)

val enable_file : ?level:level -> string -> unit
(** Open [path] in append mode as the sink; {!disable} closes it. *)

val disable : unit -> unit
val set_level : level -> unit
(** Adjust the threshold of an enabled log; no-op while disabled. *)

val enabled : level -> bool

val with_rid : string -> (unit -> 'a) -> 'a
(** Run [f] with the calling domain's ambient request id set (restored
    on exit, even on raise). *)

val current_rid : unit -> string option

val emit : level -> string -> (string * field) list -> unit
(** [emit level event fields] writes one line when [level] passes the
    threshold. The ambient rid is added as ["rid"] unless [fields]
    already carries one. Duplicate keys are emitted as given — keep
    field names unique. *)

val debug : string -> (string * field) list -> unit
val info : string -> (string * field) list -> unit
val warn : string -> (string * field) list -> unit
val error : string -> (string * field) list -> unit
