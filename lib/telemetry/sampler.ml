(* Runtime sampler: a ticker domain that periodically publishes process
   vitals as gauges — GC statistics, resident set size, open descriptor
   count — plus whatever process-specific levels the caller's [extra]
   callback sets (pool occupancy, session registry depth, queue depth).

   The ticker sleeps in Unix.select on a self-pipe so [stop] interrupts a
   sleep immediately instead of waiting out the interval. Gc.quick_stat is
   used over Gc.stat: it does not force a full heap walk, so sampling at
   sub-second intervals stays invisible to the workload. *)

let g_minor_words = Telemetry.gauge "runtime.gc.minor_words"
let g_major_words = Telemetry.gauge "runtime.gc.major_words"
let g_promoted_words = Telemetry.gauge "runtime.gc.promoted_words"
let g_heap_words = Telemetry.gauge "runtime.gc.heap_words"
let g_minor_collections = Telemetry.gauge "runtime.gc.minor_collections"
let g_major_collections = Telemetry.gauge "runtime.gc.major_collections"
let g_compactions = Telemetry.gauge "runtime.gc.compactions"
let g_rss_bytes = Telemetry.gauge "runtime.rss_bytes"
let g_open_fds = Telemetry.gauge "runtime.open_fds"

(* VmRSS line of /proc/self/status, in bytes; 0.0 where /proc is absent *)
let rss_bytes () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0.0
  | ic ->
    let rec scan () =
      match input_line ic with
      | exception End_of_file -> 0.0
      | line ->
        if String.length line > 6 && String.sub line 0 6 = "VmRSS:" then begin
          let kb =
            String.sub line 6 (String.length line - 6)
            |> String.trim
            |> String.split_on_char ' '
            |> List.hd
            |> float_of_string_opt
            |> Option.value ~default:0.0
          in
          kb *. 1024.0
        end
        else scan ()
    in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) scan

let open_fds () =
  match Sys.readdir "/proc/self/fd" with
  | exception Sys_error _ -> 0.0
  | entries -> float_of_int (Array.length entries)

let sample_once extra =
  let s = Gc.quick_stat () in
  Telemetry.set_gauge g_minor_words s.Gc.minor_words;
  Telemetry.set_gauge g_major_words s.Gc.major_words;
  Telemetry.set_gauge g_promoted_words s.Gc.promoted_words;
  Telemetry.set_gauge g_heap_words (float_of_int s.Gc.heap_words);
  Telemetry.set_gauge g_minor_collections (float_of_int s.Gc.minor_collections);
  Telemetry.set_gauge g_major_collections (float_of_int s.Gc.major_collections);
  Telemetry.set_gauge g_compactions (float_of_int s.Gc.compactions);
  Telemetry.set_gauge g_rss_bytes (rss_bytes ());
  Telemetry.set_gauge g_open_fds (open_fds ());
  match extra with Some f -> f () | None -> ()

type t = {
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  domain : unit Domain.t;
}

let start ?(interval = 1.0) ?extra () =
  let interval = Float.max 0.01 interval in
  let stop_r, stop_w = Unix.pipe ~cloexec:true () in
  sample_once extra;
  let domain =
    Domain.spawn (fun () ->
        let buf = Bytes.create 1 in
        let rec loop () =
          match Unix.select [ stop_r ] [] [] interval with
          | [], _, _ ->
            sample_once extra;
            loop ()
          | _ :: _, _, _ -> ignore (Unix.read stop_r buf 0 1)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
        in
        loop ())
  in
  { stop_r; stop_w; domain }

let stop t =
  (try ignore (Unix.write_substring t.stop_w "x" 0 1)
   with Unix.Unix_error _ -> ());
  Domain.join t.domain;
  Unix.close t.stop_r;
  Unix.close t.stop_w
