(** Prometheus / OpenMetrics text exposition for {!Telemetry.Snapshot},
    and a strict parser of the same format.

    Rendering maps the snapshot's metric model onto the exposition
    grammar: counters gain the [_total] suffix, labeled families are
    grouped under one [# TYPE] line, and the power-of-two histograms
    become cumulative [_bucket{le="2^b"}] series (empty buckets elided,
    the [le="+Inf"] bucket and [_sum]/[_count] always present). Metric
    and label names are sanitized ([.] → [_]); label values are escaped
    per the format (backslash, double quote, newline).

    The parser exists so tests and the [@obs-check] CI gate validate
    scrapes with a real grammar instead of substring probes. It is
    strict: malformed TYPE lines, bad escapes, garbage after a value, or
    a missing trailing newline raise {!Parse_error}. *)

val render : Telemetry.Snapshot.t -> string
(** Exposition text, newline-terminated. Zero counters and empty
    histograms are elided (a family nobody hit is absent, matching what
    scrapers expect of a fresh process). *)

val sanitize_name : string -> string
(** Map an arbitrary string onto [[a-zA-Z_:][a-zA-Z0-9_:]*]. *)

val escape_label_value : string -> string

type sample = {
  name : string;  (** full sample name, suffixes included *)
  labels : (string * string) list;  (** in exposition order, unescaped *)
  value : float;
}

type family = {
  fam_name : string;  (** base name: suffix-stripped for typed families *)
  fam_type : string;  (** ["counter"], ["gauge"], ["histogram"], ["untyped"] *)
  samples : sample list;  (** in exposition order *)
}

exception Parse_error of int * string
(** Line number (1-based) and description. *)

val parse : string -> family list
(** Parse exposition text into families, in first-appearance order.
    Raises {!Parse_error} on any grammar violation. *)

val validate_histograms : family list -> string list
(** Structural checks on every histogram family: [le] strictly
    increasing, bucket counts cumulative (non-decreasing), [le="+Inf"]
    present and equal to [_count], [_sum] present — per label set.
    Returns human-readable violations; [[]] means all histograms are
    well-formed. *)

val find : family list -> string -> family option
