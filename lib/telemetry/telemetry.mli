(** Observability: named counters, gauges, and histograms, sharded per
    domain.

    The registry is process-global. A metric is registered once (usually at
    module initialization) and returns a small integer handle; recording
    through the handle touches only the calling domain's shard — a plain
    array slot, no locks, no atomics — so enabled-mode overhead is a few
    nanoseconds and parallel regions never contend. Shards are merged when a
    {!Snapshot} is taken, which also preserves the per-domain breakdown
    (that is how per-lane pool utilization and per-domain cache hit rates
    fall out for free).

    Everything is gated on one global flag: while {!enabled} is [false]
    every recording call is a single load-and-branch and allocates nothing.
    Telemetry is strictly an observer — it never influences a numeric
    result; the differential harness and [@trace-check] run with it enabled
    and assert bit-identity against untelemetered runs.

    Snapshots read other domains' shards without synchronization. Counter
    cells are immediate values, so a racy read only risks missing the very
    latest increments of a still-running region; take snapshots outside
    parallel regions for exact numbers. *)

type counter
type histogram
type gauge

val counter : string -> counter
(** [counter name] registers (or finds, by name) a monotonically increasing
    event count. Registration is idempotent: the same name always yields the
    same metric. *)

val histogram : string -> histogram
(** [histogram name] registers (or finds) a value distribution: count, sum,
    min, max, and power-of-two buckets (bucket [b] holds values in
    [(2{^b-1}, 2{^b}]], bucket 0 holds values [<= 1]). *)

val gauge : string -> gauge
(** [gauge name] registers (or finds) a point-in-time level: the merged
    value is the most recent {!set_gauge} across all domains plus the sum
    of all {!add_gauge} deltas. A gauge nobody has touched is absent from
    snapshots. *)

val counter_with : string -> (string * string) list -> counter
val histogram_with : string -> (string * string) list -> histogram
val gauge_with : string -> (string * string) list -> gauge
(** [counter_with base labels] registers one member of a labeled metric
    family, e.g. [counter_with "serve.requests" ["tenant", t]]. The member
    behaves exactly like an unlabeled metric (same hot path); snapshots
    carry the base-name/labels split so renderers can group families
    ({!Snapshot.base_and_labels}). Label order does not matter — pairs are
    sorted by key; registering the same base+labels twice yields the same
    handle. Keep cardinality bounded: every distinct label set is a
    separate metric for the life of the process. *)

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Global recording switch, off by default. Flip it outside parallel
    regions. *)

val incr : counter -> unit
val add : counter -> int -> unit
val observe : histogram -> float -> unit
(** No-ops while disabled. [observe] drops NaN, negative, and infinite
    values (a stepped clock must not corrupt bucket/sum state) and counts
    each drop in the [telemetry.dropped_observations] counter. *)

val set_gauge : gauge -> float -> unit
val add_gauge : gauge -> float -> unit
(** No-ops while disabled. Non-finite values/deltas are dropped and counted
    like bad observations. [set_gauge] overrides any previous set from any
    domain (a global stamp orders concurrent sets); [add_gauge] accumulates
    per-domain and the deltas sum into the merged value. *)

val time : histogram -> (unit -> 'a) -> 'a
(** [time h f] runs [f] and observes its wall-clock duration in
    microseconds ([f] is just called when disabled). The duration is
    recorded even if [f] raises. *)

val reset : unit -> unit
(** Zero every shard of every metric (the registry itself survives). Call
    outside parallel regions. *)

val now_us : unit -> float
(** Wall-clock microseconds (also the clock {!Trace} stamps spans with). *)

module Snapshot : sig
  type hist = {
    count : int;
    sum : float;
    min : float;
    max : float;
    buckets : int array;  (** length {!n_buckets} *)
  }

  type t

  val n_buckets : int
  (** Bucket count of every histogram (64: power-of-two edges up to
      2{^63}, the last bucket clamps the rest). *)

  val take : unit -> t
  (** Merge all domain shards into one view, stamped with
      [Unix.gettimeofday]. *)

  val make :
    taken_at:float ->
    counters:(string * int * (int * int) list) list ->
    gauges:(string * float) list ->
    histograms:(string * hist) list ->
    meta:(string * (string * (string * string) list)) list ->
    t
  (** Rebuild a snapshot from its parts — the inverse of the entry
      accessors below; used by wire codecs. *)

  val taken_at : t -> float

  val counter_entries : t -> (string * int * (int * int) list) list
  (** Every registered counter: name, merged total, per-domain non-zero
      values (sorted by domain). *)

  val gauge_entries : t -> (string * float) list
  (** Gauges somebody has set or adjusted, with merged values. *)

  val histogram_entries : t -> (string * hist) list

  val meta_entries : t -> (string * (string * (string * string) list)) list
  (** [(full_name, (base, labels))] for every labeled metric registered so
      far, sorted by full name. *)

  val base_and_labels : t -> string -> string * (string * string) list
  (** Split a metric name into family base + label pairs; unlabeled names
      map to themselves with []. *)

  val counter_total : t -> string -> int
  (** Merged value of a counter, [0] when the name is unknown. *)

  val counter_by_domain : t -> string -> (int * int) list
  (** [(domain_id, value)] pairs, non-zero shards only, sorted by domain. *)

  val gauge_value : t -> string -> float
  (** Merged gauge level, [0.] when absent. *)

  val histogram_count : t -> string -> int
  val histogram_sum : t -> string -> float

  val histogram_stats : t -> string -> hist option

  val quantile : hist -> float -> float
  (** [quantile h q] estimates the [q]-quantile ([0 <= q <= 1]) from the
      power-of-two buckets: the upper edge of the bucket where the
      cumulative count crosses [q * count], clamped into [[min, max]].
      Resolution is a factor of two — good enough for p50/p99 dashboards.
      [0.] when the histogram is empty. *)

  val diff : newer:t -> older:t -> t
  (** Windowed view: per-metric [newer - older] with every counter total,
      per-domain value, histogram count/sum/bucket clamped at zero — a
      counter reset between the two snapshots (daemon restart) yields zero
      rates, never negative ones. Gauges, histogram min/max envelopes,
      [meta], and [taken_at] are taken from [newer] (gauges are levels,
      not totals). Divide by the snapshots' [taken_at] spread for rates. *)

  val is_empty : t -> bool
  (** [true] when nothing was recorded. *)

  val pp : Format.formatter -> t -> unit
  (** Human-readable report: merged counters with per-domain breakdowns,
      gauge levels, histogram summaries (count / mean / min / max). *)

  val to_json : ?meta:(string * string) list -> t -> string
  (** JSON object:
      [{"counters": {name: total},
        "counters_by_domain": {name: {domain: value}},
        "gauges": {name: value},
        "histograms": {name: {"count", "sum", "min", "max",
                              "buckets": {exponent: count}}}}]
      Keys are JSON-escaped (labeled names contain quotes). [?meta]
      prepends a ["meta"] object of [(key, raw_json_value)] pairs —
      daemon uptime, version — without touching the metric namespace. *)
end
