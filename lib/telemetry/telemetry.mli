(** Observability: named counters and histograms, sharded per domain.

    The registry is process-global. A metric is registered once (usually at
    module initialization) and returns a small integer handle; recording
    through the handle touches only the calling domain's shard — a plain
    array slot, no locks, no atomics — so enabled-mode overhead is a few
    nanoseconds and parallel regions never contend. Shards are merged when a
    {!Snapshot} is taken, which also preserves the per-domain breakdown
    (that is how per-lane pool utilization and per-domain cache hit rates
    fall out for free).

    Everything is gated on one global flag: while {!enabled} is [false]
    every recording call is a single load-and-branch and allocates nothing.
    Telemetry is strictly an observer — it never influences a numeric
    result; the differential harness and [@trace-check] run with it enabled
    and assert bit-identity against untelemetered runs.

    Snapshots read other domains' shards without synchronization. Counter
    cells are immediate values, so a racy read only risks missing the very
    latest increments of a still-running region; take snapshots outside
    parallel regions for exact numbers. *)

type counter
type histogram

val counter : string -> counter
(** [counter name] registers (or finds, by name) a monotonically increasing
    event count. Registration is idempotent: the same name always yields the
    same metric. *)

val histogram : string -> histogram
(** [histogram name] registers (or finds) a value distribution: count, sum,
    min, max, and power-of-two buckets (bucket [b] holds values in
    [(2{^b-1}, 2{^b}]], bucket 0 holds values [<= 1]). *)

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Global recording switch, off by default. Flip it outside parallel
    regions. *)

val incr : counter -> unit
val add : counter -> int -> unit
val observe : histogram -> float -> unit
(** No-ops while disabled. *)

val time : histogram -> (unit -> 'a) -> 'a
(** [time h f] runs [f] and observes its wall-clock duration in
    microseconds ([f] is just called when disabled). The duration is
    recorded even if [f] raises. *)

val reset : unit -> unit
(** Zero every shard of every metric (the registry itself survives). Call
    outside parallel regions. *)

val now_us : unit -> float
(** Wall-clock microseconds (also the clock {!Trace} stamps spans with). *)

module Snapshot : sig
  type t

  val take : unit -> t
  (** Merge all domain shards into one view. *)

  val counter_total : t -> string -> int
  (** Merged value of a counter, [0] when the name is unknown. *)

  val counter_by_domain : t -> string -> (int * int) list
  (** [(domain_id, value)] pairs, non-zero shards only, sorted by domain. *)

  val histogram_count : t -> string -> int
  val histogram_sum : t -> string -> float

  val is_empty : t -> bool
  (** [true] when nothing was recorded. *)

  val pp : Format.formatter -> t -> unit
  (** Human-readable report: merged counters with per-domain breakdowns,
      histogram summaries (count / mean / min / max). *)

  val to_json : t -> string
  (** JSON object:
      [{"counters": {name: total},
        "counters_by_domain": {name: {domain: value}},
        "histograms": {name: {"count", "sum", "min", "max",
                              "buckets": {exponent: count}}}}] *)
end
