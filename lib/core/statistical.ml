module Rng = Leakage_numeric.Rng
module Stats = Leakage_numeric.Stats
module Variation = Leakage_device.Variation
module Logic = Leakage_circuit.Logic
module Gate = Leakage_circuit.Gate
module Netlist = Leakage_circuit.Netlist
module Report = Leakage_spice.Leakage_report

type sample_totals = {
  with_loading : Report.components;
  no_loading : Report.components;
}

type result = {
  samples : sample_totals array;
  total_with_loading : float array;
  total_no_loading : float array;
}

(* Component-wise ratio of a die-shifted reference inverter to the nominal
   one, averaged over both input states. Captures how geometry and supply
   shifts move each mechanism without touching the per-gate threshold story
   (the die threshold shift is excluded here and folded into the per-gate
   exponent instead). *)
let die_scale lib (die : Variation.die) =
  let device = Library.device lib in
  let temp = Library.temp lib in
  let geometry_only = { die with Variation.dvth = 0.0 } in
  let shifted = Variation.apply_die device geometry_only in
  let reference dev v =
    Testbench.isolated_components ~device:dev ~temp Gate.Inv [| v |]
  in
  let ratio pick =
    let r v =
      let num = pick (reference shifted v) and den = pick (reference device v) in
      if den <= 0.0 then 1.0 else num /. den
    in
    0.5 *. (r Logic.Zero +. r Logic.One)
  in
  {
    Report.isub = ratio (fun c -> c.Report.isub);
    igate = ratio (fun c -> c.Report.igate);
    ibtbt = ratio (fun c -> c.Report.ibtbt);
  }

(* Fixed fan-out width for parallel sampling: slots depend only on the
   sample count, never the pool size. *)
let sample_chunk = 32

let scale_components (c : Report.components) (scale : Report.components)
    (factor : Report.components) =
  {
    Report.isub = c.Report.isub *. scale.Report.isub *. factor.Report.isub;
    igate = c.Report.igate *. scale.Report.igate *. factor.Report.igate;
    ibtbt = c.Report.ibtbt *. scale.Report.ibtbt *. factor.Report.ibtbt;
  }

let run ?(n_samples = 1000) ?(seed = 1) ?pool ~sigmas lib netlist pattern =
  if n_samples <= 0 then invalid_arg "Statistical.run: n_samples";
  let est = Estimator.estimate lib netlist pattern in
  (* per-gate nominal estimates and sensitivities, resolved once *)
  let rows =
    Array.map
      (fun (ge : Estimator.gate_estimate) ->
        let entry =
          Library.entry ~strength:ge.Estimator.gate.Netlist.strength lib
            ge.Estimator.gate.Netlist.kind ge.Estimator.vector
        in
        (ge.Estimator.with_loading, ge.Estimator.no_loading, entry))
      est.Estimator.per_gate
  in
  (* Every sample's stream is split off the root generator in sample order
     BEFORE any evaluation — the stream assignment is a function of (seed,
     sample index) alone, so fanning the evaluation out over a pool cannot
     change any sample and the result stays bit-identical at any pool
     size. *)
  let rng = Rng.create seed in
  let streams = Array.init n_samples (fun _ -> Rng.split rng) in
  let sample_at i =
    let srng = streams.(i) in
    let die = Variation.sample_die srng sigmas in
    let scale = die_scale lib die in
    let acc_loaded = ref Report.zero and acc_base = ref Report.zero in
    Array.iter
      (fun (loaded, base, entry) ->
        let dv = die.Variation.dvth +. Variation.sample_gate_vth srng sigmas in
        let factor = Characterize.vth_factor entry dv in
        acc_loaded :=
          Report.add !acc_loaded (scale_components loaded scale factor);
        acc_base := Report.add !acc_base (scale_components base scale factor))
      rows;
    { with_loading = !acc_loaded; no_loading = !acc_base }
  in
  let samples =
    match pool with
    | None -> Array.init n_samples sample_at
    | Some _ ->
      let chunks =
        Leakage_parallel.Pool.map_chunked ?pool ~chunk:sample_chunk n_samples
          (fun ~lo ~hi -> Array.init (hi - lo) (fun i -> sample_at (lo + i)))
      in
      Array.concat (Array.to_list chunks)
  in
  {
    samples;
    total_with_loading =
      Array.map (fun s -> Report.total s.with_loading) samples;
    total_no_loading = Array.map (fun s -> Report.total s.no_loading) samples;
  }

let summary r =
  (Stats.summarize r.total_with_loading, Stats.summarize r.total_no_loading)
