(** Analytic variance propagation: closed-form mean and σ of every leakage
    component under process variation, from one estimator pass — no
    sampling.

    Implements the statistical model [Statistical.run] samples, in closed
    form, working in LOG space (∂ln I/∂p) throughout. The per-gate
    threshold response is the clamped piecewise-linear table the
    Monte-Carlo interpolates, and its Gaussian moments are integrated
    against that very table — exactly, segment by segment, via the normal
    CDF — so the threshold axis carries no linearization error at all
    (only a fixed-node quadrature over the shared die shift, orders of
    magnitude below sampling noise). The reported first-order λ still
    comes from [Characterize.vth_log_slope]. The die-level geometry/supply
    response comes from the jet-valued compact model
    ([Model.components_jet]) differentiated on the reference inverter,
    curvature included, entering as quadratic-exponent Gaussian moments.
    The inter-die (fully correlated across gates) vs intra-die
    (independent per gate) split is exactly as [Variation.sigmas] defines
    it.

    Linearization is bounded where linearization is used: geometry axes
    whose compact-model log-response departs from the quadratic model by
    more than [lin_tol] at a 2σ displacement are flagged, and the affected
    component optionally falls back to the Monte-Carlo sampler. Gates
    whose tabulated threshold response bends away from its first-order
    line beyond the tolerance are counted in [flagged_gates] — a
    diagnostic on reading λ alone, not a fallback trigger, since the
    moments integrate the full table. *)

type component_stat = {
  mean : float;         (** expected leakage, A *)
  sigma : float;        (** total standard deviation, A *)
  sigma_inter : float;  (** inter-die part: all die axes, intra σ := 0 *)
  sigma_intra : float;  (** intra-die part: per-gate threshold axis alone *)
  from_mc : bool;       (** true when this stat came from the MC fallback *)
}
(** [sigma_inter]/[sigma_intra] are the σ of the model restricted with
    [Variation.inter_only] / [Variation.intra_only]; the mechanisms
    compose as σ² ≈ σ_inter² + σ_intra² (exactly, in the log-linear
    model's covariance). *)

type stats = {
  s_isub : component_stat;
  s_igate : component_stat;
  s_ibtbt : component_stat;
  s_total : component_stat;
}
(** [s_total] accounts for the full cross-component covariance (components
    share every variation axis), not a naive σ² sum. *)

type result = {
  loaded : stats;      (** loading-aware estimate *)
  baseline : stats;    (** traditional isolated-gate estimate *)
  flagged_isub : bool;
  flagged_igate : bool;
  flagged_ibtbt : bool;
  (** component linearization-error flags: the closed form for this
      component breached [lin_tol] somewhere *)
  flagged_gates : int;
  (** gates whose tabulated threshold response departs from its
      first-order line λ·δ by more than [lin_tol] at ±2σ_dv — where
      quoting λ alone would mislead (the moments themselves integrate the
      full table and are unaffected) *)
  groups : int;        (** distinct response classes the moment sums ran over *)
}

val flagged : result -> bool
(** Any component flagged. *)

val default_lin_tol : float
(** 0.05 log units: the dropped higher-order terms may move a component by
    at most ~5% at a 2σ displacement before it is flagged. *)

type row
(** Per-gate ingredients of the closed form: the gate's threshold response
    tables (with their λ/γ), and its loaded and isolated component
    values. *)

val expect_exp_table :
  xs:float array -> ys:float array -> mu:float -> s:float -> float
(** [E\[exp(T(v))\]] for [v ~ N(mu, s²)], where [T] interpolates [ys] over
    [xs] linearly and clamps to the end values outside the grid — the same
    response [Interp.eval1d] gives the sampler. Exact per segment via the
    normal CDF; the moment engine's innermost primitive, exposed for the
    test suite's quadrature/finite-difference oracles. [s = 0] degenerates
    to a point evaluation. *)

val row_of_entry :
  entry:Characterize.entry ->
  loaded:Leakage_spice.Leakage_report.components ->
  isolated:Leakage_spice.Leakage_report.components ->
  row
(** Build one gate's row from its characterization entry and its (loading-
    aware, isolated) component estimates — what [Estimator.estimate_fold]
    hands its callback. *)

val analyze :
  ?lin_tol:float ->
  sigmas:Leakage_device.Variation.sigmas ->
  device:Leakage_device.Params.t ->
  temp:float ->
  vdd:float ->
  row array ->
  result
(** Closed-form moments from per-gate rows (pure — no netlist access, no
    fallback; [from_mc] is always false here). The row array is not
    modified; the result depends only on the multiset of rows — gate
    numbering and array order never change any reported digit, which is
    what makes sigmas invariant under netlist renaming. Cost: O(n log n)
    to canonicalize plus moment sums over the K distinct response classes
    (gates sharing a characterization entry collapse into one class),
    each a fixed number of exact segment integrals and quadrature
    nodes. *)

val estimate_totals :
  ?passes:int ->
  ?pool:Leakage_parallel.Pool.t ->
  ?lin_tol:float ->
  ?fallback_samples:int ->
  ?fallback_seed:int ->
  sigmas:Leakage_device.Variation.sigmas ->
  Library.t ->
  Leakage_circuit.Netlist.t ->
  Leakage_circuit.Logic.vector ->
  Leakage_spice.Leakage_report.components
  * Leakage_spice.Leakage_report.components
  * result
(** [(with-loading totals, baseline totals, variance result)] under one
    pattern. The totals ride [Estimator.estimate_fold] and are bit-identical
    to [Estimator.estimate_totals]; the variance result adds one
    row-extraction sweep (fanned out over [pool] in fixed slots —
    bit-identical at any pool size) and the per-class moment assembly.

    When a linearization flag trips and [fallback_samples] > 0 (default
    2000), the flagged components — and the total column, which needs their
    covariances — are replaced by Monte-Carlo estimates
    ([Statistical.run] under full / inter-only / intra-only sigmas, seeded
    with [fallback_seed]) and marked [from_mc]. Pass [fallback_samples:0]
    to always report the closed form. *)
