(** Monte-Carlo analysis of loading under process variation (§5.3,
    Figs 10–11).

    Each sample draws a die-level shift (L, Tox, Vth, VDD) shared by every
    gate plus an independent within-die threshold shift per gate, then
    solves the full transistor-level testbench twice: once with the loading
    inverters attached and once without. The paper's Fig 10/11 experiment
    uses an inverter with 6 input-loading and 6 output-loading inverters. *)

type sample = {
  loaded : Leakage_spice.Leakage_report.components;
  unloaded : Leakage_spice.Leakage_report.components;
}
(** Leakage of the observed inverter for one process draw. *)

type config = {
  n_samples : int;
  seed : int;
  n_load_in : int;   (** sibling inverters on the input net *)
  n_load_out : int;  (** fanout inverters on the output net *)
  input_value : Leakage_circuit.Logic.value;
      (** logic state of the observed inverter's input *)
}

val paper_config : config
(** 10,000 samples, 6+6 loading inverters, input '0'. *)

val run :
  ?pool:Leakage_parallel.Pool.t ->
  ?config:config ->
  device:Leakage_device.Params.t ->
  temp:float ->
  sigmas:Leakage_device.Variation.sigmas ->
  unit ->
  sample array
(** Samples fan out across [pool] when given. Each sample index owns a
    pre-split RNG stream, so [run] returns a bit-identical array at any pool
    size (including none). *)

type spread_shift = {
  sigma_vth_inter : float;
  mean_shift_percent : float;  (** loading shift of the mean total leakage *)
  std_shift_percent : float;   (** loading shift of the total-leakage σ *)
}

val spread_vs_sigma :
  ?pool:Leakage_parallel.Pool.t ->
  ?config:config ->
  device:Leakage_device.Params.t ->
  temp:float ->
  base_sigmas:Leakage_device.Variation.sigmas ->
  sigma_vth_inter_values:float array ->
  unit ->
  spread_shift array
(** Fig 11: how the loading-induced shift of the mean and standard deviation
    of total leakage grows with inter-die threshold spread. *)

val component_arrays :
  sample array ->
  pick:(Leakage_spice.Leakage_report.components -> float) ->
  float array * float array
(** [(loaded, unloaded)] series of one component across samples, in amperes
    (feed to [Stats.histogram] for Fig 10). *)
