module Gate = Leakage_circuit.Gate
module Logic = Leakage_circuit.Logic
module Pool = Leakage_parallel.Pool
module Tm = Leakage_telemetry.Telemetry
module Trace = Leakage_telemetry.Trace

(* Sharded counters make the per-domain hit/miss split visible: each worker
   domain owns a cache, so a cold lane shows up as misses on its shard. *)
let m_hits = Tm.counter "library.hits"
let m_misses = Tm.counter "library.misses"
let m_adopted = Tm.counter "library.adopted"
let m_shared_hits = Tm.counter "library.shared_hits"
let m_published = Tm.counter "library.published"
let h_build_us = Tm.histogram "library.build_us"

type t = {
  grid : Characterize.grid_spec;
  device : Leakage_device.Params.t;
  temp : float;
  vdd : float;
  cache : (int, Characterize.entry) Hashtbl.t Domain.DLS.key;
      (* Per-domain caches: characterization is a pure function of the key,
         so domains may characterize the same entry redundantly but never
         disagree — and the hot lookup path stays lock-free. *)
  published : (int, Characterize.entry) Hashtbl.t;
  publish_mutex : Mutex.t;
      (* Publish-once snapshot shared by every domain. A domain that misses
         its own cache adopts from here before paying for a characterization
         (ms-scale DC solves), and publishes what it does build — so N
         domains warm each entry once, not N times. Only the miss path takes
         the mutex; cache hits stay lock-free. *)
}

let create ?(grid = Characterize.default_grid) ~device ~temp ?vdd () =
  {
    grid;
    device;
    temp;
    vdd = Option.value vdd ~default:device.Leakage_device.Params.vdd;
    cache = Domain.DLS.new_key (fun () -> Hashtbl.create 64);
    published = Hashtbl.create 64;
    publish_mutex = Mutex.create ();
  }

let device t = t.device
let temp t = t.temp
let vdd t = t.vdd
let cache t = Domain.DLS.get t.cache

(* The packed cache key allots bits [0,16) to the input vector, [16,26) to
   the strength bucket and [26,32) to the gate code. Each field is
   range-checked before packing: a silent overflow would alias distinct
   characterizations onto one key and return the wrong entry. *)
let max_strength = 1023.0 /. 4.0

let strength_in_range strength =
  strength > 0.0 && Float.round (strength *. 4.0) <= 1023.0

let strength_bucket strength =
  if not (strength > 0.0) then
    invalid_arg
      (Printf.sprintf "Library: strength %g must be positive" strength);
  let q = int_of_float (Float.round (strength *. 4.0)) in
  if q > 1023 then
    invalid_arg
      (Printf.sprintf
         "Library: strength %g exceeds the characterizable range (max %g)"
         strength max_strength);
  Stdlib.max 1 q

let key kind strength vector =
  let code = Gate.code kind in
  if code < 0 || code > 63 then
    invalid_arg
      (Printf.sprintf "Library: gate code %d for %s outside [0, 63]" code
         (Gate.name kind));
  if Array.length vector > 16 then
    invalid_arg
      (Printf.sprintf "Library: vector arity %d exceeds the packable 16"
         (Array.length vector));
  (code lsl 26) lor (strength_bucket strength lsl 16)
  lor Logic.int_of_vector vector

let characterize_key t kind strength vector =
  let quantized = float_of_int (strength_bucket strength) /. 4.0 in
  Characterize.characterize ~grid:t.grid ~strength:quantized ~device:t.device
    ~temp:t.temp ~vdd:t.vdd kind vector

let published_find t k =
  Mutex.lock t.publish_mutex;
  let e = Hashtbl.find_opt t.published k in
  Mutex.unlock t.publish_mutex;
  e

let publish t k e =
  Mutex.lock t.publish_mutex;
  if not (Hashtbl.mem t.published k) then begin
    Tm.incr m_published;
    Hashtbl.replace t.published k e
  end;
  Mutex.unlock t.publish_mutex

let entry ?(strength = 1.0) t kind vector =
  let cache = cache t in
  let k = key kind strength vector in
  match Hashtbl.find_opt cache k with
  | Some e ->
    Tm.incr m_hits;
    e
  | None ->
    (* This domain is cold on the key; another domain may already have paid
       for it. Two domains can still race to build the same entry (both miss
       before either publishes) — harmless, characterization is pure. *)
    (match published_find t k with
     | Some e ->
       Tm.incr m_shared_hits;
       Hashtbl.replace cache k e;
       e
     | None ->
       Tm.incr m_misses;
       let e =
         Trace.with_span ~cat:"library" "characterize"
           ~args:[ ("cell", Gate.name kind) ]
         @@ fun () ->
         Tm.time h_build_us (fun () -> characterize_key t kind strength vector)
       in
       Hashtbl.replace cache k e;
       publish t k e;
       e)

let precharacterize ?pool ?(kinds = Gate.all_kinds) t =
  let work =
    List.concat_map
      (fun kind ->
        List.map (fun vector -> (kind, vector))
          (Logic.all_vectors (Gate.arity kind)))
      kinds
    |> Array.of_list
  in
  let entries =
    Pool.map_array ?pool
      (fun (kind, vector) -> (key kind 1.0 vector, entry t kind vector))
      work
  in
  (* Workers filled their own domain caches; adopt every entry into the
     calling domain's cache so sequential code that runs next hits too. *)
  let cache = cache t in
  Array.iter
    (fun (k, e) ->
      if not (Hashtbl.mem cache k) then begin
        Tm.incr m_adopted;
        Hashtbl.replace cache k e
      end)
    entries

let entry_count t = Hashtbl.length (cache t)
