(** Statistical circuit-level leakage estimation under process variation.

    Extends the paper's Monte-Carlo analysis (§5.3, done there for a single
    inverter in SPICE) to full circuits at estimator speed: each sample
    draws a die-level parameter shift plus independent per-gate threshold
    shifts, and every gate's loading-aware estimate is scaled through its
    characterized threshold log-sensitivity, L → L·exp(s·ΔVth). Die-level
    threshold shifts enter the same way; die-level supply and geometry
    shifts are folded into a per-die scale factor calibrated against the
    library device. Validated against the transistor-level Monte Carlo in
    the test suite. *)

type sample_totals = {
  with_loading : Leakage_spice.Leakage_report.components;
  no_loading : Leakage_spice.Leakage_report.components;
}

type result = {
  samples : sample_totals array;
  total_with_loading : float array;  (** convenience series, A *)
  total_no_loading : float array;
}

val run :
  ?n_samples:int ->
  ?seed:int ->
  ?pool:Leakage_parallel.Pool.t ->
  sigmas:Leakage_device.Variation.sigmas ->
  Library.t ->
  Leakage_circuit.Netlist.t ->
  Leakage_circuit.Logic.vector ->
  result
(** Monte-Carlo estimate for one input pattern (default 1,000 samples,
    seed 1). Cost per sample is O(gates) table scalings — no DC solves.

    Every sample's RNG stream is split off the root generator by sample
    index before evaluation, so [pool] fans samples out without changing a
    single draw: results are bit-identical with or without a pool, at any
    pool size. *)

val sample_chunk : int
(** Fixed fan-out width of {!run}'s parallel sampling. Like
    [Estimator.avg_chunk], part of the bit-identity contract recorded in
    benchmark artifacts. *)

val die_scale :
  Library.t -> Leakage_device.Variation.die ->
  Leakage_spice.Leakage_report.components
(** Per-component multiplicative factor a die-level (L, Tox, VDD) shift
    applies to every gate, computed from single-inverter solves at the
    shifted corner (cached per call site; cheap relative to sampling).
    Exposed for tests. *)

val summary :
  result -> Leakage_numeric.Stats.summary * Leakage_numeric.Stats.summary
(** [(with-loading, no-loading)] summaries of the total-leakage samples. *)
