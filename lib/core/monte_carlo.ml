module Rng = Leakage_numeric.Rng
module Stats = Leakage_numeric.Stats
module Variation = Leakage_device.Variation
module Params = Leakage_device.Params
module Netlist = Leakage_circuit.Netlist
module Gate = Leakage_circuit.Gate
module Logic = Leakage_circuit.Logic
module Simulate = Leakage_circuit.Simulate
module Flatten = Leakage_spice.Flatten
module Dc_solver = Leakage_spice.Dc_solver
module Report = Leakage_spice.Leakage_report
module Pool = Leakage_parallel.Pool
module Tm = Leakage_telemetry.Telemetry
module Trace = Leakage_telemetry.Trace

let m_samples = Tm.counter "mc.samples"

type sample = {
  loaded : Report.components;
  unloaded : Report.components;
}

type config = {
  n_samples : int;
  seed : int;
  n_load_in : int;
  n_load_out : int;
  input_value : Logic.value;
}

let paper_config = {
  n_samples = 10_000;
  seed = 20050307;
  n_load_in = 6;
  n_load_out = 6;
  input_value = Logic.Zero;
}

(* Driver -> IN -> observed inverter -> OUT, with optional sibling loads on
   IN and fanout loads on OUT. Gate ids: 0 = driver, 1 = observed, then the
   input loads, then the output loads. *)
let bench ~n_load_in ~n_load_out =
  let b = Netlist.Builder.create "mc_bench" in
  let pi = Netlist.Builder.input ~name:"pi" b in
  let vin = Netlist.Builder.gate ~name:"in" b Gate.Inv [| pi |] in
  let vout = Netlist.Builder.gate ~name:"out" b Gate.Inv [| vin |] in
  for i = 1 to n_load_in do
    ignore (Netlist.Builder.gate ~name:(Printf.sprintf "li%d" i) b Gate.Inv [| vin |])
  done;
  for i = 1 to n_load_out do
    ignore (Netlist.Builder.gate ~name:(Printf.sprintf "lo%d" i) b Gate.Inv [| vout |])
  done;
  Netlist.Builder.mark_output b vout;
  Netlist.Builder.finish b

let observed_gate_id = 1

let solve_components netlist pattern ~die_device ~gate_shifts ~temp =
  let device_of_gate id = Variation.apply_gate die_device gate_shifts.(id) in
  let assignment = Simulate.run netlist pattern in
  let flat =
    Flatten.flatten ~device_of_gate ~device:die_device ~temp netlist assignment
  in
  let solution = Dc_solver.solve flat in
  let report = Report.of_solution flat solution.Dc_solver.voltages in
  report.Report.per_gate.(observed_gate_id)

let run ?pool ?(config = paper_config) ~device ~temp ~sigmas () =
  if config.n_samples <= 0 then invalid_arg "Monte_carlo.run: n_samples";
  let loaded_bench =
    bench ~n_load_in:config.n_load_in ~n_load_out:config.n_load_out
  in
  let bare_bench = bench ~n_load_in:0 ~n_load_out:0 in
  Netlist.warm loaded_bench;
  Netlist.warm bare_bench;
  (* Driver inverts: primary input is the complement of the observed
     inverter's input value. *)
  let pattern = [| Logic.lnot config.input_value |] in
  let n_gates = Netlist.gate_count loaded_bench in
  (* Pre-split one independent stream per sample, sequentially in index
     order, so sample [i] sees the same draws however the samples are later
     scheduled across domains. *)
  let rng = Rng.create config.seed in
  let streams = Array.make config.n_samples rng in
  for i = 0 to config.n_samples - 1 do
    streams.(i) <- Rng.split rng
  done;
  Trace.with_span ~cat:"mc" "mc.run"
    ~args:[ ("samples", string_of_int config.n_samples) ]
  @@ fun () ->
  Pool.map ?pool config.n_samples (fun i ->
      (* the per-domain shard split of this counter is the lane utilization *)
      Tm.incr m_samples;
      let sample_rng = streams.(i) in
      let die = Variation.sample_die sample_rng sigmas in
      let die_device = Variation.apply_die device die in
      let gate_shifts =
        Array.init n_gates (fun _ ->
            Variation.sample_gate_vth sample_rng sigmas)
      in
      let loaded =
        solve_components loaded_bench pattern ~die_device ~gate_shifts ~temp
      in
      let unloaded =
        solve_components bare_bench pattern ~die_device ~gate_shifts ~temp
      in
      { loaded; unloaded })

type spread_shift = {
  sigma_vth_inter : float;
  mean_shift_percent : float;
  std_shift_percent : float;
}

let component_arrays samples ~pick =
  ( Array.map (fun s -> pick s.loaded) samples,
    Array.map (fun s -> pick s.unloaded) samples )

let spread_vs_sigma ?pool ?(config = paper_config) ~device ~temp ~base_sigmas
    ~sigma_vth_inter_values () =
  Array.map
    (fun sigma ->
      let sigmas = Variation.with_vth_inter base_sigmas sigma in
      let samples = run ?pool ~config ~device ~temp ~sigmas () in
      let loaded, unloaded = component_arrays samples ~pick:Report.total in
      let pct base v = (v -. base) /. base *. 100.0 in
      {
        sigma_vth_inter = sigma;
        mean_shift_percent = pct (Stats.mean unloaded) (Stats.mean loaded);
        std_shift_percent = pct (Stats.std unloaded) (Stats.std loaded);
      })
    sigma_vth_inter_values
