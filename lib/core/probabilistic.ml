module Netlist = Leakage_circuit.Netlist
module Gate = Leakage_circuit.Gate
module Logic = Leakage_circuit.Logic
module Topo = Leakage_circuit.Topo
module Report = Leakage_spice.Leakage_report

let gate_state_distribution kind pin_probs =
  let arity = Gate.arity kind in
  if Array.length pin_probs <> arity then
    invalid_arg "Probabilistic.gate_state_distribution: arity mismatch";
  List.map
    (fun vector ->
      let p = ref 1.0 in
      Array.iteri
        (fun i v ->
          p := !p *. (match v with
                      | Logic.One -> pin_probs.(i)
                      | Logic.Zero -> 1.0 -. pin_probs.(i)))
        vector;
      (vector, !p))
    (Logic.all_vectors arity)

let propagate ?input_probability netlist =
  let pis = Netlist.inputs netlist in
  let input_probability =
    match input_probability with
    | Some p ->
      if Array.length p <> Array.length pis then
        invalid_arg "Probabilistic.propagate: input probability size mismatch";
      Array.iter
        (fun v ->
          if v < 0.0 || v > 1.0 then
            invalid_arg "Probabilistic.propagate: probability outside [0,1]")
        p;
      p
    | None -> Array.make (Array.length pis) 0.5
  in
  let prob = Array.make (Netlist.net_count netlist) 0.0 in
  Array.iteri (fun i net -> prob.(net) <- input_probability.(i)) pis;
  Array.iter
    (fun g ->
      let kind = Netlist.gate_kind netlist g in
      let pin_probs =
        Array.init (Netlist.gate_arity netlist g) (fun p ->
            prob.(Netlist.gate_pin netlist g p))
      in
      let p_one =
        List.fold_left
          (fun acc (vector, p) ->
            if Logic.to_bool (Gate.eval_logic kind vector) then acc +. p
            else acc)
          0.0
          (gate_state_distribution kind pin_probs)
      in
      prob.(Netlist.gate_out netlist g) <- p_one)
    (Netlist.topo_ids netlist);
  prob

type expectation = {
  totals : Report.components;
  baseline_totals : Report.components;
  net_probability : float array;
  net_injection : float array;
}

let expected_leakage ?input_probability lib netlist =
  let prob = propagate ?input_probability netlist in
  let n_gates = Netlist.gate_count netlist in
  (* per gate: the state distribution and its characterization entries *)
  let distributions =
    Array.init n_gates (fun g ->
        let kind = Netlist.gate_kind netlist g in
        let pin_probs =
          Array.init (Netlist.gate_arity netlist g) (fun p ->
              prob.(Netlist.gate_pin netlist g p))
        in
        gate_state_distribution kind pin_probs
        |> List.filter (fun (_, p) -> p > 1e-12)
        |> List.map (fun (vector, p) ->
               ( p,
                 Library.entry
                   ~strength:(Netlist.gate_strength netlist g)
                   lib kind vector )))
  in
  (* expected injection per net from the state-weighted pin currents *)
  let net_injection = Array.make (Netlist.net_count netlist) 0.0 in
  let expected_pin g_id pin =
    List.fold_left
      (fun acc (p, (e : Characterize.entry)) ->
        acc +. (p *. e.Characterize.pin_injection.(pin)))
      0.0 distributions.(g_id)
  in
  for g = 0 to n_gates - 1 do
    Netlist.iter_pins netlist g (fun pin net ->
        net_injection.(net) <- net_injection.(net) +. expected_pin g pin)
  done;
  let is_pi_net =
    let flags = Array.make (Netlist.net_count netlist) true in
    for g = 0 to n_gates - 1 do
      flags.(Netlist.gate_out netlist g) <- false
    done;
    flags
  in
  let totals = ref Report.zero and baseline = ref Report.zero in
  for g = 0 to n_gates - 1 do
    List.iter
      (fun (p, (e : Characterize.entry)) ->
        let loading_in =
          Array.init
            (Netlist.gate_arity netlist g)
            (fun pin ->
              let net = Netlist.gate_pin netlist g pin in
              if is_pi_net.(net) then -.e.Characterize.pin_injection.(pin)
              else net_injection.(net) -. e.Characterize.pin_injection.(pin))
        in
        let loading_out = net_injection.(Netlist.gate_out netlist g) in
        let with_loading = Characterize.apply e ~loading_in ~loading_out in
        totals := Report.add !totals (Report.scale p with_loading);
        baseline :=
          Report.add !baseline (Report.scale p e.Characterize.nominal_isolated))
      distributions.(g)
  done;
  {
    totals = !totals;
    baseline_totals = !baseline;
    net_probability = prob;
    net_injection;
  }
