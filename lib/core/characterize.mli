(** Loading-aware gate characterization: the lookup tables behind the Fig-13
    estimator ("leakage components of different gate type, size, loading").

    For every (cell kind, input vector) the characterizer records the
    nominal leakage, the per-pin current the cell injects into its input
    nets, and — per input pin and for the output — the leakage-component
    shift as a function of signed injected loading current, sampled on a
    regular grid and interpolated linearly at estimation time.

    Positive injected current raises the net voltage. On a net at logic '0'
    loading gates inject positive current (their on-PMOS tunneling), on a
    net at '1' negative (their on-NMOS draws gate current), so each state
    exercises one half of the signed axis. *)

type table = {
  d_isub : Leakage_numeric.Interp.grid1d;
  d_igate : Leakage_numeric.Interp.grid1d;
  d_ibtbt : Leakage_numeric.Interp.grid1d;
}
(** Component shifts (A) vs injected current (A), relative to the
    zero-injection testbench solution. *)

type entry = {
  kind : Leakage_circuit.Gate.kind;
  strength : float;  (** drive strength the entry was characterized at *)
  vector : Leakage_circuit.Logic.vector;
  nominal_isolated : Leakage_spice.Leakage_report.components;
  (** cell alone with ideal inputs — the traditional no-loading model *)
  nominal_driven : Leakage_spice.Leakage_report.components;
  (** cell in the reference-driver testbench, zero injection — the base the
      delta tables are relative to *)
  pin_injection : float array;
  (** per input pin: current (A) this cell injects into the attached net at
      the nominal point; what fanout gates contribute to a net's loading *)
  pin_response : Leakage_numeric.Interp.grid1d array;
  (** per input pin: the same injected current as a function of the external
      loading current on that pin's net. At zero loading it equals
      [pin_injection]; the multi-pass estimator iterates this map to
      propagate loading beyond one level (§6's "propagation of loading
      effect", which the paper argues — and the ablation bench confirms —
      converges after one level). *)
  delta_in : table array;  (** one per input pin *)
  delta_out : table;
  vth_log_factor : table;
  (** per component: ln(L(ΔVth)/L(0)) of the driven nominal, tabulated over a
      rigid threshold shift of the cell (±150 mV grid — beyond ±3σ of the
      paper's variation). The statistical estimator multiplies a gate's
      estimate by exp of the interpolated value; the grid clamps at its
      edges, which keeps extreme samples physical where an analytic
      exponential extrapolation would explode (series stacks change regime
      under large shifts). *)
}

val vth_factor :
  entry -> float -> Leakage_spice.Leakage_report.components
(** Per-component multiplicative factor at a threshold shift (V). *)

val vth_log_slope : entry -> Leakage_spice.Leakage_report.components
(** Per-component slope of [vth_log_factor] at zero shift (1/V) — the λ of
    the analytic variance propagation, i.e. ∂ln(I)/∂ΔVth of exactly the
    table the statistical sampler interpolates. Central difference across
    the grid nodes bracketing zero. *)

val vth_log_curvature : entry -> Leakage_spice.Leakage_report.components
(** Per-component second difference of [vth_log_factor] at zero shift
    (1/V²) — the curvature γ the linearization-error bound tests against
    its tolerance. *)

type grid_spec = {
  max_current : float;  (** grid spans [-max_current, +max_current], A *)
  points : int;
}

val default_grid : grid_spec
(** ±3 µA, 21 points — covering the paper's 0–3000 nA sweeps. *)

val characterize :
  ?grid:grid_spec ->
  ?strength:float ->
  device:Leakage_device.Params.t ->
  temp:float ->
  ?vdd:float ->
  Leakage_circuit.Gate.kind ->
  Leakage_circuit.Logic.vector ->
  entry

val eval_table :
  table -> float -> Leakage_spice.Leakage_report.components
(** Interpolated component shift at a signed injected current. *)

val apply :
  entry -> loading_in:float array -> loading_out:float ->
  Leakage_spice.Leakage_report.components
(** Estimated leakage under the given signed loading currents:
    [nominal_driven + Σ_k delta_in_k(loading_in.(k)) + delta_out loading_out]
    (per-pin superposition, the paper's eq. 5). *)
