module Logic = Leakage_circuit.Logic
module Report = Leakage_spice.Leakage_report
module Physics = Leakage_device.Physics
module Tm = Leakage_telemetry.Telemetry
module Trace = Leakage_telemetry.Trace

let m_sweep_points = Tm.counter "loading.sweep_points"

type ld_point = {
  current : float;
  ld_sub : float;
  ld_gate : float;
  ld_btbt : float;
  ld_total : float;
}

let default_currents = Array.init 13 (fun i -> float_of_int i *. 250.0e-9)

(* Loading gates inject toward the opposite rail: into nets at '0'
   (on-PMOS tunneling of the loads) and out of nets at '1'. *)
let signed_current magnitude logic_value =
  match logic_value with
  | Logic.Zero -> magnitude
  | Logic.One -> -.magnitude

let percent ~base v =
  if base = 0.0 then 0.0 else (v -. base) /. base *. 100.0

let ld_of ~current ~nominal loaded =
  {
    current;
    ld_sub = percent ~base:nominal.Report.isub loaded.Report.isub;
    ld_gate = percent ~base:nominal.Report.igate loaded.Report.igate;
    ld_btbt = percent ~base:nominal.Report.ibtbt loaded.Report.ibtbt;
    ld_total =
      percent ~base:(Report.total nominal) (Report.total loaded);
  }

let sweep ~device ~temp ?vdd ~currents ~inject kind vector =
  Trace.with_span ~cat:"loading" "sweep"
    ~args:[ ("cell", Leakage_circuit.Gate.name kind) ]
  @@ fun () ->
  Tm.add m_sweep_points (Array.length currents);
  let tb = Testbench.make kind vector in
  let nominal =
    Testbench.dut_components (Testbench.solve ~device ~temp ?vdd tb)
  in
  Array.map
    (fun magnitude ->
      let injections = inject tb magnitude in
      let loaded =
        Testbench.dut_components
          (Testbench.solve ~injections ~device ~temp ?vdd tb)
      in
      ld_of ~current:magnitude ~nominal loaded)
    currents

let input_sweep ~device ~temp ?vdd ?(pin = 0) ?(currents = default_currents)
    kind vector =
  let arity = Leakage_circuit.Gate.arity kind in
  if pin < 0 || pin >= arity then invalid_arg "Loading.input_sweep: bad pin";
  let inject (tb : Testbench.t) magnitude =
    [ (tb.pin_nets.(pin), signed_current magnitude vector.(pin)) ]
  in
  sweep ~device ~temp ?vdd ~currents ~inject kind vector

let output_sweep ~device ~temp ?vdd ?(currents = default_currents) kind vector =
  let out_value = Leakage_circuit.Gate.eval_logic kind vector in
  let inject (tb : Testbench.t) magnitude =
    [ (tb.out_net, signed_current magnitude out_value) ]
  in
  sweep ~device ~temp ?vdd ~currents ~inject kind vector

let combined ~device ~temp ?vdd ~input_current ~output_current kind vector =
  let tb = Testbench.make kind vector in
  let nominal =
    Testbench.dut_components (Testbench.solve ~device ~temp ?vdd tb)
  in
  let out_value = Leakage_circuit.Gate.eval_logic kind vector in
  let injections =
    (tb.out_net, signed_current output_current out_value)
    :: Array.to_list
         (Array.mapi
            (fun pin net -> (net, signed_current input_current vector.(pin)))
            tb.pin_nets)
  in
  let loaded =
    Testbench.dut_components (Testbench.solve ~injections ~device ~temp ?vdd tb)
  in
  ld_of ~current:input_current ~nominal loaded

(* Fig 9 follows eq. (3)'s normalization literally: L_NOM is the cell in
   isolation (ideal rail inputs). The loaded case then includes what the
   reference driver itself injects into the input net — the driver's
   off-device subthreshold and junction currents — which is precisely the
   temperature-dependent mechanism §5.2 describes ("the contribution of the
   subthreshold and the junction current of the PMOS of the inverter D to
   node IN increases at a higher temperature"). *)
let temperature_sweep ~device ?vdd ~temps_celsius ~input_current
    ~output_current kind vector =
  let out_value = Leakage_circuit.Gate.eval_logic kind vector in
  let tb = Testbench.make kind vector in
  Array.map
    (fun celsius ->
      let temp = Physics.celsius_to_kelvin celsius in
      let nominal = Testbench.isolated_components ~device ~temp ?vdd kind vector in
      let injections =
        (tb.Testbench.out_net, signed_current output_current out_value)
        :: Array.to_list
             (Array.mapi
                (fun pin net -> (net, signed_current input_current vector.(pin)))
                tb.Testbench.pin_nets)
      in
      let loaded =
        Testbench.dut_components
          (Testbench.solve ~injections ~device ~temp ?vdd tb)
      in
      (celsius, ld_of ~current:input_current ~nominal loaded))
    temps_celsius
