module Interp = Leakage_numeric.Interp
module Gate = Leakage_circuit.Gate
module Logic = Leakage_circuit.Logic
module Report = Leakage_spice.Leakage_report

type table = {
  d_isub : Interp.grid1d;
  d_igate : Interp.grid1d;
  d_ibtbt : Interp.grid1d;
}

type entry = {
  kind : Gate.kind;
  strength : float;
  vector : Logic.vector;
  nominal_isolated : Report.components;
  nominal_driven : Report.components;
  pin_injection : float array;
  pin_response : Interp.grid1d array;
  delta_in : table array;
  delta_out : table;
  vth_log_factor : table;
}

type grid_spec = {
  max_current : float;
  points : int;
}

let default_grid = { max_current = 3.0e-6; points = 21 }

let table_of_samples xs samples base =
  let pick f = Array.map (fun (c : Report.components) -> f c) samples in
  let centered f base_v = Array.map (fun v -> v -. base_v) (pick f) in
  {
    d_isub =
      Interp.grid1d ~xs ~ys:(centered (fun c -> c.Report.isub) base.Report.isub);
    d_igate =
      Interp.grid1d ~xs ~ys:(centered (fun c -> c.Report.igate) base.Report.igate);
    d_ibtbt =
      Interp.grid1d ~xs ~ys:(centered (fun c -> c.Report.ibtbt) base.Report.ibtbt);
  }

let characterize ?(grid = default_grid) ?(strength = 1.0) ~device ~temp ?vdd
    kind vector =
  if grid.points < 2 then invalid_arg "Characterize: grid needs >= 2 points";
  if grid.max_current <= 0.0 then
    invalid_arg "Characterize: max_current must be positive";
  let tb = Testbench.make ~strength kind vector in
  let solve_with injections =
    Testbench.dut_components (Testbench.solve ~injections ~device ~temp ?vdd tb)
  in
  let nominal_solved = Testbench.solve ~device ~temp ?vdd tb in
  let nominal_driven = Testbench.dut_components nominal_solved in
  let nominal_isolated =
    Testbench.isolated_components ~strength ~device ~temp ?vdd kind vector
  in
  let arity = Gate.arity kind in
  let pin_injection =
    Array.init arity (Testbench.dut_pin_injection nominal_solved)
  in
  let xs =
    Interp.linspace (-.grid.max_current) grid.max_current grid.points
  in
  let sweep net =
    Array.map (fun amps -> solve_with [ (net, amps) ]) xs
  in
  (* For input-pin sweeps also record the cell's own pin current at each
     grid point: that is the pin's loading contribution as seen by its
     neighbours, needed by the multi-pass estimator. *)
  let pin_sweeps =
    Array.init arity (fun pin ->
        Array.map
          (fun amps ->
            let solved =
              Testbench.solve
                ~injections:[ (tb.Testbench.pin_nets.(pin), amps) ]
                ~device ~temp ?vdd tb
            in
            ( Testbench.dut_components solved,
              Testbench.dut_pin_injection solved pin ))
          xs)
  in
  let delta_in =
    Array.map
      (fun samples -> table_of_samples xs (Array.map fst samples) nominal_driven)
      pin_sweeps
  in
  let pin_response =
    Array.map
      (fun samples -> Interp.grid1d ~xs ~ys:(Array.map snd samples))
      pin_sweeps
  in
  let delta_out =
    table_of_samples xs (sweep tb.Testbench.out_net) nominal_driven
  in
  (* Threshold response of the driven nominal, tabulated: only the cell
     under test is shifted (its drivers keep nominal thresholds), matching
     how the statistical estimator perturbs gates one by one. Stored as
     per-component log factors so interpolation happens in the exponent,
     where the response is closest to linear. *)
  let vth_log_factor =
    let shifted dv =
      let device_of_gate id =
        if id = tb.Testbench.dut_gate then
          Leakage_device.Params.with_vth_shift device dv
        else device
      in
      let assignment =
        Leakage_circuit.Simulate.run tb.Testbench.netlist tb.Testbench.pattern
      in
      let flat =
        Leakage_spice.Flatten.flatten ~device_of_gate ~device ~temp ?vdd
          tb.Testbench.netlist assignment
      in
      let solution = Leakage_spice.Dc_solver.solve flat in
      (Leakage_spice.Leakage_report.of_solution flat
         solution.Leakage_spice.Dc_solver.voltages)
        .Leakage_spice.Leakage_report.per_gate.(tb.Testbench.dut_gate)
    in
    let dvs = Interp.linspace (-0.15) 0.15 9 in
    let samples = Array.map shifted dvs in
    let log_ratio pick =
      let base = pick nominal_driven in
      Array.map
        (fun c ->
          let v = pick c in
          if v <= 0.0 || base <= 0.0 then 0.0 else log (v /. base))
        samples
    in
    {
      d_isub = Interp.grid1d ~xs:dvs ~ys:(log_ratio (fun c -> c.Report.isub));
      d_igate = Interp.grid1d ~xs:dvs ~ys:(log_ratio (fun c -> c.Report.igate));
      d_ibtbt = Interp.grid1d ~xs:dvs ~ys:(log_ratio (fun c -> c.Report.ibtbt));
    }
  in
  { kind; strength; vector; nominal_isolated; nominal_driven; pin_injection;
    pin_response; delta_in; delta_out; vth_log_factor }

(* Slope / curvature of a tabulated log-response at dv = 0, taken from the
   grid nodes bracketing zero (the ±150 mV axis has an odd point count, so
   zero is itself a node). These are the λ (first-order log-sensitivity) and
   γ (second-difference curvature) the analytic variance propagation uses:
   the slope of the very table the statistical sampler interpolates, so the
   analytic model differentiates exactly what the MC samples. *)
let node_slope_curvature (g : Interp.grid1d) =
  let xs = Interp.grid1d_xs g and ys = Interp.grid1d_ys g in
  let n = Array.length xs in
  let i0 = ref 0 in
  for i = 1 to n - 1 do
    if Float.abs xs.(i) < Float.abs xs.(!i0) then i0 := i
  done;
  let i0 = Stdlib.max 1 (Stdlib.min (n - 2) !i0) in
  let h_lo = xs.(i0) -. xs.(i0 - 1) and h_hi = xs.(i0 + 1) -. xs.(i0) in
  let slope = (ys.(i0 + 1) -. ys.(i0 - 1)) /. (h_hi +. h_lo) in
  let curvature =
    2.0
    *. (((ys.(i0 + 1) -. ys.(i0)) /. h_hi) -. ((ys.(i0) -. ys.(i0 - 1)) /. h_lo))
    /. (h_hi +. h_lo)
  in
  (slope, curvature)

let vth_log_slope entry =
  {
    Report.isub = fst (node_slope_curvature entry.vth_log_factor.d_isub);
    igate = fst (node_slope_curvature entry.vth_log_factor.d_igate);
    ibtbt = fst (node_slope_curvature entry.vth_log_factor.d_ibtbt);
  }

let vth_log_curvature entry =
  {
    Report.isub = snd (node_slope_curvature entry.vth_log_factor.d_isub);
    igate = snd (node_slope_curvature entry.vth_log_factor.d_igate);
    ibtbt = snd (node_slope_curvature entry.vth_log_factor.d_ibtbt);
  }

let vth_factor entry dv =
  {
    Report.isub = exp (Interp.eval1d entry.vth_log_factor.d_isub dv);
    igate = exp (Interp.eval1d entry.vth_log_factor.d_igate dv);
    ibtbt = exp (Interp.eval1d entry.vth_log_factor.d_ibtbt dv);
  }

let eval_table t amps =
  {
    Report.isub = Interp.eval1d t.d_isub amps;
    igate = Interp.eval1d t.d_igate amps;
    ibtbt = Interp.eval1d t.d_ibtbt amps;
  }

let apply entry ~loading_in ~loading_out =
  if Array.length loading_in <> Array.length entry.delta_in then
    invalid_arg "Characterize.apply: loading_in arity mismatch";
  let acc = ref entry.nominal_driven in
  Array.iteri
    (fun pin amps -> acc := Report.add !acc (eval_table entry.delta_in.(pin) amps))
    loading_in;
  let withloading = Report.add !acc (eval_table entry.delta_out loading_out) in
  (* Component shifts can be negative; clamp pathological extrapolation so a
     leakage estimate never goes below zero. *)
  {
    Report.isub = Float.max 0.0 withloading.Report.isub;
    igate = Float.max 0.0 withloading.Report.igate;
    ibtbt = Float.max 0.0 withloading.Report.ibtbt;
  }
