(* Analytic variance propagation: MC-quality mean/σ bars in one estimator
   pass (ROADMAP "analytic variance propagation"; the statistical model is
   the one [Statistical.run] samples).

   The sampled model for one circuit instance and component c is

     T_c  =  S_c(δl, δtox, δvdd) · Σ_g L_{g,c} · exp(l_{g,c}(x + y_g))

   where S_c is the die-scale factor (geometry/supply response of the
   reference inverter, shared by every gate), l_{g,c} the gate's tabulated
   threshold log-response, x ~ N(0, σ_vth_inter) the die threshold shift
   (shared — fully correlated across gates) and y_g ~ N(0, σ_vth_intra)
   per-gate and independent: exactly the inter/intra split
   [Variation.sigmas] defines.

   Sensitivities are taken in LOG space — ∂ln I/∂p — because the dominant
   subthreshold response is exponential (λ·σ ≈ 0.9 at the paper's sigmas):
   a linear-space first-order propagation would bias σ by tens of percent.
   Two regimes get two treatments:

   - threshold: l_{g,c} is the clamped piecewise-linear vth_log_factor
     table the sampler interpolates, and its Gaussian expectations are
     integrated against that very table — exactly, per segment, via the
     normal CDF (∫ e^{α+βv} φ(v) dv has a closed form on every linear
     piece, and the clamped tails are constants). A pure log-linear λ
     model is measurably wrong here: the table bends and clamps within
     ±3σ of the paper's threshold spread, which biases σ_isub by ~25%
     and lets a single steep-slope outlier entry blow the pair moments
     up through e^{(λ_j+λ_k)²σx²/2}. Integrating the clamped table keeps
     every moment finite and matches the sampler by construction. The
     per-gate λ ([Characterize.vth_log_slope]) is still reported as the
     first-order sensitivity and validated against finite differences.
   - geometry/supply: λ and curvature γ of ln S_c per axis from the
     jet-valued compact model ([Model.components_jet]) evaluated on the
     rail-biased reference inverter — closed-form derivatives of the
     device equations, validated against finite differences by the test
     suite. These enter as independent quadratic-exponent Gaussian
     moments E[exp(aδ + bδ²/2)] = e^{a²σ²/2(1−bσ²)}/√(1−bσ²).

   Moments: gates are grouped by their response tables (gates sharing a
   characterization entry are statistically identical), giving sums over
   K ≪ gates groups with per-group weights A_k^c = Σ_g L_{g,c} and
   B_k^{cd} = Σ_g L_{g,c}·L_{g,d}:

     E[U_c]      = Σ_k A_k^c · E[e^{l_k,c(v)}],        v ~ N(0, σx²+σy²)
     E[U_c U_d]  = E_x[(Σ_j A_j^c f_j^c(x)) (Σ_k A_k^d f_k^d(x))]
                   + Σ_k B_k^{cd} · (E[e^{(l_c+l_d)(v)}] − E_x[f^c f^d])

   where f_k^c(x) = E_y[e^{l(x+y)}] is the per-gate factor conditioned on
   the shared die shift x (again an exact segment integral, in σy). The
   outer E_x is a fixed-node composite-Simpson quadrature when both
   spreads are live; when σy = 0 it runs on the raw clamped table with a
   denser grid, and when σx = 0 the gates decouple and everything is
   closed-form. The B term swaps the quadrature's independent-y diagonal
   for the exact shared-y summed-table integral — the correction that
   re-ties y_g to itself when both factors come from one gate.

   Linearization is checked where linearization is actually used: per
   geometry axis, the quadratic model is compared against the true
   compact-model log-response at ±2σ; where the check (or a diverging
   quadratic moment) trips, the component is flagged and (optionally)
   falls back to the MC sampler. The threshold axis needs no fallback —
   it is integrated exactly — but gates whose tabulated response departs
   from its own first-order line by more than the tolerance at ±2σ_dv are
   counted in [flagged_gates], marking where the reported λ alone would
   mislead. *)

module Params = Leakage_device.Params
module Model = Leakage_device.Model
module Variation = Leakage_device.Variation
module Jet = Leakage_numeric.Jet
module Logic = Leakage_circuit.Logic
module Netlist = Leakage_circuit.Netlist
module Report = Leakage_spice.Leakage_report
module Pool = Leakage_parallel.Pool

let default_lin_tol = 0.05

(* ------------------------------------------------------------- results *)

type component_stat = {
  mean : float;
  sigma : float;
  sigma_inter : float;
  sigma_intra : float;
  from_mc : bool;
}

type stats = {
  s_isub : component_stat;
  s_igate : component_stat;
  s_ibtbt : component_stat;
  s_total : component_stat;
}

type result = {
  loaded : stats;
  baseline : stats;
  flagged_isub : bool;
  flagged_igate : bool;
  flagged_ibtbt : bool;
  flagged_gates : int;
  groups : int;
}

let flagged r = r.flagged_isub || r.flagged_igate || r.flagged_ibtbt

(* ------------------------------------ geometry (die-scale) sensitivities *)

(* [Statistical.die_scale] solves the strength-1 reference inverter
   (Wn = 1, Wp = 2 — [Gate.nmos_width]/[pmos_width] for Stage_inv) at both
   input states and averages the component ratios. Here the same cell is
   evaluated in closed form at rail bias: the solver's output droop is
   microvolts and cancels to first order in the ratio. *)
let ref_wn = 1.0
let ref_wp = 2.0

type axis = Axis_l | Axis_tox | Axis_vdd

let axes = [| Axis_l; Axis_tox; Axis_vdd |]

(* (isub, igate, ibtbt) jets of the rail-biased inverter at one input
   state, seeded on one die axis. *)
let state_jets ~(device : Params.t) ~temp ~vdd ~axis ~input_one =
  let var_if cond v = if cond then Jet.var v else Jet.const v in
  let length = var_if (axis = Axis_l) device.Params.length in
  let tox = var_if (axis = Axis_tox) device.Params.tox in
  let rail = var_if (axis = Axis_vdd) vdd in
  let gnd = Jet.const 0.0 in
  let dvth = Jet.const 0.0 in
  let nbias, pbias =
    if input_one then
      ( { Model.jvg = rail; jvd = gnd; jvs = gnd; jvb = gnd },
        { Model.jvg = rail; jvd = gnd; jvs = rail; jvb = rail } )
    else
      ( { Model.jvg = gnd; jvd = rail; jvs = gnd; jvb = gnd },
        { Model.jvg = gnd; jvd = rail; jvs = rail; jvb = rail } )
  in
  let n =
    Model.components_jet device Params.Nmos ~w:ref_wn ~temp ~length ~tox
      ~dvth nbias
  in
  let p =
    Model.components_jet device Params.Pmos ~w:ref_wp ~temp ~length ~tox
      ~dvth pbias
  in
  (* Off-network transistor at the output carries the subthreshold story:
     input 0 → output high → NMOS off; input 1 → PMOS off. *)
  let isub =
    if input_one then Model.channel_leakage_jet p
    else Model.channel_leakage_jet n
  in
  ( isub,
    Jet.add (Model.gate_leakage_jet n) (Model.gate_leakage_jet p),
    Jet.add (Model.junction_leakage_jet n) (Model.junction_leakage_jet p) )

(* Plain-valued inverter components with the axis displaced by [delta] —
   the truth the linearization check compares against. *)
let state_values ~(device : Params.t) ~temp ~vdd ~input_one =
  let nbias, pbias =
    if input_one then
      ( { Model.vg = vdd; vd = 0.0; vs = 0.0; vb = 0.0 },
        { Model.vg = vdd; vd = 0.0; vs = vdd; vb = vdd } )
    else
      ( { Model.vg = 0.0; vd = vdd; vs = 0.0; vb = 0.0 },
        { Model.vg = 0.0; vd = vdd; vs = vdd; vb = vdd } )
  in
  let n = Model.components device Params.Nmos ~w:ref_wn ~temp nbias in
  let p = Model.components device Params.Pmos ~w:ref_wp ~temp pbias in
  let isub =
    if input_one then Model.channel_leakage p else Model.channel_leakage n
  in
  ( isub,
    Model.gate_leakage n +. Model.gate_leakage p,
    Model.junction_leakage n +. Model.junction_leakage p )

let displaced ~(device : Params.t) ~vdd axis delta =
  match axis with
  | Axis_l -> (Params.with_length device (device.Params.length +. delta), vdd)
  | Axis_tox -> (Params.with_tox device (device.Params.tox +. delta), vdd)
  | Axis_vdd -> (device, vdd +. delta)

type geom = {
  g_lam : float array array;  (* axis (3) × component (3): ∂ln S_c/∂δ *)
  g_gam : float array array;  (* axis × component: log-curvature of S_c *)
  g_lin_err : float array;    (* per component: worst |ln S − model| at ±2σ *)
}

let geom_of ~device ~temp ~vdd ~(sigmas : Variation.sigmas) =
  let g_lam = Array.make_matrix 3 3 0.0 in
  let g_gam = Array.make_matrix 3 3 0.0 in
  let g_lin_err = Array.make 3 0.0 in
  let nominal0 = state_values ~device ~temp ~vdd ~input_one:false in
  let nominal1 = state_values ~device ~temp ~vdd ~input_one:true in
  let ax_sigma =
    [| sigmas.Variation.sigma_l; sigmas.Variation.sigma_tox;
       sigmas.Variation.sigma_vdd |]
  in
  Array.iteri
    (fun ax axis ->
      let j0 = state_jets ~device ~temp ~vdd ~axis ~input_one:false in
      let j1 = state_jets ~device ~temp ~vdd ~axis ~input_one:true in
      let pick (a, b, c) = [| a; b; c |] in
      let j0 = pick j0 and j1 = pick j1 in
      for c = 0 to 2 do
        (* S(δ) = (r0(δ) + r1(δ))/2 with r_v = I_v(δ)/I_v(0):
           λ = S'(0), γ = S''(0) − λ² (log-curvature; S(0) = 1). *)
        let l0 = j0.(c).Jet.d /. j0.(c).Jet.v
        and l1 = j1.(c).Jet.d /. j1.(c).Jet.v in
        let q0 = j0.(c).Jet.dd /. j0.(c).Jet.v
        and q1 = j1.(c).Jet.dd /. j1.(c).Jet.v in
        let lam = 0.5 *. (l0 +. l1) in
        let s2 = 0.5 *. (q0 +. q1) in
        g_lam.(ax).(c) <- lam;
        g_gam.(ax).(c) <- s2 -. (lam *. lam)
      done;
      (* model-vs-truth log residual at ±2σ on this axis *)
      let sigma = ax_sigma.(ax) in
      if sigma > 0.0 then begin
        let residual_at delta =
          let dev', vdd' = displaced ~device ~vdd axis delta in
          let v0 = pick (state_values ~device:dev' ~temp ~vdd:vdd' ~input_one:false) in
          let v1 = pick (state_values ~device:dev' ~temp ~vdd:vdd' ~input_one:true) in
          let n0 = pick nominal0 and n1 = pick nominal1 in
          Array.init 3 (fun c ->
              let s = 0.5 *. ((v0.(c) /. n0.(c)) +. (v1.(c) /. n1.(c))) in
              let modeled =
                (g_lam.(ax).(c) *. delta)
                +. (0.5 *. g_gam.(ax).(c) *. delta *. delta)
              in
              Float.abs (log s -. modeled))
        in
        let up = residual_at (2.0 *. sigma)
        and dn = residual_at (-2.0 *. sigma) in
        for c = 0 to 2 do
          g_lin_err.(c) <-
            Float.max g_lin_err.(c) (Float.max up.(c) dn.(c))
        done
      end)
    axes;
  { g_lam; g_gam; g_lin_err }

(* ----------------------------------------------- per-gate rows + groups *)

(* One clamped piecewise-linear log-response: the node arrays of an
   [Interp.grid1d], constant beyond either end — the exact function
   [Interp.eval1d] (and hence the MC sampler) evaluates. *)
type tab = { t_xs : float array; t_ys : float array }

type row = {
  r_lam : float array;     (* 3: threshold log-slope per component, 1/V *)
  r_curv : float array;    (* 3: threshold log-curvature, 1/V² *)
  r_tabs : tab array;      (* 3: full tabulated threshold log-response *)
  r_loaded : float array;  (* 3: loading-aware components, A *)
  r_base : float array;    (* 3: isolated nominal components, A *)
}

let row_of_entry ~entry ~(loaded : Report.components)
    ~(isolated : Report.components) =
  let lam = Characterize.vth_log_slope entry in
  let curv = Characterize.vth_log_curvature entry in
  let module Interp = Leakage_numeric.Interp in
  let tab_of g = { t_xs = Interp.grid1d_xs g; t_ys = Interp.grid1d_ys g } in
  let t = entry.Characterize.vth_log_factor in
  {
    r_lam = [| lam.Report.isub; lam.Report.igate; lam.Report.ibtbt |];
    r_curv = [| curv.Report.isub; curv.Report.igate; curv.Report.ibtbt |];
    r_tabs =
      [| tab_of t.Characterize.d_isub; tab_of t.Characterize.d_igate;
         tab_of t.Characterize.d_ibtbt |];
    r_loaded = [| loaded.Report.isub; loaded.Report.igate; loaded.Report.ibtbt |];
    r_base =
      [| isolated.Report.isub; isolated.Report.igate; isolated.Report.ibtbt |];
  }

let cmp_fa a b =
  let n = Array.length a in
  let rec go i =
    if i = n then 0
    else
      let c = Float.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let cmp_tab t1 t2 =
  let c = cmp_fa t1.t_xs t2.t_xs in
  if c <> 0 then c else cmp_fa t1.t_ys t2.t_ys

let cmp_tabs a b =
  let rec go i =
    if i = 3 then 0
    else
      let c = cmp_tab a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

(* Canonical row order: a total order on the full value tuple. Sorting rows
   before accumulating makes every per-group float sum independent of gate
   numbering, construction order and pool partitioning — the foundation of
   the "same digest ⇒ identical sigmas" property. *)
let cmp_row r1 r2 =
  let c = cmp_fa r1.r_lam r2.r_lam in
  if c <> 0 then c
  else
    let c = cmp_tabs r1.r_tabs r2.r_tabs in
    if c <> 0 then c
    else
      let c = cmp_fa r1.r_loaded r2.r_loaded in
      if c <> 0 then c else cmp_fa r1.r_base r2.r_base

type group = {
  k_tabs : tab array;      (* 3: the group's shared threshold log-response *)
  k_lam : float array;     (* 3 *)
  k_count : int;
  k_a : float array;       (* 3: Σ loaded_c *)
  k_b : float array;       (* 9 (c*3+d): Σ loaded_c · loaded_d *)
  k_a_base : float array;
  k_b_base : float array;
}

let groups_of_rows rows =
  let rows = Array.copy rows in
  Array.sort cmp_row rows;
  let out = ref [] in
  let n = Array.length rows in
  let i = ref 0 in
  while !i < n do
    let lam = rows.(!i).r_lam and tabs = rows.(!i).r_tabs in
    let a = Array.make 3 0.0
    and b = Array.make 9 0.0
    and a_base = Array.make 3 0.0
    and b_base = Array.make 9 0.0 in
    let count = ref 0 in
    while
      !i < n
      && cmp_fa rows.(!i).r_lam lam = 0
      && cmp_tabs rows.(!i).r_tabs tabs = 0
    do
      let r = rows.(!i) in
      incr count;
      for c = 0 to 2 do
        a.(c) <- a.(c) +. r.r_loaded.(c);
        a_base.(c) <- a_base.(c) +. r.r_base.(c);
        for d = 0 to 2 do
          b.((c * 3) + d) <-
            b.((c * 3) + d) +. (r.r_loaded.(c) *. r.r_loaded.(d));
          b_base.((c * 3) + d) <-
            b_base.((c * 3) + d) +. (r.r_base.(c) *. r.r_base.(d))
        done
      done;
      incr i
    done;
    out :=
      { k_tabs = tabs; k_lam = lam; k_count = !count; k_a = a; k_b = b;
        k_a_base = a_base; k_b_base = b_base }
      :: !out
  done;
  Array.of_list (List.rev !out)

(* ------------------------------------------ exact clamped-table moments *)

let norm_cdf = Leakage_numeric.Stats.norm_cdf

(* Clamped piecewise-linear eval — same value as [Interp.eval1d]. *)
let eval_tab { t_xs = xs; t_ys = ys } x =
  let n = Array.length xs in
  if x <= xs.(0) then ys.(0)
  else if x >= xs.(n - 1) then ys.(n - 1)
  else begin
    let i = ref 0 in
    while xs.(!i + 1) < x do incr i done;
    let t = (x -. xs.(!i)) /. (xs.(!i + 1) -. xs.(!i)) in
    (ys.(!i) *. (1.0 -. t)) +. (ys.(!i + 1) *. t)
  end

(* E[exp(T(v))] for v ~ N(mu, s²), T the clamped piecewise-linear table:
   exact, segment by segment. On [x0, x1] with T = α + βv,
   ∫ e^{α+βv} φ(v) dv = e^{α+βμ+β²s²/2} (Φ((x1−μ−βs²)/s) − Φ((x0−μ−βs²)/s)),
   and the clamped tails are constants times Gaussian tail masses. Always
   finite — the table caps the exponent — which is what makes steep-slope
   outlier entries integrable where a lognormal λ model diverges.

   Segments whose slope-shifted window [z0, z1] lies entirely on one side
   of the shifted mean flip their Φ difference onto the lower tail, where
   [Stats.norm_cdf] keeps relative accuracy arbitrarily far out — in the
   raw orientation the e^{β²s²/2} prefactor can be astronomically large
   while the Φ values agree to sub-ulp, and the difference would cancel
   to garbage even though the segment's true contribution, their product,
   is bounded by e^{max ys}. When the prefactor itself would overflow a
   double (pathologically steep tables only — the flip keeps the tail
   values, whose underflow meets the overflow, out of the product until
   then) the same term is assembled in log space via [Stats.log_norm_cdf].
   Straddling windows have no amplified prefactor (the exponent equals T
   at the interior mode minus β²s²/2) and use the plain CDF difference. *)
let expect_exp_tab ({ t_xs = xs; t_ys = ys } as tab) ~mu ~s =
  let n = Array.length xs in
  if n = 0 then 1.0
  else if s <= 0.0 then exp (eval_tab tab mu)
  else begin
    let log_norm_cdf = Leakage_numeric.Stats.log_norm_cdf in
    (* one-sided window [za, zb] with 0 <= za < zb, prefactor e^expo *)
    let one_sided ~expo za zb =
      if expo <= 600.0 then
        exp expo *. (norm_cdf (-.za) -. norm_cdf (-.zb))
      else begin
        let la = log_norm_cdf (-.za) and lb = log_norm_cdf (-.zb) in
        exp (expo +. la +. log1p (-.exp (lb -. la)))
      end
    in
    let acc = ref (exp ys.(0) *. norm_cdf ((xs.(0) -. mu) /. s)) in
    for i = 0 to n - 2 do
      let x0 = xs.(i) and x1 = xs.(i + 1) in
      if x1 > x0 then begin
        let beta = (ys.(i + 1) -. ys.(i)) /. (x1 -. x0) in
        let alpha = ys.(i) -. (beta *. x0) in
        let m = mu +. (beta *. s *. s) in
        let z0 = (x0 -. m) /. s and z1 = (x1 -. m) /. s in
        let expo = alpha +. (beta *. mu) +. (0.5 *. beta *. beta *. s *. s) in
        let term =
          if z0 >= 0.0 then one_sided ~expo z0 z1
          else if z1 <= 0.0 then one_sided ~expo (-.z1) (-.z0)
          else exp expo *. (norm_cdf z1 -. norm_cdf z0)
        in
        acc := !acc +. term
      end
    done;
    acc := !acc +. (exp ys.(n - 1) *. norm_cdf ((mu -. xs.(n - 1)) /. s));
    !acc
  end

(* Sum of two clamped piecewise-linear tables, exact on the union grid
   (clamped-constant pieces are linear too, so the union of breakpoints
   carries the sum without loss). Tables from one characterization entry
   share their grid, which is the fast path. *)
let sum_tab t1 t2 =
  if t1.t_xs == t2.t_xs || cmp_fa t1.t_xs t2.t_xs = 0 then
    { t_xs = t1.t_xs; t_ys = Array.map2 ( +. ) t1.t_ys t2.t_ys }
  else begin
    let union = Array.append t1.t_xs t2.t_xs in
    Array.sort Float.compare union;
    let dedup = ref [] in
    Array.iter
      (fun x ->
        match !dedup with
        | x' :: _ when x' = x -> ()
        | _ -> dedup := x :: !dedup)
      union;
    let xs = Array.of_list (List.rev !dedup) in
    { t_xs = xs; t_ys = Array.map (fun x -> eval_tab t1 x +. eval_tab t2 x) xs }
  end

(* Quadrature over the shared die shift x. [n_full] nodes integrate the
   σy-smoothed conditional factors (smooth everywhere); [n_inter] denser
   nodes handle the σy = 0 regime, where the integrand keeps the raw
   table's kinks (composite Simpson loses one order at a kink but the
   per-kink error is O(h³) — far below the MC-differential gates). Fixed
   constants: the node grid depends only on the sigma set, so the assembly
   is a function of the row multiset alone. *)
let n_full = 65
let n_inter = 129
let x_span = 8.0

let two_pi = 8.0 *. atan 1.0

(* Threshold-axis second-moment engine for one (σx = inter, σy = intra)
   pair. Everything weight-independent is precomputed once; the returned
   closure folds in one column's (A, B) weights. See the module header for
   the regime split. *)
let vth_engine ~groups ~sx ~sy =
  let nk = Array.length groups in
  let s_all = sqrt ((sx *. sx) +. (sy *. sy)) in
  (* exact single-gate mean factors at the combined spread *)
  let m1 =
    Array.init nk (fun k ->
        Array.init 3 (fun c ->
            expect_exp_tab groups.(k).k_tabs.(c) ~mu:0.0 ~s:s_all))
  in
  (* exact same-gate shared-y second moments, E[e^{(l_c+l_d)(v)}] *)
  let shared =
    Array.init nk (fun k ->
        let tabs = groups.(k).k_tabs in
        let m = Array.make 9 0.0 in
        for c = 0 to 2 do
          for d = c to 2 do
            let v = expect_exp_tab (sum_tab tabs.(c) tabs.(d)) ~mu:0.0 ~s:s_all in
            m.((c * 3) + d) <- v;
            m.((d * 3) + c) <- v
          done
        done;
        m)
  in
  let quad =
    if sx <= 0.0 then None
    else begin
      let n = if sy <= 0.0 then n_inter else n_full in
      let h = 2.0 *. x_span *. sx /. float_of_int (n - 1) in
      let nodes =
        Array.init n (fun i -> (-.x_span *. sx) +. (h *. float_of_int i))
      in
      let wphi =
        Array.init n (fun i ->
            let simp =
              if i = 0 || i = n - 1 then 1.0
              else if i mod 2 = 1 then 4.0
              else 2.0
            in
            let x = nodes.(i) in
            simp *. h /. 3.0
            *. exp (-.(x *. x) /. (2.0 *. sx *. sx))
            /. (sx *. sqrt two_pi))
      in
      (* f.(k).(c).(i): conditional per-gate factor E_y[e^{l(x_i+y)}] *)
      let f =
        Array.init nk (fun k ->
            Array.init 3 (fun c ->
                let tab = groups.(k).k_tabs.(c) in
                if sy <= 0.0 then
                  Array.map (fun x -> exp (eval_tab tab x)) nodes
                else Array.map (fun x -> expect_exp_tab tab ~mu:x ~s:sy) nodes))
      in
      (* independent-y same-gate products under the same quadrature, so the
         B correction cancels exactly what the cross sum counted *)
      let sh_indep =
        if sy <= 0.0 then [||]
        else
          Array.init nk (fun k ->
              let m = Array.make 9 0.0 in
              for c = 0 to 2 do
                for d = c to 2 do
                  let fc = f.(k).(c) and fd = f.(k).(d) in
                  let acc = ref 0.0 in
                  for i = 0 to n - 1 do
                    acc := !acc +. (wphi.(i) *. fc.(i) *. fd.(i))
                  done;
                  m.((c * 3) + d) <- !acc;
                  m.((d * 3) + c) <- !acc
                done
              done;
              m)
      in
      Some (wphi, f, sh_indep)
    end
  in
  fun ~a_of ~b_of ->
    let eu =
      Array.init 3 (fun c ->
          let s = ref 0.0 in
          for k = 0 to nk - 1 do
            s := !s +. ((a_of k).(c) *. m1.(k).(c))
          done;
          !s)
    in
    let euu =
      match quad with
      | None ->
          (* σx = 0: gates decouple; pair moments factor through the means
             with the exact same-gate correction. Written as B·(shared −
             m·m) so the intra-only covariance never cancels two large
             sums against each other. *)
          Array.init 3 (fun c ->
              Array.init 3 (fun d ->
                  let corr = ref 0.0 in
                  for k = 0 to nk - 1 do
                    corr :=
                      !corr
                      +. ((b_of k).((c * 3) + d)
                          *. (shared.(k).((c * 3) + d)
                              -. (m1.(k).(c) *. m1.(k).(d))))
                  done;
                  (eu.(c) *. eu.(d)) +. !corr))
      | Some (wphi, f, sh_indep) ->
          let n = Array.length wphi in
          (* column-projected conditional means Σ_k A_k f_k(x_i) *)
          let big =
            Array.init 3 (fun c ->
                let acc = Array.make n 0.0 in
                for k = 0 to nk - 1 do
                  let ak = (a_of k).(c) and fk = f.(k).(c) in
                  for i = 0 to n - 1 do
                    acc.(i) <- acc.(i) +. (ak *. fk.(i))
                  done
                done;
                acc)
          in
          Array.init 3 (fun c ->
              Array.init 3 (fun d ->
                  let cross = ref 0.0 in
                  for i = 0 to n - 1 do
                    cross := !cross +. (wphi.(i) *. big.(c).(i) *. big.(d).(i))
                  done;
                  let corr = ref 0.0 in
                  if sy > 0.0 then
                    for k = 0 to nk - 1 do
                      corr :=
                        !corr
                        +. ((b_of k).((c * 3) + d)
                            *. (shared.(k).((c * 3) + d)
                                -. sh_indep.(k).((c * 3) + d)))
                    done;
                  !cross +. !corr))
    in
    (eu, euu)

(* --------------------------------------------------------- moment sums *)

(* E[exp(a·δ + b·δ²/2)] for δ ~ N(0, σ): exact for a quadratic exponent,
   finite only while b·σ² < 1. *)
let m_quad a b sigma =
  let s2 = sigma *. sigma in
  let u = 1.0 -. (b *. s2) in
  if u <= 0.0 then Float.infinity
  else exp (a *. a *. s2 /. (2.0 *. u)) /. sqrt u

(* Per-component means and covariance matrices of both columns (loaded,
   baseline) under one sigma set. Group iteration is in canonical (sorted)
   order, so the result is a function of the row multiset only. *)
let column_moments ~groups ~geom ~(sigmas : Variation.sigmas) =
  let ax_sigma =
    [| sigmas.Variation.sigma_l; sigmas.Variation.sigma_tox;
       sigmas.Variation.sigma_vdd |]
  in
  let es =
    Array.init 3 (fun c ->
        let f = ref 1.0 in
        for ax = 0 to 2 do
          f := !f *. m_quad geom.g_lam.(ax).(c) geom.g_gam.(ax).(c) ax_sigma.(ax)
        done;
        !f)
  in
  let ess c d =
    let f = ref 1.0 in
    for ax = 0 to 2 do
      f :=
        !f
        *. m_quad
             (geom.g_lam.(ax).(c) +. geom.g_lam.(ax).(d))
             (geom.g_gam.(ax).(c) +. geom.g_gam.(ax).(d))
             ax_sigma.(ax)
    done;
    !f
  in
  let engine =
    vth_engine ~groups ~sx:sigmas.Variation.sigma_vth_inter
      ~sy:sigmas.Variation.sigma_vth_intra
  in
  fun ~base ->
    let a_of k = if base then groups.(k).k_a_base else groups.(k).k_a in
    let b_of k = if base then groups.(k).k_b_base else groups.(k).k_b in
    let eu, euu = engine ~a_of ~b_of in
    let means = Array.init 3 (fun c -> es.(c) *. eu.(c)) in
    let cov =
      Array.init 3 (fun c ->
          Array.init 3 (fun d ->
              (ess c d *. euu.(c).(d)) -. (means.(c) *. means.(d))))
    in
    (means, cov)

(* ------------------------------------------------------------- analyze *)

let stat_of ~mean ~var ~var_inter ~var_intra =
  {
    mean;
    sigma = sqrt (Float.max 0.0 var);
    sigma_inter = sqrt (Float.max 0.0 var_inter);
    sigma_intra = sqrt (Float.max 0.0 var_intra);
    from_mc = false;
  }

(* The three sigma-set closures (full, inter-only, intra-only) are built
   once and applied to both columns: all weight-independent table integrals
   are shared between the loaded and baseline assemblies. *)
let column_stats ~groups ~geom ~sigmas =
  let full = column_moments ~groups ~geom ~sigmas in
  let inter = column_moments ~groups ~geom ~sigmas:(Variation.inter_only sigmas) in
  let intra = column_moments ~groups ~geom ~sigmas:(Variation.intra_only sigmas) in
  fun ~base ->
  let means, cov = full ~base in
  let _, cov_inter = inter ~base in
  let _, cov_intra = intra ~base in
  let comp c =
    stat_of ~mean:means.(c) ~var:cov.(c).(c) ~var_inter:cov_inter.(c).(c)
      ~var_intra:cov_intra.(c).(c)
  in
  let sum_all m = m.(0) +. m.(1) +. m.(2) in
  let total_var (cv : float array array) =
    let s = ref 0.0 in
    for c = 0 to 2 do
      for d = 0 to 2 do
        s := !s +. cv.(c).(d)
      done
    done;
    !s
  in
  {
    s_isub = comp 0;
    s_igate = comp 1;
    s_ibtbt = comp 2;
    s_total =
      stat_of ~mean:(sum_all means) ~var:(total_var cov)
        ~var_inter:(total_var cov_inter) ~var_intra:(total_var cov_intra);
  }

let analyze ?(lin_tol = default_lin_tol) ~(sigmas : Variation.sigmas) ~device
    ~temp ~vdd rows =
  let geom = geom_of ~device ~temp ~vdd ~sigmas in
  let groups = groups_of_rows rows in
  (* Linearization-error bound. Geometry axes: the measured model-vs-truth
     residual at ±2σ — these axes really are propagated through a quadratic
     log model, so a residual above tolerance flags the component for the
     MC fallback. Threshold axis: integrated exactly against the sampler's
     own table, so it never flags a component; instead, gates whose table
     departs from its first-order line λ·δ by more than the tolerance at a
     ±2σ_dv displacement are counted, marking where the reported λ alone
     would mislead. *)
  let sdv =
    sqrt
      ((sigmas.Variation.sigma_vth_inter *. sigmas.Variation.sigma_vth_inter)
       +. (sigmas.Variation.sigma_vth_intra *. sigmas.Variation.sigma_vth_intra))
  in
  let flags = Array.map (fun e -> e > lin_tol) geom.g_lin_err in
  let flagged_gates = ref 0 in
  Array.iter
    (fun g ->
      let dev = ref 0.0 in
      for c = 0 to 2 do
        let t = g.k_tabs.(c) and lam = g.k_lam.(c) in
        let at d = Float.abs (eval_tab t d -. (lam *. d)) in
        dev :=
          Float.max !dev
            (Float.max (at (2.0 *. sdv)) (at (-2.0 *. sdv)))
      done;
      if !dev > lin_tol then flagged_gates := !flagged_gates + g.k_count)
    groups;
  let stats_of = column_stats ~groups ~geom ~sigmas in
  let loaded = stats_of ~base:false in
  let baseline = stats_of ~base:true in
  (* A diverging quadratic geometry moment (b·σ² ≥ 1) surfaces as infinity:
     flag the component rather than report it. *)
  let non_finite (s : stats) =
    [|
      not (Float.is_finite s.s_isub.sigma && Float.is_finite s.s_isub.mean);
      not (Float.is_finite s.s_igate.sigma && Float.is_finite s.s_igate.mean);
      not (Float.is_finite s.s_ibtbt.sigma && Float.is_finite s.s_ibtbt.mean);
    |]
  in
  let nf = non_finite loaded and nfb = non_finite baseline in
  for c = 0 to 2 do
    if nf.(c) || nfb.(c) then flags.(c) <- true
  done;
  {
    loaded;
    baseline;
    flagged_isub = flags.(0);
    flagged_igate = flags.(1);
    flagged_ibtbt = flags.(2);
    flagged_gates = !flagged_gates;
    groups = Array.length groups;
  }

(* -------------------------------------------------------- MC fallback *)

let sample_stats values =
  let module Stats = Leakage_numeric.Stats in
  (Stats.mean values, Stats.std values)

let mc_stats ~n_samples ~seed ~sigmas lib netlist pattern =
  let run sg = Statistical.run ~n_samples ~seed ~sigmas:sg lib netlist pattern in
  let full = run sigmas in
  let inter = run (Variation.inter_only sigmas) in
  let intra = run (Variation.intra_only sigmas) in
  let column base =
    let pick f (s : Statistical.sample_totals) =
      if base then f s.Statistical.no_loading else f s.Statistical.with_loading
    in
    let comp f =
      let mean, sigma = sample_stats (Array.map (pick f) full.Statistical.samples) in
      let _, si = sample_stats (Array.map (pick f) inter.Statistical.samples) in
      let _, sy = sample_stats (Array.map (pick f) intra.Statistical.samples) in
      { mean; sigma; sigma_inter = si; sigma_intra = sy; from_mc = true }
    in
    {
      s_isub = comp (fun c -> c.Report.isub);
      s_igate = comp (fun c -> c.Report.igate);
      s_ibtbt = comp (fun c -> c.Report.ibtbt);
      s_total = comp Report.total;
    }
  in
  (column false, column true)

let merge_fallback res ~(mc_loaded : stats) ~(mc_baseline : stats) =
  let pick flag analytic mc = if flag then mc else analytic in
  let merge (a : stats) (m : stats) =
    {
      s_isub = pick res.flagged_isub a.s_isub m.s_isub;
      s_igate = pick res.flagged_igate a.s_igate m.s_igate;
      s_ibtbt = pick res.flagged_ibtbt a.s_ibtbt m.s_ibtbt;
      (* totals need the cross-component covariances; once any component
         comes from samples, take the total column from the same samples *)
      s_total = m.s_total;
    }
  in
  {
    res with
    loaded = merge res.loaded mc_loaded;
    baseline = merge res.baseline mc_baseline;
  }

let expect_exp_table ~xs ~ys ~mu ~s =
  expect_exp_tab { t_xs = xs; t_ys = ys } ~mu ~s

(* ------------------------------------------------------- entry points *)

(* λ-extraction fans out over the pool in fixed chunks; every lane writes
   its own slots, so the row array — and everything derived from it — is
   bit-identical at any pool size. *)
let rows_chunk = 256

let estimate_totals ?passes ?pool ?lin_tol ?(fallback_samples = 2000)
    ?(fallback_seed = 9001) ~sigmas lib netlist pattern =
  let n = Netlist.gate_count netlist in
  let entries = Array.make n None in
  let loaded_f = Array.make (3 * n) 0.0 in
  let base_f = Array.make (3 * n) 0.0 in
  let (), totals, baseline_totals =
    Estimator.estimate_fold ?passes ~init:()
      ~f:(fun () g e ~loaded ~isolated ->
        entries.(g) <- Some e;
        loaded_f.(3 * g) <- loaded.Report.isub;
        loaded_f.((3 * g) + 1) <- loaded.Report.igate;
        loaded_f.((3 * g) + 2) <- loaded.Report.ibtbt;
        base_f.(3 * g) <- isolated.Report.isub;
        base_f.((3 * g) + 1) <- isolated.Report.igate;
        base_f.((3 * g) + 2) <- isolated.Report.ibtbt)
      lib netlist pattern
  in
  let empty_row =
    { r_lam = [||]; r_curv = [||]; r_tabs = [||]; r_loaded = [||];
      r_base = [||] }
  in
  let rows = Array.make n empty_row in
  ignore
    (Pool.map_chunked ?pool ~chunk:rows_chunk n (fun ~lo ~hi ->
         for g = lo to hi - 1 do
           let e = Option.get entries.(g) in
           rows.(g) <-
             row_of_entry ~entry:e
               ~loaded:
                 {
                   Report.isub = loaded_f.(3 * g);
                   igate = loaded_f.((3 * g) + 1);
                   ibtbt = loaded_f.((3 * g) + 2);
                 }
               ~isolated:
                 {
                   Report.isub = base_f.(3 * g);
                   igate = base_f.((3 * g) + 1);
                   ibtbt = base_f.((3 * g) + 2);
                 }
         done));
  let res =
    analyze ?lin_tol ~sigmas ~device:(Library.device lib)
      ~temp:(Library.temp lib) ~vdd:(Library.vdd lib) rows
  in
  let res =
    if flagged res && fallback_samples > 0 then begin
      let mc_loaded, mc_baseline =
        mc_stats ~n_samples:fallback_samples ~seed:fallback_seed ~sigmas lib
          netlist pattern
      in
      merge_fallback res ~mc_loaded ~mc_baseline
    end
    else res
  in
  (totals, baseline_totals, res)
