(** Characterized cell library with lazy caching.

    One [Library.t] corresponds to one (device, temperature, supply)
    operating corner. Entries are characterized on first use and cached, so
    estimating a large circuit only pays for the (kind, vector) pairs that
    actually occur.

    The cache is {e per-domain} ([Domain.DLS]): characterization is a pure
    function of the key, so domains can never observe a torn table — and
    hit-path lookups stay lock-free. A library value can therefore be shared
    freely across a {!Leakage_parallel.Pool}.

    Behind the per-domain caches sits one shared {e publish-once snapshot}:
    a domain that misses its own cache first adopts the entry another domain
    already built (counter [library.shared_hits]) and only characterizes —
    and publishes — when nobody has ([library.misses] therefore counts
    actual characterization solves). This is what stops a suite fan-out from
    warming the same entries independently on every lane; only the rare miss
    path takes the snapshot's mutex. *)

type t

val create :
  ?grid:Characterize.grid_spec ->
  device:Leakage_device.Params.t ->
  temp:float ->
  ?vdd:float ->
  unit ->
  t

val device : t -> Leakage_device.Params.t
val temp : t -> float
val vdd : t -> float

val max_strength : float
(** Largest drive strength an entry can be characterized at (255.75).
    Strength buckets quantize to quarter steps in [(0, 1023]]; a strength
    whose bucket would overflow that range used to silently saturate —
    aliasing every strength ≥ 255.75 onto one cache entry — and now raises
    instead. *)

val strength_in_range : float -> bool
(** Whether {!entry} accepts this strength: positive and quantizing to a
    bucket no greater than {!max_strength} allows. Strengths below an eighth
    still clamp {e up} to the smallest bucket (0.25), which only coarsens,
    never aliases distinct keys. *)

val entry :
  ?strength:float ->
  t -> Leakage_circuit.Gate.kind -> Leakage_circuit.Logic.vector ->
  Characterize.entry
(** Characterize-on-demand lookup. [strength] (default 1.0) is quantized to
    quarter steps — entries are shared within a bucket. Raises
    [Invalid_argument] when the cache key cannot be packed without
    collisions: strength outside {!strength_in_range} (non-positive or
    beyond {!max_strength}), a vector of arity > 16, or a gate code ≥ 64. *)

val precharacterize :
  ?pool:Leakage_parallel.Pool.t ->
  ?kinds:Leakage_circuit.Gate.kind list -> t -> unit
(** Eagerly characterize every vector of the given kinds (default: the full
    cell library), fanning the (kind, vector) table out over [pool] when
    given. All resulting entries are adopted into the calling domain's
    cache. *)

val entry_count : t -> int
(** Number of entries cached in the calling domain (characterization cost
    visibility). *)
