(** Circuit-level leakage estimation with loading effect — the paper's Fig-13
    algorithm.

    One topological pass: simulate logic values, sum each net's loading
    current from the precharacterized per-pin gate currents of its fanout
    cells, then look each gate's leakage components up in the loading-aware
    tables. Loading is taken one level deep (the paper's §6 observation that
    propagation beyond one level is negligible), which is what removes the
    need to solve the circuit-wide KCL system. *)

type gate_estimate = {
  gate : Leakage_circuit.Netlist.gate;
  vector : Leakage_circuit.Logic.vector;    (** logic state at the pins *)
  loading_in : float array;                 (** signed A, per pin (siblings only) *)
  loading_out : float;                      (** signed A (all fanout pins) *)
  with_loading : Leakage_spice.Leakage_report.components;
  no_loading : Leakage_spice.Leakage_report.components;
}

type result = {
  per_gate : gate_estimate array;           (** indexed by gate id *)
  totals : Leakage_spice.Leakage_report.components;
  (** loading-aware estimate *)
  baseline_totals : Leakage_spice.Leakage_report.components;
  (** traditional sum of isolated nominal leakages *)
  assignment : Leakage_circuit.Simulate.assignment;
  net_injection : float array;
  (** signed loading current (A) each net receives from all fanout cell
      pins (diagnostic; indexed by net) *)
}

val estimate :
  ?passes:int ->
  ?library_of_gate:(int -> Library.t) ->
  ?scratch:Leakage_circuit.Simulate.assignment ->
  Library.t -> Leakage_circuit.Netlist.t -> Leakage_circuit.Logic.vector ->
  result
(** Estimate under one input pattern. Cost: one logic simulation plus O(pins)
    table lookups per pass; characterization solves are cached in the
    library.

    [passes] (default 1) controls how far loading propagates: pass 1 uses
    each cell's nominal pin currents as its loading contribution (the
    paper's one-level model); every further pass re-evaluates the pin
    currents under the previous pass's net loading through the
    characterized pin-response curves, propagating the effect one more
    logic level — the "propagation of loading effect" the paper's §6
    discusses and dismisses as negligible (see the ablation bench).

    [library_of_gate] overrides the characterized library per gate id
    (heterogeneous cells: dual-Vth assignments, per-region corners); all
    libraries must share temperature and supply.

    [scratch] reuses a caller-owned logic-simulation buffer of length
    [Netlist.net_count] instead of allocating one; the returned
    [result.assignment] is a snapshot copy, so later estimates sharing the
    buffer never mutate previously returned results. *)

val estimate_totals :
  ?passes:int ->
  ?library_of_gate:(int -> Library.t) ->
  ?scratch:Leakage_circuit.Simulate.assignment ->
  Library.t -> Leakage_circuit.Netlist.t -> Leakage_circuit.Logic.vector ->
  Leakage_spice.Leakage_report.components * Leakage_spice.Leakage_report.components
(** [(with-loading totals, baseline totals)] under one pattern — the same
    numbers as {!estimate}'s [totals] / [baseline_totals], bit for bit
    (identical summation order), without materializing per-gate records,
    gate views or an assignment snapshot. This is the hot path for vector
    sweeps; {!average_over_vectors} runs on it. *)

val estimate_fold :
  ?passes:int ->
  ?library_of_gate:(int -> Library.t) ->
  ?scratch:Leakage_circuit.Simulate.assignment ->
  init:'acc ->
  f:
    ('acc -> int -> Characterize.entry ->
     loaded:Leakage_spice.Leakage_report.components ->
     isolated:Leakage_spice.Leakage_report.components -> 'acc) ->
  Library.t -> Leakage_circuit.Netlist.t -> Leakage_circuit.Logic.vector ->
  'acc * Leakage_spice.Leakage_report.components
  * Leakage_spice.Leakage_report.components
(** {!estimate_totals} with a caller fold over the per-gate results: [f] is
    called once per gate in ascending gate-id order with the gate's
    characterization entry, its loading-aware components and its isolated
    nominal components — no per-gate records are materialized. Returns
    [(acc, with-loading totals, baseline totals)]; the totals are
    bit-identical to {!estimate_totals} (same summation order). This is how
    the variance-propagation layer rides the SoA hot path. *)

val average_over_vectors :
  ?pool:Leakage_parallel.Pool.t ->
  Library.t -> Leakage_circuit.Netlist.t -> Leakage_circuit.Logic.vector list ->
  Leakage_spice.Leakage_report.components * Leakage_spice.Leakage_report.components
(** [(mean with-loading totals, mean baseline totals)] over a vector set.

    Vectors are processed in fixed-width chunks whose partial sums are folded
    in chunk order; the summation tree depends only on the vector count, so
    the result is bit-identical with or without [pool], at any pool size. *)

val avg_chunk : int
(** Chunk width of {!average_over_vectors}'s fixed summation tree. Part of
    the bit-identity contract: results are only reproducible across builds
    that agree on this constant, so benchmark artifacts record it. *)
