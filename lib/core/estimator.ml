module Netlist = Leakage_circuit.Netlist
module Logic = Leakage_circuit.Logic
module Simulate = Leakage_circuit.Simulate
module Report = Leakage_spice.Leakage_report
module Pool = Leakage_parallel.Pool
module Tm = Leakage_telemetry.Telemetry
module Trace = Leakage_telemetry.Trace

let m_estimates = Tm.counter "estimator.estimates"
let m_gate_lookups = Tm.counter "estimator.gate_lookups"
let m_pass_steps = Tm.counter "estimator.loading_pass_steps"

type gate_estimate = {
  gate : Netlist.gate;
  vector : Logic.vector;
  loading_in : float array;
  loading_out : float;
  with_loading : Report.components;
  no_loading : Report.components;
}

type result = {
  per_gate : gate_estimate array;
  totals : Report.components;
  baseline_totals : Report.components;
  assignment : Simulate.assignment;
  net_injection : float array;
}

(* Shared flat-storage core of [estimate] / [estimate_totals]: logic
   values, per-gate characterization entries, and the loading fixed point
   over a single pin-aligned contribution array (CSR layout mirroring the
   netlist's pin storage — no per-gate float array on the hot path).

   Iteration is by ascending gate id and ascending pin everywhere, exactly
   the order the record-based implementation used, so every float sum is
   performed in the same order and totals stay bit-identical. *)

type core = {
  c_entries : Characterize.entry array; (* per gate id *)
  c_contribution : float array;         (* flat, pin-aligned (CSR) *)
  c_pin_base : int array;               (* gate id -> offset into c_contribution *)
  c_net_injection : float array;        (* per net *)
  c_is_pi_net : bool array;             (* per net *)
}

let run_core ~passes ~library_of_gate ~assignment lib netlist =
  if passes < 1 then invalid_arg "Estimator.estimate: passes must be >= 1";
  if Tm.enabled () then begin
    Tm.incr m_estimates;
    Tm.add m_gate_lookups (Netlist.gate_count netlist);
    (* passes beyond the first are the loading fixed-point sweep *)
    Tm.add m_pass_steps (passes - 1)
  end;
  let n_gates = Netlist.gate_count netlist in
  let nets = Netlist.net_count netlist in
  let arity = Netlist.gate_arity netlist in
  let pin = Netlist.gate_pin netlist in
  let vector_of g =
    Array.init (arity g) (fun p -> assignment.(pin g p))
  in
  let lib_for g =
    match library_of_gate with Some f -> f g | None -> lib
  in
  (* Resolve every gate's characterization entry once; the same array serves
     the injection pass and the lookup pass. *)
  let entries =
    Array.init n_gates (fun g ->
        Library.entry
          ~strength:(Netlist.gate_strength netlist g)
          (lib_for g)
          (Netlist.gate_kind netlist g)
          (vector_of g))
  in
  let pin_base = Array.make (n_gates + 1) 0 in
  for g = 0 to n_gates - 1 do
    pin_base.(g + 1) <- pin_base.(g) + arity g
  done;
  (* Loading current each net receives: the sum of the per-pin injections of
     every fanout cell. Pass 1 uses the nominal pin currents; further passes
     re-evaluate each pin's current under the loading seen on its net in the
     previous pass (one extra level of propagation per pass). *)
  let contribution = Array.make pin_base.(n_gates) 0.0 in
  for g = 0 to n_gates - 1 do
    let inj = entries.(g).Characterize.pin_injection in
    Array.blit inj 0 contribution pin_base.(g) (Array.length inj)
  done;
  let net_injection = Array.make nets 0.0 in
  let accumulate () =
    Array.fill net_injection 0 nets 0.0;
    for g = 0 to n_gates - 1 do
      let base = pin_base.(g) in
      for p = 0 to arity g - 1 do
        let net = pin g p in
        net_injection.(net) <- net_injection.(net) +. contribution.(base + p)
      done
    done
  in
  accumulate ();
  for _ = 2 to passes do
    for g = 0 to n_gates - 1 do
      let e = entries.(g) in
      let base = pin_base.(g) in
      for p = 0 to arity g - 1 do
        (* loading external to this cell on this net *)
        let external_load =
          net_injection.(pin g p) -. contribution.(base + p)
        in
        contribution.(base + p) <-
          Leakage_numeric.Interp.eval1d
            e.Characterize.pin_response.(p) external_load
      done
    done;
    accumulate ()
  done;
  let is_pi_net =
    let flags = Array.make nets true in
    for g = 0 to n_gates - 1 do
      flags.(Netlist.gate_out netlist g) <- false
    done;
    flags
  in
  {
    c_entries = entries;
    c_contribution = contribution;
    c_pin_base = pin_base;
    c_net_injection = net_injection;
    c_is_pi_net = is_pi_net;
  }

(* I_L-IN of eq. (3): gate leakage of the *other* gates on the input net —
   subtract this cell's own pin contribution, which the characterization
   testbench already accounts for. Primary-input nets are ideal sources in
   the real circuit, so there sibling loading is irrelevant; instead cancel
   the characterization testbench's finite-driver self-droop by loading the
   pin with the negation of the cell's own pin current. *)
let loading_in_of c netlist g =
  let base = c.c_pin_base.(g) in
  Array.init
    (Netlist.gate_arity netlist g)
    (fun p ->
      let net = Netlist.gate_pin netlist g p in
      let own = c.c_contribution.(base + p) in
      if c.c_is_pi_net.(net) then -.own else c.c_net_injection.(net) -. own)

let estimate ?(passes = 1) ?library_of_gate ?scratch lib netlist pattern =
  let scratch_used = scratch <> None in
  let assignment =
    match scratch with
    | None -> Simulate.run netlist pattern
    | Some buf ->
      Simulate.run_into netlist pattern buf;
      buf
  in
  let c = run_core ~passes ~library_of_gate ~assignment lib netlist in
  let gates = Netlist.gates netlist in
  let per_gate =
    Array.map
      (fun (g : Netlist.gate) ->
        let e = c.c_entries.(g.id) in
        let loading_in = loading_in_of c netlist g.id in
        let loading_out = c.c_net_injection.(g.out) in
        {
          gate = g;
          vector = Array.map (fun n -> assignment.(n)) g.fan_in;
          loading_in;
          loading_out;
          with_loading = Characterize.apply e ~loading_in ~loading_out;
          no_loading = e.Characterize.nominal_isolated;
        })
      gates
  in
  let totals =
    Array.fold_left
      (fun acc ge -> Report.add acc ge.with_loading)
      Report.zero per_gate
  in
  let baseline_totals =
    Array.fold_left
      (fun acc ge -> Report.add acc ge.no_loading)
      Report.zero per_gate
  in
  (* A caller-owned scratch buffer will be overwritten by the next
     [run_into]; hand back a snapshot so previously returned results stay
     valid. Freshly allocated assignments are owned by the result already. *)
  let assignment = if scratch_used then Array.copy assignment else assignment in
  {
    per_gate;
    totals;
    baseline_totals;
    assignment;
    net_injection = c.c_net_injection;
  }

let estimate_totals ?(passes = 1) ?library_of_gate ?scratch lib netlist pattern
    =
  let assignment =
    match scratch with
    | None -> Simulate.run netlist pattern
    | Some buf ->
      Simulate.run_into netlist pattern buf;
      buf
  in
  let c = run_core ~passes ~library_of_gate ~assignment lib netlist in
  let totals = ref Report.zero and baseline = ref Report.zero in
  for g = 0 to Netlist.gate_count netlist - 1 do
    let e = c.c_entries.(g) in
    let loading_in = loading_in_of c netlist g in
    let loading_out = c.c_net_injection.(Netlist.gate_out netlist g) in
    totals := Report.add !totals (Characterize.apply e ~loading_in ~loading_out);
    baseline := Report.add !baseline e.Characterize.nominal_isolated
  done;
  (!totals, !baseline)

let estimate_fold ?(passes = 1) ?library_of_gate ?scratch ~init ~f lib netlist
    pattern =
  let assignment =
    match scratch with
    | None -> Simulate.run netlist pattern
    | Some buf ->
      Simulate.run_into netlist pattern buf;
      buf
  in
  let c = run_core ~passes ~library_of_gate ~assignment lib netlist in
  let totals = ref Report.zero and baseline = ref Report.zero in
  let acc = ref init in
  for g = 0 to Netlist.gate_count netlist - 1 do
    let e = c.c_entries.(g) in
    let loading_in = loading_in_of c netlist g in
    let loading_out = c.c_net_injection.(Netlist.gate_out netlist g) in
    let loaded = Characterize.apply e ~loading_in ~loading_out in
    totals := Report.add !totals loaded;
    baseline := Report.add !baseline e.Characterize.nominal_isolated;
    acc := f !acc g e ~loaded ~isolated:e.Characterize.nominal_isolated
  done;
  (!acc, !totals, !baseline)

(* Fixed chunk width for vector averaging. The chunk decomposition — and
   therefore the float-summation tree — depends only on the vector count,
   never on the pool size, so parallel and sequential means are
   bit-identical. *)
let avg_chunk = 16

let average_over_vectors ?pool lib netlist patterns =
  if patterns = [] then invalid_arg "Estimator.average_over_vectors: no vectors";
  let patterns = Array.of_list patterns in
  let n = Array.length patterns in
  Netlist.warm netlist;
  let partials =
    Pool.map_chunked ?pool ~chunk:avg_chunk n (fun ~lo ~hi ->
        Trace.with_span ~cat:"core" "avg_chunk"
          ~args:[ ("vectors", string_of_int (hi - lo)) ]
        @@ fun () ->
        (* One logic-simulation buffer per chunk: only totals survive, so
           the lean no-record path serves here. *)
        let scratch =
          Array.make (Netlist.net_count netlist) Leakage_circuit.Logic.Zero
        in
        let acc_l = ref Report.zero and acc_b = ref Report.zero in
        for i = lo to hi - 1 do
          let l, b = estimate_totals ~scratch lib netlist patterns.(i) in
          acc_l := Report.add !acc_l l;
          acc_b := Report.add !acc_b b
        done;
        (!acc_l, !acc_b))
  in
  let sum_loaded, sum_base =
    Array.fold_left
      (fun (acc_l, acc_b) (l, b) -> (Report.add acc_l l, Report.add acc_b b))
      (Report.zero, Report.zero) partials
  in
  let inv = 1.0 /. float_of_int n in
  (Report.scale inv sum_loaded, Report.scale inv sum_base)
