module Netlist = Leakage_circuit.Netlist
module Logic = Leakage_circuit.Logic
module Simulate = Leakage_circuit.Simulate
module Report = Leakage_spice.Leakage_report
module Pool = Leakage_parallel.Pool
module Tm = Leakage_telemetry.Telemetry
module Trace = Leakage_telemetry.Trace

let m_estimates = Tm.counter "estimator.estimates"
let m_gate_lookups = Tm.counter "estimator.gate_lookups"
let m_pass_steps = Tm.counter "estimator.loading_pass_steps"

type gate_estimate = {
  gate : Netlist.gate;
  vector : Logic.vector;
  loading_in : float array;
  loading_out : float;
  with_loading : Report.components;
  no_loading : Report.components;
}

type result = {
  per_gate : gate_estimate array;
  totals : Report.components;
  baseline_totals : Report.components;
  assignment : Simulate.assignment;
  net_injection : float array;
}

let estimate ?(passes = 1) ?library_of_gate ?scratch lib netlist pattern =
  if passes < 1 then invalid_arg "Estimator.estimate: passes must be >= 1";
  if Tm.enabled () then begin
    Tm.incr m_estimates;
    Tm.add m_gate_lookups (Netlist.gate_count netlist);
    (* passes beyond the first are the loading fixed-point sweep *)
    Tm.add m_pass_steps (passes - 1)
  end;
  let scratch_used = scratch <> None in
  let assignment =
    match scratch with
    | None -> Simulate.run netlist pattern
    | Some buf ->
      Simulate.run_into netlist pattern buf;
      buf
  in
  let gates = Netlist.gates netlist in
  let vector_of (g : Netlist.gate) =
    Array.map (fun n -> assignment.(n)) g.fan_in
  in
  let lib_for (g : Netlist.gate) =
    match library_of_gate with Some f -> f g.id | None -> lib
  in
  (* Resolve every gate's characterization entry once; the same array serves
     the injection pass and the lookup pass. *)
  let entries =
    Array.map
      (fun (g : Netlist.gate) ->
        Library.entry ~strength:g.Netlist.strength (lib_for g) g.Netlist.kind
          (vector_of g))
      gates
  in
  (* Loading current each net receives: the sum of the per-pin injections of
     every fanout cell. Pass 1 uses the nominal pin currents; further passes
     re-evaluate each pin's current under the loading seen on its net in the
     previous pass (one extra level of propagation per pass). *)
  let contribution =
    Array.map
      (fun (g : Netlist.gate) ->
        Array.copy entries.(g.id).Characterize.pin_injection)
      gates
  in
  let net_injection = Array.make (Netlist.net_count netlist) 0.0 in
  let accumulate () =
    Array.fill net_injection 0 (Netlist.net_count netlist) 0.0;
    Array.iter
      (fun (g : Netlist.gate) ->
        let c = contribution.(g.id) in
        Array.iteri
          (fun pin net -> net_injection.(net) <- net_injection.(net) +. c.(pin))
          g.fan_in)
      gates
  in
  accumulate ();
  for _ = 2 to passes do
    Array.iter
      (fun (g : Netlist.gate) ->
        let e = entries.(g.id) in
        let c = contribution.(g.id) in
        Array.iteri
          (fun pin net ->
            (* loading external to this cell on this net *)
            let external_load = net_injection.(net) -. c.(pin) in
            c.(pin) <-
              Leakage_numeric.Interp.eval1d
                e.Characterize.pin_response.(pin) external_load)
          g.fan_in)
      gates;
    accumulate ()
  done;
  let is_pi_net =
    let flags = Array.make (Netlist.net_count netlist) true in
    Array.iter (fun (g : Netlist.gate) -> flags.(g.out) <- false) gates;
    flags
  in
  let per_gate =
    Array.map
      (fun (g : Netlist.gate) ->
        let e = entries.(g.id) in
        (* I_L-IN of eq. (3): gate leakage of the *other* gates on the input
           net — subtract this cell's own pin contribution, which the
           characterization testbench already accounts for. Primary-input
           nets are ideal sources in the real circuit, so there sibling
           loading is irrelevant; instead cancel the characterization
           testbench's finite-driver self-droop by loading the pin with the
           negation of the cell's own pin current. *)
        let loading_in =
          Array.mapi
            (fun pin net ->
              if is_pi_net.(net) then -.contribution.(g.id).(pin)
              else net_injection.(net) -. contribution.(g.id).(pin))
            g.fan_in
        in
        let loading_out = net_injection.(g.out) in
        {
          gate = g;
          vector = vector_of g;
          loading_in;
          loading_out;
          with_loading = Characterize.apply e ~loading_in ~loading_out;
          no_loading = e.Characterize.nominal_isolated;
        })
      gates
  in
  let totals =
    Array.fold_left
      (fun acc ge -> Report.add acc ge.with_loading)
      Report.zero per_gate
  in
  let baseline_totals =
    Array.fold_left
      (fun acc ge -> Report.add acc ge.no_loading)
      Report.zero per_gate
  in
  (* A caller-owned scratch buffer will be overwritten by the next
     [run_into]; hand back a snapshot so previously returned results stay
     valid. Freshly allocated assignments are owned by the result already. *)
  let assignment = if scratch_used then Array.copy assignment else assignment in
  { per_gate; totals; baseline_totals; assignment; net_injection }

(* Fixed chunk width for vector averaging. The chunk decomposition — and
   therefore the float-summation tree — depends only on the vector count,
   never on the pool size, so parallel and sequential means are
   bit-identical. *)
let avg_chunk = 16

let average_over_vectors ?pool lib netlist patterns =
  if patterns = [] then invalid_arg "Estimator.average_over_vectors: no vectors";
  let patterns = Array.of_list patterns in
  let n = Array.length patterns in
  Netlist.warm netlist;
  let partials =
    Pool.map_chunked ?pool ~chunk:avg_chunk n (fun ~lo ~hi ->
        Trace.with_span ~cat:"core" "avg_chunk"
          ~args:[ ("vectors", string_of_int (hi - lo)) ]
        @@ fun () ->
        (* One logic-simulation buffer per chunk: only totals survive. *)
        let scratch =
          Array.make (Netlist.net_count netlist) Leakage_circuit.Logic.Zero
        in
        let acc_l = ref Report.zero and acc_b = ref Report.zero in
        for i = lo to hi - 1 do
          let r = estimate ~scratch lib netlist patterns.(i) in
          acc_l := Report.add !acc_l r.totals;
          acc_b := Report.add !acc_b r.baseline_totals
        done;
        (!acc_l, !acc_b))
  in
  let sum_loaded, sum_base =
    Array.fold_left
      (fun (acc_l, acc_b) (l, b) -> (Report.add acc_l l, Report.add acc_b b))
      (Report.zero, Report.zero) partials
  in
  let inv = 1.0 /. float_of_int n in
  (Report.scale inv sum_loaded, Report.scale inv sum_base)
