(* Tests of the paper's contribution layer: characterization tables, the
   Fig-13 estimator, loading-effect analysis, Monte Carlo and input-vector
   control. *)

module Params = Leakage_device.Params
module Variation = Leakage_device.Variation
module Logic = Leakage_circuit.Logic
module Gate = Leakage_circuit.Gate
module Netlist = Leakage_circuit.Netlist
module Simulate = Leakage_circuit.Simulate
module Report = Leakage_spice.Leakage_report
module Testbench = Leakage_core.Testbench
module Characterize = Leakage_core.Characterize
module Library = Leakage_core.Library
module Estimator = Leakage_core.Estimator
module Loading = Leakage_core.Loading
module Monte_carlo = Leakage_core.Monte_carlo
module Vector_control = Leakage_incremental.Vector_control
module Reporting = Leakage_core.Reporting
module Rng = Leakage_numeric.Rng
module Stats = Leakage_numeric.Stats

let device = Params.d25
let temp = 300.0

(* Characterization is the expensive step; share one library and one coarse
   grid across the whole executable. *)
let coarse_grid = { Characterize.max_current = 3.0e-6; points = 7 }
let lib = Library.create ~grid:coarse_grid ~device ~temp ()

(* ------------------------------------------------------------ Testbench *)

let test_testbench_shape () =
  let tb = Testbench.make (Gate.Nand 2) (Logic.vector_of_string "01") in
  Alcotest.(check int) "3 gates (2 drivers + DUT)" 3
    (Netlist.gate_count tb.Testbench.netlist);
  Alcotest.(check int) "dut id" 2 tb.Testbench.dut_gate;
  Alcotest.(check int) "pins" 2 (Array.length tb.Testbench.pin_nets)

let test_testbench_vector_guard () =
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Testbench.make: NAND2 expects a 2-bit vector")
    (fun () -> ignore (Testbench.make (Gate.Nand 2) [| Logic.Zero |]))

let test_testbench_drivers_apply_vector () =
  (* the drivers invert the primary pattern, so the DUT pins see the vector *)
  let tb = Testbench.make (Gate.Nand 2) (Logic.vector_of_string "01") in
  let values = Simulate.run tb.Testbench.netlist tb.Testbench.pattern in
  Alcotest.(check char) "pin 0 at 0" '0'
    (Logic.to_char values.(tb.Testbench.pin_nets.(0)));
  Alcotest.(check char) "pin 1 at 1" '1'
    (Logic.to_char values.(tb.Testbench.pin_nets.(1)))

let test_testbench_solve_components () =
  let tb = Testbench.make Gate.Inv [| Logic.Zero |] in
  let solved = Testbench.solve ~device ~temp tb in
  let c = Testbench.dut_components solved in
  Alcotest.(check bool) "positive leakage" true (Report.total c > 0.0)

let test_testbench_injection_guard () =
  let tb = Testbench.make Gate.Inv [| Logic.Zero |] in
  (* net 0 is the primary input *)
  Alcotest.check_raises "PI injection rejected"
    (Invalid_argument "Testbench.solve: injection into a primary input net")
    (fun () -> ignore (Testbench.solve ~injections:[ (0, 1e-6) ] ~device ~temp tb))

let test_testbench_pin_injection_sign () =
  (* pin at '0': the cell's on-PMOS tunneling injects current into the net *)
  let tb = Testbench.make Gate.Inv [| Logic.Zero |] in
  let solved = Testbench.solve ~device ~temp tb in
  Alcotest.(check bool) "injects at 0" true
    (Testbench.dut_pin_injection solved 0 > 0.0);
  let tb1 = Testbench.make Gate.Inv [| Logic.One |] in
  let solved1 = Testbench.solve ~device ~temp tb1 in
  Alcotest.(check bool) "draws at 1" true
    (Testbench.dut_pin_injection solved1 0 < 0.0)

let test_isolated_components () =
  let c =
    Testbench.isolated_components ~device ~temp Gate.Inv [| Logic.Zero |]
  in
  Alcotest.(check bool) "positive" true
    (c.Report.isub > 0.0 && c.Report.igate > 0.0 && c.Report.ibtbt > 0.0)

(* -------------------------------------------------------- Characterize *)

let entry_inv0 = Library.entry lib Gate.Inv [| Logic.Zero |]
let entry_inv1 = Library.entry lib Gate.Inv [| Logic.One |]

let test_characterize_zero_injection_identity () =
  (* at zero loading the tables must reproduce the driven nominal *)
  let applied =
    Characterize.apply entry_inv0 ~loading_in:[| 0.0 |] ~loading_out:0.0
  in
  Alcotest.(check (float 1e-13)) "identity at origin"
    (Report.total entry_inv0.Characterize.nominal_driven)
    (Report.total applied)

let test_characterize_delta_signs_input () =
  (* positive injection on a '0' input raises sub, trims gate (Fig 5a/b) *)
  let d = Characterize.eval_table entry_inv0.Characterize.delta_in.(0) 2.0e-6 in
  Alcotest.(check bool) "sub up" true (d.Report.isub > 0.0);
  Alcotest.(check bool) "gate down" true (d.Report.igate < 0.0)

let test_characterize_delta_signs_output () =
  (* negative injection (fanout draw) on a '1' output lowers everything *)
  let d = Characterize.eval_table entry_inv0.Characterize.delta_out (-2.0e-6) in
  Alcotest.(check bool) "sub down" true (d.Report.isub < 0.0);
  Alcotest.(check bool) "gate down" true (d.Report.igate < 0.0);
  Alcotest.(check bool) "btbt down" true (d.Report.ibtbt < 0.0)

let test_characterize_monotone_sub_table () =
  let xs = [ -2.0e-6; -1.0e-6; 0.0; 1.0e-6; 2.0e-6 ] in
  let values =
    List.map
      (fun x ->
        (Characterize.eval_table entry_inv0.Characterize.delta_in.(0) x).Report.isub)
      xs
  in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-15 && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "sub monotone in injected current" true
    (increasing values)

let test_characterize_pin_injection_matches_state () =
  Alcotest.(check bool) "pin at 0 injects" true
    (entry_inv0.Characterize.pin_injection.(0) > 0.0);
  Alcotest.(check bool) "pin at 1 draws" true
    (entry_inv1.Characterize.pin_injection.(0) < 0.0)

let test_characterize_apply_guard () =
  Alcotest.check_raises "pin arity"
    (Invalid_argument "Characterize.apply: loading_in arity mismatch")
    (fun () ->
      ignore
        (Characterize.apply entry_inv0 ~loading_in:[| 0.0; 0.0 |]
           ~loading_out:0.0))

let test_characterize_apply_never_negative () =
  (* far beyond the grid the clamped tables must not drive leakage < 0 *)
  let c =
    Characterize.apply entry_inv0 ~loading_in:[| -1.0e-3 |]
      ~loading_out:(-1.0e-3)
  in
  Alcotest.(check bool) "non-negative" true
    (c.Report.isub >= 0.0 && c.Report.igate >= 0.0 && c.Report.ibtbt >= 0.0)

let test_characterize_grid_guards () =
  Alcotest.check_raises "points"
    (Invalid_argument "Characterize: grid needs >= 2 points") (fun () ->
      ignore
        (Characterize.characterize
           ~grid:{ Characterize.max_current = 1e-6; points = 1 }
           ~device ~temp Gate.Inv [| Logic.Zero |]))

(* -------------------------------------------------------------- Library *)

let test_library_caches () =
  let before = Library.entry_count lib in
  ignore (Library.entry lib Gate.Inv [| Logic.Zero |]);
  ignore (Library.entry lib Gate.Inv [| Logic.Zero |]);
  Alcotest.(check int) "no recharacterization" before (Library.entry_count lib)

let test_library_distinct_vectors () =
  ignore (Library.entry lib (Gate.Nand 2) (Logic.vector_of_string "00"));
  let n1 = Library.entry_count lib in
  ignore (Library.entry lib (Gate.Nand 2) (Logic.vector_of_string "01"));
  Alcotest.(check int) "new vector characterized" (n1 + 1) (Library.entry_count lib)

let test_library_accessors () =
  Alcotest.(check string) "device" device.Params.name (Library.device lib).Params.name;
  Alcotest.(check (float 0.0)) "temp" temp (Library.temp lib);
  Alcotest.(check (float 0.0)) "vdd" device.Params.vdd (Library.vdd lib)

let test_library_strength_range () =
  (* the packed key allots 10 bits to the strength bucket; out-of-range
     strengths used to saturate silently onto bucket 1023, aliasing every
     oversized cell onto one cache entry *)
  Alcotest.(check (float 0.0)) "max is 1023 quarter-steps" (1023.0 /. 4.0)
    Library.max_strength;
  Alcotest.(check bool) "max itself packs" true
    (Library.strength_in_range Library.max_strength);
  Alcotest.(check bool) "just beyond max rejected" false
    (Library.strength_in_range (Library.max_strength +. 0.25));
  Alcotest.(check bool) "zero rejected" false (Library.strength_in_range 0.0);
  Alcotest.(check bool) "negative rejected" false
    (Library.strength_in_range (-1.0));
  (* sub-eighth strengths clamp UP to the 0.25 bucket: coarser, never
     aliased with a different in-range strength *)
  Alcotest.(check bool) "tiny strength still packs" true
    (Library.strength_in_range 0.01)

let test_library_strength_guards () =
  Alcotest.check_raises "oversized strength raises"
    (Invalid_argument
       "Library: strength 256 exceeds the characterizable range (max 255.75)")
    (fun () -> ignore (Library.entry ~strength:256.0 lib Gate.Inv [| Logic.Zero |]));
  Alcotest.check_raises "non-positive strength raises"
    (Invalid_argument "Library: strength 0 must be positive")
    (fun () -> ignore (Library.entry ~strength:0.0 lib Gate.Inv [| Logic.Zero |]))

let test_library_vector_arity_guard () =
  (* 17 state bits cannot pack into the 16-bit vector field; the guard must
     fire before any characterization is attempted *)
  let before = Library.entry_count lib in
  Alcotest.check_raises "arity 17 raises"
    (Invalid_argument "Library: vector arity 17 exceeds the packable 16")
    (fun () -> ignore (Library.entry lib Gate.Inv (Array.make 17 Logic.Zero)));
  Alcotest.(check int) "nothing characterized" before (Library.entry_count lib)

let test_library_tiny_strength_shares_bucket () =
  ignore (Library.entry ~strength:0.25 lib Gate.Inv [| Logic.Zero |]);
  let n = Library.entry_count lib in
  (* 0.05 rounds to bucket 0, which clamps up to bucket 1 = 0.25 *)
  ignore (Library.entry ~strength:0.05 lib Gate.Inv [| Logic.Zero |]);
  Alcotest.(check int) "clamped into the 0.25 bucket" n (Library.entry_count lib)

(* ------------------------------------------------------------ Estimator *)

let chain_circuit () =
  (* pi -> inv -> nand2 with a side branch, 2 POs *)
  let b = Netlist.Builder.create "est_chain" in
  let a = Netlist.Builder.input ~name:"a" b in
  let c = Netlist.Builder.input ~name:"c" b in
  let n1 = Netlist.Builder.gate b Gate.Inv [| a |] in
  let n2 = Netlist.Builder.gate b (Gate.Nand 2) [| n1; c |] in
  let n3 = Netlist.Builder.gate b Gate.Inv [| n2 |] in
  let n4 = Netlist.Builder.gate b (Gate.Nor 2) [| n2; n3 |] in
  Netlist.Builder.mark_output b n3;
  Netlist.Builder.mark_output b n4;
  Netlist.Builder.finish b

let test_estimator_totals_are_sums () =
  let nl = chain_circuit () in
  let r = Estimator.estimate lib nl (Logic.vector_of_string "01") in
  let s =
    Array.fold_left
      (fun acc g -> Report.add acc g.Estimator.with_loading)
      Report.zero r.Estimator.per_gate
  in
  Alcotest.(check (float 1e-16)) "totals" (Report.total r.Estimator.totals)
    (Report.total s)

let test_estimator_baseline_is_isolated_sum () =
  let nl = chain_circuit () in
  let r = Estimator.estimate lib nl (Logic.vector_of_string "01") in
  Array.iter
    (fun (g : Estimator.gate_estimate) ->
      let e = Library.entry lib g.Estimator.gate.Netlist.kind g.Estimator.vector in
      Alcotest.(check (float 1e-18)) "baseline entry"
        (Report.total e.Characterize.nominal_isolated)
        (Report.total g.Estimator.no_loading))
    r.Estimator.per_gate

let test_estimator_loading_excludes_self () =
  (* on a single-fanout net the consumer sees zero input loading *)
  let b = Netlist.Builder.create "solo" in
  let a = Netlist.Builder.input b in
  let n1 = Netlist.Builder.gate b Gate.Inv [| a |] in
  let n2 = Netlist.Builder.gate b Gate.Inv [| n1 |] in
  Netlist.Builder.mark_output b n2;
  let nl = Netlist.Builder.finish b in
  let r = Estimator.estimate lib nl [| Logic.Zero |] in
  Alcotest.(check (float 1e-15)) "no siblings -> no input loading" 0.0
    r.Estimator.per_gate.(1).Estimator.loading_in.(0)

let test_estimator_sibling_loading_positive () =
  (* two gates sharing a '0' net load each other with positive current *)
  let b = Netlist.Builder.create "siblings" in
  let a = Netlist.Builder.input b in
  let n1 = Netlist.Builder.gate b Gate.Inv [| a |] in
  let n2 = Netlist.Builder.gate b Gate.Inv [| n1 |] in
  let n3 = Netlist.Builder.gate b Gate.Inv [| n1 |] in
  Netlist.Builder.mark_output b n2;
  Netlist.Builder.mark_output b n3;
  let nl = Netlist.Builder.finish b in
  (* pattern 1 -> n1 = 0 -> sibling pins inject *)
  let r = Estimator.estimate lib nl [| Logic.One |] in
  Alcotest.(check bool) "gate 1 loaded by gate 2" true
    (r.Estimator.per_gate.(1).Estimator.loading_in.(0) > 0.0);
  Alcotest.(check bool) "net injection recorded" true
    (r.Estimator.net_injection.(n1) > 0.0)

let test_estimator_matches_spice_on_chain () =
  let nl = chain_circuit () in
  List.iter
    (fun pattern ->
      let v = Logic.vector_of_string pattern in
      let est = Estimator.estimate lib nl v in
      let spice, _, _ = Leakage_spice.Leakage_report.analyze ~device ~temp nl v in
      let err =
        abs_float
          (Report.total est.Estimator.totals
          -. Report.total spice.Report.totals)
        /. Report.total spice.Report.totals
      in
      if err > 0.02 then
        Alcotest.failf "pattern %s: estimator off by %.2f%%" pattern (err *. 100.0))
    [ "00"; "01"; "10"; "11" ]

let test_estimator_average_over_vectors () =
  let nl = chain_circuit () in
  let vs = [ Logic.vector_of_string "00"; Logic.vector_of_string "11" ] in
  let loaded, base = Estimator.average_over_vectors lib nl vs in
  Alcotest.(check bool) "positive averages" true
    (Report.total loaded > 0.0 && Report.total base > 0.0)

let test_estimator_scratch_not_aliased () =
  (* regression: with ~scratch, result.assignment used to alias the buffer,
     so the next run_into on the same scratch mutated the earlier result *)
  let nl = chain_circuit () in
  let scratch = Array.make (Netlist.net_count nl) Logic.Zero in
  let r1 = Estimator.estimate ~scratch lib nl (Logic.vector_of_string "00") in
  let snapshot = Array.copy r1.Estimator.assignment in
  let r2 = Estimator.estimate ~scratch lib nl (Logic.vector_of_string "11") in
  Alcotest.(check bool) "first result survives second estimate" true
    (r1.Estimator.assignment = snapshot);
  Alcotest.(check bool) "two patterns produce distinct assignments" false
    (r1.Estimator.assignment = r2.Estimator.assignment)

(* -------------------------------------------------------------- Loading *)

let test_loading_input_sweep_shape () =
  let pts =
    Loading.input_sweep ~device ~temp
      ~currents:[| 0.0; 1.0e-6; 2.0e-6 |]
      Gate.Inv [| Logic.Zero |]
  in
  Alcotest.(check int) "3 points" 3 (Array.length pts);
  Alcotest.(check (float 1e-9)) "zero at origin" 0.0 pts.(0).Loading.ld_total;
  Alcotest.(check bool) "sub LD grows" true
    (pts.(2).Loading.ld_sub > pts.(1).Loading.ld_sub
    && pts.(1).Loading.ld_sub > 0.0);
  Alcotest.(check bool) "gate LD negative" true (pts.(2).Loading.ld_gate < 0.0)

let test_loading_output_sweep_negative () =
  let pts =
    Loading.output_sweep ~device ~temp
      ~currents:[| 0.0; 2.0e-6 |]
      Gate.Inv [| Logic.Zero |]
  in
  Alcotest.(check bool) "all components drop" true
    (pts.(1).Loading.ld_sub < 0.0
    && pts.(1).Loading.ld_gate < 0.0
    && pts.(1).Loading.ld_btbt < 0.0)

let test_loading_input0_stronger_than_input1 () =
  (* Fig 5: per unit loading current, input '0' reacts more than input '1' *)
  let at vector =
    (Loading.input_sweep ~device ~temp ~currents:[| 0.0; 2.0e-6 |] Gate.Inv
       vector).(1)
      .Loading.ld_total
  in
  Alcotest.(check bool) "LD_IN(0) > LD_IN(1)" true
    (at [| Logic.Zero |] > at [| Logic.One |])

let test_loading_nand_stacking_dependence () =
  (* Fig 7: input loading weaker at 00 than at 01 (stacking suppresses the
     subthreshold path the loading acts on) *)
  let at vector =
    (Loading.input_sweep ~device ~temp ~currents:[| 0.0; 2.0e-6 |]
       (Gate.Nand 2) (Logic.vector_of_string vector)).(1)
      .Loading.ld_total
  in
  Alcotest.(check bool) "00 weaker than 01" true (at "00" < at "01")

let test_loading_combined () =
  let p =
    Loading.combined ~device ~temp ~input_current:1.0e-6 ~output_current:1.0e-6
      Gate.Inv [| Logic.Zero |]
  in
  Alcotest.(check bool) "finite" true (Float.is_finite p.Loading.ld_total)

let test_loading_pin_guard () =
  Alcotest.check_raises "bad pin" (Invalid_argument "Loading.input_sweep: bad pin")
    (fun () ->
      ignore (Loading.input_sweep ~device ~temp ~pin:5 Gate.Inv [| Logic.Zero |]))

let test_loading_temperature_sweep () =
  let pts =
    Loading.temperature_sweep ~device ~temps_celsius:[| 27.0; 100.0 |]
      ~input_current:1.0e-6 ~output_current:1.0e-6 Gate.Inv [| Logic.Zero |]
  in
  Alcotest.(check int) "2 points" 2 (Array.length pts);
  let _, cold = pts.(0) and _, hot = pts.(1) in
  (* Fig 9: the subthreshold loading effect strengthens with temperature *)
  Alcotest.(check bool) "sub LD grows with T" true
    (hot.Loading.ld_sub > cold.Loading.ld_sub)

(* ---------------------------------------------------------- Monte Carlo *)

let mc_config =
  { Monte_carlo.n_samples = 60; seed = 11; n_load_in = 6; n_load_out = 6;
    input_value = Logic.Zero }

let test_mc_reproducible () =
  let sigmas = Variation.paper_sigmas in
  let a = Monte_carlo.run ~config:mc_config ~device ~temp ~sigmas () in
  let b = Monte_carlo.run ~config:mc_config ~device ~temp ~sigmas () in
  Alcotest.(check bool) "same seed, same samples" true
    (Array.for_all2
       (fun (x : Monte_carlo.sample) (y : Monte_carlo.sample) ->
         Report.total x.Monte_carlo.loaded = Report.total y.Monte_carlo.loaded)
       a b)

let test_mc_loading_shifts_subthreshold_up () =
  let sigmas = Variation.paper_sigmas in
  let samples = Monte_carlo.run ~config:mc_config ~device ~temp ~sigmas () in
  let loaded, unloaded =
    Monte_carlo.component_arrays samples ~pick:(fun c -> c.Report.isub)
  in
  Alcotest.(check bool) "mean sub up under loading" true
    (Stats.mean loaded > Stats.mean unloaded)

let test_mc_variation_spreads_leakage () =
  let sigmas = Variation.paper_sigmas in
  let samples = Monte_carlo.run ~config:mc_config ~device ~temp ~sigmas () in
  let loaded, _ = Monte_carlo.component_arrays samples ~pick:Report.total in
  Alcotest.(check bool) "non-degenerate spread" true
    (Stats.std loaded > 0.05 *. Stats.mean loaded)

let test_mc_sample_guard () =
  Alcotest.check_raises "n_samples" (Invalid_argument "Monte_carlo.run: n_samples")
    (fun () ->
      ignore
        (Monte_carlo.run
           ~config:{ mc_config with Monte_carlo.n_samples = 0 }
           ~device ~temp ~sigmas:Variation.paper_sigmas ()))

let test_min_vector_depends_on_flavour () =
  (* §4: NAND2 minimum-leakage vector is '00' for a subthreshold-dominated
     device but '10' for a gate-tunneling-dominated one *)
  let min_vector device =
    let best = ref ("", infinity) in
    List.iter
      (fun vector ->
        let c =
          Testbench.isolated_components ~device ~temp:300.0 (Gate.Nand 2)
            (Logic.vector_of_string vector)
        in
        let total = Report.total c in
        if total < snd !best then best := (vector, total))
      [ "00"; "01"; "10"; "11" ];
    fst !best
  in
  Alcotest.(check string) "sub-dominated minimum" "00" (min_vector Params.d25_s);
  Alcotest.(check string) "gate-dominated minimum" "10" (min_vector Params.d25_g)

let test_multi_pass_estimator_close_to_single_pass () =
  (* §6: loading does not propagate meaningfully beyond one level, so a
     second pass must barely move the estimate *)
  let nl = chain_circuit () in
  let v = Logic.vector_of_string "01" in
  let one = Estimator.estimate lib nl v in
  let two = Estimator.estimate ~passes:2 lib nl v in
  let t1 = Report.total one.Estimator.totals in
  let t2 = Report.total two.Estimator.totals in
  Alcotest.(check bool) "pass 2 within 0.5% of pass 1" true
    (abs_float (t2 -. t1) /. t1 < 0.005)

let test_estimator_passes_guard () =
  let nl = chain_circuit () in
  Alcotest.check_raises "passes >= 1"
    (Invalid_argument "Estimator.estimate: passes must be >= 1") (fun () ->
      ignore (Estimator.estimate ~passes:0 lib nl (Logic.vector_of_string "00")))

let test_pin_response_zero_matches_nominal () =
  let e = Library.entry lib Gate.Inv [| Logic.Zero |] in
  Alcotest.(check (float 1e-12)) "response(0) = nominal pin current"
    e.Characterize.pin_injection.(0)
    (Leakage_numeric.Interp.eval1d e.Characterize.pin_response.(0) 0.0)

(* ---------------------------------------------------------- Statistical *)

let small_random_circuit () =
  let p = { Leakage_benchmarks.Iscas.profile_name = "mini"; n_pi = 5;
            n_po = 3; n_ff = 2; n_gates = 25 } in
  Leakage_benchmarks.Iscas.generate ~seed:3 p

let test_statistical_reproducible () =
  let nl = small_random_circuit () in
  let rng = Rng.create 9 in
  let pattern = List.hd (Simulate.random_patterns rng nl 1) in
  let sigmas = Variation.paper_sigmas in
  let run () =
    Leakage_core.Statistical.run ~n_samples:30 ~seed:4 ~sigmas lib nl pattern
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same seed same samples" true
    (a.Leakage_core.Statistical.total_with_loading
     = b.Leakage_core.Statistical.total_with_loading)

let test_statistical_matches_solver_mc () =
  (* the quadratic-log fast model must track a transistor-level Monte Carlo
     on the same circuit within a few percent on the mean *)
  let nl = small_random_circuit () in
  let rng = Rng.create 9 in
  let pattern = List.hd (Simulate.random_patterns rng nl 1) in
  let sigmas = Variation.paper_sigmas in
  let n = 120 in
  let fast =
    Leakage_core.Statistical.run ~n_samples:n ~seed:5 ~sigmas lib nl pattern
  in
  let assign = Simulate.run nl pattern in
  let mcrng = Rng.create 5 in
  let reference =
    Array.init n (fun _ ->
        let s = Rng.split mcrng in
        let die = Variation.sample_die s sigmas in
        let die_dev = Variation.apply_die device die in
        let shifts =
          Array.init (Netlist.gate_count nl) (fun _ ->
              Variation.sample_gate_vth s sigmas)
        in
        let device_of_gate id = Variation.apply_gate die_dev shifts.(id) in
        let flat =
          Leakage_spice.Flatten.flatten ~device_of_gate ~device:die_dev
            ~temp:300.0 nl assign
        in
        let sol = Leakage_spice.Dc_solver.solve flat in
        Report.total
          (Report.of_solution flat sol.Leakage_spice.Dc_solver.voltages)
            .Report.totals)
  in
  let mf = Stats.mean fast.Leakage_core.Statistical.total_with_loading in
  let mr = Stats.mean reference in
  Alcotest.(check bool)
    (Printf.sprintf "means within 8%% (fast %.3e, ref %.3e)" mf mr)
    true
    (abs_float (mf -. mr) /. mr < 0.08);
  let sf = Stats.std fast.Leakage_core.Statistical.total_with_loading in
  let sr = Stats.std reference in
  Alcotest.(check bool)
    (Printf.sprintf "sigmas within 35%% (fast %.3e, ref %.3e)" sf sr)
    true
    (abs_float (sf -. sr) /. sr < 0.35)

let test_statistical_loading_shift () =
  let nl = small_random_circuit () in
  let rng = Rng.create 9 in
  let pattern = List.hd (Simulate.random_patterns rng nl 1) in
  let r =
    Leakage_core.Statistical.run ~n_samples:60 ~seed:2
      ~sigmas:Variation.paper_sigmas lib nl pattern
  in
  let loaded, unloaded = Leakage_core.Statistical.summary r in
  Alcotest.(check bool) "loading raises the mean" true
    (loaded.Stats.mean > unloaded.Stats.mean)

let test_statistical_die_scale_nominal () =
  let scale = Leakage_core.Statistical.die_scale lib Variation.nominal_die in
  Alcotest.(check (float 1e-6)) "sub factor 1" 1.0 scale.Report.isub;
  Alcotest.(check (float 1e-6)) "gate factor 1" 1.0 scale.Report.igate

let test_statistical_guard () =
  let nl = small_random_circuit () in
  Alcotest.check_raises "n_samples" (Invalid_argument "Statistical.run: n_samples")
    (fun () ->
      ignore
        (Leakage_core.Statistical.run ~n_samples:0
           ~sigmas:Variation.paper_sigmas lib nl
           (Array.make (Array.length (Netlist.inputs nl)) Logic.Zero)))

(* ------------------------------------------------------------- Strength *)

let test_strength_scales_isolated_leakage () =
  let base =
    Testbench.isolated_components ~device ~temp Gate.Inv [| Logic.Zero |]
  in
  let x2 =
    Testbench.isolated_components ~strength:2.0 ~device ~temp Gate.Inv
      [| Logic.Zero |]
  in
  Alcotest.(check (float 1e-3)) "2x cell leaks 2x" 2.0
    (Report.total x2 /. Report.total base)

let test_strength_estimator_matches_solver () =
  (* mixed-strength circuit: the estimator's per-bucket entries must still
     track the transistor-level solution *)
  let b = Netlist.Builder.create "strengths" in
  let a = Netlist.Builder.input b in
  let c = Netlist.Builder.input b in
  let n1 = Netlist.Builder.gate ~strength:2.0 b Gate.Inv [| a |] in
  let n2 = Netlist.Builder.gate ~strength:0.5 b (Gate.Nand 2) [| n1; c |] in
  let n3 = Netlist.Builder.gate ~strength:4.0 b Gate.Inv [| n2 |] in
  Netlist.Builder.mark_output b n3;
  let nl = Netlist.Builder.finish b in
  List.iter
    (fun pattern ->
      let v = Logic.vector_of_string pattern in
      let est = Estimator.estimate lib nl v in
      let spice, _, _ =
        Leakage_spice.Leakage_report.analyze ~device ~temp nl v
      in
      let err =
        abs_float
          (Report.total est.Estimator.totals
          -. Report.total spice.Report.totals)
        /. Report.total spice.Report.totals
      in
      if err > 0.02 then
        Alcotest.failf "pattern %s: %.2f%% error" pattern (err *. 100.0))
    [ "00"; "01"; "10"; "11" ]

let test_strength_library_buckets () =
  let n0 = Library.entry_count lib in
  ignore (Library.entry ~strength:3.0 lib Gate.Inv [| Logic.Zero |]);
  let n1 = Library.entry_count lib in
  Alcotest.(check bool) "new bucket characterized" true (n1 > n0);
  (* 3.05 quantizes into the same quarter-step bucket as 3.0 *)
  ignore (Library.entry ~strength:3.05 lib Gate.Inv [| Logic.Zero |]);
  Alcotest.(check int) "bucket shared" n1 (Library.entry_count lib)

let test_strength_builder_guard () =
  let b = Netlist.Builder.create "g" in
  let a = Netlist.Builder.input b in
  Alcotest.check_raises "non-positive strength"
    (Invalid_argument "Builder.gate: strength must be positive") (fun () ->
      ignore (Netlist.Builder.gate ~strength:0.0 b Gate.Inv [| a |]))

(* --------------------------------------------------------------- MTCMOS *)

let test_mtcmos_standby_collapses_leakage () =
  let nl = chain_circuit () in
  let r =
    Leakage_core.Mtcmos.analyze ~device ~temp:300.0 nl
      (Logic.vector_of_string "01")
  in
  Alcotest.(check bool) "both modes converged" true
    (r.Leakage_core.Mtcmos.active.Leakage_core.Mtcmos.converged
     && r.Leakage_core.Mtcmos.standby.Leakage_core.Mtcmos.converged);
  Alcotest.(check bool) "standby cuts more than half" true
    (r.Leakage_core.Mtcmos.standby_reduction_percent > 50.0);
  let vg = r.Leakage_core.Mtcmos.standby.Leakage_core.Mtcmos.virtual_ground in
  Alcotest.(check bool) "virtual ground floats up" true
    (vg > 0.1 && vg < device.Params.vdd);
  Alcotest.(check bool) "active virtual ground stays near 0" true
    (r.Leakage_core.Mtcmos.active.Leakage_core.Mtcmos.virtual_ground < 0.05)

let test_mtcmos_width_tradeoff () =
  let nl = chain_circuit () in
  let sweep =
    Leakage_core.Mtcmos.width_sweep ~device ~temp:300.0
      ~widths:[| 2.0; 40.0 |] nl (Logic.vector_of_string "01")
  in
  let _, narrow = sweep.(0) and _, wide = sweep.(1) in
  Alcotest.(check bool) "wider footer: lower active virtual ground" true
    (wide.Leakage_core.Mtcmos.active.Leakage_core.Mtcmos.virtual_ground
     < narrow.Leakage_core.Mtcmos.active.Leakage_core.Mtcmos.virtual_ground);
  Alcotest.(check bool) "wider footer: more standby footer leakage" true
    (Report.total wide.Leakage_core.Mtcmos.standby.Leakage_core.Mtcmos.footer_leakage
     > Report.total
         narrow.Leakage_core.Mtcmos.standby.Leakage_core.Mtcmos.footer_leakage)

let test_mtcmos_footer_zero_when_ungated () =
  let nl = chain_circuit () in
  let report, _, _ =
    Leakage_spice.Leakage_report.analyze ~device ~temp:300.0 nl
      (Logic.vector_of_string "01")
  in
  Alcotest.(check (float 0.0)) "no footer leakage without gating" 0.0
    (Report.total report.Report.footer)

let test_mtcmos_guard () =
  let nl = chain_circuit () in
  Alcotest.check_raises "width"
    (Invalid_argument "Mtcmos.analyze: non-positive sleep width") (fun () ->
      ignore
        (Leakage_core.Mtcmos.analyze ~sleep_width:0.0 ~device ~temp:300.0 nl
           (Logic.vector_of_string "01")))

(* -------------------------------------------------------------- Thermal *)

let test_thermal_converges_cool_package () =
  let nl = chain_circuit () in
  let cfg = { Leakage_core.Thermal.default_config with r_theta = 100.0 } in
  match
    Leakage_core.Thermal.solve ~config:cfg ~device nl
      (Logic.vector_of_string "01")
  with
  | Leakage_core.Thermal.Converged op ->
    Alcotest.(check bool) "above ambient" true
      (op.Leakage_core.Thermal.temperature > 300.0);
    Alcotest.(check bool) "modest self-heating" true
      (op.Leakage_core.Thermal.temperature < 310.0);
    (* self-consistency: T = ambient + R * P at the fixed point *)
    let expect =
      300.0 +. (100.0 *. op.Leakage_core.Thermal.leakage_power)
    in
    Alcotest.(check (float 0.3)) "fixed point" expect
      op.Leakage_core.Thermal.temperature
  | Leakage_core.Thermal.Runaway _ -> Alcotest.fail "unexpected runaway"

let test_thermal_monotone_in_resistance () =
  let nl = chain_circuit () in
  let temp_at r =
    match
      Leakage_core.Thermal.solve
        ~config:{ Leakage_core.Thermal.default_config with r_theta = r }
        ~device nl (Logic.vector_of_string "01")
    with
    | Leakage_core.Thermal.Converged op -> op.Leakage_core.Thermal.temperature
    | Leakage_core.Thermal.Runaway _ -> infinity
  in
  Alcotest.(check bool) "hotter package, hotter junction" true
    (temp_at 2000.0 > temp_at 100.0)

let test_thermal_runaway_detected () =
  let nl = chain_circuit () in
  (* absurd thermal resistance plus external power forces the exponential
     feedback past the ceiling *)
  let cfg =
    { Leakage_core.Thermal.default_config with
      r_theta = 2.0e7; other_power = 5.0e-6 }
  in
  match
    Leakage_core.Thermal.solve ~config:cfg ~device nl
      (Logic.vector_of_string "01")
  with
  | Leakage_core.Thermal.Runaway { last_temp; _ } ->
    Alcotest.(check bool) "past ceiling" true (last_temp > 400.0)
  | Leakage_core.Thermal.Converged op ->
    Alcotest.failf "expected runaway, converged at %.1f K"
      op.Leakage_core.Thermal.temperature

let test_thermal_profile_shape () =
  let nl = chain_circuit () in
  let points =
    Leakage_core.Thermal.temperature_profile ~device
      ~r_theta_values:[| 50.0; 500.0 |] nl (Logic.vector_of_string "01")
  in
  Alcotest.(check int) "two points" 2 (Array.length points)

(* ------------------------------------------------------------- Dual Vth *)

let chain_with_branch () =
  (* long inverter chain (critical) plus a one-level side gate (slack) *)
  let b = Netlist.Builder.create "dv" in
  let a = Netlist.Builder.input ~name:"a" b in
  let c = Netlist.Builder.input ~name:"c" b in
  let rec chain net n =
    if n = 0 then net else chain (Netlist.Builder.gate b Gate.Inv [| net |]) (n - 1)
  in
  let deep = chain a 6 in
  let shallow = Netlist.Builder.gate b (Gate.Nand 2) [| c; a |] in
  Netlist.Builder.mark_output b deep;
  Netlist.Builder.mark_output b shallow;
  Netlist.Builder.finish b

let test_dual_vth_slack_assignment () =
  let nl = chain_with_branch () in
  let assignment = Leakage_incremental.Dual_vth.slack_assignment ~critical_margin:0 nl in
  (* the six chain inverters lie on the longest path: low Vth *)
  let gates = Netlist.gates nl in
  Array.iter
    (fun (g : Netlist.gate) ->
      match g.kind with
      | Gate.Inv ->
        Alcotest.(check bool) "chain stays low-Vth" false assignment.(g.id)
      | Gate.Nand _ ->
        Alcotest.(check bool) "side branch goes high-Vth" true assignment.(g.id)
      | _ -> ())
    gates

let test_dual_vth_reduces_leakage () =
  let nl = chain_with_branch () in
  let high_device = Leakage_incremental.Dual_vth.high_vth_device device in
  let high_lib =
    Library.create ~grid:coarse_grid ~device:high_device ~temp
      ~vdd:device.Params.vdd ()
  in
  let assignment = Leakage_incremental.Dual_vth.slack_assignment ~critical_margin:0 nl in
  let e =
    Leakage_incremental.Dual_vth.evaluate ~low_lib:lib ~high_lib assignment nl
      (Logic.vector_of_string "01")
  in
  Alcotest.(check bool) "some gates high" true (e.Leakage_incremental.Dual_vth.n_high > 0);
  Alcotest.(check bool) "leakage reduced" true
    (e.Leakage_incremental.Dual_vth.reduction_percent > 0.0);
  (* all-low assignment must reproduce the baseline exactly *)
  let none = Array.make (Netlist.gate_count nl) false in
  let e0 =
    Leakage_incremental.Dual_vth.evaluate ~low_lib:lib ~high_lib none nl
      (Logic.vector_of_string "01")
  in
  Alcotest.(check (float 1e-9)) "all-low is baseline" 0.0
    e0.Leakage_incremental.Dual_vth.reduction_percent

let test_dual_vth_high_device () =
  let d = Leakage_incremental.Dual_vth.high_vth_device ~shift:0.1 device in
  Alcotest.(check (float 1e-12)) "threshold raised"
    (device.Params.nmos.Params.vth0 +. 0.1)
    d.Params.nmos.Params.vth0

let test_dual_vth_guards () =
  let nl = chain_with_branch () in
  Alcotest.check_raises "assignment size"
    (Invalid_argument "Dual_vth.evaluate: assignment size mismatch") (fun () ->
      ignore
        (Leakage_incremental.Dual_vth.evaluate ~low_lib:lib ~high_lib:lib [| true |]
           nl (Logic.vector_of_string "01")))

(* -------------------------------------------------------- Probabilistic *)

let test_probabilistic_propagate_inverter () =
  let b = Netlist.Builder.create "p" in
  let a = Netlist.Builder.input b in
  let o = Netlist.Builder.gate b Gate.Inv [| a |] in
  Netlist.Builder.mark_output b o;
  let nl = Netlist.Builder.finish b in
  let prob = Leakage_core.Probabilistic.propagate ~input_probability:[| 0.3 |] nl in
  Alcotest.(check (float 1e-12)) "inverter complements" 0.7 prob.(o)

let test_probabilistic_propagate_nand () =
  let b = Netlist.Builder.create "p2" in
  let x = Netlist.Builder.input b in
  let y = Netlist.Builder.input b in
  let o = Netlist.Builder.gate b (Gate.Nand 2) [| x; y |] in
  Netlist.Builder.mark_output b o;
  let nl = Netlist.Builder.finish b in
  let prob =
    Leakage_core.Probabilistic.propagate ~input_probability:[| 0.4; 0.5 |] nl
  in
  Alcotest.(check (float 1e-12)) "1 - p q" 0.8 prob.(o)

let test_probabilistic_distribution_sums_to_one () =
  List.iter
    (fun kind ->
      let arity = Gate.arity kind in
      let probs = Array.init arity (fun i -> 0.2 +. (0.15 *. float_of_int i)) in
      let total =
        List.fold_left (fun acc (_, p) -> acc +. p) 0.0
          (Leakage_core.Probabilistic.gate_state_distribution kind probs)
      in
      Alcotest.(check (float 1e-12)) (Gate.name kind ^ " sums to 1") 1.0 total)
    Gate.all_kinds

let test_probabilistic_guard () =
  let nl = chain_circuit () in
  Alcotest.check_raises "bad probability"
    (Invalid_argument "Probabilistic.propagate: probability outside [0,1]")
    (fun () ->
      ignore
        (Leakage_core.Probabilistic.propagate ~input_probability:[| 1.5; 0.0 |]
           nl))

let test_probabilistic_matches_empirical_average () =
  (* tree circuit (no reconvergence): the closed form must match a large
     empirical vector average closely *)
  let nl = Leakage_benchmarks.Trees.parity ~width:8 () in
  let expectation = Leakage_core.Probabilistic.expected_leakage lib nl in
  let rng = Rng.create 21 in
  let n = 300 in
  let empirical =
    List.fold_left
      (fun acc pattern ->
        Report.add acc (Estimator.estimate lib nl pattern).Estimator.totals)
      Report.zero
      (Simulate.random_patterns rng nl n)
  in
  let empirical = Report.scale (1.0 /. float_of_int n) empirical in
  let e = Report.total expectation.Leakage_core.Probabilistic.totals in
  let m = Report.total empirical in
  Alcotest.(check bool)
    (Printf.sprintf "analytic %.3e vs empirical %.3e within 3%%" e m)
    true
    (abs_float (e -. m) /. m < 0.03)

(* ------------------------------------------------------------ Reporting *)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let count_lines s =
  String.fold_left (fun acc c -> if c = '\n' then acc + 1 else acc) 0 s

let test_reporting_per_gate_csv () =
  let nl = chain_circuit () in
  let r = Estimator.estimate lib nl (Logic.vector_of_string "01") in
  let csv = Reporting.per_gate_csv nl r in
  Alcotest.(check int) "header + one row per gate"
    (Netlist.gate_count nl + 1) (count_lines csv);
  Alcotest.(check bool) "header fields" true
    (contains csv "gate_id,cell,output_net,vector");
  Alcotest.(check bool) "mentions NAND2" true (contains csv "NAND2")

let test_reporting_totals_csv () =
  let csv =
    Reporting.totals_csv
      [ ("x", { Report.isub = 1e-9; igate = 2e-9; ibtbt = 3e-9 }) ]
  in
  Alcotest.(check bool) "row rendered in nA" true
    (contains csv "x,1.0000,2.0000,3.0000,6.0000")

let test_reporting_ld_sweep_csv () =
  let pts =
    Loading.input_sweep ~device ~temp ~currents:[| 0.0; 1.0e-6 |] Gate.Inv
      [| Logic.Zero |]
  in
  let csv = Reporting.ld_sweep_csv pts in
  Alcotest.(check int) "header + 2 rows" 3 (count_lines csv);
  Alcotest.(check bool) "header" true (contains csv "current_nA,ld_sub_percent")

let test_reporting_mc_csv () =
  let samples =
    [|
      { Monte_carlo.loaded = { Report.isub = 1e-9; igate = 0.0; ibtbt = 0.0 };
        unloaded = { Report.isub = 2e-9; igate = 0.0; ibtbt = 0.0 } };
    |]
  in
  let csv = Reporting.mc_csv samples in
  Alcotest.(check int) "header + 1 row" 2 (count_lines csv);
  Alcotest.(check bool) "values" true (contains csv "1.0000,0.0000,0.0000,1.0000,2.0000")

let test_reporting_pp_per_gate_ranks () =
  let nl = chain_circuit () in
  let r = Estimator.estimate lib nl (Logic.vector_of_string "01") in
  let text = Format.asprintf "%a" (fun ppf -> Reporting.pp_per_gate ppf nl) r in
  Alcotest.(check bool) "has header" true (contains text "total[nA]");
  (* ranked: the first data line carries the largest total *)
  let totals =
    Array.map
      (fun (ge : Estimator.gate_estimate) -> Report.total ge.Estimator.with_loading)
      r.Estimator.per_gate
  in
  let largest = Array.fold_left Float.max 0.0 totals in
  let first_data_line = List.nth (String.split_on_char '\n' text) 1 in
  Alcotest.(check bool) "heaviest first" true
    (contains first_data_line (Printf.sprintf "%.1f" (largest *. 1e9)))

(* ------------------------------------------------------- Vector control *)

let test_vector_exhaustive_finds_minimum () =
  let nl = chain_circuit () in
  let r = Vector_control.exhaustive lib nl in
  (* brute force against the same objective *)
  let best = ref infinity in
  List.iter
    (fun v ->
      let t = Report.total (Estimator.estimate lib nl v).Estimator.totals in
      if t < !best then best := t)
    (Logic.all_vectors 2);
  Alcotest.(check (float 1e-18)) "matches brute force" !best r.Vector_control.total

let test_vector_greedy_descends () =
  let nl = chain_circuit () in
  let start = Logic.vector_of_string "11" in
  let start_total =
    Report.total (Estimator.estimate lib nl start).Estimator.totals
  in
  let r = Vector_control.greedy_descent lib nl ~start in
  Alcotest.(check bool) "no worse than start" true
    (r.Vector_control.total <= start_total +. 1e-18)

let test_vector_random_search_bounded () =
  let nl = chain_circuit () in
  let rng = Rng.create 3 in
  let r = Vector_control.random_search ~rng ~samples:8 lib nl in
  let exact = Vector_control.exhaustive lib nl in
  Alcotest.(check bool) "random >= exhaustive optimum" true
    (r.Vector_control.total >= exact.Vector_control.total -. 1e-18)

let test_vector_compare_objectives () =
  let nl = chain_circuit () in
  let c = Vector_control.compare_objectives lib nl in
  Alcotest.(check bool) "loading optimum not above no-loading vector's true cost"
    true
    (c.Vector_control.with_loading.Vector_control.total
     <= c.Vector_control.without_under_loading +. 1e-18);
  Alcotest.(check bool) "changed flag consistent" true
    (c.Vector_control.changed
     = (c.Vector_control.with_loading.Vector_control.vector
        <> c.Vector_control.without_loading.Vector_control.vector))

let test_vector_exhaustive_guard () =
  let b = Netlist.Builder.create "wide" in
  let pins = Array.init 21 (fun _ -> Netlist.Builder.input b) in
  let o = Netlist.Builder.gate b (Gate.And 2) [| pins.(0); pins.(1) |] in
  Netlist.Builder.mark_output b o;
  let nl = Netlist.Builder.finish b in
  Alcotest.check_raises "too wide"
    (Invalid_argument "Vector_control.exhaustive: too many inputs (> 20)")
    (fun () -> ignore (Vector_control.exhaustive lib nl))

let () =
  Alcotest.run "core"
    [
      ( "testbench",
        [
          Alcotest.test_case "shape" `Quick test_testbench_shape;
          Alcotest.test_case "vector guard" `Quick test_testbench_vector_guard;
          Alcotest.test_case "drivers apply vector" `Quick test_testbench_drivers_apply_vector;
          Alcotest.test_case "solve" `Quick test_testbench_solve_components;
          Alcotest.test_case "injection guard" `Quick test_testbench_injection_guard;
          Alcotest.test_case "pin injection sign" `Quick test_testbench_pin_injection_sign;
          Alcotest.test_case "isolated" `Quick test_isolated_components;
        ] );
      ( "characterize",
        [
          Alcotest.test_case "identity at origin" `Quick test_characterize_zero_injection_identity;
          Alcotest.test_case "input delta signs" `Quick test_characterize_delta_signs_input;
          Alcotest.test_case "output delta signs" `Quick test_characterize_delta_signs_output;
          Alcotest.test_case "monotone sub" `Quick test_characterize_monotone_sub_table;
          Alcotest.test_case "pin injection state" `Quick test_characterize_pin_injection_matches_state;
          Alcotest.test_case "apply guard" `Quick test_characterize_apply_guard;
          Alcotest.test_case "never negative" `Quick test_characterize_apply_never_negative;
          Alcotest.test_case "grid guards" `Quick test_characterize_grid_guards;
        ] );
      ( "library",
        [
          Alcotest.test_case "caches" `Quick test_library_caches;
          Alcotest.test_case "distinct vectors" `Quick test_library_distinct_vectors;
          Alcotest.test_case "accessors" `Quick test_library_accessors;
          Alcotest.test_case "strength range" `Quick test_library_strength_range;
          Alcotest.test_case "strength guards" `Quick test_library_strength_guards;
          Alcotest.test_case "vector arity guard" `Quick
            test_library_vector_arity_guard;
          Alcotest.test_case "tiny strength bucket" `Quick
            test_library_tiny_strength_shares_bucket;
        ] );
      ( "estimator",
        [
          Alcotest.test_case "totals are sums" `Quick test_estimator_totals_are_sums;
          Alcotest.test_case "baseline" `Quick test_estimator_baseline_is_isolated_sum;
          Alcotest.test_case "self excluded" `Quick test_estimator_loading_excludes_self;
          Alcotest.test_case "sibling loading" `Quick test_estimator_sibling_loading_positive;
          Alcotest.test_case "matches spice" `Quick test_estimator_matches_spice_on_chain;
          Alcotest.test_case "vector averaging" `Quick test_estimator_average_over_vectors;
          Alcotest.test_case "scratch not aliased" `Quick test_estimator_scratch_not_aliased;
        ] );
      ( "loading",
        [
          Alcotest.test_case "input sweep" `Quick test_loading_input_sweep_shape;
          Alcotest.test_case "output sweep" `Quick test_loading_output_sweep_negative;
          Alcotest.test_case "input 0 vs 1" `Quick test_loading_input0_stronger_than_input1;
          Alcotest.test_case "nand stacking" `Quick test_loading_nand_stacking_dependence;
          Alcotest.test_case "combined" `Quick test_loading_combined;
          Alcotest.test_case "pin guard" `Quick test_loading_pin_guard;
          Alcotest.test_case "temperature" `Quick test_loading_temperature_sweep;
        ] );
      ( "monte-carlo",
        [
          Alcotest.test_case "reproducible" `Quick test_mc_reproducible;
          Alcotest.test_case "sub shifts up" `Quick test_mc_loading_shifts_subthreshold_up;
          Alcotest.test_case "spread" `Quick test_mc_variation_spreads_leakage;
          Alcotest.test_case "sample guard" `Quick test_mc_sample_guard;
        ] );
      ( "strength",
        [
          Alcotest.test_case "scales leakage" `Quick test_strength_scales_isolated_leakage;
          Alcotest.test_case "estimator accuracy" `Quick test_strength_estimator_matches_solver;
          Alcotest.test_case "library buckets" `Quick test_strength_library_buckets;
          Alcotest.test_case "builder guard" `Quick test_strength_builder_guard;
        ] );
      ( "mtcmos",
        [
          Alcotest.test_case "standby collapse" `Quick test_mtcmos_standby_collapses_leakage;
          Alcotest.test_case "width tradeoff" `Quick test_mtcmos_width_tradeoff;
          Alcotest.test_case "ungated footer zero" `Quick test_mtcmos_footer_zero_when_ungated;
          Alcotest.test_case "guard" `Quick test_mtcmos_guard;
        ] );
      ( "thermal",
        [
          Alcotest.test_case "converges" `Quick test_thermal_converges_cool_package;
          Alcotest.test_case "monotone in R" `Quick test_thermal_monotone_in_resistance;
          Alcotest.test_case "runaway detection" `Quick test_thermal_runaway_detected;
          Alcotest.test_case "profile" `Quick test_thermal_profile_shape;
        ] );
      ( "dual-vth",
        [
          Alcotest.test_case "slack assignment" `Quick test_dual_vth_slack_assignment;
          Alcotest.test_case "reduces leakage" `Quick test_dual_vth_reduces_leakage;
          Alcotest.test_case "high device" `Quick test_dual_vth_high_device;
          Alcotest.test_case "guards" `Quick test_dual_vth_guards;
        ] );
      ( "probabilistic",
        [
          Alcotest.test_case "inverter" `Quick test_probabilistic_propagate_inverter;
          Alcotest.test_case "nand" `Quick test_probabilistic_propagate_nand;
          Alcotest.test_case "distribution sums" `Quick test_probabilistic_distribution_sums_to_one;
          Alcotest.test_case "guard" `Quick test_probabilistic_guard;
          Alcotest.test_case "matches empirical" `Slow test_probabilistic_matches_empirical_average;
        ] );
      ( "statistical",
        [
          Alcotest.test_case "reproducible" `Quick test_statistical_reproducible;
          Alcotest.test_case "matches solver MC" `Slow test_statistical_matches_solver_mc;
          Alcotest.test_case "loading shift" `Quick test_statistical_loading_shift;
          Alcotest.test_case "nominal die scale" `Quick test_statistical_die_scale_nominal;
          Alcotest.test_case "guard" `Quick test_statistical_guard;
        ] );
      ( "reporting",
        [
          Alcotest.test_case "per-gate csv" `Quick test_reporting_per_gate_csv;
          Alcotest.test_case "totals csv" `Quick test_reporting_totals_csv;
          Alcotest.test_case "ld sweep csv" `Quick test_reporting_ld_sweep_csv;
          Alcotest.test_case "mc csv" `Quick test_reporting_mc_csv;
          Alcotest.test_case "pp ranks" `Quick test_reporting_pp_per_gate_ranks;
        ] );
      ( "paper-claims",
        [
          Alcotest.test_case "min vector by flavour" `Quick test_min_vector_depends_on_flavour;
          Alcotest.test_case "multi-pass stable" `Quick test_multi_pass_estimator_close_to_single_pass;
          Alcotest.test_case "passes guard" `Quick test_estimator_passes_guard;
          Alcotest.test_case "pin response origin" `Quick test_pin_response_zero_matches_nominal;
        ] );
      ( "vector-control",
        [
          Alcotest.test_case "exhaustive minimum" `Quick test_vector_exhaustive_finds_minimum;
          Alcotest.test_case "greedy descends" `Quick test_vector_greedy_descends;
          Alcotest.test_case "random bounded" `Quick test_vector_random_search_bounded;
          Alcotest.test_case "compare objectives" `Quick test_vector_compare_objectives;
          Alcotest.test_case "exhaustive guard" `Quick test_vector_exhaustive_guard;
        ] );
    ]
