(* Tests of the incremental re-estimation engine: cone-scoped delta updates
   must agree with a fresh Fig-13 estimate of the same state, edits must be
   exactly undoable, and the session-based optimizers must reproduce their
   full-estimate counterparts. *)

module Params = Leakage_device.Params
module Logic = Leakage_circuit.Logic
module Gate = Leakage_circuit.Gate
module Netlist = Leakage_circuit.Netlist
module Report = Leakage_spice.Leakage_report
module Characterize = Leakage_core.Characterize
module Library = Leakage_core.Library
module Estimator = Leakage_core.Estimator
module Incremental = Leakage_incremental.Incremental
module Edit = Leakage_incremental.Edit
module Cone = Leakage_incremental.Cone
module Simulate = Leakage_circuit.Simulate
module Dual_vth = Leakage_incremental.Dual_vth
module Vector_mc = Leakage_incremental.Vector_mc
module Trees = Leakage_benchmarks.Trees
module Adders = Leakage_benchmarks.Adders
module Rng = Leakage_numeric.Rng

let device = Params.d25
let temp = 300.0

(* Characterization dominates runtime; share one coarse grid and bounded
   kind/strength/library palettes so the cache stays warm across cases. *)
let coarse_grid = { Characterize.max_current = 3.0e-6; points = 5 }
let lib = Library.create ~grid:coarse_grid ~device ~temp ()

let hvt_lib =
  Library.create ~grid:coarse_grid
    ~device:(Dual_vth.high_vth_device device)
    ~temp ~vdd:device.Params.vdd ()

let palette = [| 0.5; 1.0; 2.0 |]

let rel a b =
  if b = 0.0 then Float.abs a else Float.abs (a -. b) /. Float.abs b

(* Does the session agree with a fresh full estimate of its own state? *)
let matches_fresh ?(tol = 1e-9) session =
  let fresh =
    Estimator.estimate
      ~library_of_gate:(Incremental.library_of_gate session)
      lib
      (Incremental.current_netlist session)
      (Incremental.pattern session)
  in
  rel
    (Report.total (Incremental.totals session))
    (Report.total fresh.Estimator.totals)
  <= tol
  && rel
       (Report.total (Incremental.baseline_totals session))
       (Report.total fresh.Estimator.baseline_totals)
     <= tol

let check_fresh what session =
  Alcotest.(check bool) (what ^ " matches fresh estimate") true
    (matches_fresh session)

(* gates: 0 NAND2, 1 INV, 2 NOR2, 3 INV; inputs are nets 0 and 1 *)
let small_circuit () =
  let b = Netlist.Builder.create "small" in
  let a = Netlist.Builder.input b in
  let c = Netlist.Builder.input b in
  let n1 = Netlist.Builder.gate b (Gate.Nand 2) [| a; c |] in
  let n2 = Netlist.Builder.gate b Gate.Inv [| n1 |] in
  let n3 = Netlist.Builder.gate b (Gate.Nor 2) [| n1; c |] in
  let n4 = Netlist.Builder.gate b Gate.Inv [| n2 |] in
  Netlist.Builder.mark_output b n4;
  Netlist.Builder.mark_output b n3;
  Netlist.Builder.finish b

let adder_circuit width =
  let b = Netlist.Builder.create "radd" in
  let xs = Array.init width (fun _ -> Netlist.Builder.input b) in
  let ys = Array.init width (fun _ -> Netlist.Builder.input b) in
  let cin = Netlist.Builder.input b in
  let sums, cout = Adders.ripple_adder b xs ys cin in
  Array.iter (Netlist.Builder.mark_output b) sums;
  Netlist.Builder.mark_output b cout;
  Netlist.Builder.finish b

let session ?refresh_every nl bits =
  Incremental.create ?refresh_every lib nl (Logic.vector_of_string bits)

(* ----------------------------------------------------- single-edit kinds *)

let test_resize_matches () =
  let s = session (small_circuit ()) "01" in
  Incremental.apply s (Edit.Resize (0, 2.0));
  check_fresh "resize" s;
  Incremental.apply s (Edit.Resize (2, 0.5));
  check_fresh "second resize" s

let test_retype_matches () =
  let s = session (small_circuit ()) "01" in
  Incremental.apply s (Edit.Retype (0, Gate.Nor 2));
  check_fresh "retype NAND2->NOR2" s;
  Incremental.apply s (Edit.Retype (1, Gate.Buf));
  check_fresh "retype INV->BUF" s

let test_relib_matches () =
  let s = session (small_circuit ()) "10" in
  Incremental.apply s (Edit.Relib (1, hvt_lib));
  Incremental.apply s (Edit.Relib (3, hvt_lib));
  check_fresh "relib two gates" s;
  Alcotest.(check bool) "library reflected" true
    (Incremental.library_of_gate s 1 == hvt_lib
     && Incremental.library_of_gate s 0 == lib)

let test_set_input_matches () =
  let s = session (small_circuit ()) "01" in
  Incremental.apply s (Edit.Set_input (0, true));
  check_fresh "flip input 0" s;
  Alcotest.(check string) "pattern tracks the edit" "11"
    (Logic.vector_to_string (Incremental.pattern s))

let test_set_vector_matches () =
  let nl = adder_circuit 2 in
  let s = session nl "00000" in
  Incremental.set_vector s (Logic.vector_of_string "10110");
  check_fresh "set_vector" s;
  Alcotest.(check string) "pattern replaced" "10110"
    (Logic.vector_to_string (Incremental.pattern s));
  (* a session opened directly at the target vector agrees *)
  let direct = session nl "10110" in
  Alcotest.(check bool) "same totals as a direct session" true
    (rel
       (Report.total (Incremental.totals s))
       (Report.total (Incremental.totals direct))
     <= 1e-9)

(* --------------------------------------------------------- undo/rollback *)

let test_undo_restores_exactly () =
  let nl = small_circuit () in
  let s = session nl "01" in
  let initial = Report.total (Incremental.totals s) in
  let edits =
    [ Edit.Resize (0, 2.0); Edit.Retype (3, Gate.Buf);
      Edit.Set_input (0, true); Edit.Relib (2, hvt_lib) ]
  in
  List.iter (Incremental.apply s) edits;
  Alcotest.(check int) "four undoable edits" 4 (Incremental.undo_depth s);
  List.iter (fun _ -> Incremental.undo s) edits;
  Alcotest.(check int) "log drained" 0 (Incremental.undo_depth s);
  Alcotest.(check bool) "totals restored" true
    (rel (Report.total (Incremental.totals s)) initial <= 1e-12);
  Alcotest.(check string) "pattern restored" "01"
    (Logic.vector_to_string (Incremental.pattern s));
  let orig = Netlist.gates nl and cur = Netlist.gates (Incremental.current_netlist s) in
  Array.iteri
    (fun i (g : Netlist.gate) ->
      Alcotest.(check string) "kind restored" (Gate.name g.Netlist.kind)
        (Gate.name cur.(i).Netlist.kind);
      Alcotest.(check (float 0.0)) "strength restored" g.Netlist.strength
        cur.(i).Netlist.strength)
    orig

let test_batch_equals_sequential () =
  let nl = small_circuit () in
  let edits =
    [ Edit.Resize (0, 0.5); Edit.Set_input (1, false); Edit.Resize (1, 2.0) ]
  in
  let a = session nl "01" in
  Incremental.apply_batch a edits;
  let b = session nl "01" in
  List.iter (Incremental.apply b) edits;
  Alcotest.(check bool) "batch equals sequential" true
    (rel
       (Report.total (Incremental.totals a))
       (Report.total (Incremental.totals b))
     <= 1e-12);
  Alcotest.(check int) "batch logs each edit" 3 (Incremental.undo_depth a);
  (* undo through a batch reverts edit by edit, in reverse order *)
  Incremental.undo a;
  Incremental.undo a;
  Incremental.undo a;
  check_fresh "after undoing a batch" a

let test_checkpoint_rollback () =
  let nl = adder_circuit 2 in
  let s = session nl "01101" in
  Incremental.apply s (Edit.Resize (0, 2.0));
  Incremental.apply s (Edit.Resize (1, 0.5));
  let mid = Report.total (Incremental.totals s) in
  let cp = Incremental.checkpoint s in
  Incremental.apply s (Edit.Retype (2, Gate.Nor 2));
  Incremental.apply s (Edit.Set_input (0, false));
  Incremental.apply s (Edit.Relib (3, hvt_lib));
  Incremental.rollback s cp;
  Alcotest.(check int) "depth back at checkpoint" 2 (Incremental.undo_depth s);
  Alcotest.(check bool) "totals back at checkpoint" true
    (rel (Report.total (Incremental.totals s)) mid <= 1e-12);
  check_fresh "after rollback" s

let test_refresh_squashes_drift () =
  let nl = adder_circuit 2 in
  let s = session ~refresh_every:0 nl "11010" in
  let rng = Rng.create 11 in
  for _ = 1 to 200 do
    Incremental.apply s (Edit.random_resize ~strengths:palette rng nl)
  done;
  Alcotest.(check int) "no automatic refreshes" 0
    (Incremental.stats s).Incremental.refreshes;
  let before = Report.total (Incremental.totals s) in
  Incremental.refresh s;
  Alcotest.(check bool) "drift below 1e-9 relative" true
    (rel before (Report.total (Incremental.totals s)) <= 1e-9);
  check_fresh "after manual refresh" s

let test_stats_count_cones () =
  let s = session (small_circuit ()) "01" in
  Incremental.apply s (Edit.Resize (3, 2.0));
  let st = Incremental.stats s in
  Alcotest.(check int) "one edit" 1 st.Incremental.edits;
  Alcotest.(check bool) "cone smaller than circuit" true
    (st.Incremental.leakage_lookups < 4 && st.Incremental.leakage_lookups > 0)

(* ---------------------------------------------------------------- guards *)

let test_guards () =
  let nl = small_circuit () in
  let s = session nl "01" in
  Alcotest.check_raises "unknown gate"
    (Invalid_argument "Incremental: unknown gate id 99") (fun () ->
      Incremental.apply s (Edit.Resize (99, 1.0)));
  Alcotest.check_raises "non-positive strength"
    (Invalid_argument "Incremental: Resize strength must be positive")
    (fun () -> Incremental.apply s (Edit.Resize (0, 0.0)));
  Alcotest.check_raises "strength beyond the library's packable range"
    (Invalid_argument
       "Incremental: Resize strength 300 exceeds the library's \
        characterizable range (max 255.75)")
    (fun () -> Incremental.apply s (Edit.Resize (0, 300.0)));
  Alcotest.check_raises "arity-changing retype"
    (Invalid_argument "Incremental: Retype g0 to INV changes arity") (fun () ->
      Incremental.apply s (Edit.Retype (0, Gate.Inv)));
  Alcotest.check_raises "set_input off the inputs"
    (Invalid_argument "Incremental: Set_input on non-input net 2") (fun () ->
      Incremental.apply s (Edit.Set_input (2, true)));
  let hot = Library.create ~grid:coarse_grid ~device ~temp:350.0 () in
  Alcotest.check_raises "off-corner relib"
    (Invalid_argument
       "Incremental: Relib library must share temperature and supply with \
        the session") (fun () -> Incremental.apply s (Edit.Relib (0, hot)));
  Alcotest.check_raises "undo on empty log"
    (Invalid_argument "Incremental.undo: empty undo log") (fun () ->
      Incremental.undo s);
  Incremental.apply s (Edit.Resize (0, 2.0));
  let cp = Incremental.checkpoint s in
  Incremental.undo s;
  Alcotest.check_raises "rollback past an undone checkpoint"
    (Invalid_argument "Incremental.rollback: checkpoint already undone past")
    (fun () -> Incremental.rollback s cp)

(* -------------------------------------------- session-based optimizers *)

let test_greedy_dual_vth () =
  let nl = adder_circuit 2 in
  let pattern = Logic.vector_of_string "01100" in
  let all = Array.make (Netlist.gate_count nl) true in
  let e =
    Dual_vth.greedy_assignment ~candidates:all ~low_lib:lib ~high_lib:hvt_lib
      nl pattern
  in
  Alcotest.(check bool) "greedy only accepts improvements" true
    (e.Dual_vth.reduction_percent >= 0.0);
  (* the accepted assignment re-evaluated from scratch gives the same answer *)
  let e' = Dual_vth.evaluate ~low_lib:lib ~high_lib:hvt_lib e.Dual_vth.assignment nl pattern in
  Alcotest.(check bool) "greedy totals match a fresh evaluation" true
    (rel (Report.total e.Dual_vth.totals) (Report.total e'.Dual_vth.totals)
     <= 1e-9)

let test_vector_mc_matches_estimator () =
  let nl = Trees.parity ~width:4 () in
  let vectors =
    List.map Logic.vector_of_string [ "0000"; "1010"; "1111"; "0110"; "1000" ]
  in
  let m_loaded, m_base = Vector_mc.over_vectors lib nl vectors in
  let e_loaded, e_base = Estimator.average_over_vectors lib nl vectors in
  Alcotest.(check bool) "mean loading totals match" true
    (rel (Report.total m_loaded) (Report.total e_loaded) <= 1e-9);
  Alcotest.(check bool) "mean baseline totals match" true
    (rel (Report.total m_base) (Report.total e_base) <= 1e-9)

let test_vector_mc_resample () =
  let nl = Trees.parity ~width:4 () in
  let r = Vector_mc.resample ~seed:3 ~samples:20 lib nl in
  Alcotest.(check int) "sample count" 20 r.Vector_mc.summary.Leakage_numeric.Stats.n;
  Alcotest.(check bool) "mean components consistent with totals" true
    (rel
       (Report.total r.Vector_mc.mean_components)
       (Leakage_numeric.Stats.mean r.Vector_mc.totals)
     <= 1e-9);
  Alcotest.check_raises "samples guard"
    (Invalid_argument "Vector_mc.resample: samples must be positive")
    (fun () -> ignore (Vector_mc.resample ~samples:0 lib nl))

(* ------------------------------------------------------- differential *)

(* The shared replay harness cross-checks sequential apply_batch, pooled
   apply_batch at jobs ∈ {1,2,4,8}, a per-edit walk and the from-scratch
   estimator on this file's reference circuits. *)
let test_differential_replay () =
  let nl = adder_circuit 2 in
  let rng = Rng.create 5 in
  let pattern = Logic.vector_of_string "01101" in
  let batches =
    [ Diff_harness.random_batch rng nl 8; Diff_harness.random_batch rng nl 3 ]
  in
  Alcotest.(check bool) "replay on the ripple adder" true
    (Diff_harness.check ~name:"adder" nl pattern batches);
  let small = small_circuit () in
  Alcotest.(check bool) "replay on the small circuit" true
    (Diff_harness.check ~name:"small" small
       (Logic.vector_of_string "01")
       [ Diff_harness.random_batch rng small 6 ])

(* ------------------------------------------------------- deep chains *)

(* Regression for the non-tail-recursive cone walk and union-find: both used
   to overflow the stack on chains a few tens of thousands of gates deep.
   The walk, the 64-way claim chain and the pruned variant must all survive
   a 100k-stage chain. *)
let test_deep_chain_structural () =
  let stages = 100_000 in
  let nl = Trees.chain ~stages () in
  let c = Cone.Partition.cone nl (Edit.Retype (0, Gate.Buf)) in
  Alcotest.(check int) "full-depth structural cone" stages
    (List.length c.Cone.Partition.gates);
  let edits =
    Array.init 64 (fun i -> Edit.Retype (i * (stages / 64), Gate.Buf))
  in
  let groups = Cone.Partition.groups nl edits in
  Alcotest.(check int) "one downstream-entangled group" 1 (Array.length groups);
  Alcotest.(check int) "all 64 edits in it" 64 (Array.length groups.(0))

let partition_state_of nl pattern =
  {
    Cone.Partition.values = Simulate.run nl pattern;
    kinds =
      Array.map (fun (g : Netlist.gate) -> g.Netlist.kind) (Netlist.gates nl);
  }

let test_deep_chain_pruned () =
  let stages = 100_000 and tap_every = 1_000 in
  let nl = Trees.chain ~stages ~tap_every () in
  let width = Array.length (Netlist.inputs nl) in
  (* all-zero pattern: every gateway NAND sees a controlling 0 tap *)
  let state = partition_state_of nl (Array.make width Logic.Zero) in
  let edits =
    Array.init 16 (fun i -> Edit.Retype ((i * 6 * tap_every) + 500, Gate.Buf))
  in
  let groups = Cone.Partition.groups ~state nl edits in
  Alcotest.(check int) "one pruned group per edited segment" 16
    (Array.length groups);
  Array.iter
    (fun (c : Cone.Partition.cone) ->
      Alcotest.(check bool) "pruned cone bounded by its segment" true
        (List.length c.Cone.Partition.gates <= tap_every))
    (Cone.Partition.cones ~state nl edits)

(* ------------------------------------------------------------ properties *)

let circuit_pool =
  [|
    (fun () -> Trees.parity ~width:4 ());
    (fun () -> Trees.decoder ~select_bits:2 ());
    (fun () -> Trees.mux_tree ~select_bits:2 ());
    (fun () -> adder_circuit 2);
  |]

let random_edit rng nl =
  match Rng.int rng 4 with
  | 0 | 1 -> Edit.random_resize ~strengths:palette rng nl
  | 2 -> Edit.random_set_input rng nl
  | _ ->
    let gates = Netlist.gates nl in
    let g = gates.(Rng.int rng (Array.length gates)) in
    (match Array.length g.Netlist.fan_in with
     | 1 ->
       Edit.Retype (g.Netlist.id, if Rng.bool rng then Gate.Inv else Gate.Buf)
     | 2 ->
       Edit.Retype
         (g.Netlist.id, if Rng.bool rng then Gate.Nand 2 else Gate.Nor 2)
     | _ -> Edit.Relib (g.Netlist.id, if Rng.bool rng then hvt_lib else lib))

(* groups as a set of sets of original batch indices *)
let canonical map groups =
  List.sort compare
    (List.map
       (fun g -> List.sort compare (List.map map (Array.to_list g)))
       (Array.to_list groups))

let shuffled_perm rng n =
  let perm = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let x = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- x
  done;
  perm

(* The partition is a function of the batch as a set and the observable
   pre-batch state (values + kinds) — identical for any edit order within
   the batch, and for any session history that settles to the same state. *)
let prop_partition_deterministic (pick, seed) =
  let nl = circuit_pool.(pick mod Array.length circuit_pool) () in
  let rng = Rng.create (seed + 1) in
  let width = Array.length (Netlist.inputs nl) in
  let pattern = Logic.random_vector rng width in
  let n = 2 + Rng.int rng 8 in
  let edits = List.init n (fun _ -> random_edit rng nl) in
  let earr = Array.of_list edits in
  let s0 = Incremental.create lib nl pattern in
  let reference = canonical Fun.id (Incremental.preview_groups s0 edits) in
  (* edit order within the batch *)
  let perm = shuffled_perm rng n in
  let shuffled = List.init n (fun i -> earr.(perm.(i))) in
  let by_perm =
    canonical (fun i -> perm.(i)) (Incremental.preview_groups s0 shuffled)
  in
  (* prior session edits, all undone: same settled state, same groups *)
  let s1 = Incremental.create lib nl pattern in
  let cp = Incremental.checkpoint s1 in
  for _ = 1 to 4 do
    Incremental.apply s1 (random_edit rng nl)
  done;
  Incremental.rollback s1 cp;
  let after_detour = canonical Fun.id (Incremental.preview_groups s1 edits) in
  (* a different starting vector moved to the same pattern *)
  let s2 = Incremental.create lib nl (Logic.random_vector rng width) in
  Incremental.set_vector s2 pattern;
  let after_move = canonical Fun.id (Incremental.preview_groups s2 edits) in
  reference = by_perm && reference = after_detour && reference = after_move

(* Random edit sequences on random netlists stay equivalent to a fresh
   estimate — including at intermediate points, after a batch, and after
   rolling everything back. *)
let prop_random_edits (pick, seed) =
  let nl = circuit_pool.(pick mod Array.length circuit_pool) () in
  let rng = Rng.create (seed + 1) in
  let width = Array.length (Netlist.inputs nl) in
  let s =
    Incremental.create ~refresh_every:5 lib nl (Logic.random_vector rng width)
  in
  let initial = Report.total (Incremental.totals s) in
  let cp0 = Incremental.checkpoint s in
  let ok = ref true in
  for i = 1 to 9 do
    Incremental.apply s (random_edit rng nl);
    if i mod 3 = 0 then ok := !ok && matches_fresh s
  done;
  Incremental.apply_batch s
    [ random_edit rng nl; random_edit rng nl; random_edit rng nl ];
  ok := !ok && matches_fresh s;
  Incremental.rollback s cp0;
  ok := !ok && matches_fresh s
  && rel (Report.total (Incremental.totals s)) initial <= 1e-9;
  !ok

let prop_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:8 ~name:"random edit sequences match fresh estimates"
         QCheck2.Gen.(tup2 (int_bound 1000) (int_bound 10_000))
         prop_random_edits);
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:20
         ~name:"partition groups independent of edit order and history"
         QCheck2.Gen.(tup2 (int_bound 1000) (int_bound 10_000))
         prop_partition_deterministic);
  ]

let () =
  Alcotest.run "incremental"
    [
      ( "edits",
        [
          Alcotest.test_case "resize" `Quick test_resize_matches;
          Alcotest.test_case "retype" `Quick test_retype_matches;
          Alcotest.test_case "relib" `Quick test_relib_matches;
          Alcotest.test_case "set input" `Quick test_set_input_matches;
          Alcotest.test_case "set vector" `Quick test_set_vector_matches;
        ] );
      ( "undo",
        [
          Alcotest.test_case "undo restores exactly" `Quick
            test_undo_restores_exactly;
          Alcotest.test_case "batch equals sequential" `Quick
            test_batch_equals_sequential;
          Alcotest.test_case "checkpoint/rollback" `Quick
            test_checkpoint_rollback;
          Alcotest.test_case "refresh squashes drift" `Quick
            test_refresh_squashes_drift;
          Alcotest.test_case "stats count cones" `Quick test_stats_count_cones;
          Alcotest.test_case "guards" `Quick test_guards;
        ] );
      ( "optimizers",
        [
          Alcotest.test_case "greedy dual-Vth" `Quick test_greedy_dual_vth;
          Alcotest.test_case "vector MC vs estimator" `Quick
            test_vector_mc_matches_estimator;
          Alcotest.test_case "vector MC resample" `Quick test_vector_mc_resample;
        ] );
      ( "differential",
        [
          Alcotest.test_case "replay harness" `Quick test_differential_replay;
        ] );
      ( "deep chain",
        [
          Alcotest.test_case "100k structural walk" `Quick
            test_deep_chain_structural;
          Alcotest.test_case "100k pruned partition" `Quick
            test_deep_chain_pruned;
        ] );
      ("properties", prop_tests);
    ]
