(* Tests of the gate/netlist layer: truth tables, stage decompositions,
   netlist construction and validation, .bench round trips, topological
   ordering and logic simulation. *)

module Logic = Leakage_circuit.Logic
module Gate = Leakage_circuit.Gate
module Netlist = Leakage_circuit.Netlist
module Bench_format = Leakage_circuit.Bench_format
module Topo = Leakage_circuit.Topo
module Simulate = Leakage_circuit.Simulate
module Verilog = Leakage_circuit.Verilog
module Rng = Leakage_numeric.Rng

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ---------------------------------------------------------------- Logic *)

let test_logic_chars () =
  Alcotest.(check char) "one" '1' (Logic.to_char Logic.One);
  Alcotest.(check bool) "roundtrip" true (Logic.of_char '0' = Logic.Zero);
  Alcotest.check_raises "bad char" (Invalid_argument "Logic.of_char: x")
    (fun () -> ignore (Logic.of_char 'x'))

let test_logic_vector_strings () =
  let v = Logic.vector_of_string "0110" in
  Alcotest.(check string) "roundtrip" "0110" (Logic.vector_to_string v);
  Alcotest.(check int) "as int" 6 (Logic.int_of_vector v)

let test_logic_vector_of_int () =
  Alcotest.(check string) "big endian" "101"
    (Logic.vector_to_string (Logic.vector_of_int ~width:3 5))

let test_logic_all_vectors () =
  let vs = Logic.all_vectors 2 in
  Alcotest.(check (list string)) "counting order"
    [ "00"; "01"; "10"; "11" ]
    (List.map Logic.vector_to_string vs)

let test_logic_lnot () =
  Alcotest.(check bool) "involution" true
    (Logic.lnot (Logic.lnot Logic.One) = Logic.One)

let prop_int_vector_roundtrip =
  qtest "vector_of_int / int_of_vector round trip"
    QCheck2.Gen.(int_bound 255)
    (fun n -> Logic.int_of_vector (Logic.vector_of_int ~width:8 n) = n)

(* ----------------------------------------------------------------- Gate *)

let reference_eval kind (ins : bool array) =
  let conj = Array.for_all Fun.id ins and disj = Array.exists Fun.id ins in
  match kind with
  | Gate.Inv -> not ins.(0)
  | Gate.Buf -> ins.(0)
  | Gate.Nand _ -> not conj
  | Gate.And _ -> conj
  | Gate.Nor _ -> not disj
  | Gate.Or _ -> disj
  | Gate.Xor -> ins.(0) <> ins.(1)
  | Gate.Xnor -> ins.(0) = ins.(1)
  | Gate.Aoi21 -> not ((ins.(0) && ins.(1)) || ins.(2))
  | Gate.Aoi22 -> not ((ins.(0) && ins.(1)) || (ins.(2) && ins.(3)))
  | Gate.Oai21 -> not ((ins.(0) || ins.(1)) && ins.(2))
  | Gate.Oai22 -> not ((ins.(0) || ins.(1)) && (ins.(2) || ins.(3)))

let test_gate_truth_tables () =
  List.iter
    (fun kind ->
      let n = Gate.arity kind in
      List.iter
        (fun v ->
          let ins = Array.map Logic.to_bool v in
          Alcotest.(check bool)
            (Printf.sprintf "%s(%s)" (Gate.name kind) (Logic.vector_to_string v))
            (reference_eval kind ins) (Gate.eval kind ins))
        (Logic.all_vectors n))
    Gate.all_kinds

let test_gate_arity_check () =
  Alcotest.(check int) "nand3" 3 (Gate.arity (Gate.Nand 3));
  Alcotest.check_raises "nand5 rejected"
    (Invalid_argument "Gate: NAND5 unsupported (fan-in 2-4)") (fun () ->
      ignore (Gate.arity (Gate.Nand 5)))

let test_gate_eval_arity_mismatch () =
  Alcotest.check_raises "wrong input count"
    (Invalid_argument "Gate.eval: NAND2 expects 2 inputs, got 3") (fun () ->
      ignore (Gate.eval (Gate.Nand 2) [| true; true; false |]))

let test_gate_names_roundtrip () =
  List.iter
    (fun kind ->
      Alcotest.(check bool)
        ("name roundtrip " ^ Gate.name kind)
        true
        (Gate.of_name (Gate.name kind) = kind))
    Gate.all_kinds

let test_gate_of_name_aliases () =
  Alcotest.(check bool) "NOT" true (Gate.of_name "NOT" = Gate.Inv);
  Alcotest.(check bool) "BUFF" true (Gate.of_name "buff" = Gate.Buf);
  Alcotest.(check bool) "XOR" true (Gate.of_name "xor" = Gate.Xor);
  Alcotest.check_raises "garbage"
    (Invalid_argument "Gate.of_name: unknown cell \"FROB\"") (fun () ->
      ignore (Gate.of_name "FROB"))

(* Evaluate a cell through its stage decomposition and compare with the
   boolean function — this pins the transistor-level topologies to the
   logic-level semantics for every cell and vector. *)
let eval_via_stages kind (ins : bool array) =
  let cell = Gate.decompose kind in
  let internal = Array.make (Stdlib.max 1 cell.Gate.internal_count) false in
  let out = ref false in
  Array.iter
    (fun (st : Gate.stage) ->
      let stage_in =
        Array.map
          (function
            | Gate.Cell_input i -> ins.(i)
            | Gate.Internal i -> internal.(i))
          st.Gate.stage_inputs
      in
      let v = Gate.stage_eval st.Gate.stage_kind stage_in in
      match st.Gate.stage_output with
      | Gate.Cell_output -> out := v
      | Gate.Internal_out i -> internal.(i) <- v)
    cell.Gate.stages;
  !out

let test_gate_decompose_semantics () =
  List.iter
    (fun kind ->
      List.iter
        (fun v ->
          let ins = Array.map Logic.to_bool v in
          Alcotest.(check bool)
            (Printf.sprintf "stages of %s on %s" (Gate.name kind)
               (Logic.vector_to_string v))
            (Gate.eval kind ins) (eval_via_stages kind ins))
        (Logic.all_vectors (Gate.arity kind)))
    Gate.all_kinds

let test_gate_decompose_single_output_stage () =
  List.iter
    (fun kind ->
      let cell = Gate.decompose kind in
      let outputs =
        Array.to_list cell.Gate.stages
        |> List.filter (fun (s : Gate.stage) -> s.Gate.stage_output = Gate.Cell_output)
      in
      Alcotest.(check int) ("one output stage in " ^ Gate.name kind) 1
        (List.length outputs))
    Gate.all_kinds

let test_gate_transistor_counts () =
  Alcotest.(check int) "INV" 2 (Gate.transistor_count Gate.Inv);
  Alcotest.(check int) "NAND2" 4 (Gate.transistor_count (Gate.Nand 2));
  Alcotest.(check int) "NAND4" 8 (Gate.transistor_count (Gate.Nand 4));
  Alcotest.(check int) "AND2" 6 (Gate.transistor_count (Gate.And 2));
  Alcotest.(check int) "BUF" 4 (Gate.transistor_count Gate.Buf);
  Alcotest.(check int) "XOR2 (4 nand2)" 16 (Gate.transistor_count Gate.Xor);
  Alcotest.(check int) "XNOR2" 18 (Gate.transistor_count Gate.Xnor);
  Alcotest.(check int) "AOI21 single stage" 6 (Gate.transistor_count Gate.Aoi21);
  Alcotest.(check int) "OAI22 single stage" 8 (Gate.transistor_count Gate.Oai22)

let test_gate_stack_sizing () =
  Alcotest.(check (float 0.0)) "nand3 nmos upsized" 3.0
    (Gate.nmos_width Gate.Stage_nand 3);
  Alcotest.(check (float 0.0)) "nor3 pmos upsized" 6.0
    (Gate.pmos_width Gate.Stage_nor 3);
  Alcotest.(check (float 0.0)) "inv nmos" 1.0 (Gate.nmos_width Gate.Stage_inv 1);
  Alcotest.(check (float 0.0)) "inv pmos" 2.0 (Gate.pmos_width Gate.Stage_inv 1)

let aoi21_tree = Gate.Parallel [ Gate.Series [ Gate.Leaf 0; Gate.Leaf 1 ]; Gate.Leaf 2 ]

let test_network_tree_helpers () =
  Alcotest.(check int) "aoi21 pdn depth" 2 (Gate.tree_depth aoi21_tree);
  Alcotest.(check int) "aoi21 pun depth" 2 (Gate.tree_depth (Gate.dual aoi21_tree));
  Alcotest.(check bool) "conducts a&b" true
    (Gate.tree_conducts aoi21_tree [| true; true; false |]);
  Alcotest.(check bool) "conducts c" true
    (Gate.tree_conducts aoi21_tree [| false; false; true |]);
  Alcotest.(check bool) "blocks a alone" false
    (Gate.tree_conducts aoi21_tree [| true; false; false |]);
  (* duality: PUN conducts exactly when PDN does not, for every vector *)
  List.iter
    (fun v ->
      let ins = Array.map Leakage_circuit.Logic.to_bool v in
      let pun = Array.map not ins in
      Alcotest.(check bool) "complementary networks" true
        (Gate.tree_conducts aoi21_tree ins
         <> Gate.tree_conducts (Gate.dual aoi21_tree) pun))
    (Logic.all_vectors 3)

let test_complex_stage_sizing () =
  Alcotest.(check (float 0.0)) "aoi21 nmos" 2.0
    (Gate.nmos_width (Gate.Stage_complex aoi21_tree) 3);
  Alcotest.(check (float 0.0)) "aoi21 pmos" 4.0
    (Gate.pmos_width (Gate.Stage_complex aoi21_tree) 3)

(* -------------------------------------------------------------- Netlist *)

let small_circuit () =
  (* c = NAND2(a, b); d = INV(c) *)
  let b = Netlist.Builder.create "small" in
  let a = Netlist.Builder.input ~name:"a" b in
  let bb = Netlist.Builder.input ~name:"b" b in
  let c = Netlist.Builder.gate ~name:"c" b (Gate.Nand 2) [| a; bb |] in
  let d = Netlist.Builder.gate ~name:"d" b Gate.Inv [| c |] in
  Netlist.Builder.mark_output b d;
  (Netlist.Builder.finish b, a, bb, c, d)

let test_netlist_builder_basic () =
  let nl, a, _, c, d = small_circuit () in
  Alcotest.(check int) "gates" 2 (Netlist.gate_count nl);
  Alcotest.(check int) "nets" 4 (Netlist.net_count nl);
  Alcotest.(check bool) "a is input" true (Netlist.is_input nl a);
  Alcotest.(check bool) "d is output" true (Netlist.is_output nl d);
  Alcotest.(check bool) "c is internal" false
    (Netlist.is_input nl c || Netlist.is_output nl c);
  Alcotest.(check string) "named net" "c" (Netlist.net_name nl c)

let test_netlist_driver_fanout () =
  let nl, a, _, c, d = small_circuit () in
  (match Netlist.driver nl c with
   | Some g -> Alcotest.(check int) "driver of c" 0 g.Netlist.id
   | None -> Alcotest.fail "c has no driver");
  Alcotest.(check bool) "a undriven" true (Netlist.driver nl a = None);
  Alcotest.(check int) "fanout of c" 1 (List.length (Netlist.fanout nl c));
  Alcotest.(check int) "fanout of d" 0 (List.length (Netlist.fanout nl d))

let test_netlist_fanout_counts_pins () =
  (* one gate using the same net twice contributes two fanout entries *)
  let b = Netlist.Builder.create "dup" in
  let a = Netlist.Builder.input b in
  let o = Netlist.Builder.gate b (Gate.Nand 2) [| a; a |] in
  Netlist.Builder.mark_output b o;
  let nl = Netlist.Builder.finish b in
  Alcotest.(check int) "two pins on a" 2 (List.length (Netlist.fanout nl a))

let test_netlist_validate_ok () =
  let nl, _, _, _, _ = small_circuit () in
  Alcotest.(check bool) "valid" true (Netlist.validate nl = Ok ())

let test_netlist_builder_guards () =
  let b = Netlist.Builder.create "bad" in
  let a = Netlist.Builder.input b in
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Builder.gate: NAND2 expects 2 inputs, got 1") (fun () ->
      ignore (Netlist.Builder.gate b (Gate.Nand 2) [| a |]));
  Alcotest.check_raises "unknown net"
    (Invalid_argument "Builder.gate: unknown net 99") (fun () ->
      ignore (Netlist.Builder.gate b Gate.Inv [| 99 |]))

let test_netlist_stats () =
  let nl, _, _, _, _ = small_circuit () in
  let s = Netlist.stats nl in
  Alcotest.(check int) "gates" 2 s.Netlist.n_gates;
  Alcotest.(check int) "levels" 2 s.Netlist.levels;
  Alcotest.(check int) "transistors" 6 s.Netlist.n_transistors;
  Alcotest.(check bool) "histogram has NAND2" true
    (List.mem_assoc "NAND2" s.Netlist.kind_histogram)

(* ----------------------------------------------------------------- Topo *)

let test_topo_order_respects_deps () =
  let nl, _, _, _, _ = small_circuit () in
  let order = Topo.order nl in
  Alcotest.(check int) "nand first" 0 order.(0).Netlist.id;
  Alcotest.(check int) "inv second" 1 order.(1).Netlist.id

let test_topo_levels () =
  let nl, _, _, _, _ = small_circuit () in
  let levels = Topo.levels nl in
  Alcotest.(check bool) "levels" true (levels = [| 1; 2 |])

let test_topo_net_levels () =
  let nl, a, _, c, d = small_circuit () in
  let levels = Topo.net_levels nl in
  Alcotest.(check int) "PI at 0" 0 levels.(a);
  Alcotest.(check int) "c at 1" 1 levels.(c);
  Alcotest.(check int) "d at 2" 2 levels.(d)

let prop_topo_is_topological =
  qtest ~count:50 "random ISCAS-profile circuits sort topologically"
    QCheck2.Gen.(int_bound 10_000)
    (fun seed ->
      let p = { Leakage_benchmarks.Iscas.profile_name = "tiny";
                n_pi = 4; n_po = 2; n_ff = 2; n_gates = 40 } in
      let nl = Leakage_benchmarks.Iscas.generate ~seed p in
      let order = Topo.order nl in
      let position = Array.make (Netlist.gate_count nl) 0 in
      Array.iteri (fun pos (g : Netlist.gate) -> position.(g.Netlist.id) <- pos) order;
      Array.for_all
        (fun (g : Netlist.gate) ->
          Array.for_all
            (fun net ->
              match Netlist.driver nl net with
              | None -> true
              | Some d -> position.(d.Netlist.id) < position.(g.Netlist.id))
            g.Netlist.fan_in)
        (Netlist.gates nl))

(* ------------------------------------------------------------- Simulate *)

let test_simulate_nand_inv () =
  let nl, _, _, c, d = small_circuit () in
  List.iter
    (fun (pat, expect_c, expect_d) ->
      let values = Simulate.run nl (Logic.vector_of_string pat) in
      Alcotest.(check char) ("c at " ^ pat) expect_c (Logic.to_char values.(c));
      Alcotest.(check char) ("d at " ^ pat) expect_d (Logic.to_char values.(d)))
    [ ("00", '1', '0'); ("01", '1', '0'); ("10", '1', '0'); ("11", '0', '1') ]

let test_simulate_outputs () =
  let nl, _, _, _, _ = small_circuit () in
  let out = Simulate.outputs nl (Simulate.run nl (Logic.vector_of_string "11")) in
  Alcotest.(check string) "PO vector" "1" (Logic.vector_to_string out)

let test_simulate_pattern_size_guard () =
  let nl, _, _, _, _ = small_circuit () in
  Alcotest.check_raises "bad width"
    (Invalid_argument "Simulate.run: 2 inputs expected, pattern has 3")
    (fun () -> ignore (Simulate.run nl (Logic.vector_of_string "000")))

let test_simulate_gate_input_vector () =
  let nl, _, _, _, _ = small_circuit () in
  let values = Simulate.run nl (Logic.vector_of_string "10") in
  let g = (Netlist.gates nl).(0) in
  Alcotest.(check string) "pins of nand" "10"
    (Logic.vector_to_string (Simulate.gate_input_vector nl values g))

let test_simulate_random_patterns_shape () =
  let nl, _, _, _, _ = small_circuit () in
  let rng = Rng.create 7 in
  let pats = Simulate.random_patterns rng nl 5 in
  Alcotest.(check int) "count" 5 (List.length pats);
  List.iter
    (fun p -> Alcotest.(check int) "width" 2 (Array.length p))
    pats

(* --------------------------------------------------------- Bench format *)

let test_bench_parse_simple () =
  let text =
    "# comment\nINPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n"
  in
  let nl = Bench_format.parse_string ~name:"t" text in
  Alcotest.(check int) "one gate" 1 (Netlist.gate_count nl);
  let values = Simulate.run nl (Logic.vector_of_string "11") in
  Alcotest.(check string) "nand(1,1) = 0" "0"
    (Logic.vector_to_string (Simulate.outputs nl values))

let test_bench_parse_out_of_order_definitions () =
  let text =
    "INPUT(a)\nOUTPUT(y)\ny = NOT(m)\nm = BUFF(a)\n"
  in
  let nl = Bench_format.parse_string ~name:"t" text in
  Alcotest.(check int) "two gates" 2 (Netlist.gate_count nl);
  let values = Simulate.run nl (Logic.vector_of_string "1") in
  Alcotest.(check string) "not(buf(1)) = 0" "0"
    (Logic.vector_to_string (Simulate.outputs nl values))

let test_bench_parse_dff_cut () =
  let text =
    "INPUT(a)\nOUTPUT(y)\nq = DFF(d)\nd = NAND(a, q)\ny = NOT(q)\n"
  in
  let nl = Bench_format.parse_string ~name:"t" text in
  (* q becomes a pseudo input, d a pseudo output *)
  Alcotest.(check int) "2 inputs (a, q)" 2 (Array.length (Netlist.inputs nl));
  Alcotest.(check int) "2 outputs (y, d)" 2 (Array.length (Netlist.outputs nl));
  Alcotest.(check bool) "valid" true (Netlist.validate nl = Ok ())

let test_bench_parse_wide_gate () =
  let args = String.concat ", " [ "a"; "b"; "c"; "d"; "e"; "f" ] in
  let text =
    "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nINPUT(f)\nOUTPUT(y)\n"
    ^ Printf.sprintf "y = NAND(%s)\n" args
  in
  let nl = Bench_format.parse_string ~name:"t" text in
  (* semantics check over all 64 vectors *)
  List.iter
    (fun v ->
      let expect = not (Array.for_all Logic.to_bool v) in
      let out = Simulate.outputs nl (Simulate.run nl v) in
      Alcotest.(check bool)
        ("nand6 " ^ Logic.vector_to_string v)
        expect
        (Logic.to_bool out.(0)))
    (Logic.all_vectors 6)

let test_bench_parse_xor_chain () =
  let text =
    "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = XOR(a, b, c)\n"
  in
  let nl = Bench_format.parse_string ~name:"t" text in
  List.iter
    (fun v ->
      let expect =
        List.fold_left ( <> ) false (List.map Logic.to_bool (Array.to_list v))
      in
      let out = Simulate.outputs nl (Simulate.run nl v) in
      Alcotest.(check bool) ("xor3 " ^ Logic.vector_to_string v) expect
        (Logic.to_bool out.(0)))
    (Logic.all_vectors 3)

let test_bench_parse_errors () =
  let expect_error text =
    match Bench_format.parse_string ~name:"t" text with
    | exception Bench_format.Parse_error _ -> ()
    | _ -> Alcotest.fail "expected Parse_error"
  in
  expect_error "INPUT(a)\ny = FROB(a)\nOUTPUT(y)\n";
  expect_error "INPUT(a)\nOUTPUT(y)\ny = NOT(zz)\n";
  expect_error "INPUT(a)\nOUTPUT(y)\ny = NOT(a\n";
  expect_error "INPUT(a)\nOUTPUT(y)\nwhatisthis\n";
  (* combinational cycle *)
  expect_error "INPUT(a)\nOUTPUT(y)\ny = NOT(z)\nz = NOT(y)\n"

let test_bench_rejects_conflicting_declarations () =
  let expect_error ~line ~substr text =
    match Bench_format.parse_string ~name:"t" text with
    | exception Bench_format.Parse_error (l, msg) ->
      Alcotest.(check int) ("line of: " ^ msg) line l;
      let contains s sub =
        let sl = String.length s and bl = String.length sub in
        let rec scan i =
          i + bl <= sl && (String.sub s i bl = sub || scan (i + 1))
        in
        scan 0
      in
      if not (contains msg substr) then
        Alcotest.failf "error %S does not name %S" msg substr
    | _ -> Alcotest.fail "expected Parse_error"
  in
  (* regression: all three used to Hashtbl.replace one declaration away
     silently instead of rejecting the netlist *)
  expect_error ~line:2 ~substr:"a"
    "INPUT(a)\nINPUT(a)\nOUTPUT(y)\ny = NOT(a)\n";
  expect_error ~line:4 ~substr:"a"
    "INPUT(a)\nINPUT(b)\nOUTPUT(a)\na = NOT(b)\n";
  expect_error ~line:4 ~substr:"y"
    "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUFF(a)\n"

let test_bench_dff_target_may_share_nothing () =
  (* a DFF output clashing with a declared input is still an error *)
  match
    Bench_format.parse_string ~name:"t"
      "INPUT(q)\nOUTPUT(y)\nq = DFF(y)\ny = NOT(q)\n"
  with
  | exception Bench_format.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected Parse_error"

let test_bench_roundtrip_complex_cells () =
  (* AOI/OAI cells are decomposed when written; the round trip preserves the
     logic function *)
  let b = Netlist.Builder.create "cplx" in
  let pins = Array.init 4 (fun i -> Netlist.Builder.input ~name:(Printf.sprintf "i%d" i) b) in
  let a = Netlist.Builder.gate b Gate.Aoi21 [| pins.(0); pins.(1); pins.(2) |] in
  let o = Netlist.Builder.gate b Gate.Oai22 [| a; pins.(1); pins.(2); pins.(3) |] in
  Netlist.Builder.mark_output b o;
  let nl = Netlist.Builder.finish b in
  let nl' = Bench_format.parse_string ~name:"rt" (Bench_format.to_string nl) in
  List.iter
    (fun v ->
      let x = Simulate.outputs nl (Simulate.run nl v) in
      let y = Simulate.outputs nl' (Simulate.run nl' v) in
      Alcotest.(check string)
        ("vector " ^ Logic.vector_to_string v)
        (Logic.vector_to_string x) (Logic.vector_to_string y))
    (Logic.all_vectors 4)

let test_bench_strength_roundtrip () =
  let b = Netlist.Builder.create "sz" in
  let a = Netlist.Builder.input ~name:"a" b in
  let c = Netlist.Builder.input ~name:"c" b in
  let n1 = Netlist.Builder.gate ~name:"n1" ~strength:2.0 b (Gate.Nand 2) [| a; c |] in
  let n2 = Netlist.Builder.gate ~name:"n2" ~strength:0.5 b Gate.Inv [| n1 |] in
  Netlist.Builder.mark_output b n2;
  let nl = Netlist.Builder.finish b in
  let text = Bench_format.to_string nl in
  let nl' = Bench_format.parse_string ~name:"sz" text in
  let strengths =
    Array.map (fun (g : Netlist.gate) -> g.Netlist.strength) (Netlist.gates nl')
  in
  Alcotest.(check bool) "strengths survive" true (strengths = [| 2.0; 0.5 |])

let test_bench_plain_files_default_strength () =
  let nl =
    Bench_format.parse_string ~name:"plain"
      "INPUT(a)\nOUTPUT(y)\ny = NOT(a)  # ordinary comment\n"
  in
  Alcotest.(check (float 0.0)) "default strength" 1.0
    (Netlist.gates nl).(0).Netlist.strength

let test_bench_roundtrip_simulation () =
  let nl = Leakage_benchmarks.Alu8.build ~width:4 () in
  let text = Bench_format.to_string nl in
  let nl' = Bench_format.parse_string ~name:"alu44" text in
  Alcotest.(check int) "same gate count" (Netlist.gate_count nl)
    (Netlist.gate_count nl');
  let rng = Rng.create 3 in
  List.iter
    (fun pat ->
      let a = Simulate.outputs nl (Simulate.run nl pat) in
      let b = Simulate.outputs nl' (Simulate.run nl' pat) in
      Alcotest.(check string) "same outputs" (Logic.vector_to_string a)
        (Logic.vector_to_string b))
    (Simulate.random_patterns rng nl 25)

(* -------------------------------------------------------------- Verilog *)

let test_verilog_sanitize () =
  Alcotest.(check string) "plain" "abc_1" (Verilog.sanitize_identifier "abc_1");
  Alcotest.(check string) "punctuation" "a_b_c" (Verilog.sanitize_identifier "a.b/c");
  Alcotest.(check string) "leading digit" "n42" (Verilog.sanitize_identifier "42");
  Alcotest.(check string) "keyword" "wire_" (Verilog.sanitize_identifier "wire");
  Alcotest.(check string) "empty" "n" (Verilog.sanitize_identifier "")

let test_verilog_structure () =
  let nl, _, _, _, _ = small_circuit () in
  let text = Verilog.to_string nl in
  let contains needle =
    let nl_ = String.length needle and tl = String.length text in
    let rec go i = i + nl_ <= tl && (String.sub text i nl_ = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "module header" true (contains "module small(");
  Alcotest.(check bool) "input a" true (contains "input a;");
  Alcotest.(check bool) "output d" true (contains "output d;");
  Alcotest.(check bool) "wire c" true (contains "wire c;");
  Alcotest.(check bool) "nand instance" true (contains "nand g1(c, a, b);");
  Alcotest.(check bool) "not instance" true (contains "not g2(d, c);");
  Alcotest.(check bool) "endmodule" true (contains "endmodule")

let test_verilog_complex_cells_decomposed () =
  let b = Netlist.Builder.create "vcplx" in
  let pins = Array.init 3 (fun i -> Netlist.Builder.input ~name:(Printf.sprintf "i%d" i) b) in
  let o = Netlist.Builder.gate ~name:"y" b Gate.Aoi21 pins in
  Netlist.Builder.mark_output b o;
  let nl = Netlist.Builder.finish b in
  let text = Verilog.to_string nl in
  let contains needle =
    let nl_ = String.length needle and tl = String.length text in
    let rec go i = i + nl_ <= tl && (String.sub text i nl_ = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "helper wire" true (contains "wire y_t0;");
  Alcotest.(check bool) "and part" true (contains "and g1(y_t0, i0, i1);");
  Alcotest.(check bool) "nor part" true (contains "nor g2(y, y_t0, i2);")

let test_verilog_unique_names_under_collision () =
  (* two nets whose names sanitize identically must not collide *)
  let b = Netlist.Builder.create "coll" in
  let x = Netlist.Builder.input ~name:"a.b" b in
  let y = Netlist.Builder.gate ~name:"a_b" b Gate.Inv [| x |] in
  Netlist.Builder.mark_output b y;
  let nl = Netlist.Builder.finish b in
  let text = Verilog.to_string nl in
  let count needle =
    let nl_ = String.length needle and tl = String.length text in
    let rec go i acc =
      if i + nl_ > tl then acc
      else go (i + 1) (if String.sub text i nl_ = needle then acc + 1 else acc)
    in
    go 0 0
  in
  Alcotest.(check bool) "second net renamed" true (count "a_b_2" >= 1)

(* --------------------------------------------------------------- digest *)

(* One structure, many constructions: the digest must depend only on the
   shape (PIs by name, gates by kind/strength/fan-in, output marking). *)

let digest_reference () =
  let b = Netlist.Builder.create "ref" in
  let a = Netlist.Builder.input ~name:"a" b in
  let bb = Netlist.Builder.input ~name:"b" b in
  let c = Netlist.Builder.input ~name:"c" b in
  let g1 = Netlist.Builder.gate ~name:"g1" b (Gate.Nand 2) [| a; bb |] in
  let g2 = Netlist.Builder.gate ~name:"g2" ~strength:2.0 b (Gate.Nor 2) [| bb; c |] in
  let g3 = Netlist.Builder.gate ~name:"g3" b Gate.Xor [| g1; g2 |] in
  Netlist.Builder.mark_output b g3;
  Netlist.Builder.finish b

let test_digest_shape () =
  let d = Netlist.digest (digest_reference ()) in
  Alcotest.(check int) "32 hex chars" 32 (String.length d);
  String.iter
    (fun ch ->
      Alcotest.(check bool) "hex digit" true
        (match ch with 'a' .. 'f' | '0' .. '9' -> true | _ -> false))
    d;
  Alcotest.(check string) "deterministic" d
    (Netlist.digest (digest_reference ()))

let test_digest_input_order_insensitive () =
  let b = Netlist.Builder.create "swapped-inputs" in
  (* same PI names declared in reverse order *)
  let c = Netlist.Builder.input ~name:"c" b in
  let bb = Netlist.Builder.input ~name:"b" b in
  let a = Netlist.Builder.input ~name:"a" b in
  let g1 = Netlist.Builder.gate ~name:"g1" b (Gate.Nand 2) [| a; bb |] in
  let g2 = Netlist.Builder.gate ~name:"g2" ~strength:2.0 b (Gate.Nor 2) [| bb; c |] in
  let g3 = Netlist.Builder.gate ~name:"g3" b Gate.Xor [| g1; g2 |] in
  Netlist.Builder.mark_output b g3;
  Alcotest.(check string) "digest ignores PI declaration order"
    (Netlist.digest (digest_reference ()))
    (Netlist.digest (Netlist.Builder.finish b))

let test_digest_gate_order_insensitive () =
  let b = Netlist.Builder.create "swapped-gates" in
  let a = Netlist.Builder.input ~name:"a" b in
  let bb = Netlist.Builder.input ~name:"b" b in
  let c = Netlist.Builder.input ~name:"c" b in
  (* the two independent first-level gates instantiated in the other order *)
  let g2 = Netlist.Builder.gate ~name:"g2" ~strength:2.0 b (Gate.Nor 2) [| bb; c |] in
  let g1 = Netlist.Builder.gate ~name:"g1" b (Gate.Nand 2) [| a; bb |] in
  let g3 = Netlist.Builder.gate ~name:"g3" b Gate.Xor [| g1; g2 |] in
  Netlist.Builder.mark_output b g3;
  Alcotest.(check string) "digest ignores gate construction order"
    (Netlist.digest (digest_reference ()))
    (Netlist.digest (Netlist.Builder.finish b))

let test_digest_name_insensitive () =
  let b = Netlist.Builder.create "other-netlist-name" in
  let a = Netlist.Builder.input ~name:"a" b in
  let bb = Netlist.Builder.input ~name:"b" b in
  let c = Netlist.Builder.input ~name:"c" b in
  (* internal nets renamed; PI names must stay, they label the interface *)
  let g1 = Netlist.Builder.gate ~name:"w9" b (Gate.Nand 2) [| a; bb |] in
  let g2 = Netlist.Builder.gate ~name:"w8" ~strength:2.0 b (Gate.Nor 2) [| bb; c |] in
  let g3 = Netlist.Builder.gate ~name:"w7" b Gate.Xor [| g1; g2 |] in
  Netlist.Builder.mark_output b g3;
  Alcotest.(check string) "digest ignores netlist and internal net names"
    (Netlist.digest (digest_reference ()))
    (Netlist.digest (Netlist.Builder.finish b))

let test_digest_bench_roundtrip () =
  let nl = digest_reference () in
  let nl' = Bench_format.parse_string ~name:"rt" (Bench_format.to_string nl) in
  Alcotest.(check string) "digest survives a .bench round trip"
    (Netlist.digest nl) (Netlist.digest nl');
  (* the suite's s838 holds complex cells that to_string decomposes, so the
     first serialization changes the structure — but after that, round trips
     must be digest-stable *)
  let s838 = (Leakage_benchmarks.Suite.find "s838").Leakage_benchmarks.Suite.build () in
  let once =
    Bench_format.parse_string ~name:"s838rt" (Bench_format.to_string s838)
  in
  let twice =
    Bench_format.parse_string ~name:"s838rt2" (Bench_format.to_string once)
  in
  Alcotest.(check string) "s838 digest stable once .bench-representable"
    (Netlist.digest once) (Netlist.digest twice)

let test_digest_sensitivity () =
  let build ?(kind = Gate.Nand 2) ?(strength = 1.0) ?(pins = false)
      ?(mark = true) () =
    let b = Netlist.Builder.create "sens" in
    let a = Netlist.Builder.input ~name:"a" b in
    let bb = Netlist.Builder.input ~name:"b" b in
    let ins = if pins then [| bb; a |] else [| a; bb |] in
    let g1 = Netlist.Builder.gate ~name:"g1" ~strength b kind ins in
    let g2 = Netlist.Builder.gate ~name:"g2" b Gate.Inv [| g1 |] in
    if mark then Netlist.Builder.mark_output b g2;
    Netlist.Builder.finish b
  in
  let base = Netlist.digest (build ()) in
  let differs label nl =
    Alcotest.(check bool) label true (Netlist.digest nl <> base)
  in
  differs "kind changes digest" (build ~kind:(Gate.Nor 2) ());
  differs "strength changes digest" (build ~strength:1.5 ());
  differs "pin order changes digest" (build ~pins:true ());
  differs "output marking changes digest" (build ~mark:false ())

let () =
  Alcotest.run "circuit"
    [
      ( "logic",
        [
          Alcotest.test_case "chars" `Quick test_logic_chars;
          Alcotest.test_case "vector strings" `Quick test_logic_vector_strings;
          Alcotest.test_case "vector of int" `Quick test_logic_vector_of_int;
          Alcotest.test_case "all vectors" `Quick test_logic_all_vectors;
          Alcotest.test_case "lnot" `Quick test_logic_lnot;
          prop_int_vector_roundtrip;
        ] );
      ( "gate",
        [
          Alcotest.test_case "truth tables" `Quick test_gate_truth_tables;
          Alcotest.test_case "arity check" `Quick test_gate_arity_check;
          Alcotest.test_case "eval arity mismatch" `Quick test_gate_eval_arity_mismatch;
          Alcotest.test_case "name roundtrip" `Quick test_gate_names_roundtrip;
          Alcotest.test_case "of_name aliases" `Quick test_gate_of_name_aliases;
          Alcotest.test_case "decompose semantics" `Quick test_gate_decompose_semantics;
          Alcotest.test_case "single output stage" `Quick test_gate_decompose_single_output_stage;
          Alcotest.test_case "transistor counts" `Quick test_gate_transistor_counts;
          Alcotest.test_case "stack sizing" `Quick test_gate_stack_sizing;
          Alcotest.test_case "network trees" `Quick test_network_tree_helpers;
          Alcotest.test_case "complex sizing" `Quick test_complex_stage_sizing;
        ] );
      ( "netlist",
        [
          Alcotest.test_case "builder basic" `Quick test_netlist_builder_basic;
          Alcotest.test_case "driver/fanout" `Quick test_netlist_driver_fanout;
          Alcotest.test_case "fanout counts pins" `Quick test_netlist_fanout_counts_pins;
          Alcotest.test_case "validate ok" `Quick test_netlist_validate_ok;
          Alcotest.test_case "builder guards" `Quick test_netlist_builder_guards;
          Alcotest.test_case "stats" `Quick test_netlist_stats;
        ] );
      ( "topo",
        [
          Alcotest.test_case "order" `Quick test_topo_order_respects_deps;
          Alcotest.test_case "levels" `Quick test_topo_levels;
          Alcotest.test_case "net levels" `Quick test_topo_net_levels;
          prop_topo_is_topological;
        ] );
      ( "simulate",
        [
          Alcotest.test_case "nand+inv" `Quick test_simulate_nand_inv;
          Alcotest.test_case "outputs" `Quick test_simulate_outputs;
          Alcotest.test_case "size guard" `Quick test_simulate_pattern_size_guard;
          Alcotest.test_case "gate input vector" `Quick test_simulate_gate_input_vector;
          Alcotest.test_case "random patterns" `Quick test_simulate_random_patterns_shape;
        ] );
      ( "verilog",
        [
          Alcotest.test_case "sanitize" `Quick test_verilog_sanitize;
          Alcotest.test_case "structure" `Quick test_verilog_structure;
          Alcotest.test_case "complex cells" `Quick test_verilog_complex_cells_decomposed;
          Alcotest.test_case "name collisions" `Quick test_verilog_unique_names_under_collision;
        ] );
      ( "digest",
        [
          Alcotest.test_case "shape" `Quick test_digest_shape;
          Alcotest.test_case "input order" `Quick test_digest_input_order_insensitive;
          Alcotest.test_case "gate order" `Quick test_digest_gate_order_insensitive;
          Alcotest.test_case "names" `Quick test_digest_name_insensitive;
          Alcotest.test_case "bench roundtrip" `Quick test_digest_bench_roundtrip;
          Alcotest.test_case "sensitivity" `Quick test_digest_sensitivity;
        ] );
      ( "bench-format",
        [
          Alcotest.test_case "parse simple" `Quick test_bench_parse_simple;
          Alcotest.test_case "out of order" `Quick test_bench_parse_out_of_order_definitions;
          Alcotest.test_case "dff cut" `Quick test_bench_parse_dff_cut;
          Alcotest.test_case "wide nand" `Quick test_bench_parse_wide_gate;
          Alcotest.test_case "xor chain" `Quick test_bench_parse_xor_chain;
          Alcotest.test_case "parse errors" `Quick test_bench_parse_errors;
          Alcotest.test_case "conflicting declarations" `Quick
            test_bench_rejects_conflicting_declarations;
          Alcotest.test_case "dff/input clash" `Quick
            test_bench_dff_target_may_share_nothing;
          Alcotest.test_case "roundtrip" `Quick test_bench_roundtrip_simulation;
          Alcotest.test_case "complex-cell roundtrip" `Quick test_bench_roundtrip_complex_cells;
          Alcotest.test_case "strength roundtrip" `Quick test_bench_strength_roundtrip;
          Alcotest.test_case "plain default strength" `Quick test_bench_plain_files_default_strength;
        ] );
    ]
